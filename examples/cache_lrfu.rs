//! Constant-time LRFU caching: the q-MAX based LRFU against the
//! classical heap implementation on a synthetic ARC-style trace
//! (the paper's Figure 9 / Table 2 scenario).
//!
//! Run with: `cargo run --release --example cache_lrfu`

use qmax_lrfu::{hit_ratio, Cache, DeamortizedLrfu, HeapLrfu, QMaxLrfu, ScanLrfu};
use qmax_traces::gen::arc_like;
use std::time::Instant;

fn main() {
    let q = 10_000;
    let c = 0.75;
    let trace = arc_like(2_000_000, 200_000, 5);
    println!(
        "trace: {} requests over a 200k-key working set",
        trace.len()
    );
    println!("cache: q = {q}, LRFU decay c = {c}\n");
    println!("{:<34} {:>9} {:>12}", "policy", "hit%", "Mreq/s");

    bench(&mut HeapLrfu::new(q, c), &trace);
    bench(&mut ScanLrfu::new(q, c), &trace);
    bench(&mut DeamortizedLrfu::new(q, 0.5, c), &trace);
    for gamma in [0.1, 0.5, 1.0] {
        let mut cache = QMaxLrfu::new(q, gamma, c);
        let label = format!("lrfu-qmax (gamma={gamma})");
        let start = Instant::now();
        let hr = hit_ratio(&mut cache, &trace);
        let dt = start.elapsed();
        println!(
            "{label:<34} {:>8.1}% {:>12.2}",
            hr * 100.0,
            trace.len() as f64 / dt.as_secs_f64() / 1e6
        );
    }
}

fn bench<C: Cache<u64>>(cache: &mut C, trace: &[u64]) {
    let start = Instant::now();
    let hr = hit_ratio(cache, trace);
    let dt = start.elapsed();
    println!(
        "{:<34} {:>8.1}% {:>12.2}",
        cache.name(),
        hr * 100.0,
        trace.len() as f64 / dt.as_secs_f64() / 1e6
    );
}
