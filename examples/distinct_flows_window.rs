//! Counting distinct flows over a sliding window: the KMV estimator on
//! a slack-window q-MIN (the paper's improvement over Fusy-Giroire for
//! windowed distinct counting).
//!
//! Run with: `cargo run --release --example distinct_flows_window`

use qmax_apps::CountDistinct;
use qmax_core::BasicSlackQMax;
use qmax_traces::gen::caida_like;
use std::collections::HashSet;
use std::collections::VecDeque;

fn main() {
    let w = 500_000;
    let q = 1024;
    let packets: Vec<_> = caida_like(3_000_000, 9).collect();
    let mut cd = CountDistinct::new_windowed(BasicSlackQMax::new(q, 0.5, w, 0.25), 5);

    // Exact reference over the same window for comparison.
    let mut window: VecDeque<u64> = VecDeque::new();

    println!("estimating distinct flows over the last {w} packets (q = {q})\n");
    println!(
        "{:>10} {:>12} {:>12} {:>8}",
        "packet#", "estimate", "true", "err"
    );
    for (i, p) in packets.iter().enumerate() {
        let key = p.flow().as_u64();
        cd.observe(key);
        window.push_back(key);
        if window.len() > w {
            window.pop_front();
        }
        if i > 0 && i % 500_000 == 0 {
            let est = cd.estimate();
            let truth = window.iter().copied().collect::<HashSet<_>>().len();
            let err = (est - truth as f64).abs() / truth as f64 * 100.0;
            println!("{i:>10} {est:>12.0} {truth:>12} {err:>7.1}%");
        }
    }
    println!("\n(the slack window spans 75-100% of W, so a few percent of");
    println!(" deviation is inherent; the KMV standard error adds ~1/sqrt(q))");
}
