//! Microburst hunting with Dynamic Bucket Merge: DBM summarises a
//! bursty trace into a fixed bucket budget, and the query side
//! localises the bursts at query-time-chosen granularity.
//!
//! Run with: `cargo run --release --example microburst_dbm`

use qmax_apps::Dbm;
use qmax_traces::gen::bursty_like;

fn main() {
    let burst_period_ns = 5_000_000; // a burst every 5 ms
    let packets: Vec<_> = bursty_like(400_000, burst_period_ns, 30, 11).collect();
    let horizon = packets.last().unwrap().ts_ns;
    println!(
        "trace: {} packets over {:.1} ms with a microburst every {} ms",
        packets.len(),
        horizon as f64 / 1e6,
        burst_period_ns / 1_000_000
    );

    // Feed DBM with a budget of 2048 buckets (~0.15 ms granularity).
    let mut dbm = Dbm::new(2048);
    for p in &packets {
        dbm.observe(p.ts_ns, p.len as u64);
    }
    println!("DBM summarised the trace into {} buckets\n", dbm.buckets());

    // Query bandwidth at 100 us granularity — finer than the burst
    // spacing — and rank the busiest slices.
    let slice_ns = 100_000u64;
    let mut slices: Vec<(u64, f64)> = (0..horizon / slice_ns)
        .map(|i| (i, dbm.bytes_in_range(i * slice_ns, (i + 1) * slice_ns - 1)))
        .collect();
    let total: f64 = slices.iter().map(|&(_, b)| b).sum();
    let mean = total / slices.len() as f64;
    slices.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("busiest 100 us slices (mean slice = {:.0} bytes):", mean);
    println!("{:>12} {:>14} {:>8}", "t (us)", "bytes", "x mean");
    for &(i, bytes) in slices.iter().take(8) {
        println!(
            "{:>12} {:>14.0} {:>7.1}x",
            i * slice_ns / 1_000,
            bytes,
            bytes / mean
        );
    }

    // The bursts sit at multiples of the burst period — verify the
    // top slices align.
    let aligned = slices
        .iter()
        .take(8)
        .filter(|&&(i, _)| (i * slice_ns) % burst_period_ns < 3 * slice_ns)
        .count();
    println!("\n{aligned}/8 of the top slices align with the injected burst schedule");
}
