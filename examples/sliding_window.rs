//! Sliding-window q-MAX: track the largest values of the last W items
//! over a slack window, with the basic / hierarchical / lazy variants
//! (the paper's Algorithms 3-4 and Theorem 7).
//!
//! Run with: `cargo run --release --example sliding_window`

use qmax_core::{BasicSlackQMax, HierSlackQMax, LazySlackQMax, QMax};
use qmax_traces::gen::random_u64_stream;
use std::time::Instant;

fn main() {
    let q = 10_000;
    let w = 4_000_000;
    let tau = 0.01;
    let n = 20_000_000;
    println!("stream: {n} random values; window W = {w}, slack tau = {tau}, q = {q}\n");
    println!(
        "{:<14} {:>10} {:>12} {:>14}",
        "variant", "Mupd/s", "query (ms)", "stored items"
    );

    run("basic", BasicSlackQMax::new(q, 0.25, w, tau), n);
    run("hier (c=2)", HierSlackQMax::new(q, 0.25, w, tau, 2), n);
    run("lazy (c=2)", LazySlackQMax::new(q, 0.25, w, tau, 2), n);
}

fn run<Q: QMax<u32, u64>>(name: &str, mut sw: Q, n: usize) {
    let start = Instant::now();
    for (i, v) in random_u64_stream(n, 3).enumerate() {
        sw.insert(i as u32, v);
    }
    let update_dt = start.elapsed();
    let qstart = Instant::now();
    let top = sw.query();
    let query_dt = qstart.elapsed();
    assert_eq!(top.len(), sw.q());
    println!(
        "{name:<14} {:>10.2} {:>12.3} {:>14}",
        n as f64 / update_dt.as_secs_f64() / 1e6,
        query_dt.as_secs_f64() * 1e3,
        sw.len()
    );
}
