//! Fault-tolerant driver demo: runs the threaded sharded engine under a
//! scripted shard failure, a load-shedding scenario, and a supervised
//! warm-recovery scenario (checkpoints + stall watchdog), and prints the
//! failure-accounting reports as JSON (the artifact the CI chaos job
//! uploads).
//!
//! Run with: `cargo run --release --example fault_tolerant_driver [seed]`
//!
//! The optional seed varies both the stream and the fault schedules;
//! the same seed always reproduces the same failures (the blocking
//! overload policy makes each shard's sub-stream, and therefore its
//! offered-insert fault clock, deterministic).

use qmax_core::{AmortizedQMax, DeamortizedQMax, QMax};
use qmax_engine::fault::silence_fault_panics;
use qmax_engine::{
    DriverConfig, DriverReport, FaultSchedule, FaultyBackend, OverloadPolicy, ShardedQMax,
    WatchdogConfig,
};
use qmax_traces::gen::caida_like;

fn report_json(name: &str, seed: u64, config: &DriverConfig, report: &DriverReport) -> String {
    let failures: Vec<String> = report
        .failures
        .iter()
        .map(|f| {
            format!(
                r#"{{"shard":{},"items_lost":{},"message":{:?}}}"#,
                f.shard, f.items_lost, f.message
            )
        })
        .collect();
    let vec_json = |v: &[u64]| {
        let parts: Vec<String> = v.iter().map(|x| x.to_string()).collect();
        format!("[{}]", parts.join(","))
    };
    let shards = report.per_shard_items.len();
    let restarts: Vec<String> = (0..shards)
        .map(|s| report.lifecycle.restarts(s).to_string())
        .collect();
    let lifecycle: Vec<String> = report
        .lifecycle
        .events()
        .iter()
        .map(|e| {
            format!(
                r#"{{"shard":{},"state":{:?},"at_ms":{:.3},"restarts":{},"coverage":{:.4}}}"#,
                e.shard,
                format!("{:?}", e.state),
                e.at.as_secs_f64() * 1e3,
                e.restarts,
                e.coverage
            )
        })
        .collect();
    format!(
        concat!(
            r#"{{"scenario":{:?},"seed":{},"items":{},"dropped":{},"quarantined":{},"#,
            r#""recovered":{},"checkpoint_every":{},"#,
            r#""per_shard_items":{},"per_shard_drained":{},"per_shard_dropped":{},"#,
            r#""per_shard_quarantined":{},"per_shard_recovered":{},"restarts":[{}],"#,
            r#""min_coverage":{:.4},"max_load_factor":{:.4},"#,
            r#""throughput_mips":{:.2},"failures":[{}],"lifecycle":[{}]}}"#
        ),
        name,
        seed,
        report.items,
        report.dropped(),
        report.quarantined(),
        report.recovered(),
        config
            .checkpoint_every
            .map_or("null".to_string(), |k| k.to_string()),
        vec_json(&report.per_shard_items),
        vec_json(&report.per_shard_drained),
        vec_json(&report.per_shard_dropped),
        vec_json(&report.per_shard_quarantined),
        vec_json(&report.per_shard_recovered),
        restarts.join(","),
        report.lifecycle.min_coverage(),
        report.max_load_factor(),
        report.throughput_mips(),
        failures.join(","),
        lifecycle.join(",")
    )
}

fn assert_balanced(report: &DriverReport) {
    for s in 0..report.per_shard_items.len() {
        assert_eq!(
            report.per_shard_items[s],
            report.per_shard_drained[s]
                + report.per_shard_dropped[s]
                + report.per_shard_quarantined[s],
            "shard {s} accounting does not balance"
        );
    }
}

fn main() {
    let _silence = silence_fault_panics();
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let q = 512;
    let gamma = 0.25;
    let shards = 4;
    let items: Vec<(u64, u64)> = caida_like(1_000_000, seed)
        .map(|p| (p.flow().as_u64(), p.len as u64))
        .collect();

    // Scenario 1: one shard panics mid-stream under the blocking
    // policy; the others finish and the merged query still answers.
    let failing = (seed % shards as u64) as usize;
    let mut engine: ShardedQMax<u64, u64, FaultyBackend<DeamortizedQMax<u64, u64>>> =
        ShardedQMax::with_backends(q, shards, move |s| {
            let schedule = if s == failing {
                FaultSchedule::panic_at(200 + seed % 300)
            } else {
                FaultSchedule::none()
            };
            FaultyBackend::new(DeamortizedQMax::new(q, gamma), schedule)
        });
    let config = DriverConfig::default();
    let report = engine.run_threaded(items.iter().copied(), config);
    assert_eq!(report.failures.len(), 1, "scripted failure must fire");
    assert_balanced(&report);
    assert_eq!(engine.query().len(), q, "engine must stay queryable");
    println!("{}", report_json("one-shard-panic", seed, &config, &report));

    // Scenario 2: seeded chaos schedules on every shard under the
    // shedding policy; loss is budgeted, accounting still balances.
    let budget = 50_000u64;
    let mut chaotic: ShardedQMax<u64, u64, FaultyBackend<DeamortizedQMax<u64, u64>>> =
        ShardedQMax::with_backends(q, shards, move |s| {
            FaultyBackend::new(
                DeamortizedQMax::new(q, gamma),
                FaultSchedule::seeded(seed.wrapping_mul(0x9E37).wrapping_add(s as u64), 256),
            )
        });
    let config = DriverConfig {
        batch_size: 256,
        queue_depth: 2,
        overload: OverloadPolicy::Shed {
            max_dropped: budget,
        },
        ..DriverConfig::default()
    };
    let report = chaotic.run_threaded(items.iter().copied(), config);
    assert_balanced(&report);
    for &d in &report.per_shard_dropped {
        assert!(d <= budget, "shed beyond budget");
    }
    let _ = chaotic.query();
    println!(
        "{}",
        report_json("seeded-chaos-shed", seed, &config, &report)
    );

    // Scenario 3: supervised run — one shard panics (warm-restored from
    // its last checkpoint in place) and another stalls long enough for
    // the watchdog to fail it over to a replacement under backoff. No
    // permanent failures: the lifecycle log carries the full
    // Suspect → Restarting → Healthy history and the recovered-entry
    // accounting bounds the loss to one checkpoint interval.
    let panicking = (seed % shards as u64) as usize;
    let stalling = ((seed + 1) % shards as u64) as usize;
    let mut supervised: ShardedQMax<u64, u64, FaultyBackend<AmortizedQMax<u64, u64>>> =
        ShardedQMax::with_backends(q, shards, {
            let mut builds = vec![0u32; shards];
            move |s| {
                builds[s] += 1;
                let schedule = if s == panicking && builds[s] == 1 {
                    FaultSchedule::panic_at(60_000 + seed % 5_000)
                } else if s == stalling && builds[s] == 1 {
                    FaultSchedule::stall_at(30_000, 400)
                } else {
                    FaultSchedule::none()
                };
                FaultyBackend::new(AmortizedQMax::new(q, gamma), schedule)
            }
        });
    let config = DriverConfig {
        batch_size: 1024,
        queue_depth: 2,
        overload: OverloadPolicy::Block,
        checkpoint_every: Some(1024),
        watchdog: Some(WatchdogConfig {
            deadline: std::time::Duration::from_millis(80),
            poll_interval: std::time::Duration::from_millis(10),
            backoff_base: std::time::Duration::from_millis(5),
            seed,
            ..WatchdogConfig::default()
        }),
        pin_threads: false,
    };
    let report = supervised.run_supervised(items.iter().copied(), config);
    assert_balanced(&report);
    assert!(
        report.failures.is_empty(),
        "supervision must recover both shards"
    );
    assert!(
        report.lifecycle.restarts(panicking) >= 1,
        "panic restart must be logged"
    );
    assert!(
        report.lifecycle.restarts(stalling) >= 1,
        "stall failover must be logged"
    );
    assert_eq!(supervised.query().len(), q, "engine must stay queryable");
    let annotated = supervised.query_with_coverage();
    assert_eq!(
        annotated.coverage, 1.0,
        "warm restores must recover full coverage"
    );
    println!(
        "{}",
        report_json("supervised-warm-recovery", seed, &config, &report)
    );
}
