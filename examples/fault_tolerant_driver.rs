//! Fault-tolerant driver demo: runs the threaded sharded engine under a
//! scripted shard failure and a load-shedding scenario, and prints the
//! failure-accounting report as JSON (the artifact the CI chaos job
//! uploads).
//!
//! Run with: `cargo run --release --example fault_tolerant_driver [seed]`
//!
//! The optional seed varies both the stream and the fault schedules;
//! the same seed always reproduces the same failures (the blocking
//! overload policy makes each shard's sub-stream, and therefore its
//! offered-insert fault clock, deterministic).

use qmax_core::{DeamortizedQMax, QMax};
use qmax_engine::fault::silence_fault_panics;
use qmax_engine::{
    DriverConfig, DriverReport, FaultSchedule, FaultyBackend, OverloadPolicy, ShardedQMax,
};
use qmax_traces::gen::caida_like;

fn report_json(name: &str, seed: u64, report: &DriverReport) -> String {
    let failures: Vec<String> = report
        .failures
        .iter()
        .map(|f| {
            format!(
                r#"{{"shard":{},"items_lost":{},"message":{:?}}}"#,
                f.shard, f.items_lost, f.message
            )
        })
        .collect();
    let vec_json = |v: &[u64]| {
        let parts: Vec<String> = v.iter().map(|x| x.to_string()).collect();
        format!("[{}]", parts.join(","))
    };
    format!(
        concat!(
            r#"{{"scenario":{:?},"seed":{},"items":{},"dropped":{},"quarantined":{},"#,
            r#""per_shard_items":{},"per_shard_drained":{},"per_shard_dropped":{},"#,
            r#""per_shard_quarantined":{},"max_load_factor":{:.4},"#,
            r#""throughput_mips":{:.2},"failures":[{}]}}"#
        ),
        name,
        seed,
        report.items,
        report.dropped(),
        report.quarantined(),
        vec_json(&report.per_shard_items),
        vec_json(&report.per_shard_drained),
        vec_json(&report.per_shard_dropped),
        vec_json(&report.per_shard_quarantined),
        report.max_load_factor(),
        report.throughput_mips(),
        failures.join(",")
    )
}

fn assert_balanced(report: &DriverReport) {
    for s in 0..report.per_shard_items.len() {
        assert_eq!(
            report.per_shard_items[s],
            report.per_shard_drained[s]
                + report.per_shard_dropped[s]
                + report.per_shard_quarantined[s],
            "shard {s} accounting does not balance"
        );
    }
}

fn main() {
    silence_fault_panics();
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let q = 512;
    let gamma = 0.25;
    let shards = 4;
    let items: Vec<(u64, u64)> = caida_like(1_000_000, seed)
        .map(|p| (p.flow().as_u64(), p.len as u64))
        .collect();

    // Scenario 1: one shard panics mid-stream under the blocking
    // policy; the others finish and the merged query still answers.
    let failing = (seed % shards as u64) as usize;
    let mut engine: ShardedQMax<u64, u64, FaultyBackend<DeamortizedQMax<u64, u64>>> =
        ShardedQMax::with_backends(q, shards, move |s| {
            let schedule = if s == failing {
                FaultSchedule::panic_at(200 + seed % 300)
            } else {
                FaultSchedule::none()
            };
            FaultyBackend::new(DeamortizedQMax::new(q, gamma), schedule)
        });
    let report = engine.run_threaded(items.iter().copied(), DriverConfig::default());
    assert_eq!(report.failures.len(), 1, "scripted failure must fire");
    assert_balanced(&report);
    assert_eq!(engine.query().len(), q, "engine must stay queryable");
    println!("{}", report_json("one-shard-panic", seed, &report));

    // Scenario 2: seeded chaos schedules on every shard under the
    // shedding policy; loss is budgeted, accounting still balances.
    let budget = 50_000u64;
    let mut chaotic: ShardedQMax<u64, u64, FaultyBackend<DeamortizedQMax<u64, u64>>> =
        ShardedQMax::with_backends(q, shards, move |s| {
            FaultyBackend::new(
                DeamortizedQMax::new(q, gamma),
                FaultSchedule::seeded(seed.wrapping_mul(0x9E37).wrapping_add(s as u64), 256),
            )
        });
    let report = chaotic.run_threaded(
        items.iter().copied(),
        DriverConfig {
            batch_size: 256,
            queue_depth: 2,
            overload: OverloadPolicy::Shed {
                max_dropped: budget,
            },
        },
    );
    assert_balanced(&report);
    for &d in &report.per_shard_dropped {
        assert!(d <= budget, "shed beyond budget");
    }
    let _ = chaotic.query();
    println!("{}", report_json("seeded-chaos-shed", seed, &report));
}
