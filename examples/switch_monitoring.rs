//! In-switch monitoring at line rate: attach priority sampling to the
//! simulated OVS datapath and see whether the switch still keeps up
//! with a 10G link (the scenario of the paper's Figures 12-14).
//!
//! Run with: `cargo run --release --example switch_monitoring`

use qmax_apps::PrioritySampling;
use qmax_core::{AmortizedQMax, HeapQMax, OrderedF64, QMax, SkipListQMax};
use qmax_ovs_sim::{evaluate_throughput, LineRate, MeasurementHook, NullHook, Switch};
use qmax_traces::gen::caida_like;
use qmax_traces::FlowKey;

/// Wraps Priority Sampling as a per-packet switch hook, sampling
/// packets weighted by their byte size.
struct SamplingHook<Q> {
    ps: PrioritySampling<Q>,
    label: &'static str,
}

impl<Q: QMax<qmax_apps::WeightedKey, OrderedF64>> MeasurementHook for SamplingHook<Q> {
    fn on_packet(&mut self, _flow: FlowKey, packet_id: u64, len: u16) {
        self.ps.observe(packet_id, len as f64);
    }

    fn name(&self) -> &'static str {
        self.label
    }
}

fn main() {
    let q = 1_000_000;
    let rate = LineRate {
        gbps: 10.0,
        frame_bytes: 64,
    };
    let packets: Vec<_> = caida_like(3_000_000, 11).collect();
    println!(
        "10G line rate at 64B frames: {:.2} Mpps, {:.1} ns/packet budget",
        rate.offered_pps() / 1e6,
        rate.budget_ns()
    );
    println!("q = {q}, trace = {} packets\n", packets.len());
    println!(
        "{:<26} {:>10} {:>12} {:>10}",
        "hook", "ns/pkt", "achieved", "of line"
    );

    report("vanilla (no measurement)", {
        let mut sw = Switch::new(8);
        evaluate_throughput(&mut sw, &mut NullHook, &packets, rate)
    });
    report("priority-sampling/q-MAX", {
        let mut sw = Switch::new(8);
        let mut hook = SamplingHook {
            ps: PrioritySampling::new(AmortizedQMax::new(q, 0.25), 1),
            label: "qmax",
        };
        evaluate_throughput(&mut sw, &mut hook, &packets, rate)
    });
    report("priority-sampling/heap", {
        let mut sw = Switch::new(8);
        let mut hook = SamplingHook {
            ps: PrioritySampling::new(HeapQMax::new(q), 1),
            label: "heap",
        };
        evaluate_throughput(&mut sw, &mut hook, &packets, rate)
    });
    report("priority-sampling/skiplist", {
        let mut sw = Switch::new(8);
        let mut hook = SamplingHook {
            ps: PrioritySampling::new(SkipListQMax::new(q), 1),
            label: "skiplist",
        };
        evaluate_throughput(&mut sw, &mut hook, &packets, rate)
    });
}

fn report(name: &str, rep: qmax_ovs_sim::ThroughputReport) {
    println!(
        "{name:<26} {:>10.1} {:>9.2} Gbps {:>9.0}%",
        rep.cost_ns_per_packet,
        rep.achieved_gbps,
        100.0 * rep.achieved_gbps / 10.0
    );
}
