//! Network-wide heavy hitters: packets cross a leaf-spine fabric of
//! simulated switches, every switch runs a q-MIN measurement point,
//! and a controller merges the reports into a routing-oblivious global
//! view — no packet is counted twice even though most are observed at
//! three switches.
//!
//! Run with: `cargo run --release --example network_heavy_hitters`

use qmax_apps::network_wide::{Controller, Nmp, SampledPacket};
use qmax_core::{AmortizedQMax, Minimal};
use qmax_ovs_sim::{LeafSpine, MeasurementHook};
use qmax_traces::gen::caida_like;
use qmax_traces::FlowKey;
use std::collections::HashMap;

struct NmpHook {
    nmp: Nmp<AmortizedQMax<SampledPacket, Minimal<u64>>>,
}

impl MeasurementHook for NmpHook {
    fn on_packet(&mut self, flow: FlowKey, packet_id: u64, _len: u16) {
        self.nmp.observe_raw(flow, packet_id);
    }
}

fn main() {
    let q = 20_000;
    let (leaves, spines) = (4, 2);
    let packets: Vec<_> = caida_like(1_000_000, 7).collect();

    // Ground-truth flow sizes for evaluation.
    let mut truth: HashMap<u64, u64> = HashMap::new();
    for p in &packets {
        *truth.entry(p.flow().as_u64()).or_default() += 1;
    }

    // Route everything through the fabric; all six switches carry an
    // NMP hook.
    let mut fabric = LeafSpine::new(leaves, spines);
    let mut hooks: Vec<NmpHook> = (0..leaves + spines)
        .map(|_| NmpHook {
            nmp: Nmp::new(AmortizedQMax::new(q, 0.25)),
        })
        .collect();
    for p in &packets {
        fabric.route(p, &mut hooks);
    }
    println!(
        "fabric: {} leaves x {} spines; {} packets made {} switch traversals",
        leaves,
        spines,
        packets.len(),
        fabric.total_hops()
    );

    let reports: Vec<Vec<SampledPacket>> = hooks.iter_mut().map(|h| h.nmp.report()).collect();
    let controller = Controller::new(q);
    let sample = controller.merge(&reports);
    println!(
        "controller merged {} reports; estimates {:.0} distinct packets (true: {})",
        reports.len(),
        sample.total_estimate,
        packets.len()
    );

    let hh = controller.heavy_hitters(&sample, 0.01);
    println!("\nflows above 1% of traffic:");
    println!(
        "{:<22} {:>12} {:>12} {:>8}",
        "flow", "estimated", "true", "err"
    );
    for (flow, est) in hh.iter().take(10) {
        let t = truth.get(&flow.as_u64()).copied().unwrap_or(0);
        let err = (est - t as f64).abs() / t.max(1) as f64;
        println!(
            "{:<22} {est:>12.0} {t:>12} {:>7.1}%",
            format!("{}.x.x.x->{}", flow.src_ip >> 24, flow.dst_port),
            err * 100.0
        );
    }
}
