//! Quickstart: track the largest flows of a packet trace with q-MAX.
//!
//! Run with: `cargo run --release --example quickstart`

use qmax_core::{AmortizedQMax, DeamortizedQMax, HeapQMax, QMax, SkipListQMax};
use qmax_traces::gen::caida_like;
use std::time::Instant;

fn main() {
    let q = 10_000;
    let packets: Vec<_> = caida_like(2_000_000, 42).collect();
    println!("trace: {} packets", packets.len());
    println!("tracking the q = {q} largest packets by size x hash priority\n");

    // Any QMax backend fits the same loop; q-MAX is the fast one.
    let mut qmax = DeamortizedQMax::new(q, 0.25);
    let mut amortized = AmortizedQMax::new(q, 0.25);
    let mut heap = HeapQMax::new(q);
    let mut skiplist = SkipListQMax::new(q);

    run("qmax-deamortized", &mut qmax, &packets);
    run("qmax-amortized  ", &mut amortized, &packets);
    run("heap            ", &mut heap, &packets);
    run("skiplist        ", &mut skiplist, &packets);

    // The structures agree on the answer.
    let mut a: Vec<u64> = qmax.query().into_iter().map(|(_, v)| v).collect();
    let mut b: Vec<u64> = heap.query().into_iter().map(|(_, v)| v).collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "backends disagree");
    println!("\nall backends return the same top-{q} set ✓");
}

fn run<Q: QMax<u32, u64>>(name: &str, qm: &mut Q, packets: &[qmax_traces::Packet]) {
    let start = Instant::now();
    for p in packets {
        // Value: a per-packet priority (here: size-weighted hash, the
        // kind of value priority sampling uses).
        let val = (p.len as u64) << 32 | (p.packet_id() & 0xFFFF_FFFF);
        qm.insert(p.seq as u32, val);
    }
    let dt = start.elapsed();
    let mpps = packets.len() as f64 / dt.as_secs_f64() / 1e6;
    println!("{name}  {:>8.2} Mpps  ({dt:.2?} total)", mpps);
}
