//! Universal monitoring: one UnivMon sketch answering heavy hitters,
//! entropy, and distinct-count queries over a packet trace, with q-MAX
//! tracking each level's heavy hitters.
//!
//! Run with: `cargo run --release --example universal_monitoring`

use qmax_apps::UnivMon;
use qmax_core::DedupQMax;
use qmax_traces::gen::caida_like;
use std::collections::HashMap;

fn main() {
    let packets: Vec<_> = caida_like(1_000_000, 3).collect();
    let keys: Vec<u64> = packets.iter().map(|p| p.flow().as_u64()).collect();

    // Ground truth for comparison.
    let mut truth: HashMap<u64, u64> = HashMap::new();
    for &k in &keys {
        *truth.entry(k).or_default() += 1;
    }
    let n = keys.len() as f64;
    let true_entropy: f64 = truth
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum();

    let mut um = UnivMon::new(12, 5, 4096, 7, || DedupQMax::new(128, 0.5));
    for &k in &keys {
        um.observe(k);
    }
    println!(
        "trace: {} packets, {} distinct flows",
        keys.len(),
        truth.len()
    );
    println!(
        "sketch: {} levels x (5 x 4096 CountSketch + 128-entry q-MAX tracker)\n",
        um.levels()
    );

    println!("top flows (level-0 heavy hitters):");
    println!("{:<20} {:>10} {:>10}", "flow", "estimate", "true");
    for (key, est) in um.level_heavy_hitters(0).into_iter().take(8) {
        println!(
            "{key:<20x} {est:>10.0} {:>10}",
            truth.get(&key).copied().unwrap_or(0)
        );
    }

    let est_entropy = um.estimate_entropy();
    let est_distinct = um.estimate_distinct();
    println!("\nentropy : estimated {est_entropy:.3} bits, true {true_entropy:.3} bits");
    println!(
        "distinct: estimated {est_distinct:.0}, true {} ({:+.1}%)",
        truth.len(),
        (est_distinct / truth.len() as f64 - 1.0) * 100.0
    );
}
