//! Property-based tests of the core invariants, driven by proptest.

use proptest::prelude::*;
use qmax_core::{
    AmortizedQMax, BasicSlackQMax, DeamortizedQMax, DedupQMax, HeapQMax, QMax, SkipListQMax,
};
use qmax_select::{nth_smallest, Direction, MachineStatus, NthElementMachine};
use std::collections::HashMap;

fn reference_top_q(vals: &[u64], q: usize) -> Vec<u64> {
    let mut s = vals.to_vec();
    s.sort_unstable_by(|a, b| b.cmp(a));
    s.truncate(q);
    s.sort_unstable();
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The interval structures return exactly the q largest values for
    /// arbitrary streams, q, and gamma.
    #[test]
    fn interval_qmax_matches_reference(
        vals in prop::collection::vec(any::<u64>(), 1..4000),
        q in 1usize..64,
        gamma in 0.01f64..2.5,
    ) {
        let expect = reference_top_q(&vals, q);
        let mut amort = AmortizedQMax::new(q, gamma);
        let mut deamort = DeamortizedQMax::new(q, gamma);
        let mut heap = HeapQMax::new(q);
        let mut skip = SkipListQMax::new(q);
        for (i, &v) in vals.iter().enumerate() {
            amort.insert(i as u32, v);
            deamort.insert(i as u32, v);
            heap.insert(i as u32, v);
            skip.insert(i as u32, v);
        }
        for qm in [&mut amort as &mut dyn QMax<u32, u64>, &mut deamort, &mut heap, &mut skip] {
            let mut got: Vec<u64> = qm.query().into_iter().map(|(_, v)| v).collect();
            got.sort_unstable();
            prop_assert_eq!(&got, &expect, "{} incorrect", qm.name());
        }
    }

    /// The admission threshold never admits an item that could not be
    /// among the top q, and never rejects one that must be.
    #[test]
    fn threshold_is_safe(
        vals in prop::collection::vec(any::<u64>(), 100..3000),
        q in 1usize..32,
    ) {
        let mut qm = DeamortizedQMax::new(q, 0.3);
        for (i, &v) in vals.iter().enumerate() {
            let before = qm.threshold();
            let admitted = qm.insert(i as u32, v);
            if let Some(t) = before {
                // Anything strictly above the threshold is admitted.
                prop_assert_eq!(admitted, v > t);
                // A rejected item is provably outside the top q of the
                // prefix: at least q earlier items are >= t >= v.
                if !admitted {
                    let bigger = vals[..=i].iter().filter(|&&x| x >= v).count();
                    prop_assert!(bigger > q);
                }
            }
        }
    }

    /// The selection machine computes the same order statistic as the
    /// batch introselect for any budget.
    #[test]
    fn machine_matches_batch_select(
        mut vals in prop::collection::vec(any::<u32>(), 1..800),
        k_seed in any::<u64>(),
        budget in 1usize..200,
    ) {
        let n = vals.len();
        let k = (k_seed as usize) % n;
        let mut batch = vals.clone();
        let expect = *nth_smallest(&mut batch, k);
        let mut m = NthElementMachine::new(0, n, k, Direction::Ascending);
        while m.step(&mut vals, budget) == MachineStatus::InProgress {}
        prop_assert_eq!(m.result_index(), Some(k));
        prop_assert_eq!(vals[k], expect);
        for &v in &vals[..k] {
            prop_assert!(v <= vals[k]);
        }
        for &v in &vals[k + 1..] {
            prop_assert!(v >= vals[k]);
        }
    }

    /// DedupQMax returns the top-q distinct keys by their maximum value.
    #[test]
    fn dedup_qmax_keeps_max_per_key(
        ops in prop::collection::vec((0u32..40, any::<u64>()), 1..3000),
        q in 1usize..16,
    ) {
        let mut qm = DedupQMax::new(q, 0.5);
        let mut truth: HashMap<u32, u64> = HashMap::new();
        for &(k, v) in &ops {
            qm.insert(k, v);
            let e = truth.entry(k).or_insert(0);
            if *e < v {
                *e = v;
            }
        }
        let got: HashMap<u32, u64> = qm.query().into_iter().collect();
        // Every reported key carries its true maximum value.
        for (&k, &v) in &got {
            prop_assert_eq!(truth.get(&k), Some(&v));
        }
        // The reported set dominates: no unreported key has a value
        // strictly above a reported one (ties may go either way).
        let reported_min = got.values().min().copied().unwrap_or(u64::MAX);
        let missing_max = truth
            .iter()
            .filter(|(k, _)| !got.contains_key(k))
            .map(|(_, &v)| v)
            .max();
        if let Some(mm) = missing_max {
            if got.len() == q {
                prop_assert!(mm <= reported_min);
            } else {
                // Fewer than q distinct keys exist; nothing may be missing.
                prop_assert_eq!(truth.len(), got.len());
            }
        }
    }

    /// Slack-window results always match the top-q of *some* window of
    /// valid slack length.
    #[test]
    fn slack_window_contract(
        vals in prop::collection::vec(any::<u64>(), 500..2500),
        q in 1usize..8,
        tau_inv in 2usize..10,
    ) {
        let w = 256;
        let tau = 1.0 / tau_inv as f64;
        let mut sw = BasicSlackQMax::new(q, 0.5, w, tau);
        let w_eff = sw.effective_window();
        let s = sw.block_size();
        for (i, &v) in vals.iter().enumerate() {
            sw.insert(i as u32, v);
        }
        if vals.len() >= w_eff {
            let mut got: Vec<u64> = sw.query().into_iter().map(|(_, v)| v).collect();
            got.sort_unstable();
            let n = vals.len();
            // Coverage spans [w_eff - s, w_eff - 1] items (exactly
            // w_eff - s right after a block boundary).
            let ok = (w_eff - s..=w_eff).any(|len| {
                len <= n && reference_top_q(&vals[n - len..], q) == got
            });
            prop_assert!(ok, "no valid window explains {:?}", got);
        }
    }

    /// Insert/query/reset cycles never corrupt state.
    #[test]
    fn reset_cycles_are_clean(
        chunks in prop::collection::vec(
            prop::collection::vec(any::<u64>(), 1..400), 1..5),
        q in 1usize..16,
    ) {
        let mut qm = DeamortizedQMax::new(q, 0.4);
        for chunk in &chunks {
            qm.reset();
            for (i, &v) in chunk.iter().enumerate() {
                qm.insert(i as u32, v);
            }
            let mut got: Vec<u64> = qm.query().into_iter().map(|(_, v)| v).collect();
            got.sort_unstable();
            prop_assert_eq!(got, reference_top_q(chunk, q));
        }
    }
}

/// Pinned counterpart of the `cc` case recorded in
/// `proptest_invariants.proptest-regressions` (shrunk to a ~1000-item
/// stream with `q = 6`, `tau_inv = 2` — the smallest slack fraction,
/// where block-boundary coverage is tightest). The original literal
/// array is impractical to inline, so this reconstructs the same
/// failure-mode class deterministically: a full-entropy u64 stream at
/// those exact shrunk parameters, checked against every valid slack
/// length (see DESIGN.md §7 for the regression-corpus convention).
#[test]
fn pinned_slack_window_small_q_half_tau() {
    let mut s = 0x9E37_79B9_7F4A_7C15u64;
    let vals: Vec<u64> = (0..1000)
        .map(|_| {
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            s.wrapping_mul(0x2545_F491_4F6C_DD1D)
        })
        .collect();
    let (q, w) = (6usize, 256);
    let mut sw = BasicSlackQMax::new(q, 0.5, w, 0.5);
    let (w_eff, blk) = (sw.effective_window(), sw.block_size());
    for (i, &v) in vals.iter().enumerate() {
        sw.insert(i as u32, v);
    }
    let mut got: Vec<u64> = sw.query().into_iter().map(|(_, v)| v).collect();
    got.sort_unstable();
    let n = vals.len();
    let ok =
        (w_eff - blk..=w_eff).any(|len| len <= n && reference_top_q(&vals[n - len..], q) == got);
    assert!(ok, "no valid window explains {got:?}");
}

// The worst-case guarantees get a deeper sweep: these are the paper's
// headline de-amortization claims, so run them at 256 cases.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// De-amortization contract: no insert sequence ever forces a
    /// blocking completion of the background selection, and no single
    /// insert performs more than the per-step operation budget
    /// `⌈WORK_BOUND_FACTOR·(q+g)/g⌉ + WORK_BOUND_FACTOR` (the
    /// structure's published worst-case O(γ⁻¹) bound), plus one
    /// indivisible selection step of at most 32 ops — the same slack
    /// the structure's own unit test documents.
    #[test]
    fn deamortized_work_bound_holds(
        vals in prop::collection::vec(any::<u64>(), 1..3000),
        q in 1usize..64,
        gamma_pct in 3usize..250,
    ) {
        let gamma = gamma_pct as f64 / 100.0;
        let mut qm = DeamortizedQMax::new(q, gamma);
        for (i, &v) in vals.iter().enumerate() {
            qm.insert(i as u32, v);
        }
        let stats = qm.stats();
        prop_assert_eq!(
            stats.forced_completions, 0,
            "q={} gamma={} forced a blocking completion", q, gamma
        );
        prop_assert!(
            stats.max_step_ops <= qm.step_budget() as u64 + 32,
            "q={} gamma={}: max_step_ops {} exceeds budget {}",
            q, gamma, stats.max_step_ops, qm.step_budget()
        );
    }

    /// The suspendable selection machine agrees with the standard
    /// library's `select_nth_unstable` on duplicate-heavy slices: the
    /// k-th element matches and the slice is three-way partitioned.
    #[test]
    fn machine_matches_std_select_nth(
        mut vals in prop::collection::vec(0u32..16, 1..600),
        k_seed in any::<u64>(),
        budget in 1usize..128,
    ) {
        let n = vals.len();
        let k = (k_seed as usize) % n;
        let mut by_std = vals.clone();
        let (_, &mut expect, _) = by_std.select_nth_unstable(k);
        let mut m = NthElementMachine::new(0, n, k, Direction::Ascending);
        while m.step(&mut vals, budget) == MachineStatus::InProgress {}
        prop_assert_eq!(m.result_index(), Some(k));
        prop_assert_eq!(vals[k], expect, "order statistic diverged at k={}", k);
        for &v in &vals[..k] {
            prop_assert!(v <= vals[k]);
        }
        for &v in &vals[k + 1..] {
            prop_assert!(v >= vals[k]);
        }
    }
}
