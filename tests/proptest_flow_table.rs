//! Differential battery for the SIMD-probed open-addressing flow table:
//! [`FlowTable`] must be observationally equivalent to `std::collections::
//! HashMap` on every interleaved insert/lookup/remove stream — including
//! streams sized to force incremental resizes mid-stream and streams
//! crafted to pile every key into a handful of probe groups.
//!
//! Every property runs *two* flow tables side by side against the oracle:
//! one with the runtime-dispatched probe kernel and one pinned to the
//! scalar reference via [`ProbeKernel::scalar`]. Any divergence between
//! them is a probe-kernel bug (SSE2/NEON `match_byte` disagreeing with
//! the scalar loop); any joint divergence from the `HashMap` is a table
//! bug (backward-shift deletion, migration, or probe-chain logic).
//!
//! The in-tree proptest shim does not persist shrunk failures, so the
//! pinned cases in `proptest_flow_table.proptest-regressions` are
//! replicated here as explicit `#[test]`s (see `pinned_*` below and the
//! convention note in DESIGN.md §7).

use proptest::prelude::*;
use qmax_core::flow_table::FX_K;
use qmax_core::FlowTable;
use qmax_select::ProbeKernel;
use std::collections::HashMap;

/// Multiplicative inverse of the FxHash key `FX_K` modulo 2^64 (the
/// constant is odd, hence invertible; six Newton iterations converge).
fn fx_inv() -> u64 {
    let mut inv: u64 = 1;
    for _ in 0..6 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(FX_K.wrapping_mul(inv)));
    }
    assert_eq!(FX_K.wrapping_mul(inv), 1);
    inv
}

/// A `u64` key whose FxHash is exactly `(g << 7) | t`: home group `g`
/// (masked by the live table's group count) and control tag `t`. Lets
/// the generators aim unbounded numbers of keys at one probe group.
fn crafted_key(g: u64, t: u64) -> u64 {
    ((g << 7) | (t & 0x7F)).wrapping_mul(fx_inv())
}

/// The three key-stream shapes from the issue: Zipf-skewed (heavy
/// duplicates), all-equal (one key the whole stream), and adversarial
/// same-bucket (every key crafted to home into groups 0..4, so probe
/// chains span many groups and deletions must backward-shift across
/// group boundaries).
fn key_for(mode: u8, raw: u64, shift: u32, seed: u64) -> u64 {
    match mode {
        0 => raw >> shift,
        1 => seed | 1,
        _ => crafted_key(raw & 3, raw >> 57),
    }
}

fn sorted_pairs(t: &FlowTable<u64, u64>) -> Vec<(u64, u64)> {
    let mut v = Vec::new();
    t.for_each(|&k, &val| v.push((k, val)));
    v.sort_unstable();
    v
}

fn sorted_oracle(m: &HashMap<u64, u64>) -> Vec<(u64, u64)> {
    let mut v: Vec<(u64, u64)> = m.iter().map(|(&k, &val)| (k, val)).collect();
    v.sort_unstable();
    v
}

/// Replays one op stream on {dispatched, forced-scalar} flow tables and
/// the `HashMap` oracle, asserting equivalence after every single op.
/// Returns the dispatched table for post-conditions. Panics (rather than
/// `prop_assert!`s) so the pinned `#[test]`s below can reuse it.
fn replay_stream(mode: u8, seed: u64, ops: &[(u8, u64, u32)]) -> FlowTable<u64, u64> {
    let mut det: FlowTable<u64, u64> = FlowTable::new();
    let mut sca: FlowTable<u64, u64> = FlowTable::with_capacity_and_probe(0, ProbeKernel::scalar());
    let mut oracle: HashMap<u64, u64> = HashMap::new();
    for (i, &(op, raw, shift)) in ops.iter().enumerate() {
        let k = key_for(mode, raw, shift, seed);
        let v = i as u64;
        match op % 16 {
            // Insert-heavy mix: tables only resize under insert pressure.
            0..=8 => {
                let want = oracle.insert(k, v);
                assert_eq!(det.insert(k, v), want, "insert diverged at op {i}");
                assert_eq!(sca.insert(k, v), want, "scalar insert diverged at op {i}");
            }
            9..=12 => {
                let want = oracle.get(&k).copied();
                assert_eq!(det.get(&k).copied(), want, "get diverged at op {i}");
                assert_eq!(sca.get(&k).copied(), want, "scalar get diverged at op {i}");
                assert_eq!(det.contains_key(&k), want.is_some());
            }
            _ => {
                let want = oracle.remove(&k);
                assert_eq!(det.remove(&k), want, "remove diverged at op {i}");
                assert_eq!(sca.remove(&k), want, "scalar remove diverged at op {i}");
            }
        }
        assert_eq!(det.len(), oracle.len(), "len diverged at op {i}");
        assert_eq!(sca.len(), oracle.len(), "scalar len diverged at op {i}");
    }
    assert_eq!(sorted_pairs(&det), sorted_oracle(&oracle));
    assert_eq!(sorted_pairs(&sca), sorted_oracle(&oracle));
    assert_eq!(
        det.resizes(),
        sca.resizes(),
        "probe kernel choice changed the resize schedule"
    );
    det
}

/// Replays one upsert stream through the batched probe pipeline in
/// `span`-key slices — [`FlowTable::entry_batch`] on a dispatched and a
/// forced-scalar table — against a singleton `get_mut`/`insert` replay
/// on a third flow table and the `HashMap` oracle. The upsert counts
/// occurrences, so within-span duplicates must observe the value written
/// earlier in the *same* span, and the hit/miss sequence reported by
/// `visit` must match the oracle key-for-key. After every span,
/// [`FlowTable::probe_batch`] is checked against oracle gets (catching
/// stale reads while a span-triggered migration is in flight), and the
/// run ends with a [`FlowTable::get_mut_batch`] sweep plus full-content
/// and resize-schedule comparisons — batching must not move a single
/// resize point. Panics (rather than `prop_assert!`s) so the pinned
/// `#[test]`s below can reuse it.
fn replay_batched_keys(keys: &[u64], span: usize) -> FlowTable<u64, u64> {
    let span = span.max(1);
    let mut det: FlowTable<u64, u64> = FlowTable::new();
    let mut sca: FlowTable<u64, u64> = FlowTable::with_capacity_and_probe(0, ProbeKernel::scalar());
    let mut single: FlowTable<u64, u64> = FlowTable::new();
    let mut oracle: HashMap<u64, u64> = HashMap::new();
    for (s, chunk) in keys.chunks(span).enumerate() {
        let mut want = Vec::with_capacity(chunk.len());
        for &k in chunk {
            match oracle.get_mut(&k) {
                Some(v) => {
                    *v += 1;
                    want.push(true);
                }
                None => {
                    oracle.insert(k, 1);
                    want.push(false);
                }
            }
        }
        for &k in chunk {
            match single.get_mut(&k) {
                Some(v) => *v += 1,
                None => {
                    single.insert(k, 1);
                }
            }
        }
        for table in [&mut det, &mut sca] {
            let mut seen = Vec::with_capacity(chunk.len());
            table.entry_batch(
                chunk,
                |_| 1u64,
                |_, v, present| {
                    if present {
                        *v += 1;
                    }
                    seen.push(present);
                },
            );
            assert_eq!(seen, want, "entry_batch hit/miss diverged in span {s}");
        }
        assert_eq!(det.len(), oracle.len(), "len diverged after span {s}");
        assert_eq!(
            sca.len(),
            oracle.len(),
            "scalar len diverged after span {s}"
        );
        let mut got: Vec<Option<u64>> = Vec::with_capacity(chunk.len());
        det.probe_batch(chunk, |_, v| got.push(v.copied()));
        let expect: Vec<Option<u64>> = chunk.iter().map(|k| oracle.get(k).copied()).collect();
        assert_eq!(got, expect, "probe_batch diverged after span {s}");
        let mut got_sca: Vec<Option<u64>> = Vec::with_capacity(chunk.len());
        sca.probe_batch(chunk, |_, v| got_sca.push(v.copied()));
        assert_eq!(
            got_sca, expect,
            "scalar probe_batch diverged after span {s}"
        );
    }
    // Closing sweep: bump every resident (plus one guaranteed-absent
    // key) through get_mut_batch, mirrored singleton-wise in the oracle.
    let mut all: Vec<u64> = sorted_oracle(&oracle).into_iter().map(|(k, _)| k).collect();
    let absent = (0..)
        .map(|i| u64::MAX - i)
        .find(|k| !oracle.contains_key(k))
        .unwrap();
    all.push(absent);
    for table in [&mut det, &mut sca] {
        let mut misses = 0usize;
        table.get_mut_batch(&all, |_, v| match v {
            Some(v) => *v += 7,
            None => misses += 1,
        });
        assert_eq!(misses, 1, "get_mut_batch must miss exactly the absent key");
    }
    for k in &all[..all.len() - 1] {
        *oracle.get_mut(k).unwrap() += 7;
        *single.get_mut(k).unwrap() += 7;
    }
    assert_eq!(sorted_pairs(&det), sorted_oracle(&oracle));
    assert_eq!(sorted_pairs(&sca), sorted_oracle(&oracle));
    assert_eq!(sorted_pairs(&single), sorted_oracle(&oracle));
    assert_eq!(
        det.resizes(),
        single.resizes(),
        "batching changed the resize schedule"
    );
    assert_eq!(sca.resizes(), single.resizes());
    det
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Core oracle property: FlowTable (dispatched *and* forced-scalar)
    /// ≡ HashMap op-for-op on all three stream shapes.
    #[test]
    fn flow_table_matches_hashmap_oracle(
        mode in 0u8..3,
        seed in any::<u64>(),
        ops in prop::collection::vec((any::<u8>(), any::<u64>(), 0u32..48), 1..400),
    ) {
        replay_stream(mode, seed, &ops);
    }

    /// Resize-under-fire: enough distinct inserts to force at least two
    /// incremental table doublings *mid-stream*, with removals and
    /// lookups interleaved so gets/deletes hit the old core, the live
    /// core, and pass-through DRAINED slots while migration is running.
    /// All-equal streams are excluded — one key can never trigger a
    /// resize — and the crafted mode pins every key into groups 0..8 so
    /// the whole migration happens on maximally clustered chains.
    #[test]
    fn incremental_resize_is_equivalent_midstream(
        crafted in 0u8..2,
        seed in any::<u64>(),
        distinct in 220usize..900,
        remove_stride in 2usize..7,
    ) {
        let mut det: FlowTable<u64, u64> = FlowTable::new();
        let mut sca: FlowTable<u64, u64> =
            FlowTable::with_capacity_and_probe(0, ProbeKernel::scalar());
        let mut oracle: HashMap<u64, u64> = HashMap::new();
        let mut migrating_observed = false;

        let key = |i: usize| -> u64 {
            if crafted == 1 {
                // Distinct (group, tag) pairs, all homed into groups 0..8.
                crafted_key((i % 8) as u64, (i / 8) as u64)
            } else {
                seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            }
        };
        for i in 0..distinct {
            let k = key(i);
            let want = oracle.insert(k, i as u64);
            prop_assert_eq!(det.insert(k, i as u64), want);
            prop_assert_eq!(sca.insert(k, i as u64), want);
            migrating_observed |= det.is_migrating();
            if i % remove_stride == 0 && i > 0 {
                // Delete a key inserted a while ago: during migration it
                // may still live in the old core.
                let victim = key(i / 2);
                let want = oracle.remove(&victim);
                prop_assert_eq!(det.remove(&victim), want, "remove diverged at {}", i);
                prop_assert_eq!(sca.remove(&victim), want);
            }
            // Probe a sliding window around the migration frontier.
            for probe in [i / 2, i.saturating_sub(1), i / 3] {
                let k = key(probe);
                let want = oracle.get(&k).copied();
                prop_assert_eq!(det.get(&k).copied(), want, "get diverged at {}", i);
                prop_assert_eq!(sca.get(&k).copied(), want);
            }
            prop_assert_eq!(det.len(), oracle.len());
        }
        // 220+ distinct keys from 16 slots must double at least twice
        // (16 → 32 → 64 …), and the stride-based removals cannot keep
        // the table below the 7/8 trigger for long.
        prop_assert!(det.resizes() >= 2, "only {} resizes", det.resizes());
        prop_assert!(migrating_observed, "migration never observed mid-stream");
        prop_assert_eq!(sorted_pairs(&det), sorted_oracle(&oracle));
        prop_assert_eq!(sorted_pairs(&sca), sorted_oracle(&oracle));
    }

    /// Batched probes ≡ singleton replay on all three stream shapes
    /// (Zipf-skewed, all-equal, adversarial same-bucket), for span sizes
    /// both below and well above the [`qmax_core::PROBE_PIPELINE`]
    /// prefetch stage, on the dispatched *and* the forced-scalar kernel.
    #[test]
    fn batched_probes_match_singleton_replay(
        mode in 0u8..3,
        seed in any::<u64>(),
        ops in prop::collection::vec((any::<u64>(), 0u32..48), 1..600),
        span in 1usize..96,
    ) {
        let keys: Vec<u64> = ops
            .iter()
            .map(|&(raw, shift)| key_for(mode, raw, shift, seed))
            .collect();
        replay_batched_keys(&keys, span);
    }

    /// Batched upserts with enough distinct keys that incremental
    /// resizes trigger *inside* an `entry_batch` span: later keys in the
    /// span must probe through the old core, the live core, and DRAINED
    /// pass-through slots mid-migration — and the resize schedule must
    /// land on exactly the same inserts as the singleton replay.
    #[test]
    fn batched_upserts_resize_mid_span(
        crafted in 0u8..2,
        seed in any::<u64>(),
        distinct in 260usize..500,
        span in 33usize..257,
    ) {
        let key = |i: usize| -> u64 {
            if crafted == 1 {
                // Distinct (group, tag) pairs, all homed into groups 0..8.
                crafted_key((i % 8) as u64, (i / 8) as u64)
            } else {
                seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            }
        };
        // Each distinct key appears twice (second pass all hits), and the
        // span size exceeds PROBE_PIPELINE so one span covers multiple
        // prefetch stages.
        let keys: Vec<u64> = (0..distinct).chain(0..distinct).map(key).collect();
        let det = replay_batched_keys(&keys, span);
        prop_assert!(det.resizes() >= 2, "only {} resizes", det.resizes());
    }

    /// `retain_with` ≡ `HashMap::retain` under the same predicate, and
    /// `drain_each` empties the table while yielding exactly the oracle's
    /// contents — including while a migration is in flight.
    #[test]
    fn retain_and_drain_match_oracle(
        mode in 0u8..3,
        seed in any::<u64>(),
        ops in prop::collection::vec((any::<u8>(), any::<u64>(), 0u32..48), 1..300),
        keep_mod in 2u64..5,
    ) {
        let mut det = replay_stream(mode, seed, &ops);
        let mut oracle: HashMap<u64, u64> = sorted_pairs(&det).into_iter().collect();

        det.retain_with(|_, v| *v % keep_mod != 0);
        oracle.retain(|_, v| *v % keep_mod != 0);
        prop_assert_eq!(sorted_pairs(&det), sorted_oracle(&oracle));

        let mut drained: Vec<(u64, u64)> = Vec::new();
        det.drain_each(|k, v| drained.push((k, v)));
        drained.sort_unstable();
        prop_assert_eq!(drained, sorted_oracle(&oracle));
        prop_assert!(det.is_empty());
    }
}

/// Pinned case from `proptest_flow_table.proptest-regressions` (the
/// in-tree proptest shim replays nothing automatically): an adversarial
/// same-bucket stream that interleaves deletions with the growth that
/// crosses two resize boundaries, exercising backward-shift relocation
/// across group boundaries while the old core still holds DRAINED slots.
#[test]
fn pinned_same_bucket_churn_through_two_resizes() {
    // xorshift64* with the seed recorded in the regression file.
    let mut s: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut ops: Vec<(u8, u64, u32)> = Vec::new();
    for _ in 0..600 {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        ops.push(((s % 16) as u8, s.wrapping_mul(0x2545_F491_4F6C_DD1D), 0));
    }
    let t = replay_stream(2, 0, &ops);
    assert!(
        !t.is_empty(),
        "stream must leave residents so the final sweep is non-trivial"
    );
}

/// Pinned case: all-equal stream where every op lands on one key — the
/// degenerate shape that once distinguished "update in place" from
/// "insert a duplicate" bugs in open-addressing tables.
#[test]
fn pinned_all_equal_single_key_stream() {
    let ops: Vec<(u8, u64, u32)> = (0..200u64).map(|i| ((i % 16) as u8, i, 0)).collect();
    replay_stream(1, 0xDEAD_BEEF, &ops);
}

/// Pinned case from `proptest_flow_table.proptest-regressions`: batched
/// upserts over adversarial same-bucket keys (groups 0..4) in spans of
/// 48 — larger than one PROBE_PIPELINE stage — sized so both incremental
/// resizes trigger mid-span while the probe chains are maximally
/// clustered.
#[test]
fn pinned_batched_same_bucket_spans_through_resizes() {
    let mut s: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut keys: Vec<u64> = Vec::new();
    for _ in 0..900 {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        let raw = s.wrapping_mul(0x2545_F491_4F6C_DD1D);
        keys.push(key_for(2, raw, 0, 0));
    }
    let det = replay_batched_keys(&keys, 48);
    assert!(!det.is_empty());
}

/// Pinned case: an entire batch span made of one repeated key — every
/// visit after the first must see `present == true` and the value
/// written earlier in the same span, the shape that would break if
/// `entry_batch` resolved its prefetch stage against a pre-span
/// snapshot instead of replaying singleton semantics.
#[test]
fn pinned_batched_all_equal_span_of_one_key() {
    let keys = vec![0xDEAD_BEEF_u64 | 1; 300];
    let det = replay_batched_keys(&keys, 64);
    assert_eq!(det.len(), 1);
    assert_eq!(
        det.get(&(0xDEAD_BEEF_u64 | 1)).copied(),
        Some(300 + 7),
        "inserted at 1, bumped by 299 in-span hits, then the +7 sweep"
    );
}
