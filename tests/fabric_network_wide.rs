//! Integration: network-wide heavy hitters over the leaf–spine fabric —
//! packets traverse up to three switches, every switch runs an NMP
//! hook, and the controller's merged sample still counts each packet
//! once (the paper's routing-oblivious claim on a real topology).

use qmax_apps::network_wide::{Controller, Nmp, SampledPacket};
use qmax_core::{AmortizedQMax, Minimal};
use qmax_ovs_sim::{LeafSpine, MeasurementHook};
use qmax_traces::gen::caida_like;
use qmax_traces::{FlowKey, Packet};
use std::collections::{HashMap, HashSet};

struct NmpHook {
    nmp: Nmp<AmortizedQMax<SampledPacket, Minimal<u64>>>,
}

impl MeasurementHook for NmpHook {
    fn on_packet(&mut self, flow: FlowKey, packet_id: u64, _len: u16) {
        self.nmp.observe_raw(flow, packet_id);
    }
}

fn run_fabric(
    packets: &[Packet],
    leaves: usize,
    spines: usize,
    q: usize,
    instrumented: usize,
) -> (Vec<Vec<SampledPacket>>, u64) {
    let mut fabric = LeafSpine::new(leaves, spines);
    let mut hooks: Vec<NmpHook> = (0..instrumented)
        .map(|_| NmpHook {
            nmp: Nmp::new(AmortizedQMax::new(q, 0.5)),
        })
        .collect();
    for p in packets {
        fabric.route(p, &mut hooks);
    }
    let reports = hooks.iter_mut().map(|h| h.nmp.report()).collect();
    (reports, fabric.total_hops())
}

#[test]
fn full_instrumentation_counts_every_packet_once() {
    let packets: Vec<Packet> = caida_like(100_000, 5).collect();
    let q = 2_000;
    let (reports, hops) = run_fabric(&packets, 4, 2, q, 6);
    assert!(
        hops > packets.len() as u64,
        "fabric produced no multi-hop paths"
    );
    let ctl = Controller::new(q);
    let sample = ctl.merge(&reports);
    // No duplicate packets despite multi-switch observation.
    let distinct: HashSet<u64> = sample.packets.iter().map(|sp| sp.hash).collect();
    assert_eq!(distinct.len(), sample.packets.len());
    // The total estimate tracks distinct packets, not hops.
    let rel = (sample.total_estimate - packets.len() as f64).abs() / packets.len() as f64;
    assert!(
        rel < 0.15,
        "estimate {} vs {} packets (rel {rel}) — double counting?",
        sample.total_estimate,
        packets.len()
    );
}

#[test]
fn partial_deployment_estimates_its_coverage() {
    // Instrument only the leaves (no spines): every packet still hits
    // at least its ingress leaf, so coverage is complete and estimates
    // hold — the routing-oblivious scheme needs no core cooperation.
    let packets: Vec<Packet> = caida_like(80_000, 7).collect();
    let q = 1_500;
    let (reports, _) = run_fabric(&packets, 4, 2, q, 4); // 4 = leaves only
    let ctl = Controller::new(q);
    let sample = ctl.merge(&reports);
    let rel = (sample.total_estimate - packets.len() as f64).abs() / packets.len() as f64;
    assert!(
        rel < 0.15,
        "leaf-only estimate {} (rel {rel})",
        sample.total_estimate
    );
}

#[test]
fn fabric_heavy_hitters_match_ground_truth() {
    // Inject a 25% flow into the trace and find it through the fabric.
    let mut packets: Vec<Packet> = caida_like(60_000, 9).collect();
    let hh = packets[17];
    for (i, p) in packets.iter_mut().enumerate() {
        if i % 4 == 0 {
            p.src_ip = hh.src_ip;
            p.dst_ip = hh.dst_ip;
            p.src_port = hh.src_port;
            p.dst_port = hh.dst_port;
            p.proto = hh.proto;
        }
    }
    let mut truth: HashMap<u64, u64> = HashMap::new();
    for p in &packets {
        *truth.entry(p.flow().as_u64()).or_default() += 1;
    }
    let q = 2_000;
    let (reports, _) = run_fabric(&packets, 3, 2, q, 5);
    let ctl = Controller::new(q);
    let sample = ctl.merge(&reports);
    let found = ctl.heavy_hitters(&sample, 0.2);
    assert!(!found.is_empty());
    assert_eq!(found[0].0, hh.flow(), "wrong top flow through the fabric");
    let est = found[0].1;
    let true_count = truth[&hh.flow().as_u64()] as f64;
    let rel = (est - true_count).abs() / true_count;
    assert!(rel < 0.15, "HH estimate {est} vs {true_count} (rel {rel})");
}
