//! Differential property tests pinning the structure-of-arrays backends
//! to the array-of-structs originals and to the standard library.
//!
//! The SoA fast path re-implements the q-MAX hot loop three times over —
//! branchless batch admission, paired selection kernels, a paired
//! suspendable machine — so its contract is checked the strongest way
//! available: byte-for-byte agreement of thresholds and admission
//! decisions with the AoS backends on every stream shape that has ever
//! broken a selection algorithm (duplicate-heavy, all-equal, adversarial
//! chunkings), plus agreement with `select_nth_unstable` as the
//! independent ground truth.
//!
//! Results are compared as sorted value multisets: ids tie-break
//! arbitrarily between equal values in both layouts, so value sets are
//! the invariant, not id sets.

use proptest::prelude::*;
use qmax_core::{
    AmortizedQMax, BatchInsert, DeamortizedQMax, QMax, SoaAmortizedQMax, SoaDeamortizedQMax,
};
use qmax_select::{paired_nth_smallest, Direction, MachineStatus, PairedNthElementMachine};

fn reference_top_q(vals: &[u64], q: usize) -> Vec<u64> {
    let mut s = vals.to_vec();
    s.sort_unstable_by(|a, b| b.cmp(a));
    s.truncate(q);
    s.sort_unstable();
    s
}

fn sorted_vals(pairs: Vec<(u32, u64)>) -> Vec<u64> {
    let mut v: Vec<u64> = pairs.into_iter().map(|(_, v)| v).collect();
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// SoA amortized ≡ AoS amortized: same admissions, same threshold
    /// trajectory, same top-q, on arbitrary streams.
    #[test]
    fn soa_amortized_equals_aos(
        vals in prop::collection::vec(any::<u64>(), 1..3000),
        q in 1usize..64,
        gamma in 0.01f64..2.5,
    ) {
        let mut aos = AmortizedQMax::new(q, gamma);
        let mut soa = SoaAmortizedQMax::new(q, gamma);
        for (i, &v) in vals.iter().enumerate() {
            let a = aos.insert(i as u32, v);
            let s = soa.insert(i as u32, v);
            prop_assert_eq!(a, s, "admission diverged at item {}", i);
            prop_assert_eq!(aos.threshold(), soa.threshold());
        }
        prop_assert_eq!(sorted_vals(aos.query()), sorted_vals(soa.query()));
    }

    /// SoA de-amortized ≡ AoS de-amortized on duplicate-heavy streams —
    /// the regime where three-way partitions and tie-breaking have the
    /// most room to diverge — including identical machine statistics.
    #[test]
    fn soa_deamortized_equals_aos_duplicate_heavy(
        vals in prop::collection::vec(0u64..8, 1..3000),
        q in 1usize..48,
        gamma_pct in 3usize..250,
    ) {
        let gamma = gamma_pct as f64 / 100.0;
        let mut aos = DeamortizedQMax::new(q, gamma);
        let mut soa = SoaDeamortizedQMax::new(q, gamma);
        for (i, &v) in vals.iter().enumerate() {
            let a = aos.insert(i as u32, v);
            let s = soa.insert(i as u32, v);
            prop_assert_eq!(a, s, "admission diverged at item {}", i);
            prop_assert_eq!(aos.threshold(), soa.threshold());
        }
        prop_assert_eq!(aos.stats(), soa.stats());
        prop_assert_eq!(sorted_vals(aos.query()), sorted_vals(soa.query()));
        prop_assert_eq!(sorted_vals(aos.query()), reference_top_q(&vals, q));
    }

    /// All-equal streams: every partition degenerates to the equal band;
    /// both backends must keep exactly min(q, n) copies and agree.
    #[test]
    fn soa_handles_all_equal_streams(
        n in 1usize..3000,
        value in any::<u64>(),
        q in 1usize..32,
        gamma in 0.05f64..2.0,
    ) {
        let items: Vec<(u32, u64)> = (0..n).map(|i| (i as u32, value)).collect();
        let mut aos = DeamortizedQMax::new(q, gamma);
        let mut soa_d = SoaDeamortizedQMax::new(q, gamma);
        let mut soa_a = SoaAmortizedQMax::new(q, gamma);
        for &(id, v) in &items {
            aos.insert(id, v);
        }
        soa_d.insert_batch(&items);
        soa_a.insert_batch(&items);
        let expect = sorted_vals(aos.query());
        prop_assert_eq!(expect.len(), n.min(q));
        prop_assert_eq!(&expect, &sorted_vals(soa_d.query()));
        prop_assert_eq!(&expect, &sorted_vals(soa_a.query()));
    }

    /// Batched inserts through the branchless kernel are state-identical
    /// to singleton inserts, for arbitrary chunkings of the same stream.
    #[test]
    fn soa_batch_equals_singletons(
        vals in prop::collection::vec(any::<u64>(), 1..3000),
        q in 1usize..48,
        gamma in 0.05f64..2.0,
        chunk in 1usize..600,
    ) {
        let items: Vec<(u32, u64)> = vals
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as u32, v))
            .collect();
        let mut one_a = SoaAmortizedQMax::new(q, gamma);
        let mut bat_a = SoaAmortizedQMax::new(q, gamma);
        let mut one_d = SoaDeamortizedQMax::new(q, gamma);
        let mut bat_d = SoaDeamortizedQMax::new(q, gamma);
        let mut adm_one_a = 0usize;
        let mut adm_one_d = 0usize;
        for &(id, v) in &items {
            adm_one_a += usize::from(one_a.insert(id, v));
            adm_one_d += usize::from(one_d.insert(id, v));
        }
        let mut adm_bat_a = 0usize;
        let mut adm_bat_d = 0usize;
        for c in items.chunks(chunk) {
            adm_bat_a += bat_a.insert_batch(c);
            adm_bat_d += bat_d.insert_batch(c);
        }
        prop_assert_eq!(adm_one_a, adm_bat_a);
        prop_assert_eq!(adm_one_d, adm_bat_d);
        prop_assert_eq!(one_a.threshold(), bat_a.threshold());
        prop_assert_eq!(one_d.threshold(), bat_d.threshold());
        prop_assert_eq!(one_d.stats(), bat_d.stats());
        prop_assert_eq!(sorted_vals(one_a.query()), sorted_vals(bat_a.query()));
        prop_assert_eq!(sorted_vals(one_d.query()), sorted_vals(bat_d.query()));
    }

    /// The paired selection kernel agrees with `select_nth_unstable` and
    /// carries the id lane through the exact value-lane permutation.
    #[test]
    fn paired_select_matches_std_select_nth(
        base in prop::collection::vec(0u64..16, 1..600),
        k_seed in any::<u64>(),
    ) {
        let n = base.len();
        let k = (k_seed as usize) % n;
        let mut by_std = base.clone();
        let (_, &mut expect, _) = by_std.select_nth_unstable(k);
        let mut vals = base.clone();
        let mut ids: Vec<u32> = (0..n as u32).collect();
        paired_nth_smallest(&mut vals, &mut ids, k);
        prop_assert_eq!(vals[k], expect, "order statistic diverged at k={}", k);
        for &v in &vals[..k] {
            prop_assert!(v <= vals[k]);
        }
        for &v in &vals[k + 1..] {
            prop_assert!(v >= vals[k]);
        }
        // Permutation integrity: every pair is an input pair.
        for (i, (&v, &id)) in vals.iter().zip(&ids).enumerate() {
            prop_assert_eq!(v, base[id as usize], "pair broken at index {}", i);
        }
    }

    /// The paired suspendable machine computes the same order statistic
    /// as the batch kernel for any budget, keeping the lanes paired.
    #[test]
    fn paired_machine_matches_batch_select(
        base in prop::collection::vec(any::<u32>(), 1..600),
        k_seed in any::<u64>(),
        budget in 1usize..200,
    ) {
        let n = base.len();
        let k = (k_seed as usize) % n;
        let mut batch = base.clone();
        let mut batch_ids: Vec<u32> = (0..n as u32).collect();
        paired_nth_smallest(&mut batch, &mut batch_ids, k);
        let expect = batch[k];
        let mut vals = base.clone();
        let mut ids: Vec<u32> = (0..n as u32).collect();
        let mut m = PairedNthElementMachine::new(0, n, k, Direction::Ascending);
        while m.step(&mut vals, &mut ids, budget) == MachineStatus::InProgress {}
        prop_assert_eq!(m.result_index(), Some(k));
        prop_assert_eq!(vals[k], expect);
        for &v in &vals[..k] {
            prop_assert!(v <= vals[k]);
        }
        for &v in &vals[k + 1..] {
            prop_assert!(v >= vals[k]);
        }
        for (i, (&v, &id)) in vals.iter().zip(&ids).enumerate() {
            prop_assert_eq!(v, base[id as usize], "pair broken at index {}", i);
        }
    }
}
