//! Differential battery for the bounded-error fast `logaddexp` path
//! ([`qmax_lrfu::fast_logaddexp`]) against the exact log-domain merge:
//!
//! * the documented absolute error bound [`FAST_LOGADDEXP_ABS_ERR`]
//!   must hold over the full argument range — random finite pairs,
//!   pairs whose difference is tiny (down to subnormal, where the
//!   softplus argument sits in the last table segment next to 0), and
//!   pairs straddling the exact-`hi` cutoff at `lo - hi < -20`;
//! * the infinity edge cases fixed in this PR must agree between the
//!   exact and fast paths (`logaddexp(+∞, +∞)` is `+∞`, not NaN);
//! * an **LRFU replay** property: a q-MAX LRFU cache scored with the
//!   fast merge must produce the *identical hit/miss sequence* as the
//!   exact cache on Zipf-skewed traces — the 2e-8 score perturbation
//!   must never reorder the top-q cut on realistic workloads, which is
//!   what licenses shipping the fast path as a benchmark default.
//!
//! The in-tree proptest shim does not persist shrunk failures; fixed
//! boundary cases live in the `pinned_*` tests below (DESIGN.md §7).

use proptest::prelude::*;
use qmax_lrfu::{fast_logaddexp, logaddexp, Cache, QMaxLrfu, FAST_LOGADDEXP_ABS_ERR};
use qmax_traces::zipf::ZipfSampler;

/// Asserts the documented bound at one pair (both argument orders).
fn assert_within_bound(a: f64, b: f64) {
    let exact = logaddexp(a, b);
    for (x, y) in [(a, b), (b, a)] {
        let fast = fast_logaddexp(x, y);
        assert!(
            (fast - exact).abs() <= FAST_LOGADDEXP_ABS_ERR,
            "fast_logaddexp({x}, {y}) = {fast}, exact {exact}, \
             err {} > {FAST_LOGADDEXP_ABS_ERR}",
            (fast - exact).abs()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Random finite pairs across the whole useful magnitude range:
    /// |fast − exact| ≤ FAST_LOGADDEXP_ABS_ERR, in both argument orders.
    #[test]
    fn fast_logaddexp_meets_bound_on_random_pairs(
        a in -1e9f64..1e9,
        b in -1e9f64..1e9,
    ) {
        assert_within_bound(a, b);
    }

    /// Pairs with a controlled difference `b = a − 2^e`, sweeping `e`
    /// from far below the −20 cutoff down past the subnormal floor
    /// (where `2^e` underflows to 0 and the args become exactly equal).
    /// This walks the softplus argument through every regime: cutoff
    /// tail, every table segment, and the equal-args `+ln 2` corner.
    #[test]
    fn fast_logaddexp_meets_bound_on_tiny_and_cutoff_differences(
        a in -1e6f64..1e6,
        e in -1080i32..8,
    ) {
        let delta = 2.0f64.powi(e);
        assert_within_bound(a, a - delta);
        assert_within_bound(a, a + delta);
    }

    /// The LRFU score-merge recurrence under the fast path stays within
    /// k·bound of the exact recurrence after k merges (errors add, they
    /// do not compound — both paths are monotone in `w`).
    #[test]
    fn fast_merge_chain_error_grows_at_most_linearly(
        c in 0.3f64..0.999,
        times in prop::collection::vec(0u64..10_000, 1..64),
    ) {
        let exact_ds = qmax_lrfu::DecayScore::new(c);
        let fast_ds = qmax_lrfu::DecayScore::new_fast(c);
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let mut we = exact_ds.access(sorted[0]);
        let mut wf = we;
        for &t in &sorted[1..] {
            we = exact_ds.bump(we, t);
            wf = fast_ds.bump(wf, t);
        }
        let tol = sorted.len() as f64 * FAST_LOGADDEXP_ABS_ERR;
        prop_assert!(
            (we - wf).abs() <= tol,
            "after {} merges: exact {we}, fast {wf}, tol {tol}",
            sorted.len()
        );
    }

    /// Replay property: q-MAX LRFU with the fast merge produces the
    /// identical hit/miss sequence and final occupancy as the exact
    /// cache on Zipf-skewed traces. The generation stream is fully
    /// deterministic (in-tree shim), so this is a fixed battery of
    /// trace shapes, not a flake source.
    #[test]
    fn lrfu_replay_agrees_exact_vs_fast(
        seed in any::<u64>(),
        q in 32usize..128,
        theta in 0.8f64..1.2,
        c in 0.5f64..0.99,
    ) {
        let mut zipf = ZipfSampler::new(2_000, theta, seed);
        let trace: Vec<u64> = (0..4_000).map(|_| zipf.sample() as u64).collect();
        let mut exact = QMaxLrfu::new(q, 0.5, c);
        let mut fast = QMaxLrfu::new(q, 0.5, c).with_fast_merge(true);
        for (i, &k) in trace.iter().enumerate() {
            let he = exact.request(k);
            let hf = fast.request(k);
            prop_assert_eq!(he, hf, "hit sequence diverged at request {}", i);
        }
        prop_assert_eq!(exact.len(), fast.len());
        // Top-q agreement, observed through behaviour: a second pass
        // over the hottest keys must hit/miss identically too.
        for k in 0..(q as u64) {
            prop_assert_eq!(exact.request(k), fast.request(k), "second-pass diverged");
        }
    }
}

/// Pinned boundary cases for the softplus table: the exact cutoff
/// `lo − hi = −20` (last interpolated point vs first truncated point),
/// the segment joints around it, and the x→0⁻ end of the table where
/// the function value approaches ln 2.
#[test]
fn pinned_softplus_cutoff_and_segment_edges() {
    for d in [
        19.999, 20.0, 20.001, 25.0, 700.0, // cutoff straddle
        0.078125, 0.15625, // exact segment joints (h = 20/256)
        1e-300, 4.9e-324, 0.0, // tiny and subnormal differences
    ] {
        assert_within_bound(0.0, -d);
        assert_within_bound(1e9, 1e9 - d);
        assert_within_bound(-1e9, -1e9 - d);
    }
}

/// Pinned infinity edges: the satellite fix makes `logaddexp(+∞, +∞)`
/// return `+∞` (the factored form used to produce `∞ − ∞ = NaN`), and
/// the fast path must mirror every edge exactly.
#[test]
fn pinned_infinity_edges_agree() {
    let inf = f64::INFINITY;
    for f in [logaddexp as fn(f64, f64) -> f64, fast_logaddexp] {
        assert_eq!(f(inf, inf), inf);
        assert_eq!(f(inf, 3.0), inf);
        assert_eq!(f(3.0, inf), inf);
        assert_eq!(f(-inf, 3.0), 3.0);
        assert_eq!(f(3.0, -inf), 3.0);
        assert_eq!(f(-inf, -inf), -inf);
    }
    // Equal finite args are NOT `hi` — they are `hi + ln 2`.
    assert!((logaddexp(5.0, 5.0) - (5.0 + std::f64::consts::LN_2)).abs() < 1e-15);
    assert!(
        (fast_logaddexp(5.0, 5.0) - (5.0 + std::f64::consts::LN_2)).abs() <= FAST_LOGADDEXP_ABS_ERR
    );
}
