//! Integration: the slack-window structures against a naive exact
//! sliding-window reference, on realistic packet workloads.

use qmax_core::{BasicSlackQMax, HierSlackQMax, LazySlackQMax, QMax};
use qmax_traces::gen::caida_like;
use std::collections::VecDeque;

/// Exact sliding-window top-q reference.
struct NaiveWindow {
    w: usize,
    q: usize,
    items: VecDeque<u64>,
}

impl NaiveWindow {
    fn new(q: usize, w: usize) -> Self {
        NaiveWindow {
            w,
            q,
            items: VecDeque::new(),
        }
    }

    fn insert(&mut self, v: u64) {
        self.items.push_back(v);
        if self.items.len() > self.w {
            self.items.pop_front();
        }
    }

    /// Top-q of the last `len` items (ascending).
    fn top_q_of_suffix(&self, len: usize) -> Vec<u64> {
        let n = self.items.len();
        let len = len.min(n);
        let mut v: Vec<u64> = self.items.iter().skip(n - len).copied().collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v.truncate(self.q);
        v.sort_unstable();
        v
    }
}

/// Checks that `got` equals the reference's top-q for *some* window
/// length in `[min_len, max_len]` — the slack-window contract.
fn assert_within_slack(naive: &NaiveWindow, got: &mut Vec<u64>, min_len: usize, max_len: usize) {
    got.sort_unstable();
    for len in min_len..=max_len {
        if *got == naive.top_q_of_suffix(len) {
            return;
        }
    }
    panic!("window result matches no suffix in [{min_len}, {max_len}]: {got:?}");
}

#[test]
fn basic_window_on_packet_trace() {
    let q = 8;
    let w = 1024;
    let tau = 0.125;
    let mut sw = BasicSlackQMax::new(q, 0.5, w, tau);
    let w_eff = sw.effective_window();
    let slack = sw.block_size();
    let mut naive = NaiveWindow::new(q, w_eff);
    for (i, p) in caida_like(30_000, 3).enumerate() {
        let v = (p.len as u64) << 32 | (p.flow().as_u64() & 0xFFFF_FFFF);
        sw.insert(i as u32, v);
        naive.insert(v);
        if i > 2 * w_eff && i % 251 == 0 {
            let mut got: Vec<u64> = sw.query().into_iter().map(|(_, v)| v).collect();
            assert_within_slack(&naive, &mut got, w_eff - slack, w_eff);
        }
    }
}

#[test]
fn hier_window_on_packet_trace() {
    let q = 5;
    let w = 2048;
    let tau = 1.0 / 64.0;
    for c in [2usize, 3] {
        let mut sw = HierSlackQMax::new(q, 0.5, w, tau, c);
        let w_eff = sw.effective_window();
        let slack = sw.base_block();
        let mut naive = NaiveWindow::new(q, w_eff);
        for (i, p) in caida_like(40_000, 5).enumerate() {
            let v = p.flow().as_u64() ^ (i as u64).rotate_left(32);
            sw.insert(i as u32, v);
            naive.insert(v);
            if i > 2 * w_eff && i % 509 == 0 {
                let mut got: Vec<u64> = sw.query().into_iter().map(|(_, v)| v).collect();
                assert_within_slack(&naive, &mut got, w_eff - slack, w_eff);
            }
        }
    }
}

#[test]
fn lazy_window_keeps_the_maximum_alive() {
    // The single invariant users rely on most: the window maximum is
    // always reported while it is (comfortably) inside the window.
    let q = 4;
    let w = 4096;
    let mut sw = LazySlackQMax::new(q, 0.5, w, 1.0 / 16.0, 2);
    let w_eff = sw.effective_window();
    let mut recent_max: VecDeque<u64> = VecDeque::new();
    for (i, p) in caida_like(60_000, 9).enumerate() {
        let v = p.flow().as_u64();
        sw.insert(i as u32, v);
        recent_max.push_back(v);
        if recent_max.len() + 2 * sw.base_block() > w_eff {
            recent_max.pop_front();
        }
        if i > 2 * w_eff && i % 777 == 0 {
            let max_safe = *recent_max.iter().max().unwrap();
            let got: Vec<u64> = sw.query().into_iter().map(|(_, v)| v).collect();
            assert!(
                got.contains(&max_safe),
                "window max {max_safe} missing from {got:?} at i={i}"
            );
        }
    }
}
