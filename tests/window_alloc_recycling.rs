//! Allocation-freedom of the slack-window steady state.
//!
//! The block ring behind every slack window recycles expired blocks *in
//! place* (`IntervalBackend::reset` keeps the materialized storage), so
//! once a window has cycled through all of its blocks, further arrivals
//! — including epoch advances that retire and recycle blocks — must not
//! touch the allocator at all. This test pins that property with a
//! counting global allocator: any regression that re-allocates or clones
//! a block per epoch shows up as a nonzero delta.
//!
//! The lazy window is deliberately absent: completing a base block
//! extracts a top-q summary into a fresh `Vec`, which is an accepted
//! `O(q)`-per-block allocation, not ring churn.
//!
//! This file holds exactly one `#[test]` so no concurrent test thread
//! can perturb the allocation counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use qmax_core::{
    BasicSlackQMax, BatchInsert, HierSlackQMax, QMax, SoaBasicSlackQMax, SoaHierSlackQMax,
    SoaTimeSlackQMax, TimeSlackQMax,
};

/// Counts every allocator call that can return a new block of memory.
struct CountingAlloc;

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Runs `body` and returns how many allocator calls it made.
fn alloc_delta(body: impl FnOnce()) -> usize {
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    body();
    ALLOC_CALLS.load(Ordering::Relaxed) - before
}

#[test]
fn steady_state_window_inserts_do_not_allocate() {
    const Q: usize = 32;
    const GAMMA: f64 = 0.5;
    const W: usize = 10_000;
    const TAU: f64 = 0.1;

    // --- Basic slack window, AoS backend, singleton inserts ---
    let mut basic = BasicSlackQMax::<u64, u64>::new(Q, GAMMA, W, TAU);
    let mut rng = 1u64;
    // Warm-up: cycle through every block at least twice so all block
    // buffers are materialized and every slot has been recycled once.
    for i in 0..(3 * basic.effective_window()) as u64 {
        basic.insert(i, splitmix(&mut rng));
    }
    let steady = 3 * basic.effective_window();
    let delta = alloc_delta(|| {
        for i in 0..steady as u64 {
            basic.insert(i, splitmix(&mut rng));
        }
    });
    assert_eq!(
        delta,
        0,
        "AoS basic window allocated {delta} times across {} epoch advances",
        steady / basic.block_size()
    );

    // --- Basic slack window, SoA backend, batched inserts ---
    let mut soa = SoaBasicSlackQMax::<u64, u64>::new_soa(Q, GAMMA, W, TAU);
    let mut batch: Vec<(u64, u64)> = Vec::with_capacity(256);
    for i in 0..(3 * soa.effective_window()) as u64 {
        soa.insert(i, splitmix(&mut rng));
    }
    for chunk_start in 0..steady / 256 {
        batch.clear();
        for i in 0..256u64 {
            batch.push((chunk_start as u64 * 256 + i, splitmix(&mut rng)));
        }
        let delta = alloc_delta(|| {
            soa.insert_batch(&batch);
        });
        assert_eq!(delta, 0, "SoA basic window allocated during a batch");
    }

    // --- Hierarchical slack window, AoS + SoA backends ---
    let mut hier = HierSlackQMax::<u64, u64>::new(Q, GAMMA, W, TAU, 2);
    let mut hier_soa = SoaHierSlackQMax::<u64, u64>::new_soa(Q, GAMMA, W, TAU, 2);
    for i in 0..(3 * hier.effective_window()) as u64 {
        hier.insert(i, splitmix(&mut rng));
        hier_soa.insert(i, splitmix(&mut rng));
    }
    let delta = alloc_delta(|| {
        for i in 0..steady as u64 {
            hier.insert(i, splitmix(&mut rng));
            hier_soa.insert(i, splitmix(&mut rng));
        }
    });
    assert_eq!(delta, 0, "hierarchical windows allocated in steady state");

    // --- Time-based slack window, AoS + SoA backends ---
    // One block per 1000 ns; sweep enough time to lap the ring twice
    // during warm-up, then assert the lapping itself is allocation-free.
    let mut tw = TimeSlackQMax::<u64, u64>::new(Q, GAMMA, 10_000, TAU);
    let mut tw_soa = SoaTimeSlackQMax::<u64, u64>::new_soa(Q, GAMMA, 10_000, TAU);
    for i in 0..30_000u64 {
        tw.insert(i, splitmix(&mut rng), i);
        tw_soa.insert(i, splitmix(&mut rng), i);
    }
    let delta = alloc_delta(|| {
        for i in 30_000..60_000u64 {
            tw.insert(i, splitmix(&mut rng), i);
            tw_soa.insert(i, splitmix(&mut rng), i);
        }
    });
    assert_eq!(delta, 0, "time windows allocated in steady state");

    // The structures still answer queries correctly after the whole run
    // (queries may allocate; that is outside the steady-state contract).
    assert_eq!(basic.query().len(), Q);
    assert_eq!(soa.query().len(), Q);
    assert_eq!(hier.query().len(), Q);
    assert_eq!(hier_soa.query().len(), Q);
}
