//! Integration: the paper's Theorem 3 lower-bound argument reduces
//! integer sorting to q-MAX. We exercise the constructive direction:
//! recover a sorted array through the q-MAX interface alone, proving
//! the structure really retains the exact top-q order statistics.

use qmax_core::{AmortizedQMax, DeamortizedQMax, Minimal, QMax};
use qmax_traces::rng::SplitMix64;

/// Sorts `input` descending using only a q-MAX: query the top-q,
/// remove them from consideration by re-feeding the rest, repeat.
fn sort_desc_via_qmax(input: &[u64], q: usize) -> Vec<u64> {
    let mut remaining: Vec<(u32, u64)> = input
        .iter()
        .copied()
        .enumerate()
        .map(|(i, v)| (i as u32, v))
        .collect();
    let mut out = Vec::with_capacity(input.len());
    while !remaining.is_empty() {
        let mut qm = DeamortizedQMax::new(q, 0.5);
        for &(id, v) in &remaining {
            qm.insert(id, v);
        }
        let mut batch = qm.query();
        batch.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let taken: std::collections::HashSet<u32> = batch.iter().map(|&(id, _)| id).collect();
        out.extend(batch.iter().map(|&(_, v)| v));
        remaining.retain(|&(id, _)| !taken.contains(&id));
    }
    out
}

#[test]
fn qmax_sorts_integers() {
    let mut rng = SplitMix64::new(3);
    let input: Vec<u64> = (0..5000).map(|_| rng.next_u64() % 1000).collect();
    let got = sort_desc_via_qmax(&input, 64);
    let mut expect = input.clone();
    expect.sort_unstable_by(|a, b| b.cmp(a));
    assert_eq!(got, expect);
}

#[test]
fn qmin_recovers_ascending_order() {
    // The same reduction through the Minimal wrapper sorts ascending.
    let mut rng = SplitMix64::new(9);
    let input: Vec<u64> = (0..2000).map(|_| rng.next_u64()).collect();
    let q = 100;
    let mut qm = AmortizedQMax::new(q, 0.5);
    for (i, &v) in input.iter().enumerate() {
        qm.insert(i as u32, Minimal(v));
    }
    let mut got: Vec<u64> = qm.query().into_iter().map(|(_, Minimal(v))| v).collect();
    got.sort_unstable();
    let mut expect = input.clone();
    expect.sort_unstable();
    expect.truncate(q);
    assert_eq!(got, expect);
}
