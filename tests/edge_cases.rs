//! Integration: edge-case and failure-injection sweep across every
//! public structure — empty structures, q larger than the stream,
//! degenerate value distributions, and extreme parameters.

use qmax_core::{
    AmortizedQMax, BasicSlackQMax, DeamortizedQMax, DedupQMax, HeapQMax, HierSlackQMax,
    IndexedHeapQMax, KeyedSkipListQMax, LazySlackQMax, QMax, SkipListQMax, SortedVecQMax,
};
use qmax_engine::ShardedQMax;
use qmax_lrfu::{Cache, DeamortizedLrfu, HeapLrfu, QMaxLrfu, ScanLrfu};

fn all_backends(q: usize) -> Vec<Box<dyn QMax<u32, u64>>> {
    vec![
        Box::new(AmortizedQMax::new(q, 0.5)),
        Box::new(DeamortizedQMax::new(q, 0.5)),
        Box::new(DedupQMax::new(q, 0.5)),
        Box::new(HeapQMax::new(q)),
        Box::new(SkipListQMax::new(q)),
        Box::new(SortedVecQMax::new(q)),
        Box::new(IndexedHeapQMax::new(q)),
        Box::new(KeyedSkipListQMax::new(q)),
        Box::new(BasicSlackQMax::new(q, 0.5, 1000, 0.25)),
        Box::new(HierSlackQMax::new(q, 0.5, 1000, 0.25, 2)),
        Box::new(LazySlackQMax::new(q, 0.5, 1000, 0.25, 2)),
        Box::new(ShardedQMax::<u32, u64>::new(q, 0.5, 1)),
        Box::new(ShardedQMax::<u32, u64>::new(q, 0.5, 4)),
    ]
}

#[test]
fn empty_structures_answer_queries() {
    for mut qm in all_backends(4) {
        assert!(qm.query().is_empty(), "{} non-empty when fresh", qm.name());
        assert!(qm.is_empty(), "{}", qm.name());
        assert_eq!(qm.threshold(), None, "{}", qm.name());
        qm.reset(); // reset on empty must be harmless
        assert!(qm.query().is_empty());
    }
}

#[test]
fn q_larger_than_stream_returns_everything() {
    for mut qm in all_backends(1000) {
        for v in 0u64..5 {
            qm.insert(v as u32, v * 10);
        }
        let mut got: Vec<u64> = qm.query().into_iter().map(|(_, v)| v).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 10, 20, 30, 40], "{} dropped items", qm.name());
    }
}

#[test]
fn q_of_one_tracks_the_maximum() {
    for mut qm in all_backends(1) {
        // Keep the stream shorter than the window structures' W so the
        // maximum cannot legitimately expire.
        let mut max = 0;
        let mut state = 7u64;
        for i in 0..700u32 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let v = state >> 33;
            max = max.max(v);
            qm.insert(i, v);
        }
        let got = qm.query();
        assert_eq!(got.len(), 1, "{}", qm.name());
        assert_eq!(got[0].1, max, "{} lost the maximum", qm.name());
    }
}

#[test]
fn all_equal_values_fill_to_q() {
    // Heavy-tie workload: q slots must fill and stay at q; keyed
    // structures deduplicate, so feed distinct keys.
    for mut qm in all_backends(7) {
        for i in 0..500u32 {
            qm.insert(i, 42u64);
        }
        let got = qm.query();
        assert_eq!(got.len(), 7, "{} returned {} items", qm.name(), got.len());
        assert!(got.iter().all(|&(_, v)| v == 42));
    }
}

#[test]
fn monotone_increasing_values_keep_the_tail() {
    for mut qm in all_backends(3) {
        for v in 0u64..2000 {
            qm.insert(v as u32, v);
        }
        let mut got: Vec<u64> = qm.query().into_iter().map(|(_, v)| v).collect();
        got.sort_unstable();
        assert_eq!(got, vec![1997, 1998, 1999], "{} wrong tail", qm.name());
    }
}

#[test]
fn monotone_decreasing_values_keep_the_head() {
    // Window structures are excluded: for them old items legitimately
    // expire, so the head is forgotten by design.
    let backends: Vec<Box<dyn QMax<u32, u64>>> = vec![
        Box::new(AmortizedQMax::new(3, 0.5)),
        Box::new(DeamortizedQMax::new(3, 0.5)),
        Box::new(DedupQMax::new(3, 0.5)),
        Box::new(HeapQMax::new(3)),
        Box::new(SkipListQMax::new(3)),
        Box::new(SortedVecQMax::new(3)),
        Box::new(IndexedHeapQMax::new(3)),
        Box::new(KeyedSkipListQMax::new(3)),
        Box::new(ShardedQMax::<u32, u64>::new(3, 0.5, 2)),
    ];
    for mut qm in backends {
        for (i, v) in (0u64..2000).rev().enumerate() {
            qm.insert(i as u32, v);
        }
        let mut got: Vec<u64> = qm.query().into_iter().map(|(_, v)| v).collect();
        got.sort_unstable();
        assert_eq!(got, vec![1997, 1998, 1999], "{} wrong head", qm.name());
    }
}

#[test]
fn extreme_values_do_not_wrap() {
    for mut qm in all_backends(2) {
        qm.insert(0, u64::MAX);
        qm.insert(1, 0);
        qm.insert(2, u64::MAX - 1);
        qm.insert(3, 1);
        let mut got: Vec<u64> = qm.query().into_iter().map(|(_, v)| v).collect();
        got.sort_unstable();
        assert_eq!(got, vec![u64::MAX - 1, u64::MAX], "{}", qm.name());
    }
}

#[test]
fn threshold_is_monotone_on_ascending_streams() {
    // On an ascending stream every item is admitted, so the admission
    // threshold Ψ must rise monotonically once q items have arrived.
    // Window structures are excluded: expiry legitimately lowers Ψ.
    let backends: Vec<Box<dyn QMax<u32, u64>>> = vec![
        Box::new(AmortizedQMax::new(8, 0.5)),
        Box::new(DeamortizedQMax::new(8, 0.5)),
        Box::new(DedupQMax::new(8, 0.5)),
        Box::new(HeapQMax::new(8)),
        Box::new(SkipListQMax::new(8)),
        Box::new(SortedVecQMax::new(8)),
        Box::new(IndexedHeapQMax::new(8)),
        Box::new(KeyedSkipListQMax::new(8)),
        Box::new(ShardedQMax::<u32, u64>::new(8, 0.5, 1)),
        Box::new(ShardedQMax::<u32, u64>::new(8, 0.5, 4)),
    ];
    for mut qm in backends {
        let mut last: Option<u64> = None;
        for v in 0u64..3000 {
            qm.insert(v as u32, v);
            let t = qm.threshold();
            if let (Some(prev), Some(now)) = (last, t) {
                assert!(
                    now >= prev,
                    "{}: Ψ fell from {prev} to {now} at v={v}",
                    qm.name()
                );
            }
            if t.is_some() {
                last = t;
            }
        }
        assert!(last.is_some(), "{} never reported a threshold", qm.name());
    }
}

#[test]
fn caches_with_q_one() {
    let caches: Vec<Box<dyn Cache<u64>>> = vec![
        Box::new(HeapLrfu::new(1, 0.75)),
        Box::new(ScanLrfu::new(1, 0.75)),
        Box::new(QMaxLrfu::new(1, 0.5, 0.75)),
        Box::new(DeamortizedLrfu::new(1, 0.5, 0.75)),
    ];
    for mut c in caches {
        assert!(!c.request(1));
        assert!(c.request(1), "{} lost the only key", c.name());
        // Make key 2 clearly the highest-score key (LRFU may keep a
        // frequent old key over a single recent access, so one request
        // is not enough to displace key 1).
        c.request(2);
        c.request(2);
        c.request(2);
        assert!(c.request(2), "{} lost the dominant key", c.name());
    }
}

/// Compile-time check that `Cache` and `QMax` stay object-safe (the
/// harnesses rely on boxed policies and reservoirs).
#[allow(dead_code)]
fn object_safety() {
    fn _cache(_: &dyn Cache<u64>) {}
    fn _qmax(_: &dyn QMax<u32, u64>) {}
}
