//! Snapshot/restore round-trip properties for checkpointable backends.
//!
//! The supervision layer's warm-recovery guarantee reduces to one
//! backend-level contract: for any reachable state `b`,
//! `restore(snapshot(b))` into a fresh same-geometry backend yields a
//! structure that is *behaviorally identical* to `b` — same top-`q`,
//! same admission threshold Ψ, same statistics counters, and the same
//! response to any future insert stream. This suite pins that contract
//! with 256 randomized cases per backend family (AoS, SoA, adaptive),
//! plus deterministic probes of the two states a per-batch checkpoint
//! cadence is most likely to capture: a buffer sitting just below
//! capacity (mid-compaction pressure) and a freshly-recycled block
//! (immediately after a compaction, and after a `reset()` refill).

use proptest::prelude::*;
use qmax_core::{AdaptiveBackend, AmortizedQMax, Checkpoint, QMax, SoaAmortizedQMax};
use qmax_traces::gen::caida_like;

fn zipf_stream(n: usize, seed: u64) -> Vec<(u64, u64)> {
    caida_like(n, seed)
        .map(|p| (p.flow().as_u64(), p.len as u64))
        .collect()
}

fn sorted_pairs(mut pairs: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    pairs.sort_unstable();
    pairs
}

/// Feeds `prefix` into a backend, snapshots it, restores the snapshot
/// into `fresh`, and asserts behavioral identity — immediately and
/// again after both sides consume the same `suffix`.
macro_rules! assert_roundtrip {
    ($original:expr, $fresh:expr, $prefix:expr, $suffix:expr) => {{
        let mut original = $original;
        let mut restored = $fresh;
        for &(id, v) in $prefix {
            original.insert(id, v);
        }
        let snap = original.snapshot();
        assert_eq!(snap.len(), original.len(), "snapshot candidate count");
        restored.restore(&snap);
        assert_eq!(
            original.len(),
            restored.len(),
            "candidate count diverged at restore"
        );

        assert_eq!(
            sorted_pairs(original.query()),
            sorted_pairs(restored.query()),
            "candidate multiset diverged at restore"
        );
        assert_eq!(
            original.threshold(),
            restored.threshold(),
            "Ψ diverged at restore"
        );
        assert_eq!(original.compactions(), restored.compactions());
        assert_eq!(original.filtered(), restored.filtered());
        assert_eq!(original.pivot_fallbacks(), restored.pivot_fallbacks());

        // A snapshot must capture *all* state that future behavior
        // depends on: the same suffix must drive both copies through
        // identical compaction schedules to identical results.
        for &(id, v) in $suffix {
            original.insert(id, v);
            restored.insert(id, v);
        }
        assert_eq!(
            sorted_pairs(original.query()),
            sorted_pairs(restored.query()),
            "candidate multiset diverged after the restored copy resumed"
        );
        assert_eq!(
            original.threshold(),
            restored.threshold(),
            "Ψ diverged after resume"
        );
        assert_eq!(original.compactions(), restored.compactions());
        assert_eq!(original.filtered(), restored.filtered());
        assert_eq!(original.pivot_fallbacks(), restored.pivot_fallbacks());
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary reachable states round-trip on every checkpointable
    /// backend family. The split point sweeps the snapshot over the
    /// whole fill/compact cycle, so cases land on empty, reservoir-fill,
    /// buffer-nearly-full, and just-compacted states.
    #[test]
    fn restore_of_snapshot_preserves_behavior(
        stream_seed in any::<u64>(),
        n in 1usize..1500,
        split in 0usize..1500,
        q in 1usize..48,
        gamma_idx in 0usize..3,
    ) {
        let gamma = [0.05, 0.25, 1.0][gamma_idx];
        let items = zipf_stream(n, stream_seed);
        let split = split.min(items.len());
        let (prefix, suffix) = items.split_at(split);

        assert_roundtrip!(
            AmortizedQMax::<u64, u64>::new(q, gamma),
            AmortizedQMax::<u64, u64>::new(q, gamma),
            prefix,
            suffix
        );
        assert_roundtrip!(
            SoaAmortizedQMax::<u64, u64>::new(q, gamma),
            SoaAmortizedQMax::<u64, u64>::new(q, gamma),
            prefix,
            suffix
        );
        assert_roundtrip!(
            AdaptiveBackend::<u64, u64>::new(q, gamma),
            AdaptiveBackend::<u64, u64>::new(q, gamma),
            prefix,
            suffix
        );
    }
}

/// A buffer one slot below capacity — the state a per-batch checkpoint
/// captures right before the compaction that would recycle it.
#[test]
fn mid_compaction_pressure_roundtrips() {
    let (q, gamma) = (16, 0.5);
    let cap = AmortizedQMax::<u64, u64>::new(q, gamma).capacity();
    // Distinct ascending values: nothing is filtered, every insert
    // lands in the buffer, so `cap - 1` inserts leave it one below full.
    let prefix: Vec<(u64, u64)> = (0..cap as u64 - 1).map(|i| (i, 1000 + i)).collect();
    let suffix: Vec<(u64, u64)> = (0..64u64).map(|i| (500 + i, 2000 + i)).collect();

    let mut probe = AmortizedQMax::<u64, u64>::new(q, gamma);
    for &(id, v) in &prefix {
        probe.insert(id, v);
    }
    assert_eq!(
        probe.compactions(),
        0,
        "probe compacted early; state is not mid-pressure"
    );
    assert_eq!(probe.len(), cap - 1);

    assert_roundtrip!(
        AmortizedQMax::<u64, u64>::new(q, gamma),
        AmortizedQMax::<u64, u64>::new(q, gamma),
        &prefix,
        &suffix
    );
    assert_roundtrip!(
        SoaAmortizedQMax::<u64, u64>::new(q, gamma),
        SoaAmortizedQMax::<u64, u64>::new(q, gamma),
        &prefix,
        &suffix
    );
    assert_roundtrip!(
        AdaptiveBackend::<u64, u64>::new(q, gamma),
        AdaptiveBackend::<u64, u64>::new(q, gamma),
        &prefix,
        &suffix
    );
}

/// A freshly-recycled block: the snapshot is taken immediately after
/// the first compaction collapsed the buffer back to its top-`q`.
#[test]
fn freshly_recycled_block_roundtrips() {
    let (q, gamma) = (16, 0.5);
    let cap = AmortizedQMax::<u64, u64>::new(q, gamma).capacity();
    let prefix: Vec<(u64, u64)> = (0..cap as u64).map(|i| (i, 1000 + i)).collect();
    let suffix: Vec<(u64, u64)> = (0..64u64).map(|i| (500 + i, 3000 + i)).collect();

    let mut probe = AmortizedQMax::<u64, u64>::new(q, gamma);
    for &(id, v) in &prefix {
        probe.insert(id, v);
    }
    assert!(
        probe.compactions() >= 1,
        "fill to capacity must have recycled the block"
    );

    assert_roundtrip!(
        AmortizedQMax::<u64, u64>::new(q, gamma),
        AmortizedQMax::<u64, u64>::new(q, gamma),
        &prefix,
        &suffix
    );
    assert_roundtrip!(
        SoaAmortizedQMax::<u64, u64>::new(q, gamma),
        SoaAmortizedQMax::<u64, u64>::new(q, gamma),
        &prefix,
        &suffix
    );
    assert_roundtrip!(
        AdaptiveBackend::<u64, u64>::new(q, gamma),
        AdaptiveBackend::<u64, u64>::new(q, gamma),
        &prefix,
        &suffix
    );
}

/// `reset()` followed by a partial refill — the state a shard is in
/// right after the engine recycles it between measurement epochs.
#[test]
fn reset_refill_roundtrips() {
    let (q, gamma) = (8, 0.25);
    let warmup: Vec<(u64, u64)> = (0..200u64).map(|i| (i, i * 7 % 997)).collect();
    let refill: Vec<(u64, u64)> = (0..5u64).map(|i| (i, 4000 + i)).collect();
    let suffix: Vec<(u64, u64)> = (0..64u64).map(|i| (900 + i, 5000 + i)).collect();

    macro_rules! reset_case {
        ($ctor:expr) => {{
            let mut original = $ctor;
            for &(id, v) in &warmup {
                original.insert(id, v);
            }
            original.reset();
            for &(id, v) in &refill {
                original.insert(id, v);
            }
            // Hand the pre-filled original to the round-trip checker
            // with an empty prefix: its state is the reset-refill one.
            assert_roundtrip!(original, $ctor, &[] as &[(u64, u64)], &suffix);
        }};
    }
    reset_case!(AmortizedQMax::<u64, u64>::new(q, gamma));
    reset_case!(SoaAmortizedQMax::<u64, u64>::new(q, gamma));
    reset_case!(AdaptiveBackend::<u64, u64>::new(q, gamma));
}
