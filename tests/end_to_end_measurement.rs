//! Integration: full measurement pipelines across crates — packets
//! flow through the simulated switch, measurement hooks feed the
//! q-MAX-backed applications, and the answers are checked against
//! ground truth.

use qmax_apps::network_wide::{Controller, Nmp, SampledPacket};
use qmax_apps::{CountDistinct, PrioritySampling};
use qmax_core::{AmortizedQMax, Minimal};
use qmax_ovs_sim::{evaluate_throughput, LineRate, MeasurementHook, Switch};
use qmax_traces::gen::caida_like;
use qmax_traces::{FlowKey, Packet};
use std::collections::HashMap;

/// A hook that runs a whole per-switch measurement stack: a k-min
/// packet sample (for network-wide merging) plus a distinct-flow
/// counter.
struct FullStack {
    nmp: Nmp<AmortizedQMax<SampledPacket, Minimal<u64>>>,
    distinct: CountDistinct<AmortizedQMax<u64, Minimal<u64>>>,
}

impl MeasurementHook for FullStack {
    fn on_packet(&mut self, flow: FlowKey, packet_id: u64, _len: u16) {
        self.nmp.observe_raw(flow, packet_id);
        self.distinct.observe(flow.as_u64());
    }
}

#[test]
fn switch_pipeline_feeds_network_wide_controller() {
    let packets: Vec<Packet> = caida_like(200_000, 77).collect();
    // Two switches, each seeing half the packets plus a shared slice
    // (overlapping observation, as in multi-path routing).
    let q = 2_000;
    let mut stacks: Vec<FullStack> = (0..2)
        .map(|_| FullStack {
            nmp: Nmp::new(AmortizedQMax::new(q, 0.5)),
            distinct: CountDistinct::new(AmortizedQMax::new(512, 0.5), 5),
        })
        .collect();
    let rate = LineRate {
        gbps: 10.0,
        frame_bytes: 64,
    };
    let mut sw0 = Switch::new(4);
    let mut sw1 = Switch::new(4);
    let third = packets.len() / 3;
    let r0 = evaluate_throughput(&mut sw0, &mut stacks[0], &packets[..2 * third], rate);
    let r1 = evaluate_throughput(&mut sw1, &mut stacks[1], &packets[third..], rate);
    assert!(r0.achieved_mpps > 0.0 && r1.achieved_mpps > 0.0);

    // Controller merges the two switches' samples.
    let reports: Vec<Vec<SampledPacket>> = stacks.iter_mut().map(|s| s.nmp.report()).collect();
    let controller = Controller::new(q);
    let sample = controller.merge(&reports);
    // Every packet was observed at least once; the estimate must track
    // the distinct packet count.
    let rel = (sample.total_estimate - packets.len() as f64).abs() / packets.len() as f64;
    assert!(
        rel < 0.2,
        "total estimate {} rel err {rel}",
        sample.total_estimate
    );

    // Heavy hitters from the merged sample vs ground truth.
    let mut truth: HashMap<u64, u64> = HashMap::new();
    for p in &packets {
        *truth.entry(p.flow().as_u64()).or_default() += 1;
    }
    let hh = controller.heavy_hitters(&sample, 0.02);
    for (flow, est) in &hh {
        let t = truth.get(&flow.as_u64()).copied().unwrap_or(0) as f64;
        assert!(
            t > 0.005 * packets.len() as f64,
            "reported HH {flow:?} (est {est}) is actually tiny ({t})"
        );
    }
    // The single biggest true flow must be reported.
    let (&top, _) = truth.iter().max_by_key(|&(_, &c)| c).unwrap();
    if *truth.values().max().unwrap() as f64 >= 0.03 * packets.len() as f64 {
        assert!(
            hh.iter().any(|(f, _)| f.as_u64() == top),
            "largest flow missing from heavy hitters"
        );
    }
}

#[test]
fn priority_sampling_estimates_byte_volumes_through_the_switch() {
    let packets: Vec<Packet> = caida_like(300_000, 33).collect();
    struct PsHook {
        ps: PrioritySampling<AmortizedQMax<qmax_apps::WeightedKey, qmax_core::OrderedF64>>,
    }
    impl MeasurementHook for PsHook {
        fn on_packet(&mut self, _flow: FlowKey, packet_id: u64, len: u16) {
            self.ps.observe(packet_id, len as f64);
        }
    }
    let mut hook = PsHook {
        ps: PrioritySampling::new(AmortizedQMax::new(4_000, 0.5), 2),
    };
    let mut sw = Switch::new(4);
    evaluate_throughput(
        &mut sw,
        &mut hook,
        &packets,
        LineRate {
            gbps: 10.0,
            frame_bytes: 64,
        },
    );
    let est = hook.ps.estimate_subset(|_| true);
    let truth: f64 = packets.iter().map(|p| p.len as f64).sum();
    let rel = (est - truth).abs() / truth;
    assert!(
        rel < 0.1,
        "byte-volume estimate {est} vs {truth} (rel {rel})"
    );
    // The switch itself must have forwarded everything exactly once.
    assert_eq!(sw.stats().packets as usize, packets.len());
}

#[test]
fn distinct_flows_via_hook_matches_truth() {
    let packets: Vec<Packet> = caida_like(150_000, 55).collect();
    let mut stack = FullStack {
        nmp: Nmp::new(AmortizedQMax::new(100, 0.5)),
        distinct: CountDistinct::new(AmortizedQMax::new(1024, 0.5), 5),
    };
    let mut sw = Switch::new(4);
    evaluate_throughput(
        &mut sw,
        &mut stack,
        &packets,
        LineRate {
            gbps: 10.0,
            frame_bytes: 64,
        },
    );
    let truth = packets
        .iter()
        .map(|p| p.flow().as_u64())
        .collect::<std::collections::HashSet<_>>()
        .len() as f64;
    let est = stack.distinct.estimate();
    let rel = (est - truth).abs() / truth;
    assert!(rel < 0.15, "distinct flows {est} vs {truth} (rel {rel})");
    // Cross-check against the switch's upcall counter: one per flow.
    assert_eq!(sw.stats().upcalls as f64, truth);
}
