//! Differential property tests for the backend-generic layers: every
//! slack-window algorithm and both LRFU variants must behave the same
//! whether their interval blocks are array-of-structs ([`AmortizedQMax`])
//! or structure-of-arrays ([`SoaAmortizedQMax`]) — and whether arrivals
//! come one at a time or through the batched kernels.
//!
//! Windows are compared as sorted *value* multisets: the two layouts may
//! retain different sub-top-q candidates (ids tie-break arbitrarily and
//! compaction orders differ), but the final top-q cut of any query is
//! the exact top-q of the retained window content, which depends only on
//! arrival counts — so value multisets must match at every common
//! stream position. The LRFU comparisons are stricter: the q-MAX LRFU
//! log buffer never self-compacts and the de-amortized snapshot is fed
//! in a deterministic slot order, so the *entire hit/miss sequence* must
//! be byte-for-byte identical across layouts.
//!
//! Streams cover the shapes named by the paper's workloads: Zipf-skewed
//! ids/values, all-equal values, slack fractions τ near 0 and 1, and
//! windows smaller than the reservoir (`W < q`).

use proptest::prelude::*;
use qmax_core::{
    BasicSlackQMax, BatchInsert, HierSlackQMax, LazySlackQMax, QMax, SoaBasicSlackQMax,
    SoaHierSlackQMax, SoaLazySlackQMax, StdIndex,
};
use qmax_lrfu::{Cache, DeamortizedLrfu, QMaxLrfu, SoaDeamortizedLrfu, SoaQMaxLrfu};
use qmax_traces::zipf::ZipfSampler;

const TAUS: [f64; 6] = [0.003, 0.01, 0.1, 0.33, 0.9, 1.0];

/// A value stream: Zipf-skewed (heavy duplicates, a few giants) or
/// all-equal (every partition degenerates to the equal band).
fn value_stream(n: usize, seed: u64, all_equal: bool) -> Vec<u64> {
    if all_equal {
        return vec![seed | 1; n];
    }
    let mut zipf = ZipfSampler::new(5_000, 1.0, seed);
    (0..n).map(|_| zipf.sample() as u64).collect()
}

fn sorted_vals(pairs: Vec<(u32, u64)>) -> Vec<u64> {
    let mut v: Vec<u64> = pairs.into_iter().map(|(_, v)| v).collect();
    v.sort_unstable();
    v
}

/// Feeds `vals[fed..to]` into `aos` one at a time and into `soa` through
/// the batch kernel in `chunk`-sized spans, then checks that both report
/// the same top-q value multiset at position `to`.
macro_rules! feed_and_compare {
    ($vals:expr, $fed:expr, $to:expr, $chunk:expr, $aos:expr, $soa:expr) => {{
        for i in $fed..$to {
            $aos.insert(i as u32, $vals[i]);
        }
        let items: Vec<(u32, u64)> = ($fed..$to).map(|i| (i as u32, $vals[i])).collect();
        for span in items.chunks($chunk) {
            $soa.insert_batch(span);
        }
        prop_assert_eq!(
            sorted_vals($aos.query()),
            sorted_vals($soa.query()),
            "layouts diverged at stream position {}",
            $to
        );
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Basic slack window: AoS singletons ≡ SoA batches at mid-stream
    /// and end-of-stream, across τ ∈ [0.003, 1.0] and both stream shapes.
    #[test]
    fn soa_basic_window_matches_aos(
        seed in any::<u64>(),
        n in 32usize..2500,
        q in 1usize..40,
        w in 1usize..1500,
        tau_sel in 0usize..6,
        all_equal in 0usize..2,
        gamma in 0.05f64..1.5,
        chunk in 1usize..400,
    ) {
        let tau = TAUS[tau_sel];
        let vals = value_stream(n, seed, all_equal == 1);
        let mut aos = BasicSlackQMax::new(q, gamma, w, tau);
        let mut soa = SoaBasicSlackQMax::new_soa(q, gamma, w, tau);
        feed_and_compare!(vals, 0, n / 2, chunk, aos, soa);
        feed_and_compare!(vals, n / 2, n, chunk, aos, soa);
    }

    /// Hierarchical slack window: same contract across 1–3 layers.
    #[test]
    fn soa_hier_window_matches_aos(
        seed in any::<u64>(),
        n in 32usize..2500,
        q in 1usize..40,
        w in 1usize..1500,
        tau_sel in 0usize..6,
        c in 1usize..4,
        all_equal in 0usize..2,
        gamma in 0.05f64..1.5,
        chunk in 1usize..400,
    ) {
        let tau = TAUS[tau_sel];
        let vals = value_stream(n, seed, all_equal == 1);
        let mut aos = HierSlackQMax::new(q, gamma, w, tau, c);
        let mut soa = SoaHierSlackQMax::new_soa(q, gamma, w, tau, c);
        feed_and_compare!(vals, 0, n / 2, chunk, aos, soa);
        feed_and_compare!(vals, n / 2, n, chunk, aos, soa);
    }

    /// Lazy slack window, immediate and deferred feed. Deferred mode
    /// truncates each block summary to the base block size, which is
    /// only order-independent when the whole top-q summary fits — hence
    /// the documented `q ≤ base_block` restriction, mirrored here.
    #[test]
    fn soa_lazy_window_matches_aos(
        seed in any::<u64>(),
        n in 32usize..2500,
        q_seed in any::<u64>(),
        w in 8usize..1500,
        tau_sel in 0usize..6,
        c in 1usize..4,
        all_equal in 0usize..2,
        gamma in 0.05f64..1.5,
        chunk in 1usize..400,
    ) {
        let tau = TAUS[tau_sel];
        let base = LazySlackQMax::<u32, u64>::new(1, 0.5, w, tau, c).base_block();
        let q = 1 + (q_seed as usize) % base.min(48);
        let vals = value_stream(n, seed, all_equal == 1);

        let mut aos = LazySlackQMax::new(q, gamma, w, tau, c);
        let mut soa = SoaLazySlackQMax::new_soa(q, gamma, w, tau, c);
        feed_and_compare!(vals, 0, n / 2, chunk, aos, soa);
        feed_and_compare!(vals, n / 2, n, chunk, aos, soa);

        let mut aos_wc = LazySlackQMax::new_deamortized(q, gamma, w, tau, c);
        let mut soa_wc = SoaLazySlackQMax::new_soa_deamortized(q, gamma, w, tau, c);
        feed_and_compare!(vals, 0, n / 2, chunk, aos_wc, soa_wc);
        feed_and_compare!(vals, n / 2, n, chunk, aos_wc, soa_wc);
    }

    /// Windows narrower than the reservoir (`W < q`): every retained
    /// item is a top-q item, so the layouts must agree exactly.
    #[test]
    fn windows_with_w_smaller_than_q_agree(
        seed in any::<u64>(),
        n in 32usize..1500,
        q in 32usize..64,
        w in 1usize..32,
        tau_sel in 0usize..6,
        all_equal in 0usize..2,
        chunk in 1usize..200,
    ) {
        let tau = TAUS[tau_sel];
        let vals = value_stream(n, seed, all_equal == 1);
        let mut aos_b = BasicSlackQMax::new(q, 0.5, w, tau);
        let mut soa_b = SoaBasicSlackQMax::new_soa(q, 0.5, w, tau);
        feed_and_compare!(vals, 0, n, chunk, aos_b, soa_b);
        let mut aos_h = HierSlackQMax::new(q, 0.5, w, tau, 2);
        let mut soa_h = SoaHierSlackQMax::new_soa(q, 0.5, w, tau, 2);
        feed_and_compare!(vals, 0, n, chunk, aos_h, soa_h);
    }

    /// q-MAX LRFU: the log buffer is hosted in a backend that never
    /// self-compacts, so AoS and SoA must produce the *identical*
    /// hit/miss sequence on Zipf-skewed request traces — and the batched
    /// request path must match singletons hit-for-hit in total.
    #[test]
    fn soa_qmax_lrfu_replays_aos_exactly(
        seed in any::<u64>(),
        n in 16usize..4000,
        keyspace in 8usize..600,
        q in 2usize..64,
        gamma in 0.05f64..1.5,
        decay in 0.5f64..0.99,
        chunk in 1usize..300,
    ) {
        let mut zipf = ZipfSampler::new(keyspace, 1.0, seed);
        let trace: Vec<u64> = (0..n).map(|_| zipf.sample() as u64).collect();

        let mut aos = QMaxLrfu::new(q, gamma, decay);
        let mut soa = SoaQMaxLrfu::new_soa(q, gamma, decay);
        let mut singleton_hits = 0usize;
        for (i, &k) in trace.iter().enumerate() {
            let a = aos.request(k);
            let s = soa.request(k);
            prop_assert_eq!(a, s, "hit/miss diverged at request {}", i);
            singleton_hits += usize::from(a);
        }
        prop_assert_eq!(aos.len(), soa.len());

        let mut batched = SoaQMaxLrfu::new_soa(q, gamma, decay);
        let mut batch_hits = 0usize;
        for span in trace.chunks(chunk) {
            batch_hits += batched.request_batch(span);
        }
        prop_assert_eq!(singleton_hits, batch_hits);
        prop_assert_eq!(batched.len(), soa.len());
    }

    /// De-amortized LRFU: the snapshot is refreshed in registry-slot
    /// order, so its threshold trajectory — and therefore every eviction
    /// decision and pipeline counter — must be identical across layouts.
    #[test]
    fn soa_deamortized_lrfu_replays_aos_exactly(
        seed in any::<u64>(),
        n in 16usize..4000,
        keyspace in 8usize..600,
        q in 4usize..64,
        gamma in 0.1f64..1.5,
        decay in 0.5f64..0.99,
    ) {
        let mut zipf = ZipfSampler::new(keyspace, 1.0, seed);
        let trace: Vec<u64> = (0..n).map(|_| zipf.sample() as u64).collect();

        let mut aos = DeamortizedLrfu::new(q, gamma, decay);
        let mut soa = SoaDeamortizedLrfu::new_soa(q, gamma, decay);
        for (i, &k) in trace.iter().enumerate() {
            let a = aos.request(k);
            let s = soa.request(k);
            prop_assert_eq!(a, s, "hit/miss diverged at request {}", i);
        }
        prop_assert_eq!(aos.len(), soa.len());
        prop_assert_eq!(aos.stats(), soa.stats());
        let (lo, hi) = aos.capacity_bounds();
        prop_assert!(aos.len() <= hi, "population {} above bound {}", aos.len(), hi);
        prop_assert!(lo <= hi);
    }

    /// Keyed-index replay: the flow-table index (default) must replay
    /// the HashMap-era `StdIndex` bit-exactly — same hit/miss on every
    /// request. The two indexes iterate their merge scratch in
    /// different orders, but LRFU scores are tie-free floats on any
    /// deterministic trace, so maintenance must cut the same survivor
    /// set regardless of iteration order.
    #[test]
    fn qmax_lrfu_flow_index_replays_std_index_exactly(
        seed in any::<u64>(),
        n in 16usize..3000,
        keyspace in 8usize..600,
        q in 2usize..64,
        gamma in 0.05f64..1.5,
        decay in 0.5f64..0.99,
    ) {
        let mut zipf = ZipfSampler::new(keyspace, 1.0, seed);
        let trace: Vec<u64> = (0..n).map(|_| zipf.sample() as u64).collect();

        let mut flow = QMaxLrfu::new(q, gamma, decay);
        let mut std_ = QMaxLrfu::<u64, _, StdIndex>::new_in(q, gamma, decay);
        for (i, &k) in trace.iter().enumerate() {
            let f = flow.request(k);
            let s = std_.request(k);
            prop_assert_eq!(f, s, "hit/miss diverged at request {}", i);
        }
        prop_assert_eq!(flow.len(), std_.len());
    }

    /// Same replay for the de-amortized pipeline: its registry order is
    /// a `Vec` independent of the key index, so FlowIndex and StdIndex
    /// must agree on hits, pipeline stats, and population exactly.
    #[test]
    fn deamortized_lrfu_flow_index_replays_std_index_exactly(
        seed in any::<u64>(),
        n in 16usize..3000,
        keyspace in 8usize..600,
        q in 4usize..64,
        gamma in 0.1f64..1.5,
        decay in 0.5f64..0.99,
    ) {
        let mut zipf = ZipfSampler::new(keyspace, 1.0, seed);
        let trace: Vec<u64> = (0..n).map(|_| zipf.sample() as u64).collect();

        let mut flow = DeamortizedLrfu::new(q, gamma, decay);
        let mut std_ = DeamortizedLrfu::<u64, _, StdIndex>::new_in(q, gamma, decay);
        for (i, &k) in trace.iter().enumerate() {
            let f = flow.request(k);
            let s = std_.request(k);
            prop_assert_eq!(f, s, "hit/miss diverged at request {}", i);
        }
        prop_assert_eq!(flow.len(), std_.len());
        prop_assert_eq!(flow.stats(), std_.stats());
    }
}
