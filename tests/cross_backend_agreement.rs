//! Integration: every reservoir backend must produce the same top-q
//! set on the same workload — random numbers and realistic packet
//! traces alike.

use qmax_core::{AmortizedQMax, DeamortizedQMax, HeapQMax, QMax, SkipListQMax, SortedVecQMax};
use qmax_engine::ShardedQMax;
use qmax_traces::gen::{caida_like, random_u64_stream, univ1_like};

fn top_vals(qm: &mut dyn QMax<u32, u64>) -> Vec<u64> {
    let mut v: Vec<u64> = qm.query().into_iter().map(|(_, v)| v).collect();
    v.sort_unstable();
    v
}

fn check_agreement(stream: &[u64], q: usize) {
    let mut backends: Vec<Box<dyn QMax<u32, u64>>> = vec![
        Box::new(AmortizedQMax::new(q, 0.25)),
        Box::new(DeamortizedQMax::new(q, 0.25)),
        Box::new(AmortizedQMax::new(q, 1.7)),
        Box::new(DeamortizedQMax::new(q, 0.03)),
        Box::new(HeapQMax::new(q)),
        Box::new(SkipListQMax::new(q)),
        Box::new(SortedVecQMax::new(q)),
    ];
    // The sharded engine must agree with the single-shard backends:
    // merge-on-query makes partitioning invisible to the caller.
    for shards in [1usize, 2, 4] {
        backends.push(Box::new(ShardedQMax::<u32, u64>::new(q, 0.25, shards)));
    }
    for qm in &mut backends {
        for (i, &v) in stream.iter().enumerate() {
            qm.insert(i as u32, v);
        }
    }
    let reference = top_vals(backends[0].as_mut());
    // Reference against an independent full sort.
    let mut sorted = stream.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    sorted.truncate(q);
    sorted.sort_unstable();
    assert_eq!(reference, sorted, "amortized q-MAX differs from full sort");
    for qm in &mut backends[1..] {
        assert_eq!(top_vals(qm.as_mut()), reference, "{} disagrees", qm.name());
    }
}

#[test]
fn agree_on_random_stream() {
    let stream: Vec<u64> = random_u64_stream(60_000, 42).collect();
    for q in [1usize, 17, 1000] {
        check_agreement(&stream, q);
    }
}

#[test]
fn agree_on_packet_sizes() {
    // Packet sizes have few distinct values — a heavy-ties workload.
    let stream: Vec<u64> = caida_like(50_000, 7).map(|p| p.len as u64).collect();
    check_agreement(&stream, 256);
}

#[test]
fn agree_on_flow_hashes() {
    let stream: Vec<u64> = univ1_like(50_000, 9).map(|p| p.flow().as_u64()).collect();
    for q in [64usize, 2048] {
        check_agreement(&stream, q);
    }
}

#[test]
fn agree_after_reset_and_reuse() {
    let s1: Vec<u64> = random_u64_stream(20_000, 1).collect();
    let s2: Vec<u64> = random_u64_stream(20_000, 2).collect();
    let q = 128;
    let mut a = AmortizedQMax::new(q, 0.5);
    let mut d = DeamortizedQMax::new(q, 0.5);
    for (i, &v) in s1.iter().enumerate() {
        a.insert(i as u32, v);
        d.insert(i as u32, v);
    }
    a.reset();
    d.reset();
    for (i, &v) in s2.iter().enumerate() {
        a.insert(i as u32, v);
        d.insert(i as u32, v);
    }
    assert_eq!(top_vals(&mut a), top_vals(&mut d));
    let mut sorted = s2.clone();
    sorted.sort_unstable_by(|x, y| y.cmp(x));
    sorted.truncate(q);
    sorted.sort_unstable();
    assert_eq!(top_vals(&mut a), sorted);
}
