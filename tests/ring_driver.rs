//! Differential battery for the SPSC-ring ingestion path (PR 10).
//!
//! The ring driver replaced the mpsc-channel hand-off underneath
//! `run_threaded` and `run_supervised`; `run_threaded_mpsc` is kept as
//! the executable reference. Under the blocking overload policy every
//! shard's sub-stream — and therefore its offered-insert fault clock —
//! is deterministic, so the two drivers must agree on the *entire*
//! failure-accounting report, not just totals. Shedding is
//! timing-dependent by design, so the shed scenarios check the
//! conservation invariant, the loss budget, and the new occupancy
//! evidence (a shard can only shed once its ring high-water has hit
//! capacity) on both drivers instead of exact equality.

use qmax_core::{AmortizedQMax, DeamortizedQMax, QMax};
use qmax_engine::fault::silence_fault_panics;
use qmax_engine::{
    DriverConfig, DriverReport, FaultSchedule, FaultyBackend, OverloadPolicy, ShardedQMax,
    WatchdogConfig,
};
use qmax_traces::gen::random_u64_stream;
use std::time::Duration;

const SEEDS: [u64; 3] = [1, 7, 23];

fn stream(n: usize, seed: u64) -> Vec<(u64, u64)> {
    random_u64_stream(n, seed)
        .enumerate()
        .map(|(i, v)| (i as u64, v))
        .collect()
}

fn sorted_vals(pairs: Vec<(u64, u64)>) -> Vec<u64> {
    let mut v: Vec<u64> = pairs.into_iter().map(|(_, v)| v).collect();
    v.sort_unstable();
    v
}

fn assert_balanced(report: &DriverReport) {
    for s in 0..report.per_shard_items.len() {
        assert_eq!(
            report.per_shard_items[s],
            report.per_shard_drained[s]
                + report.per_shard_dropped[s]
                + report.per_shard_quarantined[s],
            "shard {s} accounting does not balance"
        );
        if report.ring_capacity > 0 {
            assert!(
                report.per_shard_ring_high_water[s] <= report.ring_capacity,
                "shard {s} high-water exceeds ring capacity"
            );
        }
    }
}

fn chaos_engine(
    seed: u64,
    q: usize,
    shards: usize,
) -> ShardedQMax<u64, u64, FaultyBackend<DeamortizedQMax<u64, u64>>> {
    ShardedQMax::with_backends(q, shards, move |s| {
        FaultyBackend::new(
            DeamortizedQMax::new(q, 0.25),
            FaultSchedule::seeded(seed.wrapping_mul(0x9E37).wrapping_add(s as u64), 256),
        )
    })
}

/// Blocking policy, seeded chaos on every shard: the ring driver and
/// the mpsc reference must produce identical accounting — per-shard
/// items, drains, quarantines, failure records, and the merged
/// reservoir — across the CI seed matrix.
#[test]
fn ring_and_mpsc_agree_exactly_under_blocking_chaos() {
    let _silence = silence_fault_panics();
    let q = 256;
    let shards = 4;
    for seed in SEEDS {
        let items = stream(60_000, seed);
        let config = DriverConfig {
            batch_size: 256,
            queue_depth: 2,
            overload: OverloadPolicy::Block,
            ..DriverConfig::default()
        };
        let mut ring_engine = chaos_engine(seed, q, shards);
        let ring_report = ring_engine.run_threaded(items.iter().copied(), config);
        let mut mpsc_engine = chaos_engine(seed, q, shards);
        let mpsc_report = mpsc_engine.run_threaded_mpsc(items.iter().copied(), config);

        assert_balanced(&ring_report);
        assert_balanced(&mpsc_report);
        assert_eq!(ring_report.items, mpsc_report.items, "seed {seed}");
        assert_eq!(
            ring_report.per_shard_items, mpsc_report.per_shard_items,
            "seed {seed}: routing diverged"
        );
        assert_eq!(
            ring_report.per_shard_drained, mpsc_report.per_shard_drained,
            "seed {seed}: drains diverged"
        );
        assert_eq!(
            ring_report.per_shard_dropped, mpsc_report.per_shard_dropped,
            "seed {seed}: drops diverged under Block (must be zero-for-zero)"
        );
        assert_eq!(
            ring_report.per_shard_quarantined, mpsc_report.per_shard_quarantined,
            "seed {seed}: quarantines diverged"
        );
        let ring_failures: Vec<(usize, u64)> = ring_report
            .failures
            .iter()
            .map(|f| (f.shard, f.items_lost))
            .collect();
        let mpsc_failures: Vec<(usize, u64)> = mpsc_report
            .failures
            .iter()
            .map(|f| (f.shard, f.items_lost))
            .collect();
        assert_eq!(
            ring_failures, mpsc_failures,
            "seed {seed}: failures diverged"
        );
        assert_eq!(
            sorted_vals(ring_engine.query()),
            sorted_vals(mpsc_engine.query()),
            "seed {seed}: merged reservoirs diverged"
        );
        // Only the ring driver reports occupancy evidence; the
        // reference predates the ring and must say so explicitly.
        assert!(ring_report.ring_capacity > 0);
        assert_eq!(mpsc_report.ring_capacity, 0);
    }
}

/// Full-ring shedding: a stalling shard backs its ring up to capacity
/// and the shed policy converts the overflow into budgeted, accounted
/// loss. Exact drop counts are timing-dependent, so both drivers are
/// held to the invariants instead: conservation balance, the loss
/// budget, and — on the ring driver — the rule that a shard can only
/// shed after its ring high-water pinned at capacity.
#[test]
fn full_ring_shed_balances_and_shows_saturation_on_both_drivers() {
    let _silence = silence_fault_panics();
    let q = 256;
    let shards = 4;
    let budget = 30_000u64;
    for seed in SEEDS {
        let items = stream(80_000, seed);
        let stalling = (seed % shards as u64) as usize;
        let config = DriverConfig {
            batch_size: 64,
            queue_depth: 1,
            overload: OverloadPolicy::Shed {
                max_dropped: budget,
            },
            ..DriverConfig::default()
        };
        let build = move || -> ShardedQMax<u64, u64, FaultyBackend<DeamortizedQMax<u64, u64>>> {
            ShardedQMax::with_backends(q, shards, move |s| {
                let schedule = if s == stalling {
                    FaultSchedule::stall_at(2_000, 80)
                } else {
                    FaultSchedule::none()
                };
                FaultyBackend::new(DeamortizedQMax::new(q, 0.25), schedule)
            })
        };
        let mut ring_engine = build();
        let ring_report = ring_engine.run_threaded(items.iter().copied(), config);
        let mut mpsc_engine = build();
        let mpsc_report = mpsc_engine.run_threaded_mpsc(items.iter().copied(), config);

        for report in [&ring_report, &mpsc_report] {
            assert_balanced(report);
            assert_eq!(report.items, items.len() as u64, "seed {seed}");
            // The shed budget bounds each shard's loss independently
            // (same contract the chaos example pins).
            for &d in &report.per_shard_dropped {
                assert!(d <= budget, "seed {seed}: shed beyond per-shard budget");
            }
        }
        for s in 0..shards {
            if ring_report.per_shard_dropped[s] > 0 {
                assert!(
                    ring_report.saturated(s),
                    "seed {seed}: shard {s} shed without its ring high-water hitting capacity"
                );
            }
        }
        let _ = (ring_engine.query(), mpsc_engine.query());
    }
}

/// Multi-producer ingestion is pure re-partitioning: shard routing
/// hashes keys, so any split of the stream across producer threads
/// must land the same multiset on each shard and rebuild the same
/// reservoir as the single-producer driver.
#[test]
fn partitioned_ingestion_matches_single_producer_driver() {
    let q = 512;
    let shards = 4;
    let items = stream(50_000, 3);
    let mut reference: ShardedQMax<u64, u64> = ShardedQMax::new(q, 0.25, shards);
    let ref_report = reference.run_threaded(items.iter().copied(), DriverConfig::default());
    let ref_vals = sorted_vals(reference.query());
    for producers in [2usize, 4] {
        let chunk = items.len().div_ceil(producers);
        let streams: Vec<_> = items.chunks(chunk).map(|c| c.iter().copied()).collect();
        let mut engine: ShardedQMax<u64, u64> = ShardedQMax::new(q, 0.25, shards);
        let report = engine.run_threaded_partitioned(streams, DriverConfig::default());
        assert_balanced(&report);
        assert_eq!(report.items, ref_report.items);
        assert_eq!(
            report.per_shard_items, ref_report.per_shard_items,
            "{producers} producers: hash routing must not depend on the split"
        );
        assert_eq!(sorted_vals(engine.query()), ref_vals);
    }
}

/// PR 10's small-fix acceptance test: a watchdog-visible stall must
/// also be visible in the occupancy stats. The stalled worker stops
/// consuming, the blocked producer backs the ring up, and by the time
/// the watchdog fails the shard over its recorded ring high-water has
/// pinned at capacity — `DriverReport::saturated` returns true for
/// exactly that shard's stall even though the shard ends Healthy.
#[test]
fn stall_pins_ring_high_water_at_capacity_before_failover() {
    let _silence = silence_fault_panics();
    let q = 512;
    let shards = 4;
    let stalling = 1usize;
    let items = stream(200_000, 17);
    let mut engine: ShardedQMax<u64, u64, FaultyBackend<AmortizedQMax<u64, u64>>> =
        ShardedQMax::with_backends(q, shards, {
            let mut builds = vec![0u32; shards];
            move |s| {
                builds[s] += 1;
                let schedule = if s == stalling && builds[s] == 1 {
                    FaultSchedule::stall_at(10_000, 300)
                } else {
                    FaultSchedule::none()
                };
                FaultyBackend::new(AmortizedQMax::new(q, 0.25), schedule)
            }
        });
    let config = DriverConfig {
        batch_size: 512,
        queue_depth: 2,
        overload: OverloadPolicy::Block,
        checkpoint_every: Some(1024),
        watchdog: Some(WatchdogConfig {
            deadline: Duration::from_millis(60),
            poll_interval: Duration::from_millis(10),
            backoff_base: Duration::from_millis(5),
            seed: 17,
            ..WatchdogConfig::default()
        }),
        pin_threads: false,
    };
    let report = engine.run_supervised(items.iter().copied(), config);
    assert_balanced(&report);
    assert!(
        report.lifecycle.restarts(stalling) >= 1,
        "watchdog must fail the stalled shard over"
    );
    assert!(
        report.saturated(stalling),
        "stalled shard's ring high-water must pin at capacity ({} < {})",
        report.per_shard_ring_high_water[stalling],
        report.ring_capacity
    );
    assert_eq!(engine.query().len(), q, "engine must stay queryable");
}

/// The pinning knob must not change any observable result — same
/// accounting, same reservoir — whether or not the scheduler honours
/// the affinity request (on a single-core host it is a near no-op).
#[test]
fn pinned_supervised_run_agrees_with_unpinned() {
    let q = 256;
    let shards = 2;
    let items = stream(30_000, 5);
    let run = |pin: bool| {
        let mut engine: ShardedQMax<u64, u64, AmortizedQMax<u64, u64>> =
            ShardedQMax::with_backends(q, shards, move |_| AmortizedQMax::new(q, 0.25));
        let config = DriverConfig {
            checkpoint_every: Some(2048),
            watchdog: Some(WatchdogConfig::default()),
            pin_threads: pin,
            ..DriverConfig::default()
        };
        let report = engine.run_supervised(items.iter().copied(), config);
        (report, sorted_vals(engine.query()))
    };
    let (unpinned, unpinned_vals) = run(false);
    let (pinned, pinned_vals) = run(true);
    assert_balanced(&unpinned);
    assert_balanced(&pinned);
    assert_eq!(unpinned.per_shard_items, pinned.per_shard_items);
    assert_eq!(unpinned.per_shard_drained, pinned.per_shard_drained);
    assert_eq!(unpinned_vals, pinned_vals);
}
