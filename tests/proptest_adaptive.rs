//! Differential property tests for the adaptive backend layer: a
//! structure built on [`AdaptiveBackend`] must be observationally
//! identical — same top-q value multisets, same admission threshold Ψ,
//! same arrival accounting — no matter which layout the policy picks.
//! The policy moves *performance*, never semantics: forced-AoS,
//! forced-SoA, and every `auto` crossover must answer every query the
//! same way.
//!
//! Policies are pinned through [`AdaptiveBackend::try_with_policy`] /
//! window prototypes rather than the `QMAX_BACKEND_POLICY` environment
//! variable: the global policy is cached in a `OnceLock`, so env
//! overrides cannot be varied within one process. The env parsing
//! itself is covered by the policy module's unit tests; here we cover
//! every decision path the env knob can select.
//!
//! Streams cover the shapes named by the paper's workloads: Zipf-skewed
//! values, all-equal values, slack fractions τ from 0.003 to 1.0, and
//! streams long enough to recycle window blocks mid-run.

use proptest::prelude::*;
use qmax_core::{
    AdaptiveBackend, BackendPolicy, BasicSlackQMax, BatchInsert, CostModel, HierSlackQMax,
    PolicyMode, QMax,
};
use qmax_select::{calibrate, Kernel, KernelKind};
use qmax_traces::zipf::ZipfSampler;

const TAUS: [f64; 6] = [0.003, 0.01, 0.1, 0.33, 0.9, 1.0];

/// A synthetic cost model pinning the auto decision at `crossover`.
fn model_with_crossover(crossover_items: usize) -> CostModel {
    CostModel {
        kernel_kind: KernelKind::Scalar,
        aos_fixed_ns: 10.0,
        aos_per_item_ns: 2.0,
        soa_fixed_ns: 100.0,
        soa_per_item_ns: 1.0,
        crossover_items,
    }
}

/// The policy set the differential tests sweep: both forced modes plus
/// auto policies whose crossover lands below, inside, and above any
/// plausible block capacity — together they cover every layout decision
/// `QMAX_BACKEND_POLICY` can induce.
fn policy_suite() -> Vec<BackendPolicy> {
    vec![
        BackendPolicy::new(PolicyMode::ForceAos, model_with_crossover(64)),
        BackendPolicy::new(PolicyMode::ForceSoa, model_with_crossover(64)),
        BackendPolicy::new(PolicyMode::Auto, model_with_crossover(0)),
        BackendPolicy::new(PolicyMode::Auto, model_with_crossover(40)),
        BackendPolicy::new(PolicyMode::Auto, model_with_crossover(usize::MAX)),
    ]
}

fn value_stream(n: usize, seed: u64, all_equal: bool) -> Vec<u64> {
    if all_equal {
        return vec![seed | 1; n];
    }
    let mut zipf = ZipfSampler::new(5_000, 1.0, seed);
    (0..n).map(|_| zipf.sample() as u64).collect()
}

fn sorted_vals(pairs: Vec<(u32, u64)>) -> Vec<u64> {
    let mut v: Vec<u64> = pairs.into_iter().map(|(_, v)| v).collect();
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Plain interval reservoir: every policy in the suite admits the
    /// same items, reports the same Ψ, and answers the same top-q —
    /// singleton and batched arrivals alike.
    #[test]
    fn adaptive_interval_is_policy_invariant(
        seed in any::<u64>(),
        n in 16usize..3000,
        q in 1usize..48,
        gamma in 0.05f64..1.5,
        all_equal in 0usize..2,
        chunk in 1usize..400,
        fill_hint in 0usize..3,
    ) {
        let vals = value_stream(n, seed, all_equal == 1);
        let hint = match fill_hint {
            0 => None,
            1 => Some(1),
            _ => Some(n),
        };
        let mut backends: Vec<AdaptiveBackend<u32, u64>> = policy_suite()
            .iter()
            .map(|p| AdaptiveBackend::try_with_policy(q, gamma, hint, p).unwrap())
            .collect();
        // Feed the first backend singleton-wise, the rest batched.
        for (i, &v) in vals.iter().enumerate() {
            backends[0].insert(i as u32, v);
        }
        let items: Vec<(u32, u64)> = vals.iter().enumerate().map(|(i, &v)| (i as u32, v)).collect();
        for b in backends.iter_mut().skip(1) {
            for span in items.chunks(chunk) {
                b.insert_batch(span);
            }
        }
        let reference = sorted_vals(backends[0].query());
        let psi = backends[0].threshold();
        let filtered = backends[0].filtered();
        for (k, b) in backends.iter_mut().enumerate().skip(1) {
            prop_assert_eq!(
                sorted_vals(b.query()),
                reference.clone(),
                "policy {} diverged on top-q",
                k
            );
            prop_assert_eq!(b.threshold(), psi, "policy {} diverged on psi", k);
            prop_assert_eq!(b.filtered(), filtered, "policy {} diverged on accounting", k);
        }
    }

    /// Basic slack window over adaptive blocks: the whole policy suite
    /// agrees at mid-stream (blocks recycled in place) and at
    /// end-of-stream, across τ ∈ [0.003, 1] and both stream shapes.
    #[test]
    fn adaptive_basic_window_is_policy_invariant(
        seed in any::<u64>(),
        n in 32usize..2500,
        q in 1usize..40,
        w in 1usize..1000,
        tau_sel in 0usize..6,
        all_equal in 0usize..2,
        gamma in 0.05f64..1.5,
        chunk in 1usize..400,
    ) {
        let tau = TAUS[tau_sel];
        let vals = value_stream(n, seed, all_equal == 1);
        let block = w.div_ceil(((1.0 / tau).ceil() as usize).max(1)).max(1);
        let mut windows: Vec<BasicSlackQMax<u32, u64, AdaptiveBackend<u32, u64>>> = policy_suite()
            .iter()
            .map(|p| {
                let proto =
                    AdaptiveBackend::try_with_policy(q, gamma, Some(block), p).unwrap();
                BasicSlackQMax::try_with_backend(w, tau, proto).unwrap()
            })
            .collect();
        let items: Vec<(u32, u64)> = vals.iter().enumerate().map(|(i, &v)| (i as u32, v)).collect();
        // Two checkpoints: mid-stream (short streams) and end-of-stream
        // (n can exceed w several times over, so rings recycle blocks
        // in place between the checkpoints).
        for stop in [n / 2, n] {
            let start = if stop == n { n / 2 } else { 0 };
            for (k, sw) in windows.iter_mut().enumerate() {
                if k == 0 {
                    for &(id, v) in &items[start..stop] {
                        sw.insert(id, v);
                    }
                } else {
                    for span in items[start..stop].chunks(chunk) {
                        sw.insert_batch(span);
                    }
                }
            }
            let reference = sorted_vals(windows[0].query());
            for (k, sw) in windows.iter_mut().enumerate().skip(1) {
                prop_assert_eq!(
                    sorted_vals(sw.query()),
                    reference.clone(),
                    "policy {} diverged at position {}",
                    k,
                    stop
                );
            }
        }
    }

    /// Hierarchical slack window over adaptive blocks: same contract
    /// across 1–3 layers.
    #[test]
    fn adaptive_hier_window_is_policy_invariant(
        seed in any::<u64>(),
        n in 32usize..2000,
        q in 1usize..32,
        w in 1usize..1000,
        tau_sel in 0usize..6,
        c in 1usize..4,
        all_equal in 0usize..2,
        gamma in 0.05f64..1.5,
        chunk in 1usize..300,
    ) {
        let tau = TAUS[tau_sel];
        let vals = value_stream(n, seed, all_equal == 1);
        let mut windows: Vec<HierSlackQMax<u32, u64, AdaptiveBackend<u32, u64>>> = policy_suite()
            .iter()
            .map(|p| {
                let proto = AdaptiveBackend::try_with_policy(q, gamma, None, p).unwrap();
                HierSlackQMax::try_with_backend(w, tau, c, proto).unwrap()
            })
            .collect();
        let items: Vec<(u32, u64)> = vals.iter().enumerate().map(|(i, &v)| (i as u32, v)).collect();
        for (k, sw) in windows.iter_mut().enumerate() {
            if k == 0 {
                for (i, &v) in vals.iter().enumerate() {
                    sw.insert(i as u32, v);
                }
            } else {
                for span in items.chunks(chunk) {
                    sw.insert_batch(span);
                }
            }
        }
        let reference = sorted_vals(windows[0].query());
        for (k, sw) in windows.iter_mut().enumerate().skip(1) {
            prop_assert_eq!(
                sorted_vals(sw.query()),
                reference.clone(),
                "policy {} diverged",
                k
            );
        }
    }
}

/// Calibration determinism: whatever kernel the calibration measured —
/// the runtime-dispatched one or the scalar one `QMAX_FORCE_SCALAR`
/// would pin — and whatever mode the env knob selects, query results
/// are identical. The cost model may differ between machines and runs;
/// the answers may not.
#[test]
fn calibrated_policies_are_observationally_identical() {
    let models = [
        calibrate(Kernel::<u64>::detect()),
        calibrate(Kernel::<u64>::scalar()),
    ];
    let modes = [PolicyMode::Auto, PolicyMode::ForceAos, PolicyMode::ForceSoa];
    let mut zipf = ZipfSampler::new(10_000, 1.0, 0xCA11);
    let items: Vec<(u32, u64)> = (0..50_000u32).map(|i| (i, zipf.sample() as u64)).collect();
    let mut reference: Option<(Vec<u64>, Option<u64>)> = None;
    for model in &models {
        for mode in modes {
            let policy = BackendPolicy::new(mode, *model);
            let mut b: AdaptiveBackend<u32, u64> =
                AdaptiveBackend::try_with_policy(500, 0.25, None, &policy).unwrap();
            for span in items.chunks(777) {
                b.insert_batch(span);
            }
            let got = (sorted_vals(b.query()), b.threshold());
            match &reference {
                None => reference = Some(got),
                Some(r) => assert_eq!(
                    &got, r,
                    "mode {mode:?} over kernel {:?} diverged",
                    model.kernel_kind
                ),
            }
        }
    }
}

/// The calibrated cost model itself is sane on this machine: finite,
/// non-negative, and serializable — the properties the bench JSON
/// provenance relies on.
#[test]
fn calibration_produces_a_usable_model() {
    let model = calibrate(Kernel::<u64>::detect());
    assert!(model.aos_per_item_ns.is_finite() && model.aos_per_item_ns >= 0.0);
    assert!(model.soa_per_item_ns.is_finite() && model.soa_per_item_ns >= 0.0);
    assert!(model.aos_fixed_ns.is_finite() && model.aos_fixed_ns >= 0.0);
    assert!(model.soa_fixed_ns.is_finite() && model.soa_fixed_ns >= 0.0);
    let json = model.summary_json();
    for key in [
        "kernel",
        "aos_fixed_ns",
        "aos_per_item_ns",
        "soa_fixed_ns",
        "soa_per_item_ns",
        "crossover_items",
    ] {
        assert!(json.contains(key), "cost-model JSON missing {key}: {json}");
    }
}
