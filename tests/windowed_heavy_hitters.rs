//! Integration: sliding-window network-wide heavy hitters (Theorem 8) —
//! when traffic shifts, the windowed sample detects the new heavy
//! hitter and forgets the old one, while the interval sample stays
//! stuck in the past.

use qmax_apps::network_wide::{Controller, Nmp, SampledPacket, TimedNmp};
use qmax_core::{AmortizedQMax, Minimal};
use qmax_traces::gen::{from_spec, SizeProfile, TraceSpec};
use qmax_traces::{FlowKey, Packet};

/// Builds a two-phase trace: phase 1 dominated by flow A, phase 2 by
/// flow B (each ~40% of its phase), with background traffic around.
fn two_phase_trace(n: usize) -> (Vec<Packet>, FlowKey, FlowKey) {
    let spec = TraceSpec {
        packets: n,
        flows: 5_000,
        alpha: 0.6,
        sizes: SizeProfile::Backbone,
        mean_gap_ns: 1_000,
        seed: 99,
    };
    let mut packets: Vec<Packet> = from_spec(spec).collect();
    let half = n / 2;
    let flow_a = packets[0].flow();
    let flow_b = packets[half].flow();
    for (i, p) in packets.iter_mut().enumerate() {
        let dominate = i % 5 < 2; // 40% of each phase
        if dominate {
            let f = if i < half { flow_a } else { flow_b };
            p.src_ip = f.src_ip;
            p.dst_ip = f.dst_ip;
            p.src_port = f.src_port;
            p.dst_port = f.dst_port;
            p.proto = f.proto;
        }
    }
    (packets, flow_a, flow_b)
}

#[test]
fn windowed_sample_tracks_the_traffic_shift() {
    let n = 120_000;
    let (packets, flow_a, flow_b) = two_phase_trace(n);
    let horizon = packets.last().unwrap().ts_ns;
    let q = 1_000;
    // Window = last quarter of the trace's duration.
    let window_ns = horizon / 4;
    let mut windowed = TimedNmp::new(q, 0.5, window_ns, 0.25);
    let mut interval =
        Nmp::<AmortizedQMax<SampledPacket, Minimal<u64>>>::new(AmortizedQMax::new(q, 0.5));
    for p in &packets {
        windowed.observe(p);
        interval.observe(p);
    }
    let ctl = Controller::new(q);

    // The windowed view sees only phase 2: flow B is the top heavy
    // hitter and flow A has vanished.
    let wsample = ctl.merge(&[windowed.report_at(horizon)]);
    let whh = ctl.heavy_hitters(&wsample, 0.2);
    assert!(!whh.is_empty(), "no windowed heavy hitter found");
    assert_eq!(
        whh[0].0, flow_b,
        "windowed view must rank the new flow first"
    );
    assert!(
        !whh.iter().any(|(f, _)| *f == flow_a),
        "expired heavy hitter still reported in the windowed view"
    );

    // The interval view averages both phases: both flows are heavy.
    let isample = ctl.merge(&[interval.report()]);
    let ihh = ctl.heavy_hitters(&isample, 0.15);
    let iflows: Vec<FlowKey> = ihh.iter().map(|&(f, _)| f).collect();
    assert!(
        iflows.contains(&flow_a),
        "interval view lost the old heavy hitter"
    );
    assert!(
        iflows.contains(&flow_b),
        "interval view missed the new heavy hitter"
    );

    // Windowed total estimate ~ packets within the window, not the
    // whole trace.
    let in_window = packets
        .iter()
        .filter(|p| p.ts_ns + window_ns >= horizon)
        .count() as f64;
    let rel = (wsample.total_estimate - in_window).abs() / in_window;
    assert!(
        rel < 0.35,
        "windowed total {} vs in-window packets {in_window} (rel {rel})",
        wsample.total_estimate
    );
}
