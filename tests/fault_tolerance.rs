//! Acceptance tests for the fault-tolerant shard driver: a panicking
//! shard is quarantined and rebuilt while the rest of the engine keeps
//! measuring — the per-PMD independence the paper's deployment relies
//! on, made mechanical.

use qmax_core::{DeamortizedQMax, QMax};
use qmax_engine::fault::silence_fault_panics;
use qmax_engine::{
    DriverConfig, DriverReport, FaultSchedule, FaultyBackend, OverloadPolicy, ShardedQMax,
};
use qmax_traces::gen::random_u64_stream;

fn sorted_vals(pairs: Vec<(u64, u64)>) -> Vec<u64> {
    let mut v: Vec<u64> = pairs.into_iter().map(|(_, v)| v).collect();
    v.sort_unstable();
    v
}

fn assert_balanced(report: &DriverReport) {
    for s in 0..report.per_shard_items.len() {
        assert_eq!(
            report.per_shard_items[s],
            report.per_shard_drained[s]
                + report.per_shard_dropped[s]
                + report.per_shard_quarantined[s],
            "shard {s} accounting does not balance"
        );
        assert!(report.per_shard_admitted[s] <= report.per_shard_drained[s]);
    }
}

/// The pinned CI scenario: 100k items, one shard scripted to panic
/// mid-stream. The run completes without panicking, reports exactly one
/// failure, leaves the engine queryable, and the surviving shards'
/// merged top-q equals a sequential reference over the items routed to
/// healthy shards.
#[test]
fn one_shard_panic_is_isolated_and_reported() {
    silence_fault_panics();
    let q = 256;
    let gamma = 0.25;
    let shards = 4;
    let failing = 2usize;
    let items: Vec<(u64, u64)> = random_u64_stream(100_000, 42)
        .enumerate()
        .map(|(i, v)| (i as u64, v))
        .collect();

    let mut engine: ShardedQMax<u64, u64, FaultyBackend<DeamortizedQMax<u64, u64>>> =
        ShardedQMax::with_backends(q, shards, move |s| {
            // The first ⌈q(1+γ)⌉ = 320 offered inserts reach the backend
            // unfiltered (no Ψ yet), so insert 300 is guaranteed to
            // arrive — mid-stream, while the reservoir is still filling.
            let schedule = if s == failing {
                FaultSchedule::panic_at(300)
            } else {
                FaultSchedule::none()
            };
            FaultyBackend::new(DeamortizedQMax::new(q, gamma), schedule)
        });

    let report = engine.run_threaded(items.iter().copied(), DriverConfig::default());

    assert_eq!(report.items, 100_000);
    assert_eq!(report.failures.len(), 1, "exactly one shard failure");
    let failure = &report.failures[0];
    assert_eq!(failure.shard, failing);
    assert!(
        failure.message.contains("fault-injected"),
        "unexpected panic message: {}",
        failure.message
    );
    assert_eq!(failure.items_lost, report.per_shard_quarantined[failing]);
    assert!(failure.items_lost > 0);
    assert_eq!(report.dropped(), 0, "Block policy never sheds");
    assert_balanced(&report);
    assert_eq!(report.healthy_shards().len(), shards - 1);

    // The engine is queryable and the quarantined slot is live + empty.
    assert!(engine.shards()[failing].is_empty());
    let got = sorted_vals(engine.query());
    assert_eq!(got.len(), q);

    // Sequential reference restricted to healthy-shard ids (same seed →
    // same routing).
    let mut reference: ShardedQMax<u64, u64> = ShardedQMax::new(q, gamma, shards);
    for &(id, v) in &items {
        if reference.shard_of(&id) != failing {
            reference.insert(id, v);
        }
    }
    assert_eq!(
        got,
        sorted_vals(reference.query()),
        "surviving shards diverged from the sequential reference"
    );

    // The rebuilt shard accepts new items immediately.
    let probe_id = (0..)
        .find(|id: &u64| engine.shard_of(id) == failing)
        .unwrap();
    engine.insert(probe_id, u64::MAX);
    let top = sorted_vals(engine.query());
    assert_eq!(top.last(), Some(&u64::MAX));
}

/// Every shard panicking still terminates the run: all items are
/// accounted, all shards report failures, and the engine comes back as
/// `S` empty-but-live reservoirs.
#[test]
fn all_shards_panicking_still_terminates() {
    silence_fault_panics();
    let q = 16;
    let mut engine: ShardedQMax<u64, u64, FaultyBackend<DeamortizedQMax<u64, u64>>> =
        ShardedQMax::with_backends(q, 3, move |_| {
            FaultyBackend::new(DeamortizedQMax::new(q, 0.5), FaultSchedule::panic_at(1))
        });
    let items: Vec<(u64, u64)> = (0..10_000u64).map(|i| (i, i)).collect();
    let report = engine.run_threaded(items.into_iter(), DriverConfig::default());
    assert_eq!(report.failures.len(), 3);
    assert_eq!(report.quarantined(), 10_000);
    assert_eq!(report.max_load_factor(), 0.0);
    assert_balanced(&report);
    // Queryable (empty) afterwards. Note the rebuilt backends carry a
    // re-armed copy of the fault script — the factory stamps the shard
    // *as configured*, scripted faults included — so no insert probe
    // here: it would just fire `panic_at(1)` again.
    assert!(engine.query().is_empty());
    for s in engine.shards() {
        assert!(s.is_empty());
    }
}

/// A persistently slow shard under `Shed` completes with bounded,
/// budgeted loss and no failures; the healthy shard stays exact.
#[test]
fn stalled_shard_sheds_within_budget() {
    silence_fault_panics();
    let q = 32;
    let budget = 5_000u64;
    let slow = 0usize;
    let mut engine: ShardedQMax<u64, u64, FaultyBackend<DeamortizedQMax<u64, u64>>> =
        ShardedQMax::with_backends(q, 2, move |s| {
            let schedule = if s == slow {
                FaultSchedule::stall_every(64, 1)
            } else {
                FaultSchedule::none()
            };
            FaultyBackend::new(DeamortizedQMax::new(q, 0.5), schedule)
        });
    let items: Vec<(u64, u64)> = random_u64_stream(60_000, 5)
        .enumerate()
        .map(|(i, v)| (i as u64, v))
        .collect();
    let report = engine.run_threaded(
        items.iter().copied(),
        DriverConfig {
            batch_size: 32,
            queue_depth: 1,
            overload: OverloadPolicy::Shed {
                max_dropped: budget,
            },
        },
    );
    assert!(report.failures.is_empty());
    for (s, &d) in report.per_shard_dropped.iter().enumerate() {
        assert!(d <= budget, "shard {s} shed {d} > budget {budget}");
    }
    assert_balanced(&report);
    // Stalls slow a shard but never corrupt it: the engine is fully
    // queryable and every drained item went through the normal insert
    // path, so the merged top-q is exact over the non-shed items — a
    // subset of the stream, hence bounded below by the top-q of any
    // particular subset we can name. The whole-stream maximum has a
    // 1/queue-ful chance of being shed, so assert on structure instead:
    // a full reservoir of q values came back.
    assert_eq!(sorted_vals(engine.query()).len(), q);
}
