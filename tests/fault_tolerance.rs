//! Acceptance tests for the fault-tolerant shard driver: a panicking
//! shard is quarantined and rebuilt while the rest of the engine keeps
//! measuring — the per-PMD independence the paper's deployment relies
//! on, made mechanical.

use qmax_core::{AmortizedQMax, DeamortizedQMax, QMax};
use qmax_engine::fault::silence_fault_panics;
use qmax_engine::{
    DriverConfig, DriverReport, FaultSchedule, FaultyBackend, OverloadPolicy, ShardHealth,
    ShardState, ShardedQMax, WatchdogConfig,
};
use qmax_traces::gen::random_u64_stream;
use std::time::Duration;

fn sorted_vals(pairs: Vec<(u64, u64)>) -> Vec<u64> {
    let mut v: Vec<u64> = pairs.into_iter().map(|(_, v)| v).collect();
    v.sort_unstable();
    v
}

fn assert_balanced(report: &DriverReport) {
    for s in 0..report.per_shard_items.len() {
        assert_eq!(
            report.per_shard_items[s],
            report.per_shard_drained[s]
                + report.per_shard_dropped[s]
                + report.per_shard_quarantined[s],
            "shard {s} accounting does not balance"
        );
        assert!(report.per_shard_admitted[s] <= report.per_shard_drained[s]);
        // Warm restores re-adopt at most one checkpoint's candidate
        // entries (≤ the backend capacity), while every recovery
        // quarantines at least the in-flight batch — so recovery never
        // "creates" more items than the fault cost.
        assert!(
            report.per_shard_recovered[s] <= report.per_shard_quarantined[s],
            "shard {s}: recovered {} > quarantined {}",
            report.per_shard_recovered[s],
            report.per_shard_quarantined[s]
        );
    }
}

/// The pinned CI scenario: 100k items, one shard scripted to panic
/// mid-stream. The run completes without panicking, reports exactly one
/// failure, leaves the engine queryable, and the surviving shards'
/// merged top-q equals a sequential reference over the items routed to
/// healthy shards.
#[test]
fn one_shard_panic_is_isolated_and_reported() {
    let _silence = silence_fault_panics();
    let q = 256;
    let gamma = 0.25;
    let shards = 4;
    let failing = 2usize;
    let items: Vec<(u64, u64)> = random_u64_stream(100_000, 42)
        .enumerate()
        .map(|(i, v)| (i as u64, v))
        .collect();

    let mut engine: ShardedQMax<u64, u64, FaultyBackend<DeamortizedQMax<u64, u64>>> =
        ShardedQMax::with_backends(q, shards, move |s| {
            // The first ⌈q(1+γ)⌉ = 320 offered inserts reach the backend
            // unfiltered (no Ψ yet), so insert 300 is guaranteed to
            // arrive — mid-stream, while the reservoir is still filling.
            let schedule = if s == failing {
                FaultSchedule::panic_at(300)
            } else {
                FaultSchedule::none()
            };
            FaultyBackend::new(DeamortizedQMax::new(q, gamma), schedule)
        });

    let report = engine.run_threaded(items.iter().copied(), DriverConfig::default());

    assert_eq!(report.items, 100_000);
    assert_eq!(report.failures.len(), 1, "exactly one shard failure");
    let failure = &report.failures[0];
    assert_eq!(failure.shard, failing);
    assert!(
        failure.message.contains("fault-injected"),
        "unexpected panic message: {}",
        failure.message
    );
    assert_eq!(failure.items_lost, report.per_shard_quarantined[failing]);
    assert!(failure.items_lost > 0);
    assert_eq!(report.dropped(), 0, "Block policy never sheds");
    assert_balanced(&report);
    assert_eq!(report.healthy_shards().len(), shards - 1);

    // The engine is queryable and the quarantined slot is live + empty.
    assert!(engine.shards()[failing].is_empty());
    let got = sorted_vals(engine.query());
    assert_eq!(got.len(), q);

    // Sequential reference restricted to healthy-shard ids (same seed →
    // same routing).
    let mut reference: ShardedQMax<u64, u64> = ShardedQMax::new(q, gamma, shards);
    for &(id, v) in &items {
        if reference.shard_of(&id) != failing {
            reference.insert(id, v);
        }
    }
    assert_eq!(
        got,
        sorted_vals(reference.query()),
        "surviving shards diverged from the sequential reference"
    );

    // The rebuilt shard accepts new items immediately.
    let probe_id = (0..)
        .find(|id: &u64| engine.shard_of(id) == failing)
        .unwrap();
    engine.insert(probe_id, u64::MAX);
    let top = sorted_vals(engine.query());
    assert_eq!(top.last(), Some(&u64::MAX));
}

/// Every shard panicking still terminates the run: all items are
/// accounted, all shards report failures, and the engine comes back as
/// `S` empty-but-live reservoirs.
#[test]
fn all_shards_panicking_still_terminates() {
    let _silence = silence_fault_panics();
    let q = 16;
    let mut engine: ShardedQMax<u64, u64, FaultyBackend<DeamortizedQMax<u64, u64>>> =
        ShardedQMax::with_backends(q, 3, move |_| {
            FaultyBackend::new(DeamortizedQMax::new(q, 0.5), FaultSchedule::panic_at(1))
        });
    let items: Vec<(u64, u64)> = (0..10_000u64).map(|i| (i, i)).collect();
    let report = engine.run_threaded(items.into_iter(), DriverConfig::default());
    assert_eq!(report.failures.len(), 3);
    assert_eq!(report.quarantined(), 10_000);
    assert_eq!(report.max_load_factor(), 0.0);
    assert_balanced(&report);
    // Queryable (empty) afterwards. Note the rebuilt backends carry a
    // re-armed copy of the fault script — the factory stamps the shard
    // *as configured*, scripted faults included — so no insert probe
    // here: it would just fire `panic_at(1)` again.
    assert!(engine.query().is_empty());
    for s in engine.shards() {
        assert!(s.is_empty());
    }
}

/// A persistently slow shard under `Shed` completes with bounded,
/// budgeted loss and no failures; the healthy shard stays exact.
#[test]
fn stalled_shard_sheds_within_budget() {
    let _silence = silence_fault_panics();
    let q = 32;
    let budget = 5_000u64;
    let slow = 0usize;
    let mut engine: ShardedQMax<u64, u64, FaultyBackend<DeamortizedQMax<u64, u64>>> =
        ShardedQMax::with_backends(q, 2, move |s| {
            let schedule = if s == slow {
                FaultSchedule::stall_every(64, 1)
            } else {
                FaultSchedule::none()
            };
            FaultyBackend::new(DeamortizedQMax::new(q, 0.5), schedule)
        });
    let items: Vec<(u64, u64)> = random_u64_stream(60_000, 5)
        .enumerate()
        .map(|(i, v)| (i as u64, v))
        .collect();
    let report = engine.run_threaded(
        items.iter().copied(),
        DriverConfig {
            batch_size: 32,
            queue_depth: 1,
            overload: OverloadPolicy::Shed {
                max_dropped: budget,
            },
            ..DriverConfig::default()
        },
    );
    assert!(report.failures.is_empty());
    for (s, &d) in report.per_shard_dropped.iter().enumerate() {
        assert!(d <= budget, "shard {s} shed {d} > budget {budget}");
    }
    assert_balanced(&report);
    // Stalls slow a shard but never corrupt it: the engine is fully
    // queryable and every drained item went through the normal insert
    // path, so the merged top-q is exact over the non-shed items — a
    // subset of the stream, hence bounded below by the top-q of any
    // particular subset we can name. The whole-stream maximum has a
    // 1/queue-ful chance of being shed, so assert on structure instead:
    // a full reservoir of q values came back.
    assert_eq!(sorted_vals(engine.query()).len(), q);
}

/// The upgraded one-shard-panic acceptance scenario: with checkpointing
/// enabled, the panicking shard warm-restores from its last checkpoint
/// and the post-recovery merged top-q differs from a sequential
/// reference **only** in the items offered to the failed shard after
/// that checkpoint — bounded loss, versus PR 4's whole-shard loss.
///
/// Batch boundaries are deterministic (single producer, `Block`
/// policy), the checkpoint cadence equals the batch size (a snapshot at
/// every batch boundary), and `panic_at(1800)` fires inside the failing
/// shard's 4th batch — so the lost set is exactly sub-stream positions
/// `[1536, 2048)` of the failing shard, and nothing else.
#[test]
fn one_shard_panic_warm_recovers_with_bounded_loss() {
    let _silence = silence_fault_panics();
    let q = 64;
    let gamma = 0.25;
    let shards = 4;
    let failing = 2usize;
    let batch = 512usize;
    let items: Vec<(u64, u64)> = random_u64_stream(100_000, 42)
        .enumerate()
        .map(|(i, v)| (i as u64, v))
        .collect();

    let mut engine: ShardedQMax<u64, u64, FaultyBackend<AmortizedQMax<u64, u64>>> =
        ShardedQMax::with_backends(q, shards, move |s| {
            let schedule = if s == failing {
                FaultSchedule::panic_at(1800)
            } else {
                FaultSchedule::none()
            };
            FaultyBackend::new(AmortizedQMax::new(q, gamma), schedule)
        });

    let report = engine.run_supervised(
        items.iter().copied(),
        DriverConfig {
            batch_size: batch,
            checkpoint_every: Some(batch as u64),
            ..DriverConfig::default()
        },
    );

    // The shard recovered in place: no quarantined slot, one restart.
    assert!(report.failures.is_empty(), "warm restart is not a failure");
    assert_eq!(report.lifecycle.restarts(failing), 1);
    assert_eq!(report.lifecycle.final_state(failing), ShardState::Healthy);
    for s in (0..shards).filter(|&s| s != failing) {
        assert_eq!(report.lifecycle.restarts(s), 0);
    }
    // Exactly the panicking batch was lost; the checkpointed prefix was
    // re-adopted (once) by the warm restore.
    assert_eq!(report.per_shard_quarantined[failing], batch as u64);
    assert!(report.per_shard_recovered[failing] > 0);
    assert_balanced(&report);

    // Bounded loss: the merged top-q equals a sequential reference over
    // every item EXCEPT the failing shard's post-checkpoint batch
    // (sub-stream positions [1536, 2048) — `panic_at(1800)` fired in
    // the batch after the checkpoint at position 1536).
    let mut reference: ShardedQMax<u64, u64, AmortizedQMax<u64, u64>> =
        ShardedQMax::with_backends(q, shards, move |_| AmortizedQMax::new(q, gamma));
    let mut failing_pos = 0u64;
    for &(id, v) in &items {
        if reference.shard_of(&id) == failing {
            let lost = (1536..2048).contains(&failing_pos);
            failing_pos += 1;
            if lost {
                continue;
            }
        }
        reference.insert(id, v);
    }
    assert_eq!(
        sorted_vals(engine.query()),
        sorted_vals(reference.query()),
        "warm recovery lost more than the post-checkpoint batch"
    );

    // Coverage is whole again: the restored shard represents all of its
    // conserved items, and is flagged as restored (not exact-healthy).
    let annotated = engine.query_with_coverage();
    assert_eq!(annotated.coverage, 1.0);
    assert_eq!(annotated.degraded_shards, vec![failing]);
    assert_eq!(engine.shard_health()[failing], ShardHealth::Restored);
}

/// The seeded stall acceptance scenario: a one-shot 400 ms stall on one
/// shard. The watchdog flags the shard suspect, restarts it under
/// backoff within the deadline (while the stalled worker is still
/// asleep), live coverage dips below 1.0 during the outage, and the
/// warm-restored replacement brings coverage back to exactly 1.0.
#[test]
fn stall_watchdog_restarts_and_recovers_coverage() {
    let _silence = silence_fault_panics();
    let q = 64;
    let gamma = 0.25;
    let shards = 3;
    let stalled = 1usize;
    // Only the *first* backend built for the stalled shard carries the
    // stall script: replacement spares (stamped from the same factory)
    // come up clean, so the restarted shard does not re-stall.
    let mut builds = [0u32; 3];
    let mut engine: ShardedQMax<u64, u64, FaultyBackend<AmortizedQMax<u64, u64>>> =
        ShardedQMax::with_backends(q, shards, move |s| {
            builds[s] += 1;
            let schedule = if s == stalled && builds[s] == 1 {
                FaultSchedule::stall_at(600, 400)
            } else {
                FaultSchedule::none()
            };
            FaultyBackend::new(AmortizedQMax::new(q, gamma), schedule)
        });
    let items: Vec<(u64, u64)> = random_u64_stream(60_000, 7)
        .enumerate()
        .map(|(i, v)| (i as u64, v))
        .collect();

    let report = engine.run_supervised(
        items.iter().copied(),
        DriverConfig {
            batch_size: 128,
            queue_depth: 2,
            checkpoint_every: Some(128),
            watchdog: Some(WatchdogConfig {
                deadline: Duration::from_millis(80),
                poll_interval: Duration::from_millis(10),
                max_restarts: 3,
                backoff_base: Duration::from_millis(5),
                backoff_jitter: 0.5,
                seed: 7,
            }),
            ..DriverConfig::default()
        },
    );

    // Detected and restarted exactly once, and the shard ended healthy.
    assert!(report.failures.is_empty());
    assert_eq!(report.lifecycle.restarts(stalled), 1);
    assert_eq!(report.lifecycle.final_state(stalled), ShardState::Healthy);
    let states: Vec<ShardState> = report
        .lifecycle
        .events()
        .iter()
        .filter(|e| e.shard == stalled)
        .map(|e| e.state)
        .collect();
    assert!(
        states.contains(&ShardState::Suspect),
        "watchdog never flagged the stalled shard suspect: {states:?}"
    );
    assert!(states.contains(&ShardState::Restarting(1)));

    // The restart happened while the stalled worker was still asleep:
    // its in-flight batch (and any queued leftovers) were abandoned
    // into the quarantine bucket, and the replacement re-adopted the
    // last checkpoint.
    assert!(report.per_shard_quarantined[stalled] >= 128);
    assert!(report.per_shard_recovered[stalled] > 0);
    assert_balanced(&report);

    // Live coverage dipped below 1.0 during the outage…
    assert!(
        report.lifecycle.min_coverage() < 1.0,
        "no coverage dip recorded: {:?}",
        report.lifecycle
    );
    // …and the warm restore brought it back to exactly 1.0: every
    // conserved item is represented by a healthy or restored shard.
    let annotated = engine.query_with_coverage();
    assert_eq!(annotated.coverage, 1.0);
    assert_eq!(annotated.degraded_shards, vec![stalled]);
    assert_eq!(engine.shard_health()[stalled], ShardHealth::Restored);
    assert_eq!(annotated.items.len(), q);
}
