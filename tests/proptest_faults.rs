//! Chaos property tests for the fault-tolerant shard driver.
//!
//! Each case derives a pseudorandom fault schedule per shard from a
//! seed — panics, simulated validation trips, stalls, or nothing — and
//! runs a heavy-tailed stream through `run_threaded`. Two invariants
//! must hold on *every* schedule:
//!
//! 1. **Exactness on survivors** (blocking policy): the merged result
//!    equals a sequential run restricted to the sub-streams of shards
//!    that finished healthy. Panic isolation must not perturb sibling
//!    shards by a single item.
//! 2. **Conservation**: every routed item is accounted exactly once —
//!    `items == drained + dropped + quarantined`, per shard and in
//!    aggregate — no matter which faults fired.
//!
//! Fault-injected panics are deterministic in the *offered-insert*
//! clock of each shard, and the blocking policy makes each shard's
//! sub-stream identical run to run, so failures reproduce from the
//! case's seed alone.

use proptest::prelude::*;
use qmax_core::{DeamortizedQMax, QMax};
use qmax_engine::fault::silence_fault_panics;
use qmax_engine::{
    DriverConfig, DriverReport, FaultSchedule, FaultyBackend, OverloadPolicy, ShardedQMax,
};
use qmax_traces::gen::caida_like;

/// Heavy-tailed (zipf-like flow sizes) keyed stream: flows reuse ids,
/// values are packet lengths.
fn zipf_stream(n: usize, seed: u64) -> Vec<(u64, u64)> {
    caida_like(n, seed)
        .map(|p| (p.flow().as_u64(), p.len as u64))
        .collect()
}

fn sorted_vals(pairs: Vec<(u64, u64)>) -> Vec<u64> {
    let mut v: Vec<u64> = pairs.into_iter().map(|(_, v)| v).collect();
    v.sort_unstable();
    v
}

fn faulty_engine(
    q: usize,
    gamma: f64,
    shards: usize,
    fault_seed: u64,
    horizon: u64,
) -> ShardedQMax<u64, u64, FaultyBackend<DeamortizedQMax<u64, u64>>> {
    ShardedQMax::with_backends(q, shards, move |s| {
        FaultyBackend::new(
            DeamortizedQMax::new(q, gamma),
            FaultSchedule::seeded(fault_seed.wrapping_add(s as u64), horizon),
        )
    })
}

fn check_balance(report: &DriverReport) {
    let mut drained = 0u64;
    let mut dropped = 0u64;
    let mut quarantined = 0u64;
    for s in 0..report.per_shard_items.len() {
        assert_eq!(
            report.per_shard_items[s],
            report.per_shard_drained[s]
                + report.per_shard_dropped[s]
                + report.per_shard_quarantined[s],
            "shard {s} accounting does not balance"
        );
        assert!(
            report.per_shard_admitted[s] <= report.per_shard_drained[s],
            "shard {s} admitted more than it drained"
        );
        assert!(
            report.per_shard_recovered[s] <= report.per_shard_quarantined[s],
            "shard {s}: recovered {} > quarantined {}",
            report.per_shard_recovered[s],
            report.per_shard_quarantined[s]
        );
        drained += report.per_shard_drained[s];
        dropped += report.per_shard_dropped[s];
        quarantined += report.per_shard_quarantined[s];
    }
    assert_eq!(report.items, drained + dropped + quarantined);
    assert_eq!(report.quarantined(), quarantined);
    assert_eq!(report.dropped(), dropped);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Blocking policy: surviving shards match a sequential run over
    /// their ids exactly, failures only come from poisonous schedules,
    /// and the accounting balances.
    #[test]
    fn survivors_match_sequential_reference(
        fault_seed in any::<u64>(),
        stream_seed in any::<u64>(),
        n in 200usize..3000,
        q in 1usize..48,
        shards in 1usize..6,
        batch_size in 1usize..128,
    ) {
        let _silence = silence_fault_panics();
        let gamma = 0.5;
        // Small horizon: triggers land inside the unfiltered
        // reservoir-fill phase, so poisonous schedules usually fire.
        let horizon = 48;
        let items = zipf_stream(n, stream_seed);
        let mut engine = faulty_engine(q, gamma, shards, fault_seed, horizon);
        let report = engine.run_threaded(items.iter().copied(), DriverConfig {
            batch_size,
            queue_depth: 2,
            overload: OverloadPolicy::Block,
            ..DriverConfig::default()
        });

        prop_assert_eq!(report.items, n as u64);
        prop_assert_eq!(report.dropped(), 0, "Block never sheds");
        check_balance(&report);

        // A shard can only fail if its schedule could poison it.
        for f in &report.failures {
            let schedule = FaultSchedule::seeded(
                fault_seed.wrapping_add(f.shard as u64),
                horizon,
            );
            prop_assert!(
                schedule.is_poisonous(),
                "shard {} failed on a non-poisonous schedule: {}",
                f.shard,
                f.message
            );
            prop_assert!(f.message.contains("fault-injected"));
            prop_assert_eq!(f.items_lost, report.per_shard_quarantined[f.shard]);
        }
        // Healthy shards lost nothing.
        for s in report.healthy_shards() {
            prop_assert_eq!(report.per_shard_quarantined[s], 0);
        }

        // Exactness: merged result == sequential run restricted to the
        // healthy shards' ids (same seed → same routing).
        let mut reference: ShardedQMax<u64, u64> = ShardedQMax::new(q, gamma, shards);
        for &(id, v) in &items {
            if report.is_healthy(reference.shard_of(&id)) {
                reference.insert(id, v);
            }
        }
        prop_assert_eq!(sorted_vals(engine.query()), sorted_vals(reference.query()));
    }

    /// Shedding policy: loss stays within the per-shard budget and the
    /// conservation invariant still balances with faults firing.
    #[test]
    fn shedding_balances_and_respects_budget(
        fault_seed in any::<u64>(),
        stream_seed in any::<u64>(),
        n in 200usize..2000,
        q in 1usize..32,
        shards in 1usize..5,
        budget in 0u64..500,
    ) {
        let _silence = silence_fault_panics();
        let items = zipf_stream(n, stream_seed);
        let mut engine = faulty_engine(q, 0.5, shards, fault_seed, 48);
        let report = engine.run_threaded(items.iter().copied(), DriverConfig {
            batch_size: 16,
            queue_depth: 1,
            overload: OverloadPolicy::Shed { max_dropped: budget },
            ..DriverConfig::default()
        });
        prop_assert_eq!(report.items, n as u64);
        for (s, &d) in report.per_shard_dropped.iter().enumerate() {
            prop_assert!(d <= budget, "shard {} shed {} > budget {}", s, d, budget);
        }
        check_balance(&report);
        // The engine survives to answer queries whatever happened.
        let _ = engine.query();
    }

    /// Repeating a faulted run with the same seeds reproduces the same
    /// failures and the same merged result — the property that makes a
    /// chaos-CI failure debuggable from its seed.
    #[test]
    fn faulted_runs_are_reproducible(
        fault_seed in any::<u64>(),
        stream_seed in any::<u64>(),
        n in 200usize..1500,
        shards in 1usize..5,
    ) {
        let _silence = silence_fault_panics();
        let q = 16;
        let items = zipf_stream(n, stream_seed);
        let config = DriverConfig {
            batch_size: 32,
            queue_depth: 2,
            overload: OverloadPolicy::Block,
            ..DriverConfig::default()
        };
        let mut a = faulty_engine(q, 0.5, shards, fault_seed, 48);
        let ra = a.run_threaded(items.iter().copied(), config);
        let mut b = faulty_engine(q, 0.5, shards, fault_seed, 48);
        let rb = b.run_threaded(items.iter().copied(), config);
        let fa: Vec<usize> = ra.failures.iter().map(|f| f.shard).collect();
        let fb: Vec<usize> = rb.failures.iter().map(|f| f.shard).collect();
        prop_assert_eq!(fa, fb);
        prop_assert_eq!(ra.per_shard_quarantined, rb.per_shard_quarantined);
        prop_assert_eq!(ra.per_shard_drained, rb.per_shard_drained);
        prop_assert_eq!(sorted_vals(a.query()), sorted_vals(b.query()));
    }

    /// Supervised runs with checkpointing: seeded one-shot faults never
    /// exhaust the restart budget, so no shard is ever permanently
    /// quarantined; the conservation invariant balances with the
    /// reclassified (post-checkpoint) losses included; recovered items
    /// are re-counted exactly once (`recovered ≤ quarantined`, checked
    /// in `check_balance`); and the whole run — restarts, accounting,
    /// merged result — reproduces from its seeds.
    #[test]
    fn supervised_warm_recovery_conserves_and_reproduces(
        fault_seed in any::<u64>(),
        stream_seed in any::<u64>(),
        n in 200usize..2000,
        q in 1usize..32,
        shards in 1usize..5,
        // `recovered ≤ quarantined` is a theorem of configurations
        // where every failure costs at least one checkpoint's worth of
        // candidates: batch_size ≥ ⌈q(1+γ)⌉ = 48 here, so a recovery
        // never re-adopts more entries than the full batch it lost.
        // (With horizon 48 every poisonous trigger additionally fires
        // inside the shard's first batch, before its first checkpoint.)
        batch_size in 64usize..128,
        ckpt in 1u64..96,
    ) {
        let _silence = silence_fault_panics();
        let gamma = 0.5;
        let horizon = 48;
        let items = zipf_stream(n, stream_seed);
        let config = DriverConfig {
            batch_size,
            queue_depth: 2,
            overload: OverloadPolicy::Block,
            checkpoint_every: Some(ckpt),
            ..DriverConfig::default()
        };
        let supervised_engine = |seed: u64| -> ShardedQMax<
            u64, u64, FaultyBackend<qmax_core::AmortizedQMax<u64, u64>>,
        > {
            ShardedQMax::with_backends(q, shards, move |s| {
                FaultyBackend::new(
                    qmax_core::AmortizedQMax::new(q, gamma),
                    FaultSchedule::seeded(seed.wrapping_add(s as u64), horizon),
                )
            })
        };
        let mut a = supervised_engine(fault_seed);
        let ra = a.run_supervised(items.iter().copied(), config);

        prop_assert_eq!(ra.items, n as u64);
        check_balance(&ra);
        // One-shot faults and a default restart budget of 3: every
        // panic warm-restores, so nothing is permanently quarantined.
        prop_assert!(ra.failures.is_empty(), "failures: {:?}", ra.failures);
        for s in 0..shards {
            prop_assert!(ra.lifecycle.restarts(s) <= 1, "one-shot fault, two restarts");
            if ra.lifecycle.restarts(s) == 0 {
                prop_assert_eq!(ra.per_shard_quarantined[s], 0);
                prop_assert_eq!(ra.per_shard_recovered[s], 0);
            }
        }
        // Warm restores leave every conserved item represented.
        let annotated = a.query_with_coverage();
        prop_assert_eq!(annotated.coverage, 1.0);

        // Reproducibility, including the recovered-entry accounting.
        let mut b = supervised_engine(fault_seed);
        let rb = b.run_supervised(items.iter().copied(), config);
        prop_assert_eq!(ra.per_shard_quarantined, rb.per_shard_quarantined);
        prop_assert_eq!(ra.per_shard_drained, rb.per_shard_drained);
        prop_assert_eq!(ra.per_shard_recovered, rb.per_shard_recovered);
        prop_assert_eq!(sorted_vals(a.query()), sorted_vals(b.query()));
    }
}
