//! Properties of the kernel-accelerated SoA path as seen from the
//! structure level: sampled-pivot compaction must stay exact, rarely
//! fall back to full selection on realistic inputs, and produce
//! identical results whether the kernels dispatch scalar or SIMD.

use proptest::prelude::*;
use qmax_core::{BatchInsert, OrderedF64, QMax, SoaAmortizedQMax};
use qmax_select::Kernel;

/// Heavy-tailed ("zipf-ish") value stream: many small values, few huge.
fn zipf_stream(len: usize) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec((any::<u64>(), 0u32..48), len..len + 1)
        .prop_map(|v| v.into_iter().map(|(r, s)| r >> s).collect())
}

fn sorted_top(qm: &mut SoaAmortizedQMax<u64, u64>) -> Vec<u64> {
    let mut v: Vec<u64> = qm.query().into_iter().map(|(_, val)| val).collect();
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sampled pivots hit the q(1+γ) tolerance band almost always: on
    /// 10k-element zipf buffers fewer than 5% of compactions may fall
    /// back to exact selection — and the result stays exactly top-q.
    #[test]
    fn sampled_pivot_fallback_rate_below_5_percent(vals in zipf_stream(10_000)) {
        // cap = 2·q = 2048 ≥ SAMPLED_COMPACT_MIN, so every compaction
        // takes the sampled path.
        let q = 1024usize;
        let mut qm: SoaAmortizedQMax<u64, u64> = SoaAmortizedQMax::new(q, 1.0);
        for (i, &v) in vals.iter().enumerate() {
            qm.insert(i as u64, v);
        }
        let compactions = qm.compactions();
        let fallbacks = qm.pivot_fallbacks();
        prop_assert!(compactions > 0, "stream must force at least one compaction");
        prop_assert!(
            (fallbacks as f64) < 0.05 * (compactions as f64).max(1.0),
            "fallback rate too high: {fallbacks}/{compactions}"
        );

        // Exactness regardless of how many fallbacks occurred.
        let mut expect = vals.clone();
        expect.sort_unstable();
        let top: Vec<u64> = expect[expect.len() - q..].to_vec();
        prop_assert_eq!(sorted_top(&mut qm), top);
    }

    /// Forcing the scalar kernel must not change anything observable:
    /// same admissions, same Ψ trajectory, same compaction schedule,
    /// same surviving (id, value) set as the auto-dispatched kernel.
    #[test]
    fn scalar_and_simd_dispatch_are_observably_identical(
        vals in zipf_stream(6_000),
        batch in 1usize..700,
    ) {
        let q = 512usize;
        let mut auto: SoaAmortizedQMax<u64, u64> = SoaAmortizedQMax::new(q, 1.0);
        let mut forced: SoaAmortizedQMax<u64, u64> = SoaAmortizedQMax::new(q, 1.0);
        forced.set_kernel(Kernel::scalar());

        let items: Vec<(u64, u64)> = vals
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as u64, v))
            .collect();
        for chunk in items.chunks(batch) {
            let a = auto.insert_batch(chunk);
            let f = forced.insert_batch(chunk);
            prop_assert_eq!(a, f, "admission counts diverged");
            prop_assert_eq!(auto.threshold(), forced.threshold(), "Ψ diverged");
        }
        prop_assert_eq!(auto.compactions(), forced.compactions());
        prop_assert_eq!(auto.pivot_fallbacks(), forced.pivot_fallbacks());

        let mut a: Vec<(u64, u64)> = auto.query();
        let mut f: Vec<(u64, u64)> = forced.query();
        a.sort_unstable();
        f.sort_unstable();
        prop_assert_eq!(a, f);
    }

    /// Non-`u64` value types (here `OrderedF64`, including signed
    /// zeros, subnormals, and infinities) always take the scalar
    /// kernels and still keep exact top-q semantics through sampled
    /// compaction.
    #[test]
    fn ordered_f64_edge_values_stay_exact(
        raw in prop::collection::vec(
            prop_oneof![
                Just(0.0f64),
                Just(-0.0f64),
                Just(f64::MIN_POSITIVE),
                Just(-f64::MIN_POSITIVE),
                Just(f64::INFINITY),
                Just(f64::NEG_INFINITY),
                (-1.0e9f64..1.0e9f64),
            ],
            4_000..4_001,
        ),
    ) {
        let q = 700usize;
        let mut qm: SoaAmortizedQMax<u32, OrderedF64> = SoaAmortizedQMax::new(q, 1.0);
        for (i, &v) in raw.iter().enumerate() {
            qm.insert(i as u32, OrderedF64(v));
        }
        let mut expect: Vec<OrderedF64> = raw.iter().map(|&v| OrderedF64(v)).collect();
        expect.sort_unstable();
        let top = &expect[expect.len() - q..];
        let mut got: Vec<OrderedF64> = qm.query().into_iter().map(|(_, v)| v).collect();
        got.sort_unstable();
        prop_assert_eq!(&got[..], top);
    }
}
