//! Property-based tests of the q-MAX structures (crate-local; the
//! workspace-level suite covers cross-crate behaviour).

use proptest::prelude::*;
use qmax_core::heap::MinHeap;
use qmax_core::skiplist::SkipList;
use qmax_core::{
    AmortizedQMax, DeamortizedQMax, ExpDecayQMax, HierSlackQMax, IndexedMinHeap, KeyedSkipListQMax,
    Minimal, QMax, TimeSlackQMax,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// MinHeap drains in sorted order under interleaved push/pop.
    #[test]
    fn min_heap_is_a_priority_queue(ops in prop::collection::vec((any::<bool>(), any::<u32>()), 1..2000)) {
        let mut heap = MinHeap::new();
        let mut reference = std::collections::BinaryHeap::new();
        for (is_pop, v) in ops {
            if is_pop {
                let got = heap.pop();
                let expect = reference.pop().map(|std::cmp::Reverse(x)| x);
                prop_assert_eq!(got, expect);
            } else {
                heap.push(v);
                reference.push(std::cmp::Reverse(v));
            }
        }
        prop_assert_eq!(heap.len(), reference.len());
    }

    /// SkipList mirrors a sorted multiset under insert / pop_min /
    /// remove_one.
    #[test]
    fn skiplist_is_a_sorted_multiset(ops in prop::collection::vec((0u8..3, 0u16..64), 1..1500)) {
        let mut sl = SkipList::new();
        let mut reference: Vec<u16> = Vec::new();
        for (op, v) in ops {
            match op {
                0 => {
                    sl.insert(v);
                    reference.push(v);
                    reference.sort_unstable();
                }
                1 => {
                    let got = sl.pop_min();
                    let expect = if reference.is_empty() {
                        None
                    } else {
                        Some(reference.remove(0))
                    };
                    prop_assert_eq!(got, expect);
                }
                _ => {
                    let removed = sl.remove_one(&v, |_| true);
                    let pos = reference.iter().position(|&x| x == v);
                    prop_assert_eq!(removed, pos.is_some());
                    if let Some(p) = pos {
                        reference.remove(p);
                    }
                }
            }
        }
        let drained: Vec<u16> = sl.iter().copied().collect();
        prop_assert_eq!(drained, reference);
    }

    /// IndexedMinHeap upserts behave like a map + min tracking.
    #[test]
    fn indexed_heap_tracks_min(ops in prop::collection::vec((0u8..4, 0u16..32, any::<u32>()), 1..1500)) {
        let mut heap: IndexedMinHeap<u16, u32> = IndexedMinHeap::new();
        let mut reference: std::collections::HashMap<u16, u32> = std::collections::HashMap::new();
        for (op, k, v) in ops {
            if op == 0 && !reference.is_empty() {
                let (hk, hv) = heap.pop_min().unwrap();
                let true_min = reference.values().min().copied().unwrap();
                prop_assert_eq!(hv, true_min);
                prop_assert_eq!(reference.remove(&hk), Some(hv));
            } else {
                heap.upsert(k, v);
                reference.insert(k, v);
            }
            prop_assert_eq!(heap.len(), reference.len());
            if let Some((_, min)) = heap.peek() {
                prop_assert_eq!(*min, reference.values().min().copied().unwrap());
            }
        }
    }

    /// Keyed skip list keeps the top-q distinct keys by max value.
    #[test]
    fn keyed_skiplist_top_q_distinct(
        ops in prop::collection::vec((0u16..24, any::<u32>()), 1..1200),
        q in 1usize..8,
    ) {
        let mut qm = KeyedSkipListQMax::new(q);
        let mut best: std::collections::HashMap<u16, u32> = std::collections::HashMap::new();
        for &(k, v) in &ops {
            qm.insert(k, v);
            let e = best.entry(k).or_insert(0);
            if *e < v {
                *e = v;
            }
        }
        let mut expect: Vec<(u32, u16)> = best.iter().map(|(&k, &v)| (v, k)).collect();
        expect.sort_unstable_by(|a, b| b.cmp(a));
        expect.truncate(q);
        let min_kept = expect.last().map(|&(v, _)| v).unwrap_or(0);
        let got: std::collections::HashMap<u16, u32> = qm.query().into_iter().collect();
        prop_assert_eq!(got.len(), expect.len());
        // All strictly-above-threshold keys must be present with their
        // exact max values (ties at the boundary may resolve either way).
        for &(v, k) in &expect {
            if v > min_kept {
                prop_assert_eq!(got.get(&k), Some(&v));
            }
        }
        for (&k, &v) in &got {
            prop_assert_eq!(best.get(&k), Some(&v), "stale value for key {}", k);
        }
    }

    /// q-MIN via Minimal equals sorting ascending.
    #[test]
    fn minimal_gives_q_min(vals in prop::collection::vec(any::<u64>(), 1..1500), q in 1usize..32) {
        let mut qm = AmortizedQMax::new(q, 0.5);
        for (i, &v) in vals.iter().enumerate() {
            qm.insert(i as u32, Minimal(v));
        }
        let mut got: Vec<u64> = qm.query().into_iter().map(|(_, Minimal(v))| v).collect();
        got.sort_unstable();
        let mut expect = vals.clone();
        expect.sort_unstable();
        expect.truncate(q);
        prop_assert_eq!(got, expect);
    }

    /// Exponential decay ranks by decayed weight for any decay factor.
    #[test]
    fn exp_decay_ranks_correctly(
        vals in prop::collection::vec(1u32..1_000_000, 2..300),
        c_scaled in 2u32..99,
        q in 1usize..6,
    ) {
        let c = c_scaled as f64 / 100.0;
        let mut ed = ExpDecayQMax::new(DeamortizedQMax::new(q, 0.5), c);
        for (i, &v) in vals.iter().enumerate() {
            ed.insert(i, v as f64);
        }
        let got: std::collections::HashSet<usize> =
            ed.query().into_iter().map(|(id, _)| id).collect();
        // Reference: decayed weight val * c^(t - i).
        let t = vals.len() as f64;
        let mut scored: Vec<(f64, usize)> = vals
            .iter()
            .enumerate()
            .map(|(i, &v)| ((v as f64).ln() + (t - i as f64) * c.ln(), i))
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        // Only check items strictly above the boundary (ties arbitrary).
        let boundary = scored[got.len() - 1].0;
        for &(s, i) in scored.iter().take(got.len()) {
            if s > boundary + 1e-9 {
                prop_assert!(got.contains(&i), "missing strictly-ranked item {}", i);
            }
        }
    }

    /// Time-based windows: the result is exactly the top-q of a
    /// block-aligned time suffix of valid slack length.
    #[test]
    fn time_window_matches_block_aligned_suffix(
        gaps in prop::collection::vec(0u64..40, 300..1200),
        vals in prop::collection::vec(any::<u64>(), 1200),
        q in 1usize..6,
    ) {
        let w_ns = 2_000u64;
        let mut sw = TimeSlackQMax::new(q, 0.5, w_ns, 0.25);
        let block = sw.block_ns();
        let n_blocks = sw.effective_window_ns() / block;
        let mut ts = 0u64;
        let mut all: Vec<(u64, u64)> = Vec::new();
        for (i, &g) in gaps.iter().enumerate() {
            ts += g;
            let v = vals[i];
            sw.insert(i as u32, v, ts);
            all.push((ts, v));
        }
        let mut got: Vec<u64> = sw.query_at(ts).into_iter().map(|(_, v)| v).collect();
        got.sort_unstable();
        // Reference: items in block epochs [cur-(n-1), cur].
        let cur = ts / block;
        let oldest = cur.saturating_sub(n_blocks - 1);
        let mut expect: Vec<u64> = all
            .iter()
            .filter(|&&(t, _)| t / block >= oldest)
            .map(|&(_, v)| v)
            .collect();
        expect.sort_unstable_by(|a, b| b.cmp(a));
        expect.truncate(q);
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// Hierarchical windows never report an expired or future item.
    #[test]
    fn hier_window_reports_only_live_items(
        vals in prop::collection::vec(any::<u64>(), 600..2000),
        c in 1usize..4,
    ) {
        let q = 3;
        let w = 128;
        let mut sw = HierSlackQMax::new(q, 0.5, w, 0.125, c);
        let w_eff = sw.effective_window();
        for (i, &v) in vals.iter().enumerate() {
            sw.insert(i as u32, v);
        }
        let ids: Vec<u32> = sw.query().into_iter().map(|(id, _)| id).collect();
        let oldest_allowed = vals.len().saturating_sub(w_eff) as u32;
        for id in ids {
            prop_assert!(id >= oldest_allowed, "expired item {} reported", id);
            prop_assert!((id as usize) < vals.len());
        }
    }
}
