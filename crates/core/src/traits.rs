//! The q-MAX problem interface.

use crate::entry::Entry;
use qmax_select::nth_smallest;

/// The q-MAX interface: process a stream of `(id, value)` items and, upon
/// query, list the `q` items with the largest values.
///
/// This interface is deliberately *weaker* than a priority queue's — it
/// has no `pop`, `peek`, or ordered iteration — which is exactly what
/// allows constant-time implementations ([`crate::DeamortizedQMax`])
/// while heaps and skip lists are stuck at `Ω(log q)`.
///
/// Implementations may keep more than `q` candidates internally (up to
/// `q(1+γ)`), may reorder their internals during `query`, and may drop
/// arriving items that provably cannot be among the `q` largest.
pub trait QMax<I, V> {
    /// Offers a stream item to the structure.
    ///
    /// Returns `true` if the item was admitted into the candidate set and
    /// `false` if it was filtered out (its value was at most the current
    /// admission threshold, so it cannot be among the `q` largest).
    fn insert(&mut self, id: I, val: V) -> bool;

    /// Lists the `q` items with the largest values seen so far (fewer if
    /// the stream was shorter than `q`). Order within the result is
    /// unspecified.
    fn query(&mut self) -> Vec<(I, V)>;

    /// Clears the structure back to its initial empty state.
    fn reset(&mut self);

    /// The configured reservoir size `q`.
    fn q(&self) -> usize;

    /// Number of candidate items currently stored (between `min(q, seen)`
    /// and the structure's capacity).
    fn len(&self) -> usize;

    /// Whether no items are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current admission threshold Ψ: a value such that items with
    /// `val <= Ψ` are provably not among the `q` largest and are dropped
    /// on arrival. `None` while no threshold has been established.
    fn threshold(&self) -> Option<V>;

    /// A short human-readable implementation name (used by the benchmark
    /// harness to label series).
    fn name(&self) -> &'static str;

    /// Which concrete layout this structure (or its delegate) runs on —
    /// observability for the adaptive backend selection. Defaults to
    /// [`name`](QMax::name); [`crate::AdaptiveBackend`] overrides it to
    /// report the layout its policy actually chose.
    fn backend_label(&self) -> &'static str {
        self.name()
    }
}

/// Bulk insertion for [`QMax`] structures.
///
/// `insert_batch` is semantically identical to inserting the items one by
/// one in order — same admissions, same final state — but lets an
/// implementation amortize per-call overhead and use cache-friendly
/// kernels over the whole slice. The structure-of-arrays backends
/// ([`crate::SoaAmortizedQMax`], [`crate::SoaDeamortizedQMax`]) exploit
/// this with a branchless chunked Ψ-filter; the generic impls simply
/// loop.
pub trait BatchInsert<I, V>: QMax<I, V> {
    /// Offers every item of `items` to the structure, in order.
    ///
    /// Returns the number of items admitted into the candidate set (the
    /// rest were dropped by the admission filter).
    fn insert_batch(&mut self, items: &[(I, V)]) -> usize;
}

/// A q-MAX backend usable as the per-interval building block of the
/// variant layers: slack windows ([`crate::BasicSlackQMax`],
/// [`crate::HierSlackQMax`], [`crate::LazySlackQMax`]), time-based
/// windows ([`crate::TimeSlackQMax`]), and the LRFU caches.
///
/// The variants own many interchangeable interval instances (ring
/// blocks, a front buffer, per-shard reservoirs) and need three things
/// beyond [`QMax`] + [`BatchInsert`]:
///
/// * **prototype construction** — [`fresh`](IntervalBackend::fresh)
///   stamps out an empty instance with the same configuration (`q`, γ
///   geometry), so a window can build its blocks from one caller-made
///   prototype without knowing the backend's constructor signature;
/// * **non-consuming summaries** —
///   [`candidates_into`](IntervalBackend::candidates_into) and
///   [`top_q_into`](IntervalBackend::top_q_into) read a block's
///   contents **without mutating it**. This is load-bearing: a window
///   query merges every retained block, and `LazySlackQMax` pushes a
///   completed block's summary into its layers; if summarizing
///   compacted or drained the block (as `query` may), a query would
///   corrupt blocks that are still inside the window;
/// * **in-place recycling** — `reset` (from [`QMax`]) must return the
///   instance to its empty state while keeping its allocations, so
///   advancing a block ring does not allocate in the hot path.
pub trait IntervalBackend<I, V: Ord>: BatchInsert<I, V> {
    /// Creates a fresh, empty instance with the same configuration
    /// (`q` and space-slack geometry) as `self`, but none of its
    /// contents. Used by the window constructors to stamp blocks out
    /// of a prototype.
    fn fresh(&self) -> Self
    where
        Self: Sized;

    /// The backend's fixed candidate capacity (`⌈q(1+γ)⌉`-shaped):
    /// `len()` never exceeds it, and variant layers use it to bound
    /// their own populations.
    fn capacity(&self) -> usize;

    /// Appends the current candidate set — a cheap superset of the top
    /// `q`, at most the backend's capacity — to `out`, without mutating
    /// the backend. Window queries merge these supersets and cut to `q`
    /// once at the end, which is cheaper than per-block exact cuts.
    fn candidates_into(&self, out: &mut Vec<Entry<I, V>>);

    /// Appends exactly the top `min(q, len)` candidates to `out`,
    /// without mutating the backend. Used where a *bounded* summary is
    /// required (e.g. `LazySlackQMax`'s per-block push into its
    /// layers). The default selects over a scratch tail of `out`.
    fn top_q_into(&self, out: &mut Vec<Entry<I, V>>) {
        let start = out.len();
        self.candidates_into(out);
        let n = out.len() - start;
        if n > self.q() {
            let cut = n - self.q();
            nth_smallest(&mut out[start..], cut);
            out.drain(start..start + cut);
        }
    }
}

impl<I, V, Q: QMax<I, V> + ?Sized> QMax<I, V> for Box<Q> {
    fn insert(&mut self, id: I, val: V) -> bool {
        (**self).insert(id, val)
    }

    fn query(&mut self) -> Vec<(I, V)> {
        (**self).query()
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    fn q(&self) -> usize {
        (**self).q()
    }

    fn len(&self) -> usize {
        (**self).len()
    }

    fn threshold(&self) -> Option<V> {
        (**self).threshold()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn backend_label(&self) -> &'static str {
        (**self).backend_label()
    }
}

impl<I, V, Q: BatchInsert<I, V> + ?Sized> BatchInsert<I, V> for Box<Q> {
    fn insert_batch(&mut self, items: &[(I, V)]) -> usize {
        (**self).insert_batch(items)
    }
}
