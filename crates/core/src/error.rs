//! Fallible-construction and fallible-insert errors.
//!
//! The constructors historically `assert!`ed their parameter domains,
//! which is the right call for programming errors but the wrong call at
//! a *service* API boundary: a measurement structure configured from an
//! operator knob or built per-tenant must reject a bad `q`/γ/τ without
//! taking the serving thread down. Every structure therefore exposes a
//! `try_new` returning [`QMaxError`]; the panicking `new` wrappers
//! remain and format the same messages they always did.

use std::error::Error;
use std::fmt;

/// Why a q-MAX structure could not be built, or an item not inserted.
///
/// [`fmt::Display`] renders the exact messages the panicking
/// constructors use, so `try_new(..).unwrap_or_else(|e| panic!("{e}"))`
/// is behaviorally identical to the historical `assert!`s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QMaxError {
    /// `q == 0`: a reservoir for the zero largest items is meaningless.
    ZeroQ,
    /// The space-slack γ was not a positive finite number.
    BadGamma(f64),
    /// A (count- or time-based) window length of zero.
    ZeroWindow,
    /// The window slack fraction τ was outside `(0, 1]`.
    BadTau(f64),
    /// A hierarchical window with zero layers (`c == 0`).
    ZeroLayers,
    /// The exponential-decay parameter `c` was outside `(0, 1]`.
    BadDecay(f64),
    /// A decayed insert with a non-positive or non-finite value (the
    /// log-domain transform is undefined for it).
    BadValue(f64),
    /// A sharded engine with zero shards.
    ZeroShards,
}

impl fmt::Display for QMaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            QMaxError::ZeroQ => write!(f, "q must be positive"),
            QMaxError::BadGamma(g) => {
                write!(f, "gamma must be positive and finite (got {g})")
            }
            QMaxError::ZeroWindow => write!(f, "window must be positive"),
            QMaxError::BadTau(t) => write!(f, "tau must be in (0, 1] (got {t})"),
            QMaxError::ZeroLayers => write!(f, "c must be positive"),
            QMaxError::BadDecay(c) => {
                write!(f, "decay parameter must be in (0, 1] (got {c})")
            }
            QMaxError::BadValue(v) => {
                write!(f, "decayed values must be positive and finite (got {v})")
            }
            QMaxError::ZeroShards => write!(f, "need at least one shard"),
        }
    }
}

impl Error for QMaxError {}

/// Validates a `(q, gamma)` pair, the domain shared by every reservoir
/// constructor.
pub(crate) fn check_q_gamma(q: usize, gamma: f64) -> Result<(), QMaxError> {
    if q == 0 {
        return Err(QMaxError::ZeroQ);
    }
    if !(gamma > 0.0 && gamma.is_finite()) {
        return Err(QMaxError::BadGamma(gamma));
    }
    Ok(())
}

/// Validates a slack-window `(w, tau)` pair.
pub(crate) fn check_window(w: usize, tau: f64) -> Result<(), QMaxError> {
    if w == 0 {
        return Err(QMaxError::ZeroWindow);
    }
    check_tau(tau)
}

/// Validates a slack fraction τ.
pub(crate) fn check_tau(tau: f64) -> Result<(), QMaxError> {
    if tau > 0.0 && tau <= 1.0 {
        Ok(())
    } else {
        Err(QMaxError::BadTau(tau))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_historical_assert_messages() {
        // `#[should_panic(expected = ..)]` tests across the workspace
        // match substrings of these; keep the prefixes stable.
        assert_eq!(QMaxError::ZeroQ.to_string(), "q must be positive");
        assert!(QMaxError::BadGamma(-1.0)
            .to_string()
            .starts_with("gamma must be positive and finite"));
        assert_eq!(QMaxError::ZeroWindow.to_string(), "window must be positive");
        assert!(QMaxError::BadTau(0.0)
            .to_string()
            .starts_with("tau must be in (0, 1]"));
        assert_eq!(QMaxError::ZeroLayers.to_string(), "c must be positive");
        assert!(QMaxError::BadDecay(1.5)
            .to_string()
            .starts_with("decay parameter must be in (0, 1]"));
        assert!(QMaxError::BadValue(f64::NAN)
            .to_string()
            .starts_with("decayed values must be positive and finite"));
        assert_eq!(QMaxError::ZeroShards.to_string(), "need at least one shard");
    }

    #[test]
    fn validators_cover_the_domain_edges() {
        assert_eq!(check_q_gamma(0, 0.5), Err(QMaxError::ZeroQ));
        assert_eq!(check_q_gamma(1, 0.0), Err(QMaxError::BadGamma(0.0)));
        assert_eq!(
            check_q_gamma(1, f64::INFINITY),
            Err(QMaxError::BadGamma(f64::INFINITY))
        );
        assert!(matches!(
            check_q_gamma(1, f64::NAN),
            Err(QMaxError::BadGamma(_))
        ));
        assert_eq!(check_q_gamma(1, 0.25), Ok(()));
        assert_eq!(check_window(0, 0.5), Err(QMaxError::ZeroWindow));
        assert_eq!(check_window(10, 1.5), Err(QMaxError::BadTau(1.5)));
        assert_eq!(check_window(10, 1.0), Ok(()));
        assert!(matches!(check_tau(f64::NAN), Err(QMaxError::BadTau(_))));
    }
}
