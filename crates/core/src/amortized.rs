//! Amortized-constant-time q-MAX (Algorithm 1 with lazy compaction).

use crate::entry::Entry;
use crate::traits::{BatchInsert, IntervalBackend, QMax};
use qmax_select::kernels::{pivot_band, sample_positions, PIVOT_SEED, SAMPLED_COMPACT_MIN};
use qmax_select::{nth_smallest, partition3};

/// q-MAX with **amortized** `O(1)` update time and `⌈q(1+γ)⌉` space.
///
/// Arrivals whose value is at most the admission threshold Ψ are dropped
/// outright; the rest are appended to a buffer of `⌈q(1+γ)⌉` slots. When
/// the buffer fills, a linear-time selection finds the q-th largest
/// value, which becomes the new Ψ, and everything below it is discarded.
/// Each `O(q)` compaction pays for the `⌈qγ⌉` appends since the last
/// one, so updates cost `O(1 + 1/γ)` amortized.
///
/// This is the variant the paper benchmarks (its evaluation section);
/// see [`crate::DeamortizedQMax`] for the worst-case-constant variant.
///
/// ```
/// use qmax_core::{AmortizedQMax, QMax};
/// let mut qm = AmortizedQMax::new(2, 0.5);
/// for v in 0u64..100 {
///     qm.insert(v as u32, v);
/// }
/// let mut top: Vec<u64> = qm.query().into_iter().map(|(_, v)| v).collect();
/// top.sort();
/// assert_eq!(top, vec![98, 99]);
/// ```
#[derive(Debug, Clone)]
pub struct AmortizedQMax<I, V> {
    q: usize,
    cap: usize,
    buf: Vec<Entry<I, V>>,
    threshold: Option<V>,
    compactions: u64,
    filtered: u64,
    /// Reusable buffers for the sampled-pivot compaction: drawn
    /// positions, and `(value, index)` samples (the index recovers the
    /// pivot entry without a `Copy` bound on `V`).
    sample_pos: Vec<usize>,
    sample: Vec<(V, usize)>,
    /// Compactions whose sampled pivot landed outside the tolerance
    /// band ([`qmax_select::kernels::pivot_band`]); the result is exact
    /// either way, the counter tracks sample quality.
    pivot_fallbacks: u64,
}

impl<I: Clone, V: Ord + Clone> AmortizedQMax<I, V> {
    /// Creates a q-MAX for the `q` largest items with space-slack
    /// parameter `gamma` (the paper's γ): the structure allocates
    /// `⌈q(1+γ)⌉` slots (at least `q + 1`).
    ///
    /// # Panics
    ///
    /// Panics if `q == 0` or `gamma` is not a positive finite number.
    /// Use [`AmortizedQMax::try_new`] at fallible API boundaries.
    pub fn new(q: usize, gamma: f64) -> Self {
        Self::try_new(q, gamma).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`AmortizedQMax::new`]: rejects `q == 0` and
    /// non-positive / non-finite `gamma` instead of panicking.
    pub fn try_new(q: usize, gamma: f64) -> Result<Self, crate::QMaxError> {
        crate::error::check_q_gamma(q, gamma)?;
        let cap = ((q as f64) * (1.0 + gamma)).ceil() as usize;
        let cap = cap.max(q + 1);
        Ok(AmortizedQMax {
            q,
            cap,
            buf: Vec::with_capacity(cap),
            threshold: None,
            compactions: 0,
            filtered: 0,
            sample_pos: Vec::new(),
            sample: Vec::new(),
            pivot_fallbacks: 0,
        })
    }

    /// Total buffer capacity `⌈q(1+γ)⌉`.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of compactions (threshold recomputations) performed.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Number of arrivals dropped by the admission filter.
    pub fn filtered(&self) -> u64 {
        self.filtered
    }

    /// Compactions whose sampled pivot landed outside the tolerance
    /// band and degraded to a large exact-select residue. Always zero
    /// for buffers below `SAMPLED_COMPACT_MIN` slots.
    pub fn pivot_fallbacks(&self) -> u64 {
        self.pivot_fallbacks
    }

    /// Iterates over the current candidate set (a superset of the top
    /// `q`, in unspecified order).
    pub fn candidates(&self) -> impl Iterator<Item = (&I, &V)> {
        self.buf.iter().map(|e| (&e.id, &e.val))
    }

    /// Merges another instance's candidates into this one — the MERGE
    /// procedure of the paper's Algorithm 3: after merging, this
    /// instance's top `q` equal the top `q` of the union of both input
    /// streams (assuming the inputs are disjoint streams).
    pub fn merge_from(&mut self, other: &Self) {
        for (id, val) in other.candidates() {
            self.insert(id.clone(), val.clone());
        }
    }

    /// Compacts the buffer: finds the q-th largest value, makes it the
    /// new threshold, and discards all candidates below it. Large
    /// buffers seed the selection with a sampled pivot; the resulting Ψ
    /// and survivor multiset are identical either way.
    fn compact(&mut self) {
        debug_assert!(self.buf.len() > self.q);
        let cut = self.buf.len() - self.q;
        if self.buf.len() >= SAMPLED_COMPACT_MIN {
            self.arrange_cut_sampled(cut);
        } else {
            nth_smallest(&mut self.buf, cut);
        }
        // buf[cut..] now holds the q largest; buf[cut] is the q-th
        // largest overall and becomes the new admission threshold.
        let psi = self.buf[cut].val.clone();
        self.buf.drain(..cut);
        self.threshold = Some(match self.threshold.take() {
            Some(old) if old > psi => old,
            _ => psi,
        });
        self.compactions += 1;
    }

    /// Establishes the [`nth_smallest`] postcondition at rank `cut` by
    /// first partitioning around a pivot estimated from a deterministic
    /// `O(√n)` sample (seeded by the compaction counter, so replays are
    /// exact), then exact-selecting only within the region the true cut
    /// landed in.
    fn arrange_cut_sampled(&mut self, cut: usize) {
        let n = self.buf.len();
        sample_positions(n, PIVOT_SEED ^ self.compactions, &mut self.sample_pos);
        let m = self.sample_pos.len();
        self.sample.clear();
        for &p in &self.sample_pos {
            self.sample.push((self.buf[p].val.clone(), p));
        }
        let srank = ((cut as u128 * m as u128) / (n as u128)) as usize;
        let srank = srank.min(m - 1);
        nth_smallest(&mut self.sample, srank);
        let pivot = self.buf[self.sample[srank].1].clone();
        let (lt, gt) = partition3(&mut self.buf, 0, n, &pivot);
        let band = pivot_band(n);
        if cut < lt {
            // Pivot landed high: the cut is inside the `<` region.
            if lt - cut > band {
                self.pivot_fallbacks += 1;
            }
            nth_smallest(&mut self.buf[..lt], cut);
        } else if cut >= gt {
            // Pivot landed low: the cut is inside the `>` region.
            if cut - gt > band {
                self.pivot_fallbacks += 1;
            }
            nth_smallest(&mut self.buf[gt..], cut - gt);
        }
        // Otherwise the cut fell in the `==` run and the postcondition
        // already holds: buf[..cut] <= buf[cut] == pivot <= buf[cut..].
    }
}

impl<I: Clone, V: Ord + Clone> QMax<I, V> for AmortizedQMax<I, V> {
    #[inline]
    fn insert(&mut self, id: I, val: V) -> bool {
        if let Some(t) = &self.threshold {
            if val <= *t {
                self.filtered += 1;
                return false;
            }
        }
        self.buf.push(Entry::new(id, val));
        if self.buf.len() == self.cap {
            self.compact();
        }
        true
    }

    fn query(&mut self) -> Vec<(I, V)> {
        if self.buf.len() > self.q {
            self.compact();
        }
        self.buf
            .iter()
            .map(|e| (e.id.clone(), e.val.clone()))
            .collect()
    }

    fn reset(&mut self) {
        self.buf.clear();
        self.threshold = None;
    }

    fn q(&self) -> usize {
        self.q
    }

    #[inline]
    fn len(&self) -> usize {
        self.buf.len()
    }

    #[inline]
    fn threshold(&self) -> Option<V> {
        self.threshold.clone()
    }

    fn name(&self) -> &'static str {
        "qmax-amortized"
    }
}

impl<I: Clone, V: Ord + Clone> BatchInsert<I, V> for AmortizedQMax<I, V> {
    /// Chunked hoisted-Ψ admit loop — the array-of-structs small-block
    /// fast path (no kernel handle anywhere). Ψ can only change at a
    /// compaction, and compactions coincide with chunk boundaries
    /// (chunks are sized to the remaining buffer room), so reading Ψ
    /// once per chunk is exact, not an approximation: admissions,
    /// filtered counts, and Ψ trajectory are identical to the
    /// singleton loop.
    fn insert_batch(&mut self, items: &[(I, V)]) -> usize {
        let mut admitted = 0usize;
        let mut i = 0;
        while i < items.len() {
            let take = (self.cap - self.buf.len()).min(items.len() - i);
            let before = self.buf.len();
            match &self.threshold {
                Some(t) => {
                    for (id, val) in &items[i..i + take] {
                        if *val > *t {
                            self.buf.push(Entry::new(id.clone(), val.clone()));
                        } else {
                            self.filtered += 1;
                        }
                    }
                }
                None => {
                    self.buf.extend(
                        items[i..i + take]
                            .iter()
                            .map(|(id, val)| Entry::new(id.clone(), val.clone())),
                    );
                }
            }
            admitted += self.buf.len() - before;
            i += take;
            if self.buf.len() == self.cap {
                self.compact();
            }
        }
        admitted
    }
}

impl<I: Clone, V: Ord + Clone> crate::checkpoint::Checkpoint<I, V> for AmortizedQMax<I, V> {
    /// A straight copy of the candidate buffer plus Ψ and counters —
    /// the cheap-memcpy checkpoint the amortized layout was chosen for.
    fn snapshot(&self) -> crate::checkpoint::BackendSnapshot<I, V> {
        crate::checkpoint::BackendSnapshot {
            entries: self.buf.clone(),
            threshold: self.threshold.clone(),
            compactions: self.compactions,
            filtered: self.filtered,
            pivot_fallbacks: self.pivot_fallbacks,
        }
    }

    /// Overwrites buffer, Ψ, and counters with the snapshot's. A
    /// snapshot is always taken between inserts, so its candidate count
    /// is below `cap` and no compaction is needed on the way in.
    fn restore(&mut self, snap: &crate::checkpoint::BackendSnapshot<I, V>) {
        self.buf.clear();
        self.buf.extend(snap.entries.iter().cloned());
        self.threshold = snap.threshold.clone();
        self.compactions = snap.compactions;
        self.filtered = snap.filtered;
        self.pivot_fallbacks = snap.pivot_fallbacks;
        if self.buf.len() >= self.cap {
            self.compact();
        }
    }
}

impl<I: Clone, V: Ord + Clone> IntervalBackend<I, V> for AmortizedQMax<I, V> {
    fn fresh(&self) -> Self {
        AmortizedQMax {
            q: self.q,
            cap: self.cap,
            buf: Vec::with_capacity(self.cap),
            threshold: None,
            compactions: 0,
            filtered: 0,
            sample_pos: Vec::new(),
            sample: Vec::new(),
            pivot_fallbacks: 0,
        }
    }

    fn capacity(&self) -> usize {
        self.cap
    }

    fn candidates_into(&self, out: &mut Vec<Entry<I, V>>) {
        out.extend(self.buf.iter().cloned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn top_q_reference(vals: &[u64], q: usize) -> Vec<u64> {
        let mut s = vals.to_vec();
        s.sort_unstable_by(|a, b| b.cmp(a));
        s.truncate(q);
        s.sort_unstable();
        s
    }

    #[test]
    fn matches_reference_on_random_stream() {
        let mut state = 1u64;
        for q in [1usize, 2, 10, 100] {
            for gamma in [0.05, 0.25, 1.0, 2.0] {
                let vals: Vec<u64> = (0..5000).map(|_| splitmix(&mut state) % 10_000).collect();
                let mut qm = AmortizedQMax::new(q, gamma);
                for (i, &v) in vals.iter().enumerate() {
                    qm.insert(i as u32, v);
                }
                let mut got: Vec<u64> = qm.query().into_iter().map(|(_, v)| v).collect();
                got.sort_unstable();
                assert_eq!(got, top_q_reference(&vals, q), "q={q} gamma={gamma}");
            }
        }
    }

    #[test]
    fn short_stream_returns_everything() {
        let mut qm = AmortizedQMax::new(10, 0.5);
        qm.insert(1u32, 5u64);
        qm.insert(2, 3);
        let mut got: Vec<u64> = qm.query().into_iter().map(|(_, v)| v).collect();
        got.sort_unstable();
        assert_eq!(got, vec![3, 5]);
        assert_eq!(qm.len(), 2);
    }

    #[test]
    fn threshold_filters_small_items() {
        let mut qm = AmortizedQMax::new(4, 0.5);
        for v in 0u64..1000 {
            qm.insert(v as u32, v);
        }
        assert!(qm.threshold().is_some());
        let t = qm.threshold().unwrap();
        assert!(t >= 4, "threshold should have risen well above the start");
        assert!(!qm.insert(9999, 0), "tiny value must be filtered");
        assert!(qm.insert(10000, 1_000_000), "huge value must be admitted");
        assert!(qm.filtered() > 0);
    }

    #[test]
    fn threshold_is_monotone() {
        let mut state = 7u64;
        let mut qm = AmortizedQMax::new(8, 0.25);
        let mut last: Option<u64> = None;
        for i in 0..20_000u64 {
            qm.insert(i as u32, splitmix(&mut state) % 1_000_000);
            if let Some(t) = qm.threshold() {
                if let Some(l) = last {
                    assert!(t >= l, "threshold decreased: {l} -> {t}");
                }
                last = Some(t);
            }
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut qm = AmortizedQMax::new(2, 1.0);
        for v in 0u64..100 {
            qm.insert(v as u32, v);
        }
        qm.reset();
        assert!(qm.is_empty());
        assert_eq!(qm.threshold(), None);
        qm.insert(0u32, 1u64);
        assert_eq!(qm.query().len(), 1);
    }

    #[test]
    fn duplicate_values_are_kept_up_to_q() {
        let mut qm = AmortizedQMax::new(3, 0.5);
        for i in 0..50u32 {
            qm.insert(i, 7u64);
        }
        let got = qm.query();
        assert_eq!(got.len(), 3);
        assert!(got.iter().all(|(_, v)| *v == 7));
    }

    #[test]
    fn descending_stream_filters_aggressively() {
        let mut qm = AmortizedQMax::new(5, 0.2);
        let mut admitted = 0u64;
        for v in (0u64..100_000).rev() {
            if qm.insert(v as u32, v) {
                admitted += 1;
            }
        }
        // After the first compaction, nothing else can be admitted.
        assert!(admitted <= qm.capacity() as u64 + 1);
        let mut got: Vec<u64> = qm.query().into_iter().map(|(_, v)| v).collect();
        got.sort_unstable();
        assert_eq!(got, vec![99_995, 99_996, 99_997, 99_998, 99_999]);
    }

    #[test]
    fn merge_equals_union_top_q() {
        let mut state = 19u64;
        let mut next = move || splitmix(&mut state) % 1_000_000;
        let q = 32;
        let left: Vec<u64> = (0..4000).map(|_| next()).collect();
        let right: Vec<u64> = (0..4000).map(|_| next()).collect();
        let mut a = AmortizedQMax::new(q, 0.5);
        let mut b = AmortizedQMax::new(q, 0.5);
        for (i, &v) in left.iter().enumerate() {
            a.insert(i as u32, v);
        }
        for (i, &v) in right.iter().enumerate() {
            b.insert((4000 + i) as u32, v);
        }
        a.merge_from(&b);
        let mut got: Vec<u64> = a.query().into_iter().map(|(_, v)| v).collect();
        got.sort_unstable();
        let mut union: Vec<u64> = left.iter().chain(&right).copied().collect();
        union.sort_unstable_by(|x, y| y.cmp(x));
        union.truncate(q);
        union.sort_unstable();
        assert_eq!(got, union);
    }

    #[test]
    fn sampled_compaction_matches_reference() {
        // Buffers at and above SAMPLED_COMPACT_MIN take the sampled
        // pivot; the compaction result (Ψ and survivors) is exact.
        let mut state = 41u64;
        let q = 1600usize;
        let vals: Vec<u64> = (0..40_000).map(|_| splitmix(&mut state)).collect();
        let mut qm = AmortizedQMax::new(q, 1.0);
        for (i, &v) in vals.iter().enumerate() {
            qm.insert(i as u32, v);
        }
        assert!(qm.compactions() > 0);
        let mut got: Vec<u64> = qm.query().into_iter().map(|(_, v)| v).collect();
        got.sort_unstable();
        assert_eq!(got, top_q_reference(&vals, q));
    }

    #[test]
    fn adversarial_sample_forces_fallback_but_stays_exact() {
        // Every sampled position of the first compaction holds the
        // minimum, so the pivot lands far below the true cut and the
        // exact-select residue exceeds the tolerance band.
        let q = 64usize;
        let mut qm = AmortizedQMax::<u32, u64>::new(q, 31.0);
        let cap = qm.capacity();
        assert_eq!(cap, 2048);
        let mut pos = Vec::new();
        qmax_select::kernels::sample_positions(cap, qmax_select::kernels::PIVOT_SEED, &mut pos);
        let vals: Vec<u64> = (0..cap)
            .map(|i| if pos.contains(&i) { 1 } else { 1000 + i as u64 })
            .collect();
        for (i, &v) in vals.iter().enumerate() {
            qm.insert(i as u32, v);
        }
        assert_eq!(qm.compactions(), 1);
        assert_eq!(qm.pivot_fallbacks(), 1, "bad pivot must be counted");
        let mut got: Vec<u64> = qm.query().into_iter().map(|(_, v)| v).collect();
        got.sort_unstable();
        assert_eq!(got, top_q_reference(&vals, q));
    }

    #[test]
    #[should_panic(expected = "q must be positive")]
    fn zero_q_panics() {
        let _ = AmortizedQMax::<u32, u64>::new(0, 0.5);
    }

    #[test]
    #[should_panic(expected = "gamma must be positive")]
    fn bad_gamma_panics() {
        let _ = AmortizedQMax::<u32, u64>::new(5, 0.0);
    }
}
