//! Duplicate-merging q-MAX for streams that *re-insert* keys with
//! growing values.
//!
//! Applications such as Priority-Based Aggregation and UnivMon's
//! heavy-hitter tracking re-offer the same key with an ever-increasing
//! value. A plain q-MAX would fill with stale snapshots of the hottest
//! keys and push its admission threshold far above the q-th largest
//! *distinct* key. Following the paper's LRFU construction (Section
//! 5.1), this variant merges duplicates — keeping each key's largest
//! value — as part of every compaction, preserving the `O(1)` amortized
//! update cost: after merging, at most `q` distinct candidates remain,
//! so at least `⌈qγ⌉` arrivals separate consecutive compactions.

use crate::entry::Entry;
use crate::flow_table::{FlowIndex, IndexFamily, KeyIndex};
use crate::traits::{BatchInsert, QMax};
use qmax_select::nth_smallest;
use std::hash::Hash;

/// Amortized q-MAX over `(key, value)` streams where keys repeat and
/// only each key's **largest** value matters.
///
/// ```
/// use qmax_core::{DedupQMax, QMax};
/// let mut top = DedupQMax::new(2, 0.5);
/// for round in 1..=100u64 {
///     top.insert("hot", round * 10); // growing value, same key
///     top.insert("warm", round);
///     top.insert("cold", 1);
/// }
/// let mut ids: Vec<&str> = top.query().into_iter().map(|(id, _)| id).collect();
/// ids.sort();
/// assert_eq!(ids, vec!["hot", "warm"]);
/// ```
/// The duplicate-merge index defaults to the SIMD-probed
/// [`crate::FlowTable`] ([`FlowIndex`]); [`crate::StdIndex`] restores
/// the `std::collections::HashMap` merge, kept as the differential
/// oracle.
#[derive(Debug, Clone)]
pub struct DedupQMax<I: Clone + Hash + Eq, V: Clone, F: IndexFamily = FlowIndex> {
    q: usize,
    cap: usize,
    buf: Vec<Entry<I, V>>,
    /// Persistent merge scratch for [`Self::compact`] (always empty
    /// between compactions, so merging allocates nothing steady-state).
    best: F::Index<I, V>,
    /// Persistent key scratch for the batched merge probes.
    key_scratch: Vec<I>,
    threshold: Option<V>,
    compactions: u64,
    filtered: u64,
}

impl<I: Clone + Hash + Eq, V: Ord + Clone> DedupQMax<I, V, FlowIndex> {
    /// Creates a duplicate-merging q-MAX for the `q` largest distinct
    /// keys with space-slack parameter `gamma`.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0` or `gamma` is not a positive finite number.
    pub fn new(q: usize, gamma: f64) -> Self {
        Self::new_in(q, gamma)
    }
}

impl<I: Clone + Hash + Eq, V: Ord + Clone, F: IndexFamily> DedupQMax<I, V, F> {
    /// Like [`DedupQMax::new`], but with an explicit [`IndexFamily`]
    /// (e.g. `StdIndex` for the HashMap-era merge baseline).
    pub fn new_in(q: usize, gamma: f64) -> Self {
        assert!(q > 0, "q must be positive");
        assert!(
            gamma > 0.0 && gamma.is_finite(),
            "gamma must be positive and finite"
        );
        let cap = (((q as f64) * (1.0 + gamma)).ceil() as usize).max(q + 1);
        DedupQMax {
            q,
            cap,
            buf: Vec::with_capacity(cap),
            best: F::Index::with_capacity(cap),
            key_scratch: Vec::new(),
            threshold: None,
            compactions: 0,
            filtered: 0,
        }
    }

    /// Total buffer capacity `⌈q(1+γ)⌉`.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of compactions performed.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Merges duplicate keys (keeping each key's largest value), then —
    /// if more than `q` distinct candidates remain — discards everything
    /// below the q-th largest and raises the threshold.
    fn compact(&mut self) {
        debug_assert!(self.best.is_empty());
        // Batched merge: one `entry_batch` upsert pipeline over the
        // whole buffer overlaps the per-entry index probes. Visit order
        // is buffer order and ties keep the resident value, exactly as
        // the singleton get/insert loop did.
        let mut keys = std::mem::take(&mut self.key_scratch);
        keys.clear();
        keys.extend(self.buf.iter().map(|e| e.id.clone()));
        let buf_ref = &self.buf;
        self.best.entry_batch(
            &keys,
            |i| buf_ref[i].val.clone(),
            |i, v, present| {
                if present && buf_ref[i].val > *v {
                    *v = buf_ref[i].val.clone();
                }
            },
        );
        keys.clear();
        self.key_scratch = keys;
        self.buf.clear();
        let buf = &mut self.buf;
        self.best
            .drain_each(|id, val| buf.push(Entry::new(id, val)));
        if self.buf.len() > self.q {
            let cut = self.buf.len() - self.q;
            nth_smallest(&mut self.buf, cut);
            let psi = self.buf[cut].val.clone();
            self.buf.drain(..cut);
            self.threshold = Some(match self.threshold.take() {
                Some(old) if old > psi => old,
                _ => psi,
            });
        }
        self.compactions += 1;
    }
}

impl<I: Clone + Hash + Eq, V: Ord + Clone, F: IndexFamily> QMax<I, V> for DedupQMax<I, V, F> {
    fn insert(&mut self, id: I, val: V) -> bool {
        if let Some(t) = &self.threshold {
            if val <= *t {
                self.filtered += 1;
                return false;
            }
        }
        self.buf.push(Entry::new(id, val));
        if self.buf.len() == self.cap {
            self.compact();
        }
        true
    }

    fn query(&mut self) -> Vec<(I, V)> {
        self.compact();
        self.buf
            .iter()
            .map(|e| (e.id.clone(), e.val.clone()))
            .collect()
    }

    fn reset(&mut self) {
        self.buf.clear();
        self.threshold = None;
    }

    fn q(&self) -> usize {
        self.q
    }

    fn len(&self) -> usize {
        self.buf.len()
    }

    fn threshold(&self) -> Option<V> {
        self.threshold.clone()
    }

    fn name(&self) -> &'static str {
        "qmax-dedup"
    }
}

impl<I: Clone + Hash + Eq, V: Ord + Clone, F: IndexFamily> BatchInsert<I, V>
    for DedupQMax<I, V, F>
{
    /// Offers a span of arrivals in order. Per-item behaviour —
    /// threshold filtering, buffer pressure, compaction points — is
    /// identical to singleton [`QMax::insert`] calls; the batched win
    /// comes from every triggered compaction merging through the
    /// pipelined [`KeyIndex::entry_batch`].
    fn insert_batch(&mut self, items: &[(I, V)]) -> usize {
        let mut admitted = 0;
        for (id, val) in items {
            admitted += usize::from(self.insert(id.clone(), val.clone()));
        }
        admitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn keeps_largest_value_per_key() {
        let mut d = DedupQMax::new(3, 0.5);
        for v in 1..=50u64 {
            d.insert(7u32, v);
        }
        d.insert(8u32, 10);
        d.insert(9u32, 20);
        let mut got = d.query();
        got.sort_by_key(|&(id, _)| id);
        assert_eq!(got, vec![(7, 50), (8, 10), (9, 20)]);
    }

    #[test]
    fn threshold_tracks_distinct_keys_not_snapshots() {
        // One key re-inserted with huge growing values; the threshold
        // must stay low enough to admit moderate distinct keys.
        let mut d = DedupQMax::new(10, 0.5);
        for round in 1..=10_000u64 {
            d.insert(0u32, round * 1000);
        }
        for k in 1..=9u32 {
            assert!(d.insert(k, 5 * k as u64), "moderate key {k} filtered out");
        }
        let got = d.query();
        assert_eq!(got.len(), 10);
        let keys: std::collections::HashSet<u32> = got.iter().map(|&(k, _)| k).collect();
        assert_eq!(keys.len(), 10, "duplicates survived: {got:?}");
    }

    #[test]
    fn top_q_distinct_matches_reference() {
        let mut state = 3u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        let q = 16;
        let mut d = DedupQMax::new(q, 0.25);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for _ in 0..30_000 {
            let key = next() % 500;
            let grow = next() % 100 + 1;
            let val = truth.entry(key).or_insert(0);
            *val += grow;
            d.insert(key, *val);
        }
        let mut expect: Vec<(u64, u64)> = truth.into_iter().collect();
        expect.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        expect.truncate(q);
        let expect_keys: std::collections::HashSet<u64> = expect.iter().map(|&(k, _)| k).collect();
        let got_keys: std::collections::HashSet<u64> =
            d.query().into_iter().map(|(k, _)| k).collect();
        assert_eq!(got_keys, expect_keys);
    }

    #[test]
    fn compaction_cost_stays_amortized() {
        // All arrivals are the same key: compactions must not become
        // more frequent than once per gamma*q arrivals.
        let q = 100;
        let mut d = DedupQMax::new(q, 0.5);
        for v in 1..=100_000u64 {
            d.insert(0u32, v);
        }
        // capacity = 150; after each compaction the buffer holds <= q
        // distinct entries (here: 1), so compactions are at most one
        // per (cap - 1) arrivals.
        assert!(
            d.compactions() <= 100_000 / (d.capacity() as u64 - q as u64) + 2,
            "{} compactions",
            d.compactions()
        );
    }

    #[test]
    fn interleaved_queries_do_not_lose_keys() {
        // Querying (which compacts) between inserts must never drop a
        // key whose value still belongs to the top q.
        let mut d = DedupQMax::new(4, 0.5);
        for round in 1..=200u64 {
            for k in 0..4u32 {
                d.insert(k, round * 10 + k as u64);
            }
            if round % 7 == 0 {
                let keys: std::collections::HashSet<u32> =
                    d.query().into_iter().map(|(k, _)| k).collect();
                assert_eq!(keys.len(), 4, "lost a live key at round {round}");
            }
        }
    }

    #[test]
    fn insert_batch_matches_singletons() {
        let mut state = 11u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        let items: Vec<(u64, u64)> = (0..40_000)
            .map(|_| (next() % 700, next() % 10_000))
            .collect();
        let mut one = DedupQMax::new(64, 0.5);
        let mut batched = DedupQMax::new(64, 0.5);
        let mut admitted_one = 0usize;
        for (id, val) in &items {
            admitted_one += usize::from(one.insert(*id, *val));
        }
        let mut admitted_batch = 0usize;
        for span in items.chunks(333) {
            admitted_batch += batched.insert_batch(span);
        }
        assert_eq!(admitted_one, admitted_batch);
        assert_eq!(one.compactions(), batched.compactions());
        let mut a = one.query();
        let mut b = batched.query();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn short_stream_returns_distinct() {
        let mut d = DedupQMax::new(10, 1.0);
        d.insert(1u32, 5u64);
        d.insert(1u32, 7);
        d.insert(2u32, 3);
        let mut got = d.query();
        got.sort_by_key(|&(id, _)| id);
        assert_eq!(got, vec![(1, 7), (2, 3)]);
    }
}
