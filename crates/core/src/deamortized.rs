//! Worst-case constant-time q-MAX (Algorithm 1 with de-amortized
//! compaction).

use crate::entry::Entry;
use crate::traits::{BatchInsert, IntervalBackend, QMax};
use qmax_select::{nth_smallest, Direction, NthElementMachine, WORK_BOUND_FACTOR};

/// Counters describing the de-amortized execution; used by the ablation
/// benchmarks and by tests asserting the worst-case bound.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeamortizedStats {
    /// Arrivals admitted into the buffer.
    pub admitted: u64,
    /// Arrivals dropped by the admission filter.
    pub filtered: u64,
    /// Completed compaction iterations.
    pub iterations: u64,
    /// Iterations whose selection machine had to be force-completed at
    /// the last step (work-bound estimate exceeded; should stay 0).
    pub forced_completions: u64,
    /// Largest number of selection-machine operations charged to a
    /// single arrival.
    pub max_step_ops: u64,
    /// Total selection-machine operations across all iterations.
    pub total_ops: u64,
}

/// The two alternating buffer geometries of an iteration.
///
/// The buffer has `n = q + 2g` slots with `g = ⌈qγ/2⌉`. In each
/// iteration, one `g`-sized end zone (`S2`) receives arrivals while a
/// selection runs over the other `q + g` slots (`S1`), moving the `q`
/// largest of `S1` into the middle `q` slots and the remaining `g` into
/// the far end zone — which becomes the next iteration's `S2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Parity {
    /// `S2 = [q+g, n)` (right end); `S1 = [0, q+g)`, selected in
    /// ascending order so its smallest `g` items land in `[0, g)`.
    InsertRight,
    /// `S2 = [0, g)` (left end); `S1 = [g, n)`, selected in descending
    /// order so its smallest `g` items land in `[q+g, n)`.
    InsertLeft,
}

/// q-MAX with **worst-case** `O(γ⁻¹)` update time and `q + 2⌈qγ/2⌉`
/// space (Algorithm 1 of the paper).
///
/// The buffer is split into a `g = ⌈qγ/2⌉`-slot insertion zone and a
/// `(q+g)`-slot selection zone. Each admitted arrival is written into
/// the insertion zone and advances a suspendable median-of-medians
/// selection ([`qmax_select::NthElementMachine`]) over the selection
/// zone by a fixed operation budget of
/// `⌈WORK_BOUND_FACTOR · (q+g) / g⌉ = O(γ⁻¹)` elementary operations.
/// After exactly `g` admitted arrivals the selection has finished: the
/// `q` largest candidates sit in the middle of the buffer, the admission
/// threshold Ψ rises to the q-th largest among them, and the `g`
/// discarded slots become the next insertion zone.
///
/// Compared with [`crate::AmortizedQMax`] this bounds the cost of
/// *every* update instead of the average, at the price of a slightly
/// higher constant — the paper's Figures 4–6 benchmark exactly this
/// trade-off.
///
/// ```
/// use qmax_core::{DeamortizedQMax, QMax};
/// let mut qm = DeamortizedQMax::new(4, 0.5);
/// for v in 0u64..1000 {
///     qm.insert(v as u32, v);
/// }
/// let mut top: Vec<u64> = qm.query().into_iter().map(|(_, v)| v).collect();
/// top.sort();
/// assert_eq!(top, vec![996, 997, 998, 999]);
/// ```
#[derive(Debug)]
pub struct DeamortizedQMax<I, V> {
    q: usize,
    /// Insertion-zone size `⌈qγ/2⌉` (≥ 1).
    g: usize,
    /// Total buffer size `q + 2g`.
    n: usize,
    buf: Vec<Entry<I, V>>,
    /// Admission threshold Ψ.
    threshold: Option<V>,
    /// Whether the buffer is still filling for the very first time.
    filling: bool,
    /// Start of the current insertion zone (valid once not `filling`,
    /// or `q+g` during the first iteration which fills the right zone).
    s2_start: usize,
    /// Admitted arrivals in the current iteration, `0..g`.
    steps: usize,
    parity: Parity,
    machine: Option<NthElementMachine<Entry<I, V>>>,
    /// Index that holds the new Ψ when the current iteration completes.
    boundary: usize,
    /// Per-arrival operation budget for the selection machine.
    budget: usize,
    stats: DeamortizedStats,
}

impl<I: Clone, V: Ord + Clone> DeamortizedQMax<I, V> {
    /// Creates a de-amortized q-MAX for the `q` largest items with
    /// space-slack parameter `gamma` (γ): total space is `q + 2⌈qγ/2⌉`
    /// slots, i.e. at most `q(1+γ) + 2`.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0` or `gamma` is not a positive finite number.
    /// Use [`DeamortizedQMax::try_new`] at fallible API boundaries.
    pub fn new(q: usize, gamma: f64) -> Self {
        Self::try_new(q, gamma).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`DeamortizedQMax::new`]: rejects `q == 0` and
    /// non-positive / non-finite `gamma` instead of panicking.
    pub fn try_new(q: usize, gamma: f64) -> Result<Self, crate::QMaxError> {
        crate::error::check_q_gamma(q, gamma)?;
        let g = ((q as f64) * gamma / 2.0).ceil() as usize;
        let g = g.max(1);
        let n = q + 2 * g;
        // Total selection work is at most WORK_BOUND_FACTOR * |S1| + a
        // constant; spreading it over the g arrivals of an iteration
        // gives the per-arrival budget (the paper's O(γ⁻¹) operations).
        let budget = (WORK_BOUND_FACTOR * (q + g)).div_ceil(g) + WORK_BOUND_FACTOR;
        Ok(DeamortizedQMax {
            q,
            g,
            n,
            buf: Vec::with_capacity(n),
            threshold: None,
            filling: true,
            s2_start: q + g,
            steps: 0,
            parity: Parity::InsertRight,
            machine: None,
            boundary: 0,
            budget,
            stats: DeamortizedStats::default(),
        })
    }

    /// Total buffer capacity `q + 2⌈qγ/2⌉`.
    pub fn capacity(&self) -> usize {
        self.n
    }

    /// The per-arrival selection-machine operation budget (`O(γ⁻¹)`).
    pub fn step_budget(&self) -> usize {
        self.budget
    }

    /// Execution counters.
    pub fn stats(&self) -> DeamortizedStats {
        self.stats
    }

    /// Starts the selection for the current parity. The buffer is full
    /// except during the very first iteration, which runs while arrivals
    /// are still filling the right insertion zone.
    fn begin_iteration(&mut self) {
        debug_assert!(
            self.buf.len() == self.n || (self.filling && self.buf.len() == self.q + self.g)
        );
        let (lo, hi, k, dir, boundary) = match self.parity {
            // S1 = [0, q+g): ascending selection puts the g smallest at
            // [0, g); index g then holds the q-th largest of S1.
            Parity::InsertRight => (0, self.q + self.g, self.g, Direction::Ascending, self.g),
            // S1 = [g, n): descending selection puts the q largest at
            // [g, g+q); index g+q-1 holds the q-th largest of S1.
            Parity::InsertLeft => (
                self.g,
                self.n,
                self.q - 1,
                Direction::Descending,
                self.g + self.q - 1,
            ),
        };
        self.machine = Some(NthElementMachine::new(lo, hi, k, dir));
        self.boundary = boundary;
    }

    /// Completes the current iteration: finishes the selection if it has
    /// not already converged, raises Ψ, and flips the geometry.
    fn finish_iteration(&mut self) {
        let mut machine = self.machine.take().expect("iteration must have a machine");
        if !machine.is_finished() {
            machine.run_to_completion(&mut self.buf);
            self.stats.forced_completions += 1;
        }
        self.stats.total_ops += machine.total_ops();
        self.stats.max_step_ops = self.stats.max_step_ops.max(machine.max_step_ops());
        self.stats.iterations += 1;
        let psi = self.buf[self.boundary].val.clone();
        self.threshold = Some(match self.threshold.take() {
            Some(old) if old > psi => old,
            _ => psi,
        });
        // The zone the selection pushed the g non-top items into becomes
        // the next insertion zone.
        self.parity = match self.parity {
            Parity::InsertRight => {
                self.s2_start = 0;
                Parity::InsertLeft
            }
            Parity::InsertLeft => {
                self.s2_start = self.q + self.g;
                Parity::InsertRight
            }
        };
        self.steps = 0;
        self.begin_iteration();
    }
}

impl<I: Clone, V: Ord + Clone> QMax<I, V> for DeamortizedQMax<I, V> {
    #[inline]
    fn insert(&mut self, id: I, val: V) -> bool {
        if let Some(t) = &self.threshold {
            if val <= *t {
                self.stats.filtered += 1;
                return false;
            }
        }
        self.stats.admitted += 1;
        if self.filling {
            self.buf.push(Entry::new(id, val));
            let len = self.buf.len();
            if len == self.q + self.g {
                // Selection zone full: start the first iteration while
                // arrivals keep filling the right zone.
                self.parity = Parity::InsertRight;
                self.begin_iteration();
            } else if len > self.q + self.g {
                self.steps += 1;
                let machine = self
                    .machine
                    .as_mut()
                    .expect("machine started when zone filled");
                machine.step(&mut self.buf, self.budget);
                if len == self.n {
                    debug_assert_eq!(self.steps, self.g);
                    self.filling = false;
                    self.finish_iteration();
                }
            }
            return true;
        }
        self.buf[self.s2_start + self.steps] = Entry::new(id, val);
        self.steps += 1;
        let machine = self
            .machine
            .as_mut()
            .expect("steady state always has a machine");
        machine.step(&mut self.buf, self.budget);
        if self.steps == self.g {
            self.finish_iteration();
        }
        true
    }

    fn query(&mut self) -> Vec<(I, V)> {
        // Valid candidates: everything except the not-yet-overwritten
        // tail of the insertion zone (those slots hold items already
        // discarded by a previous iteration).
        let stale = if self.filling {
            0..0
        } else {
            self.s2_start + self.steps..self.s2_start + self.g
        };
        let mut scratch: Vec<Entry<I, V>> = self
            .buf
            .iter()
            .enumerate()
            .filter(|(i, _)| !stale.contains(i))
            .map(|(_, e)| e.clone())
            .collect();
        if scratch.len() > self.q {
            let cut = scratch.len() - self.q;
            nth_smallest(&mut scratch, cut);
            scratch.drain(..cut);
        }
        scratch.into_iter().map(|e| (e.id, e.val)).collect()
    }

    fn reset(&mut self) {
        self.buf.clear();
        self.threshold = None;
        self.filling = true;
        self.s2_start = self.q + self.g;
        self.steps = 0;
        self.parity = Parity::InsertRight;
        self.machine = None;
        self.stats = DeamortizedStats::default();
    }

    fn q(&self) -> usize {
        self.q
    }

    #[inline]
    fn len(&self) -> usize {
        if self.filling {
            self.buf.len()
        } else {
            self.n - (self.g - self.steps)
        }
    }

    #[inline]
    fn threshold(&self) -> Option<V> {
        self.threshold.clone()
    }

    fn name(&self) -> &'static str {
        "qmax-deamortized"
    }
}

impl<I: Clone, V: Ord + Clone> BatchInsert<I, V> for DeamortizedQMax<I, V> {
    fn insert_batch(&mut self, items: &[(I, V)]) -> usize {
        let mut admitted = 0;
        for (id, val) in items {
            admitted += usize::from(self.insert(id.clone(), val.clone()));
        }
        admitted
    }
}

impl<I: Clone, V: Ord + Clone> IntervalBackend<I, V> for DeamortizedQMax<I, V> {
    fn fresh(&self) -> Self {
        DeamortizedQMax {
            q: self.q,
            g: self.g,
            n: self.n,
            buf: Vec::with_capacity(self.n),
            threshold: None,
            filling: true,
            s2_start: self.q + self.g,
            steps: 0,
            parity: Parity::InsertRight,
            machine: None,
            boundary: 0,
            budget: self.budget,
            stats: DeamortizedStats::default(),
        }
    }

    fn capacity(&self) -> usize {
        self.n
    }

    fn candidates_into(&self, out: &mut Vec<Entry<I, V>>) {
        // Same validity rule as `query`: skip the not-yet-overwritten
        // tail of the insertion zone, whose slots hold items already
        // discarded by a previous iteration.
        let stale = if self.filling {
            0..0
        } else {
            self.s2_start + self.steps..self.s2_start + self.g
        };
        out.extend(
            self.buf
                .iter()
                .enumerate()
                .filter(|(i, _)| !stale.contains(i))
                .map(|(_, e)| e.clone()),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn top_q_reference(vals: &[u64], q: usize) -> Vec<u64> {
        let mut s = vals.to_vec();
        s.sort_unstable_by(|a, b| b.cmp(a));
        s.truncate(q);
        s.sort_unstable();
        s
    }

    fn check_stream(vals: &[u64], q: usize, gamma: f64) {
        let mut qm = DeamortizedQMax::new(q, gamma);
        for (i, &v) in vals.iter().enumerate() {
            qm.insert(i as u32, v);
        }
        let mut got: Vec<u64> = qm.query().into_iter().map(|(_, v)| v).collect();
        got.sort_unstable();
        assert_eq!(
            got,
            top_q_reference(vals, q),
            "q={q} gamma={gamma} n={}",
            vals.len()
        );
    }

    #[test]
    fn matches_reference_on_random_streams() {
        let mut state = 11u64;
        for q in [1usize, 2, 7, 64, 500] {
            for gamma in [0.05, 0.25, 1.0, 2.0] {
                let vals: Vec<u64> = (0..8000).map(|_| splitmix(&mut state) % 100_000).collect();
                check_stream(&vals, q, gamma);
            }
        }
    }

    #[test]
    fn matches_reference_on_adversarial_streams() {
        for q in [3usize, 50] {
            for gamma in [0.1, 1.0] {
                let n = 5000u64;
                check_stream(&(0..n).collect::<Vec<_>>(), q, gamma);
                check_stream(&(0..n).rev().collect::<Vec<_>>(), q, gamma);
                check_stream(&vec![42u64; n as usize], q, gamma);
                check_stream(&(0..n).map(|x| x % 17).collect::<Vec<_>>(), q, gamma);
            }
        }
    }

    #[test]
    fn query_is_correct_mid_iteration() {
        let mut state = 23u64;
        let vals: Vec<u64> = (0..3000).map(|_| splitmix(&mut state) % 10_000).collect();
        let q = 16;
        let mut qm = DeamortizedQMax::new(q, 0.5);
        for (i, &v) in vals.iter().enumerate() {
            qm.insert(i as u32, v);
            if i % 97 == 0 {
                let mut got: Vec<u64> = qm.query().into_iter().map(|(_, v)| v).collect();
                got.sort_unstable();
                assert_eq!(got, top_q_reference(&vals[..=i], q), "at i={i}");
            }
        }
    }

    #[test]
    fn no_forced_completions_on_long_streams() {
        let mut state = 5u64;
        for gamma in [0.05, 0.5] {
            let mut qm = DeamortizedQMax::new(100, gamma);
            for i in 0..200_000u64 {
                qm.insert(i as u32, splitmix(&mut state));
            }
            assert_eq!(
                qm.stats().forced_completions,
                0,
                "selection work bound was violated for gamma={gamma}"
            );
            assert!(qm.stats().iterations > 0);
        }
    }

    #[test]
    fn per_step_work_is_bounded() {
        let mut state = 5u64;
        let q = 1000usize;
        let gamma = 0.1;
        let mut qm = DeamortizedQMax::new(q, gamma);
        for i in 0..500_000u64 {
            qm.insert(i as u32, splitmix(&mut state));
        }
        // Worst-case per-arrival work must stay within the configured
        // budget plus one indivisible unit.
        let budget = qm.step_budget() as u64;
        assert!(
            qm.stats().max_step_ops <= budget + 32,
            "max step ops {} exceeds budget {budget}",
            qm.stats().max_step_ops
        );
    }

    #[test]
    fn threshold_monotone_and_filters() {
        let mut state = 77u64;
        let mut qm = DeamortizedQMax::new(10, 0.3);
        let mut last: Option<u64> = None;
        for i in 0..50_000u64 {
            qm.insert(i as u32, splitmix(&mut state) % 1_000_000);
            if let Some(t) = qm.threshold() {
                if let Some(l) = last {
                    assert!(t >= l);
                }
                last = Some(t);
            }
        }
        assert!(qm.stats().filtered > 0);
        let t = qm.threshold().unwrap();
        assert!(
            !qm.insert(0, t),
            "value equal to threshold must be rejected"
        );
    }

    #[test]
    fn expected_update_count_is_logarithmic() {
        // Theorem 2: for i.i.d. streams the number of admitted items is
        // O(q log(|S|/q)). Check we are within a small factor.
        let mut state = 31u64;
        let q = 100usize;
        let stream = 1_000_000usize;
        let mut qm = DeamortizedQMax::new(q, 0.5);
        for i in 0..stream {
            qm.insert(i as u32, splitmix(&mut state));
        }
        let bound = 4.0 * (q as f64) * ((stream as f64) / (q as f64)).ln();
        assert!(
            (qm.stats().admitted as f64) < bound + 4.0 * q as f64,
            "admitted {} exceeds Theorem-2 style bound {bound}",
            qm.stats().admitted
        );
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut qm = DeamortizedQMax::new(5, 0.5);
        for v in 0u64..1000 {
            qm.insert(v as u32, v);
        }
        qm.reset();
        assert!(qm.is_empty());
        assert_eq!(qm.threshold(), None);
        for v in 0u64..10 {
            qm.insert(v as u32, v);
        }
        let got = qm.query();
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn tiny_q_and_gamma() {
        check_stream(
            &(0..2000u64).map(|x| x * 7 % 1000).collect::<Vec<_>>(),
            1,
            0.01,
        );
    }

    #[test]
    fn stats_account_for_every_arrival() {
        let mut state = 41u64;
        let mut qm = DeamortizedQMax::new(64, 0.5);
        let n = 50_000u64;
        for i in 0..n {
            qm.insert(i as u32, splitmix(&mut state) % 10_000);
        }
        let st = qm.stats();
        assert_eq!(st.admitted + st.filtered, n, "arrival accounting leak");
        assert!(st.total_ops > 0);
        // Iterations consume exactly g admitted arrivals each (plus the
        // warm-up fill of q + g).
        let g = (qm.capacity() - qm.q()) / 2;
        let expected_iters = (st.admitted.saturating_sub(qm.q() as u64)) / g as u64;
        assert!(
            st.iterations <= expected_iters + 1 && st.iterations + 1 >= expected_iters.min(1),
            "iterations {} vs expected ~{expected_iters}",
            st.iterations
        );
    }

    #[test]
    fn capacity_and_budget_scale_with_gamma() {
        let tight: DeamortizedQMax<u32, u64> = DeamortizedQMax::new(1000, 0.05);
        let loose: DeamortizedQMax<u32, u64> = DeamortizedQMax::new(1000, 1.0);
        assert!(tight.capacity() < loose.capacity());
        assert!(
            tight.step_budget() > loose.step_budget(),
            "smaller gamma must mean more work per arrival"
        );
    }
}
