//! Snapshot/restore capability for q-MAX backends.
//!
//! A [`BackendSnapshot`] is a self-contained copy of a backend's
//! *logical* state: the candidate set (a superset of the top `q`), the
//! admission threshold Ψ, and the execution counters. For the amortized
//! layouts this is a cheap memcpy of the live candidate buffer — the
//! whole structure *is* its candidates plus Ψ, which is what makes
//! q-MAX checkpointing practical at per-batch cadence.
//!
//! [`Checkpoint::restore`] **fully overwrites** the backend's logical
//! state with the snapshot's, regardless of what the backend currently
//! holds. That contract is what the supervision layer in `qmax-engine`
//! relies on: after a worker panic the backend's buffers may hold
//! arbitrary (but structurally valid — the backends are panic-safe
//! under `#![forbid(unsafe_code)]`) state, and a restore from the last
//! checkpoint must yield exactly the checkpointed structure without
//! needing a factory rebuild.
//!
//! Restore preserves, for any backend `b` and snapshot `s = b.snapshot()`:
//!
//! * the candidate multiset (hence the top-`q` query result),
//! * the threshold Ψ,
//! * the statistics counters (compactions, filtered, pivot fallbacks),
//!
//! which the 256-case round-trip suite in `tests/proptest_checkpoint.rs`
//! pins across AoS, SoA, and adaptive backends, including
//! mid-compaction and freshly-recycled-block states.

use crate::entry::Entry;
use crate::traits::QMax;

/// A self-contained copy of a backend's logical state: candidates + Ψ
/// + statistics counters. See the module docs for the restore contract.
#[derive(Debug, Clone)]
pub struct BackendSnapshot<I, V> {
    /// The live candidate set (a superset of the top `q`, in
    /// unspecified order).
    pub entries: Vec<Entry<I, V>>,
    /// The admission threshold Ψ at snapshot time.
    pub threshold: Option<V>,
    /// Compactions performed up to snapshot time.
    pub compactions: u64,
    /// Arrivals dropped by the admission filter up to snapshot time.
    pub filtered: u64,
    /// Sampled-pivot fallbacks up to snapshot time.
    pub pivot_fallbacks: u64,
}

impl<I, V> BackendSnapshot<I, V> {
    /// An empty snapshot: restoring it is equivalent to a `reset()`
    /// plus zeroed counters. The supervision layer uses this as the
    /// "cold" checkpoint for a shard that failed before its first
    /// checkpoint was taken.
    pub fn empty() -> Self {
        BackendSnapshot {
            entries: Vec::new(),
            threshold: None,
            compactions: 0,
            filtered: 0,
            pivot_fallbacks: 0,
        }
    }

    /// Number of candidate entries captured.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot captured no candidates.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<I, V> Default for BackendSnapshot<I, V> {
    fn default() -> Self {
        Self::empty()
    }
}

/// Backends that can capture and re-adopt their logical state.
///
/// `restore` overwrites the backend's current state with the
/// snapshot's; it never merges. Snapshots are only meaningful across
/// backends constructed with the same `(q, γ)` geometry — restoring a
/// snapshot into a differently-shaped backend is allowed to panic.
pub trait Checkpoint<I, V: Ord>: QMax<I, V> {
    /// Captures the current logical state (candidates + Ψ + counters).
    fn snapshot(&self) -> BackendSnapshot<I, V>;

    /// Overwrites the logical state with the snapshot's, regardless of
    /// current contents. Safe to call on a backend left in an arbitrary
    /// post-panic state.
    fn restore(&mut self, snap: &BackendSnapshot<I, V>);
}

impl<I, V: Ord, B: Checkpoint<I, V> + ?Sized> Checkpoint<I, V> for Box<B> {
    fn snapshot(&self) -> BackendSnapshot<I, V> {
        (**self).snapshot()
    }

    fn restore(&mut self, snap: &BackendSnapshot<I, V>) {
        (**self).restore(snap)
    }
}
