//! Structure-of-arrays q-MAX backends for `Copy` primitive ids/values.
//!
//! The generic backends store `Entry<I, V>` structs in one `Vec`. For the
//! `(u64, u64)`-shaped items every benchmark and app in this repo
//! actually streams, that layout wastes the two resources the hot loop
//! lives on:
//!
//! * **cache bandwidth** — the admission filter and the compaction's
//!   pivot scans only ever read *values*, but each value drags its id
//!   through the cache with it (16-byte elements, half the useful data
//!   per line);
//! * **branch prediction** — the per-item `if val <= Ψ { return }` is
//!   data-dependent; on the skewed streams q-MAX targets, Ψ quickly
//!   filters ~everything and the admit branch becomes rare-but-random.
//!
//! The backends here keep `vals: Vec<V>` and `ids: Vec<I>` in two
//! parallel lanes. Batch admission runs a **branchless chunked
//! Ψ-filter**: each chunk of arrivals is streamed with an unconditional
//! store plus a compare-derived write-cursor increment
//! (`w += (v > Ψ) as usize`), so rejected items are simply overwritten by
//! the next arrival and the loop has no data-dependent branch at all.
//! Compactions use the value-only selection kernels from
//! [`qmax_select`] ([`qmax_select::paired_nth_smallest`],
//! [`qmax_select::PairedNthElementMachine`]) which partition the dense
//! value lane and mirror the permutation into the id lane.
//!
//! Both backends are drop-in behavioral twins of their
//! array-of-structs counterparts — same admissions, same thresholds,
//! same query results (up to the usual arbitrary tie-breaking on ids) —
//! which the differential property tests in `tests/proptest_soa.rs` pin
//! down. When ids are *not* `Copy` (boxed flow keys, strings), the AoS
//! backends remain the right choice: there, moving an entry is a pointer
//! move and the split-lane permutation mirroring would buy nothing.

use crate::deamortized::DeamortizedStats;
use crate::entry::Entry;
use crate::traits::{BatchInsert, IntervalBackend, QMax};
use qmax_select::kernels::{pivot_band, PIVOT_SEED, SAMPLED_COMPACT_MIN};
use qmax_select::{paired_nth_smallest, Direction, Kernel, MachineStatus, PairedNthElementMachine};

/// Structure-of-arrays [`AmortizedQMax`](crate::AmortizedQMax): q-MAX
/// with amortized `O(1)` updates, `⌈q(1+γ)⌉` space, and a branchless
/// batch admission path over parallel `vals`/`ids` lanes.
///
/// ```
/// use qmax_core::{BatchInsert, QMax, SoaAmortizedQMax};
/// let mut qm = SoaAmortizedQMax::new(2, 0.5);
/// let items: Vec<(u32, u64)> = (0u64..100).map(|v| (v as u32, v)).collect();
/// qm.insert_batch(&items);
/// let mut top: Vec<u64> = qm.query().into_iter().map(|(_, v)| v).collect();
/// top.sort();
/// assert_eq!(top, vec![98, 99]);
/// ```
#[derive(Debug, Clone)]
pub struct SoaAmortizedQMax<I, V> {
    q: usize,
    cap: usize,
    ids: Vec<I>,
    vals: Vec<V>,
    /// Live prefix length of both lanes; slots beyond it are scratch.
    len: usize,
    threshold: Option<V>,
    compactions: u64,
    filtered: u64,
    /// Output lanes for the sampled-pivot partition; swapped with the
    /// primary lanes after each partition pass. Materialized lazily at
    /// the first sampled compaction — a block that never fills (or
    /// stays below [`SAMPLED_COMPACT_MIN`]) never allocates them.
    scratch_ids: Vec<I>,
    scratch_vals: Vec<V>,
    /// Reusable buffer for the pivot sample.
    sample: Vec<V>,
    /// Compactions whose sampled pivot landed outside the tolerance
    /// band ([`qmax_select::kernels::pivot_band`]); the result is exact
    /// either way, the counter tracks sample quality.
    pivot_fallbacks: u64,
    /// SIMD dispatch handle, resolved once at construction.
    kernel: Kernel<V>,
}

impl<I: Copy + 'static, V: Ord + Copy + 'static> SoaAmortizedQMax<I, V> {
    /// Creates a q-MAX for the `q` largest items with space-slack
    /// parameter `gamma` (γ): `⌈q(1+γ)⌉` slots (at least `q + 1`) per
    /// lane.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0` or `gamma` is not a positive finite number.
    /// Use [`SoaAmortizedQMax::try_new`] at fallible API boundaries.
    pub fn new(q: usize, gamma: f64) -> Self {
        Self::try_new(q, gamma).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`SoaAmortizedQMax::new`]: rejects `q == 0` and
    /// non-positive / non-finite `gamma` instead of panicking.
    pub fn try_new(q: usize, gamma: f64) -> Result<Self, crate::QMaxError> {
        crate::error::check_q_gamma(q, gamma)?;
        let cap = ((q as f64) * (1.0 + gamma)).ceil() as usize;
        let cap = cap.max(q + 1);
        Ok(SoaAmortizedQMax {
            q,
            cap,
            ids: Vec::new(),
            vals: Vec::new(),
            len: 0,
            threshold: None,
            compactions: 0,
            filtered: 0,
            scratch_ids: Vec::new(),
            scratch_vals: Vec::new(),
            sample: Vec::new(),
            pivot_fallbacks: 0,
            kernel: Kernel::detect(),
        })
    }

    /// Total buffer capacity `⌈q(1+γ)⌉`.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of compactions (threshold recomputations) performed.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Number of arrivals dropped by the admission filter.
    pub fn filtered(&self) -> u64 {
        self.filtered
    }

    /// Compactions whose sampled pivot landed outside the tolerance
    /// band and degraded to a large exact-select residue. Always zero
    /// for buffers below `SAMPLED_COMPACT_MIN` slots.
    pub fn pivot_fallbacks(&self) -> u64 {
        self.pivot_fallbacks
    }

    /// Overrides the SIMD dispatch handle (benchmarks pin the scalar
    /// path with `Kernel::scalar()` to measure the vectorization gain).
    pub fn set_kernel(&mut self, kernel: Kernel<V>) {
        self.kernel = kernel;
    }

    /// The SIMD dispatch handle in use.
    pub fn kernel(&self) -> Kernel<V> {
        self.kernel
    }

    /// Grows the primary lanes to at least `need` slots, seeding the new
    /// slots with copies of the given item (avoids a `Default` bound;
    /// the slots beyond `len` are never read until overwritten).
    ///
    /// Growth is geometric but **bounded by the block capacity and the
    /// demanded length**: a block in a many-block window that only ever
    /// sees `W·τ ≪ cap` items per epoch pays for the lanes it actually
    /// fills, not for `⌈q(1+γ)⌉` slots × 4 lanes up front (the eager
    /// materialization was the per-block fixed cost that inverted the
    /// SoA layout from win to ~10× collapse at small τ). The scratch
    /// lanes are not touched here at all — see [`Self::compact_sampled`].
    #[inline]
    fn ensure_lanes(&mut self, need: usize, id: I, val: V) {
        debug_assert!(need <= self.cap);
        if self.vals.len() < need {
            let target = need.max((self.vals.len() * 2).min(self.cap));
            self.vals.resize(target, val);
            self.ids.resize(target, id);
        }
    }

    /// Compacts the lanes: selects the q-th largest value, makes it the
    /// new threshold, and keeps only the top `q` pairs. Large buffers
    /// take the sampled-pivot path; the resulting Ψ and survivor
    /// multiset are identical either way.
    fn compact(&mut self) {
        debug_assert!(self.len > self.q);
        let psi = if self.len >= SAMPLED_COMPACT_MIN {
            self.compact_sampled()
        } else {
            self.compact_exact()
        };
        self.len = self.q;
        self.threshold = Some(match self.threshold.take() {
            Some(old) if old > psi => old,
            _ => psi,
        });
        self.compactions += 1;
    }

    /// Plain exact compaction: introselect over the full live prefix.
    fn compact_exact(&mut self) -> V {
        let cut = self.len - self.q;
        paired_nth_smallest(&mut self.vals[..self.len], &mut self.ids[..self.len], cut);
        let psi = self.vals[cut];
        self.vals.copy_within(cut..self.len, 0);
        self.ids.copy_within(cut..self.len, 0);
        psi
    }

    /// Sampled-pivot compaction: estimate the q-th largest value from a
    /// deterministic `O(√n)` sample (seeded by the compaction counter,
    /// so replays are exact), partition the lanes around it in one
    /// vectorized stable pass into the scratch lanes — descending
    /// region order, so the survivors end up a *prefix* — then repair
    /// the boundary with an exact select over only the region the true
    /// cut landed in. Ψ is exactly the q-th largest, as in
    /// [`Self::compact_exact`].
    fn compact_sampled(&mut self) -> V {
        let n = self.len;
        let q = self.q;
        let (mn, mx) = self
            .kernel
            .min_max(&self.vals[..n])
            .expect("compacting a non-empty buffer");
        if mn == mx {
            // All values equal: any q survive and Ψ is that value.
            return mn;
        }
        let seed = PIVOT_SEED ^ self.compactions;
        let pivot = self
            .kernel
            .sample_pivot(&self.vals[..n], n - q, seed, &mut self.sample);
        // First sampled compaction materializes the scratch lanes (the
        // mn == mx early exit above needs none, and exact compactions
        // below `SAMPLED_COMPACT_MIN` partition in place).
        if self.scratch_vals.len() < n {
            let seed_id = self.ids[0];
            self.scratch_vals.resize(n, mn);
            self.scratch_ids.resize(n, seed_id);
        }
        let (ngt, eq_end) = self.kernel.partition3_desc(
            &self.vals[..n],
            &self.ids[..n],
            pivot,
            &mut self.scratch_vals[..n],
            &mut self.scratch_ids[..n],
        );
        core::mem::swap(&mut self.vals, &mut self.scratch_vals);
        core::mem::swap(&mut self.ids, &mut self.scratch_ids);
        let band = pivot_band(n);
        if ngt >= q {
            // Pivot landed low: all survivors are in the `>` region;
            // exact-select the q largest within it.
            if ngt - q > band {
                self.pivot_fallbacks += 1;
            }
            let cut = ngt - q;
            paired_nth_smallest(&mut self.vals[..ngt], &mut self.ids[..ngt], cut);
            let psi = self.vals[cut];
            self.vals.copy_within(cut..ngt, 0);
            self.ids.copy_within(cut..ngt, 0);
            psi
        } else if eq_end >= q {
            // In band: the q-th largest is the pivot itself and the
            // survivors are exactly the output prefix already.
            pivot
        } else {
            // Pivot landed high: keep the whole `>`/`==` prefix and top
            // it up with the largest elements of the `<` region.
            if q - eq_end > band {
                self.pivot_fallbacks += 1;
            }
            let k = q - eq_end;
            let lt_len = n - eq_end;
            paired_nth_smallest(
                &mut self.vals[eq_end..n],
                &mut self.ids[eq_end..n],
                lt_len - k,
            );
            let psi = self.vals[n - k];
            self.vals.copy_within(n - k..n, eq_end);
            self.ids.copy_within(n - k..n, eq_end);
            psi
        }
    }
}

impl<I: Copy + 'static, V: Ord + Copy + 'static> QMax<I, V> for SoaAmortizedQMax<I, V> {
    #[inline]
    fn insert(&mut self, id: I, val: V) -> bool {
        if let Some(t) = self.threshold {
            if val <= t {
                self.filtered += 1;
                return false;
            }
        }
        self.ensure_lanes(self.len + 1, id, val);
        self.vals[self.len] = val;
        self.ids[self.len] = id;
        self.len += 1;
        if self.len == self.cap {
            self.compact();
        }
        true
    }

    fn query(&mut self) -> Vec<(I, V)> {
        if self.len > self.q {
            self.compact();
        }
        self.ids[..self.len]
            .iter()
            .zip(&self.vals[..self.len])
            .map(|(&id, &v)| (id, v))
            .collect()
    }

    fn reset(&mut self) {
        // Keep the materialized lanes; only the live prefix matters.
        self.len = 0;
        self.threshold = None;
    }

    fn q(&self) -> usize {
        self.q
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn threshold(&self) -> Option<V> {
        self.threshold
    }

    fn name(&self) -> &'static str {
        "qmax-soa-amortized"
    }
}

impl<I: Copy + 'static, V: Ord + Copy + 'static> BatchInsert<I, V> for SoaAmortizedQMax<I, V> {
    /// Branchless chunked Ψ-filter: processes the batch in chunks sized
    /// to the remaining buffer room, each chunk streamed through the
    /// vectorized admit kernel ([`Kernel::admit_pairs`]) — every item is
    /// conceptually stored at the write cursor and the cursor advances
    /// only for survivors, so heavily filtered (skewed) streams run at
    /// full pipeline speed with no data-dependent branch. Ψ can only
    /// change at a compaction, and compactions coincide with chunk
    /// boundaries, so re-reading Ψ once per chunk is exact, not an
    /// approximation.
    fn insert_batch(&mut self, items: &[(I, V)]) -> usize {
        let Some(&(id0, val0)) = items.first() else {
            return 0;
        };
        let mut admitted = 0usize;
        let mut i = 0;
        while i < items.len() {
            let take = (self.cap - self.len).min(items.len() - i);
            // The lanes only ever grow to the chunk's own high-water
            // mark `len + take` (≤ cap), so a block that never fills
            // never materializes its full capacity.
            let hard_end = self.len + take;
            self.ensure_lanes(hard_end, id0, val0);
            // In-bounds: cursor < len + take <= lane length for every
            // store (the kernel contract forbids stores past hard_end).
            let w = self.kernel.admit_pairs(
                &items[i..i + take],
                self.threshold,
                &mut self.vals,
                &mut self.ids,
                self.len,
                hard_end,
            );
            let kept = w - self.len;
            admitted += kept;
            self.filtered += (take - kept) as u64;
            self.len = w;
            i += take;
            if self.len == self.cap {
                self.compact();
            }
        }
        admitted
    }
}

impl<I: Copy + 'static, V: Ord + Copy + 'static> crate::checkpoint::Checkpoint<I, V>
    for SoaAmortizedQMax<I, V>
{
    /// Copies the live lane prefixes into entry form, plus Ψ and the
    /// counters. The scratch lanes and the kernel handle are execution
    /// machinery, not logical state, and are not captured.
    fn snapshot(&self) -> crate::checkpoint::BackendSnapshot<I, V> {
        crate::checkpoint::BackendSnapshot {
            entries: self.ids[..self.len]
                .iter()
                .zip(&self.vals[..self.len])
                .map(|(&id, &v)| Entry::new(id, v))
                .collect(),
            threshold: self.threshold,
            compactions: self.compactions,
            filtered: self.filtered,
            pivot_fallbacks: self.pivot_fallbacks,
        }
    }

    /// Overwrites the live lane prefixes, Ψ, and counters with the
    /// snapshot's. Lanes are re-materialized to the restored length if
    /// the current allocation is shorter (a freshly-recycled block may
    /// have no lanes at all).
    fn restore(&mut self, snap: &crate::checkpoint::BackendSnapshot<I, V>) {
        let n = snap.entries.len();
        debug_assert!(n < self.cap, "snapshot larger than block capacity");
        if let Some(first) = snap.entries.first() {
            self.ensure_lanes(n, first.id, first.val);
        }
        for (i, e) in snap.entries.iter().enumerate() {
            self.vals[i] = e.val;
            self.ids[i] = e.id;
        }
        self.len = n;
        self.threshold = snap.threshold;
        self.compactions = snap.compactions;
        self.filtered = snap.filtered;
        self.pivot_fallbacks = snap.pivot_fallbacks;
        if self.len >= self.cap {
            self.compact();
        }
    }
}

impl<I: Copy + 'static, V: Ord + Copy + 'static> IntervalBackend<I, V> for SoaAmortizedQMax<I, V> {
    fn fresh(&self) -> Self {
        SoaAmortizedQMax {
            q: self.q,
            cap: self.cap,
            ids: Vec::new(),
            vals: Vec::new(),
            len: 0,
            threshold: None,
            compactions: 0,
            filtered: 0,
            scratch_ids: Vec::new(),
            scratch_vals: Vec::new(),
            sample: Vec::new(),
            pivot_fallbacks: 0,
            kernel: self.kernel,
        }
    }

    fn capacity(&self) -> usize {
        self.cap
    }

    fn candidates_into(&self, out: &mut Vec<Entry<I, V>>) {
        out.extend(
            self.ids[..self.len]
                .iter()
                .zip(&self.vals[..self.len])
                .map(|(&id, &v)| Entry::new(id, v)),
        );
    }
}

/// The two alternating buffer geometries of a de-amortized iteration
/// (see [`crate::DeamortizedQMax`] for the full picture).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Parity {
    /// Insertion zone at the right end `[q+g, n)`.
    InsertRight,
    /// Insertion zone at the left end `[0, g)`.
    InsertLeft,
}

/// Structure-of-arrays [`DeamortizedQMax`](crate::DeamortizedQMax):
/// q-MAX with **worst-case** `O(γ⁻¹)` updates over parallel `vals`/`ids`
/// lanes, using the suspendable value-only selection machine
/// ([`qmax_select::PairedNthElementMachine`]) so every compaction is
/// spread over the insertion zone's arrivals exactly as in the AoS
/// variant — same geometry, same budgets, same statistics.
///
/// ```
/// use qmax_core::{BatchInsert, QMax, SoaDeamortizedQMax};
/// let mut qm = SoaDeamortizedQMax::new(4, 0.5);
/// let items: Vec<(u32, u64)> = (0u64..1000).map(|v| (v as u32, v)).collect();
/// for chunk in items.chunks(64) {
///     qm.insert_batch(chunk);
/// }
/// let mut top: Vec<u64> = qm.query().into_iter().map(|(_, v)| v).collect();
/// top.sort();
/// assert_eq!(top, vec![996, 997, 998, 999]);
/// ```
#[derive(Debug)]
pub struct SoaDeamortizedQMax<I, V> {
    q: usize,
    /// Insertion-zone size `⌈qγ/2⌉` (≥ 1).
    g: usize,
    /// Total buffer size `q + 2g`.
    n: usize,
    ids: Vec<I>,
    vals: Vec<V>,
    /// Arrivals stored during the initial fill (both lanes are
    /// materialized to `n` slots up front; this tracks the live prefix).
    len: usize,
    /// Admission threshold Ψ.
    threshold: Option<V>,
    /// Whether the buffer is still filling for the very first time.
    filling: bool,
    /// Start of the current insertion zone.
    s2_start: usize,
    /// Admitted arrivals in the current iteration, `0..g`.
    steps: usize,
    parity: Parity,
    machine: Option<PairedNthElementMachine<V>>,
    /// Index that holds the new Ψ when the current iteration completes.
    boundary: usize,
    /// Per-arrival operation budget for the selection machine.
    budget: usize,
    stats: DeamortizedStats,
    /// SIMD dispatch handle for the batch admit path.
    kernel: Kernel<V>,
}

impl<I: Copy + 'static, V: Ord + Copy + 'static> SoaDeamortizedQMax<I, V> {
    /// Creates a de-amortized q-MAX for the `q` largest items with
    /// space-slack parameter `gamma` (γ): `q + 2⌈qγ/2⌉` slots per lane.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0` or `gamma` is not a positive finite number.
    /// Use [`SoaDeamortizedQMax::try_new`] at fallible API boundaries.
    pub fn new(q: usize, gamma: f64) -> Self {
        Self::try_new(q, gamma).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`SoaDeamortizedQMax::new`]: rejects `q == 0` and
    /// non-positive / non-finite `gamma` instead of panicking.
    pub fn try_new(q: usize, gamma: f64) -> Result<Self, crate::QMaxError> {
        crate::error::check_q_gamma(q, gamma)?;
        let g = ((q as f64) * gamma / 2.0).ceil() as usize;
        let g = g.max(1);
        let n = q + 2 * g;
        let budget =
            (qmax_select::WORK_BOUND_FACTOR * (q + g)).div_ceil(g) + qmax_select::WORK_BOUND_FACTOR;
        Ok(SoaDeamortizedQMax {
            q,
            g,
            n,
            ids: Vec::new(),
            vals: Vec::new(),
            len: 0,
            threshold: None,
            filling: true,
            s2_start: q + g,
            steps: 0,
            parity: Parity::InsertRight,
            machine: None,
            boundary: 0,
            budget,
            stats: DeamortizedStats::default(),
            kernel: Kernel::detect(),
        })
    }

    /// Overrides the SIMD dispatch handle (benchmarks pin the scalar
    /// path with `Kernel::scalar()` to measure the vectorization gain).
    pub fn set_kernel(&mut self, kernel: Kernel<V>) {
        self.kernel = kernel;
    }

    /// Total buffer capacity `q + 2⌈qγ/2⌉`.
    pub fn capacity(&self) -> usize {
        self.n
    }

    /// The per-arrival selection-machine operation budget (`O(γ⁻¹)`).
    pub fn step_budget(&self) -> usize {
        self.budget
    }

    /// Execution counters (same meaning as the AoS variant's).
    pub fn stats(&self) -> DeamortizedStats {
        self.stats
    }

    /// Materializes both lanes to `n` slots on first use, seeded with
    /// copies of the given item (the slots beyond `len` are never read
    /// until overwritten).
    #[inline]
    fn ensure_storage(&mut self, id: I, val: V) {
        if self.vals.len() != self.n {
            self.vals.resize(self.n, val);
            self.ids.resize(self.n, id);
        }
    }

    /// Starts the selection for the current parity (same geometry as
    /// [`crate::DeamortizedQMax`]).
    fn begin_iteration(&mut self) {
        debug_assert!(self.len == self.n || (self.filling && self.len == self.q + self.g));
        let (lo, hi, k, dir, boundary) = match self.parity {
            Parity::InsertRight => (0, self.q + self.g, self.g, Direction::Ascending, self.g),
            Parity::InsertLeft => (
                self.g,
                self.n,
                self.q - 1,
                Direction::Descending,
                self.g + self.q - 1,
            ),
        };
        self.machine = Some(PairedNthElementMachine::new(lo, hi, k, dir));
        self.boundary = boundary;
    }

    /// Completes the current iteration: finishes the selection if it has
    /// not already converged, raises Ψ, and flips the geometry.
    fn finish_iteration(&mut self) {
        let mut machine = self.machine.take().expect("iteration must have a machine");
        if !machine.is_finished() {
            machine.run_to_completion(&mut self.vals, &mut self.ids);
            self.stats.forced_completions += 1;
        }
        self.stats.total_ops += machine.total_ops();
        self.stats.max_step_ops = self.stats.max_step_ops.max(machine.max_step_ops());
        self.stats.iterations += 1;
        let psi = self.vals[self.boundary];
        self.threshold = Some(match self.threshold.take() {
            Some(old) if old > psi => old,
            _ => psi,
        });
        self.parity = match self.parity {
            Parity::InsertRight => {
                self.s2_start = 0;
                Parity::InsertLeft
            }
            Parity::InsertLeft => {
                self.s2_start = self.q + self.g;
                Parity::InsertRight
            }
        };
        self.steps = 0;
        self.begin_iteration();
    }
}

impl<I: Copy + 'static, V: Ord + Copy + 'static> QMax<I, V> for SoaDeamortizedQMax<I, V> {
    #[inline]
    fn insert(&mut self, id: I, val: V) -> bool {
        if let Some(t) = self.threshold {
            if val <= t {
                self.stats.filtered += 1;
                return false;
            }
        }
        self.stats.admitted += 1;
        if self.filling {
            self.ensure_storage(id, val);
            self.vals[self.len] = val;
            self.ids[self.len] = id;
            self.len += 1;
            let len = self.len;
            if len == self.q + self.g {
                self.parity = Parity::InsertRight;
                self.begin_iteration();
            } else if len > self.q + self.g {
                self.steps += 1;
                let machine = self
                    .machine
                    .as_mut()
                    .expect("machine started when zone filled");
                machine.step(&mut self.vals, &mut self.ids, self.budget);
                if len == self.n {
                    debug_assert_eq!(self.steps, self.g);
                    self.filling = false;
                    self.finish_iteration();
                }
            }
            return true;
        }
        let slot = self.s2_start + self.steps;
        self.vals[slot] = val;
        self.ids[slot] = id;
        self.steps += 1;
        let machine = self
            .machine
            .as_mut()
            .expect("steady state always has a machine");
        machine.step(&mut self.vals, &mut self.ids, self.budget);
        if self.steps == self.g {
            self.finish_iteration();
        }
        true
    }

    fn query(&mut self) -> Vec<(I, V)> {
        // Valid candidates: everything except the not-yet-overwritten
        // tail of the insertion zone (already-discarded items).
        let (live, stale) = if self.filling {
            (self.len, 0..0)
        } else {
            (self.n, self.s2_start + self.steps..self.s2_start + self.g)
        };
        let mut sv: Vec<V> = Vec::with_capacity(live);
        let mut si: Vec<I> = Vec::with_capacity(live);
        for i in 0..live {
            if !stale.contains(&i) {
                sv.push(self.vals[i]);
                si.push(self.ids[i]);
            }
        }
        if sv.len() > self.q {
            let cut = sv.len() - self.q;
            paired_nth_smallest(&mut sv, &mut si, cut);
            sv.drain(..cut);
            si.drain(..cut);
        }
        si.into_iter().zip(sv).collect()
    }

    fn reset(&mut self) {
        // Keep the materialized lanes; reset the logical state.
        self.len = 0;
        self.threshold = None;
        self.filling = true;
        self.s2_start = self.q + self.g;
        self.steps = 0;
        self.parity = Parity::InsertRight;
        self.machine = None;
        self.stats = DeamortizedStats::default();
    }

    fn q(&self) -> usize {
        self.q
    }

    #[inline]
    fn len(&self) -> usize {
        if self.filling {
            self.len
        } else {
            self.n - (self.g - self.steps)
        }
    }

    #[inline]
    fn threshold(&self) -> Option<V> {
        self.threshold
    }

    fn name(&self) -> &'static str {
        "qmax-soa-deamortized"
    }
}

impl<I: Copy + 'static, V: Ord + Copy + 'static> BatchInsert<I, V> for SoaDeamortizedQMax<I, V> {
    /// Branchless chunked Ψ-filter for the steady state: arrivals are
    /// streamed into the insertion zone by the vectorized admit kernel
    /// ([`Kernel::admit_pairs`]), then the selection machine is advanced
    /// by one per-arrival budget per survivor (identical work accounting
    /// to singleton inserts — the worst-case bound per arrival is
    /// unchanged). Chunks are sized to the insertion zone's remaining
    /// room, so Ψ — which only rises at iteration boundaries — is
    /// constant within each chunk and one load per chunk is exact.
    ///
    /// The initial fill (first `q + 2g` admitted arrivals) takes the
    /// singleton path: it's a one-time warm-up with per-item geometry
    /// transitions that isn't worth a second kernel.
    fn insert_batch(&mut self, items: &[(I, V)]) -> usize {
        let mut admitted = 0usize;
        let mut i = 0;
        while i < items.len() && self.filling {
            let (id, v) = items[i];
            admitted += usize::from(self.insert(id, v));
            i += 1;
        }
        while i < items.len() {
            let take = (self.g - self.steps).min(items.len() - i);
            let start = self.s2_start + self.steps;
            // In-bounds: the cursor stays inside the insertion zone
            // [s2_start, s2_start + g) for every store. (Steady state
            // always has a threshold — set by the iteration that ended
            // the fill — and the kernel admits everything when `None`.)
            let w = self.kernel.admit_pairs(
                &items[i..i + take],
                self.threshold,
                &mut self.vals,
                &mut self.ids,
                start,
                self.s2_start + self.g,
            );
            let kept = w - start;
            admitted += kept;
            self.stats.admitted += kept as u64;
            self.stats.filtered += (take - kept) as u64;
            self.steps += kept;
            i += take;
            // One budget-bounded machine step per admitted arrival, as in
            // the singleton path; rejected arrivals fund no work there
            // either. The machine runs on the selection zone, disjoint
            // from the insertion zone written above, so write/step order
            // within the chunk is immaterial.
            let machine = self
                .machine
                .as_mut()
                .expect("steady state always has a machine");
            for _ in 0..kept {
                if machine.step(&mut self.vals, &mut self.ids, self.budget)
                    == MachineStatus::Finished
                {
                    break;
                }
            }
            if self.steps == self.g {
                self.finish_iteration();
            }
        }
        admitted
    }
}

impl<I: Copy + 'static, V: Ord + Copy + 'static> IntervalBackend<I, V>
    for SoaDeamortizedQMax<I, V>
{
    fn fresh(&self) -> Self {
        SoaDeamortizedQMax {
            q: self.q,
            g: self.g,
            n: self.n,
            ids: Vec::new(),
            vals: Vec::new(),
            len: 0,
            threshold: None,
            filling: true,
            s2_start: self.q + self.g,
            steps: 0,
            parity: Parity::InsertRight,
            machine: None,
            boundary: 0,
            budget: self.budget,
            stats: DeamortizedStats::default(),
            kernel: self.kernel,
        }
    }

    fn capacity(&self) -> usize {
        self.n
    }

    fn candidates_into(&self, out: &mut Vec<Entry<I, V>>) {
        // Same validity rule as `query`: skip the not-yet-overwritten
        // tail of the insertion zone.
        let (live, stale) = if self.filling {
            (self.len, 0..0)
        } else {
            (self.n, self.s2_start + self.steps..self.s2_start + self.g)
        };
        for i in 0..live {
            if !stale.contains(&i) {
                out.push(Entry::new(self.ids[i], self.vals[i]));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AmortizedQMax, DeamortizedQMax};

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn top_q_reference(vals: &[u64], q: usize) -> Vec<u64> {
        let mut s = vals.to_vec();
        s.sort_unstable_by(|a, b| b.cmp(a));
        s.truncate(q);
        s.sort_unstable();
        s
    }

    fn sorted_vals(pairs: Vec<(u32, u64)>) -> Vec<u64> {
        let mut v: Vec<u64> = pairs.into_iter().map(|(_, v)| v).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn soa_amortized_matches_reference() {
        let mut state = 1u64;
        for q in [1usize, 2, 10, 100] {
            for gamma in [0.05, 0.25, 1.0, 2.0] {
                let vals: Vec<u64> = (0..5000).map(|_| splitmix(&mut state) % 10_000).collect();
                let mut qm = SoaAmortizedQMax::new(q, gamma);
                for (i, &v) in vals.iter().enumerate() {
                    qm.insert(i as u32, v);
                }
                assert_eq!(
                    sorted_vals(qm.query()),
                    top_q_reference(&vals, q),
                    "q={q} gamma={gamma}"
                );
            }
        }
    }

    #[test]
    fn soa_deamortized_matches_reference() {
        let mut state = 11u64;
        for q in [1usize, 2, 7, 64, 500] {
            for gamma in [0.05, 0.25, 1.0, 2.0] {
                let vals: Vec<u64> = (0..8000).map(|_| splitmix(&mut state) % 100_000).collect();
                let mut qm = SoaDeamortizedQMax::new(q, gamma);
                for (i, &v) in vals.iter().enumerate() {
                    qm.insert(i as u32, v);
                }
                assert_eq!(
                    sorted_vals(qm.query()),
                    top_q_reference(&vals, q),
                    "q={q} gamma={gamma}"
                );
            }
        }
    }

    #[test]
    fn batch_equals_singletons_amortized() {
        let mut state = 3u64;
        for chunk_size in [1usize, 7, 64, 1024] {
            let items: Vec<(u32, u64)> = (0..6000)
                .map(|i| (i as u32, splitmix(&mut state) % 5_000))
                .collect();
            let mut by_one = SoaAmortizedQMax::new(37, 0.6);
            let mut by_batch = SoaAmortizedQMax::new(37, 0.6);
            let mut one_admitted = 0usize;
            for &(id, v) in &items {
                one_admitted += usize::from(by_one.insert(id, v));
            }
            let mut batch_admitted = 0usize;
            for chunk in items.chunks(chunk_size) {
                batch_admitted += by_batch.insert_batch(chunk);
            }
            assert_eq!(one_admitted, batch_admitted, "chunk={chunk_size}");
            assert_eq!(by_one.threshold(), by_batch.threshold());
            assert_eq!(by_one.filtered(), by_batch.filtered());
            assert_eq!(sorted_vals(by_one.query()), sorted_vals(by_batch.query()));
        }
    }

    #[test]
    fn batch_equals_singletons_deamortized() {
        let mut state = 5u64;
        for chunk_size in [1usize, 13, 256, 2048] {
            let items: Vec<(u32, u64)> = (0..9000)
                .map(|i| (i as u32, splitmix(&mut state) % 20_000))
                .collect();
            let mut by_one = SoaDeamortizedQMax::new(61, 0.5);
            let mut by_batch = SoaDeamortizedQMax::new(61, 0.5);
            let mut one_admitted = 0usize;
            for &(id, v) in &items {
                one_admitted += usize::from(by_one.insert(id, v));
            }
            let mut batch_admitted = 0usize;
            for chunk in items.chunks(chunk_size) {
                batch_admitted += by_batch.insert_batch(chunk);
            }
            assert_eq!(one_admitted, batch_admitted, "chunk={chunk_size}");
            assert_eq!(by_one.threshold(), by_batch.threshold());
            assert_eq!(by_one.stats().filtered, by_batch.stats().filtered);
            assert_eq!(by_one.stats().admitted, by_batch.stats().admitted);
            assert_eq!(sorted_vals(by_one.query()), sorted_vals(by_batch.query()));
        }
    }

    #[test]
    fn soa_matches_aos_threshold_trajectory() {
        let mut state = 21u64;
        let items: Vec<(u32, u64)> = (0..20_000)
            .map(|i| (i as u32, splitmix(&mut state) % 1_000_000))
            .collect();
        let mut aos = AmortizedQMax::new(64, 0.5);
        let mut soa = SoaAmortizedQMax::new(64, 0.5);
        for &(id, v) in &items {
            let a = aos.insert(id, v);
            let s = soa.insert(id, v);
            assert_eq!(a, s, "admission diverged at id={id}");
            assert_eq!(aos.threshold(), soa.threshold());
        }
        let mut aos_d = DeamortizedQMax::new(64, 0.5);
        let mut soa_d = SoaDeamortizedQMax::new(64, 0.5);
        for &(id, v) in &items {
            let a = aos_d.insert(id, v);
            let s = soa_d.insert(id, v);
            assert_eq!(a, s, "admission diverged at id={id}");
            assert_eq!(aos_d.threshold(), soa_d.threshold());
        }
        assert_eq!(aos_d.stats(), soa_d.stats());
    }

    #[test]
    fn soa_deamortized_work_bound_holds() {
        let mut state = 5u64;
        for gamma in [0.05, 0.5] {
            let mut qm = SoaDeamortizedQMax::new(100, gamma);
            let items: Vec<(u32, u64)> = (0..200_000u64)
                .map(|i| (i as u32, splitmix(&mut state)))
                .collect();
            for chunk in items.chunks(1024) {
                qm.insert_batch(chunk);
            }
            assert_eq!(qm.stats().forced_completions, 0, "gamma={gamma}");
            assert!(
                qm.stats().max_step_ops <= qm.step_budget() as u64 + 32,
                "max step ops {} exceeds budget {}",
                qm.stats().max_step_ops,
                qm.step_budget()
            );
            assert!(qm.stats().iterations > 0);
        }
    }

    #[test]
    fn query_mid_iteration_is_correct() {
        let mut state = 23u64;
        let vals: Vec<u64> = (0..3000).map(|_| splitmix(&mut state) % 10_000).collect();
        let q = 16;
        let mut qm = SoaDeamortizedQMax::new(q, 0.5);
        for (i, &v) in vals.iter().enumerate() {
            qm.insert(i as u32, v);
            if i % 97 == 0 {
                assert_eq!(
                    sorted_vals(qm.query()),
                    top_q_reference(&vals[..=i], q),
                    "at i={i}"
                );
            }
        }
    }

    #[test]
    fn reset_preserves_correctness() {
        let mut qm = SoaDeamortizedQMax::new(5, 0.5);
        for v in 0u64..1000 {
            qm.insert(v as u32, v);
        }
        qm.reset();
        assert!(qm.is_empty());
        assert_eq!(qm.threshold(), None);
        let items: Vec<(u32, u64)> = (0u64..500).map(|v| (v as u32, v)).collect();
        qm.insert_batch(&items);
        assert_eq!(sorted_vals(qm.query()), vec![495, 496, 497, 498, 499]);

        let mut am = SoaAmortizedQMax::new(3, 1.0);
        am.insert_batch(&items);
        am.reset();
        assert!(am.is_empty());
        am.insert(7u32, 9u64);
        assert_eq!(am.query().len(), 1);
    }

    #[test]
    fn all_equal_stream_keeps_q_items() {
        let items: Vec<(u32, u64)> = (0..5000).map(|i| (i, 42u64)).collect();
        let mut am = SoaAmortizedQMax::new(7, 0.5);
        let mut de = SoaDeamortizedQMax::new(7, 0.5);
        am.insert_batch(&items);
        de.insert_batch(&items);
        let a = am.query();
        let d = de.query();
        assert_eq!(a.len(), 7);
        assert_eq!(d.len(), 7);
        assert!(a.iter().all(|&(_, v)| v == 42));
        assert!(d.iter().all(|&(_, v)| v == 42));
    }

    #[test]
    fn descending_stream_filters_branchlessly() {
        let items: Vec<(u32, u64)> = (0u64..100_000).rev().map(|v| (v as u32, v)).collect();
        let mut qm = SoaAmortizedQMax::new(5, 0.2);
        let mut admitted = 0usize;
        for chunk in items.chunks(512) {
            admitted += qm.insert_batch(chunk);
        }
        assert!(admitted <= qm.capacity() + 1);
        assert_eq!(
            sorted_vals(qm.query()),
            vec![99_995, 99_996, 99_997, 99_998, 99_999]
        );
        assert!(qm.filtered() > 90_000);
    }

    #[test]
    fn ids_track_their_values() {
        // Every reported (id, val) pair must be an input pair: the split
        // lanes must never come apart under compactions.
        let mut state = 9u64;
        let items: Vec<(u32, u64)> = (0..30_000)
            .map(|i| (i as u32, splitmix(&mut state) % 1_000_000))
            .collect();
        for chunk_size in [64usize, 1000] {
            let mut am = SoaAmortizedQMax::new(50, 0.8);
            let mut de = SoaDeamortizedQMax::new(50, 0.8);
            for chunk in items.chunks(chunk_size) {
                am.insert_batch(chunk);
                de.insert_batch(chunk);
            }
            for (id, v) in am.query().into_iter().chain(de.query()) {
                assert_eq!(items[id as usize].1, v, "pair broken for id={id}");
            }
        }
    }

    #[test]
    fn sampled_compaction_matches_reference_and_aos() {
        // q(1+γ) ≥ SAMPLED_COMPACT_MIN, so every compaction takes the
        // sampled-pivot path; Ψ and admissions must still match the
        // exact-select AoS structure insert for insert.
        let mut state = 77u64;
        let q = 2000usize;
        let vals: Vec<u64> = (0..50_000).map(|_| splitmix(&mut state)).collect();
        let mut aos = AmortizedQMax::new(q, 1.0);
        let mut soa = SoaAmortizedQMax::new(q, 1.0);
        assert!(soa.capacity() >= qmax_select::kernels::SAMPLED_COMPACT_MIN);
        for (i, &v) in vals.iter().enumerate() {
            let a = aos.insert(i as u32, v);
            let s = soa.insert(i as u32, v);
            assert_eq!(a, s, "admission diverged at {i}");
            assert_eq!(aos.threshold(), soa.threshold(), "Ψ diverged at {i}");
        }
        assert!(soa.compactions() > 0);
        assert_eq!(sorted_vals(soa.query()), top_q_reference(&vals, q));
        assert_eq!(sorted_vals(aos.query()), top_q_reference(&vals, q));
    }

    #[test]
    fn sampled_compaction_is_deterministic() {
        let mut state = 13u64;
        let items: Vec<(u32, u64)> = (0..40_000)
            .map(|i| (i as u32, splitmix(&mut state)))
            .collect();
        let mut a = SoaAmortizedQMax::new(1500, 0.5);
        let mut b = SoaAmortizedQMax::new(1500, 0.5);
        for chunk in items.chunks(1024) {
            a.insert_batch(chunk);
        }
        for &(id, v) in &items {
            b.insert(id, v);
        }
        assert_eq!(a.threshold(), b.threshold());
        assert_eq!(a.compactions(), b.compactions());
        assert_eq!(a.pivot_fallbacks(), b.pivot_fallbacks());
    }

    #[test]
    fn adversarial_sample_forces_fallback_but_stays_exact() {
        // Defeat the (public, deterministic) sample of the first
        // compaction: every sampled position holds the minimum value,
        // so the pivot lands far below the true cut and the exact
        // select runs over nearly the whole `>` region.
        let q = 64usize;
        let mut qm = SoaAmortizedQMax::<u32, u64>::new(q, 31.0);
        let cap = qm.capacity();
        assert_eq!(cap, 2048);
        let mut pos = Vec::new();
        qmax_select::kernels::sample_positions(cap, qmax_select::kernels::PIVOT_SEED, &mut pos);
        let vals: Vec<u64> = (0..cap)
            .map(|i| if pos.contains(&i) { 1 } else { 1000 + i as u64 })
            .collect();
        for (i, &v) in vals.iter().enumerate() {
            qm.insert(i as u32, v);
        }
        assert_eq!(qm.compactions(), 1);
        assert_eq!(qm.pivot_fallbacks(), 1, "bad pivot must be counted");
        // Exactness is preserved regardless.
        assert_eq!(sorted_vals(qm.query()), top_q_reference(&vals, q));
        assert_eq!(qm.threshold(), top_q_reference(&vals, q).first().copied());
    }

    #[test]
    fn all_equal_large_buffer_uses_minmax_fast_path() {
        let q = 600usize;
        let mut qm = SoaAmortizedQMax::<u32, u64>::new(q, 1.0);
        assert!(qm.capacity() >= qmax_select::kernels::SAMPLED_COMPACT_MIN);
        let items: Vec<(u32, u64)> = (0..5000).map(|i| (i, 42u64)).collect();
        qm.insert_batch(&items);
        let got = qm.query();
        assert_eq!(got.len(), q);
        assert!(got.iter().all(|&(_, v)| v == 42));
        assert_eq!(qm.threshold(), Some(42));
        assert_eq!(qm.pivot_fallbacks(), 0);
    }

    #[test]
    fn scalar_kernel_override_is_behaviorally_identical() {
        let mut state = 31u64;
        let items: Vec<(u64, u64)> = (0..60_000)
            .map(|i| (i as u64, splitmix(&mut state)))
            .collect();
        let mut auto = SoaAmortizedQMax::<u64, u64>::new(1200, 1.0);
        let mut scalar = SoaAmortizedQMax::<u64, u64>::new(1200, 1.0);
        scalar.set_kernel(qmax_select::Kernel::scalar());
        for chunk in items.chunks(512) {
            auto.insert_batch(chunk);
            scalar.insert_batch(chunk);
            assert_eq!(auto.threshold(), scalar.threshold());
        }
        assert_eq!(auto.filtered(), scalar.filtered());
        assert_eq!(auto.pivot_fallbacks(), scalar.pivot_fallbacks());
        let mut a = auto.query();
        let mut s = scalar.query();
        a.sort_unstable();
        s.sort_unstable();
        assert_eq!(a, s, "SIMD and scalar paths must agree exactly");
    }

    #[test]
    #[should_panic(expected = "q must be positive")]
    fn zero_q_panics() {
        let _ = SoaAmortizedQMax::<u32, u64>::new(0, 0.5);
    }

    #[test]
    #[should_panic(expected = "gamma must be positive")]
    fn bad_gamma_panics() {
        let _ = SoaDeamortizedQMax::<u32, u64>::new(5, -1.0);
    }
}
