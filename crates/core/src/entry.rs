//! Entry and value types shared by all q-MAX implementations.

use core::cmp::Ordering;
use core::fmt;

/// A stream item: an identifier paired with the value it is ranked by.
///
/// Ordering (and equality) consider **only the value**, so that the
/// selection routines compare entries by rank while carrying the id
/// along. Two entries with equal values but different ids therefore
/// compare as equal; ties among the q-th largest are broken arbitrarily,
/// exactly as in the paper's problem statement.
#[derive(Debug, Clone, Copy)]
pub struct Entry<I, V> {
    /// The item's identifier (flow key, packet id, cache key, ...).
    pub id: I,
    /// The value the item is ranked by.
    pub val: V,
}

impl<I, V> Entry<I, V> {
    /// Creates an entry.
    pub fn new(id: I, val: V) -> Self {
        Entry { id, val }
    }
}

impl<I, V: PartialEq> PartialEq for Entry<I, V> {
    fn eq(&self, other: &Self) -> bool {
        self.val == other.val
    }
}

impl<I, V: Eq> Eq for Entry<I, V> {}

impl<I, V: PartialOrd> PartialOrd for Entry<I, V> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.val.partial_cmp(&other.val)
    }
}

impl<I, V: Ord> Ord for Entry<I, V> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.val.cmp(&other.val)
    }
}

/// A totally ordered `f64` (ordered by [`f64::total_cmp`]).
///
/// Priority Sampling, Priority-Based Aggregation, and the
/// exponential-decay transform all rank items by real-valued priorities;
/// this newtype lets them use the `Ord`-bounded q-MAX structures.
///
/// ```
/// use qmax_core::OrderedF64;
/// assert!(OrderedF64::from(2.5) > OrderedF64::from(-1.0));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct OrderedF64(pub f64);

impl OrderedF64 {
    /// The wrapped value.
    pub fn get(self) -> f64 {
        self.0
    }
}

// `PartialEq` must match `Ord` (`total_cmp`), which separates `-0.0`
// from `+0.0`; IEEE `==` (the derive) would equate them and break the
// `Eq`/`Ord` consistency contract the selection kernels assert on.
impl PartialEq for OrderedF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl From<f64> for OrderedF64 {
    fn from(v: f64) -> Self {
        OrderedF64(v)
    }
}

impl From<OrderedF64> for f64 {
    fn from(v: OrderedF64) -> Self {
        v.0
    }
}

impl fmt::Display for OrderedF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Reverses the ordering of a value, turning any q-MAX structure into a
/// *q-MIN* structure.
///
/// Several applications (network-wide heavy hitters, count-distinct)
/// keep the `q` items with the **smallest** hash values; wrapping values
/// in `Minimal` makes "largest" mean "smallest".
///
/// ```
/// use qmax_core::{AmortizedQMax, Minimal, QMax};
/// let mut smallest = AmortizedQMax::new(2, 1.0);
/// for v in [50u64, 10, 40, 20, 30] {
///     smallest.insert(v, Minimal(v));
/// }
/// let mut vals: Vec<u64> = smallest.query().into_iter().map(|(_, v)| v.0).collect();
/// vals.sort();
/// assert_eq!(vals, vec![10, 20]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Minimal<V>(pub V);

impl<V: PartialOrd> PartialOrd for Minimal<V> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        other.0.partial_cmp(&self.0)
    }
}

impl<V: Ord> Ord for Minimal<V> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.0.cmp(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_orders_by_value_only() {
        let a = Entry::new(1u32, 10u64);
        let b = Entry::new(2u32, 20u64);
        let c = Entry::new(3u32, 10u64);
        assert!(a < b);
        assert_eq!(a, c);
        assert_eq!(a.cmp(&c), Ordering::Equal);
    }

    #[test]
    fn ordered_f64_total_order() {
        let mut v = [
            OrderedF64(3.0),
            OrderedF64(-1.0),
            OrderedF64(f64::INFINITY),
            OrderedF64(0.0),
            OrderedF64(f64::NEG_INFINITY),
        ];
        v.sort();
        assert_eq!(v[0], OrderedF64(f64::NEG_INFINITY));
        assert_eq!(v[4], OrderedF64(f64::INFINITY));
        assert_eq!(v[2], OrderedF64(0.0));
    }

    #[test]
    fn minimal_reverses() {
        assert!(Minimal(1u32) > Minimal(2u32));
        assert!(Minimal(5u32) < Minimal(0u32));
        assert_eq!(Minimal(3u32), Minimal(3u32));
    }
}
