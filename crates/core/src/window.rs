//! q-MAX over `(W, τ)`-slack sliding windows.
//!
//! Computing the exact maximum over a `W`-item sliding window requires
//! `Ω(W)` space (Datar et al.), so the paper relaxes the window to a
//! *slack window*: the answer may refer to any suffix of length between
//! `W(1−τ)` and `W`. This module implements the paper's three slack
//! algorithms:
//!
//! * [`BasicSlackQMax`] (Algorithm 3): `⌈1/τ⌉` blocks, each an interval
//!   q-MAX. `O(1)` update, `O(q/τ)` query.
//! * [`HierSlackQMax`] (Algorithm 4): `c` block layers at geometrically
//!   growing granularities. `O(c)` update, `O(q·c·τ^{-1/c})` query.
//! * [`LazySlackQMax`] (Theorem 7): a single front-buffer q-MAX absorbs
//!   every arrival, pushing only per-block top-`q` summaries into the
//!   layers. `O(1)` amortized update with the hierarchical query time.
//!
//! All three are generic over the per-block interval backend via
//! [`IntervalBackend`]: the default type parameter keeps the historical
//! array-of-structs [`AmortizedQMax`] behavior (and works for non-`Copy`
//! ids), while the [`SoaBasicSlackQMax`] / [`SoaHierSlackQMax`] /
//! [`SoaLazySlackQMax`] aliases route every block through the
//! structure-of-arrays backend so the branchless batched insert path
//! applies to windowed streams too. The [`BatchInsert`] impls split each
//! batch at block boundaries, so batched and singleton insertion are
//! observably identical.

use crate::adaptive::AdaptiveBackend;
use crate::amortized::AmortizedQMax;
use crate::entry::Entry;
use crate::soa::SoaAmortizedQMax;
use crate::traits::{BatchInsert, IntervalBackend, QMax};
use qmax_select::nth_smallest;
use std::marker::PhantomData;

/// Marker making a ring invariant in `(I, V)` without owning either
/// (blocks own the data; the ring is just an indexing scheme).
pub(crate) type RingMarker<I, V> = PhantomData<fn(I, V) -> (I, V)>;

/// A ring of `blocks` interval q-MAX instances, advanced explicitly.
///
/// The ring retains the current (partial) block plus the `blocks - 1`
/// most recent completed blocks; advancing recycles the oldest block
/// **in place** via [`QMax::reset`] — no per-epoch allocation.
#[derive(Debug, Clone)]
struct BlockRing<I, V, B> {
    blocks: Vec<B>,
    /// Epoch of the current block; the block for epoch `e` lives at slot
    /// `e % blocks.len()`.
    epoch: u64,
    _marker: RingMarker<I, V>,
}

impl<I, V: Ord, B: IntervalBackend<I, V>> BlockRing<I, V, B> {
    fn from_proto(blocks: usize, proto: &B) -> Self {
        assert!(blocks >= 1);
        BlockRing {
            blocks: (0..blocks).map(|_| proto.fresh()).collect(),
            epoch: 0,
            _marker: PhantomData,
        }
    }

    fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    fn cur_slot(&self) -> usize {
        (self.epoch % self.blocks.len() as u64) as usize
    }

    fn add(&mut self, id: I, val: V) {
        let slot = self.cur_slot();
        self.blocks[slot].insert(id, val);
    }

    /// Feeds a batch into the current block (callers must have split the
    /// batch so it does not cross a block boundary).
    fn add_batch(&mut self, items: &[(I, V)]) {
        let slot = self.cur_slot();
        self.blocks[slot].insert_batch(items);
    }

    /// Ends the current block and recycles the oldest one in place.
    fn advance(&mut self) {
        self.epoch += 1;
        let slot = self.cur_slot();
        self.blocks[slot].reset();
    }

    /// Collects the candidates of the `m` oldest retained blocks
    /// (`m <= blocks - 1`; excludes the current block) into `out`.
    fn collect_oldest(&self, m: usize, out: &mut Vec<Entry<I, V>>) {
        debug_assert!(m < self.blocks.len());
        let n = self.blocks.len() as u64;
        let retained = (n - 1).min(self.epoch);
        let oldest = self.epoch - retained;
        for i in 0..m as u64 {
            let e = oldest + i;
            debug_assert!(e <= self.epoch);
            let slot = (e % n) as usize;
            self.blocks[slot].candidates_into(out);
        }
    }

    /// Collects the candidates of every retained block, including the
    /// current partial one, into `out`.
    ///
    /// Interval blocks may hold up to `q(1+γ)` candidates of which only
    /// the top `q` are guaranteed to matter; the superset is also
    /// correct and the final top-`q` cut happens once at the very end of
    /// the query, so it costs only a constant factor in merge size.
    fn collect_all(&self, out: &mut Vec<Entry<I, V>>) {
        for b in &self.blocks {
            b.candidates_into(out);
        }
    }

    fn reset(&mut self) {
        for b in &mut self.blocks {
            b.reset();
        }
        self.epoch = 0;
    }
}

/// q-MAX over a `(W, τ)`-slack window — Algorithm 3 of the paper.
///
/// The stream is cut into `⌈1/τ⌉` consecutive blocks of `⌈Wτ⌉` items;
/// each block gets its own interval q-MAX, and a query merges all
/// retained blocks. Updates touch a single block (`O(1)` amortized);
/// queries cost `O(q/τ)`.
///
/// The answered window always spans between `W' − s + 1` and `W'` items
/// where `s = ⌈Wτ⌉` and `W' = s·⌈1/τ⌉ ≥ W` is the effective window.
///
/// ```
/// use qmax_core::{BasicSlackQMax, QMax};
/// let mut w = BasicSlackQMax::new(2, 0.5, 100, 0.25);
/// for v in 0u64..1000 {
///     w.insert(v as u32, v);
/// }
/// let mut top: Vec<u64> = w.query().into_iter().map(|(_, v)| v).collect();
/// top.sort();
/// assert_eq!(top, vec![998, 999]);
/// ```
#[derive(Debug, Clone)]
pub struct BasicSlackQMax<I, V, B = AmortizedQMax<I, V>> {
    q: usize,
    /// Items per block, `⌈Wτ⌉`.
    block_size: usize,
    ring: BlockRing<I, V, B>,
    /// Items inserted into the current block.
    fill: usize,
}

/// [`BasicSlackQMax`] with structure-of-arrays blocks (`Copy` ids and
/// values): the batched insert path runs the branchless chunked
/// Ψ-filter inside every block.
pub type SoaBasicSlackQMax<I, V> = BasicSlackQMax<I, V, SoaAmortizedQMax<I, V>>;

impl<I: Clone, V: Ord + Clone> BasicSlackQMax<I, V> {
    /// Creates a slack-window q-MAX over windows of `w` items with slack
    /// fraction `tau` and per-block space-slack `gamma`, backed by
    /// array-of-structs [`AmortizedQMax`] blocks.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`, `w == 0`, or `tau` is outside `(0, 1]`.
    /// Use [`BasicSlackQMax::try_new`] at fallible API boundaries.
    pub fn new(q: usize, gamma: f64, w: usize, tau: f64) -> Self {
        Self::try_new(q, gamma, w, tau).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`BasicSlackQMax::new`]: rejects `q == 0`, bad `gamma`,
    /// `w == 0`, and `tau` outside `(0, 1]` instead of panicking.
    pub fn try_new(q: usize, gamma: f64, w: usize, tau: f64) -> Result<Self, crate::QMaxError> {
        Self::try_with_backend(w, tau, AmortizedQMax::try_new(q, gamma)?)
    }
}

/// [`BasicSlackQMax`] with per-block adaptive backends: each block's
/// layout (array-of-structs vs structure-of-arrays) is picked by the
/// calibrated [`BackendPolicy`](crate::BackendPolicy) from the block's
/// lifetime fill `⌈w·τ⌉` — a basic-window block receives exactly one
/// block's worth of arrivals, then recycles. When that lifetime fill
/// sits below the block capacity the block never compacts, and the
/// policy routes it to the append-fast AoS layout (the small-τ regime
/// where forced SoA measurably loses).
pub type AdaptiveBasicSlackQMax<I, V> = BasicSlackQMax<I, V, AdaptiveBackend<I, V>>;

impl<I: Copy + 'static, V: Ord + Copy + 'static> AdaptiveBasicSlackQMax<I, V> {
    /// Like [`BasicSlackQMax::new`], but every block delegates to the
    /// layout the global backend policy picks for a lifetime fill of
    /// one block's worth of arrivals (`⌈w/⌈1/τ⌉⌉` items).
    pub fn new_adaptive(q: usize, gamma: f64, w: usize, tau: f64) -> Self {
        Self::try_new_adaptive(q, gamma, w, tau).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`AdaptiveBasicSlackQMax::new_adaptive`].
    pub fn try_new_adaptive(
        q: usize,
        gamma: f64,
        w: usize,
        tau: f64,
    ) -> Result<Self, crate::QMaxError> {
        // Same geometry `try_with_backend` will derive; computed here
        // because the prototype's layout must be chosen before the ring
        // can be stamped out of it.
        let n_blocks = if tau > 0.0 && tau <= 1.0 {
            ((1.0 / tau).ceil() as usize).max(1)
        } else {
            1
        };
        let block_size = w.div_ceil(n_blocks.max(1)).max(1);
        let proto = AdaptiveBackend::try_with_fill_hint(q, gamma, Some(block_size))?;
        Self::try_with_backend(w, tau, proto)
    }
}

impl<I: Copy + 'static, V: Ord + Copy + 'static> SoaBasicSlackQMax<I, V> {
    /// Like [`BasicSlackQMax::new`], but every block is a
    /// structure-of-arrays [`SoaAmortizedQMax`].
    pub fn new_soa(q: usize, gamma: f64, w: usize, tau: f64) -> Self {
        assert!(q > 0, "q must be positive");
        Self::with_backend(w, tau, SoaAmortizedQMax::new(q, gamma))
    }
}

impl<I, V: Ord, B: IntervalBackend<I, V>> BasicSlackQMax<I, V, B> {
    /// Creates a slack-window q-MAX whose blocks are stamped out of the
    /// given backend prototype via [`IntervalBackend::fresh`].
    ///
    /// # Panics
    ///
    /// Panics if `w == 0` or `tau` is outside `(0, 1]`. Use
    /// [`BasicSlackQMax::try_with_backend`] at fallible API boundaries.
    pub fn with_backend(w: usize, tau: f64, proto: B) -> Self {
        Self::try_with_backend(w, tau, proto).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`BasicSlackQMax::with_backend`].
    pub fn try_with_backend(w: usize, tau: f64, proto: B) -> Result<Self, crate::QMaxError> {
        crate::error::check_window(w, tau)?;
        let n_blocks = (1.0 / tau).ceil() as usize;
        let block_size = w.div_ceil(n_blocks).max(1);
        Ok(BasicSlackQMax {
            q: proto.q(),
            block_size,
            ring: BlockRing::from_proto(n_blocks, &proto),
            fill: 0,
        })
    }

    /// Items per block (`⌈Wτ⌉`).
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of blocks (`⌈1/τ⌉`).
    pub fn n_blocks(&self) -> usize {
        self.ring.n_blocks()
    }

    /// The effective window length `block_size · n_blocks`.
    pub fn effective_window(&self) -> usize {
        self.block_size * self.ring.n_blocks()
    }

    /// The PARTIAL query of the paper's Algorithm 3: the `q` largest
    /// items among the blocks `newest..=oldest` *blocks ago*
    /// (`0` = the current partial block, `n_blocks()-1` = the oldest
    /// retained block). Lets callers inspect sub-intervals of the
    /// window at block granularity.
    ///
    /// # Panics
    ///
    /// Panics if `newest > oldest` or `oldest >= n_blocks()`.
    pub fn query_partial(&mut self, newest: usize, oldest: usize) -> Vec<(I, V)> {
        assert!(newest <= oldest, "newest must not exceed oldest");
        assert!(
            oldest < self.ring.n_blocks(),
            "oldest exceeds retained blocks"
        );
        let n = self.ring.n_blocks() as u64;
        let mut scratch = Vec::new();
        for ago in newest..=oldest {
            let ago = ago as u64;
            if ago > self.ring.epoch {
                break; // block not yet produced this early in the stream
            }
            let e = self.ring.epoch - ago;
            let slot = (e % n) as usize;
            self.ring.blocks[slot].candidates_into(&mut scratch);
        }
        top_q_entries(scratch, self.q)
    }
}

impl<I, V: Ord, B: IntervalBackend<I, V>> QMax<I, V> for BasicSlackQMax<I, V, B> {
    fn insert(&mut self, id: I, val: V) -> bool {
        self.ring.add(id, val);
        self.fill += 1;
        if self.fill == self.block_size {
            self.fill = 0;
            self.ring.advance();
        }
        true
    }

    fn query(&mut self) -> Vec<(I, V)> {
        let mut scratch = Vec::new();
        self.ring.collect_all(&mut scratch);
        top_q_entries(scratch, self.q)
    }

    fn reset(&mut self) {
        self.ring.reset();
        self.fill = 0;
    }

    fn q(&self) -> usize {
        self.q
    }

    fn len(&self) -> usize {
        self.ring.blocks.iter().map(|b| b.len()).sum()
    }

    /// Always `None`: the window's block boundaries are defined by
    /// *arrival counts*, so an external Ψ-prefilter that drops items
    /// before they are counted would shift every boundary and change the
    /// answered window.
    fn threshold(&self) -> Option<V> {
        None
    }

    fn name(&self) -> &'static str {
        "slack-basic"
    }

    /// The per-block backend's label (all blocks are stamped from one
    /// prototype, so any block's answer describes the whole ring).
    fn backend_label(&self) -> &'static str {
        self.ring.blocks[0].backend_label()
    }
}

impl<I, V: Ord, B: IntervalBackend<I, V>> BatchInsert<I, V> for BasicSlackQMax<I, V, B> {
    /// Splits the batch at block boundaries and feeds each span to the
    /// current block's own batch kernel — identical admissions and block
    /// contents to inserting the items one by one.
    fn insert_batch(&mut self, items: &[(I, V)]) -> usize {
        let mut i = 0;
        while i < items.len() {
            let take = (self.block_size - self.fill).min(items.len() - i);
            self.ring.add_batch(&items[i..i + take]);
            self.fill += take;
            i += take;
            if self.fill == self.block_size {
                self.fill = 0;
                self.ring.advance();
            }
        }
        items.len()
    }
}

/// Cuts a candidate vector down to its `q` largest entries.
fn top_q_entries<I, V: Ord>(mut scratch: Vec<Entry<I, V>>, q: usize) -> Vec<(I, V)> {
    if scratch.len() > q {
        let cut = scratch.len() - q;
        nth_smallest(&mut scratch, cut);
        scratch.drain(..cut);
    }
    scratch.into_iter().map(|e| (e.id, e.val)).collect()
}

/// q-MAX over a `(W, τ)`-slack window with hierarchical blocks —
/// Algorithm 4 of the paper.
///
/// Maintains `c` block layers; layer `ℓ ∈ {1..c}` cuts the stream into
/// blocks of `s·bᶜ⁻ℓ` items where `s ≈ Wτ` is the base block and
/// `b ≈ τ^{-1/c}` the branching factor. Every arrival updates all `c`
/// layers (`O(c)` update); a query merges the coarsest layer whole and
/// patches the uncovered old-end of the window with `≤ b` blocks from
/// each finer layer, for `O(q·c·b)` query time.
#[derive(Debug, Clone)]
pub struct HierSlackQMax<I, V, B = AmortizedQMax<I, V>> {
    q: usize,
    /// Base (finest) block size `s ≈ ⌈Wτ⌉`.
    base: usize,
    /// Branching factor `b ≈ ⌈τ^{-1/c}⌉`.
    branch: usize,
    /// `rings[ℓ-1]` is layer ℓ; layer 1 (index 0) is the coarsest.
    rings: Vec<BlockRing<I, V, B>>,
    /// Block sizes per layer, `sizes[ℓ-1] = s · b^{c-ℓ}`.
    sizes: Vec<usize>,
    /// Total items inserted.
    count: u64,
}

/// [`HierSlackQMax`] with structure-of-arrays blocks.
pub type SoaHierSlackQMax<I, V> = HierSlackQMax<I, V, SoaAmortizedQMax<I, V>>;

impl<I: Clone, V: Ord + Clone> HierSlackQMax<I, V> {
    /// Creates a hierarchical slack-window q-MAX with `c` layers over
    /// windows of `w` items with slack `tau` and per-block space-slack
    /// `gamma`, backed by array-of-structs [`AmortizedQMax`] blocks.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`, `w == 0`, `c == 0`, or `tau` outside `(0, 1]`.
    /// Use [`HierSlackQMax::try_new`] at fallible API boundaries.
    pub fn new(q: usize, gamma: f64, w: usize, tau: f64, c: usize) -> Self {
        Self::try_new(q, gamma, w, tau, c).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`HierSlackQMax::new`]: rejects `q == 0`, bad `gamma`,
    /// `w == 0`, `c == 0`, and `tau` outside `(0, 1]` instead of
    /// panicking.
    pub fn try_new(
        q: usize,
        gamma: f64,
        w: usize,
        tau: f64,
        c: usize,
    ) -> Result<Self, crate::QMaxError> {
        Self::try_with_backend(w, tau, c, AmortizedQMax::try_new(q, gamma)?)
    }
}

/// [`HierSlackQMax`] with per-block adaptive backends keyed on the
/// finest layer's expected block fill.
pub type AdaptiveHierSlackQMax<I, V> = HierSlackQMax<I, V, AdaptiveBackend<I, V>>;

impl<I: Copy + 'static, V: Ord + Copy + 'static> AdaptiveHierSlackQMax<I, V> {
    /// Like [`HierSlackQMax::new`], but every block delegates to the
    /// layout the global backend policy picks. No lifetime fill hint is
    /// passed: the coarser rings absorb merged batches from every block
    /// below them, so each block's lifetime arrivals are amplified far
    /// past the finest layer's base block size — the compaction-heavy
    /// regime the hint-less (unbounded) policy path models.
    pub fn new_adaptive(q: usize, gamma: f64, w: usize, tau: f64, c: usize) -> Self {
        Self::try_new_adaptive(q, gamma, w, tau, c).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`AdaptiveHierSlackQMax::new_adaptive`].
    pub fn try_new_adaptive(
        q: usize,
        gamma: f64,
        w: usize,
        tau: f64,
        c: usize,
    ) -> Result<Self, crate::QMaxError> {
        let proto = AdaptiveBackend::try_with_fill_hint(q, gamma, None)?;
        Self::try_with_backend(w, tau, c, proto)
    }
}

impl<I: Copy + 'static, V: Ord + Copy + 'static> SoaHierSlackQMax<I, V> {
    /// Like [`HierSlackQMax::new`], but every block is a
    /// structure-of-arrays [`SoaAmortizedQMax`].
    pub fn new_soa(q: usize, gamma: f64, w: usize, tau: f64, c: usize) -> Self {
        assert!(q > 0, "q must be positive");
        Self::with_backend(w, tau, c, SoaAmortizedQMax::new(q, gamma))
    }
}

impl<I, V: Ord, B: IntervalBackend<I, V>> HierSlackQMax<I, V, B> {
    /// Creates a hierarchical slack-window q-MAX whose blocks are
    /// stamped out of the given backend prototype.
    ///
    /// # Panics
    ///
    /// Panics if `w == 0`, `c == 0`, or `tau` outside `(0, 1]`. Use
    /// [`HierSlackQMax::try_with_backend`] at fallible API boundaries.
    pub fn with_backend(w: usize, tau: f64, c: usize, proto: B) -> Self {
        Self::try_with_backend(w, tau, c, proto).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`HierSlackQMax::with_backend`].
    pub fn try_with_backend(
        w: usize,
        tau: f64,
        c: usize,
        proto: B,
    ) -> Result<Self, crate::QMaxError> {
        crate::error::check_window(w, tau)?;
        if c == 0 {
            return Err(crate::QMaxError::ZeroLayers);
        }
        let branch = ((1.0 / tau).powf(1.0 / c as f64)).ceil() as usize;
        let branch = branch.max(2);
        // Effective total blocks at the finest layer: b^c; base block
        // sized so the finest layer spans at least w.
        let total_fine = branch.pow(c as u32);
        let base = w.div_ceil(total_fine).max(1);
        let mut rings = Vec::with_capacity(c);
        let mut sizes = Vec::with_capacity(c);
        for level in 1..=c {
            let size = base * branch.pow((c - level) as u32);
            // Layer ℓ has b^ℓ blocks: the current partial one plus
            // b^ℓ − 1 full ones, spanning between w − size and w items.
            let blocks = branch.pow(level as u32);
            sizes.push(size);
            rings.push(BlockRing::from_proto(blocks, &proto));
        }
        Ok(HierSlackQMax {
            q: proto.q(),
            base,
            branch,
            rings,
            sizes,
            count: 0,
        })
    }

    /// The branching factor `b`.
    pub fn branch(&self) -> usize {
        self.branch
    }

    /// The finest block size.
    pub fn base_block(&self) -> usize {
        self.base
    }

    /// The effective window length `base · bᶜ`.
    pub fn effective_window(&self) -> usize {
        self.base * self.branch.pow(self.rings.len() as u32)
    }

    /// Advances every ring whose block boundary coincides with the
    /// current item count.
    fn advance_full_rings(&mut self) {
        for (ring, &size) in self.rings.iter_mut().zip(&self.sizes) {
            if self.count.is_multiple_of(size as u64) {
                ring.advance();
            }
        }
    }
}

impl<I: Clone, V: Ord + Clone, B: IntervalBackend<I, V>> QMax<I, V> for HierSlackQMax<I, V, B> {
    fn insert(&mut self, id: I, val: V) -> bool {
        let last = self.rings.len() - 1;
        for ring in &mut self.rings[..last] {
            ring.add(id.clone(), val.clone());
        }
        self.rings[last].add(id, val);
        self.count += 1;
        self.advance_full_rings();
        true
    }

    fn query(&mut self) -> Vec<(I, V)> {
        let mut scratch = Vec::new();
        let w_eff = self.effective_window() as u64;
        // Coarsest layer: merge everything it retains. It covers
        // [start_1, count) with start_1 aligned down to its block size.
        self.rings[0].collect_all(&mut scratch);
        let covered_start = |ring: &BlockRing<I, V, B>, size: u64, count: u64| -> u64 {
            let retained = (ring.n_blocks() as u64 - 1).min(ring.epoch);
            (count / size) * size - retained * size
        };
        let mut frontier = covered_start(&self.rings[0], self.sizes[0] as u64, self.count);
        let target = self.count.saturating_sub(w_eff);
        // Finer layers: patch [layer_start, frontier) with their oldest
        // retained blocks.
        for (ring, &size) in self.rings.iter().zip(&self.sizes).skip(1) {
            if frontier <= target {
                break;
            }
            let size = size as u64;
            let start = covered_start(ring, size, self.count);
            if start >= frontier {
                continue;
            }
            let m = ((frontier - start) / size) as usize;
            let m = m.min(ring.n_blocks() - 1);
            ring.collect_oldest(m, &mut scratch);
            frontier = start;
        }
        top_q_entries(scratch, self.q)
    }

    fn reset(&mut self) {
        for r in &mut self.rings {
            r.reset();
        }
        self.count = 0;
    }

    fn q(&self) -> usize {
        self.q
    }

    fn len(&self) -> usize {
        self.rings
            .iter()
            .flat_map(|r| r.blocks.iter())
            .map(|b| b.len())
            .sum()
    }

    /// Always `None` — see [`BasicSlackQMax::threshold`].
    fn threshold(&self) -> Option<V> {
        None
    }

    fn name(&self) -> &'static str {
        "slack-hier"
    }

    /// The per-block backend's label (every layer's blocks are stamped
    /// from the same prototype).
    fn backend_label(&self) -> &'static str {
        self.rings[0].blocks[0].backend_label()
    }
}

impl<I: Clone, V: Ord + Clone, B: IntervalBackend<I, V>> BatchInsert<I, V>
    for HierSlackQMax<I, V, B>
{
    /// Splits the batch at the nearest block boundary across *all*
    /// layers, multicasts each span to every layer's current block, and
    /// advances exactly the rings a singleton loop would advance.
    fn insert_batch(&mut self, items: &[(I, V)]) -> usize {
        let mut i = 0;
        while i < items.len() {
            let mut take = items.len() - i;
            for &size in &self.sizes {
                let room = size as u64 - (self.count % size as u64);
                take = take.min(room as usize);
            }
            for ring in &mut self.rings {
                ring.add_batch(&items[i..i + take]);
            }
            self.count += take as u64;
            self.advance_full_rings();
            i += take;
        }
        items.len()
    }
}

/// q-MAX over a `(W, τ)`-slack window with a lazy front buffer —
/// Theorem 7 of the paper.
///
/// A single interval q-MAX absorbs every arrival; when a base block of
/// `≈ Wτ` items completes, only its top-`q` summary is pushed into the
/// hierarchical layers. Most arrivals therefore touch exactly one
/// structure, giving `O(1)` amortized update with the hierarchical
/// query cost.
#[derive(Debug, Clone)]
pub struct LazySlackQMax<I, V, B = AmortizedQMax<I, V>> {
    q: usize,
    front: B,
    hier: HierSlackQMax<I, V, B>,
    /// Items inserted into the current base block.
    fill: usize,
    /// Deferred-feed queue (deamortized mode): the previous block's
    /// summary, drained a few items per arrival instead of in one
    /// burst. `None` in the default (immediate-feed) mode.
    pending: Option<std::collections::VecDeque<(I, V)>>,
    /// Counter padding still owed to the layers for the pending block.
    pending_pad: usize,
    /// Items drained from `pending` per arrival.
    drain_rate: usize,
}

/// [`LazySlackQMax`] with a structure-of-arrays front buffer and blocks.
pub type SoaLazySlackQMax<I, V> = LazySlackQMax<I, V, SoaAmortizedQMax<I, V>>;

impl<I: Clone, V: Ord + Clone> LazySlackQMax<I, V> {
    /// Creates a lazy slack-window q-MAX with `c` layers over windows of
    /// `w` items with slack `tau` and space-slack `gamma`, backed by
    /// array-of-structs [`AmortizedQMax`] blocks.
    ///
    /// # Panics
    ///
    /// Same conditions as [`HierSlackQMax::new`]. Use
    /// [`LazySlackQMax::try_new`] at fallible API boundaries.
    pub fn new(q: usize, gamma: f64, w: usize, tau: f64, c: usize) -> Self {
        Self::try_new(q, gamma, w, tau, c).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`LazySlackQMax::new`].
    pub fn try_new(
        q: usize,
        gamma: f64,
        w: usize,
        tau: f64,
        c: usize,
    ) -> Result<Self, crate::QMaxError> {
        Self::try_with_backend(w, tau, c, AmortizedQMax::try_new(q, gamma)?)
    }

    /// Like [`LazySlackQMax::new`], but the per-block summary feed into
    /// the layers is itself spread across the *next* block's arrivals
    /// (the de-amortization the paper sketches after Theorem 7), so no
    /// arrival pays the `O(q·c)` feed burst. The layers consequently
    /// lag the stream by one base block — one extra block of window
    /// slack. The remaining per-block spike is the `O(q(1+γ))` summary
    /// extraction from the front buffer.
    pub fn new_deamortized(q: usize, gamma: f64, w: usize, tau: f64, c: usize) -> Self {
        assert!(q > 0, "q must be positive");
        Self::with_backend_deamortized(w, tau, c, AmortizedQMax::new(q, gamma))
    }
}

/// [`LazySlackQMax`] with an adaptive front buffer and blocks.
pub type AdaptiveLazySlackQMax<I, V> = LazySlackQMax<I, V, AdaptiveBackend<I, V>>;

impl<I: Copy + 'static, V: Ord + Copy + 'static> AdaptiveLazySlackQMax<I, V> {
    /// Like [`LazySlackQMax::new`], but the front buffer and every
    /// block delegate to the layout the global backend policy picks. No
    /// lifetime fill hint is passed: the front buffer and the coarser
    /// rings absorb merged batches (every arrival funnels through the
    /// front; coarse blocks absorb every block below them), so block
    /// lifetimes sit in the compaction-heavy regime the hint-less
    /// policy path models.
    pub fn new_adaptive(q: usize, gamma: f64, w: usize, tau: f64, c: usize) -> Self {
        Self::try_new_adaptive(q, gamma, w, tau, c).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`AdaptiveLazySlackQMax::new_adaptive`].
    pub fn try_new_adaptive(
        q: usize,
        gamma: f64,
        w: usize,
        tau: f64,
        c: usize,
    ) -> Result<Self, crate::QMaxError> {
        let proto = AdaptiveBackend::try_with_fill_hint(q, gamma, None)?;
        Self::try_with_backend(w, tau, c, proto)
    }

    /// [`LazySlackQMax::new_deamortized`] over adaptive backends.
    pub fn new_adaptive_deamortized(q: usize, gamma: f64, w: usize, tau: f64, c: usize) -> Self {
        assert!(q > 0, "q must be positive");
        assert!(c > 0, "c must be positive");
        let proto =
            AdaptiveBackend::try_with_fill_hint(q, gamma, None).unwrap_or_else(|e| panic!("{e}"));
        Self::with_backend_deamortized(w, tau, c, proto)
    }
}

impl<I: Copy + 'static, V: Ord + Copy + 'static> SoaLazySlackQMax<I, V> {
    /// Like [`LazySlackQMax::new`], but the front buffer and every block
    /// are structure-of-arrays [`SoaAmortizedQMax`] instances.
    pub fn new_soa(q: usize, gamma: f64, w: usize, tau: f64, c: usize) -> Self {
        assert!(q > 0, "q must be positive");
        Self::with_backend(w, tau, c, SoaAmortizedQMax::new(q, gamma))
    }

    /// [`LazySlackQMax::new_deamortized`] over structure-of-arrays
    /// backends.
    pub fn new_soa_deamortized(q: usize, gamma: f64, w: usize, tau: f64, c: usize) -> Self {
        assert!(q > 0, "q must be positive");
        Self::with_backend_deamortized(w, tau, c, SoaAmortizedQMax::new(q, gamma))
    }
}

impl<I: Clone, V: Ord + Clone, B: IntervalBackend<I, V>> LazySlackQMax<I, V, B> {
    /// Creates a lazy slack-window q-MAX whose front buffer and blocks
    /// are stamped out of the given backend prototype.
    ///
    /// # Panics
    ///
    /// Same conditions as [`HierSlackQMax::with_backend`]. Use
    /// [`LazySlackQMax::try_with_backend`] at fallible API boundaries.
    pub fn with_backend(w: usize, tau: f64, c: usize, proto: B) -> Self {
        Self::try_with_backend(w, tau, c, proto).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`LazySlackQMax::with_backend`].
    pub fn try_with_backend(
        w: usize,
        tau: f64,
        c: usize,
        proto: B,
    ) -> Result<Self, crate::QMaxError> {
        let front = proto.fresh();
        let hier = HierSlackQMax::try_with_backend(w, tau, c, proto)?;
        Ok(LazySlackQMax {
            q: hier.q,
            front,
            hier,
            fill: 0,
            pending: None,
            pending_pad: 0,
            drain_rate: 0,
        })
    }

    /// [`LazySlackQMax::new_deamortized`] with a caller-chosen backend
    /// prototype.
    pub fn with_backend_deamortized(w: usize, tau: f64, c: usize, proto: B) -> Self {
        let mut this = Self::with_backend(w, tau, c, proto);
        // Drain fast enough to empty a q-item summary well within the
        // base block, with constant-bounded work per arrival whenever
        // W = Omega(q / tau) as Theorem 7 assumes.
        this.drain_rate = this.q.div_ceil(this.hier.base_block()) * 2 + 2;
        this.pending = Some(std::collections::VecDeque::new());
        this
    }

    /// Feeds up to `k` deferred summary items into the layers.
    fn drain_pending(&mut self, k: usize) {
        let Some(pending) = &mut self.pending else {
            return;
        };
        for _ in 0..k {
            match pending.pop_front() {
                Some((id, val)) => {
                    self.pending_pad -= 1;
                    self.hier.insert(id, val);
                }
                None => break,
            }
        }
    }

    /// Forces the deferred queue empty and settles the owed counter
    /// padding so layer block boundaries stay stream-aligned.
    fn flush_pending(&mut self) {
        self.drain_pending(usize::MAX);
        let pad = self.pending_pad;
        self.pending_pad = 0;
        if pad == 0 {
            return;
        }
        self.hier.count += pad as u64;
        for (ring, &size) in self.hier.rings.iter_mut().zip(&self.hier.sizes) {
            let before = (self.hier.count - pad as u64) / size as u64;
            let after = self.hier.count / size as u64;
            for _ in before..after {
                ring.advance();
            }
        }
    }

    /// Closes the current base block: extracts the front buffer's top-q
    /// summary **without consuming the buffer** (it is recycled in place
    /// right after), pushes it into the layers (or queues it in deferred
    /// mode), and settles the layers' counter padding.
    fn complete_block(&mut self) {
        let mut summary = Vec::new();
        self.front.top_q_into(&mut summary);
        if self.pending.is_some() {
            // Deferred mode: settle the previous block completely,
            // then queue this block's summary for lazy feeding.
            self.flush_pending();
            self.pending_pad = self.hier.base_block();
            let base = self.hier.base_block();
            let pending = self.pending.as_mut().expect("deferred mode");
            pending.extend(summary.into_iter().take(base).map(|e| (e.id, e.val)));
        } else {
            // Immediate mode: push the block's top-q summary into
            // every layer through the batch path (identical admissions
            // and ring advances to the singleton loop, without a
            // per-item dispatch on the summary — the merge feed is as
            // hot as the arrival path at small τ), then pad the
            // layers' item counters to keep block boundaries aligned
            // with real stream positions.
            let pad = self.hier.base_block() - summary.len().min(self.hier.base_block());
            let batch: Vec<(I, V)> = summary.into_iter().map(|e| (e.id, e.val)).collect();
            self.hier.insert_batch(&batch);
            self.hier.count += pad as u64;
            for (ring, &size) in self.hier.rings.iter_mut().zip(&self.hier.sizes) {
                let before = (self.hier.count - pad as u64) / size as u64;
                let after = self.hier.count / size as u64;
                for _ in before..after {
                    ring.advance();
                }
            }
        }
        self.front.reset();
        self.fill = 0;
    }

    /// The effective window length.
    pub fn effective_window(&self) -> usize {
        self.hier.effective_window()
    }

    /// The base-block (summary) size — the granularity of the window
    /// slack.
    pub fn base_block(&self) -> usize {
        self.hier.base_block()
    }
}

impl<I: Clone, V: Ord + Clone, B: IntervalBackend<I, V>> QMax<I, V> for LazySlackQMax<I, V, B> {
    fn insert(&mut self, id: I, val: V) -> bool {
        if self.pending.is_some() {
            self.drain_pending(self.drain_rate);
        }
        self.front.insert(id, val);
        self.fill += 1;
        if self.fill == self.hier.base_block() {
            self.complete_block();
        }
        true
    }

    fn query(&mut self) -> Vec<(I, V)> {
        let mut scratch = Vec::new();
        self.front.candidates_into(&mut scratch);
        if let Some(pending) = &self.pending {
            // Deferred items are recent and still in the window.
            scratch.extend(
                pending
                    .iter()
                    .map(|(id, val)| Entry::new(id.clone(), val.clone())),
            );
        }
        for (id, val) in self.hier.query() {
            scratch.push(Entry::new(id, val));
        }
        top_q_entries(scratch, self.q)
    }

    fn reset(&mut self) {
        self.front.reset();
        self.hier.reset();
        self.fill = 0;
        if let Some(pending) = &mut self.pending {
            pending.clear();
        }
        self.pending_pad = 0;
    }

    fn q(&self) -> usize {
        self.q
    }

    fn len(&self) -> usize {
        self.front.len() + self.hier.len() + self.pending.as_ref().map_or(0, |p| p.len())
    }

    /// Always `None`. The front buffer does have an internal Ψ, but
    /// block boundaries are defined by *arrival counts* (`fill`), so an
    /// external prefilter dropping items before they are counted would
    /// shift every boundary — see [`BasicSlackQMax::threshold`].
    fn threshold(&self) -> Option<V> {
        None
    }

    fn name(&self) -> &'static str {
        if self.pending.is_some() {
            "slack-lazy-wc"
        } else {
            "slack-lazy"
        }
    }

    /// The front buffer's backend label (the layers' blocks are stamped
    /// from the same prototype).
    fn backend_label(&self) -> &'static str {
        self.front.backend_label()
    }
}

impl<I: Clone, V: Ord + Clone, B: IntervalBackend<I, V>> BatchInsert<I, V>
    for LazySlackQMax<I, V, B>
{
    /// Splits the batch at base-block boundaries and feeds each span to
    /// the front buffer's batch kernel. In deferred mode the pending
    /// queue is drained by `drain_rate` per *arrival* (one bulk drain of
    /// `drain_rate · span` items per span), which drains exactly as many
    /// items as the singleton loop would have by each block boundary —
    /// refills only happen at boundaries, where spans end.
    fn insert_batch(&mut self, items: &[(I, V)]) -> usize {
        let mut i = 0;
        while i < items.len() {
            let take = (self.hier.base_block() - self.fill).min(items.len() - i);
            if self.pending.is_some() {
                self.drain_pending(self.drain_rate.saturating_mul(take));
            }
            self.front.insert_batch(&items[i..i + take]);
            self.fill += take;
            i += take;
            if self.fill == self.hier.base_block() {
                self.complete_block();
            }
        }
        items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Checks the slack-window contract at the current position: the
    /// result must equal the top-q of *some* suffix whose length is
    /// between `min_len` and `max_len`.
    fn assert_slack_window_result(
        vals: &[u64],
        result: &mut Vec<u64>,
        q: usize,
        min_len: usize,
        max_len: usize,
    ) {
        result.sort_unstable();
        let n = vals.len();
        for len in min_len..=max_len.min(n) {
            let mut expect: Vec<u64> = vals[n - len..].to_vec();
            expect.sort_unstable_by(|a, b| b.cmp(a));
            expect.truncate(q);
            expect.sort_unstable();
            if expect == *result {
                return;
            }
        }
        panic!(
            "result {result:?} does not match the top-{q} of any window of \
             length {min_len}..={max_len} at position {n}"
        );
    }

    #[test]
    fn basic_matches_some_valid_window() {
        let mut state = 9u64;
        let q = 4;
        let w = 128;
        let tau = 0.25;
        let mut sw = BasicSlackQMax::new(q, 0.5, w, tau);
        let s = sw.block_size();
        let w_eff = sw.effective_window();
        let mut vals = Vec::new();
        for i in 0..5000u64 {
            let v = splitmix(&mut state) % 1_000_000;
            vals.push(v);
            sw.insert(i as u32, v);
            if i % 37 == 0 && vals.len() >= w_eff {
                let mut got: Vec<u64> = sw.query().into_iter().map(|(_, v)| v).collect();
                assert_slack_window_result(&vals, &mut got, q, w_eff - s, w_eff);
            }
        }
    }

    #[test]
    fn basic_early_stream_returns_global_top() {
        let mut sw = BasicSlackQMax::new(3, 1.0, 1000, 0.1);
        for v in [5u64, 100, 3, 42] {
            sw.insert(v as u32, v);
        }
        let mut got: Vec<u64> = sw.query().into_iter().map(|(_, v)| v).collect();
        got.sort_unstable();
        assert_eq!(got, vec![5, 42, 100]);
    }

    #[test]
    fn partial_query_isolates_block_ranges() {
        // 4 blocks of 25 items; values encode their block so ranges
        // are verifiable.
        let q = 3;
        let mut sw = BasicSlackQMax::new(q, 0.5, 100, 0.25);
        assert_eq!(sw.block_size(), 25);
        for i in 0..100u64 {
            let block = i / 25; // 0..=3; block 3 is the current one
            sw.insert(i as u32, block * 1000 + i);
        }
        // Note: at i=100 the ring advanced and block 0 was recycled;
        // re-fill so all four retained blocks are known.
        // Blocks ago: 0 = current (empty after advance). Query blocks
        // 1..=3 (the three full ones).
        let got: Vec<u64> = sw.query_partial(1, 1).into_iter().map(|(_, v)| v).collect();
        // 1 block ago = the newest full block (values 3000..).
        assert!(
            got.iter().all(|&v| v >= 3000),
            "wrong block isolated: {got:?}"
        );
        let got: Vec<u64> = sw.query_partial(3, 3).into_iter().map(|(_, v)| v).collect();
        assert!(
            got.iter().all(|&v| (1000..2000).contains(&v)),
            "wrong oldest block: {got:?}"
        );
        // Full-range partial equals the regular query.
        let mut all: Vec<u64> = sw
            .query_partial(0, sw.n_blocks() - 1)
            .into_iter()
            .map(|(_, v)| v)
            .collect();
        let mut q_all: Vec<u64> = sw.query().into_iter().map(|(_, v)| v).collect();
        all.sort_unstable();
        q_all.sort_unstable();
        assert_eq!(all, q_all);
    }

    #[test]
    #[should_panic(expected = "oldest exceeds retained")]
    fn partial_query_out_of_range_panics() {
        let mut sw: BasicSlackQMax<u32, u64> = BasicSlackQMax::new(2, 0.5, 100, 0.25);
        sw.query_partial(0, 4);
    }

    #[test]
    fn basic_expires_old_items() {
        let q = 2;
        let w = 64;
        let mut sw = BasicSlackQMax::new(q, 0.5, w, 0.25);
        // One huge value early, then > W small ones.
        sw.insert(0u32, 1_000_000u64);
        for i in 0..(2 * sw.effective_window() as u64) {
            sw.insert((i + 1) as u32, 10 + (i % 5));
        }
        let got: Vec<u64> = sw.query().into_iter().map(|(_, v)| v).collect();
        assert!(
            got.iter().all(|&v| v < 1_000_000),
            "expired maximum still reported: {got:?}"
        );
    }

    #[test]
    fn hier_matches_some_valid_window() {
        let mut state = 13u64;
        for c in [1usize, 2, 3] {
            let q = 3;
            let w = 216;
            let tau = 1.0 / 27.0;
            let mut sw = HierSlackQMax::new(q, 0.5, w, tau, c);
            let w_eff = sw.effective_window();
            let slack = sw.base_block();
            let mut vals = Vec::new();
            for i in 0..4000u64 {
                let v = splitmix(&mut state) % 100_000;
                vals.push(v);
                sw.insert(i as u32, v);
                if i % 53 == 0 && vals.len() >= w_eff {
                    let mut got: Vec<u64> = sw.query().into_iter().map(|(_, v)| v).collect();
                    assert_slack_window_result(&vals, &mut got, q, w_eff - slack + 1, w_eff);
                }
            }
        }
    }

    #[test]
    fn hier_expires_old_items() {
        let mut sw = HierSlackQMax::new(2, 0.5, 100, 0.1, 2);
        sw.insert(0u32, 999_999u64);
        for i in 0..(3 * sw.effective_window() as u64) {
            sw.insert((i + 1) as u32, 1 + (i % 7));
        }
        let got: Vec<u64> = sw.query().into_iter().map(|(_, v)| v).collect();
        assert!(
            got.iter().all(|&v| v < 999_999),
            "expired maximum survived: {got:?}"
        );
    }

    #[test]
    fn lazy_matches_some_valid_window() {
        let mut state = 99u64;
        let q = 3;
        let w = 256;
        let tau = 1.0 / 16.0;
        let mut sw = LazySlackQMax::new(q, 0.5, w, tau, 2);
        let w_eff = sw.effective_window();
        let slack = sw.base_block();
        let mut vals = Vec::new();
        for i in 0..6000u64 {
            let v = splitmix(&mut state) % 1_000_000;
            vals.push(v);
            sw.insert(i as u32, v);
            if i % 61 == 0 && vals.len() >= 2 * w_eff {
                let mut got: Vec<u64> = sw.query().into_iter().map(|(_, v)| v).collect();
                // The lazy variant's front buffer may under-represent a
                // block by the summary cut, but the top-q of the window
                // is always retained; allow the same slack contract.
                assert_slack_window_result(&vals, &mut got, q, w_eff - slack + 1, w_eff + slack);
            }
        }
    }

    #[test]
    fn deamortized_lazy_matches_some_valid_window() {
        let mut state = 123u64;
        let q = 3;
        let w = 256;
        let tau = 1.0 / 16.0;
        let mut sw = LazySlackQMax::new_deamortized(q, 0.5, w, tau, 2);
        let w_eff = sw.effective_window();
        let slack = sw.base_block();
        let mut vals = Vec::new();
        for i in 0..6000u64 {
            let v = splitmix(&mut state) % 1_000_000;
            vals.push(v);
            sw.insert(i as u32, v);
            if i % 73 == 0 && vals.len() >= 2 * w_eff {
                let mut got: Vec<u64> = sw.query().into_iter().map(|(_, v)| v).collect();
                // The deferred feed adds one base block of lag, so allow
                // two blocks of slack either way.
                assert_slack_window_result(
                    &vals,
                    &mut got,
                    q,
                    w_eff - 2 * slack + 1,
                    w_eff + 2 * slack,
                );
            }
        }
    }

    #[test]
    fn deamortized_lazy_tracks_recent_maximum() {
        let mut state = 77u64;
        let q = 2;
        let mut def = LazySlackQMax::new_deamortized(q, 0.5, 512, 0.125, 2);
        let w_eff = def.effective_window();
        let slack = def.base_block();
        let mut vals: Vec<u64> = Vec::new();
        for i in 0..20_000u64 {
            let v = splitmix(&mut state) % 100_000;
            vals.push(v);
            def.insert(i as u32, v);
            if i % 997 == 0 && vals.len() > 2 * w_eff {
                // Every valid answered window contains the core (the
                // recent items minus the slack fringes), so the q-th
                // largest of the answered window is at least the q-th
                // largest of the core.
                let core = &vals[vals.len() - (w_eff - 2 * slack)..];
                let mut core_sorted = core.to_vec();
                core_sorted.sort_unstable_by(|a, b| b.cmp(a));
                let core_qth = core_sorted[q - 1];
                let got: Vec<u64> = def.query().into_iter().map(|(_, v)| v).collect();
                let got_min = *got.iter().min().expect("q results");
                assert!(
                    got_min >= core_qth,
                    "reported min {got_min} below core q-th largest {core_qth} at i={i}"
                );
            }
        }
        assert_eq!(def.name(), "slack-lazy-wc");
    }

    #[test]
    fn lazy_expires_old_items() {
        let mut sw = LazySlackQMax::new(2, 0.5, 128, 0.125, 3);
        sw.insert(0u32, 42_000_000u64);
        for i in 0..(3 * sw.effective_window() as u64) {
            sw.insert((i + 1) as u32, 1 + (i % 9));
        }
        let got: Vec<u64> = sw.query().into_iter().map(|(_, v)| v).collect();
        assert!(got.iter().all(|&v| v < 42_000_000));
    }

    #[test]
    fn resets_clear_all_variants() {
        let mut b = BasicSlackQMax::new(2, 0.5, 50, 0.2);
        let mut h = HierSlackQMax::new(2, 0.5, 50, 0.2, 2);
        let mut l = LazySlackQMax::new(2, 0.5, 50, 0.2, 2);
        for i in 0..500u64 {
            b.insert(i as u32, i);
            h.insert(i as u32, i);
            l.insert(i as u32, i);
        }
        b.reset();
        h.reset();
        l.reset();
        assert_eq!(b.len(), 0);
        assert_eq!(h.len(), 0);
        assert_eq!(l.len(), 0);
        assert!(b.query().is_empty());
        assert!(h.query().is_empty());
        assert!(l.query().is_empty());
    }

    #[test]
    fn soa_windows_satisfy_the_slack_contract() {
        let mut state = 5u64;
        let q = 4;
        let w = 128;
        let tau = 0.25;
        let mut sw = SoaBasicSlackQMax::new_soa(q, 0.5, w, tau);
        let s = sw.block_size();
        let w_eff = sw.effective_window();
        let mut vals = Vec::new();
        for i in 0..5000u64 {
            let v = splitmix(&mut state) % 1_000_000;
            vals.push(v);
            sw.insert(i as u32, v);
            if i % 41 == 0 && vals.len() >= w_eff {
                let mut got: Vec<u64> = sw.query().into_iter().map(|(_, v)| v).collect();
                assert_slack_window_result(&vals, &mut got, q, w_eff - s, w_eff);
            }
        }
    }

    #[test]
    fn batch_insert_equals_singletons_across_variants() {
        let mut state = 17u64;
        let items: Vec<(u32, u64)> = (0..4000)
            .map(|i| (i as u32, splitmix(&mut state) % 100_000))
            .collect();
        for chunk in [1usize, 7, 64, 333, 1024] {
            let mut b_one = BasicSlackQMax::new(4, 0.5, 128, 0.25);
            let mut b_batch = BasicSlackQMax::new(4, 0.5, 128, 0.25);
            let mut h_one = HierSlackQMax::new(3, 0.5, 216, 1.0 / 27.0, 3);
            let mut h_batch = HierSlackQMax::new(3, 0.5, 216, 1.0 / 27.0, 3);
            let mut l_one = LazySlackQMax::new_deamortized(3, 0.5, 256, 1.0 / 16.0, 2);
            let mut l_batch = LazySlackQMax::new_deamortized(3, 0.5, 256, 1.0 / 16.0, 2);
            for &(id, v) in &items {
                b_one.insert(id, v);
                h_one.insert(id, v);
                l_one.insert(id, v);
            }
            for span in items.chunks(chunk) {
                b_batch.insert_batch(span);
                h_batch.insert_batch(span);
                l_batch.insert_batch(span);
            }
            let sorted = |mut v: Vec<(u32, u64)>| {
                v.sort_unstable();
                v
            };
            assert_eq!(
                sorted(b_one.query()),
                sorted(b_batch.query()),
                "basic chunk={chunk}"
            );
            assert_eq!(
                sorted(h_one.query()),
                sorted(h_batch.query()),
                "hier chunk={chunk}"
            );
            assert_eq!(
                sorted(l_one.query()),
                sorted(l_batch.query()),
                "lazy chunk={chunk}"
            );
        }
    }
}
