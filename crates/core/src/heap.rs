//! A from-scratch binary min-heap and the heap-based q-MAX baseline.

use crate::entry::Entry;
use crate::traits::{BatchInsert, QMax};

/// A binary min-heap (smallest element at the root).
///
/// This is the classical structure the paper's baseline uses to track
/// the `q` largest items: keep a min-heap of size `q`; a new item larger
/// than the root replaces it. Every replacement costs `O(log q)`.
#[derive(Debug, Clone, Default)]
pub struct MinHeap<T> {
    data: Vec<T>,
}

impl<T: Ord> MinHeap<T> {
    /// Creates an empty heap.
    pub fn new() -> Self {
        MinHeap { data: Vec::new() }
    }

    /// Creates an empty heap with room for `cap` elements.
    pub fn with_capacity(cap: usize) -> Self {
        MinHeap {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of stored elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The smallest element, if any.
    pub fn peek(&self) -> Option<&T> {
        self.data.first()
    }

    /// Inserts an element in `O(log n)`.
    pub fn push(&mut self, item: T) {
        self.data.push(item);
        self.sift_up(self.data.len() - 1);
    }

    /// Removes and returns the smallest element in `O(log n)`.
    pub fn pop(&mut self) -> Option<T> {
        if self.data.is_empty() {
            return None;
        }
        let last = self.data.len() - 1;
        self.data.swap(0, last);
        let out = self.data.pop();
        if !self.data.is_empty() {
            self.sift_down(0);
        }
        out
    }

    /// Replaces the smallest element with `item` in one `O(log n)`
    /// sift (cheaper than `pop` followed by `push`). Returns the
    /// replaced element.
    ///
    /// # Panics
    ///
    /// Panics if the heap is empty.
    pub fn replace_min(&mut self, item: T) -> T {
        assert!(!self.data.is_empty(), "replace_min on empty heap");
        let out = core::mem::replace(&mut self.data[0], item);
        self.sift_down(0);
        out
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Iterates over the elements in arbitrary (heap) order.
    pub fn iter(&self) -> core::slice::Iter<'_, T> {
        self.data.iter()
    }

    /// Consumes the heap, returning its backing storage in heap order.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.data[i] < self.data[parent] {
                self.data.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.data.len();
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut smallest = i;
            if l < n && self.data[l] < self.data[smallest] {
                smallest = l;
            }
            if r < n && self.data[r] < self.data[smallest] {
                smallest = r;
            }
            if smallest == i {
                return;
            }
            self.data.swap(i, smallest);
            i = smallest;
        }
    }
}

/// The heap-based q-MAX baseline: a size-`q` min-heap whose root is the
/// smallest retained value. `O(log q)` per update in the worst case.
///
/// ```
/// use qmax_core::{HeapQMax, QMax};
/// let mut qm = HeapQMax::new(2);
/// for v in [5u64, 1, 9, 3, 7] {
///     qm.insert(v as u32, v);
/// }
/// let mut top: Vec<u64> = qm.query().into_iter().map(|(_, v)| v).collect();
/// top.sort();
/// assert_eq!(top, vec![7, 9]);
/// ```
#[derive(Debug, Clone)]
pub struct HeapQMax<I, V> {
    q: usize,
    heap: MinHeap<Entry<I, V>>,
}

impl<I: Clone, V: Ord + Clone> HeapQMax<I, V> {
    /// Creates a heap-based q-MAX for the `q` largest items.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`.
    pub fn new(q: usize) -> Self {
        assert!(q > 0, "q must be positive");
        HeapQMax {
            q,
            heap: MinHeap::with_capacity(q),
        }
    }
}

impl<I: Clone, V: Ord + Clone> QMax<I, V> for HeapQMax<I, V> {
    fn insert(&mut self, id: I, val: V) -> bool {
        if self.heap.len() < self.q {
            self.heap.push(Entry::new(id, val));
            return true;
        }
        let min = self.heap.peek().expect("heap is full");
        if val <= min.val {
            return false;
        }
        self.heap.replace_min(Entry::new(id, val));
        true
    }

    fn query(&mut self) -> Vec<(I, V)> {
        self.heap
            .iter()
            .map(|e| (e.id.clone(), e.val.clone()))
            .collect()
    }

    fn reset(&mut self) {
        self.heap.clear();
    }

    fn q(&self) -> usize {
        self.q
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn threshold(&self) -> Option<V> {
        if self.heap.len() == self.q {
            self.heap.peek().map(|e| e.val.clone())
        } else {
            None
        }
    }

    fn name(&self) -> &'static str {
        "heap"
    }
}

impl<I: Clone, V: Ord + Clone> BatchInsert<I, V> for HeapQMax<I, V> {
    fn insert_batch(&mut self, items: &[(I, V)]) -> usize {
        let mut admitted = 0;
        for (id, val) in items {
            admitted += usize::from(self.insert(id.clone(), val.clone()));
        }
        admitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_sorts_via_pop() {
        let mut h = MinHeap::new();
        for v in [5, 1, 4, 1, 5, 9, 2, 6, 5, 3] {
            h.push(v);
        }
        let mut out = Vec::new();
        while let Some(v) = h.pop() {
            out.push(v);
        }
        assert_eq!(out, vec![1, 1, 2, 3, 4, 5, 5, 5, 6, 9]);
    }

    #[test]
    fn heap_replace_min() {
        let mut h = MinHeap::new();
        for v in [3, 7, 5] {
            h.push(v);
        }
        assert_eq!(h.replace_min(10), 3);
        assert_eq!(h.peek(), Some(&5));
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn heap_pop_empty() {
        let mut h: MinHeap<i32> = MinHeap::new();
        assert_eq!(h.pop(), None);
        assert!(h.is_empty());
    }

    #[test]
    #[should_panic(expected = "replace_min on empty heap")]
    fn heap_replace_min_empty_panics() {
        let mut h: MinHeap<i32> = MinHeap::new();
        h.replace_min(1);
    }

    #[test]
    fn heap_qmax_matches_reference() {
        let mut state = 3u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) % 1000
        };
        for q in [1usize, 5, 50] {
            let vals: Vec<u64> = (0..3000).map(|_| next()).collect();
            let mut qm = HeapQMax::new(q);
            for (i, &v) in vals.iter().enumerate() {
                qm.insert(i as u32, v);
            }
            let mut got: Vec<u64> = qm.query().into_iter().map(|(_, v)| v).collect();
            got.sort_unstable();
            let mut expect = vals.clone();
            expect.sort_unstable_by(|a, b| b.cmp(a));
            expect.truncate(q);
            expect.sort_unstable();
            assert_eq!(got, expect, "q={q}");
        }
    }

    #[test]
    fn heap_interleaved_push_pop_replace() {
        let mut h = MinHeap::new();
        let mut state = 11u64;
        let mut reference: Vec<u64> = Vec::new();
        for step in 0..5000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let v = (state >> 33) % 1000;
            match step % 4 {
                0 | 1 => {
                    h.push(v);
                    reference.push(v);
                }
                2 => {
                    let got = h.pop();
                    reference.sort_unstable();
                    let expect = if reference.is_empty() {
                        None
                    } else {
                        Some(reference.remove(0))
                    };
                    assert_eq!(got, expect);
                }
                _ => {
                    if !h.is_empty() {
                        let got = h.replace_min(v);
                        reference.sort_unstable();
                        assert_eq!(got, reference[0]);
                        reference[0] = v;
                    }
                }
            }
            assert_eq!(h.len(), reference.len());
        }
    }

    #[test]
    fn heap_into_vec_preserves_elements() {
        let mut h = MinHeap::new();
        for v in [9, 2, 7, 4] {
            h.push(v);
        }
        let mut out = h.into_vec();
        out.sort_unstable();
        assert_eq!(out, vec![2, 4, 7, 9]);
    }

    #[test]
    fn heap_qmax_threshold_is_current_min() {
        let mut qm = HeapQMax::new(3);
        assert_eq!(qm.threshold(), None);
        for v in [10u64, 20, 30, 40] {
            qm.insert(v as u32, v);
        }
        assert_eq!(qm.threshold(), Some(20));
        assert!(!qm.insert(0, 20), "equal to min is rejected");
        assert!(qm.insert(1, 21));
    }
}
