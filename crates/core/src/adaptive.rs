//! Per-block adaptive backend: AoS or SoA, chosen by the calibrated
//! [`BackendPolicy`].
//!
//! [`AdaptiveBackend`] is an [`IntervalBackend`] that delegates every
//! operation to either the array-of-structs [`AmortizedQMax`] (scalar
//! admit loop, no kernel handle — the small-block fast path) or the
//! structure-of-arrays [`SoaAmortizedQMax`] (kernel-dispatched batch
//! admit over split lanes). The choice is made **once at construction**
//! from three inputs:
//!
//! * the block's capacity `⌈q(1+γ)⌉` and an optional *lifetime fill*
//!   hint — how many items the block is expected to see before it is
//!   recycled. The basic slack window passes its per-block fill
//!   (`W·τ`-shaped), which is the true discriminator: block capacity
//!   is the same at every τ, but the items a block sees over its life
//!   shrink linearly with it, and a block whose lifetime fill stays
//!   below capacity never compacts at all — the append-only regime
//!   where AoS wins no matter what the calibration measured. Merge-fed
//!   structures (hierarchical/lazy rings) pass `None`: their blocks
//!   absorb batches from every block below, so they live in the
//!   compaction-heavy regime where the calibrated crossover decides;
//! * the process-wide calibrated crossover
//!   ([`BackendPolicy::global`]), overridable via the
//!   `QMAX_BACKEND_POLICY` environment variable (`auto` / `force-aos`
//!   / `force-soa`, composing with `QMAX_FORCE_SCALAR`);
//! * the value-lane type: under `auto`, non-`u64` lanes (e.g.
//!   [`OrderedF64`](crate::OrderedF64) decay scores) route straight to
//!   AoS — the SIMD tiers cannot engage there, so the SoA layout's
//!   per-chunk overhead buys nothing.
//!
//! Because the two delegates are behavioral twins (same admissions,
//! same Ψ trajectory, same top-q value multiset; ids tie-break
//! arbitrarily), the choice is observable only through
//! [`QMax::backend_label`] and performance — never through query
//! results. The differential property suite in
//! `tests/proptest_adaptive.rs` pins this down.

use crate::amortized::AmortizedQMax;
use crate::entry::Entry;
use crate::soa::SoaAmortizedQMax;
use crate::traits::{BatchInsert, IntervalBackend, QMax};
use qmax_select::{lane_is_u64, BackendChoice, BackendPolicy, PolicyMode};

/// An interval backend that delegates to AoS or SoA per constructed
/// block capacity and expected fill (see the module docs).
///
/// ```
/// use qmax_core::{AdaptiveBackend, BatchInsert, QMax};
/// let mut qm = AdaptiveBackend::new(2, 0.5);
/// let items: Vec<(u32, u64)> = (0u64..100).map(|v| (v as u32, v)).collect();
/// qm.insert_batch(&items);
/// let mut top: Vec<u64> = qm.query().into_iter().map(|(_, v)| v).collect();
/// top.sort();
/// assert_eq!(top, vec![98, 99]);
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveBackend<I, V> {
    inner: Inner<I, V>,
}

#[derive(Debug, Clone)]
enum Inner<I, V> {
    Aos(AmortizedQMax<I, V>),
    Soa(SoaAmortizedQMax<I, V>),
}

impl<I: Copy + 'static, V: Ord + Copy + 'static> AdaptiveBackend<I, V> {
    /// Creates an adaptive q-MAX for the `q` largest items with
    /// space-slack `gamma`, letting the global policy pick the layout
    /// with no fill hint (the block is assumed to fill to capacity —
    /// the plain interval use).
    ///
    /// # Panics
    ///
    /// Panics if `q == 0` or `gamma` is not a positive finite number.
    /// Use [`AdaptiveBackend::try_new`] at fallible API boundaries.
    pub fn new(q: usize, gamma: f64) -> Self {
        Self::try_new(q, gamma).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`AdaptiveBackend::new`].
    pub fn try_new(q: usize, gamma: f64) -> Result<Self, crate::QMaxError> {
        Self::try_with_policy(q, gamma, None, BackendPolicy::global())
    }

    /// Like [`AdaptiveBackend::new`], with a lifetime fill hint: how
    /// many items this block is expected to see before it is recycled.
    /// The basic slack window passes its per-block size here; merge-fed
    /// structures pass `None` (see the module docs).
    pub fn with_fill_hint(q: usize, gamma: f64, expected_fill: Option<usize>) -> Self {
        Self::try_with_fill_hint(q, gamma, expected_fill).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`AdaptiveBackend::with_fill_hint`].
    pub fn try_with_fill_hint(
        q: usize,
        gamma: f64,
        expected_fill: Option<usize>,
    ) -> Result<Self, crate::QMaxError> {
        Self::try_with_policy(q, gamma, expected_fill, BackendPolicy::global())
    }

    /// Fully explicit constructor: tests and benchmarks pin a policy
    /// (mode + model) instead of consulting the process-global one.
    pub fn try_with_policy(
        q: usize,
        gamma: f64,
        expected_fill: Option<usize>,
        policy: &BackendPolicy,
    ) -> Result<Self, crate::QMaxError> {
        crate::error::check_q_gamma(q, gamma)?;
        let cap = (((q as f64) * (1.0 + gamma)).ceil() as usize).max(q + 1);
        let choice = if policy.mode() == PolicyMode::Auto && !lane_is_u64::<V>() {
            // The SIMD tiers only accept u64 value lanes; on any other
            // lane the SoA layout pays its chunk overhead for nothing.
            BackendChoice::Aos
        } else {
            policy.choose(cap, expected_fill)
        };
        let inner = match choice {
            BackendChoice::Aos => Inner::Aos(AmortizedQMax::try_new(q, gamma)?),
            BackendChoice::Soa => Inner::Soa(SoaAmortizedQMax::try_new(q, gamma)?),
        };
        Ok(AdaptiveBackend { inner })
    }

    /// Which layout the policy picked for this instance.
    pub fn choice(&self) -> BackendChoice {
        match &self.inner {
            Inner::Aos(_) => BackendChoice::Aos,
            Inner::Soa(_) => BackendChoice::Soa,
        }
    }

    /// Total buffer capacity `⌈q(1+γ)⌉` (same geometry either way).
    pub fn capacity(&self) -> usize {
        match &self.inner {
            Inner::Aos(b) => b.capacity(),
            Inner::Soa(b) => b.capacity(),
        }
    }

    /// Number of compactions (threshold recomputations) performed.
    pub fn compactions(&self) -> u64 {
        match &self.inner {
            Inner::Aos(b) => b.compactions(),
            Inner::Soa(b) => b.compactions(),
        }
    }

    /// Number of arrivals dropped by the admission filter.
    pub fn filtered(&self) -> u64 {
        match &self.inner {
            Inner::Aos(b) => b.filtered(),
            Inner::Soa(b) => b.filtered(),
        }
    }

    /// Compactions whose sampled pivot fell outside the tolerance band
    /// (exact either way; tracks sample quality).
    pub fn pivot_fallbacks(&self) -> u64 {
        match &self.inner {
            Inner::Aos(b) => b.pivot_fallbacks(),
            Inner::Soa(b) => b.pivot_fallbacks(),
        }
    }
}

impl<I: Copy + 'static, V: Ord + Copy + 'static> QMax<I, V> for AdaptiveBackend<I, V> {
    #[inline]
    fn insert(&mut self, id: I, val: V) -> bool {
        match &mut self.inner {
            Inner::Aos(b) => b.insert(id, val),
            Inner::Soa(b) => b.insert(id, val),
        }
    }

    fn query(&mut self) -> Vec<(I, V)> {
        match &mut self.inner {
            Inner::Aos(b) => b.query(),
            Inner::Soa(b) => b.query(),
        }
    }

    fn reset(&mut self) {
        match &mut self.inner {
            Inner::Aos(b) => b.reset(),
            Inner::Soa(b) => b.reset(),
        }
    }

    fn q(&self) -> usize {
        match &self.inner {
            Inner::Aos(b) => QMax::q(b),
            Inner::Soa(b) => QMax::q(b),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        match &self.inner {
            Inner::Aos(b) => QMax::len(b),
            Inner::Soa(b) => QMax::len(b),
        }
    }

    #[inline]
    fn threshold(&self) -> Option<V> {
        match &self.inner {
            Inner::Aos(b) => b.threshold(),
            Inner::Soa(b) => b.threshold(),
        }
    }

    fn name(&self) -> &'static str {
        "qmax-adaptive"
    }

    fn backend_label(&self) -> &'static str {
        match &self.inner {
            Inner::Aos(_) => "qmax-adaptive-aos",
            Inner::Soa(_) => "qmax-adaptive-soa",
        }
    }
}

impl<I: Copy + 'static, V: Ord + Copy + 'static> BatchInsert<I, V> for AdaptiveBackend<I, V> {
    #[inline]
    fn insert_batch(&mut self, items: &[(I, V)]) -> usize {
        match &mut self.inner {
            Inner::Aos(b) => b.insert_batch(items),
            Inner::Soa(b) => b.insert_batch(items),
        }
    }
}

impl<I: Copy + 'static, V: Ord + Copy + 'static> crate::checkpoint::Checkpoint<I, V>
    for AdaptiveBackend<I, V>
{
    /// Delegates to the chosen layout; the snapshot format is layout-
    /// independent, so a snapshot taken from an AoS block restores into
    /// a SoA block of the same geometry and vice versa.
    fn snapshot(&self) -> crate::checkpoint::BackendSnapshot<I, V> {
        match &self.inner {
            Inner::Aos(b) => b.snapshot(),
            Inner::Soa(b) => b.snapshot(),
        }
    }

    fn restore(&mut self, snap: &crate::checkpoint::BackendSnapshot<I, V>) {
        match &mut self.inner {
            Inner::Aos(b) => b.restore(snap),
            Inner::Soa(b) => b.restore(snap),
        }
    }
}

impl<I: Copy + 'static, V: Ord + Copy + 'static> IntervalBackend<I, V> for AdaptiveBackend<I, V> {
    /// Fresh instances keep the prototype's choice: the policy decided
    /// once for this capacity/fill shape, and a window stamping blocks
    /// out of one prototype must get a homogeneous ring.
    fn fresh(&self) -> Self {
        AdaptiveBackend {
            inner: match &self.inner {
                Inner::Aos(b) => Inner::Aos(IntervalBackend::fresh(b)),
                Inner::Soa(b) => Inner::Soa(IntervalBackend::fresh(b)),
            },
        }
    }

    fn capacity(&self) -> usize {
        match &self.inner {
            Inner::Aos(b) => IntervalBackend::capacity(b),
            Inner::Soa(b) => IntervalBackend::capacity(b),
        }
    }

    fn candidates_into(&self, out: &mut Vec<Entry<I, V>>) {
        match &self.inner {
            Inner::Aos(b) => b.candidates_into(out),
            Inner::Soa(b) => b.candidates_into(out),
        }
    }

    fn top_q_into(&self, out: &mut Vec<Entry<I, V>>) {
        match &self.inner {
            Inner::Aos(b) => b.top_q_into(out),
            Inner::Soa(b) => b.top_q_into(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OrderedF64;
    use qmax_select::{CostModel, KernelKind};

    fn policy(mode: PolicyMode, crossover: usize) -> BackendPolicy {
        BackendPolicy::new(
            mode,
            CostModel {
                kernel_kind: KernelKind::Scalar,
                aos_fixed_ns: 10.0,
                aos_per_item_ns: 2.0,
                soa_fixed_ns: 100.0,
                soa_per_item_ns: 1.0,
                crossover_items: crossover,
            },
        )
    }

    #[test]
    fn forced_modes_pick_their_layout() {
        let aos = AdaptiveBackend::<u32, u64>::try_with_policy(
            10,
            0.5,
            None,
            &policy(PolicyMode::ForceAos, 0),
        )
        .unwrap();
        assert_eq!(aos.choice(), BackendChoice::Aos);
        assert_eq!(aos.backend_label(), "qmax-adaptive-aos");
        let soa = AdaptiveBackend::<u32, u64>::try_with_policy(
            10,
            0.5,
            Some(1),
            &policy(PolicyMode::ForceSoa, usize::MAX),
        )
        .unwrap();
        assert_eq!(soa.choice(), BackendChoice::Soa);
        assert_eq!(soa.backend_label(), "qmax-adaptive-soa");
    }

    #[test]
    fn auto_splits_on_fill_hint() {
        let p = policy(PolicyMode::Auto, 90);
        let small = AdaptiveBackend::<u32, u64>::try_with_policy(100, 0.25, Some(10), &p).unwrap();
        assert_eq!(small.choice(), BackendChoice::Aos);
        let large =
            AdaptiveBackend::<u32, u64>::try_with_policy(100, 0.25, Some(5000), &p).unwrap();
        assert_eq!(large.choice(), BackendChoice::Soa);
        // Lifetime fill within capacity (125) stays append-only AoS
        // even above the crossover.
        let append_only =
            AdaptiveBackend::<u32, u64>::try_with_policy(100, 0.25, Some(120), &p).unwrap();
        assert_eq!(append_only.choice(), BackendChoice::Aos);
    }

    #[test]
    fn auto_routes_non_u64_lanes_to_aos() {
        // Even with a crossover of 0 (SoA always), a non-u64 value lane
        // must land on AoS in auto mode — but forced SoA is honored.
        let p = policy(PolicyMode::Auto, 0);
        let qm = AdaptiveBackend::<u32, OrderedF64>::try_with_policy(10, 0.5, None, &p).unwrap();
        assert_eq!(qm.choice(), BackendChoice::Aos);
        let forced = AdaptiveBackend::<u32, OrderedF64>::try_with_policy(
            10,
            0.5,
            None,
            &policy(PolicyMode::ForceSoa, 0),
        )
        .unwrap();
        assert_eq!(forced.choice(), BackendChoice::Soa);
    }

    #[test]
    fn fresh_preserves_choice() {
        let p = policy(PolicyMode::Auto, 90);
        let proto = AdaptiveBackend::<u32, u64>::try_with_policy(100, 0.25, Some(10), &p).unwrap();
        let block = IntervalBackend::fresh(&proto);
        assert_eq!(block.choice(), proto.choice());
        assert_eq!(IntervalBackend::capacity(&block), proto.capacity());
    }

    #[test]
    fn both_arms_match_reference() {
        let items: Vec<(u32, u64)> = (0..5000u64)
            .map(|i| (i as u32, i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % 10_000))
            .collect();
        let mut expect: Vec<u64> = items.iter().map(|&(_, v)| v).collect();
        expect.sort_unstable_by(|a, b| b.cmp(a));
        expect.truncate(37);
        expect.sort_unstable();
        for mode in [PolicyMode::ForceAos, PolicyMode::ForceSoa] {
            let mut qm =
                AdaptiveBackend::<u32, u64>::try_with_policy(37, 0.6, None, &policy(mode, 0))
                    .unwrap();
            qm.insert_batch(&items);
            let mut got: Vec<u64> = qm.query().into_iter().map(|(_, v)| v).collect();
            got.sort_unstable();
            assert_eq!(got, expect, "{mode:?}");
        }
    }

    #[test]
    fn global_constructor_works() {
        let mut qm = AdaptiveBackend::<u32, u64>::new(5, 0.5);
        for v in 0u64..1000 {
            qm.insert(v as u32, v);
        }
        let mut got: Vec<u64> = qm.query().into_iter().map(|(_, v)| v).collect();
        got.sort_unstable();
        assert_eq!(got, vec![995, 996, 997, 998, 999]);
        assert!(matches!(
            qm.backend_label(),
            "qmax-adaptive-aos" | "qmax-adaptive-soa"
        ));
    }

    #[test]
    #[should_panic(expected = "q must be positive")]
    fn zero_q_panics() {
        let _ = AdaptiveBackend::<u32, u64>::new(0, 0.5);
    }
}
