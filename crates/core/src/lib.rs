//! # q-MAX: constant-time maintenance of the `q` largest stream items
//!
//! This crate implements the data structures from *"q-MAX: A Unified
//! Scheme for Improving Network Measurement Throughput"* (Ben Basat,
//! Einziger, Gong, Moraney, Raz — IMC 2019).
//!
//! Many network-measurement algorithms maintain a reservoir of the `q`
//! largest `(id, value)` items of a stream and only ever *list* them on
//! demand. That interface is strictly weaker than a heap's or a skip
//! list's, and can be served in **worst-case constant time** per update
//! using `q(1 + γ)` space for any constant γ > 0:
//!
//! * [`AmortizedQMax`] — Algorithm 1 with amortized compaction: a
//!   `q(1+γ)`-slot buffer is filled lazily (items below the admission
//!   threshold Ψ are dropped outright) and compacted with a linear-time
//!   selection once full. `O(1)` amortized update, `O(q)` worst case.
//! * [`DeamortizedQMax`] — Algorithm 1 proper: the compaction is broken
//!   into `O(γ⁻¹)`-operation steps interleaved with arrivals using the
//!   suspendable selection machine from [`qmax_select`], yielding an
//!   `O(γ⁻¹)` **worst-case** update time.
//! * [`SoaAmortizedQMax`], [`SoaDeamortizedQMax`] — structure-of-arrays
//!   twins of the two variants above for `Copy` primitive ids/values:
//!   split `vals`/`ids` lanes, a branchless chunked Ψ-filter for
//!   [`BatchInsert::insert_batch`], and value-only selection kernels.
//! * [`HeapQMax`], [`SkipListQMax`], [`SortedVecQMax`] — the classical
//!   `O(log q)` (or worse) baselines the paper compares against, built
//!   from scratch on our own [`heap::MinHeap`] and [`skiplist::SkipList`].
//! * [`BasicSlackQMax`], [`HierSlackQMax`], [`LazySlackQMax`] — sliding
//!   window variants over `(W, τ)`-*slack windows* (Algorithms 3–4 and
//!   Theorem 7 of the paper).
//! * [`ExpDecayQMax`] — exponential-decay weighting (Section 5) via a
//!   numerically stable log-domain transform.
//!
//! ## Quick start
//!
//! ```
//! use qmax_core::{AmortizedQMax, QMax};
//!
//! // Track the 3 largest flows, with 50% space slack (γ = 0.5).
//! let mut top = AmortizedQMax::new(3, 0.5);
//! for (flow, bytes) in [(1u32, 900u64), (2, 15), (3, 7000), (4, 42), (5, 1200)] {
//!     top.insert(flow, bytes);
//! }
//! let mut ids: Vec<u32> = top.query().into_iter().map(|(id, _)| id).collect();
//! ids.sort();
//! assert_eq!(ids, vec![1, 3, 5]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod adaptive;
mod amortized;
mod checkpoint;
mod deamortized;
mod dedup;
mod entry;
mod error;
mod exp_decay;
pub mod flow_table;
pub mod heap;
pub mod indexed_heap;
pub mod skiplist;
mod soa;
mod sorted_vec;
mod time_window;
mod traits;
pub mod window;

pub use adaptive::AdaptiveBackend;
pub use amortized::AmortizedQMax;
pub use checkpoint::{BackendSnapshot, Checkpoint};
pub use deamortized::{DeamortizedQMax, DeamortizedStats};
pub use dedup::DedupQMax;
pub use entry::{Entry, Minimal, OrderedF64};
pub use error::QMaxError;
pub use exp_decay::ExpDecayQMax;
pub use flow_table::{
    FixedState, FlowIndex, FlowTable, IndexFamily, KeyIndex, StdIndex, PROBE_PIPELINE,
};
pub use heap::HeapQMax;
pub use indexed_heap::{IndexedHeapQMax, IndexedMinHeap};
pub use skiplist::{KeyedSkipListQMax, SkipListQMax};
pub use soa::{SoaAmortizedQMax, SoaDeamortizedQMax};
pub use sorted_vec::SortedVecQMax;
pub use time_window::{AdaptiveTimeSlackQMax, SoaTimeSlackQMax, TimeSlackQMax};
pub use traits::{BatchInsert, IntervalBackend, QMax};
// Backend-policy types re-exported so callers configuring adaptive
// structures need not depend on `qmax_select` directly.
pub use qmax_select::{BackendChoice, BackendPolicy, CostModel, PolicyMode};
pub use window::{
    AdaptiveBasicSlackQMax, AdaptiveHierSlackQMax, AdaptiveLazySlackQMax, BasicSlackQMax,
    HierSlackQMax, LazySlackQMax, SoaBasicSlackQMax, SoaHierSlackQMax, SoaLazySlackQMax,
};
