//! A from-scratch skip list and the skip-list-based q-MAX baseline.

use crate::entry::Entry;
use crate::traits::QMax;

/// Maximum tower height. 32 levels comfortably cover any list that fits
/// in memory (expected height of `n` elements is `log2 n`).
const MAX_LEVEL: usize = 32;

/// Sentinel index meaning "no node".
const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node<T> {
    value: T,
    /// `next[l]` is the successor at level `l`; the vector's length is
    /// the node's height.
    next: Vec<u32>,
}

/// An ascending-ordered skip list with duplicate support.
///
/// Nodes live in an index-addressed arena (`Vec`) with a free list, so
/// the structure performs no per-node allocation after warm-up. Tower
/// heights are drawn from a geometric(1/2) distribution using an
/// internal xorshift generator, giving the classical `O(log n)` expected
/// search/insert and `O(log n)` delete-min.
#[derive(Debug, Clone)]
pub struct SkipList<T> {
    nodes: Vec<Node<T>>,
    free: Vec<u32>,
    head: [u32; MAX_LEVEL],
    level: usize,
    len: usize,
    rng: u64,
}

impl<T: Ord> SkipList<T> {
    /// Creates an empty skip list.
    pub fn new() -> Self {
        Self::with_seed(0x0051_AB1E_5EED)
    }

    /// Creates an empty skip list whose tower heights are derived from
    /// `seed` (deterministic for reproducible benchmarks).
    pub fn with_seed(seed: u64) -> Self {
        SkipList {
            nodes: Vec::new(),
            free: Vec::new(),
            head: [NIL; MAX_LEVEL],
            level: 1,
            len: 0,
            rng: seed | 1,
        }
    }

    /// Number of stored elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The smallest element, if any.
    pub fn peek_min(&self) -> Option<&T> {
        if self.head[0] == NIL {
            None
        } else {
            Some(&self.nodes[self.head[0] as usize].value)
        }
    }

    fn random_height(&mut self) -> usize {
        // xorshift64*
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        let bits = x.wrapping_mul(0x2545F4914F6CDD1D);
        // Height = 1 + number of leading consecutive 1 bits (p = 1/2).
        ((bits.trailing_ones() as usize) + 1).min(MAX_LEVEL)
    }

    /// Inserts `value` in expected `O(log n)`.
    pub fn insert(&mut self, value: T) {
        let height = self.random_height();
        // Find the predecessor at every level; NIL predecessor means the
        // head pointer itself.
        let mut update = [NIL; MAX_LEVEL];
        let mut cur = NIL;
        for l in (0..self.level).rev() {
            let mut next = if cur == NIL {
                self.head[l]
            } else {
                self.nodes[cur as usize].next[l]
            };
            while next != NIL && self.nodes[next as usize].value < value {
                cur = next;
                next = self.nodes[cur as usize].next[l];
            }
            update[l] = cur;
        }
        if height > self.level {
            for slot in update.iter_mut().take(height).skip(self.level) {
                *slot = NIL;
            }
            self.level = height;
        }
        // Allocate the node.
        let idx = match self.free.pop() {
            Some(i) => {
                let node = &mut self.nodes[i as usize];
                node.value = value;
                node.next.clear();
                node.next.resize(height, NIL);
                i
            }
            None => {
                self.nodes.push(Node {
                    value,
                    next: vec![NIL; height],
                });
                (self.nodes.len() - 1) as u32
            }
        };
        // Splice.
        #[allow(clippy::needless_range_loop)] // l indexes two arrays in lockstep
        for l in 0..height {
            let pred = update[l];
            if pred == NIL {
                self.nodes[idx as usize].next[l] = self.head[l];
                self.head[l] = idx;
            } else {
                let succ = self.nodes[pred as usize].next[l];
                self.nodes[idx as usize].next[l] = succ;
                self.nodes[pred as usize].next[l] = idx;
            }
        }
        self.len += 1;
    }

    /// Removes and returns the smallest element in `O(height)`.
    pub fn pop_min(&mut self) -> Option<T>
    where
        T: Clone,
    {
        let idx = self.head[0];
        if idx == NIL {
            return None;
        }
        let height = self.nodes[idx as usize].next.len();
        for l in 0..height {
            debug_assert_eq!(
                self.head[l], idx,
                "minimum must lead every level it occupies"
            );
            self.head[l] = self.nodes[idx as usize].next[l];
        }
        while self.level > 1 && self.head[self.level - 1] == NIL {
            self.level -= 1;
        }
        self.len -= 1;
        let value = self.nodes[idx as usize].value.clone();
        self.free.push(idx);
        Some(value)
    }

    /// Removes the first element that compares equal to `probe` *and*
    /// satisfies `matches`, returning whether one was removed.
    ///
    /// The extra predicate lets callers distinguish elements the `Ord`
    /// implementation treats as equal (e.g. [`Entry`] compares by value
    /// only, so `matches` can pin down the id). Expected `O(log n)` plus
    /// the length of the equal run.
    pub fn remove_one<F: FnMut(&T) -> bool>(&mut self, probe: &T, mut matches: F) -> bool {
        // Strict-predecessor descent: update[l] is the last node at
        // level l with value < probe (NIL = head).
        let mut update = [NIL; MAX_LEVEL];
        let mut cur = NIL;
        for l in (0..self.level).rev() {
            let mut next = if cur == NIL {
                self.head[l]
            } else {
                self.nodes[cur as usize].next[l]
            };
            while next != NIL && self.nodes[next as usize].value < *probe {
                cur = next;
                next = self.nodes[cur as usize].next[l];
            }
            update[l] = cur;
        }
        // Scan the equal run at level 0 for the first matching element.
        let mut target = if cur == NIL {
            self.head[0]
        } else {
            self.nodes[cur as usize].next[0]
        };
        while target != NIL {
            let v = &self.nodes[target as usize].value;
            if *v > *probe {
                return false;
            }
            debug_assert!(*v == *probe);
            if matches(v) {
                break;
            }
            target = self.nodes[target as usize].next[0];
        }
        if target == NIL {
            return false;
        }
        // Unlink the target at every level it occupies. Starting from
        // the strict predecessor, each level's walk only crosses the
        // (short, in expectation) run of equal values linked at that
        // level.
        let height = self.nodes[target as usize].next.len();
        debug_assert!(height <= self.level);
        #[allow(clippy::needless_range_loop)] // l indexes two arrays in lockstep
        for l in 0..height {
            let mut pred = update[l];
            let mut next = if pred == NIL {
                self.head[l]
            } else {
                self.nodes[pred as usize].next[l]
            };
            while next != NIL && next != target {
                debug_assert!(self.nodes[next as usize].value <= *probe);
                pred = next;
                next = self.nodes[pred as usize].next[l];
            }
            debug_assert_eq!(next, target, "target must be linked at level {l}");
            let after = self.nodes[target as usize].next[l];
            if pred == NIL {
                self.head[l] = after;
            } else {
                self.nodes[pred as usize].next[l] = after;
            }
        }
        while self.level > 1 && self.head[self.level - 1] == NIL {
            self.level -= 1;
        }
        self.len -= 1;
        self.free.push(target);
        true
    }

    /// Removes all elements (retains the arena for reuse).
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.head = [NIL; MAX_LEVEL];
        self.level = 1;
        self.len = 0;
    }

    /// Iterates over the elements in ascending order.
    pub fn iter(&self) -> SkipListIter<'_, T> {
        SkipListIter {
            list: self,
            cur: self.head[0],
        }
    }
}

impl<T: Ord> Default for SkipList<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Ascending iterator over a [`SkipList`].
#[derive(Debug)]
pub struct SkipListIter<'a, T> {
    list: &'a SkipList<T>,
    cur: u32,
}

impl<'a, T> Iterator for SkipListIter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        if self.cur == NIL {
            return None;
        }
        let node = &self.list.nodes[self.cur as usize];
        self.cur = node.next[0];
        Some(&node.value)
    }
}

/// The skip-list-based q-MAX baseline: an ascending skip list capped at
/// `q` elements; a new item larger than the minimum evicts it.
/// `O(log q)` expected time per update.
///
/// ```
/// use qmax_core::{QMax, SkipListQMax};
/// let mut qm = SkipListQMax::new(2);
/// for v in [5u64, 1, 9, 3, 7] {
///     qm.insert(v as u32, v);
/// }
/// let mut top: Vec<u64> = qm.query().into_iter().map(|(_, v)| v).collect();
/// top.sort();
/// assert_eq!(top, vec![7, 9]);
/// ```
#[derive(Debug, Clone)]
pub struct SkipListQMax<I, V> {
    q: usize,
    list: SkipList<Entry<I, V>>,
}

impl<I: Clone, V: Ord + Clone> SkipListQMax<I, V> {
    /// Creates a skip-list-based q-MAX for the `q` largest items.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`.
    pub fn new(q: usize) -> Self {
        assert!(q > 0, "q must be positive");
        SkipListQMax {
            q,
            list: SkipList::new(),
        }
    }
}

impl<I: Clone, V: Ord + Clone> QMax<I, V> for SkipListQMax<I, V> {
    fn insert(&mut self, id: I, val: V) -> bool {
        if self.list.len() < self.q {
            self.list.insert(Entry::new(id, val));
            return true;
        }
        let min = self.list.peek_min().expect("list is full");
        if val <= min.val {
            return false;
        }
        self.list.insert(Entry::new(id, val));
        self.list.pop_min();
        true
    }

    fn query(&mut self) -> Vec<(I, V)> {
        self.list
            .iter()
            .map(|e| (e.id.clone(), e.val.clone()))
            .collect()
    }

    fn reset(&mut self) {
        self.list.clear();
    }

    fn q(&self) -> usize {
        self.q
    }

    fn len(&self) -> usize {
        self.list.len()
    }

    fn threshold(&self) -> Option<V> {
        if self.list.len() == self.q {
            self.list.peek_min().map(|e| e.val.clone())
        } else {
            None
        }
    }

    fn name(&self) -> &'static str {
        "skiplist"
    }
}

/// Keyed q-MAX baseline on a [`SkipList`] plus a key→value map: keeps
/// the `q` keys of largest value, replacing a present key's entry on
/// growth (`O(log q)` expected per update).
///
/// Like [`crate::IndexedHeapQMax`], this is the update-in-place variant
/// the aggregation applications (PBA, UnivMon heavy-hitter tracking)
/// need from their baselines.
#[derive(Debug, Clone)]
pub struct KeyedSkipListQMax<I, V> {
    q: usize,
    list: SkipList<Entry<I, V>>,
    live: std::collections::HashMap<I, V>,
}

impl<I: Clone + std::hash::Hash + Eq, V: Ord + Clone> KeyedSkipListQMax<I, V> {
    /// Creates a keyed skip-list baseline for the `q` largest distinct
    /// keys.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`.
    pub fn new(q: usize) -> Self {
        assert!(q > 0, "q must be positive");
        KeyedSkipListQMax {
            q,
            list: SkipList::new(),
            live: std::collections::HashMap::new(),
        }
    }
}

impl<I: Clone + std::hash::Hash + Eq, V: Ord + Clone> QMax<I, V> for KeyedSkipListQMax<I, V> {
    fn insert(&mut self, id: I, val: V) -> bool {
        if let Some(old) = self.live.get(&id) {
            if *old >= val {
                return false;
            }
            let probe = Entry::new(id.clone(), old.clone());
            let removed = self.list.remove_one(&probe, |e| e.id == id);
            debug_assert!(removed, "map and list out of sync");
            self.list.insert(Entry::new(id.clone(), val.clone()));
            self.live.insert(id, val);
            return true;
        }
        if self.live.len() == self.q {
            let min = self.list.peek_min().expect("list is full");
            if val <= min.val {
                return false;
            }
            let evicted = self.list.pop_min().expect("list is full");
            self.live.remove(&evicted.id);
        }
        self.list.insert(Entry::new(id.clone(), val.clone()));
        self.live.insert(id, val);
        true
    }

    fn query(&mut self) -> Vec<(I, V)> {
        self.list
            .iter()
            .map(|e| (e.id.clone(), e.val.clone()))
            .collect()
    }

    fn reset(&mut self) {
        self.list.clear();
        self.live.clear();
    }

    fn q(&self) -> usize {
        self.q
    }

    fn len(&self) -> usize {
        self.live.len()
    }

    fn threshold(&self) -> Option<V> {
        if self.live.len() == self.q {
            self.list.peek_min().map(|e| e.val.clone())
        } else {
            None
        }
    }

    fn name(&self) -> &'static str {
        "keyed-skiplist"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_pop_sorts() {
        let mut sl = SkipList::new();
        for v in [5, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5] {
            sl.insert(v);
        }
        assert_eq!(sl.len(), 11);
        let mut out = Vec::new();
        while let Some(v) = sl.pop_min() {
            out.push(v);
        }
        assert_eq!(out, vec![1, 1, 2, 3, 4, 5, 5, 5, 5, 6, 9]);
        assert!(sl.is_empty());
    }

    #[test]
    fn iter_is_ascending() {
        let mut sl = SkipList::new();
        for v in [30, 10, 20, 50, 40] {
            sl.insert(v);
        }
        let got: Vec<i32> = sl.iter().copied().collect();
        assert_eq!(got, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn arena_reuse_after_pop() {
        let mut sl = SkipList::new();
        for round in 0..10 {
            for v in 0..100 {
                sl.insert(v * 10 + round);
            }
            for _ in 0..100 {
                sl.pop_min();
            }
        }
        assert!(sl.is_empty());
        // The arena should not have grown past a small multiple of the
        // live set.
        assert!(sl.nodes.len() <= 200, "arena grew to {}", sl.nodes.len());
    }

    #[test]
    fn large_random_workload() {
        let mut state = 17u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) % 100_000
        };
        let mut sl = SkipList::new();
        let mut reference = Vec::new();
        for _ in 0..5000 {
            let v = next();
            sl.insert(v);
            reference.push(v);
        }
        reference.sort_unstable();
        let got: Vec<u64> = sl.iter().copied().collect();
        assert_eq!(got, reference);
    }

    #[test]
    fn skiplist_qmax_matches_reference() {
        let mut state = 23u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) % 1000
        };
        for q in [1usize, 7, 64] {
            let vals: Vec<u64> = (0..3000).map(|_| next()).collect();
            let mut qm = SkipListQMax::new(q);
            for (i, &v) in vals.iter().enumerate() {
                qm.insert(i as u32, v);
            }
            let mut got: Vec<u64> = qm.query().into_iter().map(|(_, v)| v).collect();
            got.sort_unstable();
            let mut expect = vals.clone();
            expect.sort_unstable_by(|a, b| b.cmp(a));
            expect.truncate(q);
            expect.sort_unstable();
            assert_eq!(got, expect, "q={q}");
        }
    }

    #[test]
    fn remove_one_removes_exact_element() {
        let mut sl = SkipList::new();
        for v in [5, 3, 5, 7, 5, 1] {
            sl.insert(v);
        }
        assert!(sl.remove_one(&5, |_| true));
        assert_eq!(sl.len(), 5);
        let got: Vec<i32> = sl.iter().copied().collect();
        assert_eq!(got, vec![1, 3, 5, 5, 7]);
        assert!(!sl.remove_one(&42, |_| true));
        assert!(sl.remove_one(&1, |_| true));
        assert_eq!(sl.iter().copied().collect::<Vec<_>>(), vec![3, 5, 5, 7]);
    }

    #[test]
    fn remove_one_respects_predicate() {
        let mut sl = SkipList::new();
        for id in 0..10u32 {
            sl.insert(Entry::new(id, 5u64));
        }
        // All entries compare equal (value 5); remove id 7 exactly.
        assert!(sl.remove_one(&Entry::new(0u32, 5u64), |e| e.id == 7));
        assert_eq!(sl.len(), 9);
        assert!(sl.iter().all(|e| e.id != 7));
        // Predicate matching nothing removes nothing.
        assert!(!sl.remove_one(&Entry::new(0u32, 5u64), |e| e.id == 7));
        assert_eq!(sl.len(), 9);
    }

    #[test]
    fn remove_one_under_churn_stays_consistent() {
        let mut state = 99u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) % 100
        };
        let mut sl = SkipList::new();
        let mut reference: Vec<u64> = Vec::new();
        for _ in 0..5000 {
            let v = next();
            if v % 3 == 0 && !reference.is_empty() {
                let probe = reference[(v as usize) % reference.len()];
                let removed = sl.remove_one(&probe, |_| true);
                assert!(removed);
                let pos = reference.iter().position(|&x| x == probe).unwrap();
                reference.remove(pos);
            } else {
                sl.insert(v);
                reference.push(v);
            }
        }
        reference.sort_unstable();
        assert_eq!(sl.iter().copied().collect::<Vec<_>>(), reference);
    }

    #[test]
    fn keyed_skiplist_updates_in_place() {
        let mut qm = KeyedSkipListQMax::new(3);
        for round in 1..=50u64 {
            qm.insert("hot", round * 10);
            qm.insert("warm", round);
            qm.insert("cold", 1u64);
            qm.insert("mild", 2u64);
        }
        assert_eq!(qm.len(), 3);
        let mut keys: Vec<&str> = qm.query().into_iter().map(|(id, _)| id).collect();
        keys.sort();
        assert_eq!(keys, vec!["hot", "mild", "warm"]);
        // Stale smaller value ignored.
        assert!(!qm.insert("hot", 1));
    }

    #[test]
    fn skiplist_qmax_query_is_sorted_ascending() {
        let mut qm = SkipListQMax::new(4);
        for v in [9u64, 2, 7, 5, 1, 8] {
            qm.insert(v as u32, v);
        }
        let got: Vec<u64> = qm.query().into_iter().map(|(_, v)| v).collect();
        assert_eq!(got, vec![5, 7, 8, 9]);
    }
}
