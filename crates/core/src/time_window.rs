//! q-MAX over **time-based** slack windows.
//!
//! For network-wide settings the paper defines windows in time rather
//! than item counts ("consider a window size of 24 hours; if τ = 1/24,
//! we get a slack window that varies between 23 and 24 hours",
//! Section 4.3.4): distributed observation points cannot agree on item
//! counts, but they share timestamps. This structure cuts *time* into
//! `⌈1/τ⌉` fixed-duration blocks and otherwise works like
//! [`crate::BasicSlackQMax`].

use crate::amortized::AmortizedQMax;
use crate::entry::Entry;
use crate::soa::SoaAmortizedQMax;
use crate::traits::IntervalBackend;
use qmax_select::nth_smallest;

/// q-MAX over a time-based `(W, τ)`-slack window: queries list the `q`
/// largest items among those that arrived in the last `W(1−τ)..W`
/// nanoseconds.
///
/// Items must be inserted with non-decreasing timestamps (arrival
/// order), as produced by any single observation point.
///
/// Like the count-based windows, the structure is generic over its
/// per-block [`IntervalBackend`]; the default keeps the historical
/// array-of-structs [`AmortizedQMax`] blocks, while
/// [`SoaTimeSlackQMax`] routes each block through the
/// structure-of-arrays backend so [`TimeSlackQMax::insert_batch`] runs
/// the branchless batched kernel per block.
///
/// ```
/// use qmax_core::TimeSlackQMax;
/// // 1 ms window with 25% slack, top-2.
/// let mut w = TimeSlackQMax::new(2, 0.5, 1_000_000, 0.25);
/// w.insert(1u32, 500u64, 0);
/// w.insert(2u32, 900u64, 10_000);
/// // ... 2 ms later the early items have expired:
/// w.insert(3u32, 100u64, 2_000_000);
/// let top: Vec<u32> = w.query_at(2_000_000).into_iter().map(|(id, _)| id).collect();
/// assert_eq!(top, vec![3]);
/// ```
#[derive(Debug, Clone)]
pub struct TimeSlackQMax<I, V, B = AmortizedQMax<I, V>> {
    q: usize,
    /// Block duration in nanoseconds, `⌈W·τ⌉`.
    block_ns: u64,
    /// Ring of per-block reservoirs; slot = epoch % len.
    blocks: Vec<B>,
    /// Epoch (block index since time 0) of each slot's content;
    /// `u64::MAX` = never used.
    epochs: Vec<u64>,
    /// Most recent timestamp seen (for monotonicity checking).
    last_ts: u64,
    _marker: crate::window::RingMarker<I, V>,
}

/// [`TimeSlackQMax`] with structure-of-arrays blocks (`Copy` ids and
/// values).
pub type SoaTimeSlackQMax<I, V> = TimeSlackQMax<I, V, SoaAmortizedQMax<I, V>>;

impl<I: Clone, V: Ord + Clone> TimeSlackQMax<I, V> {
    /// Creates a time-based slack-window q-MAX over windows of
    /// `window_ns` nanoseconds with slack fraction `tau` and per-block
    /// space-slack `gamma`, backed by array-of-structs
    /// [`AmortizedQMax`] blocks.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`, `window_ns == 0`, or `tau` outside `(0, 1]`.
    /// Use [`TimeSlackQMax::try_new`] at fallible API boundaries.
    pub fn new(q: usize, gamma: f64, window_ns: u64, tau: f64) -> Self {
        Self::try_new(q, gamma, window_ns, tau).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`TimeSlackQMax::new`]: rejects `q == 0`, bad `gamma`,
    /// `window_ns == 0`, and `tau` outside `(0, 1]` instead of
    /// panicking.
    pub fn try_new(
        q: usize,
        gamma: f64,
        window_ns: u64,
        tau: f64,
    ) -> Result<Self, crate::QMaxError> {
        Self::try_with_backend(window_ns, tau, AmortizedQMax::try_new(q, gamma)?)
    }
}

impl<I: Copy + 'static, V: Ord + Copy + 'static> SoaTimeSlackQMax<I, V> {
    /// Like [`TimeSlackQMax::new`], but every block is a
    /// structure-of-arrays [`SoaAmortizedQMax`].
    pub fn new_soa(q: usize, gamma: f64, window_ns: u64, tau: f64) -> Self {
        assert!(q > 0, "q must be positive");
        Self::with_backend(window_ns, tau, SoaAmortizedQMax::new(q, gamma))
    }
}

/// [`TimeSlackQMax`] with per-block adaptive backends. Time blocks have
/// no a-priori item count, so the policy sees no fill hint and keys on
/// block capacity alone.
pub type AdaptiveTimeSlackQMax<I, V> = TimeSlackQMax<I, V, crate::AdaptiveBackend<I, V>>;

impl<I: Copy + 'static, V: Ord + Copy + 'static> AdaptiveTimeSlackQMax<I, V> {
    /// Like [`TimeSlackQMax::new`], but every block delegates to the
    /// layout the global backend policy picks for its capacity.
    pub fn new_adaptive(q: usize, gamma: f64, window_ns: u64, tau: f64) -> Self {
        Self::try_new_adaptive(q, gamma, window_ns, tau).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`AdaptiveTimeSlackQMax::new_adaptive`].
    pub fn try_new_adaptive(
        q: usize,
        gamma: f64,
        window_ns: u64,
        tau: f64,
    ) -> Result<Self, crate::QMaxError> {
        let proto = crate::AdaptiveBackend::try_with_fill_hint(q, gamma, None)?;
        Self::try_with_backend(window_ns, tau, proto)
    }
}

impl<I, V: Ord, B: IntervalBackend<I, V>> TimeSlackQMax<I, V, B> {
    /// Creates a time-based slack-window q-MAX whose blocks are stamped
    /// out of the given backend prototype via
    /// [`IntervalBackend::fresh`].
    ///
    /// # Panics
    ///
    /// Panics if `window_ns == 0` or `tau` outside `(0, 1]`. Use
    /// [`TimeSlackQMax::try_with_backend`] at fallible API boundaries.
    pub fn with_backend(window_ns: u64, tau: f64, proto: B) -> Self {
        Self::try_with_backend(window_ns, tau, proto).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`TimeSlackQMax::with_backend`].
    pub fn try_with_backend(window_ns: u64, tau: f64, proto: B) -> Result<Self, crate::QMaxError> {
        if window_ns == 0 {
            return Err(crate::QMaxError::ZeroWindow);
        }
        crate::error::check_tau(tau)?;
        let n_blocks = (1.0 / tau).ceil() as usize;
        let block_ns = window_ns.div_ceil(n_blocks as u64).max(1);
        Ok(TimeSlackQMax {
            q: proto.q(),
            block_ns,
            blocks: (0..n_blocks).map(|_| proto.fresh()).collect(),
            epochs: vec![u64::MAX; n_blocks],
            last_ts: 0,
            _marker: std::marker::PhantomData,
        })
    }

    /// Block duration in nanoseconds.
    pub fn block_ns(&self) -> u64 {
        self.block_ns
    }

    /// The effective window duration `block_ns · n_blocks`.
    pub fn effective_window_ns(&self) -> u64 {
        self.block_ns * self.blocks.len() as u64
    }

    /// The configured reservoir size.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Recycles the slot for `epoch` in place if its content belongs to
    /// an older epoch, and returns the slot index.
    fn slot_for(&mut self, epoch: u64) -> usize {
        let slot = (epoch % self.blocks.len() as u64) as usize;
        if self.epochs[slot] != epoch {
            // The slot's previous content is a full window old: recycle.
            self.blocks[slot].reset();
            self.epochs[slot] = epoch;
        }
        slot
    }

    /// Offers an item observed at `ts_ns`. Timestamps must be
    /// non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `ts_ns` precedes the previous insert.
    pub fn insert(&mut self, id: I, val: V, ts_ns: u64) -> bool {
        debug_assert!(ts_ns >= self.last_ts, "timestamps must be non-decreasing");
        self.last_ts = ts_ns;
        let epoch = ts_ns / self.block_ns;
        let slot = self.slot_for(epoch);
        self.blocks[slot].insert(id, val)
    }

    /// Lists the `q` largest items within the slack window ending at
    /// `now_ns` (usually the most recent timestamp).
    pub fn query_at(&mut self, now_ns: u64) -> Vec<(I, V)> {
        let cur_epoch = now_ns / self.block_ns;
        let oldest = cur_epoch.saturating_sub(self.blocks.len() as u64 - 1);
        let mut scratch: Vec<Entry<I, V>> = Vec::new();
        for (slot, block) in self.blocks.iter().enumerate() {
            let e = self.epochs[slot];
            if e == u64::MAX || e < oldest || e > cur_epoch {
                continue;
            }
            block.candidates_into(&mut scratch);
        }
        if scratch.len() > self.q {
            let cut = scratch.len() - self.q;
            nth_smallest(&mut scratch, cut);
            scratch.drain(..cut);
        }
        scratch.into_iter().map(|e| (e.id, e.val)).collect()
    }

    /// Lists the `q` largest items as of the latest inserted timestamp.
    pub fn query(&mut self) -> Vec<(I, V)> {
        self.query_at(self.last_ts)
    }

    /// Clears the structure.
    pub fn reset(&mut self) {
        for b in &mut self.blocks {
            b.reset();
        }
        self.epochs.fill(u64::MAX);
        self.last_ts = 0;
    }
}

impl<I: Clone, V: Ord + Clone, B: IntervalBackend<I, V>> TimeSlackQMax<I, V, B> {
    /// Offers a timestamped batch, in order. Semantically identical to
    /// calling [`TimeSlackQMax::insert`] per item, but runs of items
    /// that land in the same time block are forwarded to the block's
    /// batch kernel in one call, so structure-of-arrays blocks get the
    /// branchless chunked filter.
    ///
    /// Timestamps must be non-decreasing across the batch (and with
    /// respect to earlier inserts). Returns the number of items
    /// admitted.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) on a timestamp regression.
    pub fn insert_batch(&mut self, items: &[(I, V, u64)]) -> usize {
        let mut admitted = 0;
        let mut scratch: Vec<(I, V)> = Vec::new();
        let mut i = 0;
        while i < items.len() {
            let epoch = items[i].2 / self.block_ns;
            let mut j = i;
            scratch.clear();
            while j < items.len() && items[j].2 / self.block_ns == epoch {
                debug_assert!(
                    items[j].2 >= self.last_ts,
                    "timestamps must be non-decreasing"
                );
                self.last_ts = items[j].2;
                scratch.push((items[j].0.clone(), items[j].1.clone()));
                j += 1;
            }
            let slot = self.slot_for(epoch);
            admitted += self.blocks[slot].insert_batch(&scratch);
            i = j;
        }
        admitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expires_by_time_not_count() {
        // Huge value at t=0, then a quiet period; after > W ns it must
        // be gone even though few items arrived.
        let mut w = TimeSlackQMax::new(2, 0.5, 1_000, 0.25);
        w.insert(0u32, 1_000_000u64, 0);
        w.insert(1u32, 5u64, 2_000);
        w.insert(2u32, 7u64, 2_100);
        let got: Vec<u64> = w.query_at(2_100).into_iter().map(|(_, v)| v).collect();
        assert!(
            got.iter().all(|&v| v < 1_000_000),
            "expired item survived: {got:?}"
        );
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn keeps_recent_items_within_window() {
        let mut w = TimeSlackQMax::new(3, 0.5, 10_000, 0.1);
        for i in 0..100u64 {
            w.insert(i as u32, i, i * 100); // spans 10_000 ns
        }
        let mut got: Vec<u64> = w.query().into_iter().map(|(_, v)| v).collect();
        got.sort_unstable();
        assert_eq!(got, vec![97, 98, 99]);
    }

    #[test]
    fn slack_contract_over_dense_stream() {
        // Values rise with time; the top-q must always come from the
        // last W(1-tau)..W nanoseconds.
        let w_ns = 4_000u64;
        let tau = 0.25;
        let mut w = TimeSlackQMax::new(4, 0.5, w_ns, tau);
        let mut all: Vec<(u64, u64)> = Vec::new(); // (ts, val)
        let mut state = 7u64;
        for i in 0..5_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let ts = i * 10;
            let val = state >> 20;
            all.push((ts, val));
            w.insert(i as u32, val, ts);
            if i % 331 == 0 && ts > 2 * w.effective_window_ns() {
                let mut got: Vec<u64> = w.query_at(ts).into_iter().map(|(_, v)| v).collect();
                got.sort_unstable();
                let w_eff = w.effective_window_ns();
                let block = w.block_ns();
                // Try every cutoff the slack permits.
                let ok = (0..=block)
                    .step_by(1.max(block as usize / 50))
                    .any(|slack| {
                        let cutoff = ts.saturating_sub(w_eff - slack);
                        // Window = epochs; compute by epoch arithmetic like
                        // the structure does.
                        let mut expect: Vec<u64> = all
                            .iter()
                            .filter(|&&(t, _)| t >= cutoff && t <= ts)
                            .map(|&(_, v)| v)
                            .collect();
                        expect.sort_unstable_by(|a, b| b.cmp(a));
                        expect.truncate(4);
                        expect.sort_unstable();
                        expect == got
                    });
                // The exact cutoff is block-aligned; accept any
                // block-aligned window in range.
                let cur_epoch = ts / block;
                let oldest = cur_epoch + 1 - w.blocks.len() as u64;
                let cutoff = oldest * block;
                let mut expect: Vec<u64> = all
                    .iter()
                    .filter(|&&(t, _)| t >= cutoff && t <= ts)
                    .map(|&(_, v)| v)
                    .collect();
                expect.sort_unstable_by(|a, b| b.cmp(a));
                expect.truncate(4);
                expect.sort_unstable();
                assert!(ok || expect == got, "window mismatch at ts={ts}: {got:?}");
            }
        }
    }

    #[test]
    fn sparse_bursts_across_many_windows() {
        let mut w = TimeSlackQMax::new(2, 1.0, 100, 0.5);
        // Bursts separated by long gaps; only the last burst counts.
        for burst in 0..20u64 {
            let base = burst * 100_000;
            for j in 0..10u64 {
                w.insert((burst * 10 + j) as u32, burst * 100 + j, base + j);
            }
        }
        let got: Vec<u64> = w.query().into_iter().map(|(_, v)| v).collect();
        assert!(
            got.iter().all(|&v| v >= 1900),
            "stale burst leaked: {got:?}"
        );
    }

    #[test]
    fn reset_clears() {
        let mut w = TimeSlackQMax::new(2, 0.5, 1000, 0.5);
        w.insert(1u32, 10u64, 5);
        w.reset();
        assert!(w.query_at(5).is_empty());
        w.insert(2u32, 20u64, 7);
        assert_eq!(w.query_at(7).len(), 1);
    }

    #[test]
    fn batch_insert_equals_singletons_including_soa() {
        let mut state = 11u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        let items: Vec<(u32, u64, u64)> = (0..3000u64)
            .map(|i| (i as u32, next() % 100_000, i * 7))
            .collect();
        let mut one = TimeSlackQMax::new(4, 0.5, 4_000, 0.25);
        let mut batch = TimeSlackQMax::new(4, 0.5, 4_000, 0.25);
        let mut soa = SoaTimeSlackQMax::new_soa(4, 0.5, 4_000, 0.25);
        for &(id, v, ts) in &items {
            one.insert(id, v, ts);
        }
        for span in items.chunks(97) {
            batch.insert_batch(span);
            soa.insert_batch(span);
        }
        let sorted = |mut v: Vec<(u32, u64)>| {
            v.sort_unstable();
            v
        };
        let vals = |v: Vec<(u32, u64)>| {
            let mut v: Vec<u64> = v.into_iter().map(|(_, x)| x).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(sorted(one.query()), sorted(batch.query()));
        // SoA may pick different ids among equal values; the value
        // multisets must agree.
        assert_eq!(vals(one.query()), vals(soa.query()));
    }
}
