//! An indexed binary min-heap supporting update-in-place, and the
//! keyed heap baseline built on it.
//!
//! The paper notes that the C++ standard heap lacks sift operations, so
//! its PBA and LRFU heap baselines degenerate to `O(q)` per update.
//! This indexed heap is the *stronger* classical baseline — a heap with
//! a position map enabling `O(log q)` increase/decrease-key — so the
//! speedups we report for q-MAX are conservative.

use crate::flow_table::{FlowIndex, IndexFamily, KeyIndex};
use crate::traits::QMax;
use std::hash::Hash;

/// A binary min-heap over `(key, value)` pairs with a key→position map
/// enabling `O(log n)` value updates.
///
/// The position map defaults to the SIMD-probed [`crate::FlowTable`]
/// ([`FlowIndex`]): every sift step fixes up two positions, so the
/// baseline's `O(log q)` updates are keyed-lookup-bound too.
#[derive(Debug, Clone)]
pub struct IndexedMinHeap<I: Clone + Hash + Eq, V, F: IndexFamily = FlowIndex> {
    /// Heap array of (key, value), min value at index 0.
    data: Vec<(I, V)>,
    /// Key → index in `data`.
    pos: F::Index<I, usize>,
}

impl<I: Clone + Hash + Eq, V: Ord + Clone> IndexedMinHeap<I, V, FlowIndex> {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Self::new_in()
    }
}

impl<I: Clone + Hash + Eq, V: Ord + Clone, F: IndexFamily> IndexedMinHeap<I, V, F> {
    /// Like [`IndexedMinHeap::new`], but with an explicit
    /// [`IndexFamily`].
    pub fn new_in() -> Self {
        IndexedMinHeap {
            data: Vec::new(),
            pos: F::Index::with_capacity(0),
        }
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The minimum entry, if any.
    pub fn peek(&self) -> Option<(&I, &V)> {
        self.data.first().map(|(i, v)| (i, v))
    }

    /// The value currently stored for `key`.
    pub fn get(&self, key: &I) -> Option<&V> {
        self.pos.get(key).map(|&i| &self.data[i].1)
    }

    /// Inserts a new key or updates an existing one to `val` (sifting in
    /// whichever direction the change requires). Returns `true` if the
    /// key was new.
    pub fn upsert(&mut self, key: I, val: V) -> bool {
        if let Some(&i) = self.pos.get(&key) {
            let old = self.data[i].1.clone();
            self.data[i].1 = val;
            if self.data[i].1 > old {
                self.sift_down(i);
            } else {
                self.sift_up(i);
            }
            false
        } else {
            self.data.push((key.clone(), val));
            let i = self.data.len() - 1;
            self.pos.insert(key, i);
            self.sift_up(i);
            true
        }
    }

    /// Removes and returns the minimum entry.
    pub fn pop_min(&mut self) -> Option<(I, V)> {
        if self.data.is_empty() {
            return None;
        }
        let last = self.data.len() - 1;
        self.swap(0, last);
        let (key, val) = self.data.pop().expect("non-empty");
        self.pos.remove(&key);
        if !self.data.is_empty() {
            self.sift_down(0);
        }
        Some((key, val))
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.data.clear();
        self.pos.clear();
    }

    /// Iterates over entries in arbitrary (heap) order.
    pub fn iter(&self) -> impl Iterator<Item = (&I, &V)> {
        self.data.iter().map(|(i, v)| (i, v))
    }

    fn swap(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        self.data.swap(a, b);
        *self.pos.get_mut(&self.data[a].0).expect("key tracked") = a;
        *self.pos.get_mut(&self.data[b].0).expect("key tracked") = b;
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.data[i].1 < self.data[parent].1 {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.data.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < n && self.data[l].1 < self.data[smallest].1 {
                smallest = l;
            }
            if r < n && self.data[r].1 < self.data[smallest].1 {
                smallest = r;
            }
            if smallest == i {
                return;
            }
            self.swap(i, smallest);
            i = smallest;
        }
    }
}

impl<I: Clone + Hash + Eq, V: Ord + Clone, F: IndexFamily> Default for IndexedMinHeap<I, V, F> {
    fn default() -> Self {
        Self::new_in()
    }
}

/// Keyed q-MAX baseline on an [`IndexedMinHeap`]: keeps the `q` keys of
/// largest value, updating a present key's value in place (`O(log q)`).
///
/// Re-inserting a key with a smaller value than currently stored leaves
/// the stored value unchanged (values are treated as monotone, matching
/// the aggregation applications this structure serves).
#[derive(Debug, Clone)]
pub struct IndexedHeapQMax<I: Clone + Hash + Eq, V, F: IndexFamily = FlowIndex> {
    q: usize,
    heap: IndexedMinHeap<I, V, F>,
}

impl<I: Clone + Hash + Eq, V: Ord + Clone> IndexedHeapQMax<I, V, FlowIndex> {
    /// Creates a keyed heap baseline for the `q` largest distinct keys.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`.
    pub fn new(q: usize) -> Self {
        Self::new_in(q)
    }
}

impl<I: Clone + Hash + Eq, V: Ord + Clone, F: IndexFamily> IndexedHeapQMax<I, V, F> {
    /// Like [`IndexedHeapQMax::new`], but with an explicit
    /// [`IndexFamily`].
    pub fn new_in(q: usize) -> Self {
        assert!(q > 0, "q must be positive");
        IndexedHeapQMax {
            q,
            heap: IndexedMinHeap::new_in(),
        }
    }
}

impl<I: Clone + Hash + Eq, V: Ord + Clone, F: IndexFamily> QMax<I, V> for IndexedHeapQMax<I, V, F> {
    fn insert(&mut self, id: I, val: V) -> bool {
        if let Some(cur) = self.heap.get(&id) {
            if *cur >= val {
                return false;
            }
            self.heap.upsert(id, val);
            return true;
        }
        if self.heap.len() < self.q {
            self.heap.upsert(id, val);
            return true;
        }
        let (_, min) = self.heap.peek().expect("heap is full");
        if val <= *min {
            return false;
        }
        self.heap.pop_min();
        self.heap.upsert(id, val);
        true
    }

    fn query(&mut self) -> Vec<(I, V)> {
        self.heap
            .iter()
            .map(|(i, v)| (i.clone(), v.clone()))
            .collect()
    }

    fn reset(&mut self) {
        self.heap.clear();
    }

    fn q(&self) -> usize {
        self.q
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn threshold(&self) -> Option<V> {
        if self.heap.len() == self.q {
            self.heap.peek().map(|(_, v)| v.clone())
        } else {
            None
        }
    }

    fn name(&self) -> &'static str {
        "indexed-heap"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upsert_and_pop_keep_order() {
        let mut h = IndexedMinHeap::new();
        h.upsert("a", 5);
        h.upsert("b", 2);
        h.upsert("c", 9);
        h.upsert("b", 7); // increase-key
        h.upsert("c", 1); // decrease-key
        let mut out = Vec::new();
        while let Some((k, v)) = h.pop_min() {
            out.push((k, v));
        }
        assert_eq!(out, vec![("c", 1), ("a", 5), ("b", 7)]);
    }

    #[test]
    fn positions_stay_consistent_under_churn() {
        let mut h = IndexedMinHeap::new();
        let mut state = 1u64;
        for step in 0..20_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (state >> 33) % 500;
            let val = (state >> 13) % 10_000;
            h.upsert(key, val);
            if step % 7 == 0 {
                h.pop_min();
            }
            if let Some((k, _)) = h.peek() {
                let k = *k;
                assert_eq!(h.pos.get(&k).copied(), Some(0));
            }
        }
        // Full drain must be sorted.
        let mut last = 0;
        while let Some((_, v)) = h.pop_min() {
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn qmax_keeps_top_distinct_keys() {
        let mut qm = IndexedHeapQMax::new(3);
        for round in 1..=100u64 {
            qm.insert("hot", round * 10);
            qm.insert("warm", round);
            qm.insert("cold", 1u64);
            qm.insert("mild", 2u64);
        }
        let mut got = qm.query();
        got.sort_by_key(|&(id, _)| id);
        let keys: Vec<&str> = got.iter().map(|&(id, _)| id).collect();
        assert_eq!(keys, vec!["hot", "mild", "warm"]);
    }

    #[test]
    fn stale_smaller_value_is_ignored() {
        let mut qm = IndexedHeapQMax::new(2);
        qm.insert(1u32, 100u64);
        assert!(!qm.insert(1u32, 50));
        assert_eq!(qm.query(), vec![(1, 100)]);
    }
}
