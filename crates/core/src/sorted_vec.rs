//! Sorted-array q-MAX baseline.

use crate::entry::Entry;
use crate::traits::QMax;

/// A sorted-array q-MAX baseline: a vector kept in ascending value
/// order, capped at `q` elements.
///
/// Lookups are `O(log q)` but every insertion shifts on average `q/2`
/// elements, so updates are `O(q)`. This models the degenerate baseline
/// the paper observed for structures without an efficient
/// replace/sift operation (its Priority-Based Aggregation heap baseline
/// ran in `O(q)` per update for that reason).
///
/// ```
/// use qmax_core::{QMax, SortedVecQMax};
/// let mut qm = SortedVecQMax::new(2);
/// for v in [5u64, 1, 9, 3, 7] {
///     qm.insert(v as u32, v);
/// }
/// let top: Vec<u64> = qm.query().into_iter().map(|(_, v)| v).collect();
/// assert_eq!(top, vec![7, 9]);
/// ```
#[derive(Debug, Clone)]
pub struct SortedVecQMax<I, V> {
    q: usize,
    /// Ascending by value.
    data: Vec<Entry<I, V>>,
}

impl<I: Clone, V: Ord + Clone> SortedVecQMax<I, V> {
    /// Creates a sorted-array q-MAX for the `q` largest items.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`.
    pub fn new(q: usize) -> Self {
        assert!(q > 0, "q must be positive");
        SortedVecQMax {
            q,
            data: Vec::with_capacity(q),
        }
    }
}

impl<I: Clone, V: Ord + Clone> QMax<I, V> for SortedVecQMax<I, V> {
    fn insert(&mut self, id: I, val: V) -> bool {
        let full = self.data.len() == self.q;
        if full && val <= self.data[0].val {
            return false;
        }
        let entry = Entry::new(id, val);
        let pos = self.data.partition_point(|e| *e < entry);
        self.data.insert(pos, entry);
        if self.data.len() > self.q {
            self.data.remove(0);
        }
        true
    }

    fn query(&mut self) -> Vec<(I, V)> {
        self.data
            .iter()
            .map(|e| (e.id.clone(), e.val.clone()))
            .collect()
    }

    fn reset(&mut self) {
        self.data.clear();
    }

    fn q(&self) -> usize {
        self.q
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    fn threshold(&self) -> Option<V> {
        if self.data.len() == self.q {
            self.data.first().map(|e| e.val.clone())
        } else {
            None
        }
    }

    fn name(&self) -> &'static str {
        "sorted-vec"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference() {
        let mut state = 29u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) % 500
        };
        for q in [1usize, 3, 40] {
            let vals: Vec<u64> = (0..2000).map(|_| next()).collect();
            let mut qm = SortedVecQMax::new(q);
            for (i, &v) in vals.iter().enumerate() {
                qm.insert(i as u32, v);
            }
            let mut got: Vec<u64> = qm.query().into_iter().map(|(_, v)| v).collect();
            got.sort_unstable();
            let mut expect = vals.clone();
            expect.sort_unstable_by(|a, b| b.cmp(a));
            expect.truncate(q);
            expect.sort_unstable();
            assert_eq!(got, expect, "q={q}");
        }
    }

    #[test]
    fn query_is_ascending() {
        let mut qm = SortedVecQMax::new(3);
        for v in [4u64, 8, 2, 6] {
            qm.insert(v as u32, v);
        }
        let got: Vec<u64> = qm.query().into_iter().map(|(_, v)| v).collect();
        assert_eq!(got, vec![4, 6, 8]);
    }

    #[test]
    fn rejects_below_minimum_once_full() {
        let mut qm = SortedVecQMax::new(2);
        qm.insert(1u32, 10u64);
        qm.insert(2u32, 20u64);
        assert!(!qm.insert(3u32, 5), "below-min value must be rejected");
        assert!(!qm.insert(4u32, 10), "equal-to-min value must be rejected");
        assert!(qm.insert(5u32, 15));
        assert_eq!(qm.threshold(), Some(15));
    }

    #[test]
    fn reset_clears() {
        let mut qm = SortedVecQMax::new(2);
        qm.insert(1u32, 1u64);
        qm.reset();
        assert!(qm.is_empty());
        assert_eq!(qm.threshold(), None);
    }
}
