//! Exponential-decay q-MAX (Section 5 of the paper).

use crate::entry::OrderedF64;
use crate::error::QMaxError;
use crate::traits::{BatchInsert, QMax};

/// Log-domain offset `t·λ` beyond which the structure automatically
/// rebases (see [`ExpDecayQMax::rebase`]). At this offset an `f64`'s
/// 52-bit mantissa still resolves log-score differences of about
/// `2⁻¹² ≈ 2.4·10⁻⁴` — weight ratios of ~0.02% — which is far below any
/// meaningful decay distinction.
const REBASE_OFFSET_LIMIT: f64 = (1u64 << 40) as f64;

/// q-MAX under the exponential-decay aging model.
///
/// With aging parameter `c ∈ (0, 1]`, an item of value `v` that arrived
/// at time `i` has weight `v · c^(t−i)` at the current time `t`, so
/// newer items outweigh older ones of the same value. Instead of
/// re-aging stored items, the structure feeds the *un-decayed* value
/// `v · c^(−i)` — numerically, its logarithm `ln v − i·ln c` — into an
/// ordinary q-MAX backend: the relative order of un-decayed values at
/// any time `t` equals the order of decayed weights.
///
/// # Precision horizon
///
/// The stored score is `ln v + i·λ` with `λ = −ln c`, and the offset
/// `i·λ` grows without bound as the arrival counter `i` climbs. An
/// `f64` has a 52-bit mantissa, so once the offset reaches `2⁴⁰` the
/// representable spacing between scores is `≈ 2⁻¹²` in the log domain:
/// two items whose decayed weights differ by less than ~0.02% become
/// indistinguishable, and the error keeps doubling every doubling of
/// the offset. For strong decay (`c = 0.5`, `λ ≈ 0.69`) that horizon is
/// ~1.6·10¹² arrivals; for mild decay (`c = 0.999`) it is ~10¹⁵. To
/// keep the structure sound for arbitrarily long streams,
/// [`insert`](ExpDecayQMax::insert) *rebases* automatically when the
/// offset crosses `2⁴⁰`:
/// it subtracts the current offset from every retained score and
/// restarts the clock, which leaves all score *comparisons* — and hence
/// the top-`q` — unchanged.
///
/// The type is generic over its backend so the paper's comparisons
/// (Figure 7: heap / skip list / q-MAX) reuse the same transform.
///
/// ```
/// use qmax_core::{AmortizedQMax, ExpDecayQMax, QMax};
/// // Strong decay: each step halves old weights.
/// let mut ed = ExpDecayQMax::new(AmortizedQMax::new(2, 0.5), 0.5);
/// ed.insert(1u32, 100.0); // weight decays quickly
/// for i in 2..100u32 {
///     ed.insert(i, 1.0);
/// }
/// let ids: Vec<u32> = ed.query().into_iter().map(|(id, _)| id).collect();
/// // The early large item has decayed below the recent small ones.
/// assert!(!ids.contains(&1));
/// ```
#[derive(Debug, Clone)]
pub struct ExpDecayQMax<Q> {
    backend: Q,
    /// `−ln c ≥ 0`; added per time step to incoming log-values.
    lambda: f64,
    /// Arrival counter (the logical time `i`).
    time: u64,
    /// Non-positive / non-finite values skipped (not panicked on) by
    /// the trait-dispatched insert paths.
    skipped_invalid: u64,
}

impl<Q> ExpDecayQMax<Q> {
    /// Wraps `backend` with exponential decay of parameter `c` (the
    /// paper's aging parameter; `c = 1` disables decay).
    ///
    /// # Panics
    ///
    /// Panics if `c` is not in `(0, 1]`. Use
    /// [`ExpDecayQMax::try_new`] at fallible API boundaries.
    pub fn new(backend: Q, c: f64) -> Self {
        Self::try_new(backend, c).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`ExpDecayQMax::new`]: rejects `c` outside `(0, 1]`
    /// (including NaN) instead of panicking.
    pub fn try_new(backend: Q, c: f64) -> Result<Self, QMaxError> {
        if !(c > 0.0 && c <= 1.0) {
            return Err(QMaxError::BadDecay(c));
        }
        Ok(ExpDecayQMax {
            backend,
            lambda: -c.ln(),
            time: 0,
            skipped_invalid: 0,
        })
    }

    /// Invalid (non-positive / non-finite) values skipped so far by the
    /// trait-dispatched [`QMax::insert`] and
    /// [`BatchInsert::insert_batch`] paths. The inherent
    /// [`ExpDecayQMax::insert`] still panics instead of counting.
    pub fn skipped_invalid(&self) -> u64 {
        self.skipped_invalid
    }

    /// The current logical time (number of arrivals so far).
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Access to the wrapped backend.
    pub fn backend(&self) -> &Q {
        &self.backend
    }

    /// The current log-domain offset `t·λ` added to incoming scores.
    /// Grows linearly with the stream; see the type-level docs for the
    /// precision horizon it implies.
    pub fn log_offset(&self) -> f64 {
        self.time as f64 * self.lambda
    }

    /// Whether the log offset has crossed the safe precision bound and
    /// the next insert will trigger an automatic [`rebase`]
    /// (`ExpDecayQMax::rebase`).
    pub fn needs_rebase(&self) -> bool {
        self.log_offset() > REBASE_OFFSET_LIMIT
    }

    /// The decayed weight of a stored transformed value at the current
    /// time: `exp(stored − t·λ)` where `stored = ln v + i·λ`.
    pub fn decayed_weight(&self, stored: OrderedF64) -> f64 {
        (stored.get() - self.time as f64 * self.lambda).exp()
    }
}

impl<Q> ExpDecayQMax<Q> {
    /// Offers an item with (positive) value `val`; its effective weight
    /// from now on decays by a factor `c` per subsequent arrival.
    ///
    /// Returns `true` if the backend admitted the item.
    ///
    /// # Panics
    ///
    /// Panics if `val` is not a positive finite number. Use
    /// [`ExpDecayQMax::try_insert`] where the stream may carry
    /// corrupted values (a measurement path must not die on one bad
    /// parse).
    pub fn insert<I>(&mut self, id: I, val: f64) -> bool
    where
        Q: QMax<I, OrderedF64>,
    {
        self.try_insert(id, val).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible insert: offers the item if `val` is a positive finite
    /// number, and returns [`QMaxError::BadValue`] otherwise — without
    /// touching the backend or advancing the decay clock (a rejected
    /// value is not an arrival).
    pub fn try_insert<I>(&mut self, id: I, val: f64) -> Result<bool, QMaxError>
    where
        Q: QMax<I, OrderedF64>,
    {
        if !(val > 0.0 && val.is_finite()) {
            return Err(QMaxError::BadValue(val));
        }
        if self.needs_rebase() {
            self.rebase();
        }
        let transformed = val.ln() + self.time as f64 * self.lambda;
        debug_assert!(
            transformed.is_finite(),
            "log-domain score overflowed; rebase failed to bound the offset"
        );
        self.time += 1;
        Ok(self.backend.insert(id, OrderedF64(transformed)))
    }

    /// Subtracts the current log offset `t·λ` from every retained score
    /// and restarts the clock at zero. Score *comparisons* — and hence
    /// the top-`q` — are unchanged (all scores shift by the same
    /// constant), so this is safe to call at any point; `insert` calls
    /// it automatically past the precision horizon.
    ///
    /// The backend's admission threshold Ψ is dropped in the process
    /// (it would be stale after the shift), so the next few arrivals
    /// are admitted unfiltered until a compaction re-establishes it.
    pub fn rebase<I>(&mut self)
    where
        Q: QMax<I, OrderedF64>,
    {
        let offset = self.log_offset();
        let kept = self.backend.query();
        self.backend.reset();
        for (id, score) in kept {
            self.backend.insert(id, OrderedF64(score.get() - offset));
        }
        self.time = 0;
    }

    /// Lists the `q` items with the largest decayed weights. The values
    /// returned are the internal transformed scores; convert with
    /// [`ExpDecayQMax::decayed_weight`] if absolute weights are needed.
    pub fn query<I>(&mut self) -> Vec<(I, OrderedF64)>
    where
        Q: QMax<I, OrderedF64>,
    {
        self.backend.query()
    }

    /// Clears the structure and restarts time at zero.
    pub fn reset<I>(&mut self)
    where
        Q: QMax<I, OrderedF64>,
    {
        self.backend.reset();
        self.time = 0;
        self.skipped_invalid = 0;
    }
}

/// [`QMax`] over pre-wrapped raw values: `insert(id, OrderedF64(v))`
/// applies the decay transform to `v` exactly like the inherent
/// [`ExpDecayQMax::insert`]. This lets decayed reservoirs slot into
/// generic harnesses (shard hosts, benchmarks) that drive any
/// `QMax<I, OrderedF64>`.
///
/// Unlike the inherent insert, the trait paths **skip and count**
/// non-positive / non-finite values (see
/// [`ExpDecayQMax::skipped_invalid`]) instead of panicking: a generic
/// serving stack feeding a decayed shard must shed a corrupted item,
/// not die on it. A skipped item is not an arrival — the decay clock
/// does not advance — so a stream with invalid items interleaved ages
/// exactly like the same stream with them removed.
impl<I, Q: QMax<I, OrderedF64>> QMax<I, OrderedF64> for ExpDecayQMax<Q> {
    fn insert(&mut self, id: I, val: OrderedF64) -> bool {
        // Inherent inserts take raw f64 and win method resolution at
        // call sites; this trait path unwraps and re-dispatches.
        match ExpDecayQMax::try_insert(self, id, val.get()) {
            Ok(admitted) => admitted,
            Err(_) => {
                self.skipped_invalid += 1;
                false
            }
        }
    }

    fn query(&mut self) -> Vec<(I, OrderedF64)> {
        self.backend.query()
    }

    fn reset(&mut self) {
        self.backend.reset();
        self.time = 0;
        self.skipped_invalid = 0;
    }

    fn q(&self) -> usize {
        self.backend.q()
    }

    fn len(&self) -> usize {
        self.backend.len()
    }

    /// Always `None`: the stored score of an arriving item depends on
    /// the arrival *time* (`ln v + i·λ`), so no fixed raw-value cutoff
    /// is valid for future items — an external Ψ-prefilter comparing
    /// raw values would wrongly drop recent items whose time boost
    /// lifts them above older retained scores.
    fn threshold(&self) -> Option<OrderedF64> {
        None
    }

    fn name(&self) -> &'static str {
        "exp-decay"
    }

    /// The wrapped reservoir's label — lets the adaptive backend's
    /// decision show through the decay wrapper.
    fn backend_label(&self) -> &'static str {
        self.backend.backend_label()
    }
}

impl<I: Clone, Q: BatchInsert<I, OrderedF64>> BatchInsert<I, OrderedF64> for ExpDecayQMax<Q> {
    /// Stamps the whole batch with its per-item log-transformed scores
    /// in one pass, then hands the transformed chunk to the backend's
    /// batch kernel — on structure-of-arrays backends the branchless
    /// chunked Ψ-filter runs over the decayed scores.
    ///
    /// Non-positive / non-finite values are **skipped and counted**
    /// ([`ExpDecayQMax::skipped_invalid`]) rather than aborting the
    /// batch mid-way: the valid remainder is inserted exactly as if the
    /// invalid items had never been in the stream (they advance neither
    /// the decay clock nor the backend).
    fn insert_batch(&mut self, items: &[(I, OrderedF64)]) -> usize {
        if self.needs_rebase() {
            self.rebase();
        }
        let mut transformed: Vec<(I, OrderedF64)> = Vec::with_capacity(items.len());
        for (id, val) in items {
            let v = val.get();
            if !(v > 0.0 && v.is_finite()) {
                self.skipped_invalid += 1;
                continue;
            }
            let score = v.ln() + self.time as f64 * self.lambda;
            debug_assert!(
                score.is_finite(),
                "log-domain score overflowed; rebase failed to bound the offset"
            );
            self.time += 1;
            transformed.push((id.clone(), OrderedF64(score)));
        }
        self.backend.insert_batch(&transformed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amortized::AmortizedQMax;
    use crate::deamortized::DeamortizedQMax;
    use crate::heap::HeapQMax;
    use crate::soa::SoaAmortizedQMax;

    /// Brute-force reference: decayed weight of item i at time t.
    fn reference_top(vals: &[f64], c: f64, q: usize) -> Vec<usize> {
        let t = vals.len() as f64;
        let mut scored: Vec<(f64, usize)> = vals
            .iter()
            .enumerate()
            .map(|(i, &v)| (v * c.powf(t - i as f64), i))
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        let mut ids: Vec<usize> = scored[..q].iter().map(|&(_, i)| i).collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn matches_brute_force_decay() {
        let mut state = 3u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 1000 + 1) as f64
        };
        for c in [0.75, 0.9, 0.99] {
            let vals: Vec<f64> = (0..500).map(|_| next()).collect();
            let q = 8;
            let mut ed = ExpDecayQMax::new(AmortizedQMax::new(q, 0.5), c);
            for (i, &v) in vals.iter().enumerate() {
                ed.insert(i, v);
            }
            let mut got: Vec<usize> = ed.query().into_iter().map(|(id, _)| id).collect();
            got.sort_unstable();
            assert_eq!(got, reference_top(&vals, c, q), "c={c}");
        }
    }

    #[test]
    fn no_decay_reduces_to_plain_qmax() {
        let mut ed = ExpDecayQMax::new(HeapQMax::new(3), 1.0);
        for (i, v) in [5.0, 1.0, 9.0, 3.0, 7.0].into_iter().enumerate() {
            ed.insert(i as u32, v);
        }
        let mut ids: Vec<u32> = ed.query().into_iter().map(|(id, _)| id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 2, 4]);
    }

    #[test]
    fn recency_beats_magnitude_under_strong_decay() {
        let mut ed = ExpDecayQMax::new(DeamortizedQMax::new(4, 0.5), 0.5);
        ed.insert(0u32, 1_000_000.0);
        for i in 1..200u32 {
            ed.insert(i, 2.0);
        }
        let ids: Vec<u32> = ed.query().into_iter().map(|(id, _)| id).collect();
        assert_eq!(ids.len(), 4);
        assert!(
            ids.iter().all(|&id| id >= 196),
            "stale item survived: {ids:?}"
        );
    }

    #[test]
    fn decayed_weight_roundtrip() {
        let mut ed = ExpDecayQMax::new(HeapQMax::new(1), 0.9);
        ed.insert(0u32, 8.0);
        ed.insert(1u32, 1.0);
        let (_, stored) = ed.query().pop().unwrap();
        // Item 0 has weight 8 * 0.9^2 at time 2.
        let w = ed.decayed_weight(stored);
        assert!((w - 8.0 * 0.81).abs() < 1e-9, "got {w}");
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn non_positive_value_panics() {
        let mut ed = ExpDecayQMax::new(HeapQMax::new(1), 0.9);
        ed.insert(0u32, 0.0);
    }

    #[test]
    fn try_insert_rejects_without_advancing_the_clock() {
        let mut ed = ExpDecayQMax::new(HeapQMax::new(4), 0.9);
        for bad in [0.0, -3.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(matches!(
                ed.try_insert(7u32, bad),
                Err(QMaxError::BadValue(_))
            ));
        }
        assert_eq!(ed.time(), 0, "rejected values must not age the stream");
        assert_eq!(ed.try_insert(1u32, 5.0), Ok(true));
        assert_eq!(ed.time(), 1);
    }

    #[test]
    fn batch_skips_and_counts_invalid_items() {
        // NaN / 0.0 / ∞ interleaved into a valid stream: the batch path
        // must shed them (counted) and land exactly the state of the
        // same stream with the invalid items removed.
        let raw: Vec<f64> = (0..500)
            .map(|i| match i % 7 {
                0 => f64::NAN,
                3 => 0.0,
                5 => f64::INFINITY,
                _ => (i % 97 + 1) as f64,
            })
            .collect();
        let valid: Vec<f64> = raw
            .iter()
            .copied()
            .filter(|v| v.is_finite() && *v > 0.0)
            .collect();
        let q = 16;
        let mut dirty = ExpDecayQMax::new(SoaAmortizedQMax::new(q, 0.5), 0.95);
        let mut clean = ExpDecayQMax::new(SoaAmortizedQMax::new(q, 0.5), 0.95);
        let dirty_items: Vec<(u32, OrderedF64)> = raw
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as u32, OrderedF64(v)))
            .collect();
        for span in dirty_items.chunks(64) {
            dirty.insert_batch(span);
        }
        for (i, &v) in valid.iter().enumerate() {
            clean.insert(i as u32, v);
        }
        assert_eq!(
            dirty.skipped_invalid(),
            (raw.len() - valid.len()) as u64,
            "every invalid item must be counted"
        );
        assert_eq!(dirty.time(), clean.time(), "decay clocks diverged");
        let scores = |v: Vec<(u32, OrderedF64)>| {
            let mut v: Vec<OrderedF64> = v.into_iter().map(|(_, s)| s).collect();
            v.sort();
            v
        };
        assert_eq!(scores(dirty.query()), scores(clean.query()));
    }

    #[test]
    fn trait_insert_sheds_invalid_items_instead_of_panicking() {
        let mut ed = ExpDecayQMax::new(HeapQMax::new(2), 0.9);
        assert!(QMax::insert(&mut ed, 0u32, OrderedF64(4.0)));
        assert!(!QMax::insert(&mut ed, 1u32, OrderedF64(f64::NAN)));
        assert!(!QMax::insert(&mut ed, 2u32, OrderedF64(-1.0)));
        assert_eq!(ed.skipped_invalid(), 2);
        assert_eq!(ed.time(), 1);
        ed.reset();
        assert_eq!(ed.skipped_invalid(), 0);
    }

    #[test]
    fn try_new_rejects_bad_decay() {
        assert!(matches!(
            ExpDecayQMax::try_new(HeapQMax::<u32, OrderedF64>::new(1), 0.0),
            Err(QMaxError::BadDecay(_))
        ));
        assert!(matches!(
            ExpDecayQMax::try_new(HeapQMax::<u32, OrderedF64>::new(1), f64::NAN),
            Err(QMaxError::BadDecay(_))
        ));
        assert!(ExpDecayQMax::try_new(HeapQMax::<u32, OrderedF64>::new(1), 1.0).is_ok());
    }

    #[test]
    #[should_panic(expected = "decay parameter")]
    fn bad_decay_panics() {
        let _ = ExpDecayQMax::new(HeapQMax::<u32, OrderedF64>::new(1), 1.5);
    }

    #[test]
    fn backend_accessor_and_time_counter() {
        let mut ed = ExpDecayQMax::new(HeapQMax::new(4), 0.9);
        assert_eq!(ed.time(), 0);
        for i in 0..10u32 {
            ed.insert(i, 2.0);
        }
        assert_eq!(ed.time(), 10);
        assert_eq!(ed.backend().len(), 4);
    }

    #[test]
    fn ties_resolve_to_most_recent_under_decay() {
        // Equal raw values: decay must prefer the newest items.
        let mut ed = ExpDecayQMax::new(HeapQMax::new(3), 0.5);
        for i in 0..100u32 {
            ed.insert(i, 7.0);
        }
        let mut ids: Vec<u32> = ed.query().into_iter().map(|(id, _)| id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![97, 98, 99]);
    }

    #[test]
    fn reset_restarts_time() {
        let mut ed = ExpDecayQMax::new(HeapQMax::new(2), 0.8);
        for i in 0..50u32 {
            ed.insert(i, 1.0);
        }
        ed.reset();
        assert_eq!(ed.time(), 0);
        ed.insert(0u32, 3.0);
        assert_eq!(ed.query().len(), 1);
    }

    #[test]
    fn rebase_preserves_ranking_and_weights() {
        let mut ed = ExpDecayQMax::new(HeapQMax::new(3), 0.5);
        for i in 0..40u32 {
            ed.insert(i, f64::from(i % 7) + 1.0);
        }
        let before: Vec<(u32, f64)> = {
            let mut v: Vec<(u32, f64)> = ed
                .query()
                .into_iter()
                .map(|(id, s)| (id, ed.decayed_weight(s)))
                .collect();
            v.sort_by_key(|a| a.0);
            v
        };
        assert!(ed.log_offset() > 0.0);
        ed.rebase();
        assert_eq!(ed.time(), 0);
        assert_eq!(ed.log_offset(), 0.0);
        let after: Vec<(u32, f64)> = {
            let mut v: Vec<(u32, f64)> = ed
                .query()
                .into_iter()
                .map(|(id, s)| (id, ed.decayed_weight(s)))
                .collect();
            v.sort_by_key(|a| a.0);
            v
        };
        assert_eq!(before.len(), after.len());
        for ((id_b, w_b), (id_a, w_a)) in before.iter().zip(&after) {
            assert_eq!(id_b, id_a);
            assert!((w_b - w_a).abs() < 1e-9 * w_b.max(1.0), "{w_b} vs {w_a}");
        }
        // The structure keeps working after a rebase: recency still wins.
        for i in 100..140u32 {
            ed.insert(i, 1.0);
        }
        let ids: Vec<u32> = ed.query().into_iter().map(|(id, _)| id).collect();
        assert!(
            ids.iter().all(|&id| id >= 137),
            "stale after rebase: {ids:?}"
        );
    }

    #[test]
    fn batch_insert_matches_singletons_on_soa_backend() {
        let mut state = 21u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 1000 + 1) as f64
        };
        let vals: Vec<f64> = (0..2000).map(|_| next()).collect();
        let q = 16;
        let mut one = ExpDecayQMax::new(AmortizedQMax::new(q, 0.5), 0.9);
        let mut batch = ExpDecayQMax::new(SoaAmortizedQMax::new(q, 0.5), 0.9);
        for (i, &v) in vals.iter().enumerate() {
            one.insert(i as u32, v);
        }
        let items: Vec<(u32, OrderedF64)> = vals
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as u32, OrderedF64(v)))
            .collect();
        for span in items.chunks(128) {
            batch.insert_batch(span);
        }
        let scores = |v: Vec<(u32, OrderedF64)>| {
            let mut v: Vec<OrderedF64> = v.into_iter().map(|(_, s)| s).collect();
            v.sort();
            v
        };
        assert_eq!(scores(one.query()), scores(batch.query()));
    }
}
