//! SIMD-probed open-addressing flow table for the keyed paths.
//!
//! BENCH_windows.json puts the LRFU caches at 3–6 MIPS while the core
//! q-MAX structures run at 237–428 MIPS: the per-packet keyed lookup
//! (`std::collections::HashMap` + SipHash) dominates exactly the paths
//! the paper's caching and priority-sampling applications live on. This
//! module replaces it with a swiss-table-style index tuned for those
//! paths:
//!
//! * **Cache-line-bucketed groups.** One control byte per slot, 16
//!   bytes per group (a quarter cache line), so one
//!   [`ProbeKernel::match_byte`] compare — `pcmpeqb`/`cmeq.16b` where
//!   available, a portable loop otherwise — filters 16 candidate slots
//!   at once. `QMAX_FORCE_SCALAR=1` pins the portable probe.
//! * **Fixed-seed multiplicative hashing.** [`FixedState`] is an
//!   FxHash-style 1-multiply hasher: deterministic across runs (replay
//!   oracles stay exact) and an order of magnitude cheaper than SipHash
//!   on 8-byte flow keys. Group index and 7-bit tag come from disjoint
//!   hash bits.
//! * **Tombstone-free deletion.** Removal backward-shifts eligible
//!   entries group-by-group to re-close the probe chain, so a table
//!   that sees heavy eviction churn (every cache miss evicts) never
//!   accumulates tombstones and never needs a cleanup rehash.
//! * **Incremental resize.** Growth swaps in a double-size live core
//!   and migrates a fixed span ([`MIGRATE_GROUPS_PER_STEP`] groups) of
//!   the old core per subsequent insert/remove, so the q-MAX worst-case
//!   per-update bounds survive: no operation ever pays an `O(n)`
//!   rehash.
//!
//! The [`KeyIndex`] trait + [`IndexFamily`] GAT let every keyed
//! consumer (`QMaxLrfu`, `DeamortizedLrfu`, `DedupQMax`,
//! `IndexedHeapQMax`, the keyed apps) stay generic over the index:
//! [`FlowIndex`] is the default, [`StdIndex`] keeps the HashMap-era
//! behaviour available as a baseline and as the oracle for the
//! differential battery in `tests/proptest_flow_table.rs`.
//!
//! # Control bytes and probing
//!
//! Each slot's control byte is either a 7-bit tag (`0x00..=0x7F`, the
//! low hash bits of the resident key), [`EMPTY`] (`0x80`), or
//! [`DRAINED`] (`0x81`). A probe for hash `h` starts at home group
//! `(h >> 7) & mask` and walks groups linearly: in each group it
//! matches the tag mask (candidate slots, verified by key compare) and
//! the `EMPTY` mask (any empty byte ⇒ the key cannot live further
//! along the chain ⇒ stop). `DRAINED` bytes match neither mask, so
//! probes flow *through* groups the resize migration has already
//! emptied without terminating early — that single property is what
//! lets migration drain whole groups without threading cursor checks
//! into the hot probe loop.
//!
//! # Deletion invariant
//!
//! The probe's early stop is sound because insertion always places a
//! key at the first empty slot on its chain, establishing: *for every
//! resident entry `e`, no group strictly between `home(e)` and
//! `group(e)` (in probe order) contains an `EMPTY` byte.* Deletion
//! must re-establish it: clearing a slot in group `d` is only safe
//! outright if `d` already contained another `EMPTY` (then no chain
//! passes through `d`). Otherwise the new hole is the chain's only
//! break, and the scan in [`Core::backward_shift`] walks groups past
//! `d` looking for an entry whose home makes the hole a legal
//! position (`dist(home, hole) < dist(home, current)`); moving it
//! relocates the hole forward, and the scan repeats until the hole
//! lands in a group that already had an `EMPTY` or every later group
//! has been ruled out.

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasher, Hash, Hasher};

use qmax_select::{prefetch_read, ProbeKernel, GROUP_WIDTH};

/// Control byte for a never-used (or deleted-and-reclosed) slot.
/// Probes stop at the first group containing one.
pub const EMPTY: u8 = 0x80;

/// Control byte for a slot the incremental resize has migrated out of
/// the old core (or evicted from it mid-migration). Matches no tag and
/// is not `EMPTY`, so probes pass through without stopping; only the
/// old core ever contains it.
pub const DRAINED: u8 = 0x81;

/// Old-core groups migrated per insert/remove while a resize is in
/// flight. The live core doubles the old one, and growth triggers at
/// 7/8 load, so draining ≥1 group per mutation finishes migration long
/// before the live core can fill; 2 keeps the tail comfortably short
/// while staying O(1) per update.
pub const MIGRATE_GROUPS_PER_STEP: usize = 2;

const LOAD_NUM: usize = 7;
const LOAD_DEN: usize = 8;

/// Keys processed per stage of the batched-probe software pipeline:
/// each stage hashes this many keys and issues a prefetch for every
/// home group *before* resolving any of the probes, so up to this many
/// cache-miss chains are in flight at once. 32 comfortably exceeds the
/// line-fill-buffer depth of current cores (10–16) without pushing the
/// oldest prefetched line out of L1 before its resolve runs.
pub const PROBE_PIPELINE: usize = 32;

// ---------------------------------------------------------------------------
// Fixed-seed multiplicative hasher
// ---------------------------------------------------------------------------

/// FxHash multiplier (the Firefox/rustc constant): one odd 64-bit
/// factor, so the map `x → x·K mod 2⁶⁴` is a bijection and its inverse
/// can be used to craft adversarial same-group keys in tests.
pub const FX_K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fixed-seed [`BuildHasher`] producing [`FxHasher`]s. Deterministic
/// across runs and processes by construction — required so replay
/// oracles and the differential battery stay exact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FixedState;

impl BuildHasher for FixedState {
    type Hasher = FxHasher;
    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher { hash: 0 }
    }
}

/// FxHash: `hash = (hash.rotate_left(5) ^ word) · K` per 8-byte word.
/// One multiply per word makes it ~10× cheaper than SipHash on the
/// 8-byte flow keys the measurement apps use.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }
    #[inline]
    fn write_u8(&mut self, x: u8) {
        self.add(u64::from(x));
    }
    #[inline]
    fn write_u16(&mut self, x: u16) {
        self.add(u64::from(x));
    }
    #[inline]
    fn write_u32(&mut self, x: u32) {
        self.add(u64::from(x));
    }
    #[inline]
    fn write_u64(&mut self, x: u64) {
        self.add(x);
    }
    #[inline]
    fn write_u128(&mut self, x: u128) {
        self.add(x as u64);
        self.add((x >> 64) as u64);
    }
    #[inline]
    fn write_usize(&mut self, x: usize) {
        self.add(x as u64);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

// ---------------------------------------------------------------------------
// One open-addressing core (ctrl bytes + slots)
// ---------------------------------------------------------------------------

/// Split a hash into (home group, 7-bit tag) for a core with
/// `group_mask = groups - 1`. Disjoint bit ranges: the tag is the low
/// 7 bits, the group index the bits above them.
#[inline]
fn split_hash(h: u64, group_mask: usize) -> (usize, u8) {
    (((h >> 7) as usize) & group_mask, (h & 0x7F) as u8)
}

#[inline]
fn group_ctrl(ctrl: &[u8], g: usize) -> &[u8; GROUP_WIDTH] {
    ctrl[g * GROUP_WIDTH..(g + 1) * GROUP_WIDTH]
        .try_into()
        .expect("ctrl is a whole number of groups")
}

/// One flat open-addressing array: `groups * 16` control bytes plus
/// the matching slots. Two of these exist while a resize is migrating.
#[derive(Clone)]
struct Core<K, V> {
    ctrl: Vec<u8>,
    slots: Vec<Option<(K, V)>>,
    /// `groups - 1`; groups is always a power of two.
    group_mask: usize,
    len: usize,
}

impl<K, V> Core<K, V> {
    fn new(groups: usize) -> Self {
        debug_assert!(groups.is_power_of_two());
        let n = groups * GROUP_WIDTH;
        Core {
            ctrl: vec![EMPTY; n],
            slots: (0..n).map(|_| None).collect(),
            group_mask: groups - 1,
            len: 0,
        }
    }

    #[inline]
    fn groups(&self) -> usize {
        self.group_mask + 1
    }

    #[inline]
    fn capacity_slots(&self) -> usize {
        self.ctrl.len()
    }
}

impl<K: Hash + Eq, V> Core<K, V> {
    /// Probe for `key`; returns its slot index. Stops at the first
    /// group containing an `EMPTY` byte; bounded by the group count so
    /// it terminates even on a core with no empty bytes left (all
    /// drained, during the tail of a migration).
    #[inline]
    fn find(&self, h: u64, key: &K, probe: &ProbeKernel) -> Option<usize> {
        let (mut g, tag) = split_hash(h, self.group_mask);
        for _ in 0..self.groups() {
            let ctrl = group_ctrl(&self.ctrl, g);
            let mut m = probe.match_byte(ctrl, tag);
            while m != 0 {
                let i = m.trailing_zeros() as usize;
                m &= m - 1;
                let s = g * GROUP_WIDTH + i;
                if let Some((k, _)) = &self.slots[s] {
                    if k == key {
                        return Some(s);
                    }
                }
            }
            if probe.match_byte(ctrl, EMPTY) != 0 {
                return None;
            }
            g = (g + 1) & self.group_mask;
        }
        None
    }

    /// Place a key known to be absent at the first empty slot on its
    /// chain. The caller guarantees at least one `EMPTY` byte exists.
    #[inline]
    fn insert_fresh(&mut self, h: u64, key: K, val: V, probe: &ProbeKernel) -> usize {
        let (mut g, tag) = split_hash(h, self.group_mask);
        loop {
            let ctrl = group_ctrl(&self.ctrl, g);
            let e = probe.match_byte(ctrl, EMPTY);
            if e != 0 {
                let s = g * GROUP_WIDTH + e.trailing_zeros() as usize;
                self.ctrl[s] = tag;
                self.slots[s] = Some((key, val));
                self.len += 1;
                return s;
            }
            g = (g + 1) & self.group_mask;
        }
    }

    /// Probe-order distance from group `a` to group `b`.
    #[inline]
    fn dist(&self, a: usize, b: usize) -> usize {
        (b.wrapping_sub(a)) & self.group_mask
    }

    /// Re-close the probe chain after clearing `hole` (its ctrl byte is
    /// already `EMPTY`, its slot `None`). See the module docs for the
    /// invariant this restores.
    fn backward_shift(&mut self, mut hole: usize, probe: &ProbeKernel, state: &FixedState) {
        'relocate: loop {
            let hd = hole / GROUP_WIDTH;
            // A second EMPTY in the hole's group means no chain passes
            // through it; the hole may stay.
            if probe
                .match_byte(group_ctrl(&self.ctrl, hd), EMPTY)
                .count_ones()
                >= 2
            {
                return;
            }
            let mut g = (hd + 1) & self.group_mask;
            for _ in 1..self.groups() {
                let ctrl = group_ctrl(&self.ctrl, g);
                for (i, &c) in ctrl.iter().enumerate() {
                    if c >= EMPTY {
                        continue;
                    }
                    let s = g * GROUP_WIDTH + i;
                    let home = {
                        let (k, _) = self.slots[s].as_ref().expect("tagged slot is occupied");
                        split_hash(state.hash_one(k), self.group_mask).0
                    };
                    // Eligible iff the hole's group lies strictly
                    // earlier on this entry's chain than its current
                    // group — moving it keeps it reachable.
                    if self.dist(home, hd) < self.dist(home, g) {
                        self.ctrl[hole] = self.ctrl[s];
                        self.slots[hole] = self.slots[s].take();
                        self.ctrl[s] = EMPTY;
                        hole = s;
                        continue 'relocate;
                    }
                }
                if probe.match_byte(ctrl, EMPTY) != 0 {
                    // Pre-existing EMPTY in g: no chain continues past
                    // g, so no later entry can be eligible either.
                    return;
                }
                g = (g + 1) & self.group_mask;
            }
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// FlowTable
// ---------------------------------------------------------------------------

/// The SIMD-probed open-addressing map. See the module docs for the
/// design; the API mirrors the `HashMap` subset the keyed paths use.
#[derive(Clone)]
pub struct FlowTable<K, V> {
    live: Core<K, V>,
    /// Source core of an in-flight incremental resize, if any.
    old: Option<Core<K, V>>,
    /// Next old-core group the migration will drain.
    cursor: usize,
    probe: ProbeKernel,
    state: FixedState,
    resizes: u64,
}

impl<K: Hash + Eq, V> fmt::Debug for FlowTable<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlowTable")
            .field("len", &self.len())
            .field("groups", &self.live.groups())
            .field("migrating", &self.old.is_some())
            .field("resizes", &self.resizes)
            .field("probe", &self.probe.kind())
            .finish()
    }
}

impl<K: Hash + Eq, V> Default for FlowTable<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Hash + Eq, V> FlowTable<K, V> {
    /// An empty table with the runtime-detected probe kernel
    /// (`QMAX_FORCE_SCALAR=1` pins the portable probe).
    pub fn new() -> Self {
        Self::with_capacity_and_probe(0, ProbeKernel::detect())
    }

    /// An empty table sized so `cap` entries fit without resizing.
    pub fn with_capacity(cap: usize) -> Self {
        Self::with_capacity_and_probe(cap, ProbeKernel::detect())
    }

    /// An empty table with an explicit probe kernel — the hook the
    /// differential battery uses to compare a forced-scalar table
    /// against a dispatched one in the same process.
    pub fn with_capacity_and_probe(cap: usize, probe: ProbeKernel) -> Self {
        let mut groups = 1usize;
        while groups * GROUP_WIDTH * LOAD_NUM < cap * LOAD_DEN {
            groups *= 2;
        }
        FlowTable {
            live: Core::new(groups),
            old: None,
            cursor: 0,
            probe,
            state: FixedState,
            resizes: 0,
        }
    }

    /// Number of resident entries (both cores during a migration).
    #[inline]
    pub fn len(&self) -> usize {
        self.live.len + self.old.as_ref().map_or(0, |o| o.len)
    }

    /// Whether the table holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many incremental resizes the table has started — exposed so
    /// tests can assert a key stream actually crossed resize
    /// boundaries mid-stream.
    #[inline]
    pub fn resizes(&self) -> u64 {
        self.resizes
    }

    /// Whether a resize migration is currently in flight.
    #[inline]
    pub fn is_migrating(&self) -> bool {
        self.old.is_some()
    }

    /// The probe kernel this table dispatches group compares to.
    #[inline]
    pub fn probe_kernel(&self) -> ProbeKernel {
        self.probe
    }

    /// Total slot capacity of the live core.
    #[inline]
    pub fn capacity_slots(&self) -> usize {
        self.live.capacity_slots()
    }

    #[inline]
    fn hash(&self, key: &K) -> u64 {
        self.state.hash_one(key)
    }

    /// Drain up to [`MIGRATE_GROUPS_PER_STEP`] old-core groups into the
    /// live core. Called from every mutation; O(1) amortized and
    /// O(group span) worst case.
    #[inline]
    fn step_migration(&mut self) {
        if self.old.is_none() {
            return;
        }
        for _ in 0..MIGRATE_GROUPS_PER_STEP {
            let Some(old) = &mut self.old else { return };
            if self.cursor >= old.groups() {
                self.old = None;
                return;
            }
            let g = self.cursor;
            self.cursor += 1;
            let base = g * GROUP_WIDTH;
            for i in 0..GROUP_WIDTH {
                if old.ctrl[base + i] < EMPTY {
                    let (k, v) = old.slots[base + i].take().expect("tagged slot is occupied");
                    old.len -= 1;
                    let h = self.state.hash_one(&k);
                    self.live.insert_fresh(h, k, v, &self.probe);
                }
                old.ctrl[base + i] = DRAINED;
            }
            if self.cursor >= old.groups() {
                debug_assert_eq!(old.len, 0);
                self.old = None;
                return;
            }
        }
    }

    /// Finish any in-flight migration completely (used before starting
    /// a new resize; a no-op in steady state because draining outpaces
    /// refill by construction).
    fn finish_migration(&mut self) {
        while self.old.is_some() {
            self.step_migration();
        }
    }

    /// Grow if one more insert would push the live core past 7/8 load.
    #[inline]
    fn maybe_grow(&mut self) {
        if (self.live.len + 1) * LOAD_DEN > self.live.capacity_slots() * LOAD_NUM {
            self.finish_migration();
            let groups = self.live.groups() * 2;
            let retired = std::mem::replace(&mut self.live, Core::new(groups));
            self.old = Some(retired);
            self.cursor = 0;
            self.resizes += 1;
        }
    }

    /// A shared reference to the value for `key`.
    #[inline]
    pub fn get(&self, key: &K) -> Option<&V> {
        let h = self.hash(key);
        self.get_prehashed(h, key)
    }

    #[inline]
    fn get_prehashed(&self, h: u64, key: &K) -> Option<&V> {
        if let Some(s) = self.live.find(h, key, &self.probe) {
            return self.live.slots[s].as_ref().map(|(_, v)| v);
        }
        let old = self.old.as_ref()?;
        let s = old.find(h, key, &self.probe)?;
        old.slots[s].as_ref().map(|(_, v)| v)
    }

    /// A mutable reference to the value for `key`.
    #[inline]
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let h = self.hash(key);
        self.get_mut_prehashed(h, key)
    }

    #[inline]
    fn get_mut_prehashed(&mut self, h: u64, key: &K) -> Option<&mut V> {
        if let Some(s) = self.live.find(h, key, &self.probe) {
            return self.live.slots[s].as_mut().map(|(_, v)| v);
        }
        let old = self.old.as_mut()?;
        let s = old.find(h, key, &self.probe)?;
        old.slots[s].as_mut().map(|(_, v)| v)
    }

    /// Borrow-free residence check: which core holds `key`, and at
    /// which slot. Lets the batch upsert branch on presence and then
    /// take the mutable borrow it needs without re-probing.
    #[inline]
    fn locate(&self, h: u64, key: &K) -> Option<(bool, usize)> {
        if let Some(s) = self.live.find(h, key, &self.probe) {
            return Some((true, s));
        }
        let old = self.old.as_ref()?;
        old.find(h, key, &self.probe).map(|s| (false, s))
    }

    /// Whether `key` is resident.
    #[inline]
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Best-effort prefetch of the home control group (and candidate
    /// slot span) for hash `h` in both cores. Purely a hint: issued for
    /// the *home* group only, which resolves the overwhelming majority
    /// of probes at 7/8 load; chain walks past it pay their misses as
    /// before.
    #[inline]
    fn prefetch_groups(&self, h: u64) {
        let g = split_hash(h, self.live.group_mask).0;
        prefetch_read(&self.live.ctrl, g * GROUP_WIDTH);
        prefetch_read(&self.live.slots, g * GROUP_WIDTH);
        if let Some(old) = &self.old {
            let og = split_hash(h, old.group_mask).0;
            prefetch_read(&old.ctrl, og * GROUP_WIDTH);
            prefetch_read(&old.slots, og * GROUP_WIDTH);
        }
    }

    /// Issue prefetch hints for every key's home group without
    /// resolving any probe — the warm-up half of the batch pipeline,
    /// for callers whose per-key work is too stateful to batch (e.g. a
    /// cache hit path that mutates as it goes) but who still know the
    /// next span of keys in advance.
    pub fn prefetch_keys(&self, keys: &[K]) {
        for k in keys {
            self.prefetch_groups(self.hash(k));
        }
    }

    /// Batched lookup: calls `f(i, value)` once per key, in order.
    ///
    /// Observationally identical to `keys.iter().map(|k| self.get(k))`
    /// — the differential battery replays exactly that equivalence —
    /// but executed as a software pipeline: each [`PROBE_PIPELINE`]-key
    /// stage hashes every key and prefetches every home group before
    /// resolving any probe, so the N dependent cache-miss chains of a
    /// singleton loop overlap into (at most) ⌈N/32⌉ memory round-trips.
    pub fn probe_batch(&self, keys: &[K], mut f: impl FnMut(usize, Option<&V>)) {
        let mut hashes = [0u64; PROBE_PIPELINE];
        for (stage, chunk) in keys.chunks(PROBE_PIPELINE).enumerate() {
            for (j, k) in chunk.iter().enumerate() {
                let h = self.hash(k);
                hashes[j] = h;
                self.prefetch_groups(h);
            }
            let base = stage * PROBE_PIPELINE;
            for (j, k) in chunk.iter().enumerate() {
                f(base + j, self.get_prehashed(hashes[j], k));
            }
        }
    }

    /// Batched mutable lookup: `f(i, value)` once per key, in order.
    /// The pipelined twin of a `get_mut` loop; see [`Self::probe_batch`].
    pub fn get_mut_batch(&mut self, keys: &[K], mut f: impl FnMut(usize, Option<&mut V>)) {
        let mut hashes = [0u64; PROBE_PIPELINE];
        for (stage, chunk) in keys.chunks(PROBE_PIPELINE).enumerate() {
            for (j, k) in chunk.iter().enumerate() {
                let h = self.hash(k);
                hashes[j] = h;
                self.prefetch_groups(h);
            }
            let base = stage * PROBE_PIPELINE;
            for (j, k) in chunk.iter().enumerate() {
                f(base + j, self.get_mut_prehashed(hashes[j], k));
            }
        }
    }

    /// Batched upsert: for each key in order, visit the resident value
    /// (`present = true`) or insert `or_insert(i)` and visit the fresh
    /// value (`present = false`).
    ///
    /// Equivalent, op for op, to the singleton sequence `if let Some(v)
    /// = get_mut(k) { visit } else { insert(k, or_insert(i)); visit }`
    /// — inserts step the incremental migration exactly as
    /// [`Self::insert`] does, so the resize schedule is unchanged. The
    /// hash for each stage is computed once and its home group
    /// prefetched up front; keys are re-probed per op, so a resize
    /// triggered mid-stage only wastes hints, never correctness.
    pub fn entry_batch(
        &mut self,
        keys: &[K],
        mut or_insert: impl FnMut(usize) -> V,
        mut visit: impl FnMut(usize, &mut V, bool),
    ) where
        K: Clone,
    {
        let mut hashes = [0u64; PROBE_PIPELINE];
        for (stage, chunk) in keys.chunks(PROBE_PIPELINE).enumerate() {
            for (j, k) in chunk.iter().enumerate() {
                let h = self.hash(k);
                hashes[j] = h;
                self.prefetch_groups(h);
            }
            let base = stage * PROBE_PIPELINE;
            for (j, k) in chunk.iter().enumerate() {
                let i = base + j;
                let h = hashes[j];
                match self.locate(h, k) {
                    Some((true, s)) => {
                        let (_, v) = self.live.slots[s].as_mut().expect("located slot");
                        visit(i, v, true);
                    }
                    Some((false, s)) => {
                        let old = self.old.as_mut().expect("old core located");
                        let (_, v) = old.slots[s].as_mut().expect("located slot");
                        visit(i, v, true);
                    }
                    None => {
                        // `locate` proved the key absent from both
                        // cores; stepping the migration or growing
                        // cannot make it appear, so skip the re-find
                        // that singleton `insert` pays and write the
                        // fresh slot directly.
                        self.step_migration();
                        self.maybe_grow();
                        let s = self
                            .live
                            .insert_fresh(h, k.clone(), or_insert(i), &self.probe);
                        let (_, v) = self.live.slots[s].as_mut().expect("just inserted");
                        visit(i, v, false);
                    }
                }
            }
        }
    }

    /// Insert or update; returns the previous value if any.
    pub fn insert(&mut self, key: K, val: V) -> Option<V> {
        let h = self.hash(&key);
        self.insert_prehashed(h, key, val)
    }

    fn insert_prehashed(&mut self, h: u64, key: K, val: V) -> Option<V> {
        self.step_migration();
        if let Some(s) = self.live.find(h, &key, &self.probe) {
            let (_, v) = self.live.slots[s].as_mut().expect("found slot is occupied");
            return Some(std::mem::replace(v, val));
        }
        let mut prev = None;
        if let Some(old) = &mut self.old {
            if let Some(s) = old.find(h, &key, &self.probe) {
                // Pull the stale residence out of the old core: the
                // slot byte becomes DRAINED (pass-through, never
                // EMPTY) so old-core chains stay probe-correct.
                let (_, v) = old.slots[s].take().expect("found slot is occupied");
                old.ctrl[s] = DRAINED;
                old.len -= 1;
                prev = Some(v);
            }
        }
        self.maybe_grow();
        self.live.insert_fresh(h, key, val, &self.probe);
        prev
    }

    /// Remove `key`, returning its value. Live-core removals re-close
    /// the probe chain with a backward shift; old-core removals mark
    /// the slot `DRAINED` (the migration reclaims it wholesale).
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.step_migration();
        let h = self.hash(key);
        if let Some(s) = self.live.find(h, key, &self.probe) {
            let (_, v) = self.live.slots[s].take().expect("found slot is occupied");
            self.live.ctrl[s] = EMPTY;
            self.live.len -= 1;
            self.live.backward_shift(s, &self.probe, &self.state);
            return Some(v);
        }
        let old = self.old.as_mut()?;
        let s = old.find(h, key, &self.probe)?;
        let (_, v) = old.slots[s].take().expect("found slot is occupied");
        old.ctrl[s] = DRAINED;
        old.len -= 1;
        Some(v)
    }

    /// Drop every entry, keeping the live core's capacity.
    pub fn clear(&mut self) {
        self.live.ctrl.fill(EMPTY);
        self.live.slots.iter_mut().for_each(|s| *s = None);
        self.live.len = 0;
        self.old = None;
        self.cursor = 0;
    }

    /// Visit every entry (arbitrary order).
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        for core in std::iter::once(&self.live).chain(self.old.iter()) {
            for s in core.slots.iter().flatten() {
                f(&s.0, &s.1);
            }
        }
    }

    /// Drain every entry into `f` (arbitrary order), leaving the table
    /// empty with its capacity retained.
    pub fn drain_each(&mut self, mut f: impl FnMut(K, V)) {
        let mut drain_core = |core: &mut Core<K, V>| {
            for s in core.slots.iter_mut() {
                if let Some((k, v)) = s.take() {
                    f(k, v);
                }
            }
        };
        if let Some(mut old) = self.old.take() {
            drain_core(&mut old);
        }
        drain_core(&mut self.live);
        self.live.ctrl.fill(EMPTY);
        self.live.len = 0;
        self.cursor = 0;
    }

    /// Keep only the entries `f` approves. Implemented as a drain +
    /// rebuild into the same capacity: purges are rare (the apps call
    /// this once per measurement epoch) and a rebuild sidesteps
    /// iterate-while-shifting hazards.
    pub fn retain_with(&mut self, mut f: impl FnMut(&K, &mut V) -> bool) {
        let mut kept: Vec<(K, V)> = Vec::with_capacity(self.len());
        self.drain_each(|k, mut v| {
            if f(&k, &mut v) {
                kept.push((k, v));
            }
        });
        for (k, v) in kept {
            self.insert(k, v);
        }
    }
}

// ---------------------------------------------------------------------------
// KeyIndex abstraction
// ---------------------------------------------------------------------------

/// The `HashMap` subset the keyed q-MAX paths need, so each consumer
/// can be generic over its index implementation.
pub trait KeyIndex<K, V> {
    /// An empty index sized for `cap` entries.
    fn with_capacity(cap: usize) -> Self;
    /// Number of resident entries.
    fn len(&self) -> usize;
    /// Whether the index holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// A shared reference to the value for `key`.
    fn get(&self, key: &K) -> Option<&V>;
    /// A mutable reference to the value for `key`.
    fn get_mut(&mut self, key: &K) -> Option<&mut V>;
    /// Insert or update; returns the previous value if any.
    fn insert(&mut self, key: K, val: V) -> Option<V>;
    /// Remove `key`, returning its value.
    fn remove(&mut self, key: &K) -> Option<V>;
    /// Whether `key` is resident.
    fn contains_key(&self, key: &K) -> bool;
    /// Drop every entry, keeping capacity.
    fn clear(&mut self);
    /// Visit every entry (arbitrary order).
    fn for_each(&self, f: impl FnMut(&K, &V));
    /// Drain every entry into `f`, leaving the index empty.
    fn drain_each(&mut self, f: impl FnMut(K, V));
    /// Keep only the entries `f` approves.
    fn retain_with(&mut self, f: impl FnMut(&K, &mut V) -> bool);

    /// Hint that `keys` are about to be probed. Purely advisory — the
    /// default is a no-op, which is also the correct oracle semantics;
    /// [`FlowTable`] overrides it with home-group prefetches.
    fn prefetch_keys(&self, keys: &[K]) {
        let _ = keys;
    }

    /// Batched lookup: `f(i, value)` once per key, in order. The
    /// default is the plain singleton loop — exactly the semantics an
    /// oracle index must have — so [`StdKeyIndex`] stays a valid
    /// differential baseline; [`FlowTable`] overrides it with the
    /// prefetch-pipelined probe.
    fn probe_batch(&self, keys: &[K], mut f: impl FnMut(usize, Option<&V>)) {
        for (i, k) in keys.iter().enumerate() {
            f(i, self.get(k));
        }
    }

    /// Batched mutable lookup: `f(i, value)` once per key, in order.
    /// Default is the singleton `get_mut` loop (see
    /// [`probe_batch`](KeyIndex::probe_batch)).
    fn get_mut_batch(&mut self, keys: &[K], mut f: impl FnMut(usize, Option<&mut V>)) {
        for (i, k) in keys.iter().enumerate() {
            f(i, self.get_mut(k));
        }
    }

    /// Batched upsert: per key in order, visit the resident value
    /// (`present = true`) or insert `or_insert(i)` and visit the fresh
    /// value (`present = false`). Default is the equivalent singleton
    /// sequence (see [`probe_batch`](KeyIndex::probe_batch)).
    fn entry_batch(
        &mut self,
        keys: &[K],
        mut or_insert: impl FnMut(usize) -> V,
        mut visit: impl FnMut(usize, &mut V, bool),
    ) where
        K: Clone,
    {
        for (i, k) in keys.iter().enumerate() {
            if self.contains_key(k) {
                let v = self.get_mut(k).expect("probed above");
                visit(i, v, true);
            } else {
                self.insert(k.clone(), or_insert(i));
                let v = self.get_mut(k).expect("just inserted");
                visit(i, v, false);
            }
        }
    }
}

impl<K: Hash + Eq, V> KeyIndex<K, V> for FlowTable<K, V> {
    fn with_capacity(cap: usize) -> Self {
        FlowTable::with_capacity(cap)
    }
    fn len(&self) -> usize {
        FlowTable::len(self)
    }
    fn get(&self, key: &K) -> Option<&V> {
        FlowTable::get(self, key)
    }
    fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        FlowTable::get_mut(self, key)
    }
    fn insert(&mut self, key: K, val: V) -> Option<V> {
        FlowTable::insert(self, key, val)
    }
    fn remove(&mut self, key: &K) -> Option<V> {
        FlowTable::remove(self, key)
    }
    fn contains_key(&self, key: &K) -> bool {
        FlowTable::contains_key(self, key)
    }
    fn clear(&mut self) {
        FlowTable::clear(self)
    }
    fn for_each(&self, f: impl FnMut(&K, &V)) {
        FlowTable::for_each(self, f)
    }
    fn drain_each(&mut self, f: impl FnMut(K, V)) {
        FlowTable::drain_each(self, f)
    }
    fn retain_with(&mut self, f: impl FnMut(&K, &mut V) -> bool) {
        FlowTable::retain_with(self, f)
    }
    fn prefetch_keys(&self, keys: &[K]) {
        FlowTable::prefetch_keys(self, keys)
    }
    fn probe_batch(&self, keys: &[K], f: impl FnMut(usize, Option<&V>)) {
        FlowTable::probe_batch(self, keys, f)
    }
    fn get_mut_batch(&mut self, keys: &[K], f: impl FnMut(usize, Option<&mut V>)) {
        FlowTable::get_mut_batch(self, keys, f)
    }
    fn entry_batch(
        &mut self,
        keys: &[K],
        or_insert: impl FnMut(usize) -> V,
        visit: impl FnMut(usize, &mut V, bool),
    ) where
        K: Clone,
    {
        FlowTable::entry_batch(self, keys, or_insert, visit)
    }
}

/// [`KeyIndex`] over `std::collections::HashMap` — the HashMap-era
/// baseline, kept for benchmarks and as the differential oracle.
#[derive(Clone)]
pub struct StdKeyIndex<K, V> {
    map: HashMap<K, V>,
}

impl<K, V> fmt::Debug for StdKeyIndex<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StdKeyIndex")
            .field("len", &self.map.len())
            .finish()
    }
}

impl<K: Hash + Eq, V> KeyIndex<K, V> for StdKeyIndex<K, V> {
    fn with_capacity(cap: usize) -> Self {
        StdKeyIndex {
            map: HashMap::with_capacity(cap),
        }
    }
    fn len(&self) -> usize {
        self.map.len()
    }
    fn get(&self, key: &K) -> Option<&V> {
        self.map.get(key)
    }
    fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        self.map.get_mut(key)
    }
    fn insert(&mut self, key: K, val: V) -> Option<V> {
        self.map.insert(key, val)
    }
    fn remove(&mut self, key: &K) -> Option<V> {
        self.map.remove(key)
    }
    fn contains_key(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }
    fn clear(&mut self) {
        self.map.clear()
    }
    fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        for (k, v) in &self.map {
            f(k, v);
        }
    }
    fn drain_each(&mut self, mut f: impl FnMut(K, V)) {
        for (k, v) in self.map.drain() {
            f(k, v);
        }
    }
    fn retain_with(&mut self, mut f: impl FnMut(&K, &mut V) -> bool) {
        self.map.retain(|k, v| f(k, v));
    }
}

/// Family of index implementations: a zero-sized marker selecting
/// which [`KeyIndex`] a generic keyed structure instantiates, without
/// fixing the key/value types at the consumer's type level.
pub trait IndexFamily {
    /// The index type this family provides for `(K, V)`.
    type Index<K: Hash + Eq + Clone, V: Clone>: KeyIndex<K, V> + Clone + fmt::Debug;
}

/// Selects [`FlowTable`] — the default for every keyed path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowIndex;

impl IndexFamily for FlowIndex {
    type Index<K: Hash + Eq + Clone, V: Clone> = FlowTable<K, V>;
}

/// Selects [`StdKeyIndex`] (`std::collections::HashMap`) — the
/// pre-flow-table behaviour, kept as baseline and oracle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StdIndex;

impl IndexFamily for StdIndex {
    type Index<K: Hash + Eq + Clone, V: Clone> = StdKeyIndex<K, V>;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Key whose hash puts it in group `g & mask` with tag `t`: invert
    /// the Fx multiply so `hash(key) = (g << 7) | t` exactly.
    fn crafted_key(g: u64, t: u64) -> u64 {
        // Inverse of FX_K mod 2^64 (K odd ⇒ invertible).
        let mut inv: u64 = 1;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(FX_K.wrapping_mul(inv)));
        }
        debug_assert_eq!(FX_K.wrapping_mul(inv), 1);
        ((g << 7) | (t & 0x7F)).wrapping_mul(inv)
    }

    #[test]
    fn crafted_keys_hash_where_told() {
        let state = FixedState;
        for (g, t) in [(0u64, 0u64), (3, 0x7F), (1000, 42)] {
            let h = state.hash_one(crafted_key(g, t));
            assert_eq!(h, (g << 7) | t);
        }
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t: FlowTable<u64, u64> = FlowTable::new();
        for i in 0..1000u64 {
            assert_eq!(t.insert(i, i * 10), None);
        }
        assert_eq!(t.len(), 1000);
        assert!(t.resizes() >= 2, "1000 inserts from 16 slots must resize");
        for i in 0..1000u64 {
            assert_eq!(t.get(&i), Some(&(i * 10)));
        }
        assert_eq!(t.insert(7, 99), Some(70));
        for i in (0..1000u64).step_by(3) {
            assert_eq!(t.remove(&i), Some(i * 10));
            assert_eq!(t.get(&i), None);
        }
        for i in 0..1000u64 {
            let want = match i {
                7 => Some(99),
                i if i % 3 == 0 => None,
                i => Some(i * 10),
            };
            assert_eq!(t.get(&i).copied(), want, "key {i}");
        }
    }

    #[test]
    fn same_group_pileup_probes_and_deletes_correctly() {
        // 40 keys all homed to one group: spills across ≥3 groups, then
        // interleaved deletes force backward shifts through them.
        let mut t: FlowTable<u64, u32> =
            FlowTable::with_capacity_and_probe(64, ProbeKernel::detect());
        let keys: Vec<u64> = (0..40).map(|i| crafted_key(2, i & 0x7F)).collect();
        for (i, &k) in keys.iter().enumerate() {
            t.insert(k, i as u32);
        }
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(t.get(&k), Some(&(i as u32)), "pileup key {i}");
        }
        for (i, &k) in keys.iter().enumerate().step_by(2) {
            assert_eq!(t.remove(&k), Some(i as u32));
        }
        for (i, &k) in keys.iter().enumerate() {
            let want = if i % 2 == 0 { None } else { Some(i as u32) };
            assert_eq!(t.get(&k).copied(), want, "pileup key {i} after deletes");
        }
    }

    #[test]
    fn removals_during_migration_hit_both_cores() {
        let mut t: FlowTable<u64, u64> = FlowTable::new();
        // Fill to just past a resize trigger so a migration is in
        // flight, then remove keys that still live in the old core.
        let mut n = 0u64;
        while !t.is_migrating() {
            t.insert(n, n);
            n += 1;
        }
        assert!(t.is_migrating());
        let total = n;
        for i in 0..total {
            assert_eq!(t.remove(&i), Some(i), "key {i} (migrating table)");
        }
        assert!(t.is_empty());
    }

    #[test]
    fn scalar_and_detected_probes_agree_on_a_workload() {
        let mut a: FlowTable<u64, u64> =
            FlowTable::with_capacity_and_probe(0, ProbeKernel::scalar());
        let mut b: FlowTable<u64, u64> =
            FlowTable::with_capacity_and_probe(0, ProbeKernel::detect());
        let mut s = 42u64;
        for _ in 0..20_000 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = (s >> 33) % 2048;
            match s % 3 {
                0 => assert_eq!(a.insert(k, s), b.insert(k, s)),
                1 => assert_eq!(a.get(&k), b.get(&k)),
                _ => assert_eq!(a.remove(&k), b.remove(&k)),
            }
            assert_eq!(a.len(), b.len());
        }
    }

    /// `probe_batch` must be the singleton `get` loop, observationally
    /// — over spans longer than the pipeline, shorter than it, empty,
    /// and with duplicate keys inside one stage.
    #[test]
    fn probe_batch_matches_singleton_gets() {
        let mut t: FlowTable<u64, u64> = FlowTable::new();
        for i in 0..300u64 {
            t.insert(i * 3, i);
        }
        for span in [0usize, 1, 7, PROBE_PIPELINE, PROBE_PIPELINE + 1, 257] {
            let keys: Vec<u64> = (0..span as u64).map(|i| (i % 180) * 2).collect();
            let mut got: Vec<Option<u64>> = Vec::new();
            t.probe_batch(&keys, |i, v| {
                assert_eq!(i, got.len(), "indices must arrive in order");
                got.push(v.copied());
            });
            let want: Vec<Option<u64>> = keys.iter().map(|k| t.get(k).copied()).collect();
            assert_eq!(got, want, "span {span}");
        }
    }

    #[test]
    fn get_mut_batch_mutates_like_singletons() {
        let mut a: FlowTable<u64, u64> = FlowTable::new();
        for i in 0..200u64 {
            a.insert(i, i);
        }
        let mut b = a.clone();
        let keys: Vec<u64> = (0..300u64).map(|i| i * 7 % 250).collect();
        a.get_mut_batch(&keys, |_, v| {
            if let Some(v) = v {
                *v += 1000;
            }
        });
        for k in &keys {
            if let Some(v) = b.get_mut(k) {
                *v += 1000;
            }
        }
        let (mut sa, mut sb) = (Vec::new(), Vec::new());
        a.for_each(|&k, &v| sa.push((k, v)));
        b.for_each(|&k, &v| sb.push((k, v)));
        sa.sort_unstable();
        sb.sort_unstable();
        assert_eq!(sa, sb);
    }

    /// `entry_batch` ≡ the singleton contains/get_mut/insert sequence,
    /// including while the inserts it performs trigger and then drive
    /// an incremental resize mid-batch.
    #[test]
    fn entry_batch_upserts_like_singletons_through_a_resize() {
        let mut a: FlowTable<u64, u64> = FlowTable::new();
        let mut b: FlowTable<u64, u64> = FlowTable::new();
        // Enough fresh keys to force resizes inside one entry_batch
        // call, with repeats interleaved so hits and misses mix.
        let keys: Vec<u64> = (0..600u64).map(|i| i % 400).collect();
        let mut seen_a: Vec<(usize, bool)> = Vec::new();
        a.entry_batch(
            &keys,
            |i| i as u64,
            |i, v, present| {
                *v += 1;
                seen_a.push((i, present));
            },
        );
        let mut seen_b: Vec<(usize, bool)> = Vec::new();
        for (i, k) in keys.iter().enumerate() {
            if b.contains_key(k) {
                let v = b.get_mut(k).unwrap();
                *v += 1;
                seen_b.push((i, true));
            } else {
                b.insert(*k, i as u64);
                let v = b.get_mut(k).unwrap();
                *v += 1;
                seen_b.push((i, false));
            }
        }
        assert_eq!(seen_a, seen_b, "hit/miss pattern diverged");
        assert_eq!(a.len(), b.len());
        assert_eq!(a.resizes(), b.resizes(), "resize schedule diverged");
        let (mut sa, mut sb) = (Vec::new(), Vec::new());
        a.for_each(|&k, &v| sa.push((k, v)));
        b.for_each(|&k, &v| sb.push((k, v)));
        sa.sort_unstable();
        sb.sort_unstable();
        assert_eq!(sa, sb);
    }

    /// Batch probes during an in-flight migration must hit both cores.
    #[test]
    fn probe_batch_spans_both_cores_mid_migration() {
        let mut t: FlowTable<u64, u64> = FlowTable::new();
        let mut n = 0u64;
        while !t.is_migrating() {
            t.insert(n, n * 2);
            n += 1;
        }
        let keys: Vec<u64> = (0..n + 10).collect();
        let mut hits = 0usize;
        t.probe_batch(&keys, |i, v| {
            let want = if (i as u64) < n {
                Some(2 * i as u64)
            } else {
                None
            };
            assert_eq!(v.copied(), want, "key {i} while migrating");
            hits += usize::from(v.is_some());
        });
        assert_eq!(hits, n as usize);
    }

    /// The `KeyIndex` defaults and the `FlowTable` overrides agree —
    /// the property that keeps `StdIndex` a valid oracle for batches.
    #[test]
    fn keyindex_batch_defaults_agree_with_flow_overrides() {
        let mut flow: FlowTable<u64, u64> = KeyIndex::with_capacity(0);
        let mut std: StdKeyIndex<u64, u64> = KeyIndex::with_capacity(0);
        let keys: Vec<u64> = (0..300u64).map(|i| i * i % 157).collect();
        let mut out_f: Vec<(usize, bool)> = Vec::new();
        let mut out_s: Vec<(usize, bool)> = Vec::new();
        KeyIndex::entry_batch(
            &mut flow,
            &keys,
            |i| i as u64,
            |i, v, p| {
                *v ^= 1;
                out_f.push((i, p));
            },
        );
        KeyIndex::entry_batch(
            &mut std,
            &keys,
            |i| i as u64,
            |i, v, p| {
                *v ^= 1;
                out_s.push((i, p));
            },
        );
        assert_eq!(out_f, out_s);
        let mut probe_f: Vec<Option<u64>> = Vec::new();
        let mut probe_s: Vec<Option<u64>> = Vec::new();
        KeyIndex::probe_batch(&flow, &keys, |_, v| probe_f.push(v.copied()));
        KeyIndex::probe_batch(&std, &keys, |_, v| probe_s.push(v.copied()));
        assert_eq!(probe_f, probe_s);
    }

    #[test]
    fn drain_for_each_retain() {
        let mut t: FlowTable<u64, u64> = FlowTable::new();
        for i in 0..500u64 {
            t.insert(i, i);
        }
        let mut seen = 0u64;
        t.for_each(|k, v| {
            assert_eq!(k, v);
            seen += 1;
        });
        assert_eq!(seen, 500);
        t.retain_with(|k, _| k % 2 == 0);
        assert_eq!(t.len(), 250);
        let mut drained: Vec<u64> = Vec::new();
        t.drain_each(|k, _| drained.push(k));
        assert!(t.is_empty());
        drained.sort_unstable();
        assert_eq!(drained, (0..500).filter(|k| k % 2 == 0).collect::<Vec<_>>());
    }
}
