//! Offline stand-in for the [criterion](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment for this workspace has no access to a crates.io
//! registry, so this crate re-implements the subset of criterion's API
//! the workspace's benches use: `criterion_group!` / `criterion_main!`,
//! benchmark groups, [`BenchmarkId`], [`Throughput`], and
//! [`Bencher::iter`].
//!
//! It is a *measuring* harness, not a statistics suite: each benchmark
//! runs a warm-up iteration, then iterates until a wall-clock budget is
//! exhausted (default 300 ms, override with `CRITERION_MEASURE_MS`) and
//! reports the mean time per iteration plus throughput when configured.
//! There is no outlier rejection, HTML report, or baseline comparison.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle passed to benchmark functions.
#[derive(Debug)]
pub struct Criterion {
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300u64);
        Criterion {
            measure: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let measure = self.measure;
        run_one("", &id.into_benchmark_id(), None, measure, f);
        self
    }
}

/// A named set of related benchmarks sharing throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the nominal sample count (used only as a minimum iteration
    /// count here; kept for API compatibility).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Declares how much work one iteration performs, enabling
    /// throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let measure = self.criterion.measure;
        run_one(
            &self.name,
            &id.into_benchmark_id(),
            self.throughput,
            measure,
            f,
        );
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let measure = self.criterion.measure;
        run_one(&self.name, &id, self.throughput, measure, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &BenchmarkId,
    throughput: Option<Throughput>,
    measure: Duration,
    mut f: F,
) {
    let mut b = Bencher {
        measure,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let label = if group.is_empty() {
        id.label()
    } else {
        format!("{group}/{}", id.label())
    };
    if b.iters == 0 {
        println!("{label:<48} (no measurement: Bencher::iter never called)");
        return;
    }
    let ns_per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let thrpt = throughput
        .map(|t| t.describe(ns_per_iter))
        .unwrap_or_default();
    println!(
        "{label:<48} time: {:>12}/iter{thrpt}  ({} iters)",
        format_ns(ns_per_iter),
        b.iters
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Times closures under a wall-clock budget.
#[derive(Debug)]
pub struct Bencher {
    measure: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly: once as warm-up, then until the measurement
    /// budget is spent, recording mean wall-clock time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= self.measure {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

/// Work performed by one benchmark iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

impl Throughput {
    fn describe(self, ns_per_iter: f64) -> String {
        let (count, unit) = match self {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        let per_sec = count as f64 * 1e9 / ns_per_iter;
        if per_sec >= 1e9 {
            format!("  thrpt: {:>9.3} G{unit}/s", per_sec / 1e9)
        } else if per_sec >= 1e6 {
            format!("  thrpt: {:>9.3} M{unit}/s", per_sec / 1e6)
        } else if per_sec >= 1e3 {
            format!("  thrpt: {:>9.3} K{unit}/s", per_sec / 1e3)
        } else {
            format!("  thrpt: {per_sec:>9.3} {unit}/s")
        }
    }
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id labelled `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter (criterion's `from_parameter`).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match &self.parameter {
            Some(p) if self.name.is_empty() => p.clone(),
            Some(p) => format!("{}/{p}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Conversion of bare strings or [`BenchmarkId`]s into benchmark ids.
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self.to_string(),
            parameter: None,
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self,
            parameter: None,
        }
    }
}

/// Declares a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
