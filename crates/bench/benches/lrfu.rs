//! Criterion microbenchmark: LRFU request cost per policy (behind
//! Figure 9), including the structure-of-arrays log-buffer backends.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use qmax_lrfu::{
    Cache, DeamortizedLrfu, HeapLrfu, QMaxLrfu, ScanLrfu, SoaDeamortizedLrfu, SoaQMaxLrfu,
};
use qmax_traces::gen::arc_like;

fn bench_lrfu(c: &mut Criterion) {
    let trace = arc_like(300_000, 50_000, 9);
    let q = 5_000;
    let decay = 0.75;
    let mut group = c.benchmark_group("lrfu_request");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.sample_size(10);
    group.bench_function("qmax_g0.25", |b| {
        b.iter(|| {
            let mut cache = QMaxLrfu::new(q, 0.25, decay);
            for &k in &trace {
                cache.request(k);
            }
            cache.len()
        })
    });
    group.bench_function("qmax_g1.0", |b| {
        b.iter(|| {
            let mut cache = QMaxLrfu::new(q, 1.0, decay);
            for &k in &trace {
                cache.request(k);
            }
            cache.len()
        })
    });
    group.bench_function("qmax_g0.25_soa", |b| {
        b.iter(|| {
            let mut cache = SoaQMaxLrfu::new_soa(q, 0.25, decay);
            for &k in &trace {
                cache.request(k);
            }
            cache.len()
        })
    });
    group.bench_function("qmax_g0.25_soa_batch", |b| {
        b.iter(|| {
            let mut cache = SoaQMaxLrfu::new_soa(q, 0.25, decay);
            let mut hits = 0;
            for chunk in trace.chunks(1024) {
                hits += cache.request_batch(chunk);
            }
            hits
        })
    });
    group.bench_function("qmax_wc_g0.25", |b| {
        b.iter(|| {
            let mut cache = DeamortizedLrfu::new(q, 0.25, decay);
            for &k in &trace {
                cache.request(k);
            }
            cache.len()
        })
    });
    group.bench_function("qmax_wc_g0.25_soa", |b| {
        b.iter(|| {
            let mut cache = SoaDeamortizedLrfu::new_soa(q, 0.25, decay);
            for &k in &trace {
                cache.request(k);
            }
            cache.len()
        })
    });
    group.bench_function("heap", |b| {
        b.iter(|| {
            let mut cache = HeapLrfu::new(q, decay);
            for &k in &trace {
                cache.request(k);
            }
            cache.len()
        })
    });
    group.bench_function("scan", |b| {
        b.iter(|| {
            let mut cache = ScanLrfu::new(q, decay);
            for &k in &trace[..50_000] {
                cache.request(k);
            }
            cache.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_lrfu);
criterion_main!(benches);
