//! Criterion microbenchmark: the simulated datapath's per-packet cost
//! (the base cost against which measurement hooks are budgeted in
//! Figures 12-17).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use qmax_core::AmortizedQMax;
use qmax_core::Minimal;
use qmax_core::QMax;
use qmax_ovs_sim::{LeafSpine, MeasurementHook, NullHook, Switch};
use qmax_traces::gen::caida_like;
use qmax_traces::{FlowKey, Packet};

fn bench_datapath(c: &mut Criterion) {
    let packets: Vec<Packet> = caida_like(200_000, 1).collect();
    let mut group = c.benchmark_group("datapath");
    group.throughput(Throughput::Elements(packets.len() as u64));
    group.sample_size(10);
    group.bench_function("switch_only", |b| {
        b.iter(|| {
            let mut sw = Switch::new(8);
            for p in &packets {
                sw.process(p);
            }
            sw.stats().packets
        })
    });
    group.bench_function("switch_plus_qmax_hook", |b| {
        struct Hook {
            qm: AmortizedQMax<u64, Minimal<u64>>,
        }
        impl MeasurementHook for Hook {
            fn on_packet(&mut self, _f: FlowKey, id: u64, _l: u16) {
                self.qm.insert(id, Minimal(id));
            }
        }
        b.iter(|| {
            let mut sw = Switch::new(8);
            let mut hook = Hook {
                qm: AmortizedQMax::new(10_000, 0.25),
            };
            for p in &packets {
                sw.process(p);
                hook.on_packet(p.flow(), p.packet_id(), p.len);
            }
            hook.qm.len()
        })
    });
    group.bench_function("leaf_spine_fabric", |b| {
        b.iter(|| {
            let mut fab = LeafSpine::new(4, 2);
            let mut hooks: Vec<NullHook> = vec![NullHook; 6];
            for p in &packets {
                fab.route(p, &mut hooks);
            }
            fab.total_hops()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_datapath);
criterion_main!(benches);
