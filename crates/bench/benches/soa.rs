//! Criterion microbenchmark: AoS vs SoA layout on the q-MAX insert hot
//! loop. This is the acceptance gauge for the structure-of-arrays fast
//! path: at q = 10⁴, γ = 1 on a Zipf(1.0) stream the SoA batched insert
//! must clearly beat the AoS singleton-insert loop (see BENCH_soa.json
//! for the recorded series and machine caveats).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qmax_core::{
    AmortizedQMax, BatchInsert, DeamortizedQMax, SoaAmortizedQMax, SoaDeamortizedQMax,
};
use qmax_engine::{QMax, ShardedQMax};
use qmax_traces::gen::random_u64_stream;
use qmax_traces::zipf::ZipfSampler;

const STREAM: usize = 400_000;
const Q: usize = 10_000;
const BATCH: usize = 1024;
const GAMMAS: [f64; 3] = [0.25, 1.0, 4.0];

/// Zipf(1.0) flow ids over a million-flow universe with random ranks.
fn zipf_stream(n: usize, seed: u64) -> Vec<(u64, u64)> {
    let mut flows = ZipfSampler::new(1_000_000, 1.0, seed);
    random_u64_stream(n, seed ^ 0x5EED)
        .map(|v| (flows.sample() as u64, v))
        .collect()
}

fn run_batched<B: BatchInsert<u64, u64>>(mut qm: B, items: &[(u64, u64)]) -> usize {
    for chunk in items.chunks(BATCH) {
        qm.insert_batch(chunk);
    }
    qm.len()
}

fn bench_layouts(c: &mut Criterion) {
    let items = zipf_stream(STREAM, 7);
    let mut group = c.benchmark_group("soa_insert/zipf");
    group.throughput(Throughput::Elements(items.len() as u64));
    group.sample_size(10);
    for gamma in GAMMAS {
        group.bench_with_input(BenchmarkId::new("aos_amortized", gamma), &gamma, |b, &g| {
            b.iter(|| run_batched(AmortizedQMax::new(Q, g), &items))
        });
        group.bench_with_input(BenchmarkId::new("soa_amortized", gamma), &gamma, |b, &g| {
            b.iter(|| run_batched(SoaAmortizedQMax::new(Q, g), &items))
        });
        group.bench_with_input(
            BenchmarkId::new("aos_deamortized", gamma),
            &gamma,
            |b, &g| b.iter(|| run_batched(DeamortizedQMax::new(Q, g), &items)),
        );
        group.bench_with_input(
            BenchmarkId::new("soa_deamortized", gamma),
            &gamma,
            |b, &g| b.iter(|| run_batched(SoaDeamortizedQMax::new(Q, g), &items)),
        );
    }
    group.finish();
}

fn bench_sharded_soa(c: &mut Criterion) {
    let items = zipf_stream(STREAM, 7);
    let mut group = c.benchmark_group("soa_sharded/zipf");
    group.throughput(Throughput::Elements(items.len() as u64));
    group.sample_size(10);
    for shards in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("aos", shards), &shards, |b, &s| {
            b.iter(|| {
                let mut engine: ShardedQMax<u64, u64> = ShardedQMax::new(Q, 1.0, s);
                for chunk in items.chunks(BATCH) {
                    engine.insert_batch(chunk);
                }
                engine.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("soa", shards), &shards, |b, &s| {
            b.iter(|| {
                let mut engine = ShardedQMax::new_soa(Q, 1.0, s);
                for chunk in items.chunks(BATCH) {
                    engine.insert_batch(chunk);
                }
                engine.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_layouts, bench_sharded_soa);
criterion_main!(benches);
