//! Criterion microbenchmark: the de-amortization machinery — full
//! selection vs the suspendable machine, and the per-step overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qmax_select::{mom_nth_smallest, nth_smallest, Direction, NthElementMachine};
use qmax_traces::gen::random_u64_stream;

fn bench_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection");
    group.sample_size(20);
    for n in [100_000usize, 1_000_000] {
        let data: Vec<u64> = random_u64_stream(n, 3).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("introselect", n), &n, |b, &n| {
            b.iter(|| {
                let mut buf = data.clone();
                *nth_smallest(&mut buf, n / 2)
            })
        });
        group.bench_with_input(BenchmarkId::new("median_of_medians", n), &n, |b, &n| {
            b.iter(|| {
                let mut buf = data.clone();
                *mom_nth_smallest(&mut buf, n / 2)
            })
        });
        group.bench_with_input(BenchmarkId::new("machine_budget64", n), &n, |b, &n| {
            b.iter(|| {
                let mut buf = data.clone();
                let mut m = NthElementMachine::new(0, n, n / 2, Direction::Ascending);
                while m.step(&mut buf, 64) == qmax_select::MachineStatus::InProgress {}
                m.result_index().unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("machine_run", n), &n, |b, &n| {
            b.iter(|| {
                let mut buf = data.clone();
                let mut m = NthElementMachine::new(0, n, n / 2, Direction::Ascending);
                m.run_to_completion(&mut buf)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_select);
criterion_main!(benches);
