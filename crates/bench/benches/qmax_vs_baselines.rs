//! Criterion microbenchmark: update cost of the reservoir structures
//! on a random stream (the core comparison behind Figures 4-5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qmax_core::{AmortizedQMax, DeamortizedQMax, HeapQMax, QMax, SkipListQMax};
use qmax_traces::gen::random_u64_stream;

fn bench_updates(c: &mut Criterion) {
    let stream: Vec<u64> = random_u64_stream(1_000_000, 1).collect();
    let mut group = c.benchmark_group("reservoir_update");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.sample_size(10);
    for q in [10_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::new("qmax_g0.25", q), &q, |b, &q| {
            b.iter(|| {
                let mut qm = AmortizedQMax::new(q, 0.25);
                for (i, &v) in stream.iter().enumerate() {
                    qm.insert(i as u32, v);
                }
                qm.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("qmax_wc_g0.25", q), &q, |b, &q| {
            b.iter(|| {
                let mut qm = DeamortizedQMax::new(q, 0.25);
                for (i, &v) in stream.iter().enumerate() {
                    qm.insert(i as u32, v);
                }
                qm.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("heap", q), &q, |b, &q| {
            b.iter(|| {
                let mut qm = HeapQMax::new(q);
                for (i, &v) in stream.iter().enumerate() {
                    qm.insert(i as u32, v);
                }
                qm.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("skiplist", q), &q, |b, &q| {
            b.iter(|| {
                let mut qm = SkipListQMax::new(q);
                for (i, &v) in stream.iter().enumerate() {
                    qm.insert(i as u32, v);
                }
                qm.len()
            })
        });
    }
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let stream: Vec<u64> = random_u64_stream(500_000, 2).collect();
    let mut group = c.benchmark_group("reservoir_query");
    group.sample_size(20);
    let q = 50_000;
    let mut qm = AmortizedQMax::new(q, 0.25);
    let mut heap = HeapQMax::new(q);
    for (i, &v) in stream.iter().enumerate() {
        qm.insert(i as u32, v);
        heap.insert(i as u32, v);
    }
    group.bench_function("qmax", |b| b.iter(|| qm.query().len()));
    group.bench_function("heap", |b| b.iter(|| heap.query().len()));
    group.finish();
}

criterion_group!(benches, bench_updates, bench_query);
criterion_main!(benches);
