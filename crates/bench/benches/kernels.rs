//! Criterion microbenchmark: scalar vs runtime-dispatched SIMD for each
//! explicit kernel (Ψ-filter admit, three-way partition with id-lane
//! permutation, min/max sweep), at three buffer sizes spanning L1 to
//! L3-resident lanes. `figures kernels` records the acceptance numbers;
//! this bench is for interactive tuning of the intrinsics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qmax_select::Kernel;
use qmax_traces::gen::random_u64_stream;

const SIZES: [usize; 3] = [1_024, 16_384, 262_144];

/// Heavy-tailed value lane plus a distinct id lane.
fn lanes(n: usize, seed: u64) -> (Vec<u64>, Vec<u64>) {
    let vals: Vec<u64> = random_u64_stream(n, seed).map(|r| r >> (r % 48)).collect();
    let ids: Vec<u64> = (0..n as u64).collect();
    (vals, ids)
}

fn kernel_pair() -> [(&'static str, Kernel<u64>); 2] {
    [("scalar", Kernel::scalar()), ("dispatch", Kernel::detect())]
}

fn bench_admit(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/admit");
    for n in SIZES {
        let (vals, ids) = lanes(n, 3);
        let items: Vec<(u64, u64)> = ids.iter().copied().zip(vals.iter().copied()).collect();
        let mut probe = vals.clone();
        let threshold = *qmax_select::nth_smallest(&mut probe, n / 2);
        let mut out_v = vec![0u64; n];
        let mut out_i = vec![0u64; n];
        group.throughput(Throughput::Elements(n as u64));
        for (label, k) in kernel_pair() {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| k.admit_pairs(&items, Some(threshold), &mut out_v, &mut out_i, 0, n))
            });
        }
    }
    group.finish();
}

fn bench_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/partition3_desc");
    for n in SIZES {
        let (vals, ids) = lanes(n, 5);
        let mut probe = vals.clone();
        let pivot = *qmax_select::nth_smallest(&mut probe, n / 2);
        let mut out_v = vec![0u64; n];
        let mut out_i = vec![0u64; n];
        group.throughput(Throughput::Elements(n as u64));
        for (label, k) in kernel_pair() {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| k.partition3_desc(&vals, &ids, pivot, &mut out_v, &mut out_i))
            });
        }
    }
    group.finish();
}

fn bench_min_max(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/min_max");
    for n in SIZES {
        let (vals, _) = lanes(n, 11);
        group.throughput(Throughput::Elements(n as u64));
        for (label, k) in kernel_pair() {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| k.min_max(&vals))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_admit, bench_partition, bench_min_max);
criterion_main!(benches);
