//! Criterion microbenchmark: sharded-engine insert throughput as the
//! shard count grows, on a Zipf flow stream and a CAIDA-like packet
//! trace. Covers both halves of the hot path: the single-threaded
//! batched insert (Ψ pre-filter amortized over a batch) and the
//! multi-threaded driver (one worker per shard over bounded channels).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qmax_core::AmortizedQMax;
use qmax_engine::fault::silence_fault_panics;
use qmax_engine::{DriverConfig, FaultSchedule, FaultyBackend, OverloadPolicy, QMax, ShardedQMax};
use qmax_traces::gen::{caida_like, random_u64_stream};
use qmax_traces::zipf::ZipfSampler;

const STREAM: usize = 400_000;
const Q: usize = 10_000;
const BATCH: usize = 1024;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Zipf(1.0) flow ids over a million-flow universe with random ranks.
fn zipf_stream(n: usize, seed: u64) -> Vec<(u64, u64)> {
    let mut flows = ZipfSampler::new(1_000_000, 1.0, seed);
    random_u64_stream(n, seed ^ 0x5EED)
        .map(|v| (flows.sample() as u64, v))
        .collect()
}

/// CAIDA-like packets ranked by frame length (the OVS hook's stream).
fn caida_stream(n: usize, seed: u64) -> Vec<(u64, u64)> {
    caida_like(n, seed)
        .map(|p| (p.flow().as_u64(), p.len as u64))
        .collect()
}

fn traces() -> Vec<(&'static str, Vec<(u64, u64)>)> {
    vec![
        ("zipf", zipf_stream(STREAM, 7)),
        ("caida", caida_stream(STREAM, 9)),
    ]
}

fn bench_insert_batch(c: &mut Criterion) {
    for (name, items) in traces() {
        let mut group = c.benchmark_group(format!("sharded_insert_batch/{name}"));
        group.throughput(Throughput::Elements(items.len() as u64));
        group.sample_size(10);
        for shards in SHARD_COUNTS {
            group.bench_with_input(BenchmarkId::from_parameter(shards), &shards, |b, &s| {
                b.iter(|| {
                    let mut engine: ShardedQMax<u64, u64> = ShardedQMax::new(Q, 0.25, s);
                    for chunk in items.chunks(BATCH) {
                        engine.insert_batch(chunk);
                    }
                    engine.len()
                })
            });
        }
        group.finish();
    }
}

fn bench_threaded_driver(c: &mut Criterion) {
    for (name, items) in traces() {
        let mut group = c.benchmark_group(format!("sharded_threaded/{name}"));
        group.throughput(Throughput::Elements(items.len() as u64));
        group.sample_size(10);
        for shards in SHARD_COUNTS {
            group.bench_with_input(BenchmarkId::from_parameter(shards), &shards, |b, &s| {
                b.iter(|| {
                    let mut engine: ShardedQMax<u64, u64> = ShardedQMax::new(Q, 0.25, s);
                    let report =
                        engine.run_threaded(items.iter().copied(), DriverConfig::default());
                    report.items
                })
            });
        }
        group.finish();
    }
}

/// Overload-policy overhead on a healthy (fault-free) run: `Block` is
/// the lossless baseline; `Shed` swaps the blocking send for `try_send`
/// plus budget bookkeeping on the producer. With workers keeping up the
/// two should be within noise of each other — this series exists to
/// catch a regression where the shedding path taxes the common case.
fn bench_overload_policy(c: &mut Criterion) {
    let items = zipf_stream(STREAM, 11);
    let mut group = c.benchmark_group("sharded_threaded_policy/zipf");
    group.throughput(Throughput::Elements(items.len() as u64));
    group.sample_size(10);
    let policies = [
        ("block", OverloadPolicy::Block),
        (
            "shed",
            OverloadPolicy::Shed {
                max_dropped: STREAM as u64,
            },
        ),
    ];
    for (name, overload) in policies {
        group.bench_with_input(BenchmarkId::from_parameter(name), &overload, |b, &ov| {
            b.iter(|| {
                let mut engine: ShardedQMax<u64, u64> = ShardedQMax::new(Q, 0.25, 4);
                let report = engine.run_threaded(
                    items.iter().copied(),
                    DriverConfig {
                        overload: ov,
                        ..DriverConfig::default()
                    },
                );
                report.items - report.dropped()
            })
        });
    }
    group.finish();
}

/// Recovery latency under supervision: a scripted mid-stream panic on
/// one shard, warm-restored from its last checkpoint, swept over the
/// checkpoint cadence. The `no-fault` series prices the steady-state
/// checkpointing tax alone; the `panic-ckpt-*` series add one in-worker
/// restore (quarantine the batch, reclassify to the checkpoint, backoff,
/// re-adopt the snapshot), so their delta over `no-fault` is the
/// end-to-end cost of a single warm recovery at that cadence.
fn bench_recovery_latency(c: &mut Criterion) {
    let _silence = silence_fault_panics();
    let items = zipf_stream(STREAM, 13);
    let shards = 4;
    let mut group = c.benchmark_group("sharded_supervised_recovery/zipf");
    group.throughput(Throughput::Elements(items.len() as u64));
    group.sample_size(10);
    let cadences: [(&str, Option<u64>); 4] = [
        ("no-fault", None),
        ("panic-ckpt-256", Some(256)),
        ("panic-ckpt-1024", Some(1024)),
        ("panic-ckpt-4096", Some(4096)),
    ];
    for (name, fault_ckpt) in cadences {
        group.bench_with_input(BenchmarkId::from_parameter(name), &fault_ckpt, |b, &fc| {
            let ckpt = fc.unwrap_or(1024);
            b.iter(|| {
                let mut engine: ShardedQMax<u64, u64, FaultyBackend<AmortizedQMax<u64, u64>>> =
                    ShardedQMax::with_backends(Q, shards, move |s| {
                        let schedule = if s == 0 && fc.is_some() {
                            FaultSchedule::panic_at(STREAM as u64 / (2 * shards as u64))
                        } else {
                            FaultSchedule::none()
                        };
                        FaultyBackend::new(AmortizedQMax::new(Q, 0.25), schedule)
                    });
                let report = engine.run_supervised(
                    items.iter().copied(),
                    DriverConfig {
                        checkpoint_every: Some(ckpt),
                        ..DriverConfig::default()
                    },
                );
                report.recovered()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_insert_batch,
    bench_threaded_driver,
    bench_overload_policy,
    bench_recovery_latency
);
criterion_main!(benches);
