//! Criterion microbenchmark: per-packet cost of the measurement
//! applications with different reservoirs (behind Figure 8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qmax_apps::network_wide::Nmp;
use qmax_apps::{Pba, PrioritySampling};
use qmax_core::{AmortizedQMax, DedupQMax, HeapQMax, IndexedHeapQMax};
use qmax_traces::gen::caida_like;
use qmax_traces::Packet;

fn bench_priority_sampling(c: &mut Criterion) {
    let packets: Vec<Packet> = caida_like(500_000, 6).collect();
    let q = 10_000;
    let mut group = c.benchmark_group("priority_sampling");
    group.throughput(Throughput::Elements(packets.len() as u64));
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("qmax", q), |b| {
        b.iter(|| {
            let mut ps = PrioritySampling::new(AmortizedQMax::new(q, 0.25), 1);
            for p in &packets {
                ps.observe(p.packet_id(), p.len as f64);
            }
        })
    });
    group.bench_function(BenchmarkId::new("heap", q), |b| {
        b.iter(|| {
            let mut ps = PrioritySampling::new(HeapQMax::new(q), 1);
            for p in &packets {
                ps.observe(p.packet_id(), p.len as f64);
            }
        })
    });
    group.finish();
}

fn bench_nwhh(c: &mut Criterion) {
    let packets: Vec<Packet> = caida_like(500_000, 7).collect();
    let q = 10_000;
    let mut group = c.benchmark_group("network_wide_hh");
    group.throughput(Throughput::Elements(packets.len() as u64));
    group.sample_size(10);
    group.bench_function("qmax", |b| {
        b.iter(|| {
            let mut nmp = Nmp::new(AmortizedQMax::new(q, 0.25));
            for p in &packets {
                nmp.observe(p);
            }
        })
    });
    group.bench_function("heap", |b| {
        b.iter(|| {
            let mut nmp = Nmp::new(HeapQMax::new(q));
            for p in &packets {
                nmp.observe(p);
            }
        })
    });
    group.finish();
}

fn bench_pba(c: &mut Criterion) {
    let packets: Vec<Packet> = caida_like(500_000, 8).collect();
    let q = 10_000;
    let mut group = c.benchmark_group("pba");
    group.throughput(Throughput::Elements(packets.len() as u64));
    group.sample_size(10);
    group.bench_function("qmax_dedup", |b| {
        b.iter(|| {
            let mut pba = Pba::new(DedupQMax::new(q, 0.25), 1);
            for p in &packets {
                pba.observe(p.flow().as_u64(), p.len as f64);
            }
        })
    });
    group.bench_function("indexed_heap", |b| {
        b.iter(|| {
            let mut pba = Pba::new(IndexedHeapQMax::new(q), 1);
            for p in &packets {
                pba.observe(p.flow().as_u64(), p.len as f64);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_priority_sampling, bench_nwhh, bench_pba);
criterion_main!(benches);
