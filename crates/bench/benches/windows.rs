//! Criterion microbenchmark: slack-window variants (update and query
//! costs behind Figures 10-11), with each variant measured on both the
//! array-of-structs and structure-of-arrays block backends.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qmax_core::{
    BasicSlackQMax, BatchInsert, HierSlackQMax, LazySlackQMax, QMax, SoaBasicSlackQMax,
    SoaHierSlackQMax, SoaLazySlackQMax,
};
use qmax_traces::gen::random_u64_stream;

fn bench_window_updates(c: &mut Criterion) {
    let n = 1_000_000;
    let stream: Vec<u64> = random_u64_stream(n, 4).collect();
    let q = 1_000;
    let w = 200_000;
    let tau = 0.01;
    let mut group = c.benchmark_group("window_update");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(10);
    group.bench_function("basic", |b| {
        b.iter(|| {
            let mut sw = BasicSlackQMax::new(q, 0.25, w, tau);
            for (i, &v) in stream.iter().enumerate() {
                sw.insert(i as u32, v);
            }
            sw.len()
        })
    });
    group.bench_function("hier_c2", |b| {
        b.iter(|| {
            let mut sw = HierSlackQMax::new(q, 0.25, w, tau, 2);
            for (i, &v) in stream.iter().enumerate() {
                sw.insert(i as u32, v);
            }
            sw.len()
        })
    });
    group.bench_function("lazy_c2", |b| {
        b.iter(|| {
            let mut sw = LazySlackQMax::new(q, 0.25, w, tau, 2);
            for (i, &v) in stream.iter().enumerate() {
                sw.insert(i as u32, v);
            }
            sw.len()
        })
    });
    // SoA backends take the same stream through the batched kernel —
    // the configuration the engine's shard loop uses.
    let items: Vec<(u32, u64)> = stream
        .iter()
        .enumerate()
        .map(|(i, &v)| (i as u32, v))
        .collect();
    group.bench_function("basic_soa_batch", |b| {
        b.iter(|| {
            let mut sw = SoaBasicSlackQMax::new_soa(q, 0.25, w, tau);
            for chunk in items.chunks(1024) {
                sw.insert_batch(chunk);
            }
            sw.len()
        })
    });
    group.bench_function("hier_c2_soa_batch", |b| {
        b.iter(|| {
            let mut sw = SoaHierSlackQMax::new_soa(q, 0.25, w, tau, 2);
            for chunk in items.chunks(1024) {
                sw.insert_batch(chunk);
            }
            sw.len()
        })
    });
    group.bench_function("lazy_c2_soa_batch", |b| {
        b.iter(|| {
            let mut sw = SoaLazySlackQMax::new_soa(q, 0.25, w, tau, 2);
            for chunk in items.chunks(1024) {
                sw.insert_batch(chunk);
            }
            sw.len()
        })
    });
    group.finish();
}

fn bench_window_queries(c: &mut Criterion) {
    let n = 500_000;
    let stream: Vec<u64> = random_u64_stream(n, 5).collect();
    let q = 1_000;
    let w = 200_000;
    let mut group = c.benchmark_group("window_query");
    group.sample_size(20);
    for tau in [0.01, 0.001] {
        let mut basic = BasicSlackQMax::new(q, 0.25, w, tau);
        let mut hier = HierSlackQMax::new(q, 0.25, w, tau, 2);
        for (i, &v) in stream.iter().enumerate() {
            basic.insert(i as u32, v);
            hier.insert(i as u32, v);
        }
        group.bench_with_input(BenchmarkId::new("basic", tau), &tau, |b, _| {
            b.iter(|| basic.query().len())
        });
        group.bench_with_input(BenchmarkId::new("hier_c2", tau), &tau, |b, _| {
            b.iter(|| hier.query().len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_window_updates, bench_window_queries);
criterion_main!(benches);
