//! AoS-vs-SoA layout comparison on the batched insert hot loop.
//!
//! The paper's throughput argument is entirely about the per-update
//! constant; this experiment measures the layout half of that constant.
//! For γ ∈ {0.25, 1, 4} it streams Zipf(1.0) and CAIDA-like traces
//! through the array-of-structs backends (singleton-insert loop, the
//! path every earlier figure timed) and their structure-of-arrays twins
//! (branchless chunked Ψ-filter + value-lane selection kernels), asserts
//! the two layouts produce the same reservoir, and reports millions of
//! inserts per second plus the SoA speedup.
//!
//! Series go to `results/soa_compare.csv` as usual; the same numbers are
//! also written machine-readably to `BENCH_soa.json` in the working
//! directory (the repo root in normal invocations) so the perf
//! trajectory across PRs can be tracked by tooling.

use crate::scale::Scale;
use crate::{fmt, mpps, Report};
use qmax_core::{
    AmortizedQMax, BatchInsert, DeamortizedQMax, SoaAmortizedQMax, SoaDeamortizedQMax,
};
use qmax_traces::gen::{caida_like, random_u64_stream};
use qmax_traces::zipf::ZipfSampler;
use std::io::Write;
use std::time::Instant;

const BATCH: usize = 1024;

/// PR 2 amortized AoS→SoA speedups from the checked-in `BENCH_soa.json`
/// (same q, stream length, and batch size), per `(trace, gamma)`. Kept
/// as a CSV column so the before/after of the small-surplus compaction
/// fix is recorded next to the current numbers — at γ = 0.25 PR 2
/// regressed to 0.918 (zipf), the number this PR is accountable for.
const PR2_AM_SPEEDUP: [(&str, f64, f64); 6] = [
    ("zipf", 0.25, 172.960 / 188.365),
    ("zipf", 1.0, 419.555 / 242.841),
    ("zipf", 4.0, 360.541 / 233.221),
    ("caida", 0.25, 208.029 / 190.771),
    ("caida", 1.0, 479.576 / 283.843),
    ("caida", 4.0, 543.069 / 310.677),
];

fn pr2_am_speedup(trace: &str, gamma: f64) -> f64 {
    PR2_AM_SPEEDUP
        .iter()
        .find(|(t, g, _)| *t == trace && *g == gamma)
        .map(|(_, _, s)| *s)
        .unwrap_or(f64::NAN)
}

fn zipf_stream(n: usize, seed: u64) -> Vec<(u64, u64)> {
    let mut flows = ZipfSampler::new(1_000_000, 1.0, seed);
    random_u64_stream(n, seed ^ 0x5EED)
        .map(|v| (flows.sample() as u64, v))
        .collect()
}

fn caida_stream(n: usize, seed: u64) -> Vec<(u64, u64)> {
    caida_like(n, seed)
        .map(|p| (p.flow().as_u64(), p.len as u64))
        .collect()
}

/// Times the batched-insert path and returns (mips, sorted final top-q).
fn time_batch<B: BatchInsert<u64, u64>>(qm: &mut B, items: &[(u64, u64)]) -> (f64, Vec<u64>) {
    let start = Instant::now();
    for chunk in items.chunks(BATCH) {
        qm.insert_batch(chunk);
    }
    let mips = mpps(items.len(), start.elapsed());
    let mut vals: Vec<u64> = qm.query().into_iter().map(|(_, v)| v).collect();
    vals.sort_unstable();
    (mips, vals)
}

/// One measured series row, kept for the JSON mirror.
struct SeriesRow {
    trace: &'static str,
    gamma: f64,
    aos_amortized_mips: f64,
    soa_amortized_mips: f64,
    aos_deamortized_mips: f64,
    soa_deamortized_mips: f64,
}

/// Sweeps γ ∈ {0.25, 1, 4} × {zipf, caida} at q = 10⁴ comparing the AoS
/// and SoA layouts of both q-MAX variants; mirrors the series as
/// `results/soa_compare.csv` and `BENCH_soa.json`.
pub fn soa_compare(scale: &Scale) {
    println!("# AoS vs SoA layout: batched insert throughput (q=10^4)");
    let n = scale.stream(2_000_000);
    let q = 10_000;
    let gammas = [0.25, 1.0, 4.0];
    let traces = [("zipf", zipf_stream(n, 7)), ("caida", caida_stream(n, 9))];
    let mut rep = Report::new(
        "soa_compare",
        &[
            "trace",
            "gamma",
            "aos_am_mips",
            "soa_am_mips",
            "am_speedup",
            "pr2_am_speedup",
            "aos_de_mips",
            "soa_de_mips",
            "de_speedup",
        ],
    );
    let mut rows: Vec<SeriesRow> = Vec::new();
    for (name, items) in &traces {
        for &gamma in &gammas {
            let (aos_am, top_aos_am) = time_batch(&mut AmortizedQMax::new(q, gamma), items);
            let (soa_am, top_soa_am) = time_batch(&mut SoaAmortizedQMax::new(q, gamma), items);
            let (aos_de, top_aos_de) = time_batch(&mut DeamortizedQMax::new(q, gamma), items);
            let (soa_de, top_soa_de) = time_batch(&mut SoaDeamortizedQMax::new(q, gamma), items);
            assert_eq!(
                top_aos_am, top_soa_am,
                "amortized layouts diverged on {name} gamma={gamma}"
            );
            assert_eq!(
                top_aos_de, top_soa_de,
                "de-amortized layouts diverged on {name} gamma={gamma}"
            );
            rep.row(&[
                name.to_string(),
                gamma.to_string(),
                fmt(aos_am),
                fmt(soa_am),
                fmt(soa_am / aos_am),
                fmt(pr2_am_speedup(name, gamma)),
                fmt(aos_de),
                fmt(soa_de),
                fmt(soa_de / aos_de),
            ]);
            rows.push(SeriesRow {
                trace: name,
                gamma,
                aos_amortized_mips: aos_am,
                soa_amortized_mips: soa_am,
                aos_deamortized_mips: aos_de,
                soa_deamortized_mips: soa_de,
            });
        }
    }
    write_bench_json(&rows, n, q);
}

/// Hand-rolled JSON mirror (no serde in the dependency-free build).
fn write_bench_json(rows: &[SeriesRow], stream_len: usize, q: usize) {
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut body = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            body.push_str(",\n");
        }
        body.push_str(&format!(
            concat!(
                "    {{\"trace\": \"{}\", \"gamma\": {}, ",
                "\"aos_amortized_mips\": {:.3}, \"soa_amortized_mips\": {:.3}, ",
                "\"amortized_speedup\": {:.3}, ",
                "\"aos_deamortized_mips\": {:.3}, \"soa_deamortized_mips\": {:.3}, ",
                "\"deamortized_speedup\": {:.3}}}"
            ),
            r.trace,
            r.gamma,
            r.aos_amortized_mips,
            r.soa_amortized_mips,
            r.soa_amortized_mips / r.aos_amortized_mips,
            r.aos_deamortized_mips,
            r.soa_deamortized_mips,
            r.soa_deamortized_mips / r.aos_deamortized_mips,
        ));
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"soa_compare\",\n",
            "  \"generated_unix_secs\": {ts},\n",
            "  \"q\": {q},\n",
            "  \"stream_len\": {n},\n",
            "  \"batch\": {batch},\n",
            "  \"machine_caveats\": \"wall-clock timing on a shared, unpinned machine ",
            "(no CPU isolation, no frequency control, container noise); ",
            "relative AoS-vs-SoA speedups are the signal, absolute MIPS are not ",
            "comparable across machines or runs\",\n",
            "  \"series\": [\n{body}\n  ]\n",
            "}}\n"
        ),
        ts = ts,
        q = q,
        n = stream_len,
        batch = BATCH,
        body = body,
    );
    match std::fs::File::create("BENCH_soa.json").and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => eprintln!("[soa] wrote BENCH_soa.json"),
        Err(e) => eprintln!("[soa] could not write BENCH_soa.json: {e}"),
    }
}
