//! One module per family of paper experiments.
//!
//! Every public function regenerates one table or figure (see
//! DESIGN.md's experiment index) and prints the same series the paper
//! plots, mirrored as CSV under `results/`.

pub mod ablate;
pub mod apps;
pub mod ingest;
pub mod kernels;
pub mod lrfu;
pub mod micro;
pub mod ovs;
pub mod sharded;
pub mod soa;
pub mod windows;
