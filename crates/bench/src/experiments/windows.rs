//! Sliding-window experiments: Figures 10–11, the window ablation, and
//! the AoS-vs-SoA backend comparison for windowed and LRFU workloads.

use crate::scale::Scale;
use crate::{fmt, mpps, Report};
use qmax_core::{
    AmortizedQMax, BasicSlackQMax, BatchInsert, HierSlackQMax, LazySlackQMax, QMax,
    SoaBasicSlackQMax, SoaHierSlackQMax, SoaLazySlackQMax,
};
use qmax_lrfu::{QMaxLrfu, SoaQMaxLrfu};
use qmax_traces::gen::{arc_like, random_u64_stream};
use qmax_traces::zipf::ZipfSampler;
use std::io::Write;
use std::time::Instant;

/// Figure 10: interval q-MAX vs sliding-window q-MAX throughput over
/// the course of the trace (γ = 0.1, τ = 1): the interval structure
/// accelerates as its threshold rises; the window structure is flat.
pub fn fig10(scale: &Scale) {
    println!("# Figure 10: interval vs sliding q-MAX over the trace (gamma=0.1, tau=1)");
    let n = scale.stream(15_000_000);
    let stream: Vec<u64> = random_u64_stream(n, 5).collect();
    let segments = 10;
    let seg = n / segments;
    let mut rep = Report::new("fig10", &["q", "structure", "segment", "mpps"]);
    for &q in &scale.qs() {
        let w = (4 * q).max(1_000_000);
        let mut interval: Box<dyn QMax<u32, u64>> = Box::new(AmortizedQMax::new(q, 0.1));
        let mut sliding: Box<dyn QMax<u32, u64>> = Box::new(BasicSlackQMax::new(q, 0.1, w, 1.0));
        for (name, qm) in [("interval", &mut interval), ("sliding", &mut sliding)] {
            for s in 0..segments {
                let chunk = &stream[s * seg..(s + 1) * seg];
                let start = Instant::now();
                for (i, &v) in chunk.iter().enumerate() {
                    qm.insert((s * seg + i) as u32, v);
                }
                rep.row(&[
                    q.to_string(),
                    name.to_string(),
                    s.to_string(),
                    fmt(mpps(chunk.len(), start.elapsed())),
                ]);
            }
        }
    }
}

/// Figure 11: sliding q-MAX throughput as a function of the slack τ,
/// for several window sizes `W` and γ values (q fixed).
pub fn fig11(scale: &Scale) {
    println!("# Figure 11: sliding q-MAX throughput vs tau");
    let n = scale.stream(15_000_000);
    let stream: Vec<u64> = random_u64_stream(n, 6).collect();
    let q = if scale.full { 1_000_000 } else { 100_000 };
    let mut rep = Report::new("fig11", &["W", "gamma", "tau", "mpps"]);
    let ws = if scale.full {
        vec![4_000_000usize, 16_000_000]
    } else {
        vec![1_000_000usize, 4_000_000]
    };
    for &w in &ws {
        for gamma in [0.1, 0.5] {
            for tau in [0.01, 0.05, 0.1, 0.25, 0.5, 1.0] {
                let mut sw = BasicSlackQMax::new(q, gamma, w, tau);
                let start = Instant::now();
                for (i, &v) in stream.iter().enumerate() {
                    sw.insert(i as u32, v);
                }
                rep.row(&[
                    w.to_string(),
                    format!("{gamma}"),
                    format!("{tau}"),
                    fmt(mpps(n, start.elapsed())),
                ]);
            }
        }
    }
}

/// Window ablation (DESIGN.md §4): basic (Alg. 3) vs hierarchical
/// (Alg. 4, varying `c`) vs lazy (Thm. 7) — update throughput and
/// query latency as τ shrinks.
pub fn ablate_window(scale: &Scale) {
    println!("# Ablation: slack-window variants (update vs query trade-off)");
    let n = scale.stream(8_000_000);
    let stream: Vec<u64> = random_u64_stream(n, 7).collect();
    let q = 10_000;
    let w = 2_000_000;
    let mut rep = Report::new(
        "ablate_window",
        &["variant", "tau", "update_mpps", "query_ms", "stored"],
    );
    for tau in [0.001, 0.01, 0.1] {
        let variants: Vec<(String, Box<dyn QMax<u32, u64>>)> = vec![
            (
                "basic".into(),
                Box::new(BasicSlackQMax::new(q, 0.25, w, tau)),
            ),
            (
                "hier-c2".into(),
                Box::new(HierSlackQMax::new(q, 0.25, w, tau, 2)),
            ),
            (
                "hier-c3".into(),
                Box::new(HierSlackQMax::new(q, 0.25, w, tau, 3)),
            ),
            (
                "lazy-c2".into(),
                Box::new(LazySlackQMax::new(q, 0.25, w, tau, 2)),
            ),
        ];
        for (name, mut sw) in variants {
            let start = Instant::now();
            for (i, &v) in stream.iter().enumerate() {
                sw.insert(i as u32, v);
            }
            let update = mpps(n, start.elapsed());
            let qstart = Instant::now();
            let mut res_len = 0;
            let reps = 10;
            for _ in 0..reps {
                res_len = sw.query().len();
            }
            let query_ms = qstart.elapsed().as_secs_f64() * 1e3 / reps as f64;
            assert_eq!(res_len, q);
            rep.row(&[
                name,
                format!("{tau}"),
                fmt(update),
                fmt(query_ms),
                sw.len().to_string(),
            ]);
        }
    }
}

const BATCH: usize = 1024;

/// Times the windowed batch path and returns `(mips, sorted top-q)`.
fn time_window_batch<S>(sw: &mut S, items: &[(u64, u64)]) -> (f64, Vec<u64>)
where
    S: BatchInsert<u64, u64> + QMax<u64, u64>,
{
    let start = Instant::now();
    for chunk in items.chunks(BATCH) {
        sw.insert_batch(chunk);
    }
    let mips = mpps(items.len(), start.elapsed());
    let mut vals: Vec<u64> = sw.query().into_iter().map(|(_, v)| v).collect();
    vals.sort_unstable();
    (mips, vals)
}

/// One measured row, kept for the JSON mirror.
struct BackendRow {
    variant: String,
    tau: String,
    aos_mips: f64,
    soa_mips: f64,
}

/// AoS-vs-SoA backend comparison on the windowed and LRFU hot loops.
///
/// Every slack-window algorithm and the q-MAX LRFU are generic over
/// their interval backend; this experiment measures what the
/// structure-of-arrays backend buys them on a Zipf-skewed stream fed
/// through the batched insert path, asserting along the way that the
/// layouts produce identical top-q value multisets (windows) and
/// identical hit counts (LRFU). Series mirror to
/// `results/windows_backend_compare.csv` and `BENCH_windows.json`.
pub fn windows_backend(scale: &Scale) {
    println!("# Windowed/LRFU q-MAX: AoS vs SoA block backends (batched inserts)");
    let n = scale.stream(4_000_000);
    let q = 10_000;
    let gamma = 0.25;
    let w = (n / 4).max(4 * q);
    let mut flows = ZipfSampler::new(1_000_000, 1.0, 11);
    let stream: Vec<(u64, u64)> = random_u64_stream(n, 11 ^ 0x5EED)
        .map(|v| (flows.sample() as u64, v))
        .collect();
    let mut rep = Report::new(
        "windows_backend_compare",
        &["variant", "tau", "aos_mips", "soa_mips", "speedup"],
    );
    let mut rows: Vec<BackendRow> = Vec::new();
    for tau in [0.01, 0.1] {
        let (aos, top_aos) = time_window_batch(&mut BasicSlackQMax::new(q, gamma, w, tau), &stream);
        let (soa, top_soa) =
            time_window_batch(&mut SoaBasicSlackQMax::new_soa(q, gamma, w, tau), &stream);
        assert_eq!(top_aos, top_soa, "basic layouts diverged at tau={tau}");
        rows.push(BackendRow {
            variant: "basic".into(),
            tau: format!("{tau}"),
            aos_mips: aos,
            soa_mips: soa,
        });

        let (aos, top_aos) =
            time_window_batch(&mut HierSlackQMax::new(q, gamma, w, tau, 2), &stream);
        let (soa, top_soa) =
            time_window_batch(&mut SoaHierSlackQMax::new_soa(q, gamma, w, tau, 2), &stream);
        assert_eq!(top_aos, top_soa, "hier layouts diverged at tau={tau}");
        rows.push(BackendRow {
            variant: "hier-c2".into(),
            tau: format!("{tau}"),
            aos_mips: aos,
            soa_mips: soa,
        });

        let (aos, top_aos) =
            time_window_batch(&mut LazySlackQMax::new(q, gamma, w, tau, 2), &stream);
        let (soa, top_soa) =
            time_window_batch(&mut SoaLazySlackQMax::new_soa(q, gamma, w, tau, 2), &stream);
        assert_eq!(top_aos, top_soa, "lazy layouts diverged at tau={tau}");
        rows.push(BackendRow {
            variant: "lazy-c2".into(),
            tau: format!("{tau}"),
            aos_mips: aos,
            soa_mips: soa,
        });
    }

    // q-MAX LRFU: the log buffer rides the same backends; batch the
    // requests and compare layouts on an ARC-like cache trace.
    let reqs = scale.stream(2_000_000);
    let trace = arc_like(reqs, 200_000, 11);
    let lrfu_q = 50_000;
    for lrfu_gamma in [0.25, 1.0] {
        let mut aos_cache = QMaxLrfu::new(lrfu_q, lrfu_gamma, 0.75);
        let mut soa_cache = SoaQMaxLrfu::new_soa(lrfu_q, lrfu_gamma, 0.75);
        let mut mips = [0.0f64; 2];
        let mut hits = [0usize; 2];
        for (slot, cache) in [
            (0, &mut aos_cache as &mut dyn CacheBatch),
            (1, &mut soa_cache as &mut dyn CacheBatch),
        ] {
            let start = Instant::now();
            for chunk in trace.chunks(BATCH) {
                hits[slot] += cache.request_chunk(chunk);
            }
            mips[slot] = mpps(reqs, start.elapsed());
        }
        assert_eq!(
            hits[0], hits[1],
            "LRFU layouts diverged at gamma={lrfu_gamma}"
        );
        rows.push(BackendRow {
            variant: format!("lrfu-g{lrfu_gamma}"),
            tau: "-".into(),
            aos_mips: mips[0],
            soa_mips: mips[1],
        });
    }

    for r in &rows {
        rep.row(&[
            r.variant.clone(),
            r.tau.clone(),
            fmt(r.aos_mips),
            fmt(r.soa_mips),
            fmt(r.soa_mips / r.aos_mips),
        ]);
    }
    write_bench_json(&rows, n, q);
}

/// Object-safe shim so both LRFU layouts share one timing loop.
trait CacheBatch {
    fn request_chunk(&mut self, keys: &[u64]) -> usize;
}

impl CacheBatch for QMaxLrfu<u64> {
    fn request_chunk(&mut self, keys: &[u64]) -> usize {
        self.request_batch(keys)
    }
}

impl CacheBatch for SoaQMaxLrfu<u64> {
    fn request_chunk(&mut self, keys: &[u64]) -> usize {
        self.request_batch(keys)
    }
}

/// Hand-rolled JSON mirror (no serde in the dependency-free build).
fn write_bench_json(rows: &[BackendRow], stream_len: usize, q: usize) {
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut body = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            body.push_str(",\n");
        }
        body.push_str(&format!(
            concat!(
                "    {{\"variant\": \"{}\", \"tau\": \"{}\", ",
                "\"aos_mips\": {:.3}, \"soa_mips\": {:.3}, \"speedup\": {:.3}}}"
            ),
            r.variant,
            r.tau,
            r.aos_mips,
            r.soa_mips,
            r.soa_mips / r.aos_mips,
        ));
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"windows_backend_compare\",\n",
            "  \"generated_unix_secs\": {ts},\n",
            "  \"q\": {q},\n",
            "  \"stream_len\": {n},\n",
            "  \"batch\": {batch},\n",
            "  \"machine_caveats\": \"wall-clock timing on a shared, unpinned machine ",
            "(no CPU isolation, no frequency control, container noise); ",
            "relative AoS-vs-SoA speedups are the signal, absolute MIPS are not ",
            "comparable across machines or runs\",\n",
            "  \"series\": [\n{body}\n  ]\n",
            "}}\n"
        ),
        ts = ts,
        q = q,
        n = stream_len,
        batch = BATCH,
        body = body,
    );
    match std::fs::File::create("BENCH_windows.json").and_then(|mut f| f.write_all(json.as_bytes()))
    {
        Ok(()) => eprintln!("[windows-backend] wrote BENCH_windows.json"),
        Err(e) => eprintln!("[windows-backend] could not write BENCH_windows.json: {e}"),
    }
}
