//! Sliding-window experiments: Figures 10–11, the window ablation, and
//! the AoS-vs-SoA backend comparison for windowed and LRFU workloads.

use crate::scale::Scale;
use crate::{fmt, mpps, Report};
use qmax_core::{
    AdaptiveBasicSlackQMax, AdaptiveHierSlackQMax, AdaptiveLazySlackQMax, AmortizedQMax,
    BackendPolicy, BasicSlackQMax, BatchInsert, HierSlackQMax, LazySlackQMax, QMax,
    SoaBasicSlackQMax, SoaHierSlackQMax, SoaLazySlackQMax,
};
use qmax_lrfu::{AdaptiveQMaxLrfu, QMaxLrfu, SoaQMaxLrfu};
use qmax_traces::gen::{arc_like, random_u64_stream};
use qmax_traces::zipf::ZipfSampler;
use std::io::Write;
use std::time::Instant;

/// Figure 10: interval q-MAX vs sliding-window q-MAX throughput over
/// the course of the trace (γ = 0.1, τ = 1): the interval structure
/// accelerates as its threshold rises; the window structure is flat.
pub fn fig10(scale: &Scale) {
    println!("# Figure 10: interval vs sliding q-MAX over the trace (gamma=0.1, tau=1)");
    let n = scale.stream(15_000_000);
    let stream: Vec<u64> = random_u64_stream(n, 5).collect();
    let segments = 10;
    let seg = n / segments;
    let mut rep = Report::new("fig10", &["q", "structure", "segment", "mpps"]);
    for &q in &scale.qs() {
        let w = (4 * q).max(1_000_000);
        let mut interval: Box<dyn QMax<u32, u64>> = Box::new(AmortizedQMax::new(q, 0.1));
        let mut sliding: Box<dyn QMax<u32, u64>> = Box::new(BasicSlackQMax::new(q, 0.1, w, 1.0));
        for (name, qm) in [("interval", &mut interval), ("sliding", &mut sliding)] {
            for s in 0..segments {
                let chunk = &stream[s * seg..(s + 1) * seg];
                let start = Instant::now();
                for (i, &v) in chunk.iter().enumerate() {
                    qm.insert((s * seg + i) as u32, v);
                }
                rep.row(&[
                    q.to_string(),
                    name.to_string(),
                    s.to_string(),
                    fmt(mpps(chunk.len(), start.elapsed())),
                ]);
            }
        }
    }
}

/// Figure 11: sliding q-MAX throughput as a function of the slack τ,
/// for several window sizes `W` and γ values (q fixed).
pub fn fig11(scale: &Scale) {
    println!("# Figure 11: sliding q-MAX throughput vs tau");
    let n = scale.stream(15_000_000);
    let stream: Vec<u64> = random_u64_stream(n, 6).collect();
    let q = if scale.full { 1_000_000 } else { 100_000 };
    let mut rep = Report::new("fig11", &["W", "gamma", "tau", "mpps"]);
    let ws = if scale.full {
        vec![4_000_000usize, 16_000_000]
    } else {
        vec![1_000_000usize, 4_000_000]
    };
    for &w in &ws {
        for gamma in [0.1, 0.5] {
            for tau in [0.01, 0.05, 0.1, 0.25, 0.5, 1.0] {
                let mut sw = BasicSlackQMax::new(q, gamma, w, tau);
                let start = Instant::now();
                for (i, &v) in stream.iter().enumerate() {
                    sw.insert(i as u32, v);
                }
                rep.row(&[
                    w.to_string(),
                    format!("{gamma}"),
                    format!("{tau}"),
                    fmt(mpps(n, start.elapsed())),
                ]);
            }
        }
    }
}

/// Window ablation (DESIGN.md §4): basic (Alg. 3) vs hierarchical
/// (Alg. 4, varying `c`) vs lazy (Thm. 7) — update throughput and
/// query latency as τ shrinks.
pub fn ablate_window(scale: &Scale) {
    println!("# Ablation: slack-window variants (update vs query trade-off)");
    let n = scale.stream(8_000_000);
    let stream: Vec<u64> = random_u64_stream(n, 7).collect();
    let q = 10_000;
    let w = 2_000_000;
    let mut rep = Report::new(
        "ablate_window",
        &["variant", "tau", "update_mpps", "query_ms", "stored"],
    );
    for tau in [0.001, 0.01, 0.1] {
        let variants: Vec<(String, Box<dyn QMax<u32, u64>>)> = vec![
            (
                "basic".into(),
                Box::new(BasicSlackQMax::new(q, 0.25, w, tau)),
            ),
            (
                "hier-c2".into(),
                Box::new(HierSlackQMax::new(q, 0.25, w, tau, 2)),
            ),
            (
                "hier-c3".into(),
                Box::new(HierSlackQMax::new(q, 0.25, w, tau, 3)),
            ),
            (
                "lazy-c2".into(),
                Box::new(LazySlackQMax::new(q, 0.25, w, tau, 2)),
            ),
        ];
        for (name, mut sw) in variants {
            let start = Instant::now();
            for (i, &v) in stream.iter().enumerate() {
                sw.insert(i as u32, v);
            }
            let update = mpps(n, start.elapsed());
            let qstart = Instant::now();
            let mut res_len = 0;
            let reps = 10;
            for _ in 0..reps {
                res_len = sw.query().len();
            }
            let query_ms = qstart.elapsed().as_secs_f64() * 1e3 / reps as f64;
            assert_eq!(res_len, q);
            rep.row(&[
                name,
                format!("{tau}"),
                fmt(update),
                fmt(query_ms),
                sw.len().to_string(),
            ]);
        }
    }
}

const BATCH: usize = 1024;

/// Timed interleaved rounds per configuration; each round measures all
/// three layouts back-to-back and the per-layout best is reported. Six
/// rounds = two full rotations of the measurement order (see
/// [`tri_window_mips`]), enough that the CI gate at 0.95 measures the
/// policy and not single-round scheduler or allocator interference
/// (observed at 5–10% on the ~0.3 s LRFU rows and the ~10 ms
/// basic-window rows alike).
const PASSES: usize = 6;

/// A timed pass must cover at least this much wall clock: the fastest
/// window configs stream the whole item set in ~10 ms, where scheduler
/// jitter alone moves single measurements by ±10% — far more than the
/// 5% the CI gate resolves. [`stream_reps`] repeats the stream until a
/// pass reaches this floor.
const MIN_PASS_MS: f64 = 80.0;

/// How many times to replay `items` per timed pass so the pass lasts
/// at least [`MIN_PASS_MS`], estimated from one untimed warm-up pass.
/// The count is computed once per configuration and then shared by
/// every layout and round, so all measurements stay replay-identical.
fn stream_reps(est_mips: f64, n_items: usize) -> usize {
    let est_ms = n_items as f64 / est_mips / 1e3;
    ((MIN_PASS_MS / est_ms).ceil() as usize).clamp(1, 16)
}

/// Times `reps` replays of the windowed batch path and returns
/// `(mips, sorted top-q)`.
fn time_window_batch<S>(sw: &mut S, items: &[(u64, u64)], reps: usize) -> (f64, Vec<u64>)
where
    S: BatchInsert<u64, u64> + QMax<u64, u64>,
{
    let start = Instant::now();
    for _ in 0..reps {
        for chunk in items.chunks(BATCH) {
            sw.insert_batch(chunk);
        }
    }
    let mips = mpps(items.len() * reps, start.elapsed());
    let mut vals: Vec<u64> = sw.query().into_iter().map(|(_, v)| v).collect();
    vals.sort_unstable();
    (mips, vals)
}

/// Interleaved best-of-[`PASSES`] over the three layouts of one window
/// variant: each round rebuilds and replays AoS, SoA, and adaptive back
/// to back, and each layout keeps its fastest round. Interleaving is
/// what makes the `adaptive_vs_best` ratio trustworthy on a shared
/// machine — slow drift (frequency scaling, allocator warm-up,
/// container interference) hits all three layouts alike instead of
/// whichever config happened to run last, and taking the per-layout
/// max discards the rounds interference slowed down. The measurement
/// order rotates each round: position within a round carries its own
/// bias (the first layout runs against colder caches, the last against
/// the warmest), and under a fixed order that bias lands entirely on
/// one layout's max — rotation spreads it evenly across the three. The
/// deterministic replay also cross-checks that every layout and every
/// round answer the same top-q.
///
/// Returns the per-layout best throughputs `[aos, soa, adaptive]` plus
/// the **round-paired** `adaptive_vs_best` ratio: the best over rounds
/// of `ada / max(aos, soa)` *within that round*. The three measurements
/// of one round run back to back, so whatever the machine was doing
/// that round divides out of the ratio — on the shared single-core CI
/// box, single-pass throughput wobbles ±5–10%, which cross-round
/// max-vs-max ratios inherit and a 0.95 gate then trips on noise. A
/// genuinely wrong layout choice (the 20–60% regressions the gate
/// exists to catch) cannot manufacture a single ≥ 0.95 round.
fn tri_window_mips<A, B, C, FA, FB, FC>(
    mut make_aos: FA,
    mut make_soa: FB,
    mut make_ada: FC,
    items: &[(u64, u64)],
    context: &str,
) -> ([f64; 3], f64)
where
    A: BatchInsert<u64, u64> + QMax<u64, u64>,
    B: BatchInsert<u64, u64> + QMax<u64, u64>,
    C: BatchInsert<u64, u64> + QMax<u64, u64>,
    FA: FnMut() -> A,
    FB: FnMut() -> B,
    FC: FnMut() -> C,
{
    let (est, _) = time_window_batch(&mut make_aos(), items, 1);
    let reps = stream_reps(est, items.len());
    let mut best = [0.0f64; 3];
    let mut vs_best = 0.0f64;
    let mut reference: Option<Vec<u64>> = None;
    for round in 0..PASSES {
        let ((aos, top_aos), (soa, top_soa), (ada, top_ada)) = match round % 3 {
            0 => {
                let a = time_window_batch(&mut make_aos(), items, reps);
                let s = time_window_batch(&mut make_soa(), items, reps);
                let d = time_window_batch(&mut make_ada(), items, reps);
                (a, s, d)
            }
            1 => {
                let s = time_window_batch(&mut make_soa(), items, reps);
                let d = time_window_batch(&mut make_ada(), items, reps);
                let a = time_window_batch(&mut make_aos(), items, reps);
                (a, s, d)
            }
            _ => {
                let d = time_window_batch(&mut make_ada(), items, reps);
                let a = time_window_batch(&mut make_aos(), items, reps);
                let s = time_window_batch(&mut make_soa(), items, reps);
                (a, s, d)
            }
        };
        assert_eq!(top_aos, top_soa, "{context}: layouts diverged");
        assert_eq!(top_aos, top_ada, "{context}: adaptive diverged");
        match &reference {
            None => reference = Some(top_aos),
            Some(t) => assert_eq!(t, &top_aos, "{context}: replay diverged between rounds"),
        }
        best[0] = best[0].max(aos);
        best[1] = best[1].max(soa);
        best[2] = best[2].max(ada);
        vs_best = vs_best.max(ada / aos.max(soa));
    }
    (best, vs_best)
}

/// [`tri_window_mips`]'s protocol (including the round-paired
/// `adaptive_vs_best` it returns) for the LRFU cache layouts, equating
/// hit counts instead of top-q multisets.
fn tri_cache_mips<A, B, C, FA, FB, FC>(
    mut make_aos: FA,
    mut make_soa: FB,
    mut make_ada: FC,
    trace: &[u64],
    context: &str,
) -> ([f64; 3], f64)
where
    A: CacheBatch,
    B: CacheBatch,
    C: CacheBatch,
    FA: FnMut() -> A,
    FB: FnMut() -> B,
    FC: FnMut() -> C,
{
    fn one_pass<C: CacheBatch>(mut cache: C, trace: &[u64], reps: usize) -> (f64, usize) {
        let start = Instant::now();
        let mut hits = 0usize;
        for _ in 0..reps {
            for chunk in trace.chunks(BATCH) {
                hits += cache.request_chunk(chunk);
            }
        }
        (mpps(trace.len() * reps, start.elapsed()), hits)
    }
    let (est, _) = one_pass(make_aos(), trace, 1);
    let reps = stream_reps(est, trace.len());
    let mut best = [0.0f64; 3];
    let mut vs_best = 0.0f64;
    let mut reference: Option<usize> = None;
    for round in 0..PASSES {
        let ((aos, hits_aos), (soa, hits_soa), (ada, hits_ada)) = match round % 3 {
            0 => {
                let a = one_pass(make_aos(), trace, reps);
                let s = one_pass(make_soa(), trace, reps);
                let d = one_pass(make_ada(), trace, reps);
                (a, s, d)
            }
            1 => {
                let s = one_pass(make_soa(), trace, reps);
                let d = one_pass(make_ada(), trace, reps);
                let a = one_pass(make_aos(), trace, reps);
                (a, s, d)
            }
            _ => {
                let d = one_pass(make_ada(), trace, reps);
                let a = one_pass(make_aos(), trace, reps);
                let s = one_pass(make_soa(), trace, reps);
                (a, s, d)
            }
        };
        assert_eq!(hits_aos, hits_soa, "{context}: layouts diverged");
        assert_eq!(hits_aos, hits_ada, "{context}: adaptive diverged");
        match reference {
            None => reference = Some(hits_aos),
            Some(h) => assert_eq!(h, hits_aos, "{context}: replay diverged between rounds"),
        }
        best[0] = best[0].max(aos);
        best[1] = best[1].max(soa);
        best[2] = best[2].max(ada);
        vs_best = vs_best.max(ada / aos.max(soa));
    }
    (best, vs_best)
}

/// One measured row, kept for the JSON mirror.
struct BackendRow {
    variant: String,
    tau: String,
    aos_mips: f64,
    soa_mips: f64,
    adaptive_mips: f64,
    /// Adaptive throughput relative to the best hand-picked layout,
    /// round-paired (see [`tri_window_mips`]) — the quantity the CI
    /// regression gate bounds from below.
    adaptive_vs_best: f64,
    /// The layout the policy actually chose for the adaptive run.
    adaptive_label: &'static str,
}

/// AoS-vs-SoA-vs-adaptive backend comparison on the windowed and LRFU
/// hot loops.
///
/// Every slack-window algorithm and the q-MAX LRFU are generic over
/// their interval backend; this experiment measures what the
/// structure-of-arrays backend buys them on a Zipf-skewed stream fed
/// through the batched insert path, and what the calibrated
/// [`BackendPolicy`] recovers by picking the layout per block capacity.
/// Along the way it asserts all three layouts produce identical top-q
/// value multisets (windows) and identical hit counts (LRFU). Series
/// mirror to `results/windows_backend_compare.csv` (with an
/// `adaptive_vs_best` column for the CI gate) and `BENCH_windows.json`
/// (with the calibrated cost model embedded for provenance).
pub fn windows_backend(scale: &Scale) {
    println!("# Windowed/LRFU q-MAX: AoS vs SoA vs adaptive block backends (batched inserts)");
    let n = scale.stream(4_000_000);
    let q = 10_000;
    let gamma = 0.25;
    let w = (n / 4).max(4 * q);
    let mut flows = ZipfSampler::new(1_000_000, 1.0, 11);
    let stream: Vec<(u64, u64)> = random_u64_stream(n, 11 ^ 0x5EED)
        .map(|v| (flows.sample() as u64, v))
        .collect();
    let mut rep = Report::new(
        "windows_backend_compare",
        &[
            "variant",
            "tau",
            "aos_mips",
            "soa_mips",
            "adaptive_mips",
            "speedup",
            "adaptive_vs_best",
        ],
    );
    let mut rows: Vec<BackendRow> = Vec::new();
    for tau in [0.01, 0.1] {
        let label =
            AdaptiveBasicSlackQMax::<u64, u64>::new_adaptive(q, gamma, w, tau).backend_label();
        let ([aos, soa, ada], vs_best) = tri_window_mips(
            || BasicSlackQMax::new(q, gamma, w, tau),
            || SoaBasicSlackQMax::new_soa(q, gamma, w, tau),
            || AdaptiveBasicSlackQMax::new_adaptive(q, gamma, w, tau),
            &stream,
            &format!("basic tau={tau}"),
        );
        rows.push(BackendRow {
            variant: "basic".into(),
            tau: format!("{tau}"),
            aos_mips: aos,
            soa_mips: soa,
            adaptive_mips: ada,
            adaptive_vs_best: vs_best,
            adaptive_label: label,
        });

        let label =
            AdaptiveHierSlackQMax::<u64, u64>::new_adaptive(q, gamma, w, tau, 2).backend_label();
        let ([aos, soa, ada], vs_best) = tri_window_mips(
            || HierSlackQMax::new(q, gamma, w, tau, 2),
            || SoaHierSlackQMax::new_soa(q, gamma, w, tau, 2),
            || AdaptiveHierSlackQMax::new_adaptive(q, gamma, w, tau, 2),
            &stream,
            &format!("hier tau={tau}"),
        );
        rows.push(BackendRow {
            variant: "hier-c2".into(),
            tau: format!("{tau}"),
            aos_mips: aos,
            soa_mips: soa,
            adaptive_mips: ada,
            adaptive_vs_best: vs_best,
            adaptive_label: label,
        });

        let label =
            AdaptiveLazySlackQMax::<u64, u64>::new_adaptive(q, gamma, w, tau, 2).backend_label();
        let ([aos, soa, ada], vs_best) = tri_window_mips(
            || LazySlackQMax::new(q, gamma, w, tau, 2),
            || SoaLazySlackQMax::new_soa(q, gamma, w, tau, 2),
            || AdaptiveLazySlackQMax::new_adaptive(q, gamma, w, tau, 2),
            &stream,
            &format!("lazy tau={tau}"),
        );
        rows.push(BackendRow {
            variant: "lazy-c2".into(),
            tau: format!("{tau}"),
            aos_mips: aos,
            soa_mips: soa,
            adaptive_mips: ada,
            adaptive_vs_best: vs_best,
            adaptive_label: label,
        });
    }

    // q-MAX LRFU: the log buffer rides the same backends; batch the
    // requests and compare layouts on an ARC-like cache trace. The log's
    // score lane is OrderedF64, so the auto policy resolves the adaptive
    // log to AoS — the layout that measured faster for the
    // never-self-compacting buffer.
    let reqs = scale.stream(2_000_000);
    let trace = arc_like(reqs, 200_000, 11);
    let lrfu_q = 50_000;
    for lrfu_gamma in [0.25, 1.0] {
        let label =
            AdaptiveQMaxLrfu::<u64>::new_adaptive(lrfu_q, lrfu_gamma, 0.75).log_backend_label();
        let ([aos_mips, soa_mips, ada_mips], vs_best) = tri_cache_mips(
            || QMaxLrfu::new(lrfu_q, lrfu_gamma, 0.75),
            || SoaQMaxLrfu::new_soa(lrfu_q, lrfu_gamma, 0.75),
            || AdaptiveQMaxLrfu::new_adaptive(lrfu_q, lrfu_gamma, 0.75),
            &trace,
            &format!("lrfu gamma={lrfu_gamma}"),
        );
        rows.push(BackendRow {
            variant: format!("lrfu-g{lrfu_gamma}"),
            tau: "-".into(),
            aos_mips,
            soa_mips,
            adaptive_mips: ada_mips,
            adaptive_vs_best: vs_best,
            adaptive_label: label,
        });
    }

    for r in &rows {
        rep.row(&[
            r.variant.clone(),
            r.tau.clone(),
            fmt(r.aos_mips),
            fmt(r.soa_mips),
            fmt(r.adaptive_mips),
            fmt(r.soa_mips / r.aos_mips),
            fmt(r.adaptive_vs_best),
        ]);
    }
    write_bench_json(&rows, n, q);
}

/// Object-safe shim so both LRFU layouts share one timing loop.
trait CacheBatch {
    fn request_chunk(&mut self, keys: &[u64]) -> usize;
}

impl CacheBatch for QMaxLrfu<u64> {
    fn request_chunk(&mut self, keys: &[u64]) -> usize {
        self.request_batch(keys)
    }
}

impl CacheBatch for SoaQMaxLrfu<u64> {
    fn request_chunk(&mut self, keys: &[u64]) -> usize {
        self.request_batch(keys)
    }
}

impl CacheBatch for AdaptiveQMaxLrfu<u64> {
    fn request_chunk(&mut self, keys: &[u64]) -> usize {
        self.request_batch(keys)
    }
}

/// Hand-rolled JSON mirror (no serde in the dependency-free build).
/// Embeds the calibrated backend cost model so every published number
/// carries the crossover that produced the adaptive decisions.
fn write_bench_json(rows: &[BackendRow], stream_len: usize, q: usize) {
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut body = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            body.push_str(",\n");
        }
        body.push_str(&format!(
            concat!(
                "    {{\"variant\": \"{}\", \"tau\": \"{}\", ",
                "\"aos_mips\": {:.3}, \"soa_mips\": {:.3}, \"adaptive_mips\": {:.3}, ",
                "\"adaptive_label\": \"{}\", ",
                "\"speedup\": {:.3}, \"adaptive_vs_best\": {:.3}}}"
            ),
            r.variant,
            r.tau,
            r.aos_mips,
            r.soa_mips,
            r.adaptive_mips,
            r.adaptive_label,
            r.soa_mips / r.aos_mips,
            r.adaptive_vs_best,
        ));
    }
    let policy = BackendPolicy::global();
    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"windows_backend_compare\",\n",
            "  \"generated_unix_secs\": {ts},\n",
            "  \"q\": {q},\n",
            "  \"stream_len\": {n},\n",
            "  \"batch\": {batch},\n",
            "  \"backend_policy_mode\": \"{mode:?}\",\n",
            "  \"backend_cost_model\": {model},\n",
            "  \"machine_caveats\": \"wall-clock timing on a shared, unpinned machine ",
            "(no CPU isolation, no frequency control, container noise); ",
            "relative AoS-vs-SoA speedups are the signal, absolute MIPS are not ",
            "comparable across machines or runs\",\n",
            "  \"series\": [\n{body}\n  ]\n",
            "}}\n"
        ),
        ts = ts,
        q = q,
        n = stream_len,
        batch = BATCH,
        mode = policy.mode(),
        model = policy.model().summary_json(),
        body = body,
    );
    match std::fs::File::create("BENCH_windows.json").and_then(|mut f| f.write_all(json.as_bytes()))
    {
        Ok(()) => eprintln!("[windows-backend] wrote BENCH_windows.json"),
        Err(e) => eprintln!("[windows-backend] could not write BENCH_windows.json: {e}"),
    }
}
