//! Sliding-window experiments: Figures 10–11 and the window ablation.

use crate::scale::Scale;
use crate::{fmt, mpps, Report};
use qmax_core::{AmortizedQMax, BasicSlackQMax, HierSlackQMax, LazySlackQMax, QMax};
use qmax_traces::gen::random_u64_stream;
use std::time::Instant;

/// Figure 10: interval q-MAX vs sliding-window q-MAX throughput over
/// the course of the trace (γ = 0.1, τ = 1): the interval structure
/// accelerates as its threshold rises; the window structure is flat.
pub fn fig10(scale: &Scale) {
    println!("# Figure 10: interval vs sliding q-MAX over the trace (gamma=0.1, tau=1)");
    let n = scale.stream(15_000_000);
    let stream: Vec<u64> = random_u64_stream(n, 5).collect();
    let segments = 10;
    let seg = n / segments;
    let mut rep = Report::new("fig10", &["q", "structure", "segment", "mpps"]);
    for &q in &scale.qs() {
        let w = (4 * q).max(1_000_000);
        let mut interval: Box<dyn QMax<u32, u64>> = Box::new(AmortizedQMax::new(q, 0.1));
        let mut sliding: Box<dyn QMax<u32, u64>> = Box::new(BasicSlackQMax::new(q, 0.1, w, 1.0));
        for (name, qm) in [("interval", &mut interval), ("sliding", &mut sliding)] {
            for s in 0..segments {
                let chunk = &stream[s * seg..(s + 1) * seg];
                let start = Instant::now();
                for (i, &v) in chunk.iter().enumerate() {
                    qm.insert((s * seg + i) as u32, v);
                }
                rep.row(&[
                    q.to_string(),
                    name.to_string(),
                    s.to_string(),
                    fmt(mpps(chunk.len(), start.elapsed())),
                ]);
            }
        }
    }
}

/// Figure 11: sliding q-MAX throughput as a function of the slack τ,
/// for several window sizes `W` and γ values (q fixed).
pub fn fig11(scale: &Scale) {
    println!("# Figure 11: sliding q-MAX throughput vs tau");
    let n = scale.stream(15_000_000);
    let stream: Vec<u64> = random_u64_stream(n, 6).collect();
    let q = if scale.full { 1_000_000 } else { 100_000 };
    let mut rep = Report::new("fig11", &["W", "gamma", "tau", "mpps"]);
    let ws = if scale.full {
        vec![4_000_000usize, 16_000_000]
    } else {
        vec![1_000_000usize, 4_000_000]
    };
    for &w in &ws {
        for gamma in [0.1, 0.5] {
            for tau in [0.01, 0.05, 0.1, 0.25, 0.5, 1.0] {
                let mut sw = BasicSlackQMax::new(q, gamma, w, tau);
                let start = Instant::now();
                for (i, &v) in stream.iter().enumerate() {
                    sw.insert(i as u32, v);
                }
                rep.row(&[
                    w.to_string(),
                    format!("{gamma}"),
                    format!("{tau}"),
                    fmt(mpps(n, start.elapsed())),
                ]);
            }
        }
    }
}

/// Window ablation (DESIGN.md §4): basic (Alg. 3) vs hierarchical
/// (Alg. 4, varying `c`) vs lazy (Thm. 7) — update throughput and
/// query latency as τ shrinks.
pub fn ablate_window(scale: &Scale) {
    println!("# Ablation: slack-window variants (update vs query trade-off)");
    let n = scale.stream(8_000_000);
    let stream: Vec<u64> = random_u64_stream(n, 7).collect();
    let q = 10_000;
    let w = 2_000_000;
    let mut rep = Report::new(
        "ablate_window",
        &["variant", "tau", "update_mpps", "query_ms", "stored"],
    );
    for tau in [0.001, 0.01, 0.1] {
        let variants: Vec<(String, Box<dyn QMax<u32, u64>>)> = vec![
            (
                "basic".into(),
                Box::new(BasicSlackQMax::new(q, 0.25, w, tau)),
            ),
            (
                "hier-c2".into(),
                Box::new(HierSlackQMax::new(q, 0.25, w, tau, 2)),
            ),
            (
                "hier-c3".into(),
                Box::new(HierSlackQMax::new(q, 0.25, w, tau, 3)),
            ),
            (
                "lazy-c2".into(),
                Box::new(LazySlackQMax::new(q, 0.25, w, tau, 2)),
            ),
        ];
        for (name, mut sw) in variants {
            let start = Instant::now();
            for (i, &v) in stream.iter().enumerate() {
                sw.insert(i as u32, v);
            }
            let update = mpps(n, start.elapsed());
            let qstart = Instant::now();
            let mut res_len = 0;
            let reps = 10;
            for _ in 0..reps {
                res_len = sw.query().len();
            }
            let query_ms = qstart.elapsed().as_secs_f64() * 1e3 / reps as f64;
            assert_eq!(res_len, q);
            rep.row(&[
                name,
                format!("{tau}"),
                fmt(update),
                fmt(query_ms),
                sw.len().to_string(),
            ]);
        }
    }
}
