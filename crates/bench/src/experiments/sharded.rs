//! Sharded-engine scaling sweep (the engine-crate counterpart of the
//! paper's per-PMD deployment, Section 6.6).
//!
//! For each trace and shard count this times (a) the single-threaded
//! batched insert path and (b) the multi-threaded driver, and reports
//! millions of inserts per second plus the driver's load balance. On a
//! single hardware core the threaded numbers measure coordination
//! overhead rather than speedup; the CSV records whatever the machine
//! actually delivers.

use crate::scale::Scale;
use crate::{fmt, mpps, Report};
use qmax_engine::{DriverConfig, QMax, ShardedQMax};
use qmax_traces::gen::{caida_like, random_u64_stream};
use qmax_traces::zipf::ZipfSampler;
use std::time::Instant;

const BATCH: usize = 1024;

fn zipf_stream(n: usize, seed: u64) -> Vec<(u64, u64)> {
    let mut flows = ZipfSampler::new(1_000_000, 1.0, seed);
    random_u64_stream(n, seed ^ 0x5EED)
        .map(|v| (flows.sample() as u64, v))
        .collect()
}

fn caida_stream(n: usize, seed: u64) -> Vec<(u64, u64)> {
    caida_like(n, seed)
        .map(|p| (p.flow().as_u64(), p.len as u64))
        .collect()
}

fn sorted_values(engine: &mut ShardedQMax<u64, u64>) -> Vec<u64> {
    let mut v: Vec<u64> = engine.query().into_iter().map(|(_, v)| v).collect();
    v.sort_unstable();
    v
}

/// Sweeps shard count ∈ {1, 2, 4, 8} on Zipf and CAIDA-like streams,
/// mirroring the series as `results/sharded_scaling.csv`.
///
/// Rows with `producers == 1` time the single-ingestion-thread driver
/// (`run_threaded`); rows with `producers > 1` split the stream into
/// that many contiguous sub-streams and time the multi-producer driver
/// (`run_threaded_partitioned`, one SPSC ring per producer × shard).
/// Shard routing hashes keys, so every variant must rebuild the same
/// reservoir as the single-threaded batched path — asserted per row.
pub fn sharded_scaling(scale: &Scale) {
    println!(
        "# Sharded engine: insert throughput vs shard and producer count (q=10^4, gamma=0.25)"
    );
    let n = scale.stream(2_000_000);
    let q = 10_000;
    let traces = [("zipf", zipf_stream(n, 7)), ("caida", caida_stream(n, 9))];
    let mut rep = Report::new(
        "sharded_scaling",
        &[
            "trace",
            "shards",
            "producers",
            "batch_mips",
            "threaded_mips",
            "load_factor",
        ],
    );
    for (name, items) in &traces {
        for shards in [1usize, 2, 4, 8] {
            let mut batched: ShardedQMax<u64, u64> = ShardedQMax::new(q, 0.25, shards);
            let start = Instant::now();
            for chunk in items.chunks(BATCH) {
                batched.insert_batch(chunk);
            }
            let batch_mips = mpps(items.len(), start.elapsed());
            let reference = sorted_values(&mut batched);
            for producers in [1usize, 2, 4, 8] {
                let mut threaded: ShardedQMax<u64, u64> = ShardedQMax::new(q, 0.25, shards);
                let report = if producers == 1 {
                    threaded.run_threaded(items.iter().copied(), DriverConfig::default())
                } else {
                    let chunk = items.len().div_ceil(producers);
                    let streams: Vec<_> = items.chunks(chunk).map(|c| c.iter().copied()).collect();
                    threaded.run_threaded_partitioned(streams, DriverConfig::default())
                };
                assert_eq!(
                    sorted_values(&mut threaded),
                    reference,
                    "batched and threaded paths diverged on {name} ({producers} producers)"
                );
                rep.row(&[
                    name.to_string(),
                    shards.to_string(),
                    producers.to_string(),
                    fmt(batch_mips),
                    fmt(report.throughput_mips()),
                    fmt(report.max_load_factor()),
                ]);
            }
        }
    }
}
