//! Ablations of the design choices DESIGN.md calls out: amortized vs
//! de-amortized compaction, and the selection algorithm inside it.

use crate::scale::Scale;
use crate::{fmt, time_stream, Backend, Report};
use qmax_core::{DeamortizedQMax, QMax};
use qmax_select::{mom_nth_smallest, nth_smallest};
use qmax_traces::gen::random_u64_stream;
use std::time::Instant;

/// Ablation: amortized vs de-amortized q-MAX — average throughput and
/// the worst-case work a single arrival performs.
///
/// The amortized variant is faster on average (the paper benchmarks
/// it); the de-amortized variant bounds *every* update, which is what
/// a line-rate datapath actually needs. This prints both sides.
pub fn ablate_deamortize(scale: &Scale) {
    println!("# Ablation: amortized vs de-amortized compaction");
    let stream: Vec<u64> = random_u64_stream(scale.stream(10_000_000), 8).collect();
    let mut rep = Report::new(
        "ablate_deamortize",
        &["q", "gamma", "variant", "mpps", "max_step_ops", "budget"],
    );
    for &q in &[10_000usize, 1_000_000] {
        for gamma in [0.05, 0.25, 1.0] {
            let m = time_stream(Backend::QMax { gamma }.build_u64(q).as_mut(), &stream);
            rep.row(&[
                q.to_string(),
                format!("{gamma}"),
                "amortized".into(),
                fmt(m),
                // The amortized variant's worst single update is a full
                // O(q(1+gamma)) compaction.
                format!("~{}", ((q as f64) * (1.0 + gamma) * 2.0) as u64),
                "-".into(),
            ]);
            let mut dqm = DeamortizedQMax::new(q, gamma);
            let start = Instant::now();
            for (i, &v) in stream.iter().enumerate() {
                dqm.insert(i as u32, v);
            }
            let m = crate::mpps(stream.len(), start.elapsed());
            rep.row(&[
                q.to_string(),
                format!("{gamma}"),
                "deamortized".into(),
                fmt(m),
                dqm.stats().max_step_ops.to_string(),
                dqm.step_budget().to_string(),
            ]);
            assert_eq!(dqm.stats().forced_completions, 0);
        }
    }
}

/// Ablation: introselect vs pure median-of-medians inside the
/// compaction, on compaction-shaped inputs (a `q(1+γ)` buffer whose
/// top part is partially ordered from previous compactions).
pub fn ablate_select(scale: &Scale) {
    println!("# Ablation: selection algorithm (introselect vs median-of-medians)");
    let mut rep = Report::new("ablate_select", &["n", "input", "algorithm", "ns_per_elem"]);
    let sizes = if scale.full {
        vec![100_000usize, 1_000_000, 10_000_000]
    } else {
        vec![100_000usize, 1_000_000]
    };
    for &n in &sizes {
        let random: Vec<u64> = random_u64_stream(n, 9).collect();
        let mut sorted = random.clone();
        sorted.sort_unstable();
        let mut reversed = sorted.clone();
        reversed.reverse();
        let few: Vec<u64> = random.iter().map(|v| v % 4).collect();
        for (iname, input) in [
            ("random", &random),
            ("sorted", &sorted),
            ("reversed", &reversed),
            ("few-distinct", &few),
        ] {
            for (aname, f) in [
                (
                    "introselect",
                    nth_smallest::<u64> as fn(&mut [u64], usize) -> &u64,
                ),
                (
                    "mom",
                    mom_nth_smallest::<u64> as fn(&mut [u64], usize) -> &u64,
                ),
            ] {
                let reps = 5;
                let mut total = std::time::Duration::ZERO;
                for r in 0..reps {
                    let mut buf = input.clone();
                    let k = (n / 2 + r) % n;
                    let start = Instant::now();
                    std::hint::black_box(f(&mut buf, k));
                    total += start.elapsed();
                }
                let ns = total.as_nanos() as f64 / (reps * n) as f64;
                rep.row(&[n.to_string(), iname.into(), aname.into(), fmt(ns)]);
            }
        }
    }
}

/// Ablation: per-update latency distribution — the concrete case for
/// de-amortization. The amortized variant's average is better, but its
/// tail contains `O(q)` compaction spikes; the de-amortized variant's
/// tail is flat. Reports p50 / p99 / p99.99 / max per-update latency.
pub fn ablate_tail(scale: &Scale) {
    println!("# Ablation: per-update latency tail (amortized vs de-amortized)");
    let n = scale.stream(2_000_000);
    let stream: Vec<u64> = random_u64_stream(n, 10).collect();
    let mut rep = Report::new(
        "ablate_tail",
        &["q", "variant", "p50_ns", "p99_ns", "p9999_ns", "max_ns"],
    );
    for &q in &[10_000usize, 1_000_000] {
        for (name, mut qm) in [
            ("amortized", Backend::QMax { gamma: 0.25 }.build_u64(q)),
            (
                "deamortized",
                Backend::QMaxDeamortized { gamma: 0.25 }.build_u64(q),
            ),
        ] {
            let mut lat: Vec<u32> = Vec::with_capacity(n);
            for (i, &v) in stream.iter().enumerate() {
                let t = Instant::now();
                qm.insert(i as u32, v);
                lat.push(t.elapsed().subsec_nanos());
            }
            lat.sort_unstable();
            let pct = |p: f64| lat[((lat.len() - 1) as f64 * p) as usize];
            rep.row(&[
                q.to_string(),
                name.into(),
                pct(0.5).to_string(),
                pct(0.99).to_string(),
                pct(0.9999).to_string(),
                lat.last().unwrap().to_string(),
            ]);
        }
    }
}

/// Ablation: γ space/time trade-off including the de-amortized
/// variant's per-arrival budget (complements Figure 4 with worst-case
/// numbers).
pub fn ablate_gamma(scale: &Scale) {
    println!("# Ablation: gamma trade-off, worst-case step budget");
    let _ = scale;
    let mut rep = Report::new(
        "ablate_gamma",
        &["q", "gamma", "space_slots", "step_budget"],
    );
    for &q in &[10_000usize, 1_000_000] {
        for gamma in [0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0] {
            let dqm: DeamortizedQMax<u32, u64> = DeamortizedQMax::new(q, gamma);
            rep.row(&[
                q.to_string(),
                format!("{gamma}"),
                dqm.capacity().to_string(),
                dqm.step_budget().to_string(),
            ]);
        }
    }
}
