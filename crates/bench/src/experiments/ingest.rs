//! Ring-vs-mpsc ingestion contention microbench (PR 10 acceptance
//! artifact).
//!
//! Two series, both round-paired the same way the flow-table and
//! backend benches are: each round times the ring transport and the
//! mpsc transport back to back (alternating which goes first), the
//! per-round ratio divides out slow drift, and the median ratio is
//! what the acceptance gate reads.
//!
//! * `transport` — raw hand-off cost. P producer threads each send a
//!   fixed token budget round-robin across S = 4 shard consumers.
//!   The ring side uses one SPSC ring per producer × shard (the
//!   `run_threaded_partitioned` topology); the mpsc side clones one
//!   `SyncSender` per producer into S shared `sync_channel`s sized to
//!   the same total buffering (DEPTH × P slots per shard).
//! * `driver` — end-to-end `run_threaded` (ring) vs
//!   `run_threaded_mpsc` (retained mpsc-era reference) on a Zipf
//!   stream, identical config.
//!
//! On a single hardware core the absolute numbers measure
//! coordination overhead — syscalls, parking, scheduler churn — not
//! parallel speedup; the paired ratio is still meaningful because
//! both sides pay the same oversubscription tax. `BENCH_ingest.json`
//! records that caveat next to the numbers.

use crate::scale::Scale;
use crate::{fmt, Report};
use qmax_engine::{ring, DriverConfig, ShardedQMax};
use qmax_traces::gen::random_u64_stream;
use qmax_traces::zipf::ZipfSampler;
use std::io::Write as _;
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

const SHARDS: usize = 4;
const DEPTH: usize = 8;
const TRANSPORT_ROUNDS: usize = 5;
const DRIVER_ROUNDS: usize = 3;
const PRODUCER_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Drains a fan-in of SPSC lanes the way the driver's worker loop
/// does: check closed *before* sweeping so a close observed here
/// cannot hide a push sequenced before it, drop lanes once closed
/// and drained, back off politely when every lane is idle.
fn drain_ring_lanes(mut lanes: Vec<ring::Consumer<u64>>) -> u64 {
    let mut popped = 0u64;
    let mut idle = 0u32;
    while !lanes.is_empty() {
        let mut progress = false;
        lanes.retain_mut(|rx| {
            let closed = rx.is_closed();
            while rx.try_pop().is_some() {
                popped += 1;
                progress = true;
            }
            !closed
        });
        if progress {
            idle = 0;
        } else {
            idle += 1;
            if idle < 32 {
                thread::yield_now();
            } else {
                thread::sleep(Duration::from_micros(50));
            }
        }
    }
    popped
}

/// P producers × S shard consumers over P×S SPSC rings; returns the
/// wall-clock for moving `producers * msgs_each` tokens.
fn transport_ring(producers: usize, msgs_each: u64) -> Duration {
    let mut producer_lanes: Vec<Vec<ring::Producer<u64>>> =
        (0..producers).map(|_| Vec::with_capacity(SHARDS)).collect();
    let mut consumer_lanes: Vec<Vec<ring::Consumer<u64>>> =
        (0..SHARDS).map(|_| Vec::with_capacity(producers)).collect();
    for lanes in producer_lanes.iter_mut() {
        for lane in consumer_lanes.iter_mut() {
            let (tx, rx) = ring::ring::<u64>(DEPTH);
            lanes.push(tx);
            lane.push(rx);
        }
    }
    let start = Instant::now();
    thread::scope(|scope| {
        let mut consumers = Vec::with_capacity(SHARDS);
        for lanes in consumer_lanes.drain(..) {
            consumers.push(scope.spawn(move || drain_ring_lanes(lanes)));
        }
        for mut lanes in producer_lanes.drain(..) {
            scope.spawn(move || {
                for i in 0..msgs_each {
                    let s = (i % SHARDS as u64) as usize;
                    let _ = lanes[s].push_wait(i);
                }
                // Producers drop here; Drop closes each ring.
            });
        }
        let moved: u64 = consumers
            .into_iter()
            .map(|c| c.join().expect("ring consumer panicked"))
            .sum();
        assert_eq!(
            moved,
            producers as u64 * msgs_each,
            "ring transport lost tokens"
        );
    });
    start.elapsed()
}

/// Same topology over S shared `sync_channel`s with cloned senders,
/// buffered to the same total slot count per shard.
fn transport_mpsc(producers: usize, msgs_each: u64) -> Duration {
    let mut senders: Vec<mpsc::SyncSender<u64>> = Vec::with_capacity(SHARDS);
    let mut receivers: Vec<mpsc::Receiver<u64>> = Vec::with_capacity(SHARDS);
    for _ in 0..SHARDS {
        let (tx, rx) = mpsc::sync_channel::<u64>(DEPTH * producers);
        senders.push(tx);
        receivers.push(rx);
    }
    let start = Instant::now();
    thread::scope(|scope| {
        let mut consumers = Vec::with_capacity(SHARDS);
        for rx in receivers.drain(..) {
            consumers.push(scope.spawn(move || {
                let mut popped = 0u64;
                while rx.recv().is_ok() {
                    popped += 1;
                }
                popped
            }));
        }
        for _ in 0..producers {
            let lanes: Vec<mpsc::SyncSender<u64>> = senders.clone();
            scope.spawn(move || {
                for i in 0..msgs_each {
                    let s = (i % SHARDS as u64) as usize;
                    let _ = lanes[s].send(i);
                }
            });
        }
        drop(senders); // last sender clones die with the producers
        let moved: u64 = consumers
            .into_iter()
            .map(|c| c.join().expect("mpsc consumer panicked"))
            .sum();
        assert_eq!(
            moved,
            producers as u64 * msgs_each,
            "mpsc transport lost tokens"
        );
    });
    start.elapsed()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

struct PairedRound {
    ring_mops: f64,
    mpsc_mops: f64,
    ratio: f64, // mpsc_time / ring_time; > 1.0 means the ring is faster
}

struct TransportSeries {
    producers: usize,
    rounds: Vec<PairedRound>,
}

fn mops(msgs: u64, d: Duration) -> f64 {
    msgs as f64 / d.as_secs_f64() / 1e6
}

fn round_json(rounds: &[PairedRound]) -> String {
    let parts: Vec<String> = rounds
        .iter()
        .map(|r| {
            format!(
                r#"{{"ring_mops":{:.3},"mpsc_mops":{:.3},"ratio":{:.4}}}"#,
                r.ring_mops, r.mpsc_mops, r.ratio
            )
        })
        .collect();
    format!("[{}]", parts.join(","))
}

fn ratio_median(rounds: &[PairedRound]) -> f64 {
    median(rounds.iter().map(|r| r.ratio).collect())
}

#[allow(clippy::too_many_arguments)]
fn write_ingest_bench_json(
    transport: &[TransportSeries],
    driver: &[PairedRound],
    msgs_total: u64,
    driver_items: usize,
) {
    let transport_json: Vec<String> = transport
        .iter()
        .map(|t| {
            format!(
                concat!(
                    r#"    {{"producers":{},"ring_mops_median":{:.3},"mpsc_mops_median":{:.3},"#,
                    r#""ratio_median":{:.4},"rounds":{}}}"#
                ),
                t.producers,
                median(t.rounds.iter().map(|r| r.ring_mops).collect()),
                median(t.rounds.iter().map(|r| r.mpsc_mops).collect()),
                ratio_median(&t.rounds),
                round_json(&t.rounds)
            )
        })
        .collect();
    let ratio_at = |p: usize| {
        transport
            .iter()
            .find(|t| t.producers == p)
            .map(|t| ratio_median(&t.rounds))
            .unwrap_or(0.0)
    };
    let (r4, r8) = (ratio_at(4), ratio_at(8));
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"ingest\",\n",
            "  \"note\": \"Round-paired ring-vs-mpsc ingestion comparison. Each round times both transports back to back (alternating order); ratio = mpsc_time / ring_time, so > 1.0 means the SPSC ring hand-off is faster. Medians are across rounds.\",\n",
            "  \"machine_note\": \"Single hardware core: every number here is coordination overhead under oversubscription (spin/yield/park on the ring side, mutex + futex on the mpsc side), not parallel speedup. The paired ratio stays meaningful because both sides pay the same scheduling tax.\",\n",
            "  \"config\": {{\"shards\": {shards}, \"ring_depth\": {depth}, \"mpsc_capacity_per_shard\": \"ring_depth * producers\", \"transport_rounds\": {trounds}, \"driver_rounds\": {drounds}, \"transport_msgs_per_round\": {msgs}, \"driver_items\": {ditems}}},\n",
            "  \"transport\": [\n{transport}\n  ],\n",
            "  \"driver\": {{\"entry_points\": \"run_threaded (ring) vs run_threaded_mpsc (retained reference)\", \"shards\": {shards}, \"ratio_median\": {dmed:.4}, \"rounds\": {driver}}},\n",
            "  \"acceptance\": {{\"criterion\": \"ring beats mpsc on the contention microbench at >= 4 producer threads (median paired ratio > 1.0)\", \"ratio_p4\": {r4:.4}, \"ratio_p8\": {r8:.4}, \"pass\": {pass}}}\n",
            "}}\n"
        ),
        shards = SHARDS,
        depth = DEPTH,
        trounds = TRANSPORT_ROUNDS,
        drounds = DRIVER_ROUNDS,
        msgs = msgs_total,
        ditems = driver_items,
        transport = transport_json.join(",\n"),
        driver = round_json(driver),
        dmed = ratio_median(driver),
        r4 = r4,
        r8 = r8,
        pass = r4 > 1.0 && r8 > 1.0,
    );
    match std::fs::File::create("BENCH_ingest.json").and_then(|mut f| f.write_all(json.as_bytes()))
    {
        Ok(()) => eprintln!("[ingest] wrote BENCH_ingest.json"),
        Err(e) => eprintln!("[ingest] could not write BENCH_ingest.json: {e}"),
    }
}

/// Contention microbench: SPSC ring fan-in vs shared `sync_channel`
/// at 1/2/4/8 producer threads, plus the end-to-end driver pairing.
/// Writes `results/ingest_contention.csv` and `BENCH_ingest.json`.
pub fn ingest_contention(scale: &Scale) {
    println!("# Ingestion: SPSC ring fan-in vs shared mpsc channel (S=4 shards)");
    let msgs_total = scale.stream(800_000) as u64;
    let mut rep = Report::new(
        "ingest_contention",
        &[
            "series",
            "producers",
            "round",
            "ring_mops",
            "mpsc_mops",
            "ratio",
        ],
    );

    let mut transport = Vec::new();
    for producers in PRODUCER_SWEEP {
        let msgs_each = msgs_total.div_ceil(producers as u64);
        let total = msgs_each * producers as u64;
        let mut rounds = Vec::with_capacity(TRANSPORT_ROUNDS);
        for round in 0..TRANSPORT_ROUNDS {
            // Alternate which side runs first so drift (thermal,
            // page-cache, scheduler state) cancels in the ratio.
            let (ring_t, mpsc_t) = if round % 2 == 0 {
                let r = transport_ring(producers, msgs_each);
                let m = transport_mpsc(producers, msgs_each);
                (r, m)
            } else {
                let m = transport_mpsc(producers, msgs_each);
                let r = transport_ring(producers, msgs_each);
                (r, m)
            };
            let paired = PairedRound {
                ring_mops: mops(total, ring_t),
                mpsc_mops: mops(total, mpsc_t),
                ratio: mpsc_t.as_secs_f64() / ring_t.as_secs_f64(),
            };
            rep.row(&[
                "transport".to_string(),
                producers.to_string(),
                round.to_string(),
                fmt(paired.ring_mops),
                fmt(paired.mpsc_mops),
                fmt(paired.ratio),
            ]);
            rounds.push(paired);
        }
        println!(
            "  transport P={producers}: median ratio {:.3} (mpsc/ring, >1 = ring faster)",
            ratio_median(&rounds)
        );
        transport.push(TransportSeries { producers, rounds });
    }

    // End-to-end: the ring driver vs the retained mpsc-era reference
    // on the same Zipf stream and config.
    let driver_items = scale.stream(1_000_000);
    let q = 10_000;
    let mut flows = ZipfSampler::new(1_000_000, 1.0, 11);
    let items: Vec<(u64, u64)> = random_u64_stream(driver_items, 0xD01E)
        .map(|v| (flows.sample() as u64, v))
        .collect();
    let run_ring = |items: &[(u64, u64)]| {
        let mut engine: ShardedQMax<u64, u64> = ShardedQMax::new(q, 0.25, SHARDS);
        let start = Instant::now();
        let _ = engine.run_threaded(items.iter().copied(), DriverConfig::default());
        start.elapsed()
    };
    let run_mpsc = |items: &[(u64, u64)]| {
        let mut engine: ShardedQMax<u64, u64> = ShardedQMax::new(q, 0.25, SHARDS);
        let start = Instant::now();
        let _ = engine.run_threaded_mpsc(items.iter().copied(), DriverConfig::default());
        start.elapsed()
    };
    let mut driver_rounds = Vec::with_capacity(DRIVER_ROUNDS);
    for round in 0..DRIVER_ROUNDS {
        let (ring_t, mpsc_t) = if round % 2 == 0 {
            let r = run_ring(&items);
            let m = run_mpsc(&items);
            (r, m)
        } else {
            let m = run_mpsc(&items);
            let r = run_ring(&items);
            (r, m)
        };
        let paired = PairedRound {
            ring_mops: mops(items.len() as u64, ring_t),
            mpsc_mops: mops(items.len() as u64, mpsc_t),
            ratio: mpsc_t.as_secs_f64() / ring_t.as_secs_f64(),
        };
        rep.row(&[
            "driver".to_string(),
            "1".to_string(),
            round.to_string(),
            fmt(paired.ring_mops),
            fmt(paired.mpsc_mops),
            fmt(paired.ratio),
        ]);
        driver_rounds.push(paired);
    }
    println!(
        "  driver (run_threaded vs run_threaded_mpsc): median ratio {:.3}",
        ratio_median(&driver_rounds)
    );

    write_ingest_bench_json(&transport, &driver_rounds, msgs_total, driver_items);
}
