//! LRFU experiments: Figure 9 (throughput) and Table 2 (hit ratios).

use crate::scale::Scale;
use crate::{fmt, mpps, Report};
use qmax_lrfu::{hit_ratio, Cache, DeamortizedLrfu, HeapLrfu, QMaxLrfu, ScanLrfu};
use qmax_traces::gen::arc_like;
use std::time::Instant;

fn request_rate<C: Cache<u64>>(cache: &mut C, trace: &[u64]) -> f64 {
    let start = Instant::now();
    for &k in trace {
        cache.request(k);
    }
    mpps(trace.len(), start.elapsed())
}

/// Figure 9: LRFU request throughput (c = 0.75) on the ARC-like cache
/// trace for q ∈ {10⁴, 10⁵, 10⁶}: q-MAX LRFU across γ vs the indexed
/// heap (`O(log q)`) and scan (`O(q)`, the paper's no-sift-heap
/// behaviour) baselines.
pub fn fig9(scale: &Scale) {
    println!("# Figure 9: LRFU throughput (c=0.75) on the ARC-like trace");
    let n = scale.stream(3_000_000);
    let c = 0.75;
    let mut rep = Report::new("fig9", &["q", "policy", "mreq_s"]);
    for &q in &[10_000usize, 100_000, 1_000_000] {
        let trace = arc_like(n, 10 * q, 9);
        for gamma in [0.05, 0.1, 0.25, 0.5, 1.0] {
            let m = request_rate(&mut QMaxLrfu::new(q, gamma, c), &trace);
            rep.row(&[q.to_string(), format!("lrfu-qmax(g={gamma})"), fmt(m)]);
        }
        let m = request_rate(&mut DeamortizedLrfu::new(q, 0.25, c), &trace);
        rep.row(&[q.to_string(), "lrfu-qmax-wc(g=0.25)".into(), fmt(m)]);
        let m = request_rate(&mut HeapLrfu::new(q, c), &trace);
        rep.row(&[q.to_string(), "lrfu-heap".into(), fmt(m)]);
        // The O(q) scan baseline is hopeless at large q; warm the cache
        // to capacity (so misses really pay the O(q) eviction scan) and
        // cap the timed portion so the experiment finishes.
        let mut scan = ScanLrfu::new(q, c);
        for i in 0..q as u64 {
            scan.request(u64::MAX - i);
        }
        let cap = ((2_000_000_000u64 / q as u64) as usize).clamp(5_000, n);
        let m = request_rate(&mut scan, &trace[..cap]);
        rep.row(&[q.to_string(), "lrfu-scan".into(), fmt(m)]);
    }
}

/// Table 2: hit ratio of q-MAX based LRFU vs the exact q-sized and
/// q(1+γ)-sized LRFU caches (q = 10⁴, c = 0.75, ARC-like trace).
pub fn table2(scale: &Scale) {
    println!("# Table 2: LRFU hit ratios (q=10^4, c=0.75)");
    let n = scale.stream(3_000_000);
    let q = 10_000;
    let c = 0.75;
    let trace = arc_like(n, 20 * q, 17);
    let mut rep = Report::new("table2", &["gamma", "policy", "hit_ratio"]);
    let base = hit_ratio(&mut HeapLrfu::new(q, c), &trace);
    rep.row(&[
        "-".into(),
        "q-sized LRFU".into(),
        format!("{:.1}%", base * 100.0),
    ]);
    for gamma in [0.1, 0.5, 1.0] {
        let ours = hit_ratio(&mut QMaxLrfu::new(q, gamma, c), &trace);
        let big = ((q as f64) * (1.0 + gamma)).ceil() as usize;
        let upper = hit_ratio(&mut HeapLrfu::new(big, c), &trace);
        rep.row(&[
            format!("{:.0}%", gamma * 100.0),
            "q-MAX based LRFU".into(),
            format!("{:.1}%", ours * 100.0),
        ]);
        rep.row(&[
            format!("{:.0}%", gamma * 100.0),
            "q(1+g)-sized LRFU".into(),
            format!("{:.1}%", upper * 100.0),
        ]);
    }
}
