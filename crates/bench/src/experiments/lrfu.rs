//! LRFU experiments: Figure 9 (throughput), Table 2 (hit ratios), and
//! the keyed-path flow-table-vs-HashMap index comparison.

use crate::scale::Scale;
use crate::{fmt, mpps, Report};
use qmax_apps::{CountDistinct, Pba};
use qmax_core::{AmortizedQMax, DedupQMax, IndexedHeapQMax, Minimal, OrderedF64, QMax, StdIndex};
use qmax_lrfu::{hit_ratio, Cache, DeamortizedLrfu, HeapLrfu, QMaxLrfu, ScanLrfu};
use qmax_traces::gen::{arc_like, random_u64_stream};
use qmax_traces::zipf::ZipfSampler;
use std::io::Write;
use std::time::Instant;

fn request_rate<C: Cache<u64>>(cache: &mut C, trace: &[u64]) -> f64 {
    let start = Instant::now();
    for &k in trace {
        cache.request(k);
    }
    mpps(trace.len(), start.elapsed())
}

/// Figure 9: LRFU request throughput (c = 0.75) on the ARC-like cache
/// trace for q ∈ {10⁴, 10⁵, 10⁶}: q-MAX LRFU across γ vs the indexed
/// heap (`O(log q)`) and scan (`O(q)`, the paper's no-sift-heap
/// behaviour) baselines.
pub fn fig9(scale: &Scale) {
    println!("# Figure 9: LRFU throughput (c=0.75) on the ARC-like trace");
    let n = scale.stream(3_000_000);
    let c = 0.75;
    let mut rep = Report::new("fig9", &["q", "policy", "mreq_s"]);
    for &q in &[10_000usize, 100_000, 1_000_000] {
        let trace = arc_like(n, 10 * q, 9);
        for gamma in [0.05, 0.1, 0.25, 0.5, 1.0] {
            let m = request_rate(&mut QMaxLrfu::new(q, gamma, c), &trace);
            rep.row(&[q.to_string(), format!("lrfu-qmax(g={gamma})"), fmt(m)]);
        }
        let m = request_rate(&mut DeamortizedLrfu::new(q, 0.25, c), &trace);
        rep.row(&[q.to_string(), "lrfu-qmax-wc(g=0.25)".into(), fmt(m)]);
        let m = request_rate(&mut HeapLrfu::new(q, c), &trace);
        rep.row(&[q.to_string(), "lrfu-heap".into(), fmt(m)]);
        // The O(q) scan baseline is hopeless at large q; warm the cache
        // to capacity (so misses really pay the O(q) eviction scan) and
        // cap the timed portion so the experiment finishes.
        let mut scan = ScanLrfu::new(q, c);
        for i in 0..q as u64 {
            scan.request(u64::MAX - i);
        }
        let cap = ((2_000_000_000u64 / q as u64) as usize).clamp(5_000, n);
        let m = request_rate(&mut scan, &trace[..cap]);
        rep.row(&[q.to_string(), "lrfu-scan".into(), fmt(m)]);
    }
}

/// Table 2: hit ratio of q-MAX based LRFU vs the exact q-sized and
/// q(1+γ)-sized LRFU caches (q = 10⁴, c = 0.75, ARC-like trace).
pub fn table2(scale: &Scale) {
    println!("# Table 2: LRFU hit ratios (q=10^4, c=0.75)");
    let n = scale.stream(3_000_000);
    let q = 10_000;
    let c = 0.75;
    let trace = arc_like(n, 20 * q, 17);
    let mut rep = Report::new("table2", &["gamma", "policy", "hit_ratio"]);
    let base = hit_ratio(&mut HeapLrfu::new(q, c), &trace);
    rep.row(&[
        "-".into(),
        "q-sized LRFU".into(),
        format!("{:.1}%", base * 100.0),
    ]);
    for gamma in [0.1, 0.5, 1.0] {
        let ours = hit_ratio(&mut QMaxLrfu::new(q, gamma, c), &trace);
        let big = ((q as f64) * (1.0 + gamma)).ceil() as usize;
        let upper = hit_ratio(&mut HeapLrfu::new(big, c), &trace);
        rep.row(&[
            format!("{:.0}%", gamma * 100.0),
            "q-MAX based LRFU".into(),
            format!("{:.1}%", ours * 100.0),
        ]);
        rep.row(&[
            format!("{:.0}%", gamma * 100.0),
            "q(1+g)-sized LRFU".into(),
            format!("{:.1}%", upper * 100.0),
        ]);
    }
}

/// Request batch size for the LRFU index comparison — same as the
/// `windows-backend` experiment that produced the BENCH_windows.json
/// baseline numbers.
const BATCH: usize = 1024;

/// The `lrfu-g1` AoS throughput recorded in BENCH_windows.json before
/// the flow-table rewrite (std `HashMap` + SipHash keyed index). The
/// keyed paths were the ~60× bottleneck this number documents.
const HASHMAP_ERA_LRFU_G1_MIPS: f64 = 5.936;

struct IndexRow {
    workload: String,
    std_mips: f64,
    flow_mips: f64,
}

/// Keyed-path comparison: every structure whose hot loop is dominated
/// by a key→slot index, timed twice — once with the HashMap-era
/// [`StdIndex`] and once with the SIMD-probed [`qmax_core::FlowTable`]
/// (the default). Both runs feed identical streams and every pair is
/// cross-checked (hits, stats, query multisets, estimates) so the
/// speedups cannot come from divergent behavior. Series mirror to
/// `results/lrfu_flow_table.csv` and `BENCH_lrfu.json`.
pub fn lrfu_flow_table(scale: &Scale) {
    println!("# Keyed paths: SIMD-probed flow table vs std HashMap index");
    let c = 0.75;
    let q = 50_000;
    let reqs = scale.stream(2_000_000);
    let trace = arc_like(reqs, 200_000, 11);
    let mut rep = Report::new(
        "lrfu_flow_table",
        &["workload", "std_mips", "flow_mips", "speedup"],
    );
    let mut rows: Vec<IndexRow> = Vec::new();

    // q-MAX LRFU (batched requests), the structures BENCH_windows.json
    // showed at 3–6 MIPS against 237–428 MIPS for the core reservoirs.
    for gamma in [0.25, 1.0] {
        let mut std_cache = QMaxLrfu::<u64, _, StdIndex>::new_in(q, gamma, c);
        let mut flow_cache = QMaxLrfu::new(q, gamma, c);
        let (mut std_hits, mut flow_hits) = (0usize, 0usize);
        let start = Instant::now();
        for chunk in trace.chunks(BATCH) {
            std_hits += std_cache.request_batch(chunk);
        }
        let std_mips = mpps(reqs, start.elapsed());
        let start = Instant::now();
        for chunk in trace.chunks(BATCH) {
            flow_hits += flow_cache.request_batch(chunk);
        }
        let flow_mips = mpps(reqs, start.elapsed());
        assert_eq!(std_hits, flow_hits, "indexes diverged at gamma={gamma}");
        rows.push(IndexRow {
            workload: format!("lrfu-g{gamma}"),
            std_mips,
            flow_mips,
        });
    }

    // De-amortized LRFU: singleton requests (no batch entry point).
    {
        let mut std_cache = DeamortizedLrfu::<u64, _, StdIndex>::new_in(q, 0.25, c);
        let mut flow_cache = DeamortizedLrfu::new(q, 0.25, c);
        let start = Instant::now();
        let mut std_hits = 0usize;
        for &k in &trace {
            std_hits += usize::from(std_cache.request(k));
        }
        let std_mips = mpps(reqs, start.elapsed());
        let start = Instant::now();
        let mut flow_hits = 0usize;
        for &k in &trace {
            flow_hits += usize::from(flow_cache.request(k));
        }
        let flow_mips = mpps(reqs, start.elapsed());
        assert_eq!(std_hits, flow_hits, "de-amortized indexes diverged");
        assert_eq!(std_cache.stats(), flow_cache.stats());
        rows.push(IndexRow {
            workload: "lrfu-wc-g0.25".into(),
            std_mips,
            flow_mips,
        });
    }

    // Keyed apps: zipf-skewed ids so the index sees heavy re-touches.
    let app_q = 10_000;
    let mut ids = ZipfSampler::new(1_000_000, 1.0, 7);
    let pairs: Vec<(u64, u64)> = random_u64_stream(reqs, 7 ^ 0x5EED)
        .map(|v| (ids.sample() as u64, v))
        .collect();

    // Duplicate-merging q-MAX (PBA's reservoir).
    {
        let mut std_qm = DedupQMax::<u64, u64, StdIndex>::new_in(app_q, 0.25);
        let mut flow_qm = DedupQMax::new(app_q, 0.25);
        let std_mips = time_inserts(&mut std_qm, &pairs);
        let flow_mips = time_inserts(&mut flow_qm, &pairs);
        assert_eq!(
            sorted_query_vals(&mut std_qm),
            sorted_query_vals(&mut flow_qm),
            "dedup indexes diverged"
        );
        rows.push(IndexRow {
            workload: "dedup".into(),
            std_mips,
            flow_mips,
        });
    }

    // Indexed-heap keyed baseline (update-in-place top-q).
    {
        let mut std_qm = IndexedHeapQMax::<u64, u64, StdIndex>::new_in(app_q);
        let mut flow_qm = IndexedHeapQMax::new(app_q);
        let std_mips = time_inserts(&mut std_qm, &pairs);
        let flow_mips = time_inserts(&mut flow_qm, &pairs);
        assert_eq!(
            sorted_query_vals(&mut std_qm),
            sorted_query_vals(&mut flow_qm),
            "indexed-heap indexes diverged"
        );
        rows.push(IndexRow {
            workload: "indexed-heap".into(),
            std_mips,
            flow_mips,
        });
    }

    // KMV count-distinct: one admitted-set membership test per key.
    {
        let mut std_cd = CountDistinct::<_, StdIndex>::new_in(
            AmortizedQMax::<u64, Minimal<u64>>::new(app_q, 0.5),
            3,
        );
        let mut flow_cd =
            CountDistinct::new(AmortizedQMax::<u64, Minimal<u64>>::new(app_q, 0.5), 3);
        let start = Instant::now();
        for &(id, _) in &pairs {
            std_cd.observe(id);
        }
        let std_mips = mpps(reqs, start.elapsed());
        let start = Instant::now();
        for &(id, _) in &pairs {
            flow_cd.observe(id);
        }
        let flow_mips = mpps(reqs, start.elapsed());
        assert_eq!(
            std_cd.estimate().to_bits(),
            flow_cd.estimate().to_bits(),
            "count-distinct indexes diverged"
        );
        assert_eq!(std_cd.admitted_count(), flow_cd.admitted_count());
        rows.push(IndexRow {
            workload: "count-distinct".into(),
            std_mips,
            flow_mips,
        });
    }

    // Priority-based aggregation: one aggregate upsert per arrival.
    {
        let mut std_pba = Pba::<_, StdIndex>::new_in(
            DedupQMax::<u64, OrderedF64, StdIndex>::new_in(app_q, 0.25),
            1,
        );
        let mut flow_pba = Pba::new(DedupQMax::<u64, OrderedF64>::new(app_q, 0.25), 1);
        let start = Instant::now();
        for &(id, v) in &pairs {
            std_pba.observe(id, 1.0 + (v % 1024) as f64);
        }
        let std_mips = mpps(reqs, start.elapsed());
        let start = Instant::now();
        for &(id, v) in &pairs {
            flow_pba.observe(id, 1.0 + (v % 1024) as f64);
        }
        let flow_mips = mpps(reqs, start.elapsed());
        assert_eq!(
            std_pba.tracked_keys(),
            flow_pba.tracked_keys(),
            "pba aggregate maps diverged"
        );
        assert_eq!(std_pba.sample().len(), flow_pba.sample().len());
        rows.push(IndexRow {
            workload: "pba".into(),
            std_mips,
            flow_mips,
        });
    }

    for r in &rows {
        rep.row(&[
            r.workload.clone(),
            fmt(r.std_mips),
            fmt(r.flow_mips),
            fmt(r.flow_mips / r.std_mips),
        ]);
    }
    write_lrfu_bench_json(&rows, reqs, q);
}

fn time_inserts<Q: QMax<u64, u64>>(qm: &mut Q, pairs: &[(u64, u64)]) -> f64 {
    let start = Instant::now();
    for &(id, v) in pairs {
        qm.insert(id, v);
    }
    mpps(pairs.len(), start.elapsed())
}

fn sorted_query_vals<Q: QMax<u64, u64>>(qm: &mut Q) -> Vec<u64> {
    let mut v: Vec<u64> = qm.query().into_iter().map(|(_, v)| v).collect();
    v.sort_unstable();
    v
}

/// Hand-rolled JSON mirror (no serde in the dependency-free build).
fn write_lrfu_bench_json(rows: &[IndexRow], stream_len: usize, q: usize) {
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut body = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            body.push_str(",\n");
        }
        body.push_str(&format!(
            concat!(
                "    {{\"workload\": \"{}\", \"std_mips\": {:.3}, ",
                "\"flow_mips\": {:.3}, \"speedup\": {:.3}}}"
            ),
            r.workload,
            r.std_mips,
            r.flow_mips,
            r.flow_mips / r.std_mips,
        ));
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"lrfu_flow_table\",\n",
            "  \"generated_unix_secs\": {ts},\n",
            "  \"lrfu_q\": {q},\n",
            "  \"stream_len\": {n},\n",
            "  \"batch\": {batch},\n",
            "  \"hashmap_era_baseline\": {{\"source\": \"BENCH_windows.json\", ",
            "\"lrfu_g1_aos_mips\": {base}}},\n",
            "  \"machine_caveats\": \"wall-clock timing on a shared, unpinned machine ",
            "(no CPU isolation, no frequency control, container noise); ",
            "relative flow-vs-std speedups are the signal, absolute MIPS are not ",
            "comparable across machines or runs\",\n",
            "  \"target_note\": \"the issue's 5x absolute target (~34 ns/request) sits ",
            "below the per-request algorithmic floor measured on this machine: one ",
            "logaddexp score merge alone costs ~29 ns, and the amortized maintain pass ",
            "adds ~2 index probes plus a selection share per request; the flow table ",
            "removes the index share of that budget (probe ~16 ns vs ~33 ns for std ",
            "HashMap), which is the speedup recorded here\",\n",
            "  \"series\": [\n{body}\n  ]\n",
            "}}\n"
        ),
        ts = ts,
        q = q,
        n = stream_len,
        batch = BATCH,
        base = HASHMAP_ERA_LRFU_G1_MIPS,
        body = body,
    );
    match std::fs::File::create("BENCH_lrfu.json").and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => eprintln!("[lrfu] wrote BENCH_lrfu.json"),
        Err(e) => eprintln!("[lrfu] could not write BENCH_lrfu.json: {e}"),
    }
}
