//! LRFU experiments: Figure 9 (throughput), Table 2 (hit ratios), and
//! the keyed-path flow-table-vs-HashMap index comparison.

use crate::scale::Scale;
use crate::{fmt, mpps, Report};
use qmax_apps::{CountDistinct, Pba};
use qmax_core::{
    AmortizedQMax, BatchInsert, DedupQMax, FlowTable, IndexedHeapQMax, Minimal, OrderedF64, QMax,
    StdIndex,
};
use qmax_lrfu::{hit_ratio, Cache, DeamortizedLrfu, DecayScore, HeapLrfu, QMaxLrfu, ScanLrfu};
use qmax_traces::gen::{arc_like, random_u64_stream};
use qmax_traces::zipf::ZipfSampler;
use std::io::Write;
use std::time::Instant;

fn request_rate<C: Cache<u64>>(cache: &mut C, trace: &[u64]) -> f64 {
    let start = Instant::now();
    for &k in trace {
        cache.request(k);
    }
    mpps(trace.len(), start.elapsed())
}

/// Figure 9: LRFU request throughput (c = 0.75) on the ARC-like cache
/// trace for q ∈ {10⁴, 10⁵, 10⁶}: q-MAX LRFU across γ vs the indexed
/// heap (`O(log q)`) and scan (`O(q)`, the paper's no-sift-heap
/// behaviour) baselines.
pub fn fig9(scale: &Scale) {
    println!("# Figure 9: LRFU throughput (c=0.75) on the ARC-like trace");
    let n = scale.stream(3_000_000);
    let c = 0.75;
    let mut rep = Report::new("fig9", &["q", "policy", "mreq_s"]);
    for &q in &[10_000usize, 100_000, 1_000_000] {
        let trace = arc_like(n, 10 * q, 9);
        for gamma in [0.05, 0.1, 0.25, 0.5, 1.0] {
            let m = request_rate(&mut QMaxLrfu::new(q, gamma, c), &trace);
            rep.row(&[q.to_string(), format!("lrfu-qmax(g={gamma})"), fmt(m)]);
        }
        let m = request_rate(&mut DeamortizedLrfu::new(q, 0.25, c), &trace);
        rep.row(&[q.to_string(), "lrfu-qmax-wc(g=0.25)".into(), fmt(m)]);
        let m = request_rate(&mut HeapLrfu::new(q, c), &trace);
        rep.row(&[q.to_string(), "lrfu-heap".into(), fmt(m)]);
        // The O(q) scan baseline is hopeless at large q; warm the cache
        // to capacity (so misses really pay the O(q) eviction scan) and
        // cap the timed portion so the experiment finishes.
        let mut scan = ScanLrfu::new(q, c);
        for i in 0..q as u64 {
            scan.request(u64::MAX - i);
        }
        let cap = ((2_000_000_000u64 / q as u64) as usize).clamp(5_000, n);
        let m = request_rate(&mut scan, &trace[..cap]);
        rep.row(&[q.to_string(), "lrfu-scan".into(), fmt(m)]);
    }
}

/// Table 2: hit ratio of q-MAX based LRFU vs the exact q-sized and
/// q(1+γ)-sized LRFU caches (q = 10⁴, c = 0.75, ARC-like trace).
pub fn table2(scale: &Scale) {
    println!("# Table 2: LRFU hit ratios (q=10^4, c=0.75)");
    let n = scale.stream(3_000_000);
    let q = 10_000;
    let c = 0.75;
    let trace = arc_like(n, 20 * q, 17);
    let mut rep = Report::new("table2", &["gamma", "policy", "hit_ratio"]);
    let base = hit_ratio(&mut HeapLrfu::new(q, c), &trace);
    rep.row(&[
        "-".into(),
        "q-sized LRFU".into(),
        format!("{:.1}%", base * 100.0),
    ]);
    for gamma in [0.1, 0.5, 1.0] {
        let ours = hit_ratio(&mut QMaxLrfu::new(q, gamma, c), &trace);
        let big = ((q as f64) * (1.0 + gamma)).ceil() as usize;
        let upper = hit_ratio(&mut HeapLrfu::new(big, c), &trace);
        rep.row(&[
            format!("{:.0}%", gamma * 100.0),
            "q-MAX based LRFU".into(),
            format!("{:.1}%", ours * 100.0),
        ]);
        rep.row(&[
            format!("{:.0}%", gamma * 100.0),
            "q(1+g)-sized LRFU".into(),
            format!("{:.1}%", upper * 100.0),
        ]);
    }
}

/// Request batch size for the LRFU index comparison — same as the
/// `windows-backend` experiment that produced the BENCH_windows.json
/// baseline numbers.
const BATCH: usize = 1024;

/// The `lrfu-g1` AoS throughput recorded in BENCH_windows.json before
/// the flow-table rewrite (std `HashMap` + SipHash keyed index). The
/// keyed paths were the ~60× bottleneck this number documents.
const HASHMAP_ERA_LRFU_G1_MIPS: f64 = 5.936;

/// Pre-change recording of the maintenance selection that materialized
/// `(score, slot)` pairs for `nth_smallest`, taken on the same machine
/// immediately before the scores-only `count_gt_eq` rewrite landed
/// (full-scale run; the paired JSON fields are the "after"). The
/// residual is what one `lrfu-g1` request pays beyond its probe and
/// merge — selection, eviction removes, log append, bookkeeping.
const PAIR_SELECTION_RESIDUAL_NS: f64 = 39.2;
/// `lrfu-g1` total ns/request in the same pre-change recording.
const PAIR_SELECTION_LRFU_G1_TOTAL_NS: f64 = 73.8;
/// `lrfu-g1` flow-table MIPS at batch 1024 in the same recording.
const PAIR_SELECTION_LRFU_G1_MIPS: f64 = 13.550;

struct IndexRow {
    workload: String,
    batch: usize,
    std_mips: f64,
    flow_mips: f64,
}

/// Per-component cost estimates for one LRFU request (nanoseconds),
/// measured by standalone micro-loops on the same machine and stream.
struct ComponentNs {
    /// One batched flow-table probe on a warm q-sized table.
    flow_probe: f64,
    /// One exact `logaddexp` score merge (dependent chain).
    exact_merge: f64,
    /// One table-interpolated fast score merge (dependent chain).
    fast_merge: f64,
    /// Total per-request cost of the flow-table `lrfu-g1` run; the
    /// remainder after probes and the merge is selection + bookkeeping.
    lrfu_g1_total: f64,
}

/// Keyed-path comparison: every structure whose hot loop is dominated
/// by a key→slot index, timed twice — once with the HashMap-era
/// [`StdIndex`] and once with the SIMD-probed [`qmax_core::FlowTable`]
/// (the default). Both runs feed identical streams and every pair is
/// cross-checked (hits, stats, query multisets, estimates) so the
/// speedups cannot come from divergent behavior. Both throughput levers
/// from the batched-probe PR are on for *both* sides: arrivals go
/// through the batch entry points (pipelined hash+prefetch probing) and
/// LRFU scores merge via the bounded-error fast `logaddexp` — so the
/// flow-vs-std ratio still isolates the index. A batch-size sweep
/// (1/64/256/1024) on `lrfu-g1` shows how much of the win is
/// memory-level parallelism. Series mirror to
/// `results/lrfu_flow_table.csv` and `BENCH_lrfu.json`.
pub fn lrfu_flow_table(scale: &Scale) {
    println!("# Keyed paths: SIMD-probed flow table vs std HashMap index");
    let c = 0.75;
    let q = 50_000;
    let reqs = scale.stream(2_000_000);
    let trace = arc_like(reqs, 200_000, 11);
    let mut rep = Report::new(
        "lrfu_flow_table",
        &["workload", "batch", "std_mips", "flow_mips", "speedup"],
    );
    let mut rows: Vec<IndexRow> = Vec::new();

    // q-MAX LRFU (batched requests + fast merge), the structures
    // BENCH_windows.json showed at 3–6 MIPS against 237–428 MIPS for
    // the core reservoirs. The γ=1 point also sweeps the request batch
    // size: span 1 disables the probe pipeline (each request resolves
    // its own miss chain), spans ≥ 64 fill at least two
    // PROBE_PIPELINE stages.
    for gamma in [0.25, 1.0] {
        let sweep: &[usize] = if gamma == 1.0 {
            &[1, 64, 256, BATCH]
        } else {
            &[BATCH]
        };
        for &b in sweep {
            let mut std_cache =
                QMaxLrfu::<u64, _, StdIndex>::new_in(q, gamma, c).with_fast_merge(true);
            let mut flow_cache = QMaxLrfu::new(q, gamma, c).with_fast_merge(true);
            let (mut std_hits, mut flow_hits) = (0usize, 0usize);
            let start = Instant::now();
            for chunk in trace.chunks(b) {
                std_hits += std_cache.request_batch(chunk);
            }
            let std_mips = mpps(reqs, start.elapsed());
            let start = Instant::now();
            for chunk in trace.chunks(b) {
                flow_hits += flow_cache.request_batch(chunk);
            }
            let flow_mips = mpps(reqs, start.elapsed());
            assert_eq!(std_hits, flow_hits, "indexes diverged at gamma={gamma}");
            rows.push(IndexRow {
                workload: format!("lrfu-g{gamma}"),
                batch: b,
                std_mips,
                flow_mips,
            });
        }
    }

    // De-amortized LRFU: batched requests prefetch-warm the index ahead
    // of each per-request step (the hit path is too stateful to
    // reorder), and the refresh feed probes through `get_mut_batch`.
    {
        let mut std_cache =
            DeamortizedLrfu::<u64, _, StdIndex>::new_in(q, 0.25, c).with_fast_merge(true);
        let mut flow_cache = DeamortizedLrfu::new(q, 0.25, c).with_fast_merge(true);
        let start = Instant::now();
        let mut std_hits = 0usize;
        for chunk in trace.chunks(BATCH) {
            std_hits += std_cache.request_batch(chunk);
        }
        let std_mips = mpps(reqs, start.elapsed());
        let start = Instant::now();
        let mut flow_hits = 0usize;
        for chunk in trace.chunks(BATCH) {
            flow_hits += flow_cache.request_batch(chunk);
        }
        let flow_mips = mpps(reqs, start.elapsed());
        assert_eq!(std_hits, flow_hits, "de-amortized indexes diverged");
        assert_eq!(std_cache.stats(), flow_cache.stats());
        rows.push(IndexRow {
            workload: "lrfu-wc-g0.25".into(),
            batch: BATCH,
            std_mips,
            flow_mips,
        });
    }

    // Keyed apps: zipf-skewed ids so the index sees heavy re-touches.
    let app_q = 10_000;
    let mut ids = ZipfSampler::new(1_000_000, 1.0, 7);
    let pairs: Vec<(u64, u64)> = random_u64_stream(reqs, 7 ^ 0x5EED)
        .map(|v| (ids.sample() as u64, v))
        .collect();

    // Duplicate-merging q-MAX (PBA's reservoir): spans go through
    // `insert_batch`, so every triggered compaction merges through the
    // pipelined `entry_batch` upsert.
    {
        let mut std_qm = DedupQMax::<u64, u64, StdIndex>::new_in(app_q, 0.25);
        let mut flow_qm = DedupQMax::new(app_q, 0.25);
        let std_mips = time_insert_batches(&mut std_qm, &pairs);
        let flow_mips = time_insert_batches(&mut flow_qm, &pairs);
        assert_eq!(
            sorted_query_vals(&mut std_qm),
            sorted_query_vals(&mut flow_qm),
            "dedup indexes diverged"
        );
        rows.push(IndexRow {
            workload: "dedup".into(),
            batch: BATCH,
            std_mips,
            flow_mips,
        });
    }

    // Indexed-heap keyed baseline (update-in-place top-q, singleton —
    // the sift chain is inherently serial).
    {
        let mut std_qm = IndexedHeapQMax::<u64, u64, StdIndex>::new_in(app_q);
        let mut flow_qm = IndexedHeapQMax::new(app_q);
        let std_mips = time_inserts(&mut std_qm, &pairs);
        let flow_mips = time_inserts(&mut flow_qm, &pairs);
        assert_eq!(
            sorted_query_vals(&mut std_qm),
            sorted_query_vals(&mut flow_qm),
            "indexed-heap indexes diverged"
        );
        rows.push(IndexRow {
            workload: "indexed-heap".into(),
            batch: 1,
            std_mips,
            flow_mips,
        });
    }

    // KMV count-distinct: one admitted-set membership test per key,
    // hashed and prefetched a PROBE_PIPELINE stage ahead.
    {
        let mut std_cd = CountDistinct::<_, StdIndex>::new_in(
            AmortizedQMax::<u64, Minimal<u64>>::new(app_q, 0.5),
            3,
        );
        let mut flow_cd =
            CountDistinct::new(AmortizedQMax::<u64, Minimal<u64>>::new(app_q, 0.5), 3);
        let keys: Vec<u64> = pairs.iter().map(|&(id, _)| id).collect();
        let start = Instant::now();
        for span in keys.chunks(BATCH) {
            std_cd.observe_batch(span);
        }
        let std_mips = mpps(reqs, start.elapsed());
        let start = Instant::now();
        for span in keys.chunks(BATCH) {
            flow_cd.observe_batch(span);
        }
        let flow_mips = mpps(reqs, start.elapsed());
        assert_eq!(
            std_cd.estimate().to_bits(),
            flow_cd.estimate().to_bits(),
            "count-distinct indexes diverged"
        );
        assert_eq!(std_cd.admitted_count(), flow_cd.admitted_count());
        rows.push(IndexRow {
            workload: "count-distinct".into(),
            batch: BATCH,
            std_mips,
            flow_mips,
        });
    }

    // Priority-based aggregation: one aggregate upsert per arrival,
    // prefetch-warmed per stage (purges can fire mid-span, so arrival
    // order is preserved exactly).
    {
        let mut std_pba = Pba::<_, StdIndex>::new_in(
            DedupQMax::<u64, OrderedF64, StdIndex>::new_in(app_q, 0.25),
            1,
        );
        let mut flow_pba = Pba::new(DedupQMax::<u64, OrderedF64>::new(app_q, 0.25), 1);
        let arrivals: Vec<(u64, f64)> = pairs
            .iter()
            .map(|&(id, v)| (id, 1.0 + (v % 1024) as f64))
            .collect();
        let start = Instant::now();
        for span in arrivals.chunks(BATCH) {
            std_pba.observe_batch(span);
        }
        let std_mips = mpps(reqs, start.elapsed());
        let start = Instant::now();
        for span in arrivals.chunks(BATCH) {
            flow_pba.observe_batch(span);
        }
        let flow_mips = mpps(reqs, start.elapsed());
        assert_eq!(
            std_pba.tracked_keys(),
            flow_pba.tracked_keys(),
            "pba aggregate maps diverged"
        );
        assert_eq!(std_pba.sample().len(), flow_pba.sample().len());
        rows.push(IndexRow {
            workload: "pba".into(),
            batch: BATCH,
            std_mips,
            flow_mips,
        });
    }

    for r in &rows {
        rep.row(&[
            r.workload.clone(),
            r.batch.to_string(),
            fmt(r.std_mips),
            fmt(r.flow_mips),
            fmt(r.flow_mips / r.std_mips),
        ]);
    }

    let lrfu_g1_total = rows
        .iter()
        .find(|r| r.workload == "lrfu-g1" && r.batch == BATCH)
        .map_or(0.0, |r| 1e3 / r.flow_mips);
    let comps = component_estimates(&trace, q, c, lrfu_g1_total);
    println!("# per-request component estimates (ns)");
    println!(
        "flow-probe {:.1}  exact-merge {:.1}  fast-merge {:.1}  lrfu-g1 total {:.1}  \
         selection+bookkeeping residual {:.1}",
        comps.flow_probe,
        comps.exact_merge,
        comps.fast_merge,
        comps.lrfu_g1_total,
        comps.residual(),
    );
    write_lrfu_bench_json(&rows, &comps, reqs, q);
}

impl ComponentNs {
    /// What is left of one `lrfu-g1` request after its single index
    /// probe (the request-path upsert; maintenance folds through
    /// request-time arena hints and probes nothing) and one score
    /// merge: the selection pass, eviction removes, log append, and
    /// buffer bookkeeping.
    fn residual(&self) -> f64 {
        (self.lrfu_g1_total - self.flow_probe - self.fast_merge).max(0.0)
    }
}

/// Standalone micro-loops sizing the components of one LRFU request.
fn component_estimates(trace: &[u64], q: usize, c: f64, lrfu_g1_total: f64) -> ComponentNs {
    // Batched probes against a warm q-sized flow table, keys remapped
    // so every probe hits (the request path's common case).
    let mut table: FlowTable<u64, u64> = FlowTable::new();
    for i in 0..q as u64 {
        table.insert(i, i);
    }
    let keys: Vec<u64> = trace.iter().map(|&k| k % q as u64).collect();
    let mut acc = 0u64;
    let start = Instant::now();
    for span in keys.chunks(BATCH) {
        table.probe_batch(span, |_, v| acc += v.copied().unwrap_or(0));
    }
    let flow_probe = start.elapsed().as_secs_f64() * 1e9 / keys.len() as f64;
    std::hint::black_box(acc);

    // Score merges as a dependent chain (each merge waits on the last,
    // like a key's running score does).
    let merge_ns = |ds: DecayScore| {
        let iters = 2_000_000u64.min(trace.len() as u64 * 4).max(100_000);
        let mut w = ds.access(1);
        let start = Instant::now();
        for t in 2..iters {
            w = ds.bump(w, t);
        }
        let ns = start.elapsed().as_secs_f64() * 1e9 / (iters - 2) as f64;
        std::hint::black_box(w);
        ns
    };
    let exact_merge = merge_ns(DecayScore::new(c));
    let fast_merge = merge_ns(DecayScore::new_fast(c));
    ComponentNs {
        flow_probe,
        exact_merge,
        fast_merge,
        lrfu_g1_total,
    }
}

fn time_inserts<Q: QMax<u64, u64>>(qm: &mut Q, pairs: &[(u64, u64)]) -> f64 {
    let start = Instant::now();
    for &(id, v) in pairs {
        qm.insert(id, v);
    }
    mpps(pairs.len(), start.elapsed())
}

fn time_insert_batches<Q: BatchInsert<u64, u64>>(qm: &mut Q, pairs: &[(u64, u64)]) -> f64 {
    let start = Instant::now();
    for span in pairs.chunks(BATCH) {
        qm.insert_batch(span);
    }
    mpps(pairs.len(), start.elapsed())
}

fn sorted_query_vals<Q: QMax<u64, u64>>(qm: &mut Q) -> Vec<u64> {
    let mut v: Vec<u64> = qm.query().into_iter().map(|(_, v)| v).collect();
    v.sort_unstable();
    v
}

/// Hand-rolled JSON mirror (no serde in the dependency-free build).
fn write_lrfu_bench_json(rows: &[IndexRow], comps: &ComponentNs, stream_len: usize, q: usize) {
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut body = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            body.push_str(",\n");
        }
        body.push_str(&format!(
            concat!(
                "    {{\"workload\": \"{}\", \"batch\": {}, \"std_mips\": {:.3}, ",
                "\"flow_mips\": {:.3}, \"speedup\": {:.3}}}"
            ),
            r.workload,
            r.batch,
            r.std_mips,
            r.flow_mips,
            r.flow_mips / r.std_mips,
        ));
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"lrfu_flow_table\",\n",
            "  \"generated_unix_secs\": {ts},\n",
            "  \"lrfu_q\": {q},\n",
            "  \"stream_len\": {n},\n",
            "  \"batch\": {batch},\n",
            "  \"fast_merge\": true,\n",
            "  \"hashmap_era_baseline\": {{\"source\": \"BENCH_windows.json\", ",
            "\"lrfu_g1_aos_mips\": {base}}},\n",
            "  \"machine_caveats\": \"wall-clock timing on a shared, unpinned machine ",
            "(no CPU isolation, no frequency control, container noise); ",
            "relative flow-vs-std speedups are the signal, absolute MIPS are not ",
            "comparable across machines or runs — use the unchanged indexed-heap row ",
            "as the cross-run anchor when comparing against an earlier recording\",\n",
            "  \"target_note\": \"both throughput levers from the batched-probe PR are ",
            "on for both index variants: requests resolve through the batched upsert ",
            "pipeline and record each key's score-arena slot at probe time, so a ",
            "maintenance pass folds its log with zero additional index probes (one ",
            "probe per request total, down from two) and survivors are never ",
            "reinserted into the log; score merges use the bounded-error fast ",
            "logaddexp (abs err <= 2e-8, proptest-enforced), which cuts the exact ",
            "merge's measured cost (see component_ns) out of the per-request floor; ",
            "the lrfu-g1 batch sweep shows the span-size sensitivity of the upsert ",
            "pipeline, and the flow-vs-std ratio still isolates the index because ",
            "both sides run the same levers\",\n",
            "  \"component_ns\": {{\"flow_probe\": {probe:.1}, \"exact_merge\": ",
            "{exact:.1}, \"fast_merge\": {fast:.1}, \"lrfu_g1_total\": {total:.1}, ",
            "\"selection_and_bookkeeping_residual\": {resid:.1}}},\n",
            "  \"pair_selection_baseline\": {{\"note\": \"same-machine recording taken ",
            "immediately before the maintenance selection was rewritten to rank the ",
            "dense arena score column with a count_gt_eq kernel census (pivot via ",
            "scores-only quickselect + one ascending-slot eviction sweep) instead of ",
            "materializing (score, slot) pairs; compare against component_ns and the ",
            "lrfu-g1 batch-{batch} series row of this file for the after\", ",
            "\"selection_and_bookkeeping_residual_ns\": {pair_resid:.1}, ",
            "\"lrfu_g1_total_ns\": {pair_total:.1}, ",
            "\"lrfu_g1_flow_mips\": {pair_mips:.3}}},\n",
            "  \"series\": [\n{body}\n  ]\n",
            "}}\n"
        ),
        ts = ts,
        q = q,
        n = stream_len,
        batch = BATCH,
        base = HASHMAP_ERA_LRFU_G1_MIPS,
        pair_resid = PAIR_SELECTION_RESIDUAL_NS,
        pair_total = PAIR_SELECTION_LRFU_G1_TOTAL_NS,
        pair_mips = PAIR_SELECTION_LRFU_G1_MIPS,
        probe = comps.flow_probe,
        exact = comps.exact_merge,
        fast = comps.fast_merge,
        total = comps.lrfu_g1_total,
        resid = comps.residual(),
        body = body,
    );
    match std::fs::File::create("BENCH_lrfu.json").and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => eprintln!("[lrfu] wrote BENCH_lrfu.json"),
        Err(e) => eprintln!("[lrfu] could not write BENCH_lrfu.json: {e}"),
    }
}
