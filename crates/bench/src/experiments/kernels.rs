//! Scalar-vs-SIMD comparison of the explicit `qmax_select::kernels`
//! and their end-to-end effect on the SoA amortized hot path.
//!
//! Two sections:
//!
//! * **micro** — each kernel (Ψ-filter admit, three-way partition,
//!   min/max sweep, pivot sampling) timed over a large value lane with
//!   the scalar reference and the runtime-dispatched implementation.
//! * **e2e** — `SoaAmortizedQMax` at q = 10⁴ over a Zipf(1.0) stream,
//!   batched inserts, with the kernel forced scalar vs auto-dispatched;
//!   this is the acceptance gauge (≥ 1.2× at γ = 1 on AVX2 hosts) and
//!   is directly comparable to the PR 2 figures in `BENCH_soa.json`.
//!
//! Series go to `results/kernel_compare.csv`; the same numbers plus the
//! PR 2 reference points are mirrored to `BENCH_kernels.json`.

use crate::scale::Scale;
use crate::{fmt, mpps, Report};
use qmax_core::{BatchInsert, SoaAmortizedQMax};
use qmax_select::Kernel;
use qmax_traces::gen::random_u64_stream;
use qmax_traces::zipf::ZipfSampler;
use std::io::Write;
use std::time::Instant;

const BATCH: usize = 1024;
/// Micro-kernel lane length (large enough to stream from L2/L3, like a
/// full q(1+γ) buffer at q = 10⁴).
const LANE: usize = 262_144;

/// PR 2 baselines from the checked-in `BENCH_soa.json` (zipf, q = 10⁴,
/// stream 2·10⁶, batch 1024), quoted so the JSON is self-contained.
const PR2_SOA_AM_MIPS_G1: f64 = 419.555;
const PR2_SOA_AM_MIPS_G025: f64 = 172.960;
const PR2_AOS_AM_MIPS_G025: f64 = 188.365;

fn zipf_items(n: usize, seed: u64) -> Vec<(u64, u64)> {
    let mut flows = ZipfSampler::new(1_000_000, 1.0, seed);
    random_u64_stream(n, seed ^ 0x5EED)
        .map(|v| (flows.sample() as u64, v))
        .collect()
}

/// Times `f` over several ~100 ms windows and returns the best window's
/// million elements per second — max-of-trials is the standard
/// least-interference estimator on a shared, unpinned machine.
fn time_kernel(lane_len: usize, mut f: impl FnMut() -> u64) -> f64 {
    let reps = (32_000_000 / lane_len).max(1);
    let mut sink = 0u64;
    // Warm-up pass keeps the first-touch page faults out of the timing.
    sink = sink.wrapping_add(f());
    let mut best = 0.0f64;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..reps {
            sink = sink.wrapping_add(f());
        }
        best = best.max(mpps(reps * lane_len, start.elapsed()));
    }
    std::hint::black_box(sink);
    best
}

struct MicroRow {
    name: &'static str,
    scalar_mips: f64,
    simd_mips: f64,
}

struct E2eRow {
    gamma: f64,
    scalar_mips: f64,
    simd_mips: f64,
}

fn micro_rows() -> Vec<MicroRow> {
    let scalar = Kernel::<u64>::scalar();
    let auto = Kernel::<u64>::detect();
    let items = zipf_items(LANE, 21);
    let vals: Vec<u64> = items.iter().map(|&(_, v)| v).collect();
    let ids: Vec<u64> = items.iter().map(|&(i, _)| i).collect();
    // A mid-height pivot: the partition splits about evenly — the
    // regime a compaction actually sees.
    let mut probe = vals.clone();
    let pivot = *qmax_select::nth_smallest(&mut probe, LANE / 2);
    // The Ψ-filter's steady state rejects almost everything (the
    // reservoir only admits future top-q candidates), so the headline
    // admit row uses a p90 threshold; `admit_balanced` keeps the
    // worst-case-for-SIMD 50/50 mix on record.
    let psi = *qmax_select::nth_smallest(&mut probe, LANE * 9 / 10);

    let mut out_v = vec![0u64; LANE];
    let mut out_i = vec![0u64; LANE];

    let mut admit_row = |name: &'static str, t: u64| MicroRow {
        name,
        scalar_mips: time_kernel(LANE, || {
            scalar.admit_pairs(&items, Some(t), &mut out_v, &mut out_i, 0, LANE) as u64
        }),
        simd_mips: time_kernel(LANE, || {
            auto.admit_pairs(&items, Some(t), &mut out_v, &mut out_i, 0, LANE) as u64
        }),
    };
    let admit = admit_row("admit", psi);
    let admit_balanced = admit_row("admit_balanced", pivot);

    let part = MicroRow {
        name: "partition3_desc",
        scalar_mips: time_kernel(LANE, || {
            scalar
                .partition3_desc(&vals, &ids, pivot, &mut out_v, &mut out_i)
                .0 as u64
        }),
        simd_mips: time_kernel(LANE, || {
            auto.partition3_desc(&vals, &ids, pivot, &mut out_v, &mut out_i)
                .0 as u64
        }),
    };

    let minmax = MicroRow {
        name: "min_max",
        scalar_mips: time_kernel(LANE, || {
            scalar.min_max(&vals).map(|(_, mx)| mx).unwrap_or(0)
        }),
        simd_mips: time_kernel(LANE, || auto.min_max(&vals).map(|(_, mx)| mx).unwrap_or(0)),
    };

    let mut scratch = Vec::new();
    let sample = MicroRow {
        name: "sample_pivot",
        scalar_mips: time_kernel(LANE, || {
            scalar.sample_pivot(&vals, LANE / 2, 1, &mut scratch)
        }),
        simd_mips: time_kernel(LANE, || auto.sample_pivot(&vals, LANE / 2, 1, &mut scratch)),
    };

    vec![admit, admit_balanced, part, minmax, sample]
}

fn e2e_rows(scale: &Scale) -> (Vec<E2eRow>, usize, usize) {
    let n = scale.stream(2_000_000);
    let q = 10_000;
    let items = zipf_items(n, 7);
    let mut rows = Vec::new();
    for gamma in [1.0, 0.25] {
        let run = |force_scalar: bool| -> f64 {
            let mut best = 0.0f64;
            for _ in 0..3 {
                let mut qm: SoaAmortizedQMax<u64, u64> = SoaAmortizedQMax::new(q, gamma);
                if force_scalar {
                    qm.set_kernel(Kernel::scalar());
                }
                let start = Instant::now();
                for chunk in items.chunks(BATCH) {
                    qm.insert_batch(chunk);
                }
                best = best.max(mpps(items.len(), start.elapsed()));
            }
            best
        };
        let scalar_mips = run(true);
        let simd_mips = run(false);
        rows.push(E2eRow {
            gamma,
            scalar_mips,
            simd_mips,
        });
    }
    (rows, n, q)
}

/// Compares scalar vs runtime-dispatched kernels (micro per-kernel and
/// end-to-end on the SoA amortized batched path); mirrors the series as
/// `results/kernel_compare.csv` and `BENCH_kernels.json`.
pub fn kernel_compare(scale: &Scale) {
    let kind = format!("{:?}", Kernel::<u64>::detect().kind());
    println!("# scalar vs SIMD kernels (dispatch: {kind})");
    let mut rep = Report::new(
        "kernel_compare",
        &[
            "section",
            "name",
            "gamma",
            "scalar_mips",
            "simd_mips",
            "speedup",
        ],
    );
    let micro = micro_rows();
    for r in &micro {
        rep.row(&[
            "micro".into(),
            r.name.into(),
            "-".into(),
            fmt(r.scalar_mips),
            fmt(r.simd_mips),
            fmt(r.simd_mips / r.scalar_mips),
        ]);
    }
    let (e2e, n, q) = e2e_rows(scale);
    for r in &e2e {
        rep.row(&[
            "e2e".into(),
            "soa_amortized_zipf".into(),
            r.gamma.to_string(),
            fmt(r.scalar_mips),
            fmt(r.simd_mips),
            fmt(r.simd_mips / r.scalar_mips),
        ]);
    }
    write_bench_json(&kind, &micro, &e2e, n, q);
}

/// Hand-rolled JSON mirror (no serde in the dependency-free build).
fn write_bench_json(kind: &str, micro: &[MicroRow], e2e: &[E2eRow], stream_len: usize, q: usize) {
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut mbody = String::new();
    for (i, r) in micro.iter().enumerate() {
        if i > 0 {
            mbody.push_str(",\n");
        }
        mbody.push_str(&format!(
            concat!(
                "    {{\"kernel\": \"{}\", \"scalar_mips\": {:.3}, ",
                "\"simd_mips\": {:.3}, \"speedup\": {:.3}}}"
            ),
            r.name,
            r.scalar_mips,
            r.simd_mips,
            r.simd_mips / r.scalar_mips,
        ));
    }
    let mut ebody = String::new();
    for (i, r) in e2e.iter().enumerate() {
        if i > 0 {
            ebody.push_str(",\n");
        }
        let pr2 = if r.gamma == 1.0 {
            PR2_SOA_AM_MIPS_G1
        } else {
            PR2_SOA_AM_MIPS_G025
        };
        ebody.push_str(&format!(
            concat!(
                "    {{\"gamma\": {}, \"scalar_mips\": {:.3}, \"simd_mips\": {:.3}, ",
                "\"e2e_speedup\": {:.3}, \"pr2_soa_amortized_mips\": {:.3}, ",
                "\"vs_pr2\": {:.3}}}"
            ),
            r.gamma,
            r.scalar_mips,
            r.simd_mips,
            r.simd_mips / r.scalar_mips,
            pr2,
            r.simd_mips / pr2,
        ));
    }
    let admit_speedup = micro
        .iter()
        .find(|r| r.name == "admit")
        .map(|r| r.simd_mips / r.scalar_mips)
        .unwrap_or(0.0);
    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"kernel_compare\",\n",
            "  \"generated_unix_secs\": {ts},\n",
            "  \"dispatch\": \"{kind}\",\n",
            "  \"q\": {q},\n",
            "  \"stream_len\": {n},\n",
            "  \"batch\": {batch},\n",
            "  \"lane\": {lane},\n",
            "  \"admit_kernel_speedup\": {admit:.3},\n",
            "  \"pr2_reference\": {{\"soa_am_mips_g1\": {p1:.3}, ",
            "\"soa_am_mips_g025\": {p2:.3}, \"aos_am_mips_g025\": {p3:.3}}},\n",
            "  \"machine_caveats\": \"wall-clock timing on a shared, unpinned machine ",
            "(no CPU isolation, no frequency control, container noise); ",
            "relative scalar-vs-SIMD speedups are the signal, absolute MIPS are not ",
            "comparable across machines or runs\",\n",
            "  \"micro\": [\n{mbody}\n  ],\n",
            "  \"e2e\": [\n{ebody}\n  ]\n",
            "}}\n"
        ),
        ts = ts,
        kind = kind,
        q = q,
        n = stream_len,
        batch = BATCH,
        lane = LANE,
        admit = admit_speedup,
        p1 = PR2_SOA_AM_MIPS_G1,
        p2 = PR2_SOA_AM_MIPS_G025,
        p3 = PR2_AOS_AM_MIPS_G025,
        mbody = mbody,
        ebody = ebody,
    );
    match std::fs::File::create("BENCH_kernels.json").and_then(|mut f| f.write_all(json.as_bytes()))
    {
        Ok(()) => eprintln!("[kernels] wrote BENCH_kernels.json"),
        Err(e) => eprintln!("[kernels] could not write BENCH_kernels.json: {e}"),
    }
}
