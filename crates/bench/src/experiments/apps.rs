//! Application throughput: Figure 8 (Priority Sampling, network-wide
//! heavy hitters, Priority-Based Aggregation on three traces) and the
//! Section-3 profiling motivation.

use crate::scale::Scale;
use crate::{fmt, mpps, Report};
use qmax_apps::network_wide::{Nmp, SampledPacket};
use qmax_apps::{Pba, PrioritySampling, WeightedKey};
use qmax_core::{
    AmortizedQMax, DeamortizedQMax, DedupQMax, HeapQMax, IndexedHeapQMax, KeyedSkipListQMax,
    Minimal, OrderedF64, QMax, SkipListQMax,
};
use qmax_traces::gen::{caida18_like, caida_like, univ1_like};
use qmax_traces::{hash, Packet};
use std::time::Instant;

/// The three evaluation traces of Figure 8.
fn traces(scale: &Scale) -> Vec<(&'static str, Vec<Packet>)> {
    let n = scale.stream(4_000_000);
    vec![
        ("caida16", caida_like(n, 16).collect()),
        ("caida18", caida18_like(n, 18).collect()),
        ("univ1", univ1_like(n, 21).collect()),
    ]
}

fn ps_run(backend: Box<dyn QMax<WeightedKey, OrderedF64>>, trace: &[Packet]) -> f64 {
    let mut ps = PrioritySampling::new(backend, 1);
    let start = Instant::now();
    for p in trace {
        ps.observe(p.packet_id(), p.len as f64);
    }
    mpps(trace.len(), start.elapsed())
}

fn nwhh_run(backend: Box<dyn QMax<SampledPacket, Minimal<u64>>>, trace: &[Packet]) -> f64 {
    let mut nmp = Nmp::new(backend);
    let start = Instant::now();
    for p in trace {
        nmp.observe(p);
    }
    mpps(trace.len(), start.elapsed())
}

fn pba_run(backend: Box<dyn QMax<u64, OrderedF64>>, trace: &[Packet]) -> f64 {
    let mut pba = Pba::new(backend, 1);
    let start = Instant::now();
    for p in trace {
        pba.observe(p.flow().as_u64(), p.len as f64);
    }
    mpps(trace.len(), start.elapsed())
}

/// Figure 8 (a–f): throughput of Priority Sampling, network-wide heavy
/// hitters, and Priority-Based Aggregation on the three traces, with
/// q ∈ {10⁴, 10⁶} and Heap / SkipList / q-MAX (γ = 0.05 and 0.25)
/// reservoirs.
pub fn fig8(scale: &Scale) {
    println!("# Figure 8: application throughput (PS, NWHH, PBA) on three traces");
    let traces = traces(scale);
    let mut rep = Report::new("fig8", &["app", "trace", "q", "structure", "mpps"]);
    for &q in &[10_000usize, 1_000_000] {
        for (tname, trace) in &traces {
            // (a, b) Priority Sampling.
            for (label, backend) in [
                (
                    "heap",
                    Box::new(HeapQMax::new(q)) as Box<dyn QMax<WeightedKey, OrderedF64>>,
                ),
                ("skiplist", Box::new(SkipListQMax::new(q))),
                ("qmax(g=0.05)", Box::new(AmortizedQMax::new(q, 0.05))),
                ("qmax(g=0.25)", Box::new(AmortizedQMax::new(q, 0.25))),
                ("qmax-wc(g=0.25)", Box::new(DeamortizedQMax::new(q, 0.25))),
            ] {
                let m = ps_run(backend, trace);
                rep.row(&[
                    "priority-sampling".into(),
                    tname.to_string(),
                    q.to_string(),
                    label.into(),
                    fmt(m),
                ]);
            }
            // (c, d) Network-wide heavy hitters (one NMP's update path).
            for (label, backend) in [
                (
                    "heap",
                    Box::new(HeapQMax::new(q)) as Box<dyn QMax<SampledPacket, Minimal<u64>>>,
                ),
                ("skiplist", Box::new(SkipListQMax::new(q))),
                ("qmax(g=0.05)", Box::new(AmortizedQMax::new(q, 0.05))),
                ("qmax(g=0.25)", Box::new(AmortizedQMax::new(q, 0.25))),
            ] {
                let m = nwhh_run(backend, trace);
                rep.row(&[
                    "network-wide-hh".into(),
                    tname.to_string(),
                    q.to_string(),
                    label.into(),
                    fmt(m),
                ]);
            }
            // (e, f) Priority-Based Aggregation (duplicate-aware backends).
            for (label, backend) in [
                (
                    "indexed-heap",
                    Box::new(IndexedHeapQMax::new(q)) as Box<dyn QMax<u64, OrderedF64>>,
                ),
                ("keyed-skiplist", Box::new(KeyedSkipListQMax::new(q))),
                ("qmax-dedup(g=0.05)", Box::new(DedupQMax::new(q, 0.05))),
                ("qmax-dedup(g=0.25)", Box::new(DedupQMax::new(q, 0.25))),
            ] {
                let m = pba_run(backend, trace);
                rep.row(&[
                    "pba".into(),
                    tname.to_string(),
                    q.to_string(),
                    label.into(),
                    fmt(m),
                ]);
            }
        }
    }
}

/// Section 3: how much of an application's time goes into the
/// reservoir structure — measured by running Priority Sampling once
/// normally and once with the reservoir update compiled out (hash +
/// priority computation only).
pub fn sec3(scale: &Scale) {
    println!("# Section 3: fraction of time spent updating the reservoir");
    let n = scale.stream(6_000_000);
    let trace: Vec<Packet> = caida_like(n, 33).collect();
    let mut rep = Report::new("sec3", &["q", "structure", "pct_in_structure"]);
    // Baseline: everything except the reservoir update.
    let start = Instant::now();
    let mut acc = 0u64;
    for p in &trace {
        let key = p.packet_id();
        let u = hash::to_unit_open(key, 1);
        acc ^= ((p.len as f64 / u).to_bits()) ^ key;
    }
    std::hint::black_box(acc);
    let base = start.elapsed().as_secs_f64();
    for &q in &scale.qs() {
        for (label, backend) in [
            (
                "heap",
                Box::new(HeapQMax::new(q)) as Box<dyn QMax<WeightedKey, OrderedF64>>,
            ),
            ("skiplist", Box::new(SkipListQMax::new(q))),
            ("qmax(g=0.25)", Box::new(AmortizedQMax::new(q, 0.25))),
        ] {
            let mut ps = PrioritySampling::new(backend, 1);
            let start = Instant::now();
            for p in &trace {
                ps.observe(p.packet_id(), p.len as f64);
            }
            let total = start.elapsed().as_secs_f64();
            let share = ((total - base) / total * 100.0).max(0.0);
            rep.row(&[q.to_string(), label.into(), format!("{share:.1}%")]);
        }
    }
}
