//! Micro-benchmarks of the core structure: Figures 4–7 and Table 1.

use crate::scale::Scale;
use crate::{fmt, time_stream, Backend, Report};
use qmax_core::{AmortizedQMax, OrderedF64};
use qmax_core::{ExpDecayQMax, HeapQMax, QMax, SkipListQMax};
use qmax_traces::gen::random_u64_stream;
use std::time::Instant;

/// Figure 4: q-MAX throughput as a function of γ, per `q`, with the
/// Heap and SkipList throughput as reference rows (random stream).
pub fn fig4(scale: &Scale) {
    println!("# Figure 4: q-MAX throughput vs gamma (random stream)");
    let stream: Vec<u64> = random_u64_stream(scale.stream(15_000_000), 1).collect();
    let mut rep = Report::new("fig4", &["q", "structure", "mpps"]);
    for &q in &scale.qs() {
        for gamma in scale.gammas() {
            let b = Backend::QMax { gamma };
            let mpps = time_stream(b.build_u64(q).as_mut(), &stream);
            rep.row(&[q.to_string(), b.label(), fmt(mpps)]);
        }
        for b in [Backend::Heap, Backend::SkipList] {
            let mpps = time_stream(b.build_u64(q).as_mut(), &stream);
            rep.row(&[q.to_string(), b.label(), fmt(mpps)]);
        }
    }
}

/// Table 1: minimum and maximum speedup of q-MAX over Heap and
/// SkipList for each γ (across the `q` sweep).
pub fn table1(scale: &Scale) {
    println!("# Table 1: q-MAX speedup ranges vs Heap and SkipList");
    let stream: Vec<u64> = random_u64_stream(scale.stream(15_000_000), 1).collect();
    let qs = scale.qs();
    let mut heap_mpps = Vec::new();
    let mut skip_mpps = Vec::new();
    for &q in &qs {
        heap_mpps.push(time_stream(Backend::Heap.build_u64(q).as_mut(), &stream));
        skip_mpps.push(time_stream(
            Backend::SkipList.build_u64(q).as_mut(),
            &stream,
        ));
    }
    let mut rep = Report::new(
        "table1",
        &[
            "gamma",
            "min_vs_heap",
            "max_vs_heap",
            "min_vs_skip",
            "max_vs_skip",
        ],
    );
    for gamma in scale.gammas() {
        let mut vs_heap: Vec<f64> = Vec::new();
        let mut vs_skip: Vec<f64> = Vec::new();
        for (i, &q) in qs.iter().enumerate() {
            let m = time_stream(Backend::QMax { gamma }.build_u64(q).as_mut(), &stream);
            vs_heap.push(m / heap_mpps[i]);
            vs_skip.push(m / skip_mpps[i]);
        }
        let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
        let max = |v: &[f64]| v.iter().copied().fold(0.0f64, f64::max);
        rep.row(&[
            format!("{gamma}"),
            format!("x{:.2}", min(&vs_heap)),
            format!("x{:.2}", max(&vs_heap)),
            format!("x{:.2}", min(&vs_skip)),
            format!("x{:.2}", max(&vs_skip)),
        ]);
    }
}

/// Figure 5: throughput as a function of `q` for q-MAX (several γ),
/// Heap, and SkipList.
pub fn fig5(scale: &Scale) {
    println!("# Figure 5: throughput vs q (random stream)");
    let stream: Vec<u64> = random_u64_stream(scale.stream(15_000_000), 2).collect();
    let mut rep = Report::new("fig5", &["q", "structure", "mpps"]);
    let backends = [
        Backend::QMax { gamma: 0.05 },
        Backend::QMax { gamma: 0.25 },
        Backend::QMax { gamma: 1.0 },
        Backend::QMaxDeamortized { gamma: 0.25 },
        Backend::Heap,
        Backend::SkipList,
    ];
    for &q in &scale.qs() {
        for b in backends {
            let mpps = time_stream(b.build_u64(q).as_mut(), &stream);
            rep.row(&[q.to_string(), b.label(), fmt(mpps)]);
        }
    }
}

/// Figure 6: throughput measured per stream segment — all structures
/// accelerate as the admission threshold rises; q-MAX stays fastest.
pub fn fig6(scale: &Scale) {
    println!("# Figure 6: throughput vs position in the trace");
    let n = scale.stream(15_000_000);
    let stream: Vec<u64> = random_u64_stream(n, 3).collect();
    let segments = 10;
    let seg = n / segments;
    let mut rep = Report::new("fig6", &["q", "structure", "segment", "mpps"]);
    for &q in &[10_000usize, 1_000_000] {
        for b in [
            Backend::QMax { gamma: 0.1 },
            Backend::Heap,
            Backend::SkipList,
        ] {
            let mut qm = b.build_u64(q);
            for s in 0..segments {
                let chunk = &stream[s * seg..(s + 1) * seg];
                let start = Instant::now();
                for (i, &v) in chunk.iter().enumerate() {
                    qm.insert((s * seg + i) as u32, v);
                }
                let mpps = crate::mpps(chunk.len(), start.elapsed());
                rep.row(&[q.to_string(), b.label(), s.to_string(), fmt(mpps)]);
            }
        }
    }
}

/// Figure 7: exponential-decay q-MAX throughput vs γ (c = 0.75), with
/// exponential-decay Heap / SkipList references.
pub fn fig7(scale: &Scale) {
    println!("# Figure 7: exponential-decay q-MAX throughput vs gamma (c=0.75)");
    let n = scale.stream(8_000_000);
    let vals: Vec<f64> = random_u64_stream(n, 4)
        .map(|v| (v % 100_000) as f64 + 1.0)
        .collect();
    let c = 0.75;
    let mut rep = Report::new("fig7", &["q", "structure", "mpps"]);
    for &q in &scale.qs() {
        for gamma in scale.gammas() {
            let mut ed = ExpDecayQMax::new(AmortizedQMax::new(q, gamma), c);
            let start = Instant::now();
            for (i, &v) in vals.iter().enumerate() {
                ed.insert(i as u32, v);
            }
            let mpps = crate::mpps(n, start.elapsed());
            rep.row(&[q.to_string(), format!("ed-qmax(g={gamma})"), fmt(mpps)]);
        }
        // Baselines under the same log-domain transform.
        let mut edh = ExpDecayQMax::new(HeapQMax::new(q), c);
        let start = Instant::now();
        for (i, &v) in vals.iter().enumerate() {
            edh.insert(i as u32, v);
        }
        rep.row(&[
            q.to_string(),
            "ed-heap".into(),
            fmt(crate::mpps(n, start.elapsed())),
        ]);
        let mut eds: ExpDecayQMax<SkipListQMax<u32, OrderedF64>> =
            ExpDecayQMax::new(SkipListQMax::new(q), c);
        let start = Instant::now();
        for (i, &v) in vals.iter().enumerate() {
            eds.insert(i as u32, v);
        }
        rep.row(&[
            q.to_string(),
            "ed-skiplist".into(),
            fmt(crate::mpps(n, start.elapsed())),
        ]);
    }
    // Keep the compiler honest about the query path too.
    let mut ed = ExpDecayQMax::new(AmortizedQMax::new(16, 0.5), c);
    ed.insert(0u32, 1.0);
    let _: Vec<(u32, OrderedF64)> = ed.query();
}
