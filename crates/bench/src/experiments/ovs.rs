//! Open-vSwitch-integration experiments on the simulated datapath:
//! Figures 12–17.

use crate::scale::Scale;
use crate::{fmt, Report};
use qmax_apps::network_wide::{Nmp, SampledPacket};
use qmax_apps::{PrioritySampling, WeightedKey};
use qmax_core::{AmortizedQMax, HeapQMax, Minimal, OrderedF64, QMax, SkipListQMax};
use qmax_ovs_sim::{evaluate_throughput, LineRate, MeasurementHook, NullHook, Switch};
use qmax_traces::gen::{caida_like, univ1_like};
use qmax_traces::{FlowKey, Packet};

/// A hook maintaining a raw top-q reservoir of packets keyed by hash —
/// the structure whose cost Figures 12–13 isolate.
struct ReservoirHook {
    qm: Box<dyn QMax<u64, Minimal<u64>>>,
}

impl MeasurementHook for ReservoirHook {
    #[inline]
    fn on_packet(&mut self, _flow: FlowKey, packet_id: u64, _len: u16) {
        self.qm.insert(packet_id, Minimal(packet_id));
    }
}

/// Priority sampling as a switch hook (Figures 14a–b, 17a–b).
struct PsHook {
    ps: PrioritySampling<Box<dyn QMax<WeightedKey, OrderedF64>>>,
}

impl MeasurementHook for PsHook {
    #[inline]
    fn on_packet(&mut self, _flow: FlowKey, packet_id: u64, len: u16) {
        self.ps.observe(packet_id, len as f64);
    }
}

/// Network-wide heavy hitters (one NMP) as a switch hook
/// (Figures 14c–d, 17c–d).
struct NwhhHook {
    nmp: Nmp<Box<dyn QMax<SampledPacket, Minimal<u64>>>>,
}

impl MeasurementHook for NwhhHook {
    #[inline]
    fn on_packet(&mut self, flow: FlowKey, packet_id: u64, _len: u16) {
        self.nmp.observe_raw(flow, packet_id);
    }
}

fn qs_big(scale: &Scale) -> Vec<usize> {
    if scale.full {
        vec![10_000, 100_000, 1_000_000, 10_000_000]
    } else {
        vec![10_000, 100_000, 1_000_000]
    }
}

fn run_reservoir(
    rep: &mut Report,
    rate: LineRate,
    packets: &[Packet],
    q: usize,
    label: &str,
    qm: Box<dyn QMax<u64, Minimal<u64>>>,
) {
    let mut sw = Switch::new(8);
    let mut hook = ReservoirHook { qm };
    let r = evaluate_throughput(&mut sw, &mut hook, packets, rate);
    rep.row(&[
        q.to_string(),
        label.into(),
        fmt(r.achieved_gbps),
        fmt(r.cost_ns_per_packet),
    ]);
}

/// Figure 12: simulated-OVS throughput at 10G with minimal packets,
/// as `q` grows: vanilla vs Heap vs SkipList vs q-MAX.
pub fn fig12(scale: &Scale) {
    println!("# Figure 12: simulated OVS throughput at 10G/64B vs q");
    let packets: Vec<Packet> = caida_like(scale.stream(3_000_000), 51).collect();
    let rate = LineRate {
        gbps: 10.0,
        frame_bytes: 64,
    };
    let mut rep = Report::new("fig12", &["q", "structure", "gbps", "ns_per_pkt"]);
    let mut sw = Switch::new(8);
    let r = evaluate_throughput(&mut sw, &mut NullHook, &packets, rate);
    rep.row(&[
        "-".into(),
        "vanilla".into(),
        fmt(r.achieved_gbps),
        fmt(r.cost_ns_per_packet),
    ]);
    for &q in &qs_big(scale) {
        run_reservoir(
            &mut rep,
            rate,
            &packets,
            q,
            "heap",
            Box::new(HeapQMax::new(q)),
        );
        run_reservoir(
            &mut rep,
            rate,
            &packets,
            q,
            "skiplist",
            Box::new(SkipListQMax::new(q)),
        );
        run_reservoir(
            &mut rep,
            rate,
            &packets,
            q,
            "qmax(g=0.25)",
            Box::new(AmortizedQMax::new(q, 0.25)),
        );
    }
}

/// Figure 13: simulated-OVS throughput at 10G for q-MAX only, across γ.
pub fn fig13(scale: &Scale) {
    println!("# Figure 13: simulated OVS throughput at 10G/64B, q-MAX vs gamma");
    let packets: Vec<Packet> = caida_like(scale.stream(3_000_000), 52).collect();
    let rate = LineRate {
        gbps: 10.0,
        frame_bytes: 64,
    };
    let mut rep = Report::new("fig13", &["q", "gamma", "gbps", "ns_per_pkt"]);
    for &q in &qs_big(scale) {
        for gamma in [0.05, 0.1, 0.25, 0.5, 1.0] {
            let mut sw = Switch::new(8);
            let mut hook = ReservoirHook {
                qm: Box::new(AmortizedQMax::new(q, gamma)),
            };
            let r = evaluate_throughput(&mut sw, &mut hook, &packets, rate);
            rep.row(&[
                q.to_string(),
                format!("{gamma}"),
                fmt(r.achieved_gbps),
                fmt(r.cost_ns_per_packet),
            ]);
        }
    }
}

fn fig14_17(scale: &Scale, id: &str, rate: LineRate, packets: &[Packet]) {
    let mut rep = Report::new(id, &["app", "q", "structure", "gbps", "ns_per_pkt"]);
    let qs: Vec<usize> = if scale.full {
        vec![1_000_000, 10_000_000]
    } else {
        vec![100_000, 1_000_000]
    };
    let mut sw = Switch::new(8);
    let r = evaluate_throughput(&mut sw, &mut NullHook, packets, rate);
    rep.row(&[
        "-".into(),
        "-".into(),
        "vanilla".into(),
        fmt(r.achieved_gbps),
        fmt(r.cost_ns_per_packet),
    ]);
    for &q in &qs {
        for (label, backend) in [
            (
                "heap",
                Box::new(HeapQMax::new(q)) as Box<dyn QMax<WeightedKey, OrderedF64>>,
            ),
            ("skiplist", Box::new(SkipListQMax::new(q))),
            ("qmax(g=0.25)", Box::new(AmortizedQMax::new(q, 0.25))),
        ] {
            let mut sw = Switch::new(8);
            let mut hook = PsHook {
                ps: PrioritySampling::new(backend, 1),
            };
            let r = evaluate_throughput(&mut sw, &mut hook, packets, rate);
            rep.row(&[
                "priority-sampling".into(),
                q.to_string(),
                label.into(),
                fmt(r.achieved_gbps),
                fmt(r.cost_ns_per_packet),
            ]);
        }
        for (label, backend) in [
            (
                "heap",
                Box::new(HeapQMax::new(q)) as Box<dyn QMax<SampledPacket, Minimal<u64>>>,
            ),
            ("skiplist", Box::new(SkipListQMax::new(q))),
            ("qmax(g=0.25)", Box::new(AmortizedQMax::new(q, 0.25))),
        ] {
            let mut sw = Switch::new(8);
            let mut hook = NwhhHook {
                nmp: Nmp::new(backend),
            };
            let r = evaluate_throughput(&mut sw, &mut hook, packets, rate);
            rep.row(&[
                "network-wide-hh".into(),
                q.to_string(),
                label.into(),
                fmt(r.achieved_gbps),
                fmt(r.cost_ns_per_packet),
            ]);
        }
    }
}

/// Figure 14: applications inside the simulated OVS at 10G with
/// minimal packets: Priority Sampling and network-wide heavy hitters.
pub fn fig14(scale: &Scale) {
    println!("# Figure 14: OVS application throughput at 10G/64B");
    let packets: Vec<Packet> = caida_like(scale.stream(3_000_000), 53).collect();
    fig14_17(
        scale,
        "fig14",
        LineRate {
            gbps: 10.0,
            frame_bytes: 64,
        },
        &packets,
    );
}

/// Figure 15: 40G with real (UNIV1-like) packet sizes, q-MAX vs γ.
pub fn fig15(scale: &Scale) {
    println!("# Figure 15: simulated OVS at 40G with real packet sizes, q-MAX vs gamma");
    let packets: Vec<Packet> = univ1_like(scale.stream(3_000_000), 54).collect();
    let mean = mean_frame(&packets);
    let rate = LineRate {
        gbps: 40.0,
        frame_bytes: mean,
    };
    println!(
        "(mean frame size {mean}B -> {:.2} Mpps offered)",
        rate.offered_pps() / 1e6
    );
    let mut rep = Report::new("fig15", &["q", "gamma", "gbps", "ns_per_pkt"]);
    for &q in &qs_big(scale) {
        for gamma in [0.05, 0.25, 1.0] {
            let mut sw = Switch::new(8);
            let mut hook = ReservoirHook {
                qm: Box::new(AmortizedQMax::new(q, gamma)),
            };
            let r = evaluate_throughput(&mut sw, &mut hook, &packets, rate);
            rep.row(&[
                q.to_string(),
                format!("{gamma}"),
                fmt(r.achieved_gbps),
                fmt(r.cost_ns_per_packet),
            ]);
        }
    }
}

/// Figure 16: 40G with real packet sizes across all structures.
pub fn fig16(scale: &Scale) {
    println!("# Figure 16: simulated OVS at 40G with real packet sizes vs q");
    let packets: Vec<Packet> = univ1_like(scale.stream(3_000_000), 55).collect();
    let rate = LineRate {
        gbps: 40.0,
        frame_bytes: mean_frame(&packets),
    };
    let mut rep = Report::new("fig16", &["q", "structure", "gbps", "ns_per_pkt"]);
    let mut sw = Switch::new(8);
    let r = evaluate_throughput(&mut sw, &mut NullHook, &packets, rate);
    rep.row(&[
        "-".into(),
        "vanilla".into(),
        fmt(r.achieved_gbps),
        fmt(r.cost_ns_per_packet),
    ]);
    for &q in &qs_big(scale) {
        run_reservoir(
            &mut rep,
            rate,
            &packets,
            q,
            "heap",
            Box::new(HeapQMax::new(q)),
        );
        run_reservoir(
            &mut rep,
            rate,
            &packets,
            q,
            "skiplist",
            Box::new(SkipListQMax::new(q)),
        );
        run_reservoir(
            &mut rep,
            rate,
            &packets,
            q,
            "qmax(g=1)",
            Box::new(AmortizedQMax::new(q, 1.0)),
        );
    }
}

/// Figure 17: 40G application throughput (Priority Sampling and
/// network-wide heavy hitters).
pub fn fig17(scale: &Scale) {
    println!("# Figure 17: OVS application throughput at 40G, real packet sizes");
    let packets: Vec<Packet> = univ1_like(scale.stream(3_000_000), 56).collect();
    let rate = LineRate {
        gbps: 40.0,
        frame_bytes: mean_frame(&packets),
    };
    fig14_17(scale, "fig17", rate, &packets);
}

fn mean_frame(packets: &[Packet]) -> u32 {
    (packets.iter().map(|p| p.len as u64).sum::<u64>() / packets.len() as u64) as u32
}

/// PMD scaling: the paper attaches one measurement block per OVS PMD
/// thread; this sweep shows the simulated pool's achievable throughput
/// as PMD count grows, with a q-MAX reservoir hook per PMD (RSS keeps
/// flows PMD-local, so per-PMD reservoirs merge like NMP reports).
pub fn pmd_scaling(scale: &Scale) {
    use qmax_ovs_sim::PmdPool;
    println!("# PMD scaling: pool throughput vs PMD count (q-MAX hook per PMD)");
    let packets: Vec<Packet> = caida_like(scale.stream(2_000_000), 57).collect();
    let rate = LineRate {
        gbps: 40.0,
        frame_bytes: 64,
    };
    let q = 1_000_000;
    let mut rep = Report::new("pmd_scaling", &["pmds", "gbps", "worst_ns_per_pkt"]);
    for n in [1usize, 2, 4, 8] {
        let mut pool = PmdPool::new(n, || ReservoirHook {
            qm: Box::new(AmortizedQMax::new(q / n, 0.25)),
        });
        let r = pool.evaluate_throughput(&packets, rate);
        rep.row(&[
            n.to_string(),
            fmt(r.achieved_gbps),
            fmt(r.cost_ns_per_packet),
        ]);
    }
}
