//! Shared harness utilities for regenerating the paper's tables and
//! figures.
//!
//! The `figures` binary (`cargo run -p qmax-bench --release --bin
//! figures -- <id>`) uses these helpers to time streams through the
//! competing reservoir structures and print the series each figure
//! plots. Criterion micro-benchmarks live under `benches/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod scale;

use qmax_core::{
    AmortizedQMax, DeamortizedQMax, HeapQMax, QMax, SkipListQMax, SoaAmortizedQMax,
    SoaDeamortizedQMax, SortedVecQMax,
};
use std::io::Write;
use std::time::Instant;

/// The reservoir structures compared throughout the evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Backend {
    /// Amortized q-MAX (the paper's evaluated variant) with slack γ.
    QMax {
        /// Space-slack parameter γ.
        gamma: f64,
    },
    /// De-amortized q-MAX (worst-case constant time) with slack γ.
    QMaxDeamortized {
        /// Space-slack parameter γ.
        gamma: f64,
    },
    /// Structure-of-arrays amortized q-MAX (split lanes, branchless
    /// batch admission) with slack γ.
    QMaxSoa {
        /// Space-slack parameter γ.
        gamma: f64,
    },
    /// Structure-of-arrays de-amortized q-MAX with slack γ.
    QMaxSoaDeamortized {
        /// Space-slack parameter γ.
        gamma: f64,
    },
    /// Binary min-heap baseline.
    Heap,
    /// Skip-list baseline.
    SkipList,
    /// Sorted-array baseline.
    SortedVec,
}

impl Backend {
    /// Short label used in output rows.
    pub fn label(&self) -> String {
        match self {
            Backend::QMax { gamma } => format!("qmax(g={gamma})"),
            Backend::QMaxDeamortized { gamma } => format!("qmax-wc(g={gamma})"),
            Backend::QMaxSoa { gamma } => format!("qmax-soa(g={gamma})"),
            Backend::QMaxSoaDeamortized { gamma } => format!("qmax-soa-wc(g={gamma})"),
            Backend::Heap => "heap".into(),
            Backend::SkipList => "skiplist".into(),
            Backend::SortedVec => "sortedvec".into(),
        }
    }

    /// Builds the backend as a boxed [`QMax`] over `(u32, u64)` items.
    pub fn build_u64(&self, q: usize) -> Box<dyn QMax<u32, u64>> {
        match *self {
            Backend::QMax { gamma } => Box::new(AmortizedQMax::new(q, gamma)),
            Backend::QMaxDeamortized { gamma } => Box::new(DeamortizedQMax::new(q, gamma)),
            Backend::QMaxSoa { gamma } => Box::new(SoaAmortizedQMax::new(q, gamma)),
            Backend::QMaxSoaDeamortized { gamma } => Box::new(SoaDeamortizedQMax::new(q, gamma)),
            Backend::Heap => Box::new(HeapQMax::new(q)),
            Backend::SkipList => Box::new(SkipListQMax::new(q)),
            Backend::SortedVec => Box::new(SortedVecQMax::new(q)),
        }
    }
}

/// Feeds `stream` into `qm` and returns the throughput in millions of
/// updates per second.
pub fn time_stream(qm: &mut dyn QMax<u32, u64>, stream: &[u64]) -> f64 {
    let start = Instant::now();
    for (i, &v) in stream.iter().enumerate() {
        qm.insert(i as u32, v);
    }
    mpps(stream.len(), start.elapsed())
}

/// Converts an item count and duration to millions of items per second.
pub fn mpps(items: usize, elapsed: std::time::Duration) -> f64 {
    items as f64 / elapsed.as_secs_f64() / 1e6
}

/// A figure/table emitter: prints aligned rows to stdout and mirrors
/// them as CSV under `results/<id>.csv`.
pub struct Report {
    csv: Option<std::fs::File>,
    columns: Vec<String>,
}

impl Report {
    /// Opens a report for experiment `id` with the given column names.
    /// CSVs go under `results/` in the working directory, or under
    /// `$QMAX_RESULTS_DIR` when set.
    pub fn new(id: &str, columns: &[&str]) -> Self {
        let dir = std::env::var("QMAX_RESULTS_DIR").unwrap_or_else(|_| "results".into());
        let csv = std::fs::create_dir_all(&dir)
            .and_then(|()| std::fs::File::create(format!("{dir}/{id}.csv")))
            .ok();
        let mut r = Report {
            csv,
            columns: columns.iter().map(|s| s.to_string()).collect(),
        };
        let header: Vec<String> = r.columns.clone();
        r.emit_row(&header);
        r
    }

    /// Emits one row (must match the column count).
    pub fn row(&mut self, values: &[String]) {
        assert_eq!(values.len(), self.columns.len(), "column mismatch");
        self.emit_row(values);
    }

    fn emit_row(&mut self, values: &[String]) {
        let line: Vec<String> = values.iter().map(|v| format!("{v:>14}")).collect();
        println!("{}", line.join(" "));
        if let Some(f) = &mut self.csv {
            let _ = writeln!(f, "{}", values.join(","));
        }
    }
}

/// Formats a float with three significant decimals for report rows.
pub fn fmt(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backends_build_and_agree() {
        let stream: Vec<u64> = (0..5000u64)
            .map(|x| x.wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        let mut results: Vec<Vec<u64>> = Vec::new();
        for b in [
            Backend::QMax { gamma: 0.5 },
            Backend::QMaxDeamortized { gamma: 0.5 },
            Backend::QMaxSoa { gamma: 0.5 },
            Backend::QMaxSoaDeamortized { gamma: 0.5 },
            Backend::Heap,
            Backend::SkipList,
            Backend::SortedVec,
        ] {
            let mut qm = b.build_u64(64);
            let t = time_stream(qm.as_mut(), &stream);
            assert!(t > 0.0);
            let mut vals: Vec<u64> = qm.query().into_iter().map(|(_, v)| v).collect();
            vals.sort_unstable();
            results.push(vals);
        }
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
    }

    #[test]
    fn fmt_is_compact() {
        assert_eq!(fmt(123.456), "123.5");
        assert_eq!(fmt(1.23456), "1.235");
    }

    #[test]
    fn scale_defaults_and_full_mode() {
        use crate::scale::Scale;
        let s = Scale::default();
        assert_eq!(s.stream(1000), 1000);
        assert!(!s.qs().contains(&10_000_000));
        let full = Scale {
            factor: 2.0,
            full: true,
        };
        assert_eq!(full.stream(1000), 2000);
        assert!(full.qs().contains(&10_000_000));
        // Tiny factors are floored so experiments never degenerate.
        let tiny = Scale {
            factor: 1e-9,
            full: false,
        };
        assert_eq!(tiny.stream(10_000_000), 1000);
    }

    #[test]
    fn report_writes_csv() {
        let dir = std::env::temp_dir().join("qmax_report_test");
        let _ = std::fs::create_dir_all(&dir);
        std::env::set_var("QMAX_RESULTS_DIR", &dir);
        {
            let mut r = Report::new("unit_test", &["a", "b"]);
            r.row(&["1".into(), "2".into()]);
        }
        std::env::remove_var("QMAX_RESULTS_DIR");
        let content = std::fs::read_to_string(dir.join("unit_test.csv")).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "column mismatch")]
    fn report_row_width_is_checked() {
        let mut r = Report::new("unit_test_width", &["a", "b"]);
        r.row(&["only-one".into()]);
    }
}
