//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p qmax-bench --release --bin figures -- <experiment> [--scale F] [--full]
//!
//! experiments:
//!   fig4 table1 fig5 fig6 fig7 fig8 fig9 table2 fig10 fig11
//!   fig12 fig13 fig14 fig15 fig16 fig17 sec3
//!   pmd-scaling sharded-scaling soa kernels windows-backend lrfu ingest
//!   ablate-deamortize ablate-select ablate-gamma ablate-window
//!   all        (everything above, in order)
//!
//! options:
//!   --scale F  multiply stream lengths by F (default 1.0)
//!   --full     use the paper's full configurations (q up to 10^7)
//! ```
//!
//! Each experiment prints its series and mirrors them under
//! `results/<id>.csv`.

use qmax_bench::experiments::{
    ablate, apps, ingest, kernels, lrfu, micro, ovs, sharded, soa, windows,
};
use qmax_bench::scale::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::default();
    let mut experiments: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().expect("--scale needs a value");
                scale.factor = v.parse().expect("--scale needs a number");
            }
            "--full" => scale.full = true,
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.is_empty() {
        eprintln!("usage: figures <experiment|all> [--scale F] [--full]");
        eprintln!("experiments: fig4 table1 fig5 fig6 fig7 fig8 fig9 table2 fig10 fig11");
        eprintln!("             fig12 fig13 fig14 fig15 fig16 fig17 sec3");
        eprintln!(
            "             pmd-scaling sharded-scaling soa kernels windows-backend lrfu ingest"
        );
        eprintln!("             ablate-deamortize ablate-select ablate-gamma ablate-window");
        std::process::exit(2);
    }
    let all = [
        "fig4",
        "table1",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "table2",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "fig17",
        "sec3",
        "pmd-scaling",
        "sharded-scaling",
        "soa",
        "kernels",
        "windows-backend",
        "lrfu",
        "ingest",
        "ablate-deamortize",
        "ablate-select",
        "ablate-gamma",
        "ablate-tail",
        "ablate-window",
    ];
    let list: Vec<&str> = if experiments.iter().any(|e| e == "all") {
        all.to_vec()
    } else {
        experiments.iter().map(|s| s.as_str()).collect()
    };
    for id in list {
        let start = std::time::Instant::now();
        match id {
            "fig4" => micro::fig4(&scale),
            "table1" => micro::table1(&scale),
            "fig5" => micro::fig5(&scale),
            "fig6" => micro::fig6(&scale),
            "fig7" => micro::fig7(&scale),
            "fig8" => apps::fig8(&scale),
            "sec3" => apps::sec3(&scale),
            "fig9" => lrfu::fig9(&scale),
            "table2" => lrfu::table2(&scale),
            "fig10" => windows::fig10(&scale),
            "fig11" => windows::fig11(&scale),
            "fig12" => ovs::fig12(&scale),
            "fig13" => ovs::fig13(&scale),
            "fig14" => ovs::fig14(&scale),
            "fig15" => ovs::fig15(&scale),
            "fig16" => ovs::fig16(&scale),
            "fig17" => ovs::fig17(&scale),
            "pmd-scaling" => ovs::pmd_scaling(&scale),
            "sharded-scaling" => sharded::sharded_scaling(&scale),
            "soa" => soa::soa_compare(&scale),
            "kernels" => kernels::kernel_compare(&scale),
            "windows-backend" => windows::windows_backend(&scale),
            "lrfu" => lrfu::lrfu_flow_table(&scale),
            "ingest" => ingest::ingest_contention(&scale),
            "ablate-deamortize" => ablate::ablate_deamortize(&scale),
            "ablate-select" => ablate::ablate_select(&scale),
            "ablate-gamma" => ablate::ablate_gamma(&scale),
            "ablate-tail" => ablate::ablate_tail(&scale),
            "ablate-window" => windows::ablate_window(&scale),
            other => {
                eprintln!("unknown experiment: {other}");
                std::process::exit(2);
            }
        }
        eprintln!("[{id} done in {:.1?}]\n", start.elapsed());
    }
}
