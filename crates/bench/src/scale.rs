//! Experiment sizing.

/// Controls experiment sizes: the paper ran 150M-item streams with `q`
/// up to 10⁷ on a 128 GB server; the default here is roughly a tenth of
/// that so the full suite regenerates on a laptop in tens of minutes.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Multiplier on stream lengths (1.0 = default scaled runs).
    pub factor: f64,
    /// Include the paper's largest configurations (`q = 10⁷`,
    /// 150M-item streams). Requires a few GB of RAM and much more time.
    pub full: bool,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            factor: 1.0,
            full: false,
        }
    }
}

impl Scale {
    /// Scales a default stream length.
    pub fn stream(&self, base: usize) -> usize {
        ((base as f64 * self.factor) as usize).max(1000)
    }

    /// The reservoir sizes swept by the q-sweeps.
    pub fn qs(&self) -> Vec<usize> {
        if self.full {
            vec![10_000, 100_000, 1_000_000, 10_000_000]
        } else {
            vec![10_000, 100_000, 1_000_000]
        }
    }

    /// The γ values swept by the γ-sweeps (the paper's Table 1 set).
    pub fn gammas(&self) -> Vec<f64> {
        vec![0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0]
    }
}
