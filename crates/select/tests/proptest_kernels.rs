//! Differential property tests: the runtime-dispatched kernels must be
//! bit-for-bit equivalent to the scalar reference on every input.
//!
//! On an AVX2 (or NEON) host `Kernel::detect()` resolves to the
//! vectorized path for `u64` lanes and these tests are genuine
//! scalar-vs-SIMD comparisons; on other hosts both sides resolve to the
//! scalar path and the properties still pin the contract.

use proptest::prelude::*;
use qmax_select::kernels::{sample_size, PIVOT_SEED};
use qmax_select::{Kernel, ProbeKernel, RunPred, GROUP_WIDTH};

/// Order-preserving, NaN-free mapping from `f64` to the `u64` lane
/// domain: `a < b` (by `total_cmp`) iff `key(a) < key(b)`.
fn f64_key(f: f64) -> u64 {
    let b = f.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// NaN-free `f64` edge values the SIMD comparisons must order exactly
/// like `total_cmp`: signed zeros, subnormals, infinities, plus a few
/// ordinary magnitudes.
fn f64_edge() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.0f64),
        Just(-0.0f64),
        Just(f64::MIN_POSITIVE),
        Just(-f64::MIN_POSITIVE),
        Just(f64::from_bits(1)), // smallest positive subnormal
        Just(-f64::from_bits(1)),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(f64::MAX),
        Just(f64::MIN),
        Just(1.0f64),
        Just(-1.0f64),
        (-1.0e12f64..1.0e12f64),
    ]
}

/// Heavy-tailed ("zipf-ish") u64 lane: many small values, few huge
/// ones, like a skewed flow-size distribution.
fn zipf_lane(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec((any::<u64>(), 0u32..48), 1..max_len)
        .prop_map(|v| v.into_iter().map(|(r, s)| r >> s).collect())
}

/// The lane mix the kernels must handle: zipf-ish, all-equal, and
/// f64 edge values pushed through the order-preserving bits mapping.
fn lane(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    prop_oneof![
        3 => zipf_lane(max_len),
        1 => (any::<u64>(), 1..max_len).prop_map(|(x, n)| vec![x >> 32; n]),
        2 => prop::collection::vec(f64_edge(), 1..max_len)
            .prop_map(|v| v.into_iter().map(f64_key).collect()),
    ]
}

fn naive_admit(items: &[(u64, u64)], threshold: Option<u64>) -> (Vec<u64>, Vec<u64>) {
    let mut vals = Vec::new();
    let mut ids = Vec::new();
    for &(id, val) in items {
        if threshold.is_none_or(|t| val > t) {
            vals.push(val);
            ids.push(id);
        }
    }
    (vals, ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// (a) Ψ-filter admit: dispatched kernel == scalar == naive filter,
    /// including the id lane and the untouched-beyond-cursor contract.
    #[test]
    fn admit_pairs_matches_scalar(
        vals in lane(300),
        ids_seed in any::<u64>(),
        t_pick in prop::option::of(any::<prop::sample::Index>()),
        w in 0usize..8,
    ) {
        let items: Vec<(u64, u64)> = vals
            .iter()
            .enumerate()
            .map(|(i, &v)| (ids_seed.wrapping_add(i as u64), v))
            .collect();
        let threshold = t_pick.map(|ix| vals[ix.index(vals.len())]);
        let hard_end = w + items.len();

        let run = |k: Kernel<u64>| {
            let mut out_v = vec![u64::MAX; hard_end + 3];
            let mut out_i = vec![u64::MAX; hard_end + 3];
            let r = k.admit_pairs(&items, threshold, &mut out_v, &mut out_i, w, hard_end);
            (r, out_v, out_i)
        };
        let (rs, vs, is) = run(Kernel::scalar());
        let (rd, vd, id) = run(Kernel::detect());

        prop_assert_eq!(rs, rd);
        prop_assert_eq!(&vs[w..rs], &vd[w..rd]);
        prop_assert_eq!(&is[w..rs], &id[w..rd]);
        // Nothing past hard_end may be touched by either kernel.
        prop_assert!(vd[hard_end..].iter().all(|&x| x == u64::MAX));
        prop_assert!(id[hard_end..].iter().all(|&x| x == u64::MAX));

        let (nv, ni) = naive_admit(&items, threshold);
        prop_assert_eq!(&vd[w..rd], &nv[..]);
        prop_assert_eq!(&id[w..rd], &ni[..]);
    }

    /// (b) Three-way descending partition with index-lane permutation:
    /// dispatched kernel == scalar, regions correctly classified and
    /// stable (input order preserved inside each region).
    #[test]
    fn partition3_desc_matches_scalar(
        vals in lane(300),
        pivot_ix in any::<prop::sample::Index>(),
    ) {
        let n = vals.len();
        let pivot = vals[pivot_ix.index(n)];
        let ids: Vec<u64> = (0..n as u64).collect();

        let run = |k: Kernel<u64>| {
            let mut ov = vec![0u64; n];
            let mut oi = vec![0u64; n];
            let (ngt, eq_end) = k.partition3_desc(&vals, &ids, pivot, &mut ov, &mut oi);
            (ngt, eq_end, ov, oi)
        };
        let (sg, se, sv, si) = run(Kernel::scalar());
        let (dg, de, dv, di) = run(Kernel::detect());
        prop_assert_eq!((sg, se), (dg, de));
        prop_assert_eq!(&sv[..], &dv[..]);
        prop_assert_eq!(&si[..], &di[..]);

        // Classification: [> | = | <] by region.
        prop_assert!(dv[..dg].iter().all(|&x| x > pivot));
        prop_assert!(dv[dg..de].iter().all(|&x| x == pivot));
        prop_assert!(dv[de..].iter().all(|&x| x < pivot));
        // Id lane is the matching permutation…
        prop_assert!(di.iter().zip(&dv).all(|(&i, &v)| vals[i as usize] == v));
        // …and each region is stable (ids strictly increasing).
        for region in [&di[..dg], &di[dg..de], &di[de..]] {
            prop_assert!(region.windows(2).all(|w| w[0] < w[1]));
        }
    }

    /// (c) Counting and min/max sweeps match the scalar reference and a
    /// naive recomputation.
    #[test]
    fn count_and_minmax_match_scalar(
        vals in lane(400),
        pivot_ix in any::<prop::sample::Index>(),
    ) {
        let pivot = vals[pivot_ix.index(vals.len())];
        let s = Kernel::<u64>::scalar();
        let d = Kernel::<u64>::detect();

        prop_assert_eq!(s.count_gt_eq(&vals, pivot), d.count_gt_eq(&vals, pivot));
        let naive_gt = vals.iter().filter(|&&x| x > pivot).count();
        let naive_eq = vals.iter().filter(|&&x| x == pivot).count();
        prop_assert_eq!(d.count_gt_eq(&vals, pivot), (naive_gt, naive_eq));

        prop_assert_eq!(s.min_max(&vals), d.min_max(&vals));
        let mn = *vals.iter().min().unwrap();
        let mx = *vals.iter().max().unwrap();
        prop_assert_eq!(d.min_max(&vals), Some((mn, mx)));
    }

    /// Machine-assist prefix runs: dispatched kernel == scalar ==
    /// naive take-while, for all three predicate classes.
    #[test]
    fn prefix_class_run_matches_scalar(
        vals in lane(300),
        pivot_ix in any::<prop::sample::Index>(),
    ) {
        let pivot = vals[pivot_ix.index(vals.len())];
        let s = Kernel::<u64>::scalar();
        let d = Kernel::<u64>::detect();
        for pred in [RunPred::Lt, RunPred::Gt, RunPred::Eq] {
            let hit = |x: u64| match pred {
                RunPred::Lt => x < pivot,
                RunPred::Gt => x > pivot,
                RunPred::Eq => x == pivot,
            };
            let naive = vals.iter().take_while(|&&x| hit(x)).count();
            prop_assert_eq!(s.prefix_class_run(&vals, pivot, pred), naive);
            prop_assert_eq!(d.prefix_class_run(&vals, pivot, pred), naive);
        }
    }

    /// The pivot sampler is deterministic under a fixed seed, identical
    /// across kernels, and always returns an element of the buffer.
    #[test]
    fn sample_pivot_is_deterministic(
        vals in lane(600),
        rank_ix in any::<prop::sample::Index>(),
        seed_off in 0u64..16,
    ) {
        let rank = rank_ix.index(vals.len());
        let seed = PIVOT_SEED ^ seed_off;
        let mut scratch = Vec::new();
        let a = Kernel::<u64>::scalar().sample_pivot(&vals, rank, seed, &mut scratch);
        let b = Kernel::<u64>::detect().sample_pivot(&vals, rank, seed, &mut scratch);
        let c = Kernel::<u64>::detect().sample_pivot(&vals, rank, seed, &mut scratch);
        prop_assert_eq!(a, b);
        prop_assert_eq!(b, c);
        prop_assert!(vals.contains(&a));
        prop_assert_eq!(scratch.len(), sample_size(vals.len()));
    }

    /// Group probe: dispatched kernel == scalar == naive per-byte scan
    /// over control-byte mixes a flow table actually produces (random
    /// tags, sentinel-heavy groups, all-equal groups).
    #[test]
    fn probe_match_byte_matches_scalar(
        raw in prop::collection::vec(any::<u8>(), GROUP_WIDTH),
        mode in 0u8..3,
        tag in any::<u8>(),
    ) {
        let mut group = [0u8; GROUP_WIDTH];
        for (g, &r) in group.iter_mut().zip(&raw) {
            *g = match mode {
                0 => r,          // arbitrary bytes
                1 => r & 0x81,   // only sentinels 0x00/0x80/0x81/0x01
                _ => raw[0],     // all-equal group
            };
        }
        let s = ProbeKernel::scalar();
        let d = ProbeKernel::detect();
        for t in [tag, group[0], 0x80, 0x81] {
            let naive = group
                .iter()
                .enumerate()
                .fold(0u16, |m, (i, &b)| m | (u16::from(b == t) << i));
            prop_assert_eq!(s.match_byte(&group, t), naive);
            prop_assert_eq!(d.match_byte(&group, t), naive);
        }
    }

    /// The f64→u64 lane mapping is strictly order-preserving on the
    /// NaN-free edge set, so SIMD `u64` compares order floats exactly
    /// like `total_cmp`.
    #[test]
    fn f64_key_mapping_preserves_order(a in f64_edge(), b in f64_edge()) {
        use std::cmp::Ordering;
        let ord = a.total_cmp(&b);
        // total_cmp separates -0.0 < +0.0, and so does the bits map.
        prop_assert_eq!(f64_key(a).cmp(&f64_key(b)), ord);
        if ord == Ordering::Equal {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
