//! Property-based tests of the selection substrate.

use proptest::prelude::*;
use qmax_select::{
    insertion_sort, median_of_five, mom_nth_smallest, nth_largest, nth_smallest, partition3,
    Direction, MachineStatus, NthElementMachine, PartitionMachine, WORK_BOUND_FACTOR,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn nth_smallest_equals_sorted(mut v in prop::collection::vec(any::<i64>(), 1..2000), k_seed in any::<usize>()) {
        let k = k_seed % v.len();
        let mut sorted = v.clone();
        sorted.sort_unstable();
        let got = *nth_smallest(&mut v, k);
        prop_assert_eq!(got, sorted[k]);
        // Partition property.
        for &x in &v[..k] {
            prop_assert!(x <= v[k]);
        }
        for &x in &v[k + 1..] {
            prop_assert!(x >= v[k]);
        }
        // The multiset is preserved.
        let mut after = v.clone();
        after.sort_unstable();
        prop_assert_eq!(after, sorted);
    }

    #[test]
    fn mom_equals_introselect(v in prop::collection::vec(any::<u32>(), 1..1000), k_seed in any::<usize>()) {
        let k = k_seed % v.len();
        let mut a = v.clone();
        let mut b = v.clone();
        prop_assert_eq!(*nth_smallest(&mut a, k), *mom_nth_smallest(&mut b, k));
    }

    #[test]
    fn nth_largest_mirrors_nth_smallest(v in prop::collection::vec(any::<u32>(), 1..500), k_seed in any::<usize>()) {
        let k = k_seed % v.len();
        let mut a = v.clone();
        let mut b = v.clone();
        let largest = *nth_largest(&mut a, k);
        let smallest_equiv = *nth_smallest(&mut b, v.len() - 1 - k);
        prop_assert_eq!(largest, smallest_equiv);
    }

    #[test]
    fn machine_work_is_linear(v in prop::collection::vec(any::<u16>(), 30..3000), k_seed in any::<usize>()) {
        let n = v.len();
        let k = k_seed % n;
        let mut buf = v.clone();
        let mut m = NthElementMachine::new(0, n, k, Direction::Ascending);
        m.run_to_completion(&mut buf);
        prop_assert!(
            m.total_ops() <= (WORK_BOUND_FACTOR * n + WORK_BOUND_FACTOR) as u64,
            "ops {} exceed linear bound for n={}", m.total_ops(), n
        );
    }

    #[test]
    fn machine_descending_is_reverse(v in prop::collection::vec(any::<u32>(), 1..400), k_seed in any::<usize>()) {
        let n = v.len();
        let k = k_seed % n;
        let mut asc = v.clone();
        let mut desc = v.clone();
        let mut ma = NthElementMachine::new(0, n, k, Direction::Ascending);
        let mut md = NthElementMachine::new(0, n, n - 1 - k, Direction::Descending);
        while ma.step(&mut asc, 17) == MachineStatus::InProgress {}
        while md.step(&mut desc, 17) == MachineStatus::InProgress {}
        // k-th smallest == (n-1-k)-th largest.
        prop_assert_eq!(asc[k], desc[n - 1 - k]);
    }

    #[test]
    fn partition_machine_equals_partition3(
        mut v in prop::collection::vec(0u8..16, 1..600),
        pivot in 0u8..16,
        budget in 1usize..50,
    ) {
        let mut reference = v.clone();
        let n = v.len();
        let (rlt, rgt) = partition3(&mut reference, 0, n, &pivot);
        let mut m = PartitionMachine::new(0, n, pivot, Direction::Ascending);
        while m.step(&mut v, budget) == MachineStatus::InProgress {}
        let (lt, gt) = m.result().unwrap();
        prop_assert_eq!((lt, gt), (rlt, rgt));
        for &x in &v[..lt] {
            prop_assert!(x < pivot);
        }
        for &x in &v[lt..gt] {
            prop_assert!(x == pivot);
        }
        for &x in &v[gt..] {
            prop_assert!(x > pivot);
        }
    }

    #[test]
    fn insertion_sort_sorts_any(mut v in prop::collection::vec(any::<i32>(), 0..64)) {
        let mut expect = v.clone();
        expect.sort_unstable();
        insertion_sort(&mut v);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn median_of_five_is_true_median(v in prop::collection::vec(any::<u32>(), 1..6)) {
        let mut buf = v.clone();
        let len = buf.len();
        let m = median_of_five(&mut buf, 0, len);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(buf[m], sorted[(len - 1) / 2]);
    }
}
