//! Structure-of-arrays (value-lane) selection kernels.
//!
//! The generic kernels in this crate move whole `Entry`-like structs
//! through every compare and swap: for the common `(u64, u64)` item that
//! is a 16-byte element, so a pivot scan touches one element per half
//! cache line and every swap moves 32 bytes. When the values and ids
//! live in two *parallel arrays* (the SoA fast path in `qmax-core`),
//! the pivot scan can instead stream over the dense value lane — 8-byte
//! loads, twice the elements per cache line — and mirror each exchange
//! into the id lane. The kernels here do exactly that: they partition
//! and select on `vals` while applying the identical permutation to
//! `ids`, so `(vals[i], ids[i])` pairs stay intact throughout.
//!
//! All kernels require `V: Copy` (pivots are held by value), which is
//! precisely the primitive-lane case the fast path targets; ids are
//! only ever swapped, so `I` is unconstrained.
//!
//! * [`paired_nth_smallest`] — introselect over `(vals, ids)`: expected
//!   linear with a median-of-medians fallback, same contract as
//!   [`crate::nth_smallest`].
//! * [`PairedNthElementMachine`] — the suspendable bounded-work
//!   counterpart of [`crate::NthElementMachine`]. It performs the same
//!   elementary operations with the same unit costs, so the
//!   [`crate::WORK_BOUND_FACTOR`] work bound applies unchanged and the
//!   de-amortized q-MAX budget arithmetic carries over verbatim.
//! * low-level helpers: [`paired_partition3`], [`paired_insertion_sort`].

use crate::kernels::{Kernel, RunPred};
use crate::machine::{Direction, MachineStatus};
use core::cmp::Ordering;

/// Ranges of at most this many elements are solved by direct insertion
/// sort rather than recursive selection (matches the AoS kernels).
const SMALL: usize = 24;

/// Swaps index `a` with index `b` in both lanes.
#[inline(always)]
fn swap2<V, I>(vals: &mut [V], ids: &mut [I], a: usize, b: usize) {
    vals.swap(a, b);
    ids.swap(a, b);
}

/// Out-of-line panics for contract violations, keeping the cold
/// formatting machinery off the selection hot path.
#[cold]
#[inline(never)]
fn lanes_differ(vlen: usize, ilen: usize) -> ! {
    panic!("value/id lanes differ: {vlen} vs {ilen}");
}

#[cold]
#[inline(never)]
fn index_out_of_range(k: usize, len: usize) -> ! {
    panic!("selection index {k} out of range {len}");
}

/// Sorts `vals[lo..hi]` ascending by insertion sort, mirroring every
/// exchange into `ids` so value/id pairs stay aligned.
pub fn paired_insertion_sort<V: Ord, I>(vals: &mut [V], ids: &mut [I], lo: usize, hi: usize) {
    for i in lo + 1..hi {
        let mut j = i;
        while j > lo && vals[j - 1] > vals[j] {
            swap2(vals, ids, j - 1, j);
            j -= 1;
        }
    }
}

/// Direction-aware paired insertion sort (used by the machine).
fn paired_insertion_sort_dir<V: Ord, I>(
    vals: &mut [V],
    ids: &mut [I],
    lo: usize,
    hi: usize,
    dir: Direction,
) {
    for i in lo + 1..hi {
        let mut j = i;
        while j > lo && dir.cmp(&vals[j - 1], &vals[j]) == Ordering::Greater {
            swap2(vals, ids, j - 1, j);
            j -= 1;
        }
    }
}

/// Three-way (Dutch national flag) partition of `vals[lo..hi]` around
/// the pivot **value**, with the permutation applied to `ids` as well.
///
/// On return `(lt, gt)`:
/// * `vals[lo..lt]` contains values `< pivot`,
/// * `vals[lt..gt]` contains values `== pivot`,
/// * `vals[gt..hi]` contains values `> pivot`,
///
/// and `ids[i]` still identifies `vals[i]` everywhere.
#[inline]
pub fn paired_partition3<V: Ord, I>(
    vals: &mut [V],
    ids: &mut [I],
    lo: usize,
    hi: usize,
    pivot: &V,
) -> (usize, usize) {
    debug_assert!(lo <= hi && hi <= vals.len() && hi <= ids.len());
    let mut lt = lo;
    let mut i = lo;
    let mut gt = hi;
    while i < gt {
        // Dutch-flag invariant: [lo..lt) < pivot, [lt..i) == pivot,
        // [i..gt) unclassified, [gt..hi) > pivot.
        debug_assert!(lt <= i && i <= gt && gt <= hi);
        match vals[i].cmp(pivot) {
            Ordering::Less => {
                swap2(vals, ids, lt, i);
                lt += 1;
                i += 1;
            }
            Ordering::Greater => {
                gt -= 1;
                swap2(vals, ids, i, gt);
            }
            Ordering::Equal => i += 1,
        }
    }
    debug_assert!(vals[lo..lt].iter().all(|x| x < pivot));
    debug_assert!(vals[lt..gt].iter().all(|x| x == pivot));
    debug_assert!(vals[gt..hi].iter().all(|x| x > pivot));
    (lt, gt)
}

#[inline]
fn median3_index<V: Ord>(vals: &[V], a: usize, b: usize, c: usize) -> usize {
    let (x, y, z) = (&vals[a], &vals[b], &vals[c]);
    if (x <= y) == (y <= z) {
        b
    } else if (y <= x) == (x <= z) {
        a
    } else {
        c
    }
}

/// Rearranges the parallel arrays so that the `k`-th smallest value
/// (0-based) is at index `k`, everything before it is `<=` it, and
/// everything after is `>=` it — with `ids` carried through the same
/// permutation, so each `(vals[i], ids[i])` pair is one of the input
/// pairs.
///
/// This is the value-lane counterpart of [`crate::nth_smallest`]
/// (introselect: pseudo-random pivots with a median-of-medians fallback,
/// worst-case linear).
///
/// # Panics
///
/// Panics if the lanes differ in length or `k` is out of range.
pub fn paired_nth_smallest<V: Ord + Copy, I>(vals: &mut [V], ids: &mut [I], k: usize) {
    if vals.len() != ids.len() {
        lanes_differ(vals.len(), ids.len());
    }
    if k >= vals.len() {
        index_out_of_range(k, vals.len());
    }
    paired_select(vals, ids, 0, vals.len(), k);
}

/// Introselect on the absolute range `[lo, hi)`; `target` is absolute.
fn paired_select<V: Ord + Copy, I>(
    vals: &mut [V],
    ids: &mut [I],
    mut lo: usize,
    mut hi: usize,
    target: usize,
) {
    let n = hi - lo;
    // 2 * log2(n) pivot rounds before falling back to MoM pivots.
    let mut depth_budget = 2 * (usize::BITS - n.leading_zeros()) as usize + 2;
    let mut rng_state: u64 = 0x9E37_79B9_7F4A_7C15 ^ (n as u64);
    loop {
        if hi - lo <= SMALL {
            paired_insertion_sort(vals, ids, lo, hi);
            return;
        }
        let pivot = if depth_budget == 0 {
            vals[paired_mom_pivot(vals, ids, lo, hi)]
        } else {
            depth_budget -= 1;
            rng_state = rng_state
                .wrapping_mul(0xD120_0000_0000_1001)
                .wrapping_add(1);
            let r = (rng_state >> 33) as usize;
            // Median of three pseudo-random probes.
            let a = lo + r % (hi - lo);
            let b = lo + (r / (hi - lo)) % (hi - lo);
            let c = lo + (hi - lo) / 2;
            vals[median3_index(vals, a, b, c)]
        };
        // V: Copy lets the pivot ride in a register, so no clone-free
        // slice-splitting tricks are needed here, unlike the AoS kernel.
        let (eq_lo, eq_hi) = paired_partition3(vals, ids, lo, hi, &pivot);
        if target < eq_lo {
            hi = eq_lo;
        } else if target >= eq_hi {
            lo = eq_hi;
        } else {
            return;
        }
    }
}

/// BFPRT median-of-medians pivot for `vals[lo..hi]`; returns its index.
fn paired_mom_pivot<V: Ord + Copy, I>(
    vals: &mut [V],
    ids: &mut [I],
    lo: usize,
    hi: usize,
) -> usize {
    let mut ngroups = 0usize;
    let mut g = lo;
    while g < hi {
        let len = (hi - g).min(5);
        paired_insertion_sort(vals, ids, g, g + len);
        let median = g + (len - 1) / 2;
        swap2(vals, ids, lo + ngroups, median);
        ngroups += 1;
        g += len;
    }
    let mid = (ngroups - 1) / 2;
    paired_select(vals, ids, lo, lo + ngroups, lo + mid);
    lo + mid
}

/// Control state of one paired selection frame.
#[derive(Debug)]
enum Phase<V> {
    /// Frame freshly (re-)entered; dispatch on range size.
    Start,
    /// Insertion-sorting a small range; `i` is the next element to place.
    SmallSort { i: usize },
    /// Packing group-of-5 medians to the front of the range.
    Medians { next_group: usize, packed: usize },
    /// A child frame is selecting the median of the packed medians.
    AwaitPivot,
    /// Three-way partition around `pivot` in progress.
    Partition {
        lt: usize,
        i: usize,
        gt: usize,
        pivot: V,
    },
}

#[derive(Debug)]
struct Frame<V> {
    lo: usize,
    hi: usize,
    /// Absolute index at which the sought order statistic must land.
    target: usize,
    phase: Phase<V>,
}

/// The suspendable, bounded-work counterpart of
/// [`crate::NthElementMachine`] operating on parallel value/id lanes.
///
/// The machine holds only indices and (Copy) pivot values — never a
/// borrow of either lane — so, exactly like the AoS machine, the caller
/// may mutate the buffers *outside* the configured `[lo, hi)` range
/// between steps. The id lane is passed to every [`step`](Self::step)
/// call and receives the same permutation as the value lane; since the
/// machine never stores ids, each call may even use a different id type
/// (in practice callers fix one).
///
/// Elementary-operation accounting matches [`crate::NthElementMachine`]
/// unit for unit, so the [`crate::WORK_BOUND_FACTOR`]` * n` total-work
/// bound — and therefore the de-amortized q-MAX per-arrival budget —
/// holds unchanged.
///
/// ```
/// use qmax_select::{Direction, MachineStatus, PairedNthElementMachine};
/// let mut vals = vec![5u64, 1, 9, 3, 7, 2, 8, 0, 6, 4, 11, 13, 12, 15, 14,
///                     21, 20, 23, 22, 25, 24, 27, 26, 29, 28, 31, 30];
/// let mut ids: Vec<u32> = (0..vals.len() as u32).collect();
/// let mut m = PairedNthElementMachine::new(0, vals.len(), 4, Direction::Ascending);
/// while m.step(&mut vals, &mut ids, 8) == MachineStatus::InProgress {}
/// assert_eq!(vals[4], 4);
/// assert_eq!(ids[4], 9); // the id that arrived with value 4
/// ```
#[derive(Debug)]
pub struct PairedNthElementMachine<V> {
    frames: Vec<Frame<V>>,
    dir: Direction,
    result: Option<usize>,
    total_ops: u64,
    max_step_ops: u64,
    /// Vectorized assist for the partition phase (resolved once at
    /// construction; see [`crate::kernels`]).
    kernel: Kernel<V>,
}

impl<V: Ord + Copy + 'static> PairedNthElementMachine<V> {
    /// Creates a machine that will place the `k`-th value (0-based) of
    /// `vals[lo..hi]` — in `dir` order — at index `lo + k`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or `k` is out of range.
    pub fn new(lo: usize, hi: usize, k: usize, dir: Direction) -> Self {
        assert!(lo < hi, "empty selection range [{lo}, {hi})");
        assert!(k < hi - lo, "selection index {k} out of range {}", hi - lo);
        PairedNthElementMachine {
            frames: vec![Frame {
                lo,
                hi,
                target: lo + k,
                phase: Phase::Start,
            }],
            dir,
            result: None,
            total_ops: 0,
            max_step_ops: 0,
            kernel: Kernel::detect(),
        }
    }

    /// Whether the selection has completed.
    pub fn is_finished(&self) -> bool {
        self.result.is_some()
    }

    /// Absolute index of the selected element once finished.
    pub fn result_index(&self) -> Option<usize> {
        self.result
    }

    /// Total elementary operations performed so far.
    pub fn total_ops(&self) -> u64 {
        self.total_ops
    }

    /// Largest number of elementary operations performed by a single
    /// [`step`](Self::step) call (may exceed the budget by the cost of
    /// one indivisible unit, a bounded constant).
    pub fn max_step_ops(&self) -> u64 {
        self.max_step_ops
    }

    /// Runs at most ~`budget` elementary operations of the selection.
    ///
    /// Same contract as [`crate::NthElementMachine::step`]: a step never
    /// stops mid-unit, so the actual work may exceed `budget` by a small
    /// constant.
    ///
    /// # Panics
    ///
    /// Panics if either lane is shorter than the machine's range.
    #[inline]
    pub fn step<I>(&mut self, vals: &mut [V], ids: &mut [I], budget: usize) -> MachineStatus {
        if self.result.is_some() {
            return MachineStatus::Finished;
        }
        let mut rem = budget as i64;
        let step_start = self.total_ops;
        while rem > 0 && self.result.is_none() {
            rem -= self.advance_unit(vals, ids, rem as u64) as i64;
        }
        let used = self.total_ops - step_start;
        if used > self.max_step_ops {
            self.max_step_ops = used;
        }
        if self.result.is_some() {
            MachineStatus::Finished
        } else {
            MachineStatus::InProgress
        }
    }

    /// Runs the machine to completion and returns the index of the
    /// selected element.
    pub fn run_to_completion<I>(&mut self, vals: &mut [V], ids: &mut [I]) -> usize {
        while self.result.is_none() {
            self.advance_unit(vals, ids, u64::MAX / 4);
        }
        self.result.expect("machine just finished")
    }

    /// Executes one unit of work of at most ~`max_cost` operations;
    /// returns its operation cost. Mirrors the AoS machine's unit costs
    /// exactly.
    fn advance_unit<I>(&mut self, vals: &mut [V], ids: &mut [I], max_cost: u64) -> u64 {
        let dir = self.dir;
        let kernel = self.kernel;
        let fidx = self.frames.len() - 1;
        let frame = &mut self.frames[fidx];
        assert!(
            frame.hi <= vals.len() && frame.hi <= ids.len(),
            "lanes shorter than machine range"
        );
        let (lo, hi, target) = (frame.lo, frame.hi, frame.target);
        let cost: u64;
        enum Outcome {
            Continue,
            FrameDone,
            PushChild { clo: usize, chi: usize, ck: usize },
        }
        let outcome;
        match &mut frame.phase {
            Phase::Start => {
                cost = 1;
                if hi - lo <= SMALL {
                    frame.phase = Phase::SmallSort { i: lo + 1 };
                } else {
                    frame.phase = Phase::Medians {
                        next_group: lo,
                        packed: 0,
                    };
                }
                outcome = Outcome::Continue;
            }
            Phase::SmallSort { i } => {
                if *i >= hi {
                    outcome = Outcome::FrameDone;
                    cost = 1;
                } else {
                    let mut j = *i;
                    let mut moved = 1u64;
                    while j > lo && dir.cmp(&vals[j - 1], &vals[j]) == Ordering::Greater {
                        swap2(vals, ids, j - 1, j);
                        j -= 1;
                        moved += 1;
                    }
                    *i += 1;
                    cost = moved;
                    outcome = Outcome::Continue;
                }
            }
            Phase::Medians { next_group, packed } => {
                if *next_group >= hi {
                    let ngroups = *packed;
                    debug_assert!(ngroups >= 1);
                    frame.phase = Phase::AwaitPivot;
                    outcome = Outcome::PushChild {
                        clo: lo,
                        chi: lo + ngroups,
                        ck: (ngroups - 1) / 2,
                    };
                    cost = 1;
                } else {
                    let g = *next_group;
                    let len = (hi - g).min(5);
                    paired_insertion_sort_dir(vals, ids, g, g + len, dir);
                    let median = g + (len - 1) / 2;
                    swap2(vals, ids, lo + *packed, median);
                    *packed += 1;
                    *next_group += len;
                    cost = 12;
                    outcome = Outcome::Continue;
                }
            }
            Phase::AwaitPivot => {
                unreachable!("AwaitPivot frames are resumed only via child completion")
            }
            Phase::Partition { lt, i, gt, pivot } => {
                if *i < *gt {
                    // The machine's hot path: a whole budget's worth of
                    // elements in one tight loop over the value lane.
                    // Vectorized assists consume a same-class run in one
                    // kernel call, each element charged the same 2 ops as
                    // the scalar path and the run capped by the remaining
                    // budget, so the machine's state *and* cost accounting
                    // stay identical to the scalar machine. The assists
                    // are only attempted where a run is likely — paying a
                    // dispatched kernel call per scalar element would eat
                    // the win (measured ~25% on the de-amortized path):
                    //
                    // * the Less-run only while `lt == i` (the unbroken
                    //   all-Less prefix, where the Less-branch swap is a
                    //   self-swap no-op and a run just advances both
                    //   cursors);
                    // * the Equal-run only right after a scalar Equal
                    //   step, because duplicates cluster.
                    let mut c = 0u64;
                    while *i < *gt && c < max_cost {
                        let room = (((max_cost - c) / 2) as usize).min(*gt - *i);
                        if *lt == *i && room >= 8 {
                            let pred = match dir {
                                Direction::Ascending => RunPred::Lt,
                                Direction::Descending => RunPred::Gt,
                            };
                            let run = kernel.prefix_class_run(&vals[*i..*i + room], *pivot, pred);
                            if run > 0 {
                                *lt += run;
                                *i += run;
                                c += 2 * run as u64;
                                continue;
                            }
                        }
                        match dir.cmp(&vals[*i], pivot) {
                            Ordering::Less => {
                                swap2(vals, ids, *lt, *i);
                                *lt += 1;
                                *i += 1;
                            }
                            Ordering::Greater => {
                                *gt -= 1;
                                swap2(vals, ids, *i, *gt);
                            }
                            Ordering::Equal => {
                                *i += 1;
                                c += 2;
                                let room =
                                    (((max_cost.saturating_sub(c)) / 2) as usize).min(*gt - *i);
                                if room >= 8 {
                                    let run = kernel.prefix_class_run(
                                        &vals[*i..*i + room],
                                        *pivot,
                                        RunPred::Eq,
                                    );
                                    *i += run;
                                    c += 2 * run as u64;
                                }
                                continue;
                            }
                        }
                        c += 2;
                    }
                    cost = c;
                    outcome = Outcome::Continue;
                } else {
                    let (plo, phi) = (*lt, *gt);
                    cost = 1;
                    if target < plo {
                        frame.hi = plo;
                        frame.phase = Phase::Start;
                        outcome = Outcome::Continue;
                    } else if target >= phi {
                        frame.lo = phi;
                        frame.phase = Phase::Start;
                        outcome = Outcome::Continue;
                    } else {
                        outcome = Outcome::FrameDone;
                    }
                }
            }
        }
        self.total_ops += cost;
        match outcome {
            Outcome::Continue => {}
            Outcome::PushChild { clo, chi, ck } => {
                self.frames.push(Frame {
                    lo: clo,
                    hi: chi,
                    target: clo + ck,
                    phase: Phase::Start,
                });
            }
            Outcome::FrameDone => {
                let done = self.frames.pop().expect("frame stack non-empty");
                let t = done.target;
                match self.frames.last_mut() {
                    None => self.result = Some(t),
                    Some(parent) => {
                        let Phase::AwaitPivot = parent.phase else {
                            unreachable!("parent of a completed frame must await its pivot")
                        };
                        let (plo, phi) = (parent.lo, parent.hi);
                        parent.phase = Phase::Partition {
                            lt: plo,
                            i: plo,
                            gt: phi,
                            pivot: vals[t],
                        };
                    }
                }
            }
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::WORK_BOUND_FACTOR;

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Checks every pair `(vals[i], ids[i])` is an input pair: the id
    /// lane followed the exact permutation of the value lane.
    fn assert_pairs_intact(vals: &[u64], ids: &[u32], original: &[u64]) {
        for (i, (&v, &id)) in vals.iter().zip(ids).enumerate() {
            assert_eq!(
                v, original[id as usize],
                "pair broken at {i}: value {v} carries id {id}"
            );
        }
    }

    #[test]
    fn paired_select_matches_std_and_keeps_pairs() {
        let mut state = 7u64;
        for n in [1usize, 5, 24, 25, 100, 1000] {
            let base: Vec<u64> = (0..n).map(|_| splitmix(&mut state) % 97).collect();
            let mut sorted = base.clone();
            sorted.sort_unstable();
            for k in [0, n / 2, n - 1] {
                let mut vals = base.clone();
                let mut ids: Vec<u32> = (0..n as u32).collect();
                paired_nth_smallest(&mut vals, &mut ids, k);
                assert_eq!(vals[k], sorted[k], "n={n} k={k}");
                assert!(vals[..k].iter().all(|v| *v <= vals[k]));
                assert!(vals[k + 1..].iter().all(|v| *v >= vals[k]));
                assert_pairs_intact(&vals, &ids, &base);
            }
        }
    }

    #[test]
    fn paired_select_adversarial_patterns() {
        for n in [50usize, 200, 1001] {
            let patterns: Vec<Vec<u64>> = vec![
                (0..n as u64).collect(),
                (0..n as u64).rev().collect(),
                vec![7; n],
                (0..n as u64).map(|x| x % 3).collect(),
            ];
            for base in patterns {
                for k in [0, n / 2, n - 1] {
                    let mut vals = base.clone();
                    let mut ids: Vec<u32> = (0..n as u32).collect();
                    paired_nth_smallest(&mut vals, &mut ids, k);
                    let mut sorted = base.clone();
                    sorted.sort_unstable();
                    assert_eq!(vals[k], sorted[k]);
                    assert_pairs_intact(&vals, &ids, &base);
                }
            }
        }
    }

    #[test]
    fn paired_partition3_partitions_both_lanes() {
        let mut state = 9u64;
        let n = 300;
        let base: Vec<u64> = (0..n).map(|_| splitmix(&mut state) % 10).collect();
        let mut vals = base.clone();
        let mut ids: Vec<u32> = (0..n as u32).collect();
        let (lt, gt) = paired_partition3(&mut vals, &mut ids, 10, 290, &5);
        assert!(vals[10..lt].iter().all(|&x| x < 5));
        assert!(vals[lt..gt].iter().all(|&x| x == 5));
        assert!(vals[gt..290].iter().all(|&x| x > 5));
        assert_pairs_intact(&vals, &ids, &base);
        // Outside the range untouched.
        assert_eq!(&vals[..10], &base[..10]);
        assert_eq!(&vals[290..], &base[290..]);
    }

    fn run_machine(
        vals: &mut [u64],
        ids: &mut [u32],
        k: usize,
        dir: Direction,
        budget: usize,
    ) -> usize {
        let mut m = PairedNthElementMachine::new(0, vals.len(), k, dir);
        let mut guard = 0usize;
        while m.step(vals, ids, budget) == MachineStatus::InProgress {
            guard += 1;
            assert!(guard < 100_000_000, "machine failed to terminate");
        }
        m.result_index().unwrap()
    }

    #[test]
    fn machine_ascending_selects_kth_smallest() {
        let mut state = 11u64;
        for n in [1usize, 5, 24, 25, 100, 1000] {
            let base: Vec<u64> = (0..n).map(|_| splitmix(&mut state) % 61).collect();
            let mut sorted = base.clone();
            sorted.sort_unstable();
            for k in [0, n / 2, n - 1] {
                let mut vals = base.clone();
                let mut ids: Vec<u32> = (0..n as u32).collect();
                let idx = run_machine(&mut vals, &mut ids, k, Direction::Ascending, 16);
                assert_eq!(idx, k);
                assert_eq!(vals[k], sorted[k]);
                assert!(vals[..k].iter().all(|v| *v <= vals[k]));
                assert!(vals[k + 1..].iter().all(|v| *v >= vals[k]));
                assert_pairs_intact(&vals, &ids, &base);
            }
        }
    }

    #[test]
    fn machine_descending_selects_kth_largest() {
        let mut state = 42u64;
        for n in [3usize, 50, 333] {
            let base: Vec<u64> = (0..n).map(|_| splitmix(&mut state) % 31).collect();
            let mut sorted = base.clone();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            for k in [0, n / 2, n - 1] {
                let mut vals = base.clone();
                let mut ids: Vec<u32> = (0..n as u32).collect();
                run_machine(&mut vals, &mut ids, k, Direction::Descending, 7);
                assert_eq!(vals[k], sorted[k]);
                assert!(vals[..k].iter().all(|v| *v >= vals[k]));
                assert!(vals[k + 1..].iter().all(|v| *v <= vals[k]));
                assert_pairs_intact(&vals, &ids, &base);
            }
        }
    }

    #[test]
    fn machine_stays_within_work_bound() {
        for n in [100usize, 1000, 5000] {
            let patterns: Vec<Vec<u64>> = vec![
                (0..n as u64).collect(),
                (0..n as u64).rev().collect(),
                vec![3; n],
                (0..n as u64).map(|x| x % 2).collect(),
            ];
            for base in patterns {
                let mut vals = base.clone();
                let mut ids: Vec<u32> = (0..n as u32).collect();
                let mut m = PairedNthElementMachine::new(0, n, n / 2, Direction::Ascending);
                m.run_to_completion(&mut vals, &mut ids);
                assert!(
                    m.total_ops() <= (WORK_BOUND_FACTOR * n + WORK_BOUND_FACTOR) as u64,
                    "ops {} exceed bound for n={n}",
                    m.total_ops()
                );
            }
        }
    }

    #[test]
    fn machine_budget_respected_up_to_unit_cost() {
        let mut state = 3u64;
        let n = 2000;
        let mut vals: Vec<u64> = (0..n).map(|_| splitmix(&mut state)).collect();
        let mut ids: Vec<u32> = (0..n as u32).collect();
        let mut m = PairedNthElementMachine::new(0, n, 100, Direction::Ascending);
        while m.step(&mut vals, &mut ids, 10) == MachineStatus::InProgress {}
        assert!(m.max_step_ops() <= 10 + SMALL as u64 + 2);
    }

    #[test]
    fn machine_ignores_lanes_outside_range() {
        let mut state = 5u64;
        let n = 500;
        let base: Vec<u64> = (0..n + 50).map(|_| splitmix(&mut state) % 1000).collect();
        let mut vals = base.clone();
        let mut ids: Vec<u32> = (0..(n + 50) as u32).collect();
        let mut expect: Vec<u64> = base[25..25 + n].to_vec();
        expect.sort_unstable();
        let mut m = PairedNthElementMachine::new(25, 25 + n, 77, Direction::Ascending);
        let mut tick = 0u64;
        while m.step(&mut vals, &mut ids, 5) == MachineStatus::InProgress {
            // Mutate both lanes outside [25, 525) between steps.
            vals[(tick % 25) as usize] = tick;
            ids[525 + (tick % 25) as usize] = tick as u32;
            tick += 1;
        }
        assert_eq!(vals[25 + 77], expect[77]);
    }

    #[test]
    fn finished_machine_steps_are_noops() {
        let mut vals: Vec<u64> = (0..200).rev().collect();
        let mut ids: Vec<u32> = (0..200).collect();
        let mut m = PairedNthElementMachine::new(0, 200, 50, Direction::Ascending);
        m.run_to_completion(&mut vals, &mut ids);
        let ops = m.total_ops();
        let snapshot = vals.clone();
        assert_eq!(m.step(&mut vals, &mut ids, 1000), MachineStatus::Finished);
        assert_eq!(m.total_ops(), ops);
        assert_eq!(vals, snapshot);
    }

    #[test]
    #[should_panic(expected = "empty selection range")]
    fn empty_range_panics() {
        let _ = PairedNthElementMachine::<u64>::new(3, 3, 0, Direction::Ascending);
    }

    #[test]
    #[should_panic(expected = "value/id lanes differ")]
    fn mismatched_lanes_panic() {
        let mut vals = vec![1u64, 2, 3];
        let mut ids = vec![0u32, 1];
        paired_nth_smallest(&mut vals, &mut ids, 1);
    }
}
