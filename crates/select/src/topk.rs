//! Partial-sort conveniences built on the selection primitives.

use crate::quickselect::nth_smallest;

/// Moves the `k` largest elements of `buf` to its tail and sorts that
/// tail descending-from-the-end — i.e. after the call,
/// `buf[buf.len()-k..]` holds the top `k` in ascending order. Returns
/// the sorted top-`k` slice.
///
/// `O(n + k log k)`: one selection pass plus a sort of the tail.
///
/// ```
/// use qmax_select::top_k_suffix;
/// let mut v = vec![5, 1, 9, 3, 7, 2];
/// assert_eq!(top_k_suffix(&mut v, 3), &[5, 7, 9]);
/// ```
pub fn top_k_suffix<T: Ord>(buf: &mut [T], k: usize) -> &[T] {
    let n = buf.len();
    assert!(k <= n, "k={k} exceeds length {n}");
    if k == 0 {
        return &buf[n..];
    }
    if k < n {
        nth_smallest(buf, n - k);
    }
    buf[n - k..].sort_unstable();
    &buf[n - k..]
}

/// Returns the indices `0..buf.len()` ordered so the first `k` refer to
/// the `k` largest elements (descending). Does not reorder `buf`.
///
/// Useful when elements are expensive to move or external state is
/// keyed by position.
pub fn top_k_indices<T: Ord>(buf: &[T], k: usize) -> Vec<usize> {
    let n = buf.len();
    assert!(k <= n, "k={k} exceeds length {n}");
    let mut idx: Vec<usize> = (0..n).collect();
    if k == 0 {
        return Vec::new();
    }
    if k < n {
        // Select over indices comparing through the buffer.
        idx.sort_unstable_by(|&a, &b| buf[b].cmp(&buf[a]));
    } else {
        idx.sort_unstable_by(|&a, &b| buf[b].cmp(&buf[a]));
    }
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_suffix_basic() {
        let mut v = vec![4u32, 8, 1, 9, 3, 7, 2, 6];
        assert_eq!(top_k_suffix(&mut v, 3), &[7, 8, 9]);
        // The prefix holds the rest (any order).
        let mut rest = v[..5].to_vec();
        rest.sort_unstable();
        assert_eq!(rest, vec![1, 2, 3, 4, 6]);
    }

    #[test]
    fn top_k_suffix_extremes() {
        let mut v = vec![3u32, 1, 2];
        assert_eq!(top_k_suffix(&mut v, 0), &[] as &[u32]);
        let mut v = vec![3u32, 1, 2];
        assert_eq!(top_k_suffix(&mut v, 3), &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "exceeds length")]
    fn top_k_suffix_oversized_panics() {
        let mut v = vec![1u32];
        top_k_suffix(&mut v, 2);
    }

    #[test]
    fn top_k_indices_point_at_largest() {
        let v = vec![10u32, 50, 20, 40, 30];
        let idx = top_k_indices(&v, 2);
        assert_eq!(idx, vec![1, 3]);
        // Original untouched.
        assert_eq!(v, vec![10, 50, 20, 40, 30]);
    }

    #[test]
    fn top_k_indices_zero() {
        let v = vec![1u32, 2];
        assert!(top_k_indices(&v, 0).is_empty());
    }
}
