//! Suspendable, bounded-work selection machines.
//!
//! The q-MAX algorithm de-amortizes a linear-time selection by running a
//! few of its elementary operations per stream arrival. These machines
//! make that possible: they hold the full control state of a
//! median-of-medians selection (or of a three-way partition) as plain
//! data — an explicit frame stack and loop counters — so the computation
//! can be advanced by any number of *elementary operations* (element
//! comparisons / swaps) at a time, with the buffer borrowed only for the
//! duration of each [`NthElementMachine::step`] call.
//!
//! Because the machines address the buffer by index range and never hold
//! a borrow across steps, the caller is free to mutate the buffer
//! *outside* the machine's `[lo, hi)` range between steps. q-MAX uses
//! this to insert arriving items into one region of its array while the
//! selection runs over the other region.

use core::cmp::Ordering;

/// Ranges of at most this many elements are solved by direct insertion
/// sort rather than recursive selection.
const SMALL: usize = 24;

/// Conservative upper bound on the total number of elementary operations
/// the [`NthElementMachine`] performs for a range of `n` elements:
/// `total_ops <= WORK_BOUND_FACTOR * n + WORK_BOUND_FACTOR`.
///
/// The BFPRT recurrence `T(n) = T(n/5) + T(7n/10) + c*n` solves to
/// `T(n) = 10*c*n`; our per-element constant `c` (group medians ~2.4 ops,
/// partition ~2 ops) gives `T(n) ~ 45n`. The factor below adds headroom
/// for the insertion-sort base cases. The de-amortized q-MAX uses it to
/// size its per-arrival operation budget.
pub const WORK_BOUND_FACTOR: usize = 64;

/// Progress report of a machine step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineStatus {
    /// More steps are required.
    InProgress,
    /// The computation has completed; results may be read.
    Finished,
}

/// Comparison direction of a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Natural order: the machine selects the k-th **smallest**.
    Ascending,
    /// Reversed order: the machine selects the k-th **largest**.
    Descending,
}

impl Direction {
    #[inline]
    pub(crate) fn cmp<T: Ord>(self, a: &T, b: &T) -> Ordering {
        match self {
            Direction::Ascending => a.cmp(b),
            Direction::Descending => b.cmp(a),
        }
    }
}

/// Control state of one selection frame.
#[derive(Debug)]
enum Phase<T> {
    /// Frame freshly (re-)entered; dispatch on range size.
    Start,
    /// Insertion-sorting a small range; `i` is the next element to place.
    SmallSort { i: usize },
    /// Packing group-of-5 medians to the front of the range.
    Medians { next_group: usize, packed: usize },
    /// A child frame is selecting the median of the packed medians.
    AwaitPivot,
    /// Three-way partition around `pivot` in progress.
    Partition {
        lt: usize,
        i: usize,
        gt: usize,
        pivot: T,
    },
}

#[derive(Debug)]
struct Frame<T> {
    lo: usize,
    hi: usize,
    /// Absolute index at which the sought order statistic must land.
    target: usize,
    phase: Phase<T>,
}

/// A suspendable `nth_element`: rearranges `buf[lo..hi]` so that the
/// `k`-th element in the machine's direction order ends at index
/// `lo + k`, with all "smaller" elements before it and all "larger"
/// after (smaller/larger meant in the direction order).
///
/// Uses median-of-medians pivots throughout, so the total work is
/// worst-case linear: at most [`WORK_BOUND_FACTOR`]` * (hi - lo)`
/// elementary operations regardless of input order.
///
/// ```
/// use qmax_select::{Direction, MachineStatus, NthElementMachine};
/// let mut buf = vec![5, 1, 9, 3, 7, 2, 8, 0, 6, 4, 11, 13, 12, 15, 14,
///                    21, 20, 23, 22, 25, 24, 27, 26, 29, 28, 31, 30];
/// let mut m = NthElementMachine::new(0, buf.len(), 4, Direction::Ascending);
/// while m.step(&mut buf, 8) == MachineStatus::InProgress {}
/// assert_eq!(buf[4], 4);
/// ```
#[derive(Debug)]
pub struct NthElementMachine<T> {
    frames: Vec<Frame<T>>,
    dir: Direction,
    result: Option<usize>,
    total_ops: u64,
    max_step_ops: u64,
}

impl<T: Ord + Clone> NthElementMachine<T> {
    /// Creates a machine that will place the `k`-th element (0-based) of
    /// `buf[lo..hi]` — in `dir` order — at index `lo + k`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or `k` is out of range.
    pub fn new(lo: usize, hi: usize, k: usize, dir: Direction) -> Self {
        assert!(lo < hi, "empty selection range [{lo}, {hi})");
        assert!(k < hi - lo, "selection index {k} out of range {}", hi - lo);
        NthElementMachine {
            frames: vec![Frame {
                lo,
                hi,
                target: lo + k,
                phase: Phase::Start,
            }],
            dir,
            result: None,
            total_ops: 0,
            max_step_ops: 0,
        }
    }

    /// Whether the selection has completed.
    pub fn is_finished(&self) -> bool {
        self.result.is_some()
    }

    /// Absolute index of the selected element once finished.
    pub fn result_index(&self) -> Option<usize> {
        self.result
    }

    /// Total elementary operations performed so far.
    pub fn total_ops(&self) -> u64 {
        self.total_ops
    }

    /// Largest number of elementary operations performed by a single
    /// [`step`](Self::step) call (may exceed the budget by the cost of
    /// one indivisible unit, a bounded constant).
    pub fn max_step_ops(&self) -> u64 {
        self.max_step_ops
    }

    /// Runs at most ~`budget` elementary operations of the selection.
    ///
    /// A step never stops in the middle of an indivisible unit (placing
    /// one element of an insertion sort, computing one group-of-5
    /// median), so the actual work may exceed `budget` by a small
    /// constant.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than the machine's configured range.
    #[inline]
    pub fn step(&mut self, buf: &mut [T], budget: usize) -> MachineStatus {
        if self.result.is_some() {
            return MachineStatus::Finished;
        }
        let mut rem = budget as i64;
        let step_start = self.total_ops;
        while rem > 0 && self.result.is_none() {
            rem -= self.advance_unit(buf, rem as u64) as i64;
        }
        let used = self.total_ops - step_start;
        if used > self.max_step_ops {
            self.max_step_ops = used;
        }
        if self.result.is_some() {
            MachineStatus::Finished
        } else {
            MachineStatus::InProgress
        }
    }

    /// Runs the machine to completion and returns the index of the
    /// selected element.
    pub fn run_to_completion(&mut self, buf: &mut [T]) -> usize {
        while self.result.is_none() {
            self.advance_unit(buf, u64::MAX / 4);
        }
        self.result.expect("machine just finished")
    }

    /// Executes one unit of work of at most ~`max_cost` operations;
    /// returns its operation cost.
    fn advance_unit(&mut self, buf: &mut [T], max_cost: u64) -> u64 {
        let dir = self.dir;
        let fidx = self.frames.len() - 1;
        let frame = &mut self.frames[fidx];
        assert!(frame.hi <= buf.len(), "buffer shorter than machine range");
        let (lo, hi, target) = (frame.lo, frame.hi, frame.target);
        let cost: u64;
        enum Outcome {
            Continue,
            FrameDone,
            PushChild { clo: usize, chi: usize, ck: usize },
        }
        let outcome;
        match &mut frame.phase {
            Phase::Start => {
                cost = 1;
                if hi - lo <= SMALL {
                    frame.phase = Phase::SmallSort { i: lo + 1 };
                } else {
                    frame.phase = Phase::Medians {
                        next_group: lo,
                        packed: 0,
                    };
                }
                outcome = Outcome::Continue;
            }
            Phase::SmallSort { i } => {
                if *i >= hi {
                    outcome = Outcome::FrameDone;
                    cost = 1;
                } else {
                    let mut j = *i;
                    let mut moved = 1u64;
                    while j > lo && dir.cmp(&buf[j - 1], &buf[j]) == Ordering::Greater {
                        buf.swap(j - 1, j);
                        j -= 1;
                        moved += 1;
                    }
                    *i += 1;
                    cost = moved;
                    outcome = Outcome::Continue;
                }
            }
            Phase::Medians { next_group, packed } => {
                if *next_group >= hi {
                    let ngroups = *packed;
                    debug_assert!(ngroups >= 1);
                    frame.phase = Phase::AwaitPivot;
                    outcome = Outcome::PushChild {
                        clo: lo,
                        chi: lo + ngroups,
                        ck: (ngroups - 1) / 2,
                    };
                    cost = 1;
                } else {
                    let g = *next_group;
                    let len = (hi - g).min(5);
                    // Sort the group in the machine's direction; the
                    // median index is the same either way.
                    for a in g + 1..g + len {
                        let mut j = a;
                        while j > g && dir.cmp(&buf[j - 1], &buf[j]) == Ordering::Greater {
                            buf.swap(j - 1, j);
                            j -= 1;
                        }
                    }
                    let median = g + (len - 1) / 2;
                    buf.swap(lo + *packed, median);
                    *packed += 1;
                    *next_group += len;
                    cost = 12;
                    outcome = Outcome::Continue;
                }
            }
            Phase::AwaitPivot => {
                unreachable!("AwaitPivot frames are resumed only via child completion")
            }
            Phase::Partition { lt, i, gt, pivot } => {
                if *i < *gt {
                    // Process a whole budget's worth of elements in one
                    // tight loop — this is the machine's hot path.
                    let mut c = 0u64;
                    while *i < *gt && c < max_cost {
                        match dir.cmp(&buf[*i], pivot) {
                            Ordering::Less => {
                                buf.swap(*lt, *i);
                                *lt += 1;
                                *i += 1;
                            }
                            Ordering::Greater => {
                                *gt -= 1;
                                buf.swap(*i, *gt);
                            }
                            Ordering::Equal => *i += 1,
                        }
                        c += 2;
                    }
                    cost = c;
                    outcome = Outcome::Continue;
                } else {
                    // Partition complete: recurse into the side holding
                    // the target, or finish if the target is in the
                    // "equal" run.
                    let (plo, phi) = (*lt, *gt);
                    cost = 1;
                    if target < plo {
                        frame.hi = plo;
                        frame.phase = Phase::Start;
                        outcome = Outcome::Continue;
                    } else if target >= phi {
                        frame.lo = phi;
                        frame.phase = Phase::Start;
                        outcome = Outcome::Continue;
                    } else {
                        outcome = Outcome::FrameDone;
                    }
                }
            }
        }
        self.total_ops += cost;
        match outcome {
            Outcome::Continue => {}
            Outcome::PushChild { clo, chi, ck } => {
                self.frames.push(Frame {
                    lo: clo,
                    hi: chi,
                    target: clo + ck,
                    phase: Phase::Start,
                });
            }
            Outcome::FrameDone => {
                let done = self.frames.pop().expect("frame stack non-empty");
                let t = done.target;
                match self.frames.last_mut() {
                    None => self.result = Some(t),
                    Some(parent) => {
                        let Phase::AwaitPivot = parent.phase else {
                            unreachable!("parent of a completed frame must await its pivot")
                        };
                        // The child has placed the median-of-medians at
                        // its target index; use its value as the pivot.
                        let (plo, phi) = (parent.lo, parent.hi);
                        parent.phase = Phase::Partition {
                            lt: plo,
                            i: plo,
                            gt: phi,
                            pivot: buf[t].clone(),
                        };
                    }
                }
            }
        }
        cost
    }
}

/// A suspendable three-way partition of `buf[lo..hi]` around a fixed
/// pivot value.
///
/// After completion, with `(lt, gt) = machine.result().unwrap()`:
/// * `buf[lo..lt]` holds elements ordered strictly before the pivot,
/// * `buf[lt..gt]` holds elements equal to the pivot,
/// * `buf[gt..hi]` holds elements ordered strictly after the pivot,
///
/// all in the machine's [`Direction`] order.
#[derive(Debug)]
pub struct PartitionMachine<T> {
    lo: usize,
    hi: usize,
    lt: usize,
    i: usize,
    gt: usize,
    pivot: T,
    dir: Direction,
    total_ops: u64,
}

impl<T: Ord> PartitionMachine<T> {
    /// Creates a partition machine for `buf[lo..hi]` around `pivot`.
    pub fn new(lo: usize, hi: usize, pivot: T, dir: Direction) -> Self {
        assert!(lo <= hi, "invalid partition range [{lo}, {hi})");
        PartitionMachine {
            lo,
            hi,
            lt: lo,
            i: lo,
            gt: hi,
            pivot,
            dir,
            total_ops: 0,
        }
    }

    /// The configured `[lo, hi)` range.
    pub fn range(&self) -> (usize, usize) {
        (self.lo, self.hi)
    }

    /// Whether the partition has completed.
    pub fn is_finished(&self) -> bool {
        self.i >= self.gt
    }

    /// `(lt, gt)` boundaries once finished.
    pub fn result(&self) -> Option<(usize, usize)> {
        if self.is_finished() {
            Some((self.lt, self.gt))
        } else {
            None
        }
    }

    /// Total elementary operations performed so far.
    pub fn total_ops(&self) -> u64 {
        self.total_ops
    }

    /// Processes at most `budget` elements of the partition.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than the machine's configured range.
    pub fn step(&mut self, buf: &mut [T], budget: usize) -> MachineStatus {
        assert!(self.hi <= buf.len(), "buffer shorter than machine range");
        let mut rem = budget;
        while rem > 0 && self.i < self.gt {
            match self.dir.cmp(&buf[self.i], &self.pivot) {
                Ordering::Less => {
                    buf.swap(self.lt, self.i);
                    self.lt += 1;
                    self.i += 1;
                }
                Ordering::Greater => {
                    self.gt -= 1;
                    buf.swap(self.i, self.gt);
                }
                Ordering::Equal => self.i += 1,
            }
            self.total_ops += 2;
            rem -= 1;
        }
        if self.is_finished() {
            MachineStatus::Finished
        } else {
            MachineStatus::InProgress
        }
    }

    /// Runs the machine to completion and returns the `(lt, gt)` bounds.
    pub fn run_to_completion(&mut self, buf: &mut [T]) -> (usize, usize) {
        while self.step(buf, usize::MAX) == MachineStatus::InProgress {}
        self.result().expect("machine just finished")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn run_machine(v: &mut [u32], k: usize, dir: Direction, budget: usize) -> usize {
        let mut m = NthElementMachine::new(0, v.len(), k, dir);
        let mut guard = 0usize;
        while m.step(v, budget) == MachineStatus::InProgress {
            guard += 1;
            assert!(guard < 100_000_000, "machine failed to terminate");
        }
        m.result_index().unwrap()
    }

    #[test]
    fn ascending_selects_kth_smallest() {
        let mut state = 7u64;
        for n in [1usize, 5, 24, 25, 100, 1000] {
            let base: Vec<u32> = (0..n).map(|_| (splitmix(&mut state) % 97) as u32).collect();
            let mut sorted = base.clone();
            sorted.sort_unstable();
            for k in [0, n / 2, n - 1] {
                let mut v = base.clone();
                let idx = run_machine(&mut v, k, Direction::Ascending, 16);
                assert_eq!(idx, k);
                assert_eq!(v[k], sorted[k]);
                assert!(v[..k].iter().all(|x| *x <= v[k]));
                assert!(v[k + 1..].iter().all(|x| *x >= v[k]));
            }
        }
    }

    #[test]
    fn descending_selects_kth_largest() {
        let mut state = 42u64;
        for n in [3usize, 50, 333] {
            let base: Vec<u32> = (0..n).map(|_| (splitmix(&mut state) % 31) as u32).collect();
            let mut sorted = base.clone();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            for k in [0, n / 2, n - 1] {
                let mut v = base.clone();
                run_machine(&mut v, k, Direction::Descending, 7);
                assert_eq!(v[k], sorted[k]);
                assert!(v[..k].iter().all(|x| *x >= v[k]));
                assert!(v[k + 1..].iter().all(|x| *x <= v[k]));
            }
        }
    }

    #[test]
    fn adversarial_inputs_stay_within_work_bound() {
        for n in [100usize, 1000, 5000] {
            let patterns: Vec<Vec<u32>> = vec![
                (0..n as u32).collect(),
                (0..n as u32).rev().collect(),
                vec![3; n],
                (0..n as u32).map(|x| x % 2).collect(),
            ];
            for base in patterns {
                let mut v = base.clone();
                let mut m = NthElementMachine::new(0, n, n / 2, Direction::Ascending);
                m.run_to_completion(&mut v);
                assert!(
                    m.total_ops() <= (WORK_BOUND_FACTOR * n + WORK_BOUND_FACTOR) as u64,
                    "ops {} exceed bound for n={n}",
                    m.total_ops()
                );
            }
        }
    }

    #[test]
    fn step_budget_is_respected_up_to_unit_cost() {
        let mut state = 3u64;
        let n = 2000;
        let mut v: Vec<u32> = (0..n).map(|_| splitmix(&mut state) as u32).collect();
        let mut m = NthElementMachine::new(0, n, 100, Direction::Ascending);
        while m.step(&mut v, 10) == MachineStatus::InProgress {}
        // A unit costs at most ~SMALL ops (one insertion-sort placement).
        assert!(m.max_step_ops() <= 10 + SMALL as u64 + 2);
    }

    #[test]
    fn machine_ignores_buffer_outside_range() {
        let mut state = 5u64;
        let n = 500;
        let mut v: Vec<u32> = (0..n + 50)
            .map(|_| (splitmix(&mut state) % 1000) as u32)
            .collect();
        let frozen_prefix: Vec<u32> = v[..25].to_vec();
        let mut expect: Vec<u32> = v[25..25 + n].to_vec();
        expect.sort_unstable();
        let mut m = NthElementMachine::new(25, 25 + n, 77, Direction::Ascending);
        let mut tick = 0u32;
        while m.step(&mut v, 5) == MachineStatus::InProgress {
            // Mutate the regions outside [25, 525) between steps.
            v[tick as usize % 25] = tick;
            v[525 + (tick as usize % 25)] = tick;
            tick += 1;
        }
        assert_eq!(v[25 + 77], expect[77]);
        let _ = frozen_prefix;
    }

    #[test]
    fn partition_machine_partitions() {
        let mut state = 9u64;
        let n = 300;
        let mut v: Vec<u32> = (0..n).map(|_| (splitmix(&mut state) % 10) as u32).collect();
        let mut m = PartitionMachine::new(10, 290, 5u32, Direction::Ascending);
        while m.step(&mut v, 13) == MachineStatus::InProgress {}
        let (lt, gt) = m.result().unwrap();
        assert!(v[10..lt].iter().all(|&x| x < 5));
        assert!(v[lt..gt].iter().all(|&x| x == 5));
        assert!(v[gt..290].iter().all(|&x| x > 5));
    }

    #[test]
    fn partition_machine_descending() {
        let mut v: Vec<u32> = vec![1, 9, 5, 5, 3, 8, 0, 5];
        let mut m = PartitionMachine::new(0, 8, 5u32, Direction::Descending);
        while m.step(&mut v, 3) == MachineStatus::InProgress {}
        let (lt, gt) = m.result().unwrap();
        // Descending: "before pivot" means greater values.
        assert!(v[..lt].iter().all(|&x| x > 5));
        assert!(v[lt..gt].iter().all(|&x| x == 5));
        assert!(v[gt..].iter().all(|&x| x < 5));
    }

    #[test]
    fn empty_partition_range_is_finished_immediately() {
        let mut v: Vec<u32> = vec![1, 2, 3];
        let mut m = PartitionMachine::new(1, 1, 2u32, Direction::Ascending);
        assert_eq!(m.step(&mut v, 10), MachineStatus::Finished);
        assert_eq!(m.result(), Some((1, 1)));
    }

    #[test]
    #[should_panic(expected = "empty selection range")]
    fn empty_selection_range_panics() {
        let _ = NthElementMachine::<u32>::new(3, 3, 0, Direction::Ascending);
    }

    #[test]
    fn finished_machine_steps_are_noops() {
        let mut v: Vec<u32> = (0..200).rev().collect();
        let mut m = NthElementMachine::new(0, 200, 50, Direction::Ascending);
        m.run_to_completion(&mut v);
        let ops = m.total_ops();
        let snapshot = v.clone();
        assert_eq!(m.step(&mut v, 1000), MachineStatus::Finished);
        assert_eq!(m.total_ops(), ops, "finished machine must do no work");
        assert_eq!(v, snapshot, "finished machine must not touch the buffer");
    }

    #[test]
    fn single_element_range() {
        let mut v = vec![9u32, 42, 7];
        let mut m = NthElementMachine::new(1, 2, 0, Direction::Descending);
        assert_eq!(m.step(&mut v, 100), MachineStatus::Finished);
        assert_eq!(m.result_index(), Some(1));
        assert_eq!(v, vec![9, 42, 7]);
    }

    #[test]
    fn huge_budget_completes_in_one_step() {
        let mut v: Vec<u32> = (0..5000).map(|x| x * 37 % 991).collect();
        let mut m = NthElementMachine::new(0, 5000, 2500, Direction::Ascending);
        assert_eq!(m.step(&mut v, usize::MAX / 8), MachineStatus::Finished);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(v[2500], sorted[2500]);
    }
}
