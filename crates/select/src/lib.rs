//! Selection algorithms used by the q-MAX data structures.
//!
//! The q-MAX algorithm (Ben Basat et al., IMC 2019) maintains the `q`
//! largest items of a stream in worst-case constant time per update. Its
//! core trick is that finding an order statistic of an `O(q)`-sized array
//! takes `O(q)` time ([`nth_smallest`] / [`mom_nth_smallest`]), and that
//! this linear-time computation can be *de-amortized*: broken into many
//! small, bounded-work steps that are interleaved with arrivals
//! ([`NthElementMachine`]).
//!
//! This crate provides:
//!
//! * [`nth_smallest`] — introselect (quickselect with a median-of-medians
//!   fallback): expected linear, worst-case linear.
//! * [`mom_nth_smallest`] — pure BFPRT median-of-medians selection:
//!   worst-case linear with a larger constant.
//! * [`NthElementMachine`] — a suspendable selection machine. Each call to
//!   [`NthElementMachine::step`] performs at most `budget` elementary
//!   operations and returns whether the selection has completed. Total
//!   work is bounded by `WORK_BOUND_FACTOR * n`, so running the machine
//!   with a per-step budget of `WORK_BOUND_FACTOR * n / s` completes it
//!   within `s` steps.
//! * [`PartitionMachine`] — a suspendable three-way partition around a
//!   fixed pivot value.
//! * [`paired_nth_smallest`] / [`PairedNthElementMachine`] —
//!   structure-of-arrays variants that select on a dense value lane and
//!   mirror the permutation into a parallel id lane, so pivot scans
//!   stream over 8-byte elements instead of 16-byte structs.
//! * low-level helpers: [`partition3`], [`insertion_sort`],
//!   [`median_of_five`].
//!
//! All algorithms operate in place on caller-owned slices; the machines
//! hold only indices, never borrows, so the caller may mutate *other*
//! regions of the same buffer between steps (this is exactly how q-MAX
//! inserts arrivals into one region while selection runs on another).

#![warn(missing_docs)]
// `unsafe` is denied crate-wide rather than forbidden: the only
// exception is the `kernels` module, whose SIMD intrinsics require it
// (each block carries a SAFETY argument; see DESIGN.md §4.3).
#![deny(unsafe_code)]

pub mod kernels;
mod machine;
mod partition;
pub mod policy;
mod quickselect;
mod soa;
mod topk;

pub use kernels::{prefetch_read, Kernel, KernelKind, ProbeKernel, RunPred, GROUP_WIDTH};
pub use machine::{
    Direction, MachineStatus, NthElementMachine, PartitionMachine, WORK_BOUND_FACTOR,
};
pub use partition::{insertion_sort, median_of_five, partition3};
pub use policy::{calibrate, lane_is_u64, BackendChoice, BackendPolicy, CostModel, PolicyMode};
pub use quickselect::{mom_nth_smallest, nth_largest, nth_smallest};
pub use soa::{
    paired_insertion_sort, paired_nth_smallest, paired_partition3, PairedNthElementMachine,
};
pub use topk::{top_k_indices, top_k_suffix};
