//! Portable reference kernels.
//!
//! These define the semantics the SIMD paths must reproduce exactly on
//! the defined output region: same cursors, same counts, same region
//! contents in the same order. They are also the fallback for lane
//! types other than `u64`, for CPUs without the vector features, and
//! under `QMAX_FORCE_SCALAR`.

use super::RunPred;

/// Ψ-filter batch admit: branchless store-then-conditionally-advance,
/// identical to the hand-rolled loops previously inlined in
/// `qmax-core`'s SoA backends.
#[inline]
pub(super) fn admit_pairs<I: Copy, V: Ord + Copy>(
    items: &[(I, V)],
    threshold: Option<V>,
    vals: &mut [V],
    ids: &mut [I],
    mut w: usize,
    hard_end: usize,
) -> usize {
    debug_assert!(
        w + items.len() <= hard_end && hard_end <= vals.len().min(ids.len()),
        "admit window out of bounds: w={w} items={} hard_end={hard_end}",
        items.len()
    );
    match threshold {
        Some(t) => {
            for &(id, v) in items {
                vals[w] = v;
                ids[w] = id;
                w += usize::from(v > t);
            }
        }
        None => {
            for &(id, v) in items {
                vals[w] = v;
                ids[w] = id;
                w += 1;
            }
        }
    }
    w
}

#[inline]
pub(super) fn count_gt_eq<V: Ord + Copy>(vals: &[V], pivot: V) -> (usize, usize) {
    let mut gt = 0usize;
    let mut eq = 0usize;
    for &v in vals {
        gt += usize::from(v > pivot);
        eq += usize::from(v == pivot);
    }
    (gt, eq)
}

#[inline]
pub(super) fn min_max<V: Ord + Copy>(vals: &[V]) -> Option<(V, V)> {
    let mut it = vals.iter();
    let &first = it.next()?;
    let (mut mn, mut mx) = (first, first);
    for &v in it {
        if v < mn {
            mn = v;
        }
        if v > mx {
            mx = v;
        }
    }
    Some((mn, mx))
}

/// Stable three-way partition into descending region order; `ngt`/`neq`
/// are the pre-computed class counts (from [`count_gt_eq`]).
#[inline]
pub(super) fn partition3_desc<I: Copy, V: Ord + Copy>(
    vals: &[V],
    ids: &[I],
    pivot: V,
    ngt: usize,
    neq: usize,
    out_vals: &mut [V],
    out_ids: &mut [I],
) -> (usize, usize) {
    let n = vals.len();
    let eq_end = ngt + neq;
    let (mut wg, mut we, mut wl) = (0usize, ngt, eq_end);
    for i in 0..n {
        let (v, id) = (vals[i], ids[i]);
        match v.cmp(&pivot) {
            core::cmp::Ordering::Greater => {
                out_vals[wg] = v;
                out_ids[wg] = id;
                wg += 1;
            }
            core::cmp::Ordering::Equal => {
                out_vals[we] = v;
                out_ids[we] = id;
                we += 1;
            }
            core::cmp::Ordering::Less => {
                out_vals[wl] = v;
                out_ids[wl] = id;
                wl += 1;
            }
        }
    }
    debug_assert!(
        wg == ngt && we == eq_end && wl == n,
        "partition counts inconsistent: wg={wg}/{ngt} we={we}/{eq_end} wl={wl}/{n}"
    );
    (ngt, eq_end)
}

#[inline]
pub(super) fn prefix_class_run<V: Ord + Copy>(vals: &[V], pivot: V, pred: RunPred) -> usize {
    let mut run = 0usize;
    for &v in vals {
        let hit = match pred {
            RunPred::Lt => v < pivot,
            RunPred::Gt => v > pivot,
            RunPred::Eq => v == pivot,
        };
        if !hit {
            break;
        }
        run += 1;
    }
    run
}
