//! Vectorized hot-loop kernels with runtime SIMD dispatch.
//!
//! q-MAX's three hot loops are all branch-light linear scans — exactly
//! the shape that vectorizes:
//!
//! * **(a) Ψ-filter batch admit** — compress the values `> Ψ` of an
//!   arrival batch into the buffer lanes ([`Kernel::admit_pairs`]);
//! * **(b) three-way partition** — split a value lane around a pivot
//!   with the same permutation mirrored into the id lane
//!   ([`Kernel::partition3_desc`], plus the counting pass
//!   [`Kernel::count_gt_eq`] and the machine assist
//!   [`Kernel::prefix_class_run`]);
//! * **(c) pivot-sample scan** — min/max sweep plus a deterministic
//!   `O(√n)` quantile sample that yields a near-exact compaction pivot
//!   ([`Kernel::min_max`], [`Kernel::sample_pivot`]; the SQUID approach
//!   of Ben Basat et al., see PAPERS.md).
//!
//! A [`Kernel`] is resolved **once per structure** ([`Kernel::detect`])
//! and then dispatches each call to an AVX-512F or AVX2 (x86_64) or
//! NEON (aarch64) implementation when
//!
//! 1. the CPU reports the feature at runtime
//!    (`is_x86_feature_detected!` / `is_aarch64_feature_detected!`),
//! 2. the lane type is exactly `u64` (checked via [`TypeId`]; the SIMD
//!    paths compare unsigned 64-bit lanes), and
//! 3. `QMAX_FORCE_SCALAR` is not set in the environment (CI uses this
//!    to pin the portable path).
//!
//! Otherwise every call runs the always-correct scalar fallback in
//! [`scalar`] — the *same* code the SIMD paths must match bit-for-bit
//! on the defined output region (differential property tests in
//! `tests/proptest_kernels.rs` pin this down).
//!
//! # Safety
//!
//! This is the only module in the crate allowed to use `unsafe` (the
//! crate root is `#![deny(unsafe_code)]`). The obligations are local
//! and uniform:
//!
//! * every `#[target_feature]` function is only reachable through a
//!   [`Kernel`] whose `kind` was set after the matching runtime
//!   feature check;
//! * every slice reinterpretation is gated on a `TypeId` equality
//!   proving the cast is an identity (`V == u64`);
//! * every SIMD store stays inside the caller-provided bounds: wide
//!   stores are only issued when `cursor + LANES <= limit`, with a
//!   scalar tail for the remainder.

#![allow(unsafe_code)]

use core::any::TypeId;
use core::marker::PhantomData;
use std::sync::OnceLock;

#[cfg(target_arch = "x86_64")]
mod avx2;
#[cfg(target_arch = "x86_64")]
mod avx512;
#[cfg(target_arch = "aarch64")]
mod neon;
mod probe;
mod scalar;

pub use probe::{prefetch_read, ProbeKernel, GROUP_WIDTH};

/// Which implementation a [`Kernel`] dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Portable scalar code (always available, always correct).
    Scalar,
    /// AVX2 over 4×u64 lanes (x86_64, runtime-detected).
    Avx2,
    /// AVX-512F over 8×u64 lanes with native masked compress stores
    /// (x86_64, runtime-detected, preferred over AVX2 when present).
    Avx512,
    /// NEON over 2×u64 lanes (aarch64, runtime-detected).
    Neon,
}

/// Predicate for [`Kernel::prefix_class_run`]: which class of elements
/// (relative to the pivot) the run counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunPred {
    /// Elements strictly below the pivot.
    Lt,
    /// Elements strictly above the pivot.
    Gt,
    /// Elements equal to the pivot.
    Eq,
}

/// Seed base for the deterministic pivot sample; a structure's k-th
/// compaction samples with `PIVOT_SEED ^ k`, so replays are exact.
pub const PIVOT_SEED: u64 = 0x5A3C_F70D_9E1B_2468;

/// Buffers below this size skip sampled-pivot compaction entirely: the
/// sample would be a sizable fraction of the buffer and plain exact
/// selection is already cheap.
pub const SAMPLED_COMPACT_MIN: usize = 1024;

/// Residual tolerance for a sampled pivot on an `n`-element buffer:
/// when the partition leaves an exact-select residue larger than this,
/// the compaction counts as a fallback to exact selection (the result
/// is exact either way; the counter tracks sample quality).
#[inline]
pub fn pivot_band(n: usize) -> usize {
    core::cmp::max(64, n / 8)
}

/// Sample size for an `n`-element buffer: `O(√n)`, clamped so tiny
/// buffers are not over-sampled and huge ones stay cheap.
#[inline]
pub fn sample_size(n: usize) -> usize {
    (4 * n.isqrt()).clamp(64, 2048).min(n)
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic positions `sample_pivot` draws for an `n`-element
/// buffer under `seed` (duplicates allowed). Exposed so tests can
/// predict — and adversarially defeat — the sample.
pub fn sample_positions(n: usize, seed: u64, out: &mut Vec<usize>) {
    out.clear();
    let mut s = seed;
    for _ in 0..sample_size(n) {
        out.push((splitmix64(&mut s) % n as u64) as usize);
    }
}

/// Runtime feature detection for the `u64` lane kernels; cached by the
/// standard library's own detection machinery.
fn detect_arch_kind() -> KernelKind {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return KernelKind::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return KernelKind::Avx2;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            return KernelKind::Neon;
        }
    }
    KernelKind::Scalar
}

fn force_scalar() -> bool {
    static FORCE: OnceLock<bool> = OnceLock::new();
    *FORCE.get_or_init(|| std::env::var_os("QMAX_FORCE_SCALAR").is_some_and(|v| v != "0"))
}

#[inline]
fn is_u64_lane<T: 'static>() -> bool {
    TypeId::of::<T>() == TypeId::of::<u64>()
}

/// Reinterprets a `&[V]` as `&[u64]` when `V` *is* `u64`.
#[inline]
fn lane_u64<V: 'static>(v: &[V]) -> Option<&[u64]> {
    if is_u64_lane::<V>() {
        // SAFETY: TypeId equality proves V is exactly u64, so this is
        // an identity cast (same layout, same provenance, same length).
        Some(unsafe { core::slice::from_raw_parts(v.as_ptr() as *const u64, v.len()) })
    } else {
        None
    }
}

/// Reinterprets a `&mut [V]` as `&mut [u64]` when `V` *is* `u64`.
#[inline]
fn lane_u64_mut<V: 'static>(v: &mut [V]) -> Option<&mut [u64]> {
    if is_u64_lane::<V>() {
        // SAFETY: as in `lane_u64`; the unique borrow is carried over.
        Some(unsafe { core::slice::from_raw_parts_mut(v.as_mut_ptr() as *mut u64, v.len()) })
    } else {
        None
    }
}

/// Reinterprets `&[(I, V)]` as `&[(u64, u64)]` when both are `u64`.
#[inline]
fn pairs_u64<I: 'static, V: 'static>(p: &[(I, V)]) -> Option<&[(u64, u64)]> {
    if is_u64_lane::<I>() && is_u64_lane::<V>() {
        // SAFETY: TypeId equality proves (I, V) is exactly (u64, u64).
        Some(unsafe { core::slice::from_raw_parts(p.as_ptr() as *const (u64, u64), p.len()) })
    } else {
        None
    }
}

/// Bit-copies a `V` into a `u64`; only called behind `is_u64_lane::<V>`.
#[inline]
fn val_u64<V: Copy + 'static>(v: V) -> u64 {
    debug_assert!(is_u64_lane::<V>());
    // SAFETY: guarded by the TypeId check at every call site, so V is
    // u64 and the copy is an identity.
    unsafe { core::mem::transmute_copy(&v) }
}

/// A per-structure dispatch handle for the vectorized kernels.
///
/// Resolve once with [`Kernel::detect`] (runtime feature detection) or
/// pin the portable path with [`Kernel::scalar`]; each method then
/// routes to the best implementation for the lane type. All methods
/// produce output **identical** to the scalar reference on the defined
/// region, so swapping kernels never changes a caller's observable
/// behavior.
pub struct Kernel<V> {
    kind: KernelKind,
    _lane: PhantomData<fn() -> V>,
}

impl<V> Clone for Kernel<V> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<V> Copy for Kernel<V> {}
impl<V> core::fmt::Debug for Kernel<V> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Kernel").field("kind", &self.kind).finish()
    }
}

impl<V: Ord + Copy + 'static> Kernel<V> {
    /// Resolves the best kernel for `V` on this CPU: AVX-512F, AVX2,
    /// or NEON (in that preference order) when the feature is present
    /// *and* `V` is `u64`, scalar otherwise (or when the
    /// `QMAX_FORCE_SCALAR` environment variable is set).
    pub fn detect() -> Self {
        let kind = if !is_u64_lane::<V>() || force_scalar() {
            KernelKind::Scalar
        } else {
            detect_arch_kind()
        };
        Kernel {
            kind,
            _lane: PhantomData,
        }
    }

    /// The portable scalar kernel, unconditionally.
    pub fn scalar() -> Self {
        Kernel {
            kind: KernelKind::Scalar,
            _lane: PhantomData,
        }
    }

    /// Which implementation this handle dispatches to.
    pub fn kind(&self) -> KernelKind {
        self.kind
    }

    /// Whether calls dispatch to a SIMD implementation.
    pub fn is_vectorized(&self) -> bool {
        self.kind != KernelKind::Scalar
    }

    /// Kernel (a): Ψ-filter batch admit. Streams `items` into the
    /// parallel lanes starting at write cursor `w`: every item is
    /// conceptually stored at the cursor and the cursor advances only
    /// for survivors (`val > threshold`; everything survives when
    /// `threshold` is `None`). Returns the new cursor.
    ///
    /// Only `vals[w..ret]` / `ids[w..ret]` are defined output; slots at
    /// and beyond the returned cursor (up to `hard_end`) may hold
    /// arbitrary rejected-item residue, exactly like the scalar
    /// overwrite trick. No store ever touches `vals[hard_end..]`.
    ///
    /// Caller contract (debug-asserted): `w + items.len() <= hard_end
    /// <= min(vals.len(), ids.len())`.
    pub fn admit_pairs<I: Copy + 'static>(
        &self,
        items: &[(I, V)],
        threshold: Option<V>,
        vals: &mut [V],
        ids: &mut [I],
        w: usize,
        hard_end: usize,
    ) -> usize {
        #[cfg(target_arch = "x86_64")]
        if matches!(self.kind, KernelKind::Avx2 | KernelKind::Avx512) {
            if let (Some(t), Some(items), Some(vals), Some(ids)) = (
                threshold,
                pairs_u64(items),
                lane_u64_mut(vals),
                lane_u64_mut(ids),
            ) {
                // SAFETY: the kind implies the matching runtime check
                // passed.
                return unsafe {
                    if self.kind == KernelKind::Avx512 {
                        avx512::admit_pairs_u64(items, val_u64(t), vals, ids, w, hard_end)
                    } else {
                        avx2::admit_pairs_u64(items, val_u64(t), vals, ids, w, hard_end)
                    }
                };
            }
        }
        #[cfg(target_arch = "aarch64")]
        if self.kind == KernelKind::Neon {
            if let (Some(t), Some(items), Some(vals), Some(ids)) = (
                threshold,
                pairs_u64(items),
                lane_u64_mut(vals),
                lane_u64_mut(ids),
            ) {
                // SAFETY: kind == Neon implies the runtime check passed.
                return unsafe { neon::admit_pairs_u64(items, val_u64(t), vals, ids, w, hard_end) };
            }
        }
        scalar::admit_pairs(items, threshold, vals, ids, w, hard_end)
    }

    /// Kernel (b), counting pass: `(#elements > pivot, #elements ==
    /// pivot)` over the value lane.
    pub fn count_gt_eq(&self, vals: &[V], pivot: V) -> (usize, usize) {
        #[cfg(target_arch = "x86_64")]
        if matches!(self.kind, KernelKind::Avx2 | KernelKind::Avx512) {
            if let Some(vals) = lane_u64(vals) {
                // SAFETY: the kind implies the matching runtime check
                // passed.
                return unsafe {
                    if self.kind == KernelKind::Avx512 {
                        avx512::count_gt_eq_u64(vals, val_u64(pivot))
                    } else {
                        avx2::count_gt_eq_u64(vals, val_u64(pivot))
                    }
                };
            }
        }
        #[cfg(target_arch = "aarch64")]
        if self.kind == KernelKind::Neon {
            if let Some(vals) = lane_u64(vals) {
                // SAFETY: kind == Neon implies the runtime check passed.
                return unsafe { neon::count_gt_eq_u64(vals, val_u64(pivot)) };
            }
        }
        scalar::count_gt_eq(vals, pivot)
    }

    /// Kernel (c), sweep pass: `(min, max)` of the value lane, `None`
    /// when empty.
    pub fn min_max(&self, vals: &[V]) -> Option<(V, V)> {
        #[cfg(target_arch = "x86_64")]
        if matches!(self.kind, KernelKind::Avx2 | KernelKind::Avx512) && !vals.is_empty() {
            if let Some(lane) = lane_u64(vals) {
                // SAFETY: the kind implies the matching runtime check
                // passed; the lane is non-empty. The result cast back
                // to V is the identity (V == u64) via transmute_copy.
                let (mn, mx) = unsafe {
                    if self.kind == KernelKind::Avx512 {
                        avx512::min_max_u64(lane)
                    } else {
                        avx2::min_max_u64(lane)
                    }
                };
                return Some((u64_val::<V>(mn), u64_val::<V>(mx)));
            }
        }
        #[cfg(target_arch = "aarch64")]
        if self.kind == KernelKind::Neon && !vals.is_empty() {
            if let Some(lane) = lane_u64(vals) {
                // SAFETY: kind == Neon implies the runtime check passed;
                // the lane is non-empty.
                let (mn, mx) = unsafe { neon::min_max_u64(lane) };
                return Some((u64_val::<V>(mn), u64_val::<V>(mx)));
            }
        }
        scalar::min_max(vals)
    }

    /// Kernel (b): stable three-way partition of `(vals, ids)` around
    /// `pivot` into the output lanes, **descending** region order —
    /// `out[0..ngt)` holds the elements `> pivot`, `out[ngt..eq_end)`
    /// the ones `== pivot`, `out[eq_end..n)` the ones `< pivot`, each
    /// region in input order. Returns `(ngt, eq_end)`.
    ///
    /// The descending order makes a q-MAX compaction's survivors a
    /// *prefix* of the output, so keeping them is a lane swap instead
    /// of an overlapping `copy_within`.
    ///
    /// # Panics
    ///
    /// Panics (debug) unless all four slices have equal length.
    pub fn partition3_desc<I: Copy + 'static>(
        &self,
        vals: &[V],
        ids: &[I],
        pivot: V,
        out_vals: &mut [V],
        out_ids: &mut [I],
    ) -> (usize, usize) {
        debug_assert!(
            vals.len() == ids.len() && vals.len() == out_vals.len() && vals.len() == out_ids.len(),
            "partition lanes differ in length"
        );
        let (ngt, neq) = self.count_gt_eq(vals, pivot);
        #[cfg(target_arch = "x86_64")]
        if matches!(self.kind, KernelKind::Avx2 | KernelKind::Avx512) {
            if let (Some(v), Some(i), Some(ov), Some(oi)) = (
                lane_u64(vals),
                lane_u64(ids),
                lane_u64_mut(out_vals),
                lane_u64_mut(out_ids),
            ) {
                // SAFETY: the kind implies the matching runtime check
                // passed.
                unsafe {
                    if self.kind == KernelKind::Avx512 {
                        avx512::partition3_desc_u64(v, i, val_u64(pivot), ngt, neq, ov, oi)
                    } else {
                        avx2::partition3_desc_u64(v, i, val_u64(pivot), ngt, neq, ov, oi)
                    }
                };
                return (ngt, ngt + neq);
            }
        }
        // NEON: the 2-lane compress does not pay for the three-stream
        // bookkeeping; aarch64 partitions take the scalar path.
        scalar::partition3_desc(vals, ids, pivot, ngt, neq, out_vals, out_ids)
    }

    /// Machine assist for kernel (b): length of the longest prefix of
    /// `vals` whose elements all satisfy `pred` relative to `pivot`.
    pub fn prefix_class_run(&self, vals: &[V], pivot: V, pred: RunPred) -> usize {
        #[cfg(target_arch = "x86_64")]
        if matches!(self.kind, KernelKind::Avx2 | KernelKind::Avx512) {
            if let Some(lane) = lane_u64(vals) {
                // SAFETY: the kind implies the matching runtime check
                // passed.
                return unsafe {
                    if self.kind == KernelKind::Avx512 {
                        avx512::prefix_class_run_u64(lane, val_u64(pivot), pred)
                    } else {
                        avx2::prefix_class_run_u64(lane, val_u64(pivot), pred)
                    }
                };
            }
        }
        #[cfg(target_arch = "aarch64")]
        if self.kind == KernelKind::Neon {
            if let Some(lane) = lane_u64(vals) {
                // SAFETY: kind == Neon implies the runtime check passed.
                return unsafe { neon::prefix_class_run_u64(lane, val_u64(pivot), pred) };
            }
        }
        scalar::prefix_class_run(vals, pivot, pred)
    }

    /// Kernel (c): estimates the value with ascending rank `rank` in
    /// `vals` from a deterministic `O(√n)` sample (positions exactly as
    /// [`sample_positions`] yields for `(vals.len(), seed)`), selecting
    /// the proportionally scaled rank within the sample. `scratch` is
    /// caller-owned so repeated compactions reuse its allocation.
    ///
    /// # Panics
    ///
    /// Panics (debug) when `vals` is empty or `rank` is out of range.
    pub fn sample_pivot(&self, vals: &[V], rank: usize, seed: u64, scratch: &mut Vec<V>) -> V {
        let n = vals.len();
        debug_assert!(rank < n, "sample rank {rank} out of range {n}");
        let m = sample_size(n);
        scratch.clear();
        let mut s = seed;
        for _ in 0..m {
            scratch.push(vals[(splitmix64(&mut s) % n as u64) as usize]);
        }
        let srank = (((rank as u128) * (m as u128)) / (n as u128)) as usize;
        let srank = srank.min(m - 1);
        crate::nth_smallest(scratch, srank);
        scratch[srank]
    }
}

/// Bit-copies a `u64` back into `V`; only called behind `is_u64_lane`.
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
#[inline]
fn u64_val<V: Copy + 'static>(v: u64) -> V {
    debug_assert!(is_u64_lane::<V>());
    // SAFETY: guarded by the TypeId check at every call site, so V is
    // u64 and the copy is an identity.
    unsafe { core::mem::transmute_copy(&v) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix(state: &mut u64) -> u64 {
        splitmix64(state)
    }

    fn zipfish(n: usize, seed: u64) -> Vec<u64> {
        // Heavy-tailed-ish deterministic values: many small, few huge.
        let mut s = seed;
        (0..n)
            .map(|_| {
                let r = splitmix(&mut s);
                let shift = (r % 48) as u32;
                r >> shift
            })
            .collect()
    }

    fn kernels() -> Vec<Kernel<u64>> {
        let mut ks = vec![Kernel::<u64>::scalar()];
        let auto = Kernel::<u64>::detect();
        if auto.is_vectorized() {
            ks.push(auto);
        }
        ks
    }

    #[test]
    fn non_u64_lane_always_scalar() {
        assert_eq!(Kernel::<u32>::detect().kind(), KernelKind::Scalar);
        assert_eq!(Kernel::<i64>::detect().kind(), KernelKind::Scalar);
        assert!(!Kernel::<u32>::detect().is_vectorized());
    }

    #[test]
    fn admit_matches_scalar_reference() {
        let scalar = Kernel::<u64>::scalar();
        for k in kernels() {
            for n in [0usize, 1, 3, 4, 5, 16, 127, 1024] {
                let items: Vec<(u64, u64)> = zipfish(n, 11)
                    .into_iter()
                    .enumerate()
                    .map(|(i, v)| (i as u64, v))
                    .collect();
                for t in [None, Some(0u64), Some(1 << 40), Some(u64::MAX)] {
                    let cap = n + 8;
                    let mut v1 = vec![0u64; cap];
                    let mut i1 = vec![0u64; cap];
                    let mut v2 = vec![0u64; cap];
                    let mut i2 = vec![0u64; cap];
                    let w1 = scalar.admit_pairs(&items, t, &mut v1, &mut i1, 3, 3 + n);
                    let w2 = k.admit_pairs(&items, t, &mut v2, &mut i2, 3, 3 + n);
                    assert_eq!(w1, w2, "cursor diverged: n={n} t={t:?} {k:?}");
                    assert_eq!(&v1[3..w1], &v2[3..w2], "values diverged");
                    assert_eq!(&i1[3..w1], &i2[3..w2], "ids diverged");
                    // Nothing past hard_end is ever touched.
                    assert!(v2[3 + n..].iter().all(|&x| x == 0));
                    assert!(i2[3 + n..].iter().all(|&x| x == 0));
                }
            }
        }
    }

    #[test]
    fn count_and_minmax_match_scalar() {
        let scalar = Kernel::<u64>::scalar();
        for k in kernels() {
            for n in [0usize, 1, 4, 7, 100, 4097] {
                let vals = zipfish(n, 5);
                for pivot in [0u64, 1, 1 << 20, u64::MAX] {
                    assert_eq!(
                        scalar.count_gt_eq(&vals, pivot),
                        k.count_gt_eq(&vals, pivot),
                        "count diverged n={n} pivot={pivot}"
                    );
                }
                assert_eq!(scalar.min_max(&vals), k.min_max(&vals), "minmax n={n}");
            }
        }
    }

    #[test]
    fn partition_is_stable_and_regions_ordered() {
        for k in kernels() {
            for n in [0usize, 1, 5, 64, 999, 4096] {
                let vals: Vec<u64> = zipfish(n, 3).into_iter().map(|v| v % 17).collect();
                let ids: Vec<u64> = (0..n as u64).collect();
                let pivot = 8u64;
                let mut ov = vec![0u64; n];
                let mut oi = vec![0u64; n];
                let (ngt, eq_end) = k.partition3_desc(&vals, &ids, pivot, &mut ov, &mut oi);
                assert!(ov[..ngt].iter().all(|&v| v > pivot), "{k:?}");
                assert!(ov[ngt..eq_end].iter().all(|&v| v == pivot));
                assert!(ov[eq_end..].iter().all(|&v| v < pivot));
                // Pairs intact and each region stable (ids ascending,
                // because the input ids were ascending).
                for (i, (&v, &id)) in ov.iter().zip(&oi).enumerate() {
                    assert_eq!(v, vals[id as usize], "pair broken at {i}");
                }
                for region in [&oi[..ngt], &oi[ngt..eq_end], &oi[eq_end..]] {
                    assert!(region.windows(2).all(|w| w[0] < w[1]), "region not stable");
                }
            }
        }
    }

    #[test]
    fn prefix_runs_match_scalar() {
        let scalar = Kernel::<u64>::scalar();
        for k in kernels() {
            for n in [0usize, 1, 7, 8, 64, 1000] {
                for pat in 0..4u64 {
                    let vals: Vec<u64> = (0..n as u64)
                        .map(|i| match pat {
                            0 => 5,
                            1 => i % 11,
                            2 => 10 - (i % 11).min(10),
                            _ => 5 + (i >= (n as u64) / 2) as u64,
                        })
                        .collect();
                    for pred in [RunPred::Lt, RunPred::Gt, RunPred::Eq] {
                        for pivot in [0u64, 5, 6, u64::MAX] {
                            assert_eq!(
                                scalar.prefix_class_run(&vals, pivot, pred),
                                k.prefix_class_run(&vals, pivot, pred),
                                "run diverged n={n} pat={pat} pred={pred:?} pivot={pivot}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn sample_pivot_is_deterministic_and_in_range() {
        let k = Kernel::<u64>::detect();
        let vals = zipfish(10_000, 77);
        let mut scratch = Vec::new();
        let p1 = k.sample_pivot(&vals, 2_000, PIVOT_SEED, &mut scratch);
        let p2 = k.sample_pivot(&vals, 2_000, PIVOT_SEED, &mut scratch);
        assert_eq!(p1, p2, "same seed must sample the same pivot");
        assert!(vals.contains(&p1), "pivot must be a buffer value");
        let p3 = k.sample_pivot(&vals, 2_000, PIVOT_SEED ^ 1, &mut scratch);
        // Different seed *may* coincide, but the positions must differ.
        let mut a = Vec::new();
        let mut b = Vec::new();
        sample_positions(vals.len(), PIVOT_SEED, &mut a);
        sample_positions(vals.len(), PIVOT_SEED ^ 1, &mut b);
        assert_ne!(a, b);
        let _ = p3;
    }

    #[test]
    fn sample_pivot_tracks_rank() {
        // On a uniform permutation the sampled quantile should land
        // within the tolerance band of the true rank.
        let k = Kernel::<u64>::detect();
        let n = 10_000usize;
        let mut vals: Vec<u64> = (0..n as u64).collect();
        // Deterministic shuffle.
        let mut s = 42u64;
        for i in (1..n).rev() {
            let j = (splitmix64(&mut s) % (i as u64 + 1)) as usize;
            vals.swap(i, j);
        }
        let mut scratch = Vec::new();
        for rank in [100usize, n / 4, n / 2, n - n / 8] {
            let p = k.sample_pivot(&vals, rank, PIVOT_SEED, &mut scratch) as usize;
            assert!(
                p.abs_diff(rank) <= pivot_band(n) * 4,
                "pivot {p} too far from rank {rank}"
            );
        }
    }
}
