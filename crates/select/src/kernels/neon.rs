//! NEON kernels over 2×u64 lanes (aarch64).
//!
//! NEON has native unsigned 64-bit compares (`vcgtq_u64`), so no sign
//! bias is needed, but only two qword lanes per vector — the compress
//! step is a four-way branch on the 2-bit survivor mask rather than a
//! shuffle table. The three-stream partition does not pay for itself at
//! this width and stays scalar (see the dispatch layer).
//!
//! # Safety
//!
//! Every function is `#[target_feature(enable = "neon")]` and must only
//! be called when `is_aarch64_feature_detected!("neon")` returned true;
//! the dispatch layer guarantees this. Wide (2-lane) stores are only
//! issued while `cursor + 2 <= limit`, with a scalar tail.

use super::RunPred;
use core::arch::aarch64::*;

/// Kernel (a): Ψ-filter admit over `(u64, u64)` pairs; `vld2q_u64`
/// deinterleaves two pairs into an id vector and a value vector.
#[target_feature(enable = "neon")]
pub(super) unsafe fn admit_pairs_u64(
    items: &[(u64, u64)],
    t: u64,
    vals: &mut [u64],
    ids: &mut [u64],
    mut w: usize,
    hard_end: usize,
) -> usize {
    debug_assert!(w + items.len() <= hard_end && hard_end <= vals.len().min(ids.len()));
    let n = items.len();
    let src = items.as_ptr() as *const u64;
    let tv = vdupq_n_u64(t);
    let mut i = 0usize;
    while i + 2 <= n && w + 2 <= hard_end {
        let pair = vld2q_u64(src.add(2 * i));
        let (idv, vv) = (pair.0, pair.1);
        let keep = vcgtq_u64(vv, tv);
        let k0 = vgetq_lane_u64::<0>(keep) != 0;
        let k1 = vgetq_lane_u64::<1>(keep) != 0;
        if k0 && k1 {
            vst1q_u64(vals.as_mut_ptr().add(w), vv);
            vst1q_u64(ids.as_mut_ptr().add(w), idv);
            w += 2;
        } else if k0 {
            vals[w] = vgetq_lane_u64::<0>(vv);
            ids[w] = vgetq_lane_u64::<0>(idv);
            w += 1;
        } else if k1 {
            vals[w] = vgetq_lane_u64::<1>(vv);
            ids[w] = vgetq_lane_u64::<1>(idv);
            w += 1;
        }
        i += 2;
    }
    for &(id, v) in &items[i..] {
        vals[w] = v;
        ids[w] = id;
        w += usize::from(v > t);
    }
    w
}

/// Kernel (b) counting pass: `(#gt, #eq)` vs the pivot.
#[target_feature(enable = "neon")]
pub(super) unsafe fn count_gt_eq_u64(vals: &[u64], pivot: u64) -> (usize, usize) {
    let n = vals.len();
    let p = vals.as_ptr();
    let pv = vdupq_n_u64(pivot);
    let (mut gt, mut eq) = (0u64, 0u64);
    let mut i = 0usize;
    while i + 2 <= n {
        let v = vld1q_u64(p.add(i));
        let g = vcgtq_u64(v, pv);
        let e = vceqq_u64(v, pv);
        // Compare lanes are all-ones (= -1); negate-and-add to count.
        gt = gt
            .wrapping_sub(vgetq_lane_u64::<0>(g))
            .wrapping_sub(vgetq_lane_u64::<1>(g));
        eq = eq
            .wrapping_sub(vgetq_lane_u64::<0>(e))
            .wrapping_sub(vgetq_lane_u64::<1>(e));
        i += 2;
    }
    let (mut gt, mut eq) = (gt as usize, eq as usize);
    for &v in &vals[i..] {
        gt += usize::from(v > pivot);
        eq += usize::from(v == pivot);
    }
    (gt, eq)
}

/// Kernel (c) sweep: `(min, max)` of a non-empty lane.
#[target_feature(enable = "neon")]
pub(super) unsafe fn min_max_u64(vals: &[u64]) -> (u64, u64) {
    debug_assert!(!vals.is_empty());
    let n = vals.len();
    let p = vals.as_ptr();
    if n < 2 {
        return (vals[0], vals[0]);
    }
    let mut vmin = vld1q_u64(p);
    let mut vmax = vmin;
    let mut i = 2usize;
    while i + 2 <= n {
        let v = vld1q_u64(p.add(i));
        // No unsigned 64-bit min/max instruction: compare + bit-select.
        vmin = vbslq_u64(vcgtq_u64(vmin, v), v, vmin);
        vmax = vbslq_u64(vcgtq_u64(v, vmax), v, vmax);
        i += 2;
    }
    let mut mn = vgetq_lane_u64::<0>(vmin).min(vgetq_lane_u64::<1>(vmin));
    let mut mx = vgetq_lane_u64::<0>(vmax).max(vgetq_lane_u64::<1>(vmax));
    for &v in &vals[i..] {
        mn = mn.min(v);
        mx = mx.max(v);
    }
    (mn, mx)
}

/// Machine assist: longest all-`pred` prefix, 2 lanes at a time.
#[target_feature(enable = "neon")]
pub(super) unsafe fn prefix_class_run_u64(vals: &[u64], pivot: u64, pred: RunPred) -> usize {
    let n = vals.len();
    let p = vals.as_ptr();
    let pv = vdupq_n_u64(pivot);
    let mut i = 0usize;
    while i + 2 <= n {
        let v = vld1q_u64(p.add(i));
        let hit = match pred {
            RunPred::Lt => vcgtq_u64(pv, v),
            RunPred::Gt => vcgtq_u64(v, pv),
            RunPred::Eq => vceqq_u64(v, pv),
        };
        let h0 = vgetq_lane_u64::<0>(hit) != 0;
        let h1 = vgetq_lane_u64::<1>(hit) != 0;
        if !h0 {
            return i;
        }
        if !h1 {
            return i + 1;
        }
        i += 2;
    }
    while i < n {
        let v = vals[i];
        let hit = match pred {
            RunPred::Lt => v < pivot,
            RunPred::Gt => v > pivot,
            RunPred::Eq => v == pivot,
        };
        if !hit {
            return i;
        }
        i += 1;
    }
    n
}
