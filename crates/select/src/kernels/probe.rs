//! Group-probe primitive for SIMD-probed open-addressing tables.
//!
//! A swiss-table-style flow table keeps one *control byte* per slot and
//! groups 16 of them into a cache-line-resident block. Every probe —
//! lookup, insert, delete — reduces to one question per group: *which of
//! these 16 bytes equal this tag?* [`ProbeKernel::match_byte`] answers
//! it with a 16-bit mask (bit `i` set ⇔ `group[i] == tag`), dispatched
//! to a 16-lane byte compare where the hardware has one:
//!
//! * **x86_64** — `pcmpeqb` + `pmovmskb` (SSE2). SSE2 is baseline on
//!   x86_64, so the same 16-byte path serves every vector tier the
//!   [`super::Kernel`] dispatch distinguishes (AVX-512F, AVX2); the
//!   probe never needs wider registers because a group *is* 16 bytes.
//! * **aarch64** — `cmeq.16b` + weighted horizontal adds (`addv`)
//!   reproducing `pmovmskb`'s exact bit order.
//! * **scalar** — a branch-free per-byte loop; the reference the SIMD
//!   paths must match bit-for-bit, and the path taken for
//!   `QMAX_FORCE_SCALAR=1`, under Miri, and on CPUs where runtime
//!   detection reports no vector tier.
//!
//! Dispatch mirrors [`super::Kernel`]: resolved once per table
//! ([`ProbeKernel::detect`]), pinned to the portable path by
//! [`ProbeKernel::scalar`] or the `QMAX_FORCE_SCALAR` environment
//! variable. Differential property tests in
//! `tests/proptest_kernels.rs` pin scalar ≡ SIMD over adversarial
//! group contents (all-match, no-match, sentinel-heavy).

use super::{detect_arch_kind, force_scalar, KernelKind};

/// Number of control bytes (slots) per probe group: one 16-byte vector,
/// a quarter cache line.
pub const GROUP_WIDTH: usize = 16;

/// A per-table dispatch handle for the 16-byte group probe.
///
/// Resolve once with [`ProbeKernel::detect`] or pin the portable path
/// with [`ProbeKernel::scalar`]; [`match_byte`](ProbeKernel::match_byte)
/// then routes every group compare through the best available
/// implementation. All implementations produce **identical** masks, so
/// swapping kernels never changes a table's observable behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeKernel {
    kind: KernelKind,
}

impl ProbeKernel {
    /// Resolves the best probe kernel for this CPU. Any detected vector
    /// tier (AVX-512F, AVX2, NEON) selects the 16-lane byte-compare
    /// path — the probe needs only baseline 128-bit compares, so the
    /// tiers all map to the same implementation per architecture —
    /// scalar otherwise (or when `QMAX_FORCE_SCALAR` is set).
    pub fn detect() -> Self {
        let kind = if force_scalar() {
            KernelKind::Scalar
        } else {
            detect_arch_kind()
        };
        ProbeKernel { kind }
    }

    /// The portable scalar probe, unconditionally.
    pub fn scalar() -> Self {
        ProbeKernel {
            kind: KernelKind::Scalar,
        }
    }

    /// Which implementation this handle dispatches to.
    pub fn kind(&self) -> KernelKind {
        self.kind
    }

    /// Whether probes dispatch to a SIMD implementation.
    pub fn is_vectorized(&self) -> bool {
        self.kind != KernelKind::Scalar
    }

    /// Bit `i` of the result is set iff `group[i] == tag`.
    #[inline]
    pub fn match_byte(&self, group: &[u8; GROUP_WIDTH], tag: u8) -> u16 {
        #[cfg(target_arch = "x86_64")]
        if self.kind != KernelKind::Scalar {
            // SAFETY: SSE2 is part of the x86_64 baseline, so the
            // intrinsics are always available; the load reads exactly
            // the 16 bytes of `group`.
            return unsafe { match_byte_sse2(group, tag) };
        }
        #[cfg(target_arch = "aarch64")]
        if self.kind == KernelKind::Neon {
            // SAFETY: kind == Neon implies the runtime check passed;
            // the load reads exactly the 16 bytes of `group`.
            return unsafe { match_byte_neon(group, tag) };
        }
        match_byte_scalar(group, tag)
    }
}

/// Issue a best-effort *read* prefetch for the cache line holding
/// `data[index]`, as deep into the hierarchy as the ISA allows (L1,
/// temporal). This is the memory-level-parallelism primitive behind the
/// flow table's batched probes: hash a whole span of keys, prefetch
/// every home group's control bytes, *then* resolve the probes — so N
/// dependent miss chains overlap instead of serializing.
///
/// Semantics: purely a hint. It never faults, never writes, and never
/// changes observable behaviour — out-of-range indices are ignored, and
/// the function compiles to nothing under Miri (prefetch has no shadow-
/// memory meaning) and on architectures without a stable prefetch
/// primitive. `qmax-core` forbids `unsafe`, which is why this safe
/// wrapper lives here beside the probe kernel.
#[inline]
pub fn prefetch_read<T>(data: &[T], index: usize) {
    let Some(slot) = data.get(index) else { return };
    let ptr = slot as *const T as *const u8;
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    // SAFETY: `_mm_prefetch` is SSE (x86_64 baseline) and architecturally
    // cannot fault: it is a hint that at most populates a cache line. The
    // pointer is derived from an in-bounds slice element.
    unsafe {
        use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch(ptr as *const i8, _MM_HINT_T0);
    }
    #[cfg(all(target_arch = "aarch64", not(miri)))]
    // SAFETY: PRFM is a hint instruction — it cannot fault regardless of
    // the address and performs no architectural memory access. `nomem`
    // is deliberately *not* claimed; `readonly` models the prefetch.
    unsafe {
        core::arch::asm!(
            "prfm pldl1keep, [{addr}]",
            addr = in(reg) ptr,
            options(nostack, preserves_flags, readonly)
        );
    }
    #[cfg(any(miri, not(any(target_arch = "x86_64", target_arch = "aarch64"))))]
    let _ = ptr;
}

/// Portable reference: defines the exact mask semantics.
#[inline]
pub(super) fn match_byte_scalar(group: &[u8; GROUP_WIDTH], tag: u8) -> u16 {
    let mut mask = 0u16;
    for (i, &b) in group.iter().enumerate() {
        mask |= u16::from(b == tag) << i;
    }
    mask
}

#[cfg(target_arch = "x86_64")]
#[inline]
unsafe fn match_byte_sse2(group: &[u8; GROUP_WIDTH], tag: u8) -> u16 {
    use core::arch::x86_64::*;
    // SAFETY (caller): SSE2 is baseline on x86_64. The unaligned load
    // covers group[0..16] exactly.
    let g = _mm_loadu_si128(group.as_ptr() as *const __m128i);
    let t = _mm_set1_epi8(tag as i8);
    let eq = _mm_cmpeq_epi8(g, t);
    _mm_movemask_epi8(eq) as u16
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn match_byte_neon(group: &[u8; GROUP_WIDTH], tag: u8) -> u16 {
    use core::arch::aarch64::*;
    // SAFETY (caller): NEON was runtime-detected. The load covers
    // group[0..16] exactly.
    let g = vld1q_u8(group.as_ptr());
    let eq = vceqq_u8(g, vdupq_n_u8(tag));
    // pmovmskb equivalent: weight each matching lane (0xFF) by its bit
    // value, then horizontally add each half. Weights fit in a byte, and
    // at most all eight can be set per half: 0xFF & weight sums to 255.
    let weights: [u8; 16] = [1, 2, 4, 8, 16, 32, 64, 128, 1, 2, 4, 8, 16, 32, 64, 128];
    let w = vld1q_u8(weights.as_ptr());
    let bits = vandq_u8(eq, w);
    let lo = vaddv_u8(vget_low_u8(bits)) as u16;
    let hi = vaddv_u8(vget_high_u8(bits)) as u16;
    lo | (hi << 8)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernels() -> Vec<ProbeKernel> {
        let mut ks = vec![ProbeKernel::scalar()];
        let auto = ProbeKernel::detect();
        if auto.is_vectorized() {
            ks.push(auto);
        }
        ks
    }

    #[test]
    fn scalar_reference_is_exact() {
        let mut g = [0u8; GROUP_WIDTH];
        g[3] = 0x7F;
        g[15] = 0x7F;
        assert_eq!(match_byte_scalar(&g, 0x7F), (1 << 3) | (1 << 15));
        assert_eq!(match_byte_scalar(&g, 0), !((1u16 << 3) | (1 << 15)));
        assert_eq!(match_byte_scalar(&g, 1), 0);
    }

    #[test]
    fn simd_matches_scalar_on_adversarial_groups() {
        let mut s = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for k in kernels() {
            // Dense random groups, plus all-equal and sentinel-heavy.
            for case in 0..2000 {
                let mut g = [0u8; GROUP_WIDTH];
                match case % 4 {
                    0 => g.iter_mut().for_each(|b| *b = next() as u8),
                    1 => g = [0x80; GROUP_WIDTH],
                    2 => g.iter_mut().for_each(|b| *b = (next() as u8) & 0x81),
                    _ => g.iter_mut().for_each(|b| *b = (next() % 3) as u8),
                }
                for tag in [0u8, 1, 2, 0x7F, 0x80, 0x81, 0xFF, next() as u8] {
                    assert_eq!(
                        k.match_byte(&g, tag),
                        match_byte_scalar(&g, tag),
                        "{k:?} diverged on group {g:?} tag {tag:#x}"
                    );
                }
            }
        }
    }

    #[test]
    fn prefetch_is_a_pure_hint() {
        // In-range, boundary, and out-of-range indices must all be
        // side-effect free (this test also runs under Miri, where the
        // helper compiles to nothing — pinning that it stays UB-free).
        let data: Vec<u64> = (0..64).collect();
        prefetch_read(&data, 0);
        prefetch_read(&data, 63);
        prefetch_read(&data, 64);
        prefetch_read(&data, usize::MAX);
        prefetch_read::<u64>(&[], 0);
        assert_eq!(data[63], 63, "prefetch must not write");
    }

    #[test]
    fn forced_scalar_env_is_honored_by_detect() {
        // Can't toggle the env var after the OnceLock is set; at least
        // pin that scalar() always refuses to vectorize.
        assert_eq!(ProbeKernel::scalar().kind(), KernelKind::Scalar);
        assert!(!ProbeKernel::scalar().is_vectorized());
    }
}
