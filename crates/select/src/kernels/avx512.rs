//! AVX-512F kernels over 8×u64 lanes (x86_64).
//!
//! Where the AVX2 tier emulates unsigned compares (sign-bias XOR) and
//! compressed stores (16-entry shuffle table + full-width store), this
//! tier uses the native instructions: `vpcmpuq` compares unsigned
//! directly into a `__mmask8`, `vpcompressq` with that mask writes
//! *exactly* the surviving lanes (no garbage past the cursor, so no
//! spill-region reasoning is needed), and `vpermt2q` deinterleaves
//! `(id, val)` pairs from two source vectors in one shuffle.
//!
//! # Safety
//!
//! Every function is `#[target_feature(enable = "avx512f")]` and must
//! only be called when `is_x86_feature_detected!("avx512f")` returned
//! true — the dispatch layer in [`super`] guarantees this. Masked
//! compress stores touch only the lanes the mask admits, which by the
//! callers' cursor invariants always lie inside the destination slice.

use super::RunPred;
use core::arch::x86_64::*;

/// `vpermt2q` index vectors selecting the id (even) and value (odd)
/// qwords of 8 interleaved `(id, val)` pairs split across two vectors.
const IDX_ID: [i64; 8] = [0, 2, 4, 6, 8, 10, 12, 14];
const IDX_V: [i64; 8] = [1, 3, 5, 7, 9, 11, 13, 15];

/// Kernel (a): Ψ-filter admit over `(u64, u64)` pairs. See
/// [`super::Kernel::admit_pairs`] for the contract; `threshold` is
/// always present here (the fill phase without a threshold is a plain
/// copy the scalar path handles).
#[target_feature(enable = "avx512f")]
pub(super) unsafe fn admit_pairs_u64(
    items: &[(u64, u64)],
    t: u64,
    vals: &mut [u64],
    ids: &mut [u64],
    mut w: usize,
    hard_end: usize,
) -> usize {
    debug_assert!(w + items.len() <= hard_end && hard_end <= vals.len().min(ids.len()));
    let n = items.len();
    let src = items.as_ptr() as *const i64;
    let vp = vals.as_mut_ptr();
    let ip = ids.as_mut_ptr();
    let tv = _mm512_set1_epi64(t as i64);
    let idx_id = _mm512_loadu_si512(IDX_ID.as_ptr() as *const _);
    let idx_v = _mm512_loadu_si512(IDX_V.as_ptr() as *const _);
    let mut i = 0usize;
    while i + 8 <= n {
        let a = _mm512_loadu_si512(src.add(2 * i) as *const _);
        let b = _mm512_loadu_si512(src.add(2 * i + 8) as *const _);
        let vv = _mm512_permutex2var_epi64(a, idx_v, b);
        let m = _mm512_cmpgt_epu64_mask(vv, tv);
        let idv = _mm512_permutex2var_epi64(a, idx_id, b);
        // Compress stores write exactly popcount(m) lanes at the
        // cursor — never past it — so the `w + len <= hard_end`
        // contract alone keeps every store in bounds.
        _mm512_mask_compressstoreu_epi64(vp.add(w) as *mut _, m, vv);
        _mm512_mask_compressstoreu_epi64(ip.add(w) as *mut _, m, idv);
        w += m.count_ones() as usize;
        i += 8;
    }
    for &(id, v) in &items[i..] {
        vals[w] = v;
        ids[w] = id;
        w += usize::from(v > t);
    }
    w
}

/// Kernel (b) counting pass: `(#gt, #eq)` vs the pivot.
#[target_feature(enable = "avx512f")]
pub(super) unsafe fn count_gt_eq_u64(vals: &[u64], pivot: u64) -> (usize, usize) {
    let n = vals.len();
    let p = vals.as_ptr();
    let pv = _mm512_set1_epi64(pivot as i64);
    let (mut gt, mut eq) = (0usize, 0usize);
    let mut i = 0usize;
    while i + 8 <= n {
        let v = _mm512_loadu_si512(p.add(i) as *const _);
        gt += _mm512_cmpgt_epu64_mask(v, pv).count_ones() as usize;
        eq += _mm512_cmpeq_epi64_mask(v, pv).count_ones() as usize;
        i += 8;
    }
    for &v in &vals[i..] {
        gt += usize::from(v > pivot);
        eq += usize::from(v == pivot);
    }
    (gt, eq)
}

/// Kernel (c) sweep: `(min, max)` of a non-empty lane.
#[target_feature(enable = "avx512f")]
pub(super) unsafe fn min_max_u64(vals: &[u64]) -> (u64, u64) {
    debug_assert!(!vals.is_empty());
    let n = vals.len();
    let p = vals.as_ptr();
    if n < 8 {
        let (mut mn, mut mx) = (vals[0], vals[0]);
        for &v in &vals[1..] {
            mn = mn.min(v);
            mx = mx.max(v);
        }
        return (mn, mx);
    }
    // Two independent accumulator chains hide the min/max latency.
    let first = _mm512_loadu_si512(p as *const _);
    let (mut mn0, mut mn1) = (first, first);
    let (mut mx0, mut mx1) = (first, first);
    let mut i = 8usize;
    while i + 16 <= n {
        let v0 = _mm512_loadu_si512(p.add(i) as *const _);
        let v1 = _mm512_loadu_si512(p.add(i + 8) as *const _);
        mn0 = _mm512_min_epu64(mn0, v0);
        mx0 = _mm512_max_epu64(mx0, v0);
        mn1 = _mm512_min_epu64(mn1, v1);
        mx1 = _mm512_max_epu64(mx1, v1);
        i += 16;
    }
    while i + 8 <= n {
        let v = _mm512_loadu_si512(p.add(i) as *const _);
        mn0 = _mm512_min_epu64(mn0, v);
        mx0 = _mm512_max_epu64(mx0, v);
        i += 8;
    }
    let vmin = _mm512_min_epu64(mn0, mn1);
    let vmax = _mm512_max_epu64(mx0, mx1);
    let mut lanes_min = [0u64; 8];
    let mut lanes_max = [0u64; 8];
    _mm512_storeu_si512(lanes_min.as_mut_ptr() as *mut _, vmin);
    _mm512_storeu_si512(lanes_max.as_mut_ptr() as *mut _, vmax);
    let mut mn = lanes_min[0];
    let mut mx = lanes_max[0];
    for l in 1..8 {
        mn = mn.min(lanes_min[l]);
        mx = mx.max(lanes_max[l]);
    }
    for &v in &vals[i..] {
        mn = mn.min(v);
        mx = mx.max(v);
    }
    (mn, mx)
}

/// Kernel (b): stable three-stream partition into descending region
/// order (`> | == | <`), counts pre-computed by the caller. Compress
/// stores emit exactly each class's lanes at its cursor, so unlike the
/// AVX2 tier no spill-region fallback is needed anywhere.
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
pub(super) unsafe fn partition3_desc_u64(
    vals: &[u64],
    ids: &[u64],
    pivot: u64,
    ngt: usize,
    neq: usize,
    out_vals: &mut [u64],
    out_ids: &mut [u64],
) {
    let n = vals.len();
    let eq_end = ngt + neq;
    let (mut wg, mut we, mut wl) = (0usize, ngt, eq_end);
    let vp = vals.as_ptr();
    let ip = ids.as_ptr();
    let ovp = out_vals.as_mut_ptr();
    let oip = out_ids.as_mut_ptr();
    let pv = _mm512_set1_epi64(pivot as i64);
    let mut i = 0usize;
    while i + 8 <= n {
        let v = _mm512_loadu_si512(vp.add(i) as *const _);
        let idv = _mm512_loadu_si512(ip.add(i) as *const _);
        let mg = _mm512_cmpgt_epu64_mask(v, pv);
        let me = _mm512_cmpeq_epi64_mask(v, pv);
        let ml = !(mg | me);
        _mm512_mask_compressstoreu_epi64(ovp.add(wg) as *mut _, mg, v);
        _mm512_mask_compressstoreu_epi64(oip.add(wg) as *mut _, mg, idv);
        wg += mg.count_ones() as usize;
        _mm512_mask_compressstoreu_epi64(ovp.add(we) as *mut _, me, v);
        _mm512_mask_compressstoreu_epi64(oip.add(we) as *mut _, me, idv);
        we += me.count_ones() as usize;
        _mm512_mask_compressstoreu_epi64(ovp.add(wl) as *mut _, ml, v);
        _mm512_mask_compressstoreu_epi64(oip.add(wl) as *mut _, ml, idv);
        wl += ml.count_ones() as usize;
        i += 8;
    }
    for j in i..n {
        let (v, id) = (vals[j], ids[j]);
        let w = if v > pivot {
            &mut wg
        } else if v == pivot {
            &mut we
        } else {
            &mut wl
        };
        out_vals[*w] = v;
        out_ids[*w] = id;
        *w += 1;
    }
    debug_assert!(wg == ngt && we == eq_end && wl == n);
}

/// Machine assist: longest all-`pred` prefix, 8 lanes at a time.
#[target_feature(enable = "avx512f")]
pub(super) unsafe fn prefix_class_run_u64(vals: &[u64], pivot: u64, pred: RunPred) -> usize {
    let n = vals.len();
    let p = vals.as_ptr();
    let pv = _mm512_set1_epi64(pivot as i64);
    let mut i = 0usize;
    while i + 8 <= n {
        let v = _mm512_loadu_si512(p.add(i) as *const _);
        let mask = match pred {
            RunPred::Lt => _mm512_cmplt_epu64_mask(v, pv),
            RunPred::Gt => _mm512_cmpgt_epu64_mask(v, pv),
            RunPred::Eq => _mm512_cmpeq_epi64_mask(v, pv),
        };
        if mask != 0xFF {
            return i + mask.trailing_ones() as usize;
        }
        i += 8;
    }
    while i < n {
        let v = vals[i];
        let hit = match pred {
            RunPred::Lt => v < pivot,
            RunPred::Gt => v > pivot,
            RunPred::Eq => v == pivot,
        };
        if !hit {
            return i;
        }
        i += 1;
    }
    n
}
