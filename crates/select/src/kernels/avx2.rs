//! AVX2 kernels over 4×u64 lanes (x86_64).
//!
//! Shared building blocks:
//!
//! * **unsigned compares** — AVX2 only has signed 64-bit compares
//!   (`_mm256_cmpgt_epi64`), so both operands are biased by XOR-ing the
//!   sign bit, which maps unsigned order onto signed order;
//! * **left-pack compress** — a 4-bit survivor mask (from
//!   `_mm256_movemask_pd` over the compare result) indexes a 16-entry
//!   table of `_mm256_permutevar8x32_epi32` shuffles that moves the
//!   surviving qword lanes to the front in lane order, after which one
//!   unaligned store plus a popcount cursor advance emits them;
//! * **deinterleave** — `(id, val)` pairs are split into an id and a
//!   value vector with `_mm256_unpack{lo,hi}_epi64`, whose 128-bit-lane
//!   interleaving is undone by `_mm256_permute4x64_epi64(x, 0xD8)` so
//!   both vectors are in arrival order (this keeps SIMD output
//!   bit-identical to the scalar reference).
//!
//! # Safety
//!
//! Every function is `#[target_feature(enable = "avx2")]` and must only
//! be called when `is_x86_feature_detected!("avx2")` returned true —
//! the dispatch layer in [`super`] guarantees this. Wide stores are
//! only issued while `cursor + 4 <= limit` for the region being
//! written, so no store ever leaves the caller-provided bounds; the
//! remainder runs the scalar tail.

use super::RunPred;
use core::arch::x86_64::*;

/// Left-pack shuffles: entry `m` lists, as 8×u32 indices, the qword
/// lanes whose mask bit is set (in lane order), each as its (lo, hi)
/// dword pair; trailing slots replicate index 0 and are dead lanes.
static PACK: [[u32; 8]; 16] = pack_table();

const fn pack_table() -> [[u32; 8]; 16] {
    let mut t = [[0u32; 8]; 16];
    let mut m = 0usize;
    while m < 16 {
        let mut out = 0usize;
        let mut lane = 0usize;
        while lane < 4 {
            if m & (1 << lane) != 0 {
                t[m][out] = (2 * lane) as u32;
                t[m][out + 1] = (2 * lane + 1) as u32;
                out += 2;
            }
            lane += 1;
        }
        m += 1;
    }
    t
}

/// Left-pack shuffles for vectors still in `unpack{lo,hi}_epi64`
/// cross-lane order, where physical qword lane `j` holds arrival
/// element `[0, 2, 1, 3][j]`. Visiting physical lanes in arrival order
/// folds the order fixup into the compress itself, saving the
/// `permute4x64` per vector that [`PACK`] would otherwise require.
static PACK_ILV: [[u32; 8]; 16] = pack_table_interleaved();

const fn pack_table_interleaved() -> [[u32; 8]; 16] {
    let visit = [0usize, 2, 1, 3];
    let mut t = [[0u32; 8]; 16];
    let mut m = 0usize;
    while m < 16 {
        let mut out = 0usize;
        let mut k = 0usize;
        while k < 4 {
            let lane = visit[k];
            if m & (1 << lane) != 0 {
                t[m][out] = (2 * lane) as u32;
                t[m][out + 1] = (2 * lane + 1) as u32;
                out += 2;
            }
            k += 1;
        }
        m += 1;
    }
    t
}

/// XOR the sign bit into each qword: maps unsigned order to signed.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn bias(v: __m256i) -> __m256i {
    _mm256_xor_si256(v, _mm256_set1_epi64x(i64::MIN))
}

/// 4-bit mask (bit j = qword lane j) from a full-lane compare result.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn qmask(cmp: __m256i) -> usize {
    _mm256_movemask_pd(_mm256_castsi256_pd(cmp)) as usize
}

/// Compress-stores the masked qword lanes of `v` at `dst[w..]` (one
/// 4-wide store; caller guarantees `w + 4 <= limit`).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn compress_store(dst: *mut u64, w: usize, v: __m256i, mask: usize) {
    let perm = _mm256_loadu_si256(PACK[mask].as_ptr() as *const __m256i);
    let packed = _mm256_permutevar8x32_epi32(v, perm);
    _mm256_storeu_si256(dst.add(w) as *mut __m256i, packed);
}

/// [`compress_store`] for vectors still in `unpack` cross-lane order
/// (the mask is over the same physical lanes); emits arrival order.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn compress_store_ilv(dst: *mut u64, w: usize, v: __m256i, mask: usize) {
    let perm = _mm256_loadu_si256(PACK_ILV[mask].as_ptr() as *const __m256i);
    let packed = _mm256_permutevar8x32_epi32(v, perm);
    _mm256_storeu_si256(dst.add(w) as *mut __m256i, packed);
}

/// Kernel (a): Ψ-filter admit over `(u64, u64)` pairs. See
/// [`super::Kernel::admit_pairs`] for the contract; `threshold` is
/// always present here (the fill phase without a threshold is a plain
/// copy the scalar path handles).
#[target_feature(enable = "avx2")]
pub(super) unsafe fn admit_pairs_u64(
    items: &[(u64, u64)],
    t: u64,
    vals: &mut [u64],
    ids: &mut [u64],
    mut w: usize,
    hard_end: usize,
) -> usize {
    debug_assert!(w + items.len() <= hard_end && hard_end <= vals.len().min(ids.len()));
    let n = items.len();
    let src = items.as_ptr() as *const i64;
    let vp = vals.as_mut_ptr();
    let ip = ids.as_mut_ptr();
    let tv = bias(_mm256_set1_epi64x(t as i64));
    let mut i = 0usize;
    // Wide stores write 4 lanes; stop once fewer than 4 slots remain
    // before `hard_end` and let the scalar tail finish.
    // 2× unrolled: both blocks' masks and popcounts are computed
    // before any store, so the loop-carried dependency through the
    // write cursor (mask → popcount → next store address) is paid once
    // per 8 pairs instead of once per 4.
    while i + 8 <= n && w + 8 <= hard_end {
        let a0 = _mm256_loadu_si256(src.add(2 * i) as *const __m256i);
        let b0 = _mm256_loadu_si256(src.add(2 * i + 4) as *const __m256i);
        let a1 = _mm256_loadu_si256(src.add(2 * i + 8) as *const __m256i);
        let b1 = _mm256_loadu_si256(src.add(2 * i + 12) as *const __m256i);
        // unpack{lo,hi} leave lanes in [0, 2, 1, 3] cross-lane order;
        // the interleaved pack table restores arrival order during the
        // compress, so no permute4x64 fixup is needed here.
        let vv0 = _mm256_unpackhi_epi64(a0, b0);
        let vv1 = _mm256_unpackhi_epi64(a1, b1);
        let m0 = qmask(_mm256_cmpgt_epi64(bias(vv0), tv));
        let m1 = qmask(_mm256_cmpgt_epi64(bias(vv1), tv));
        // Steady-state Ψ rejects almost everything, so whole blocks
        // with no survivor are the common case: skip the id-lane
        // unpacks, compress stores, and cursor update entirely.
        if m0 | m1 != 0 {
            let idv0 = _mm256_unpacklo_epi64(a0, b0);
            let idv1 = _mm256_unpacklo_epi64(a1, b1);
            let c0 = m0.count_ones() as usize;
            // Each store covers [w, w+4) ⊆ [w, hard_end); non-surviving
            // lanes land past the cursor and are overwritten by the
            // next store (or stay past the final cursor = scratch).
            compress_store_ilv(vp, w, vv0, m0);
            compress_store_ilv(ip, w, idv0, m0);
            compress_store_ilv(vp, w + c0, vv1, m1);
            compress_store_ilv(ip, w + c0, idv1, m1);
            w += c0 + m1.count_ones() as usize;
        }
        i += 8;
    }
    while i + 4 <= n && w + 4 <= hard_end {
        let a = _mm256_loadu_si256(src.add(2 * i) as *const __m256i);
        let b = _mm256_loadu_si256(src.add(2 * i + 4) as *const __m256i);
        let vv = _mm256_unpackhi_epi64(a, b);
        let mask = qmask(_mm256_cmpgt_epi64(bias(vv), tv));
        if mask != 0 {
            let idv = _mm256_unpacklo_epi64(a, b);
            compress_store_ilv(vp, w, vv, mask);
            compress_store_ilv(ip, w, idv, mask);
            w += mask.count_ones() as usize;
        }
        i += 4;
    }
    for &(id, v) in &items[i..] {
        vals[w] = v;
        ids[w] = id;
        w += usize::from(v > t);
    }
    w
}

/// Kernel (b) counting pass: `(#gt, #eq)` vs the pivot.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn count_gt_eq_u64(vals: &[u64], pivot: u64) -> (usize, usize) {
    let n = vals.len();
    let p = vals.as_ptr();
    let pv = _mm256_set1_epi64x(pivot as i64);
    let pvb = bias(pv);
    let (mut gt, mut eq) = (0usize, 0usize);
    let mut i = 0usize;
    while i + 4 <= n {
        let v = _mm256_loadu_si256(p.add(i) as *const __m256i);
        gt += qmask(_mm256_cmpgt_epi64(bias(v), pvb)).count_ones() as usize;
        eq += qmask(_mm256_cmpeq_epi64(v, pv)).count_ones() as usize;
        i += 4;
    }
    for &v in &vals[i..] {
        gt += usize::from(v > pivot);
        eq += usize::from(v == pivot);
    }
    (gt, eq)
}

/// Kernel (c) sweep: `(min, max)` of a non-empty lane.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn min_max_u64(vals: &[u64]) -> (u64, u64) {
    debug_assert!(!vals.is_empty());
    let n = vals.len();
    let p = vals.as_ptr();
    if n < 4 {
        let (mut mn, mut mx) = (vals[0], vals[0]);
        for &v in &vals[1..] {
            mn = mn.min(v);
            mx = mx.max(v);
        }
        return (mn, mx);
    }
    // Accumulators live in the sign-biased domain (one XOR per loaded
    // vector instead of re-biasing both compare operands every step),
    // and four independent min/max chains hide the cmp→blend latency.
    let first = bias(_mm256_loadu_si256(p as *const __m256i));
    let mut mins = [first; 4];
    let mut maxs = [first; 4];
    let mut i = 4usize;
    while i + 16 <= n {
        let mut c = 0usize;
        while c < 4 {
            let v = bias(_mm256_loadu_si256(p.add(i + 4 * c) as *const __m256i));
            mins[c] = _mm256_blendv_epi8(mins[c], v, _mm256_cmpgt_epi64(mins[c], v));
            maxs[c] = _mm256_blendv_epi8(maxs[c], v, _mm256_cmpgt_epi64(v, maxs[c]));
            c += 1;
        }
        i += 16;
    }
    while i + 4 <= n {
        let v = bias(_mm256_loadu_si256(p.add(i) as *const __m256i));
        mins[0] = _mm256_blendv_epi8(mins[0], v, _mm256_cmpgt_epi64(mins[0], v));
        maxs[0] = _mm256_blendv_epi8(maxs[0], v, _mm256_cmpgt_epi64(v, maxs[0]));
        i += 4;
    }
    let mut vmin = mins[0];
    let mut vmax = maxs[0];
    for c in 1..4 {
        vmin = _mm256_blendv_epi8(vmin, mins[c], _mm256_cmpgt_epi64(vmin, mins[c]));
        vmax = _mm256_blendv_epi8(vmax, maxs[c], _mm256_cmpgt_epi64(maxs[c], vmax));
    }
    let mut lanes_min = [0u64; 4];
    let mut lanes_max = [0u64; 4];
    _mm256_storeu_si256(lanes_min.as_mut_ptr() as *mut __m256i, bias(vmin));
    _mm256_storeu_si256(lanes_max.as_mut_ptr() as *mut __m256i, bias(vmax));
    let mut mn = lanes_min[0];
    let mut mx = lanes_max[0];
    for l in 1..4 {
        mn = mn.min(lanes_min[l]);
        mx = mx.max(lanes_max[l]);
    }
    for &v in &vals[i..] {
        mn = mn.min(v);
        mx = mx.max(v);
    }
    (mn, mx)
}

/// Kernel (b): stable three-stream partition into descending region
/// order (`> | == | <`), counts pre-computed by the caller.
///
/// Wide stores are only issued for a class while its cursor is at
/// least 4 slots from its region end, so every store — valid lanes
/// *and* the up-to-3 packed-garbage lanes behind them — stays inside
/// that class's own region, where later stores of the same class
/// overwrite the garbage (there are always at least as many elements
/// left in the class as garbage lanes). Blocks that would violate this
/// for any non-empty class fall back to scalar stores.
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
pub(super) unsafe fn partition3_desc_u64(
    vals: &[u64],
    ids: &[u64],
    pivot: u64,
    ngt: usize,
    neq: usize,
    out_vals: &mut [u64],
    out_ids: &mut [u64],
) {
    let n = vals.len();
    let eq_end = ngt + neq;
    let (mut wg, mut we, mut wl) = (0usize, ngt, eq_end);
    let vp = vals.as_ptr();
    let ip = ids.as_ptr();
    let ovp = out_vals.as_mut_ptr();
    let oip = out_ids.as_mut_ptr();
    let pv = _mm256_set1_epi64x(pivot as i64);
    let pvb = bias(pv);
    let mut i = 0usize;
    while i + 4 <= n {
        let v = _mm256_loadu_si256(vp.add(i) as *const __m256i);
        let idv = _mm256_loadu_si256(ip.add(i) as *const __m256i);
        let mg = qmask(_mm256_cmpgt_epi64(bias(v), pvb));
        let me = qmask(_mm256_cmpeq_epi64(v, pv));
        let ml = 0b1111 & !(mg | me);
        let (kg, ke, kl) = (
            mg.count_ones() as usize,
            me.count_ones() as usize,
            ml.count_ones() as usize,
        );
        let fits =
            (kg == 0 || wg + 4 <= ngt) && (ke == 0 || we + 4 <= eq_end) && (kl == 0 || wl + 4 <= n);
        if fits {
            if kg != 0 {
                compress_store(ovp, wg, v, mg);
                compress_store(oip, wg, idv, mg);
                wg += kg;
            }
            if ke != 0 {
                compress_store(ovp, we, v, me);
                compress_store(oip, we, idv, me);
                we += ke;
            }
            if kl != 0 {
                compress_store(ovp, wl, v, ml);
                compress_store(oip, wl, idv, ml);
                wl += kl;
            }
        } else {
            for j in i..i + 4 {
                scatter_one(
                    vals, ids, pivot, out_vals, out_ids, j, &mut wg, &mut we, &mut wl,
                );
            }
        }
        i += 4;
    }
    for j in i..n {
        scatter_one(
            vals, ids, pivot, out_vals, out_ids, j, &mut wg, &mut we, &mut wl,
        );
    }
    debug_assert!(wg == ngt && we == eq_end && wl == n);
}

#[inline]
#[allow(clippy::too_many_arguments)]
fn scatter_one(
    vals: &[u64],
    ids: &[u64],
    pivot: u64,
    out_vals: &mut [u64],
    out_ids: &mut [u64],
    j: usize,
    wg: &mut usize,
    we: &mut usize,
    wl: &mut usize,
) {
    let (v, id) = (vals[j], ids[j]);
    let w = if v > pivot {
        wg
    } else if v == pivot {
        we
    } else {
        wl
    };
    out_vals[*w] = v;
    out_ids[*w] = id;
    *w += 1;
}

/// Machine assist: longest all-`pred` prefix, 4 lanes at a time.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn prefix_class_run_u64(vals: &[u64], pivot: u64, pred: RunPred) -> usize {
    let n = vals.len();
    let p = vals.as_ptr();
    let pv = _mm256_set1_epi64x(pivot as i64);
    let pvb = bias(pv);
    let mut i = 0usize;
    while i + 4 <= n {
        let v = _mm256_loadu_si256(p.add(i) as *const __m256i);
        let hit = match pred {
            RunPred::Lt => _mm256_cmpgt_epi64(pvb, bias(v)),
            RunPred::Gt => _mm256_cmpgt_epi64(bias(v), pvb),
            RunPred::Eq => _mm256_cmpeq_epi64(v, pv),
        };
        let mask = qmask(hit) as u32;
        if mask != 0b1111 {
            return i + mask.trailing_ones() as usize;
        }
        i += 4;
    }
    while i < n {
        let v = vals[i];
        let hit = match pred {
            RunPred::Lt => v < pivot,
            RunPred::Gt => v > pivot,
            RunPred::Eq => v == pivot,
        };
        if !hit {
            return i;
        }
        i += 1;
    }
    n
}
