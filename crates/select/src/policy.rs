//! Startup-calibrated backend selection policy (AoS vs SoA).
//!
//! The q-MAX interval backends come in two layouts: the array-of-structs
//! `AmortizedQMax` (a plain `Vec<(id, val)>` with a scalar admit loop and
//! no kernel handle) and the structure-of-arrays `SoaAmortizedQMax`
//! (split value/id lanes driven by the [`Kernel`] batch-admit and
//! partition kernels). Which one is faster is a *per-block* question:
//! the SoA path pays a per-chunk fixed cost (slice setup, dispatch,
//! lane bookkeeping) that only amortizes once a block sees enough items
//! per trip, while below that point the AoS loop — which never touches
//! a kernel handle at all — wins. The slack-window variants multiply
//! block count as τ shrinks, so the expected items-per-block swings
//! over three orders of magnitude across reasonable configurations.
//!
//! This module turns that trade-off into a measured decision:
//!
//! * [`calibrate`] extends the runtime kernel-dispatch probe into a
//!   startup **calibration pass**: it times one AoS-style admit trip and
//!   one SoA-style kernel admit trip at two sizes and fits a two-point
//!   linear model (fixed cost + per-item cost for each layout).
//! * [`CostModel`] holds the fit and its derived **crossover capacity**
//!   — the smallest expected per-trip fill at which the SoA line dips
//!   below the AoS line.
//! * [`BackendPolicy`] combines the model with a [`PolicyMode`] read
//!   from the `QMAX_BACKEND_POLICY` environment variable (`auto` /
//!   `force-aos` / `force-soa`); [`BackendPolicy::global`] caches one
//!   calibrated policy per process.
//!
//! The policy composes with `QMAX_FORCE_SCALAR`: calibration times
//! whatever [`Kernel::detect`] resolves, so when dispatch is pinned to
//! the portable path the model measures (and the crossover reflects)
//! the scalar tiers.
//!
//! The choice is **performance-only**: both layouts are behavioral
//! twins (same admissions, same Ψ, same top-q on the value multiset),
//! so a wrong pick can never change a caller's observable results —
//! the differential property suites pin this down.

use core::any::TypeId;
use std::sync::OnceLock;
use std::time::Instant;

use crate::kernels::{Kernel, KernelKind};

/// How the policy picks between the AoS and SoA interval backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PolicyMode {
    /// Consult the calibrated [`CostModel`] per block capacity / fill.
    #[default]
    Auto,
    /// Always pick the array-of-structs backend (no kernel handle).
    ForceAos,
    /// Always pick the structure-of-arrays SIMD backend.
    ForceSoa,
}

impl PolicyMode {
    /// Parses the `QMAX_BACKEND_POLICY` spellings: `auto`, `force-aos`,
    /// `force-soa` (case-insensitive; `aos` / `soa` are accepted as
    /// shorthands, the empty string means `auto`). Returns `None` for
    /// anything else.
    pub fn parse(s: &str) -> Option<PolicyMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "" | "auto" => Some(PolicyMode::Auto),
            "force-aos" | "aos" => Some(PolicyMode::ForceAos),
            "force-soa" | "soa" => Some(PolicyMode::ForceSoa),
            _ => None,
        }
    }

    /// Reads `QMAX_BACKEND_POLICY` from the environment. Unset or
    /// unparseable values fall back to [`PolicyMode::Auto`] (an unknown
    /// spelling must not crash a production start-up; the auto path is
    /// always correct).
    pub fn from_env() -> PolicyMode {
        std::env::var("QMAX_BACKEND_POLICY")
            .ok()
            .and_then(|s| PolicyMode::parse(&s))
            .unwrap_or(PolicyMode::Auto)
    }
}

/// Which layout the policy picked for one block prototype.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendChoice {
    /// Array-of-structs `AmortizedQMax`: scalar admit loop, no kernel
    /// handle — the small-block fast path.
    Aos,
    /// Structure-of-arrays `SoaAmortizedQMax`: kernel-dispatched batch
    /// admit and partition over split lanes.
    Soa,
}

/// Two-point linear cost model for one admit trip through each layout:
/// `time(n) ≈ fixed_ns + n · per_item_ns`, fitted from measurements at
/// [`CAL_SMALL`] and [`CAL_LARGE`] items.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Which kernel tier the SoA measurements dispatched to.
    pub kernel_kind: KernelKind,
    /// Fixed per-trip cost of the AoS admit loop, nanoseconds.
    pub aos_fixed_ns: f64,
    /// Marginal per-item cost of the AoS admit loop, nanoseconds.
    pub aos_per_item_ns: f64,
    /// Fixed per-trip cost of the SoA kernel admit, nanoseconds.
    pub soa_fixed_ns: f64,
    /// Marginal per-item cost of the SoA kernel admit, nanoseconds.
    pub soa_per_item_ns: f64,
    /// Smallest expected per-trip fill at which the SoA line is at or
    /// below the AoS line; `usize::MAX` when the SoA line never
    /// catches up (e.g. scalar dispatch with no SIMD win).
    pub crossover_items: usize,
}

/// Small calibration size (items per timed trip).
pub const CAL_SMALL: usize = 64;
/// Large calibration size (items per timed trip).
pub const CAL_LARGE: usize = 4096;
const CAL_TRIALS: usize = 9;
const CAL_REPS: usize = 8;

impl CostModel {
    /// Fits the model from per-trip times (nanoseconds) measured at
    /// `small` and `large` items: `per_item = Δt / Δn` (clamped at 0 —
    /// timer noise must not produce a negative slope), `fixed =
    /// t_small − per_item · small` (likewise clamped).
    pub fn fit(
        kernel_kind: KernelKind,
        small: usize,
        large: usize,
        aos_ns: (f64, f64),
        soa_ns: (f64, f64),
    ) -> CostModel {
        assert!(small < large, "calibration sizes must be ordered");
        let span = (large - small) as f64;
        let per = |t: (f64, f64)| ((t.1 - t.0) / span).max(0.0);
        let fixed = |t: (f64, f64), per: f64| (t.0 - per * small as f64).max(0.0);
        let aos_per_item_ns = per(aos_ns);
        let aos_fixed_ns = fixed(aos_ns, aos_per_item_ns);
        let soa_per_item_ns = per(soa_ns);
        let soa_fixed_ns = fixed(soa_ns, soa_per_item_ns);
        CostModel {
            kernel_kind,
            aos_fixed_ns,
            aos_per_item_ns,
            soa_fixed_ns,
            soa_per_item_ns,
            crossover_items: Self::crossover(
                aos_fixed_ns,
                aos_per_item_ns,
                soa_fixed_ns,
                soa_per_item_ns,
            ),
        }
    }

    /// The break-even fill of the two cost lines: the smallest `n` with
    /// `soa_fixed + n·soa_per ≤ aos_fixed + n·aos_per`, `0` when SoA is
    /// already at or below AoS at `n = 0`, and `usize::MAX` when the
    /// SoA line never catches up.
    pub fn crossover(aos_fixed: f64, aos_per: f64, soa_fixed: f64, soa_per: f64) -> usize {
        if soa_fixed <= aos_fixed && soa_per <= aos_per {
            return 0;
        }
        if soa_per < aos_per {
            let n = (soa_fixed - aos_fixed) / (aos_per - soa_per);
            // `n` is finite and positive here (soa_fixed > aos_fixed in
            // this branch); ceil to the first integer fill past break-even.
            n.ceil().min(usize::MAX as f64 / 2.0) as usize
        } else {
            usize::MAX
        }
    }

    /// Predicted trip time in nanoseconds for `n` items on each line,
    /// `(aos_ns, soa_ns)`.
    pub fn predict_ns(&self, n: usize) -> (f64, f64) {
        (
            self.aos_fixed_ns + n as f64 * self.aos_per_item_ns,
            self.soa_fixed_ns + n as f64 * self.soa_per_item_ns,
        )
    }

    /// Serializes the model as a compact JSON object for bench-report
    /// provenance (`crossover_items` is `null` when unbounded).
    pub fn summary_json(&self) -> String {
        let crossover = if self.crossover_items == usize::MAX {
            "null".to_string()
        } else {
            self.crossover_items.to_string()
        };
        format!(
            concat!(
                "{{\"kernel\": \"{:?}\", \"aos_fixed_ns\": {:.3}, ",
                "\"aos_per_item_ns\": {:.4}, \"soa_fixed_ns\": {:.3}, ",
                "\"soa_per_item_ns\": {:.4}, \"crossover_items\": {}}}"
            ),
            self.kernel_kind,
            self.aos_fixed_ns,
            self.aos_per_item_ns,
            self.soa_fixed_ns,
            self.soa_per_item_ns,
            crossover,
        )
    }
}

/// Minimum of `CAL_TRIALS` trials of `CAL_REPS` repetitions each, in
/// nanoseconds per repetition. Min-of-trials is the standard robust
/// estimator for short deterministic loops: interference only ever
/// adds time.
fn min_time_ns<F: FnMut()>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..CAL_TRIALS {
        let t0 = Instant::now();
        for _ in 0..CAL_REPS {
            f();
        }
        let dt = t0.elapsed().as_nanos() as f64 / CAL_REPS as f64;
        best = best.min(dt);
    }
    best
}

/// Runs the startup calibration pass against `kernel` and fits a
/// [`CostModel`]. The AoS trip models `AmortizedQMax::insert_batch`'s
/// hot loop (hoisted-Ψ compare + pair push into a recycled buffer); the
/// SoA trip is the kernel batch admit into preallocated lanes. Both
/// trips admit every item, matching the windows' dominant regime
/// (Ψ = `None` or below the stream mass between compactions).
///
/// Total budget is sub-millisecond: 2 sizes × 2 layouts × 9 trials × 8
/// reps over at most [`CAL_LARGE`] items.
pub fn calibrate(kernel: Kernel<u64>) -> CostModel {
    let make_items = |n: usize| -> Vec<(u64, u64)> {
        (0..n as u64)
            .map(|i| (i, i.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1))
            .collect()
    };
    let small_items = make_items(CAL_SMALL);
    let large_items = make_items(CAL_LARGE);

    let mut aos_buf: Vec<(u64, u64)> = Vec::with_capacity(CAL_LARGE);
    let mut time_aos = |items: &[(u64, u64)]| {
        min_time_ns(|| {
            aos_buf.clear();
            let threshold = 0u64;
            for &(id, val) in items {
                if val > threshold {
                    aos_buf.push((id, val));
                }
            }
            std::hint::black_box(aos_buf.len());
        })
    };
    let aos_ns = (time_aos(&small_items), time_aos(&large_items));

    let mut vals = vec![0u64; CAL_LARGE];
    let mut ids = vec![0u64; CAL_LARGE];
    let mut time_soa = |items: &[(u64, u64)]| {
        min_time_ns(|| {
            let n = items.len();
            let w = kernel.admit_pairs(items, Some(0u64), &mut vals, &mut ids, 0, n);
            std::hint::black_box(w);
        })
    };
    let soa_ns = (time_soa(&small_items), time_soa(&large_items));

    CostModel::fit(kernel.kind(), CAL_SMALL, CAL_LARGE, aos_ns, soa_ns)
}

/// Whether `V` is exactly `u64` — the only lane type the SIMD tiers
/// accept. Exposed so backend constructors in other crates can route
/// non-`u64` value lanes (e.g. `OrderedF64` scores) straight to the
/// AoS path under [`PolicyMode::Auto`] without consulting the model.
pub fn lane_is_u64<V: 'static>() -> bool {
    TypeId::of::<V>() == TypeId::of::<u64>()
}

/// A backend-selection policy: a [`PolicyMode`] plus the calibrated
/// [`CostModel`] it consults in auto mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendPolicy {
    mode: PolicyMode,
    model: CostModel,
}

impl BackendPolicy {
    /// Builds a policy from explicit parts (tests and benchmarks pin
    /// modes this way; production callers use [`BackendPolicy::global`]).
    pub fn new(mode: PolicyMode, model: CostModel) -> Self {
        BackendPolicy { mode, model }
    }

    /// The process-wide policy: mode from `QMAX_BACKEND_POLICY`, model
    /// from one [`calibrate`] pass against [`Kernel::detect`]. Both are
    /// resolved exactly once per process and cached.
    pub fn global() -> &'static BackendPolicy {
        static POLICY: OnceLock<BackendPolicy> = OnceLock::new();
        POLICY.get_or_init(|| {
            BackendPolicy::new(PolicyMode::from_env(), calibrate(Kernel::<u64>::detect()))
        })
    }

    /// The policy's mode.
    pub fn mode(&self) -> PolicyMode {
        self.mode
    }

    /// The calibrated cost model.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Picks a layout for a block of `capacity` slots that is expected
    /// to see `expected_fill` items over its lifetime (between window
    /// recycles). `None` means "unbounded" — the plain interval use
    /// where the block fills and compacts over and over. Forced modes
    /// bypass the model entirely.
    ///
    /// Two regimes drive the auto decision:
    ///
    /// * **Append-only** (`expected_fill ≤ capacity`): the block is
    ///   recycled before it ever reaches capacity, so no compaction —
    ///   the SIMD trip the SoA layout is built around — runs at all.
    ///   What remains is raw appends, where the AoS single interleaved
    ///   push beats the SoA twin-lane push (measured ~1.25× on the
    ///   basic window at τ = 0.01, whose blocks see `w·τ < capacity`
    ///   items each). AoS wins unconditionally here.
    /// * **Compaction-heavy** (`expected_fill > capacity` or `None`):
    ///   the block cycles through kernel admits, so the calibrated
    ///   crossover decides — AoS only while the per-trip fill
    ///   (≈ capacity) is below the break-even of the two cost lines.
    pub fn choose(&self, capacity: usize, expected_fill: Option<usize>) -> BackendChoice {
        match self.mode {
            PolicyMode::ForceAos => BackendChoice::Aos,
            PolicyMode::ForceSoa => BackendChoice::Soa,
            PolicyMode::Auto => {
                if let Some(fill) = expected_fill {
                    if fill <= capacity {
                        return BackendChoice::Aos;
                    }
                }
                if capacity.max(1) < self.model.crossover_items {
                    BackendChoice::Aos
                } else {
                    BackendChoice::Soa
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_documented_spellings() {
        assert_eq!(PolicyMode::parse("auto"), Some(PolicyMode::Auto));
        assert_eq!(PolicyMode::parse(""), Some(PolicyMode::Auto));
        assert_eq!(PolicyMode::parse("force-aos"), Some(PolicyMode::ForceAos));
        assert_eq!(PolicyMode::parse("FORCE-SOA"), Some(PolicyMode::ForceSoa));
        assert_eq!(PolicyMode::parse(" aos "), Some(PolicyMode::ForceAos));
        assert_eq!(PolicyMode::parse("soa"), Some(PolicyMode::ForceSoa));
        assert_eq!(PolicyMode::parse("fastest"), None);
        assert_eq!(PolicyMode::parse("force_aos"), None);
    }

    #[test]
    fn crossover_math() {
        // SoA dominates outright.
        assert_eq!(CostModel::crossover(10.0, 2.0, 5.0, 1.0), 0);
        // Classic trade: SoA pays 90 ns more up front, saves 1 ns/item.
        assert_eq!(CostModel::crossover(10.0, 2.0, 100.0, 1.0), 90);
        // Fractional break-even rounds up.
        assert_eq!(CostModel::crossover(10.0, 2.0, 101.0, 1.0), 91);
        // SoA never catches up.
        assert_eq!(CostModel::crossover(10.0, 1.0, 20.0, 1.0), usize::MAX);
        assert_eq!(CostModel::crossover(10.0, 1.0, 20.0, 2.0), usize::MAX);
    }

    #[test]
    fn fit_clamps_noise() {
        // A "large" measurement faster than the "small" one (pure timer
        // noise) must not produce negative slopes or fixed costs.
        let m = CostModel::fit(KernelKind::Scalar, 64, 4096, (100.0, 50.0), (100.0, 50.0));
        assert_eq!(m.aos_per_item_ns, 0.0);
        assert_eq!(m.soa_per_item_ns, 0.0);
        assert!(m.aos_fixed_ns >= 0.0 && m.soa_fixed_ns >= 0.0);
        assert_eq!(m.crossover_items, 0);
    }

    fn model_with_crossover(crossover: usize) -> CostModel {
        CostModel {
            kernel_kind: KernelKind::Scalar,
            aos_fixed_ns: 10.0,
            aos_per_item_ns: 2.0,
            soa_fixed_ns: 100.0,
            soa_per_item_ns: 1.0,
            crossover_items: crossover,
        }
    }

    #[test]
    fn forced_modes_bypass_model() {
        let model = model_with_crossover(usize::MAX);
        let aos = BackendPolicy::new(PolicyMode::ForceAos, model);
        let soa = BackendPolicy::new(PolicyMode::ForceSoa, model);
        for cap in [1usize, 100, 1 << 20] {
            assert_eq!(aos.choose(cap, None), BackendChoice::Aos);
            assert_eq!(soa.choose(cap, Some(1)), BackendChoice::Soa);
        }
    }

    #[test]
    fn auto_distinguishes_append_only_from_compaction_heavy() {
        let p = BackendPolicy::new(PolicyMode::Auto, model_with_crossover(90));
        // No hint: unbounded stream, crossover decides on capacity.
        assert_eq!(p.choose(1000, None), BackendChoice::Soa);
        assert_eq!(p.choose(50, None), BackendChoice::Aos);
        // Lifetime fill within capacity: append-only, AoS regardless of
        // the crossover (even when the fill exceeds it).
        assert_eq!(p.choose(1000, Some(10)), BackendChoice::Aos);
        assert_eq!(p.choose(1000, Some(1000)), BackendChoice::Aos);
        // Lifetime fill past capacity: compaction-heavy, back to the
        // crossover on capacity.
        assert_eq!(p.choose(1000, Some(10_000)), BackendChoice::Soa);
        assert_eq!(p.choose(50, Some(10_000)), BackendChoice::Aos);
    }

    #[test]
    fn append_only_rule_beats_soa_dominant_model() {
        // Even a model where SoA dominates outright (crossover 0) must
        // not reach a block that never compacts: at basic-window
        // τ = 0.01 geometry (fill w·τ below capacity) the measured win
        // is AoS, because the kernel path never runs.
        let p = BackendPolicy::new(PolicyMode::Auto, model_with_crossover(0));
        assert_eq!(p.choose(12_500, Some(10_000)), BackendChoice::Aos);
        assert_eq!(p.choose(12_500, Some(100_000)), BackendChoice::Soa);
        assert_eq!(p.choose(12_500, None), BackendChoice::Soa);
    }

    #[test]
    fn calibration_produces_sane_model() {
        let m = calibrate(Kernel::<u64>::detect());
        assert!(m.aos_fixed_ns.is_finite() && m.aos_fixed_ns >= 0.0);
        assert!(m.soa_fixed_ns.is_finite() && m.soa_fixed_ns >= 0.0);
        assert!(m.aos_per_item_ns.is_finite() && m.aos_per_item_ns >= 0.0);
        assert!(m.soa_per_item_ns.is_finite() && m.soa_per_item_ns >= 0.0);
        let json = m.summary_json();
        for key in [
            "kernel",
            "aos_fixed_ns",
            "aos_per_item_ns",
            "soa_fixed_ns",
            "soa_per_item_ns",
            "crossover_items",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn global_policy_is_cached() {
        let a = BackendPolicy::global() as *const BackendPolicy;
        let b = BackendPolicy::global() as *const BackendPolicy;
        assert_eq!(a, b);
    }

    #[test]
    fn lane_check_matches_types() {
        assert!(lane_is_u64::<u64>());
        assert!(!lane_is_u64::<u32>());
        assert!(!lane_is_u64::<i64>());
    }

    #[test]
    fn predict_follows_lines() {
        let m = model_with_crossover(90);
        let (a, s) = m.predict_ns(90);
        assert_eq!(a, 10.0 + 180.0);
        assert_eq!(s, 100.0 + 90.0);
    }
}
