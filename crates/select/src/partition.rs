//! In-place partition and small-array helpers.

use core::cmp::Ordering;

/// Sorts `buf` in place with insertion sort.
///
/// Used as the base case of the selection routines; intended for small
/// slices (a few dozen elements).
#[inline]
pub fn insertion_sort<T: Ord>(buf: &mut [T]) {
    for i in 1..buf.len() {
        let mut j = i;
        while j > 0 && buf[j - 1] > buf[j] {
            buf.swap(j - 1, j);
            j -= 1;
        }
        debug_assert!(buf[..=i].windows(2).all(|w| w[0] <= w[1]));
    }
}

/// Sorts a group of at most five elements and returns the index of its
/// median (lower median for even-sized groups).
///
/// The group is `buf[lo..lo + len]`; the returned index is absolute.
#[inline]
pub fn median_of_five<T: Ord>(buf: &mut [T], lo: usize, len: usize) -> usize {
    debug_assert!((1..=5).contains(&len));
    debug_assert!(lo + len <= buf.len());
    insertion_sort(&mut buf[lo..lo + len]);
    lo + (len - 1) / 2
}

/// Three-way (Dutch national flag) partition of `buf[lo..hi]` around the
/// pivot value `pivot`.
///
/// On return `(lt, gt)`:
/// * `buf[lo..lt]`  contains elements `< pivot`,
/// * `buf[lt..gt]`  contains elements `== pivot`,
/// * `buf[gt..hi]`  contains elements `> pivot`.
#[inline]
pub fn partition3<T: Ord>(buf: &mut [T], lo: usize, hi: usize, pivot: &T) -> (usize, usize) {
    debug_assert!(lo <= hi && hi <= buf.len());
    let mut lt = lo;
    let mut i = lo;
    let mut gt = hi;
    while i < gt {
        // Dutch-flag invariant: [lo..lt) < pivot, [lt..i) == pivot,
        // [i..gt) unclassified, [gt..hi) > pivot.
        debug_assert!(lt <= i && i <= gt && gt <= hi);
        match buf[i].cmp(pivot) {
            Ordering::Less => {
                buf.swap(lt, i);
                lt += 1;
                i += 1;
            }
            Ordering::Greater => {
                gt -= 1;
                buf.swap(i, gt);
            }
            Ordering::Equal => i += 1,
        }
    }
    debug_assert!(buf[lo..lt].iter().all(|x| x < pivot));
    debug_assert!(buf[lt..gt].iter().all(|x| x == pivot));
    debug_assert!(buf[gt..hi].iter().all(|x| x > pivot));
    (lt, gt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insertion_sort_sorts() {
        let mut v = vec![5, 3, 8, 1, 9, 2, 2, 7];
        insertion_sort(&mut v);
        assert_eq!(v, vec![1, 2, 2, 3, 5, 7, 8, 9]);
    }

    #[test]
    fn insertion_sort_empty_and_single() {
        let mut v: Vec<i32> = vec![];
        insertion_sort(&mut v);
        assert!(v.is_empty());
        let mut v = vec![42];
        insertion_sort(&mut v);
        assert_eq!(v, vec![42]);
    }

    #[test]
    fn median_of_five_returns_median() {
        let mut v = vec![0, 9, 4, 7, 2, 5, 0];
        let m = median_of_five(&mut v, 1, 5);
        // group was [9,4,7,2,5] -> sorted [2,4,5,7,9], median 5 at offset 2.
        assert_eq!(v[m], 5);
        assert_eq!(m, 3);
    }

    #[test]
    fn median_of_five_short_groups() {
        for len in 1..=5usize {
            let mut v: Vec<u32> = (0..len as u32).rev().collect();
            let m = median_of_five(&mut v, 0, len);
            assert_eq!(v[m] as usize, (len - 1) / 2);
        }
    }

    #[test]
    fn partition3_partitions() {
        let mut v = vec![4, 1, 7, 4, 9, 0, 4, 3, 8];
        let (lt, gt) = partition3(&mut v, 0, 9, &4);
        assert!(v[..lt].iter().all(|&x| x < 4));
        assert!(v[lt..gt].iter().all(|&x| x == 4));
        assert!(v[gt..].iter().all(|&x| x > 4));
        assert_eq!(gt - lt, 3);
    }

    #[test]
    fn partition3_subrange_untouched_outside() {
        let mut v = vec![100, 4, 1, 7, 4, -1];
        let (lt, gt) = partition3(&mut v, 1, 5, &4);
        assert_eq!(v[0], 100);
        assert_eq!(v[5], -1);
        assert!(v[1..lt].iter().all(|&x| x < 4));
        assert!(v[lt..gt].iter().all(|&x| x == 4));
        assert!(v[gt..5].iter().all(|&x| x > 4));
    }

    #[test]
    fn partition3_all_equal() {
        let mut v = vec![5; 8];
        let (lt, gt) = partition3(&mut v, 0, 8, &5);
        assert_eq!((lt, gt), (0, 8));
    }

    #[test]
    fn partition3_pivot_absent() {
        let mut v = vec![1, 9, 3, 7];
        let (lt, gt) = partition3(&mut v, 0, 4, &5);
        assert_eq!(lt, gt);
        assert!(v[..lt].iter().all(|&x| x < 5));
        assert!(v[gt..].iter().all(|&x| x > 5));
    }
}
