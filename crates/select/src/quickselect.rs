//! Complete (non-incremental) selection: introselect and pure
//! median-of-medians.

use crate::partition::{insertion_sort, median_of_five, partition3};

/// Ranges shorter than this are solved by insertion sort.
const SMALL: usize = 24;

/// Out-of-line panic for the `k >= len` contract violation, keeping the
/// cold formatting machinery off the selection hot path.
#[cold]
#[inline(never)]
fn index_out_of_range(k: usize, len: usize) -> ! {
    panic!("selection index {k} out of range {len}");
}

/// Rearranges `buf` so that its `k`-th smallest element (0-based) is at
/// index `k`, everything before it is `<=` it, and everything after is
/// `>=` it. Returns a reference to the element at index `k`.
///
/// This is *introselect*: quickselect using a pseudo-random pivot, falling
/// back to median-of-medians pivot selection when the recursion depth
/// budget is exhausted, so the worst case is `O(n)`.
///
/// # Panics
///
/// Panics if `k >= buf.len()`.
pub fn nth_smallest<T: Ord>(buf: &mut [T], k: usize) -> &T {
    if k >= buf.len() {
        index_out_of_range(k, buf.len());
    }
    let n = buf.len();
    // 2 * log2(n) pivot rounds before falling back to MoM pivots.
    let mut depth_budget = 2 * (usize::BITS - n.leading_zeros()) as usize + 2;
    let mut lo = 0usize;
    let mut hi = n;
    let target = k;
    // Cheap deterministic pivot randomization (splitmix-style counter).
    let mut rng_state: u64 = 0x9E37_79B9_7F4A_7C15 ^ (n as u64);
    loop {
        if hi - lo <= SMALL {
            insertion_sort(&mut buf[lo..hi]);
            return &buf[target];
        }
        let pivot_idx = if depth_budget == 0 {
            mom_pivot(buf, lo, hi)
        } else {
            depth_budget -= 1;
            rng_state = rng_state
                .wrapping_mul(0xD120_0000_0000_1001)
                .wrapping_add(1);
            let r = (rng_state >> 33) as usize;
            // Median of three pseudo-random probes.
            let a = lo + r % (hi - lo);
            let b = lo + (r / (hi - lo)) % (hi - lo);
            let c = lo + (hi - lo) / 2;
            median3_index(buf, a, b, c)
        };
        buf.swap(lo, pivot_idx);
        let (plo, phi) = {
            // partition3 needs the pivot by value; move it to `lo` and use
            // a clone-free trick: split the slice so the pivot is outside
            // the partitioned range.
            let (head, tail) = buf.split_at_mut(lo + 1);
            let pivot = &head[lo];
            let (lt, gt) = partition3_rel(tail, hi - lo - 1, pivot);
            (lo + 1 + lt, lo + 1 + gt)
        };
        // Fold the pivot element (at lo) into the "equal" run.
        buf.swap(lo, plo - 1);
        let eq_lo = plo - 1;
        let eq_hi = phi;
        debug_assert!(lo < eq_lo + 1 && eq_lo < eq_hi && eq_hi <= hi);
        if target < eq_lo {
            hi = eq_lo;
        } else if target >= eq_hi {
            lo = eq_hi;
        } else {
            return &buf[target];
        }
        debug_assert!(lo <= target && target < hi);
    }
}

/// Three-way partition of `tail[..len]` around `pivot`; relative indices.
#[inline]
fn partition3_rel<T: Ord>(tail: &mut [T], len: usize, pivot: &T) -> (usize, usize) {
    partition3(tail, 0, len, pivot)
}

#[inline]
fn median3_index<T: Ord>(buf: &[T], a: usize, b: usize, c: usize) -> usize {
    let (x, y, z) = (&buf[a], &buf[b], &buf[c]);
    if (x <= y) == (y <= z) {
        b
    } else if (y <= x) == (x <= z) {
        a
    } else {
        c
    }
}

/// Chooses a worst-case-good pivot for `buf[lo..hi]` by the BFPRT
/// median-of-medians construction and returns its index.
fn mom_pivot<T: Ord>(buf: &mut [T], lo: usize, hi: usize) -> usize {
    let n = hi - lo;
    let mut ngroups = 0usize;
    let mut g = lo;
    while g < hi {
        let len = (hi - g).min(5);
        let m = median_of_five(buf, g, len);
        buf.swap(lo + ngroups, m);
        ngroups += 1;
        g += len;
    }
    debug_assert_eq!(ngroups, n.div_ceil(5));
    // Recursively select the median of the medians now packed at the front.
    let mid = (ngroups - 1) / 2;
    nth_smallest(&mut buf[lo..lo + ngroups], mid);
    lo + mid
}

/// Pure BFPRT median-of-medians selection: worst-case `O(n)` regardless of
/// input order, with a larger constant than [`nth_smallest`].
///
/// Same contract as [`nth_smallest`].
pub fn mom_nth_smallest<T: Ord>(buf: &mut [T], k: usize) -> &T {
    if k >= buf.len() {
        index_out_of_range(k, buf.len());
    }
    let mut lo = 0usize;
    let mut hi = buf.len();
    let target = k;
    loop {
        if hi - lo <= SMALL {
            insertion_sort(&mut buf[lo..hi]);
            return &buf[target];
        }
        let pivot_idx = mom_pivot(buf, lo, hi);
        buf.swap(lo, pivot_idx);
        let (plo, phi) = {
            let (head, tail) = buf.split_at_mut(lo + 1);
            let pivot = &head[lo];
            let (lt, gt) = partition3(tail, 0, hi - lo - 1, pivot);
            (lo + 1 + lt, lo + 1 + gt)
        };
        buf.swap(lo, plo - 1);
        let eq_lo = plo - 1;
        let eq_hi = phi;
        if target < eq_lo {
            hi = eq_lo;
        } else if target >= eq_hi {
            lo = eq_hi;
        } else {
            return &buf[target];
        }
    }
}

/// Rearranges `buf` so that its `k`-th **largest** element (0-based, so
/// `k = 0` is the maximum) is at index `buf.len() - 1 - k`, with all
/// larger elements after it. Returns a reference to that element.
///
/// Convenience wrapper over [`nth_smallest`].
#[inline]
pub fn nth_largest<T: Ord>(buf: &mut [T], k: usize) -> &T {
    let n = buf.len();
    if k >= n {
        index_out_of_range(k, n);
    }
    nth_smallest(buf, n - 1 - k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_select(v: &mut [u32], k: usize) {
        let mut sorted = v.to_owned();
        sorted.sort_unstable();
        let got = *nth_smallest(v, k);
        assert_eq!(got, sorted[k], "k={k}");
        assert_eq!(v[k], sorted[k]);
        assert!(v[..k].iter().all(|x| *x <= v[k]));
        assert!(v[k + 1..].iter().all(|x| *x >= v[k]));
    }

    #[test]
    fn selects_on_random_data() {
        let mut state = 12345u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for n in [1usize, 2, 5, 24, 25, 100, 1000] {
            let base: Vec<u32> = (0..n).map(|_| next() % 64).collect();
            for k in [0, n / 3, n / 2, n - 1] {
                let mut v = base.clone();
                check_select(&mut v, k);
            }
        }
    }

    #[test]
    fn selects_on_adversarial_patterns() {
        for n in [50usize, 200, 1001] {
            for k in [0, n / 2, n - 1] {
                let mut asc: Vec<u32> = (0..n as u32).collect();
                check_select(&mut asc, k);
                let mut desc: Vec<u32> = (0..n as u32).rev().collect();
                check_select(&mut desc, k);
                let mut eq = vec![7u32; n];
                check_select(&mut eq, k);
                let mut organ: Vec<u32> = (0..n as u32 / 2)
                    .chain((0..n as u32 / 2 + 1).rev())
                    .take(n)
                    .collect();
                check_select(&mut organ, k);
            }
        }
    }

    #[test]
    fn mom_matches_sorted() {
        let mut state = 999u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for n in [1usize, 30, 128, 777] {
            let base: Vec<u32> = (0..n).map(|_| next() % 50).collect();
            let mut sorted = base.clone();
            sorted.sort_unstable();
            for k in [0, n / 2, n - 1] {
                let mut v = base.clone();
                assert_eq!(*mom_nth_smallest(&mut v, k), sorted[k]);
            }
        }
    }

    #[test]
    fn nth_largest_is_mirror() {
        let mut v = vec![10u32, 40, 20, 30, 50];
        assert_eq!(*nth_largest(&mut v, 0), 50);
        let mut v = vec![10u32, 40, 20, 30, 50];
        assert_eq!(*nth_largest(&mut v, 4), 10);
        let mut v = vec![10u32, 40, 20, 30, 50];
        assert_eq!(*nth_largest(&mut v, 1), 40);
        // top-1 elements sit after index n-1-k
        assert!(v[4] >= 40);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn select_out_of_range_panics() {
        let mut v = vec![1, 2, 3];
        nth_smallest(&mut v, 3);
    }
}
