//! Bottom-k sketches (Cohen & Kaplan, PODC 2007).

use qmax_core::{Minimal, OrderedF64, QMax};
use qmax_traces::hash;

/// An entry of a bottom-k sample: a key, its weight, and its rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedKey {
    /// The stream key.
    pub key: u64,
    /// The key's weight.
    pub weight: f64,
    /// The key's rank `−ln(u) / w` (smaller ranks are sampled).
    pub rank: f64,
}

/// A bottom-k sketch over a stream of **distinct** weighted keys.
///
/// Each key `x` with weight `w_x` is assigned an exponential rank
/// `r(x) = −ln(u_x) / w_x` (with hash-derived `u_x`), distributed
/// `Exp(w_x)`; the sketch keeps the `k` keys of *smallest* rank — the
/// classic "bottom-k with exponentially distributed ranks" (a.k.a.
/// sequential Poisson / PPSWR sampling). The reservoir of k minimal
/// ranks is again the q-MAX pattern via [`Minimal`].
///
/// Two sketches built with the same seed can be [`BottomK::merge`]d,
/// giving network-wide visibility (the paper's Section 2.2), and
/// support unbiased subset-sum estimation.
#[derive(Debug, Clone)]
pub struct BottomK<Q> {
    reservoir: Q,
    seed: u64,
}

impl<Q: QMax<RankedKey, Minimal<OrderedF64>>> BottomK<Q> {
    /// Creates a sketch over the given q-MIN backend. Sketches must
    /// share `seed` to be mergeable.
    pub fn new(reservoir: Q, seed: u64) -> Self {
        BottomK { reservoir, seed }
    }

    /// Processes one (distinct) weighted key.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not positive and finite.
    pub fn observe(&mut self, key: u64, weight: f64) -> bool {
        assert!(
            weight > 0.0 && weight.is_finite(),
            "weights must be positive and finite"
        );
        let u = hash::to_unit_open(key, self.seed);
        let rank = -u.ln() / weight;
        self.reservoir
            .insert(RankedKey { key, weight, rank }, Minimal(OrderedF64(rank)))
    }

    /// The current sample, smallest rank first.
    pub fn sample(&mut self) -> Vec<RankedKey> {
        let mut s: Vec<RankedKey> = self
            .reservoir
            .query()
            .into_iter()
            .map(|(rk, _)| rk)
            .collect();
        s.sort_by(|a, b| a.rank.total_cmp(&b.rank));
        s
    }

    /// Merges another sketch's sample into this one (both must use the
    /// same seed so shared keys carry identical ranks).
    pub fn merge(&mut self, other: &mut Self) {
        debug_assert_eq!(
            self.seed, other.seed,
            "merging sketches with different seeds"
        );
        for rk in other.sample() {
            self.reservoir.insert(rk, Minimal(OrderedF64(rk.rank)));
        }
    }

    /// Estimates the total weight of keys selected by `subset` using
    /// the rank-conditioned estimator: with `τ` the k-th smallest rank,
    /// each of the other sampled keys contributes
    /// `w / (1 − exp(−w·τ))` (its inverse inclusion probability
    /// conditioned on τ).
    pub fn estimate_subset<F: Fn(u64) -> bool>(&mut self, subset: F) -> f64 {
        let sample = self.sample();
        if sample.len() < self.reservoir.q() {
            return sample
                .iter()
                .filter(|rk| subset(rk.key))
                .map(|rk| rk.weight)
                .sum();
        }
        let tau = sample.last().expect("non-empty").rank;
        sample
            .iter()
            .take(sample.len() - 1)
            .filter(|rk| subset(rk.key))
            .map(|rk| {
                let p = 1.0 - (-rk.weight * tau).exp();
                rk.weight / p.max(f64::MIN_POSITIVE)
            })
            .sum()
    }

    /// Estimates the `phi`-quantile (`0 < phi < 1`) of the **weight
    /// distribution over keys** — e.g. `phi = 0.5` estimates the median
    /// key weight. Uses the sample directly (bottom-k with exponential
    /// ranks samples keys with probability increasing in weight, so the
    /// estimate reweights each sampled key by its inverse inclusion
    /// probability).
    ///
    /// Returns `None` if the sketch is empty.
    ///
    /// # Panics
    ///
    /// Panics if `phi` is outside `(0, 1)`.
    pub fn estimate_quantile(&mut self, phi: f64) -> Option<f64> {
        assert!(phi > 0.0 && phi < 1.0, "phi must be in (0, 1)");
        let sample = self.sample();
        if sample.is_empty() {
            return None;
        }
        let full = sample.len() >= self.reservoir.q();
        let tau = if full {
            sample.last().expect("non-empty").rank
        } else {
            f64::INFINITY
        };
        // Per-key estimated multiplicity: 1 / P(sampled | tau).
        let mut weighted: Vec<(f64, f64)> = sample
            .iter()
            .take(if full { sample.len() - 1 } else { sample.len() })
            .map(|rk| {
                let p = if full {
                    1.0 - (-rk.weight * tau).exp()
                } else {
                    1.0
                };
                (rk.weight, 1.0 / p.max(f64::MIN_POSITIVE))
            })
            .collect();
        if weighted.is_empty() {
            return None;
        }
        weighted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let total: f64 = weighted.iter().map(|&(_, m)| m).sum();
        let target = phi * total;
        let mut acc = 0.0;
        for &(w, m) in &weighted {
            acc += m;
            if acc >= target {
                return Some(w);
            }
        }
        weighted.last().map(|&(w, _)| w)
    }

    /// Clears the sketch.
    pub fn reset(&mut self) {
        self.reservoir.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmax_core::{AmortizedQMax, HeapQMax};
    use qmax_traces::rng::SplitMix64;

    #[test]
    fn sample_holds_smallest_ranks() {
        let mut bk = BottomK::new(HeapQMax::new(8), 1);
        let mut ranks: Vec<(u64, f64)> = Vec::new();
        for key in 0..500u64 {
            let w = 1.0 + (key % 13) as f64;
            bk.observe(key, w);
            let u = hash::to_unit_open(key, 1);
            ranks.push((key, -u.ln() / w));
        }
        ranks.sort_by(|a, b| a.1.total_cmp(&b.1));
        let expect: Vec<u64> = ranks[..8].iter().map(|&(k, _)| k).collect();
        let got: Vec<u64> = bk.sample().into_iter().map(|rk| rk.key).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn heavier_keys_are_sampled_more() {
        // Key 0 has 1000x weight; it should essentially always be in
        // the bottom-k sample.
        let mut bk = BottomK::new(AmortizedQMax::new(16, 0.5), 2);
        bk.observe(0, 100_000.0);
        for key in 1..5000u64 {
            bk.observe(key, 1.0);
        }
        assert!(
            bk.sample().iter().any(|rk| rk.key == 0),
            "heavy key not sampled"
        );
    }

    #[test]
    fn subset_estimate_is_close() {
        let mut rng = SplitMix64::new(3);
        let n = 30_000u64;
        let k = 3000;
        let mut bk = BottomK::new(AmortizedQMax::new(k, 0.5), 5);
        let mut truth = 0.0;
        for key in 0..n {
            let w = 0.5 + rng.next_f64() * 4.5;
            if key % 3 == 0 {
                truth += w;
            }
            bk.observe(key, w);
        }
        let est = bk.estimate_subset(|key| key % 3 == 0);
        let rel = (est - truth).abs() / truth;
        assert!(rel < 0.1, "est {est} truth {truth} rel {rel}");
    }

    #[test]
    fn merged_sketch_equals_single_sketch() {
        let k = 32;
        let all: Vec<(u64, f64)> = (0..2000u64)
            .map(|key| (key, 1.0 + (key % 7) as f64))
            .collect();
        let mut whole = BottomK::new(AmortizedQMax::new(k, 0.5), 9);
        let mut left = BottomK::new(AmortizedQMax::new(k, 0.5), 9);
        let mut right = BottomK::new(AmortizedQMax::new(k, 0.5), 9);
        for &(key, w) in &all {
            whole.observe(key, w);
            if key % 2 == 0 {
                left.observe(key, w);
            } else {
                right.observe(key, w);
            }
        }
        left.merge(&mut right);
        let a: Vec<u64> = whole.sample().into_iter().map(|rk| rk.key).collect();
        let b: Vec<u64> = left.sample().into_iter().map(|rk| rk.key).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn quantile_estimate_tracks_truth() {
        // Keys with weights uniform in [1, 100]; the true median key
        // weight is ~50.
        let mut rng = SplitMix64::new(9);
        let mut bk = BottomK::new(AmortizedQMax::new(2000, 0.5), 7);
        let mut weights = Vec::new();
        for key in 0..40_000u64 {
            let w = 1.0 + rng.next_f64() * 99.0;
            weights.push(w);
            bk.observe(key, w);
        }
        weights.sort_by(f64::total_cmp);
        for phi in [0.25, 0.5, 0.9] {
            let truth = weights[(phi * weights.len() as f64) as usize];
            let est = bk.estimate_quantile(phi).expect("non-empty sketch");
            let rel = (est - truth).abs() / truth;
            assert!(
                rel < 0.2,
                "phi={phi}: est {est} vs truth {truth} (rel {rel})"
            );
        }
    }

    #[test]
    fn quantile_on_small_sketch_is_exact_order_statistic() {
        let mut bk = BottomK::new(HeapQMax::new(100), 1);
        for (key, w) in [(1u64, 10.0), (2, 20.0), (3, 30.0), (4, 40.0)] {
            bk.observe(key, w);
        }
        assert_eq!(bk.estimate_quantile(0.5), Some(20.0));
        assert_eq!(bk.estimate_quantile(0.95), Some(40.0));
    }

    #[test]
    fn quantile_empty_is_none() {
        let mut bk = BottomK::new(HeapQMax::new(4), 1);
        assert_eq!(bk.estimate_quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "phi must be in")]
    fn quantile_bad_phi_panics() {
        let mut bk = BottomK::new(HeapQMax::new(4), 1);
        bk.observe(1, 1.0);
        bk.estimate_quantile(1.0);
    }

    #[test]
    fn short_stream_estimate_is_exact() {
        let mut bk = BottomK::new(HeapQMax::new(50), 4);
        for key in 0..20u64 {
            bk.observe(key, 3.0);
        }
        let est = bk.estimate_subset(|_| true);
        assert!((est - 60.0).abs() < 1e-9);
    }
}
