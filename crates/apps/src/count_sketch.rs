//! Count Sketch (Charikar, Chen, Farach-Colton — ICALP 2002).

use qmax_traces::hash;

/// A Count Sketch: `depth` rows of `width` signed counters giving an
/// unbiased frequency estimate with variance `O(F2 / width)` per row;
/// the median over rows bounds the error with high probability.
///
/// Used here as the per-level frequency oracle inside [`crate::UnivMon`],
/// matching the paper's description of UnivMon (Count Sketch instances,
/// each with a top-q tracker for its substream's heavy hitters).
#[derive(Debug, Clone)]
pub struct CountSketch {
    depth: usize,
    width: usize,
    rows: Vec<Vec<i64>>,
    seed: u64,
}

impl CountSketch {
    /// Creates a sketch with `depth` rows of `width` counters.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0` or `width < 2`.
    pub fn new(depth: usize, width: usize, seed: u64) -> Self {
        assert!(depth > 0, "depth must be positive");
        assert!(width >= 2, "width must be at least 2");
        CountSketch {
            depth,
            width,
            rows: vec![vec![0i64; width]; depth],
            seed,
        }
    }

    #[inline]
    fn cell(&self, row: usize, key: u64) -> (usize, i64) {
        let h = hash::hash64(key, self.seed.wrapping_add(row as u64 * 0x9E37));
        let idx = (h as usize) % self.width;
        let sign = if h & (1 << 63) != 0 { 1 } else { -1 };
        (idx, sign)
    }

    /// Adds `delta` occurrences of `key`.
    pub fn update(&mut self, key: u64, delta: i64) {
        for row in 0..self.depth {
            let (idx, sign) = self.cell(row, key);
            self.rows[row][idx] += sign * delta;
        }
    }

    /// Estimates the frequency of `key` (median of per-row estimates).
    pub fn estimate(&self, key: u64) -> i64 {
        let mut est: Vec<i64> = (0..self.depth)
            .map(|row| {
                let (idx, sign) = self.cell(row, key);
                sign * self.rows[row][idx]
            })
            .collect();
        est.sort_unstable();
        let mid = est.len() / 2;
        if est.len() % 2 == 1 {
            est[mid]
        } else {
            (est[mid - 1] + est[mid]) / 2
        }
    }

    /// Estimates the second frequency moment `F2 = Σ f(x)²` as the
    /// median over rows of the row's sum of squared counters.
    pub fn f2_estimate(&self) -> f64 {
        let mut per_row: Vec<f64> = self
            .rows
            .iter()
            .map(|row| row.iter().map(|&c| (c as f64) * (c as f64)).sum())
            .collect();
        per_row.sort_by(f64::total_cmp);
        let mid = per_row.len() / 2;
        if per_row.len() % 2 == 1 {
            per_row[mid]
        } else {
            (per_row[mid - 1] + per_row[mid]) / 2.0
        }
    }

    /// Zeroes all counters.
    pub fn reset(&mut self) {
        for row in &mut self.rows {
            row.fill(0);
        }
    }

    /// Memory footprint in counters.
    pub fn counters(&self) -> usize {
        self.depth * self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_key_is_exact() {
        let mut cs = CountSketch::new(5, 256, 1);
        cs.update(42, 100);
        assert_eq!(cs.estimate(42), 100);
        cs.update(42, -40);
        assert_eq!(cs.estimate(42), 60);
    }

    #[test]
    fn unseen_key_estimates_near_zero() {
        let mut cs = CountSketch::new(5, 1024, 2);
        for key in 0..1000u64 {
            cs.update(key, 1);
        }
        // Collisions add noise bounded by ~sqrt(F2/width).
        let noise = cs.estimate(999_999);
        assert!(noise.abs() <= 10, "noise {noise}");
    }

    #[test]
    fn heavy_key_estimate_is_accurate() {
        let mut cs = CountSketch::new(5, 512, 3);
        for key in 0..5000u64 {
            cs.update(key, 1);
        }
        cs.update(7, 2000);
        let est = cs.estimate(7);
        assert!((est - 2001).abs() <= 100, "estimate {est}");
    }

    #[test]
    fn f2_estimate_tracks_truth() {
        let mut cs = CountSketch::new(7, 2048, 4);
        // 100 keys with frequency 50 each: F2 = 100 * 2500 = 250_000.
        for key in 0..100u64 {
            cs.update(key, 50);
        }
        let est = cs.f2_estimate();
        let rel = (est - 250_000.0).abs() / 250_000.0;
        assert!(rel < 0.25, "F2 estimate {est} rel {rel}");
    }

    #[test]
    fn negative_updates_cancel() {
        let mut cs = CountSketch::new(5, 256, 7);
        for key in 0..200u64 {
            cs.update(key, 10);
        }
        for key in 0..200u64 {
            cs.update(key, -10);
        }
        assert_eq!(cs.f2_estimate(), 0.0, "all rows must cancel to zero");
        assert_eq!(cs.estimate(5), 0);
    }

    #[test]
    fn counters_accessor_reports_size() {
        let cs = CountSketch::new(3, 128, 1);
        assert_eq!(cs.counters(), 3 * 128);
    }

    #[test]
    #[should_panic(expected = "depth must be positive")]
    fn zero_depth_panics() {
        let _ = CountSketch::new(0, 16, 1);
    }

    #[test]
    #[should_panic(expected = "width must be at least 2")]
    fn tiny_width_panics() {
        let _ = CountSketch::new(3, 1, 1);
    }

    #[test]
    fn reset_zeroes() {
        let mut cs = CountSketch::new(3, 64, 5);
        cs.update(1, 10);
        cs.reset();
        assert_eq!(cs.estimate(1), 0);
        assert_eq!(cs.f2_estimate(), 0.0);
    }
}
