//! Network-measurement applications built on the q-MAX interface.
//!
//! Section 2 of the q-MAX paper surveys measurement algorithms whose
//! inner loop maintains the `q` largest (or smallest) values of a
//! stream; this crate implements them, each generic over the reservoir
//! backend so the paper's Heap / SkipList / q-MAX comparisons
//! (Figures 8 and 14) swap only the data structure:
//!
//! * [`PrioritySampling`] — optimal weighted sampling (Duffield et al.).
//! * [`Pba`] — Priority-Based Aggregation: weighted sampling with
//!   per-key aggregation (Duffield et al., CIKM 2017).
//! * [`network_wide`] — routing-oblivious network-wide heavy hitters
//!   (Ben Basat et al., ANCS 2018): per-NMP k-min packet samples merged
//!   at a controller, plus the sliding-window variant of Theorem 8.
//! * [`CountDistinct`] — KMV distinct counting (Bar-Yossef et al.).
//! * [`BottomK`] — bottom-k sketches with subset-sum estimation
//!   (Cohen & Kaplan).
//! * [`CountSketch`] / [`UnivMon`] — universal monitoring (Liu et al.,
//!   SIGCOMM 2016) with q-MAX heavy-hitter tracking per level.
//! * [`Dbm`] — Dynamic Bucket Merge bandwidth monitoring (Uyeda et al.,
//!   NSDI 2011).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bottom_k;
mod count_distinct;
mod count_sketch;
mod dbm;
pub mod network_wide;
mod pba;
mod priority_sampling;
mod univmon;

pub use bottom_k::BottomK;
pub use count_distinct::CountDistinct;
pub use count_sketch::CountSketch;
pub use dbm::Dbm;
pub use pba::{Pba, PbaSample};
pub use priority_sampling::{PrioritySampling, WeightedKey};
pub use univmon::UnivMon;
