//! Routing-oblivious network-wide heavy hitters (Ben Basat, Einziger,
//! Moraney, Raz — ANCS 2018), the application of the paper's
//! Figures 8c–d and 14c–d.
//!
//! Each Network Measurement Point (NMP) hashes every packet it sees to
//! a pseudo-random value and keeps the `q` packets with the *smallest*
//! hashes; because the hash depends only on the packet (not on where it
//! was observed), the union of all NMP reports contains the `q`
//! globally smallest hashes — a uniform packet sample of the whole
//! network with no double counting, regardless of routing or topology.
//! The controller merges reports, estimates per-flow packet counts from
//! the sample, and lists the heavy hitters.
//!
//! The sliding-window variant (Theorem 8) replaces the interval q-MIN
//! with a slack-window q-MIN.

use qmax_core::{BasicSlackQMax, Minimal, QMax, TimeSlackQMax};
use qmax_traces::{FlowKey, Packet};
use std::collections::{HashMap, HashSet};

/// A packet observation carried in NMP reports: the flow it belongs to
/// plus the packet's network-wide unique hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampledPacket {
    /// Flow of the sampled packet.
    pub flow: FlowKey,
    /// The packet's 64-bit network-wide hash (sampling key).
    pub hash: u64,
}

/// A Network Measurement Point: keeps the `q` packets with minimal
/// hash among those it observed.
///
/// Generic over the q-MAX backend (values are [`Minimal`]-wrapped so
/// "largest" means "smallest hash").
#[derive(Debug, Clone)]
pub struct Nmp<Q> {
    reservoir: Q,
    observed: u64,
}

impl<Q: QMax<SampledPacket, Minimal<u64>>> Nmp<Q> {
    /// Creates an NMP over the given backend.
    pub fn new(reservoir: Q) -> Self {
        Nmp {
            reservoir,
            observed: 0,
        }
    }

    /// Processes one observed packet.
    pub fn observe(&mut self, pkt: &Packet) -> bool {
        self.observe_raw(pkt.flow(), pkt.packet_id())
    }

    /// Processes one observation given a pre-computed packet hash
    /// (what datapath integrations that already carry the packet id
    /// call, avoiding a re-hash).
    pub fn observe_raw(&mut self, flow: FlowKey, packet_hash: u64) -> bool {
        self.observed += 1;
        self.reservoir.insert(
            SampledPacket {
                flow,
                hash: packet_hash,
            },
            Minimal(packet_hash),
        )
    }

    /// The NMP's current report: its `q` minimal-hash packets.
    pub fn report(&mut self) -> Vec<SampledPacket> {
        self.reservoir
            .query()
            .into_iter()
            .map(|(sp, _)| sp)
            .collect()
    }

    /// Number of packets this NMP has observed.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Clears the NMP.
    pub fn reset(&mut self) {
        self.reservoir.reset();
        self.observed = 0;
    }
}

/// Convenience alias: an NMP over a slack-window backend, giving the
/// sliding-window network-wide heavy hitters of Theorem 8.
pub type WindowedNmp = Nmp<BasicSlackQMax<SampledPacket, Minimal<u64>>>;

/// An NMP over a **time-based** slack window (the paper defines
/// distributed windows in time units, e.g. "the last 24 hours with
/// τ = 1/24"): each point keeps the `q` minimal-hash packets of the
/// last `W(1−τ)..W` nanoseconds, and reports remain mergeable because
/// packet hashes and timestamps are routing-independent.
#[derive(Debug, Clone)]
pub struct TimedNmp {
    reservoir: TimeSlackQMax<SampledPacket, Minimal<u64>>,
    observed: u64,
}

impl TimedNmp {
    /// Creates a time-windowed NMP keeping `q` minimal-hash packets
    /// over windows of `window_ns` with slack `tau` and space-slack
    /// `gamma`.
    pub fn new(q: usize, gamma: f64, window_ns: u64, tau: f64) -> Self {
        TimedNmp {
            reservoir: TimeSlackQMax::new(q, gamma, window_ns, tau),
            observed: 0,
        }
    }

    /// Processes one observed packet (timestamps must be
    /// non-decreasing per NMP).
    pub fn observe(&mut self, pkt: &Packet) -> bool {
        self.observed += 1;
        let hash = pkt.packet_id();
        self.reservoir.insert(
            SampledPacket {
                flow: pkt.flow(),
                hash,
            },
            Minimal(hash),
            pkt.ts_ns,
        )
    }

    /// The NMP's report for the window ending at `now_ns`.
    pub fn report_at(&mut self, now_ns: u64) -> Vec<SampledPacket> {
        self.reservoir
            .query_at(now_ns)
            .into_iter()
            .map(|(sp, _)| sp)
            .collect()
    }

    /// Number of packets observed.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Clears the NMP.
    pub fn reset(&mut self) {
        self.reservoir.reset();
        self.observed = 0;
    }
}

/// The central controller: merges NMP reports into the global `q`-min
/// packet sample and answers heavy-hitter queries.
#[derive(Debug, Clone)]
pub struct Controller {
    q: usize,
}

/// The merged network-wide sample with its derived estimators.
#[derive(Debug, Clone)]
pub struct GlobalSample {
    /// The `q` globally minimal-hash packets (deduplicated).
    pub packets: Vec<SampledPacket>,
    /// Estimated number of distinct packets network-wide.
    pub total_estimate: f64,
}

impl Controller {
    /// Creates a controller that maintains a global sample of `q`
    /// packets.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`.
    pub fn new(q: usize) -> Self {
        assert!(q > 0, "q must be positive");
        Controller { q }
    }

    /// Merges NMP reports into the global `q`-min sample. Packets
    /// observed by several NMPs carry identical hashes and are counted
    /// once.
    pub fn merge(&self, reports: &[Vec<SampledPacket>]) -> GlobalSample {
        let mut seen: HashSet<u64> = HashSet::new();
        let mut all: Vec<SampledPacket> = Vec::new();
        for report in reports {
            for &sp in report {
                if seen.insert(sp.hash) {
                    all.push(sp);
                }
            }
        }
        all.sort_by_key(|sp| sp.hash);
        all.truncate(self.q);
        let total_estimate = if all.len() < self.q {
            all.len() as f64
        } else {
            // k-min estimator: with the q-th smallest normalized hash
            // v_q, the number of distinct packets is ≈ (q − 1) / v_q.
            let vq = (all[all.len() - 1].hash as f64 + 1.0) / (u64::MAX as f64 + 1.0);
            (self.q as f64 - 1.0) / vq
        };
        GlobalSample {
            packets: all,
            total_estimate,
        }
    }

    /// Estimated per-flow packet counts derived from a merged sample:
    /// each sampled packet represents `total_estimate / q` packets.
    pub fn flow_estimates(&self, sample: &GlobalSample) -> HashMap<FlowKey, f64> {
        let mut counts: HashMap<FlowKey, u64> = HashMap::new();
        for sp in &sample.packets {
            *counts.entry(sp.flow).or_default() += 1;
        }
        let scale = if sample.packets.is_empty() {
            0.0
        } else {
            sample.total_estimate / sample.packets.len() as f64
        };
        counts
            .into_iter()
            .map(|(f, c)| (f, c as f64 * scale))
            .collect()
    }

    /// Lists the flows whose estimated frequency is at least
    /// `theta · total_estimate` (the heavy hitters), sorted by
    /// estimated frequency, largest first.
    pub fn heavy_hitters(&self, sample: &GlobalSample, theta: f64) -> Vec<(FlowKey, f64)> {
        let cut = theta * sample.total_estimate;
        let mut hh: Vec<(FlowKey, f64)> = self
            .flow_estimates(sample)
            .into_iter()
            .filter(|&(_, est)| est >= cut)
            .collect();
        hh.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        hh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmax_core::{AmortizedQMax, HeapQMax};
    use qmax_traces::gen::caida_like;
    use qmax_traces::rng::SplitMix64;

    fn route_packets(packets: &[Packet], nmps: usize, seed: u64) -> Vec<Vec<Packet>> {
        // Each packet traverses 1-3 randomly chosen NMPs (duplicated
        // observations, like a real multi-hop path).
        let mut rng = SplitMix64::new(seed);
        let mut per_nmp: Vec<Vec<Packet>> = vec![Vec::new(); nmps];
        for &p in packets {
            let hops = 1 + rng.next_below(3) as usize;
            let mut used = Vec::new();
            for _ in 0..hops {
                let n = rng.next_below(nmps as u64) as usize;
                if !used.contains(&n) {
                    per_nmp[n].push(p);
                    used.push(n);
                }
            }
        }
        per_nmp
    }

    #[test]
    fn merge_deduplicates_multi_observed_packets() {
        let packets: Vec<Packet> = caida_like(5000, 1).collect();
        let per_nmp = route_packets(&packets, 4, 2);
        let mut nmps: Vec<Nmp<HeapQMax<SampledPacket, Minimal<u64>>>> =
            (0..4).map(|_| Nmp::new(HeapQMax::new(200))).collect();
        for (nmp, pkts) in nmps.iter_mut().zip(&per_nmp) {
            for p in pkts {
                nmp.observe(p);
            }
        }
        let reports: Vec<_> = nmps.iter_mut().map(|n| n.report()).collect();
        let ctl = Controller::new(200);
        let sample = ctl.merge(&reports);
        assert_eq!(sample.packets.len(), 200);
        let hashes: HashSet<u64> = sample.packets.iter().map(|p| p.hash).collect();
        assert_eq!(hashes.len(), 200, "duplicates in the global sample");
    }

    #[test]
    fn merged_sample_equals_ground_truth_q_min() {
        // Routing-obliviousness: the merged q-min over distributed
        // observations (with packets observed at multiple NMPs) equals
        // the q smallest distinct packet hashes of the union.
        let packets: Vec<Packet> = caida_like(3000, 5).collect();
        let per_nmp = route_packets(&packets, 3, 7);
        let q = 64;
        let mut nmps: Vec<Nmp<AmortizedQMax<SampledPacket, Minimal<u64>>>> = (0..3)
            .map(|_| Nmp::new(AmortizedQMax::new(q, 0.5)))
            .collect();
        for (nmp, pkts) in nmps.iter_mut().zip(&per_nmp) {
            for p in pkts {
                nmp.observe(p);
            }
        }
        let reports: Vec<_> = nmps.iter_mut().map(|n| n.report()).collect();
        let merged = Controller::new(q).merge(&reports);
        // Ground truth: q smallest distinct hashes over everything any
        // NMP observed.
        let mut truth: Vec<u64> = per_nmp
            .iter()
            .flatten()
            .map(|p| p.packet_id())
            .collect::<HashSet<u64>>()
            .into_iter()
            .collect();
        truth.sort_unstable();
        truth.truncate(q);
        let merged_hashes: Vec<u64> = merged.packets.iter().map(|p| p.hash).collect();
        assert_eq!(merged_hashes, truth);
    }

    #[test]
    fn total_estimate_tracks_distinct_packets() {
        let packets: Vec<Packet> = caida_like(50_000, 9).collect();
        let q = 1000;
        let mut nmp = Nmp::new(AmortizedQMax::new(q, 0.5));
        for p in &packets {
            nmp.observe(p);
        }
        let ctl = Controller::new(q);
        let sample = ctl.merge(&[nmp.report()]);
        let rel = (sample.total_estimate - 50_000.0).abs() / 50_000.0;
        assert!(
            rel < 0.15,
            "estimate {} rel err {rel}",
            sample.total_estimate
        );
    }

    #[test]
    fn heavy_hitters_are_detected() {
        // Build a stream where one flow carries 30% of packets.
        let mut packets: Vec<Packet> = caida_like(20_000, 11).collect();
        let hh_flow = packets[0];
        for (i, p) in packets.iter_mut().enumerate() {
            if i % 10 < 3 {
                p.src_ip = hh_flow.src_ip;
                p.dst_ip = hh_flow.dst_ip;
                p.src_port = hh_flow.src_port;
                p.dst_port = hh_flow.dst_port;
                p.proto = hh_flow.proto;
            }
        }
        let q = 2000;
        let mut nmp = Nmp::new(AmortizedQMax::new(q, 0.5));
        for p in &packets {
            nmp.observe(p);
        }
        let ctl = Controller::new(q);
        let sample = ctl.merge(&[nmp.report()]);
        let hh = ctl.heavy_hitters(&sample, 0.2);
        assert!(!hh.is_empty(), "no heavy hitter found");
        assert_eq!(hh[0].0, hh_flow.flow());
        let rel = (hh[0].1 - 6000.0).abs() / 6000.0;
        assert!(rel < 0.2, "HH estimate {} (rel {rel})", hh[0].1);
    }

    #[test]
    fn timed_nmp_windows_by_time_and_stays_mergeable() {
        // Two timed NMPs see overlapping packets; merging their reports
        // for the current window yields the q-min of the *recent*
        // union only.
        let packets: Vec<Packet> = caida_like(40_000, 21).collect();
        let horizon = packets.last().unwrap().ts_ns;
        let window_ns = horizon / 4;
        let q = 200;
        let mut a = TimedNmp::new(q, 0.5, window_ns, 0.25);
        let mut b = TimedNmp::new(q, 0.5, window_ns, 0.25);
        for (i, p) in packets.iter().enumerate() {
            if i % 3 != 0 {
                a.observe(p);
            }
            if i % 3 != 1 {
                b.observe(p); // i % 3 == 2 observed by both
            }
        }
        let ctl = Controller::new(q);
        let sample = ctl.merge(&[a.report_at(horizon), b.report_at(horizon)]);
        assert_eq!(sample.packets.len(), q);
        // No sampled packet may be older than the window (plus one
        // block of slack).
        let slack = window_ns / 4 + window_ns;
        let old: HashSet<u64> = packets
            .iter()
            .filter(|p| p.ts_ns + slack < horizon)
            .map(|p| p.packet_id())
            .collect();
        let stale = sample
            .packets
            .iter()
            .filter(|sp| old.contains(&sp.hash))
            .count();
        assert_eq!(stale, 0, "{stale} expired packets in the timed sample");
        // And no duplicates despite double observation.
        let distinct: HashSet<u64> = sample.packets.iter().map(|sp| sp.hash).collect();
        assert_eq!(distinct.len(), q);
    }

    #[test]
    fn nmp_reset_and_observed_counter() {
        let packets: Vec<Packet> = caida_like(500, 31).collect();
        let mut nmp = Nmp::new(HeapQMax::new(64));
        for p in &packets {
            nmp.observe(p);
        }
        assert_eq!(nmp.observed(), 500);
        assert_eq!(nmp.report().len(), 64);
        nmp.reset();
        assert_eq!(nmp.observed(), 0);
        assert!(nmp.report().is_empty());
    }

    #[test]
    fn controller_merge_of_empty_reports() {
        let ctl = Controller::new(10);
        let sample = ctl.merge(&[]);
        assert!(sample.packets.is_empty());
        assert_eq!(sample.total_estimate, 0.0);
        assert!(ctl.heavy_hitters(&sample, 0.1).is_empty());
        assert!(ctl.flow_estimates(&sample).is_empty());
    }

    #[test]
    fn short_stream_estimate_is_exact_count() {
        // Fewer packets than q: the sample is the whole stream and the
        // estimate is exact.
        let packets: Vec<Packet> = caida_like(50, 37).collect();
        let mut nmp = Nmp::new(HeapQMax::new(1000));
        for p in &packets {
            nmp.observe(p);
        }
        let ctl = Controller::new(1000);
        let sample = ctl.merge(&[nmp.report()]);
        assert_eq!(sample.total_estimate, 50.0);
    }

    #[test]
    fn windowed_nmp_forgets_old_packets() {
        let packets: Vec<Packet> = caida_like(30_000, 13).collect();
        let q = 100;
        let mut nmp: WindowedNmp = Nmp::new(BasicSlackQMax::new(q, 0.5, 5_000, 0.25));
        for p in &packets {
            nmp.observe(p);
        }
        // All sampled packets must come from (roughly) the last 5000.
        let report = nmp.report();
        assert!(!report.is_empty());
        let old_window: HashSet<u64> = packets[..24_000].iter().map(|p| p.packet_id()).collect();
        let stale = report
            .iter()
            .filter(|sp| old_window.contains(&sp.hash))
            .count();
        assert_eq!(stale, 0, "{stale} stale packets in the windowed sample");
    }
}
