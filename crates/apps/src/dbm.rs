//! Dynamic Bucket Merge (Uyeda et al., NSDI 2011): bandwidth
//! measurement at query-time-chosen granularities.

use qmax_core::heap::MinHeap;

/// A time bucket aggregating traffic volume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    /// Start of the bucket's time range (inclusive), nanoseconds.
    pub start_ns: u64,
    /// End of the bucket's time range (inclusive), nanoseconds.
    pub end_ns: u64,
    /// Total bytes in the range.
    pub bytes: u64,
}

/// A candidate merge of a bucket with its right neighbour, kept in a
/// min-structure ordered by merge cost. Entries are invalidated lazily
/// via versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MergeCandidate {
    cost: u64,
    left: u32,
    version: u32,
}

impl PartialOrd for MergeCandidate {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MergeCandidate {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.cost.cmp(&other.cost).then(self.left.cmp(&other.left))
    }
}

/// The DBM structure: at most `m` time-contiguous buckets; when a new
/// arrival would exceed `m`, the adjacent pair whose merge introduces
/// the least error (here: smallest combined byte volume, the paper's
/// V-opt-style greedy) is merged.
///
/// The inner loop — "find the minimum-cost adjacent pair" — is served by
/// a min-structure over pair costs with lazy invalidation; the q-MAX
/// paper lists this lookup as another instance of its pattern
/// (Section 2.5). Queries report the byte volume of any time range,
/// interpolating partially covered buckets.
#[derive(Debug)]
pub struct Dbm {
    m: usize,
    /// Bucket arena; `None` marks merged-away slots.
    slots: Vec<Option<Bucket>>,
    /// `next[i]`/`prev[i]` link live slots in time order.
    next: Vec<u32>,
    prev: Vec<u32>,
    versions: Vec<u32>,
    head: u32,
    tail: u32,
    live: usize,
    candidates: MinHeap<MergeCandidate>,
}

const NIL: u32 = u32::MAX;

impl Dbm {
    /// Creates a DBM with a budget of `m` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `m < 2`.
    pub fn new(m: usize) -> Self {
        assert!(m >= 2, "need at least two buckets");
        Dbm {
            m,
            slots: Vec::new(),
            next: Vec::new(),
            prev: Vec::new(),
            versions: Vec::new(),
            head: NIL,
            tail: NIL,
            live: 0,
            candidates: MinHeap::new(),
        }
    }

    /// Number of live buckets.
    pub fn buckets(&self) -> usize {
        self.live
    }

    /// Records `bytes` of traffic at time `ts_ns`. Timestamps must be
    /// non-decreasing.
    pub fn observe(&mut self, ts_ns: u64, bytes: u64) {
        if self.tail != NIL {
            let t = self.tail as usize;
            let last = self.slots[t].as_ref().expect("tail is live");
            debug_assert!(ts_ns >= last.end_ns, "timestamps must be non-decreasing");
        }
        let idx = self.slots.len() as u32;
        self.slots.push(Some(Bucket {
            start_ns: ts_ns,
            end_ns: ts_ns,
            bytes,
        }));
        self.next.push(NIL);
        self.prev.push(self.tail);
        self.versions.push(0);
        if self.tail != NIL {
            self.next[self.tail as usize] = idx;
            self.push_candidate(self.tail);
        } else {
            self.head = idx;
        }
        self.tail = idx;
        self.live += 1;
        while self.live > self.m {
            self.merge_cheapest();
        }
    }

    fn pair_cost(&self, left: u32) -> Option<u64> {
        let l = self.slots[left as usize].as_ref()?;
        let right = self.next[left as usize];
        if right == NIL {
            return None;
        }
        let r = self.slots[right as usize].as_ref()?;
        Some(l.bytes + r.bytes)
    }

    fn push_candidate(&mut self, left: u32) {
        if let Some(cost) = self.pair_cost(left) {
            self.candidates.push(MergeCandidate {
                cost,
                left,
                version: self.versions[left as usize],
            });
        }
    }

    fn merge_cheapest(&mut self) {
        // Pop until a candidate matches the current version of its left
        // bucket (lazy invalidation).
        let cand = loop {
            let c = self.candidates.pop().expect("a mergeable pair must exist");
            let li = c.left as usize;
            if self.slots[li].is_some() && self.versions[li] == c.version && self.next[li] != NIL {
                break c;
            }
        };
        let li = c_left(cand);
        let ri = self.next[li as usize];
        debug_assert_ne!(ri, NIL);
        let r = self.slots[ri as usize].take().expect("right bucket live");
        let l = self.slots[li as usize].as_mut().expect("left bucket live");
        l.end_ns = r.end_ns;
        l.bytes += r.bytes;
        // Unlink the right bucket.
        let rn = self.next[ri as usize];
        self.next[li as usize] = rn;
        if rn != NIL {
            self.prev[rn as usize] = li;
        } else {
            self.tail = li;
        }
        self.live -= 1;
        // Invalidate and refresh affected pairs: (prev(l), l) and (l, rn).
        self.versions[li as usize] += 1;
        let pl = self.prev[li as usize];
        if pl != NIL {
            self.versions[pl as usize] += 1;
            self.push_candidate(pl);
        }
        self.push_candidate(li);
    }

    /// The current buckets in time order.
    pub fn snapshot(&self) -> Vec<Bucket> {
        let mut out = Vec::with_capacity(self.live);
        let mut cur = self.head;
        while cur != NIL {
            if let Some(b) = self.slots[cur as usize] {
                out.push(b);
            }
            cur = self.next[cur as usize];
        }
        out
    }

    /// Estimates the byte volume in `[from_ns, to_ns]`, linearly
    /// interpolating buckets that straddle the range boundaries.
    pub fn bytes_in_range(&self, from_ns: u64, to_ns: u64) -> f64 {
        if from_ns > to_ns {
            return 0.0;
        }
        let mut total = 0.0;
        for b in self.snapshot() {
            if b.end_ns < from_ns || b.start_ns > to_ns {
                continue;
            }
            let span = (b.end_ns - b.start_ns) as f64 + 1.0;
            let lo = from_ns.max(b.start_ns);
            let hi = to_ns.min(b.end_ns);
            let overlap = (hi - lo) as f64 + 1.0;
            total += b.bytes as f64 * overlap / span;
        }
        total
    }
}

#[inline]
fn c_left(c: MergeCandidate) -> u32 {
    c.left
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_within_bucket_budget() {
        let mut dbm = Dbm::new(16);
        for i in 0..10_000u64 {
            dbm.observe(i * 100, 1500);
        }
        assert!(dbm.buckets() <= 16);
        let snap = dbm.snapshot();
        assert_eq!(snap.len(), dbm.buckets());
        // Buckets are contiguous and ordered.
        for w in snap.windows(2) {
            assert!(w[0].end_ns < w[1].start_ns);
        }
    }

    #[test]
    fn total_volume_is_preserved() {
        let mut dbm = Dbm::new(8);
        let mut total = 0u64;
        for i in 0..5000u64 {
            let bytes = 100 + (i % 1400);
            total += bytes;
            dbm.observe(i * 10, bytes);
        }
        let got: u64 = dbm.snapshot().iter().map(|b| b.bytes).sum();
        assert_eq!(got, total);
    }

    #[test]
    fn full_range_query_returns_total() {
        let mut dbm = Dbm::new(32);
        let mut total = 0u64;
        for i in 0..2000u64 {
            total += 500;
            dbm.observe(i * 1000, 500);
        }
        let est = dbm.bytes_in_range(0, 2000 * 1000);
        assert!((est - total as f64).abs() < 1.0, "est {est} total {total}");
    }

    #[test]
    fn range_query_approximates_burst() {
        // Quiet traffic with a burst in the middle; the burst range
        // should dominate the estimate.
        let mut dbm = Dbm::new(64);
        for i in 0..3000u64 {
            let bytes = if (1000..1100).contains(&i) {
                100_000
            } else {
                100
            };
            dbm.observe(i * 1_000, bytes);
        }
        let burst = dbm.bytes_in_range(1_000_000, 1_100_000);
        let quiet = dbm.bytes_in_range(2_000_000, 2_100_000);
        assert!(
            burst > 50.0 * quiet,
            "burst {burst} not dominant over quiet {quiet}"
        );
    }

    #[test]
    fn merges_prefer_small_buckets() {
        // Two huge buckets at the ends, tiny ones between: tiny ones
        // merge first, so the huge ones survive as-is.
        let mut dbm = Dbm::new(3);
        dbm.observe(0, 1_000_000);
        for i in 1..100u64 {
            dbm.observe(i * 10, 1);
        }
        dbm.observe(10_000, 1_000_000);
        let snap = dbm.snapshot();
        assert!(snap.iter().any(|b| b.bytes == 1_000_000 && b.start_ns == 0));
        assert!(snap
            .iter()
            .any(|b| b.bytes >= 1_000_000 && b.end_ns == 10_000));
    }

    #[test]
    #[should_panic(expected = "at least two buckets")]
    fn tiny_budget_panics() {
        let _ = Dbm::new(1);
    }
}
