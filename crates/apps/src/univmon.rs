//! Universal Monitoring (Liu et al., SIGCOMM 2016).

use crate::count_sketch::CountSketch;
use qmax_core::{OrderedF64, QMax};
use qmax_traces::hash;
use std::collections::HashMap;

/// UnivMon: one sketch answering many measurement queries.
///
/// The stream is recursively sub-sampled into `levels` substreams
/// (level `j` keeps keys whose hash has `j` trailing zero bits); each
/// level maintains a [`CountSketch`] plus a top-`k` tracker of its
/// heavy hitters. Any *G-sum* `Σ g(f(x))` over per-key frequencies is
/// then estimated bottom-up with the recursive estimator of Liu et al.
///
/// The heavy-hitter tracker is the q-MAX pattern: the paper (and
/// NitroSketch after it) found the per-level heap update to be a main
/// bottleneck of UnivMon, which q-MAX removes. The tracker backend is
/// generic for exactly that swap.
pub struct UnivMon<Q> {
    levels: Vec<Level<Q>>,
    seed: u64,
    total: u64,
}

struct Level<Q> {
    sketch: CountSketch,
    tracker: Q,
}

impl<Q: QMax<u64, OrderedF64>> UnivMon<Q> {
    /// Creates a UnivMon with `levels` substream levels, each holding a
    /// `depth × width` Count Sketch and a heavy-hitter tracker produced
    /// by `make_tracker` (one call per level).
    ///
    /// # Panics
    ///
    /// Panics if `levels == 0`.
    pub fn new<F: FnMut() -> Q>(
        levels: usize,
        depth: usize,
        width: usize,
        seed: u64,
        mut make_tracker: F,
    ) -> Self {
        assert!(levels > 0, "levels must be positive");
        UnivMon {
            levels: (0..levels)
                .map(|j| Level {
                    sketch: CountSketch::new(depth, width, seed.wrapping_add(j as u64)),
                    tracker: make_tracker(),
                })
                .collect(),
            seed,
            total: 0,
        }
    }

    /// Number of levels.
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    /// The level a key belongs to: one more than the number of levels
    /// whose sampling bit accepts it (level 0 takes everything).
    fn key_depth(&self, key: u64) -> usize {
        let h = hash::hash64(key, self.seed ^ 0x00EE);
        ((h.trailing_ones() as usize) + 1).min(self.levels.len())
    }

    /// Processes one occurrence of `key`.
    pub fn observe(&mut self, key: u64) {
        self.total += 1;
        let depth = self.key_depth(key);
        for level in &mut self.levels[..depth] {
            level.sketch.update(key, 1);
            let est = level.sketch.estimate(key).max(0);
            level.tracker.insert(key, OrderedF64(est as f64));
        }
    }

    /// The heavy hitters of level `j` with their (re-)estimated
    /// frequencies, deduplicated, largest first.
    pub fn level_heavy_hitters(&mut self, j: usize) -> Vec<(u64, f64)> {
        let level = &mut self.levels[j];
        let mut best: HashMap<u64, f64> = HashMap::new();
        for (key, _) in level.tracker.query() {
            let est = level.sketch.estimate(key).max(0) as f64;
            best.insert(key, est);
        }
        let mut out: Vec<(u64, f64)> = best.into_iter().collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Estimates the G-sum `Σ_x g(f(x))` using the recursive UnivMon
    /// estimator: `Y_L = Σ_{HH_L} g(f̂)`, and
    /// `Y_j = 2·Y_{j+1} + Σ_{HH_j} g(f̂)·(1 − 2·[x sampled into j+1])`.
    ///
    /// `g` must satisfy `g(0) = 0`.
    pub fn estimate_gsum<G: Fn(f64) -> f64>(&mut self, g: G) -> f64 {
        let top = self.levels.len() - 1;
        let mut y = 0.0;
        for j in (0..=top).rev() {
            let hh = self.level_heavy_hitters(j);
            if j == top {
                y = hh.iter().map(|&(_, f)| g(f)).sum();
            } else {
                let correction: f64 = hh
                    .iter()
                    .map(|&(key, f)| {
                        let sampled_deeper = self.key_depth(key) > j + 1;
                        let ind = if sampled_deeper { 1.0 } else { 0.0 };
                        g(f) * (1.0 - 2.0 * ind)
                    })
                    .sum();
                y = 2.0 * y + correction;
            }
        }
        y
    }

    /// Estimates the number of distinct keys (`g(f) = 1` for `f > 0`).
    pub fn estimate_distinct(&mut self) -> f64 {
        self.estimate_gsum(|f| if f > 0.5 { 1.0 } else { 0.0 })
    }

    /// Estimates the second frequency moment `F2 = Σ f(x)²`.
    pub fn estimate_f2(&mut self) -> f64 {
        self.estimate_gsum(|f| f * f)
    }

    /// Estimates the empirical entropy `−Σ (f/N)·log2(f/N)` via the
    /// G-sum `Σ f·log2(f)`.
    pub fn estimate_entropy(&mut self) -> f64 {
        let n = self.total as f64;
        if n == 0.0 {
            return 0.0;
        }
        let fsum = self.estimate_gsum(|f| if f > 0.5 { f * f.log2() } else { 0.0 });
        (n.log2() - fsum / n).max(0.0)
    }

    /// Total stream length observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Clears the sketch.
    pub fn reset(&mut self) {
        for level in &mut self.levels {
            level.sketch.reset();
            level.tracker.reset();
        }
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmax_core::{DedupQMax, IndexedHeapQMax, KeyedSkipListQMax};
    use qmax_traces::zipf::ZipfSampler;

    fn zipf_stream(n: usize, support: usize, seed: u64) -> Vec<u64> {
        let mut z = ZipfSampler::new(support, 1.05, seed);
        (0..n).map(|_| z.sample() as u64).collect()
    }

    fn truth_counts(stream: &[u64]) -> HashMap<u64, u64> {
        let mut m = HashMap::new();
        for &k in stream {
            *m.entry(k).or_default() += 1;
        }
        m
    }

    #[test]
    fn top_heavy_hitter_is_found() {
        let stream = zipf_stream(60_000, 5000, 1);
        let truth = truth_counts(&stream);
        let (&top_key, &top_count) = truth.iter().max_by_key(|&(_, &c)| c).expect("non-empty");
        let mut um = UnivMon::new(8, 5, 2048, 7, || DedupQMax::new(64, 0.5));
        for &k in &stream {
            um.observe(k);
        }
        let hh = um.level_heavy_hitters(0);
        assert_eq!(hh[0].0, top_key, "wrong top heavy hitter");
        let rel = (hh[0].1 - top_count as f64).abs() / top_count as f64;
        assert!(rel < 0.1, "estimate {} truth {top_count}", hh[0].1);
    }

    #[test]
    fn entropy_estimate_is_reasonable() {
        let stream = zipf_stream(80_000, 2000, 3);
        let truth = truth_counts(&stream);
        let n = stream.len() as f64;
        let true_entropy: f64 = truth
            .values()
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.log2()
            })
            .sum();
        let mut um = UnivMon::new(10, 5, 4096, 11, || DedupQMax::new(128, 0.5));
        for &k in &stream {
            um.observe(k);
        }
        let est = um.estimate_entropy();
        let rel = (est - true_entropy).abs() / true_entropy;
        assert!(rel < 0.3, "entropy est {est} vs {true_entropy} (rel {rel})");
    }

    #[test]
    fn distinct_estimate_is_reasonable() {
        let stream = zipf_stream(50_000, 3000, 5);
        let truth = truth_counts(&stream).len() as f64;
        let mut um = UnivMon::new(10, 5, 4096, 13, || DedupQMax::new(128, 0.5));
        for &k in &stream {
            um.observe(k);
        }
        let est = um.estimate_distinct();
        let rel = (est - truth).abs() / truth;
        assert!(rel < 0.4, "distinct est {est} vs {truth} (rel {rel})");
    }

    #[test]
    fn f2_estimate_is_reasonable() {
        let stream = zipf_stream(60_000, 2000, 7);
        let truth: f64 = truth_counts(&stream)
            .values()
            .map(|&c| (c as f64) * (c as f64))
            .sum();
        let mut um = UnivMon::new(10, 5, 4096, 19, || DedupQMax::new(128, 0.5));
        for &k in &stream {
            um.observe(k);
        }
        let est = um.estimate_f2();
        let rel = (est - truth).abs() / truth;
        assert!(rel < 0.2, "F2 est {est} vs {truth} (rel {rel})");
    }

    #[test]
    fn tracker_backends_agree_on_top_hitters() {
        let stream = zipf_stream(30_000, 1000, 9);
        let mut a = UnivMon::new(6, 5, 2048, 17, || IndexedHeapQMax::new(32));
        let mut b = UnivMon::new(6, 5, 2048, 17, || KeyedSkipListQMax::new(32));
        for &k in &stream {
            a.observe(k);
            b.observe(k);
        }
        let ha: Vec<u64> = a
            .level_heavy_hitters(0)
            .into_iter()
            .take(5)
            .map(|(k, _)| k)
            .collect();
        let hb: Vec<u64> = b
            .level_heavy_hitters(0)
            .into_iter()
            .take(5)
            .map(|(k, _)| k)
            .collect();
        assert_eq!(ha, hb);
    }

    #[test]
    fn reset_clears() {
        let mut um = UnivMon::new(4, 3, 256, 1, || IndexedHeapQMax::new(8));
        for k in 0..100u64 {
            um.observe(k);
        }
        um.reset();
        assert_eq!(um.total(), 0);
        assert!(um.level_heavy_hitters(0).is_empty());
    }
}
