//! Priority Sampling (Duffield, Lund, Thorup — J. ACM 2007).

use qmax_core::{OrderedF64, QMax};
use qmax_traces::hash;

/// A sampled key together with its original weight (carried through the
/// reservoir as the item id).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedKey {
    /// The stream key.
    pub key: u64,
    /// The key's weight (e.g. packet byte count).
    pub weight: f64,
}

/// Priority Sampling over a stream of **distinct** weighted keys.
///
/// Each key `x` with weight `w` gets priority `w / u_x` where
/// `u_x ∈ (0,1)` is uniform (derived here by hashing the key, so all
/// replicas of the sampler agree); the sample is the `q` keys of
/// highest priority. Duffield et al. prove the resulting subset-sum
/// estimator has minimal variance among all sampling schemes.
///
/// The per-packet work is one hash, one division, and one reservoir
/// update — the reservoir is the bottleneck the q-MAX paper attacks
/// (its Figure 8a–b swaps Heap / SkipList / q-MAX here).
///
/// ```
/// use qmax_apps::PrioritySampling;
/// use qmax_core::AmortizedQMax;
/// let mut ps = PrioritySampling::new(AmortizedQMax::new(100, 0.25), 1);
/// for key in 0..10_000u64 {
///     ps.observe(key, 1.0 + (key % 17) as f64);
/// }
/// assert_eq!(ps.sample().len(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct PrioritySampling<Q> {
    reservoir: Q,
    seed: u64,
}

impl<Q: QMax<WeightedKey, OrderedF64>> PrioritySampling<Q> {
    /// Creates a sampler over the given reservoir backend. `seed`
    /// parameterises the hash used to derive per-key randomness.
    pub fn new(reservoir: Q, seed: u64) -> Self {
        PrioritySampling { reservoir, seed }
    }

    /// Processes one stream key. Keys must be distinct (use [`crate::Pba`]
    /// for repeating keys). Returns whether the reservoir admitted it.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not positive and finite.
    pub fn observe(&mut self, key: u64, weight: f64) -> bool {
        assert!(
            weight > 0.0 && weight.is_finite(),
            "weights must be positive and finite"
        );
        let u = hash::to_unit_open(key, self.seed);
        let priority = weight / u;
        self.reservoir
            .insert(WeightedKey { key, weight }, OrderedF64(priority))
    }

    /// The current priority sample: up to `q` keys with weights and
    /// priorities, highest priority first.
    pub fn sample(&mut self) -> Vec<(WeightedKey, f64)> {
        let mut s: Vec<(WeightedKey, f64)> = self
            .reservoir
            .query()
            .into_iter()
            .map(|(wk, p)| (wk, p.get()))
            .collect();
        s.sort_by(|a, b| b.1.total_cmp(&a.1));
        s
    }

    /// Estimates the total weight of the keys selected by `subset`,
    /// using the priority-sampling estimator: with `τ` the smallest
    /// priority in the sample, every other sampled key in the subset
    /// contributes `max(weight, τ)`.
    ///
    /// Unbiased once the stream is larger than the reservoir.
    pub fn estimate_subset<F: Fn(u64) -> bool>(&mut self, subset: F) -> f64 {
        let sample = self.sample();
        if sample.len() < self.reservoir.q() {
            // Reservoir not full: the sample is the whole stream.
            return sample
                .iter()
                .filter(|(wk, _)| subset(wk.key))
                .map(|(wk, _)| wk.weight)
                .sum();
        }
        let tau = sample.last().expect("sample non-empty").1;
        sample
            .iter()
            .take(sample.len() - 1)
            .filter(|(wk, _)| subset(wk.key))
            .map(|(wk, _)| wk.weight.max(tau))
            .sum()
    }

    /// Read access to the reservoir backend.
    pub fn reservoir(&self) -> &Q {
        &self.reservoir
    }

    /// Clears the sampler.
    pub fn reset(&mut self) {
        self.reservoir.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmax_core::{AmortizedQMax, DeamortizedQMax, HeapQMax, SkipListQMax};
    use qmax_traces::rng::SplitMix64;

    #[test]
    fn sample_has_q_highest_priorities() {
        let mut ps = PrioritySampling::new(HeapQMax::new(10), 3);
        let mut all: Vec<(u64, f64)> = Vec::new();
        for key in 0..1000u64 {
            let w = 1.0 + (key % 29) as f64;
            ps.observe(key, w);
            all.push((key, w / hash::to_unit_open(key, 3)));
        }
        all.sort_by(|a, b| b.1.total_cmp(&a.1));
        let expect: Vec<u64> = all[..10].iter().map(|&(k, _)| k).collect();
        let got: Vec<u64> = ps.sample().into_iter().map(|(wk, _)| wk.key).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn backends_agree_on_the_sample() {
        let streams: Vec<(u64, f64)> = (0..5000u64).map(|k| (k, 1.0 + (k % 97) as f64)).collect();
        let mut heap = PrioritySampling::new(HeapQMax::new(50), 9);
        let mut skip = PrioritySampling::new(SkipListQMax::new(50), 9);
        let mut amort = PrioritySampling::new(AmortizedQMax::new(50, 0.25), 9);
        let mut deamort = PrioritySampling::new(DeamortizedQMax::new(50, 0.25), 9);
        for &(k, w) in &streams {
            heap.observe(k, w);
            skip.observe(k, w);
            amort.observe(k, w);
            deamort.observe(k, w);
        }
        let keyset = |s: Vec<(WeightedKey, f64)>| {
            let mut v: Vec<u64> = s.into_iter().map(|(wk, _)| wk.key).collect();
            v.sort_unstable();
            v
        };
        let h = keyset(heap.sample());
        assert_eq!(h, keyset(skip.sample()));
        assert_eq!(h, keyset(amort.sample()));
        assert_eq!(h, keyset(deamort.sample()));
    }

    #[test]
    fn subset_estimate_is_close_on_large_samples() {
        // Estimate the total weight of even keys.
        let mut rng = SplitMix64::new(17);
        let n = 20_000u64;
        let q = 2000;
        let mut ps = PrioritySampling::new(AmortizedQMax::new(q, 0.5), 11);
        let mut true_even = 0.0;
        for key in 0..n {
            let w = 1.0 + rng.next_f64() * 9.0;
            if key % 2 == 0 {
                true_even += w;
            }
            ps.observe(key, w);
        }
        let est = ps.estimate_subset(|k| k % 2 == 0);
        let rel = (est - true_even).abs() / true_even;
        assert!(rel < 0.1, "estimate {est} vs true {true_even} (rel {rel})");
    }

    #[test]
    fn short_stream_estimate_is_exact() {
        let mut ps = PrioritySampling::new(HeapQMax::new(100), 5);
        for key in 0..10u64 {
            ps.observe(key, 2.0);
        }
        let est = ps.estimate_subset(|_| true);
        assert!((est - 20.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn zero_weight_panics() {
        let mut ps = PrioritySampling::new(HeapQMax::new(2), 0);
        ps.observe(1, 0.0);
    }

    #[test]
    fn windowed_priority_sampling_forgets_old_keys() {
        // Section 2.1: q-MAX "extends these methods to slack windows" —
        // plugging a slack-window backend gives priority sampling over
        // the recent stream with no further changes.
        use qmax_core::BasicSlackQMax;
        let w = 4_000;
        let mut ps = PrioritySampling::new(BasicSlackQMax::new(64, 0.5, w, 0.25), 3);
        for key in 0..50_000u64 {
            ps.observe(key, 1.0 + (key % 11) as f64);
        }
        let sample = ps.sample();
        assert!(!sample.is_empty());
        // Every sampled key must come from (roughly) the last w keys.
        let oldest_allowed = 50_000 - w as u64 - 1_000;
        for (wk, _) in &sample {
            assert!(wk.key >= oldest_allowed, "expired key {} sampled", wk.key);
        }
        // And the windowed estimator sums only the window. The slack
        // window spans between W(1−τ) and W items, and the q = 64
        // priority-sampling estimator has ~1/sqrt(q) ≈ 12.5% standard
        // error; allow 4 sigma around the slack range.
        let est = ps.estimate_subset(|_| true);
        let weight_of =
            |len: u64| -> f64 { (50_000 - len..50_000).map(|k| 1.0 + (k % 11) as f64).sum() };
        let lo = weight_of((w as f64 * 0.75) as u64) * 0.5;
        let hi = weight_of(w as u64) * 1.5;
        assert!(
            est >= lo && est <= hi,
            "windowed estimate {est} outside [{lo}, {hi}]"
        );
    }
}
