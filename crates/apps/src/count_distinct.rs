//! KMV count-distinct estimation (Bar-Yossef et al., RANDOM 2002).

use qmax_core::{FlowIndex, IndexFamily, KeyIndex, Minimal, QMax};
use qmax_traces::hash;

/// Estimates the number of distinct keys in a stream by keeping the `q`
/// smallest distinct hash values (the "k minimum values" estimator).
///
/// With `v_q` the q-th smallest hash normalised to `(0, 1)`, the number
/// of distinct keys is estimated as `(q − 1) / v_q`. The reservoir of
/// minimal hashes is exactly the q-MAX pattern (wrapped in [`Minimal`]);
/// the paper replaces the original heap with q-MAX for constant-time
/// updates, and its slack-window variant gives the sliding-window
/// estimator with asymptotically faster queries than prior work.
///
/// A side set remembers every hash ever *admitted* so re-occurrences of
/// the same key are not double-inserted; by the paper's Theorem 2 only
/// `O(q log(D/q))` hashes are ever admitted, so the set stays small.
///
/// ```
/// use qmax_apps::CountDistinct;
/// use qmax_core::AmortizedQMax;
/// let mut cd = CountDistinct::new(AmortizedQMax::new(256, 0.5), 3);
/// for i in 0..50_000u64 {
///     cd.observe(i % 10_000); // 10k distinct keys
/// }
/// let est = cd.estimate();
/// assert!((est - 10_000.0).abs() / 10_000.0 < 0.25, "estimate {est}");
/// ```
#[derive(Debug, Clone)]
pub struct CountDistinct<Q, F: IndexFamily = FlowIndex> {
    reservoir: Q,
    seed: u64,
    /// `Some` in interval mode (suppress re-insertions of hashes already
    /// admitted once); `None` in windowed mode, where a re-occurrence
    /// must refresh the key's position in the window. By default a
    /// SIMD-probed [`qmax_core::FlowTable`] used as a set: this
    /// membership test runs once per observed key.
    admitted: Option<F::Index<u64, ()>>,
}

impl<Q: QMax<u64, Minimal<u64>>> CountDistinct<Q, FlowIndex> {
    /// Creates an interval estimator over the given q-MIN backend.
    pub fn new(reservoir: Q, seed: u64) -> Self {
        Self::new_in(reservoir, seed)
    }

    /// Creates a sliding-window estimator: pair with a slack-window
    /// backend such as [`qmax_core::BasicSlackQMax`]. Re-occurrences are
    /// re-inserted (so recent duplicates keep a key alive in the
    /// window); the estimator de-duplicates hashes at query time.
    pub fn new_windowed(reservoir: Q, seed: u64) -> Self {
        Self::new_windowed_in(reservoir, seed)
    }
}

impl<Q: QMax<u64, Minimal<u64>>, F: IndexFamily> CountDistinct<Q, F> {
    /// Like [`CountDistinct::new`], but with an explicit
    /// [`IndexFamily`] for the admitted-hash set (e.g.
    /// [`qmax_core::StdIndex`] for the HashMap-era baseline).
    pub fn new_in(reservoir: Q, seed: u64) -> Self {
        CountDistinct {
            reservoir,
            seed,
            admitted: Some(F::Index::with_capacity(0)),
        }
    }

    /// Like [`CountDistinct::new_windowed`], but with an explicit
    /// [`IndexFamily`].
    pub fn new_windowed_in(reservoir: Q, seed: u64) -> Self {
        CountDistinct {
            reservoir,
            seed,
            admitted: None,
        }
    }

    /// Processes one stream key.
    pub fn observe(&mut self, key: u64) -> bool {
        let h = hash::hash64(key, self.seed);
        if let Some(admitted) = &mut self.admitted {
            if admitted.contains_key(&h) {
                return false;
            }
            let ok = self.reservoir.insert(key, Minimal(h));
            if ok {
                admitted.insert(h, ());
            }
            ok
        } else {
            self.reservoir.insert(key, Minimal(h))
        }
    }

    /// Processes a span of stream keys, returning how many were
    /// admitted to the reservoir. Observationally identical to calling
    /// [`CountDistinct::observe`] per key — duplicates within the span
    /// included — but hashes each [`qmax_core::PROBE_PIPELINE`]-key
    /// stage up front and prefetches the admitted-set groups before any
    /// membership probe resolves, so the per-key dependent miss chains
    /// overlap.
    pub fn observe_batch(&mut self, keys: &[u64]) -> usize {
        let mut count = 0;
        let mut hashes = [0u64; qmax_core::PROBE_PIPELINE];
        for chunk in keys.chunks(qmax_core::PROBE_PIPELINE) {
            for (j, &k) in chunk.iter().enumerate() {
                hashes[j] = hash::hash64(k, self.seed);
            }
            if let Some(admitted) = &self.admitted {
                admitted.prefetch_keys(&hashes[..chunk.len()]);
            }
            for (j, &k) in chunk.iter().enumerate() {
                let h = hashes[j];
                let ok = if let Some(admitted) = &mut self.admitted {
                    if admitted.contains_key(&h) {
                        false
                    } else {
                        let ok = self.reservoir.insert(k, Minimal(h));
                        if ok {
                            admitted.insert(h, ());
                        }
                        ok
                    }
                } else {
                    self.reservoir.insert(k, Minimal(h))
                };
                count += usize::from(ok);
            }
        }
        count
    }

    /// Estimates the number of distinct keys seen (within the window,
    /// for windowed instances).
    pub fn estimate(&mut self) -> f64 {
        let mut hashes: Vec<u64> = self
            .reservoir
            .query()
            .into_iter()
            .map(|(_, Minimal(h))| h)
            .collect();
        hashes.sort_unstable();
        hashes.dedup();
        let q = self.reservoir.q().min(hashes.len());
        if hashes.len() < self.reservoir.q() {
            return hashes.len() as f64;
        }
        let vq = (hashes[q - 1] as f64 + 1.0) / (u64::MAX as f64 + 1.0);
        (q as f64 - 1.0) / vq
    }

    /// Number of hashes ever admitted (sizing diagnostic; expected
    /// `O(q log(D/q))`). Zero for windowed instances.
    pub fn admitted_count(&self) -> usize {
        self.admitted.as_ref().map_or(0, |s| s.len())
    }

    /// Clears all state.
    pub fn reset(&mut self) {
        self.reservoir.reset();
        if let Some(admitted) = &mut self.admitted {
            admitted.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmax_core::{AmortizedQMax, BasicSlackQMax, HeapQMax};

    #[test]
    fn exact_below_q() {
        let mut cd = CountDistinct::new(HeapQMax::new(100), 1);
        for i in 0..50u64 {
            cd.observe(i);
            cd.observe(i); // duplicates must not count
        }
        assert_eq!(cd.estimate(), 50.0);
    }

    #[test]
    fn estimates_within_kmv_error() {
        for (distinct, q) in [(20_000u64, 512), (100_000, 1024)] {
            let mut cd = CountDistinct::new(AmortizedQMax::new(q, 0.5), 7);
            for i in 0..distinct * 3 {
                cd.observe(i % distinct);
            }
            let est = cd.estimate();
            let rel = (est - distinct as f64).abs() / distinct as f64;
            // KMV standard error is ~1/sqrt(q); allow 4 sigma.
            let tol = 4.0 / (q as f64).sqrt();
            assert!(
                rel < tol,
                "distinct={distinct} q={q}: est {est} rel {rel} tol {tol}"
            );
        }
    }

    #[test]
    fn heavy_duplication_does_not_bias() {
        // One hot key repeated constantly must not displace the sample.
        let q = 256;
        let mut cd = CountDistinct::new(AmortizedQMax::new(q, 0.5), 9);
        for i in 0..200_000u64 {
            if i % 2 == 0 {
                cd.observe(42);
            } else {
                cd.observe(i);
            }
        }
        let distinct = 1.0 + 100_000.0;
        let est = cd.estimate();
        let rel = (est - distinct).abs() / distinct;
        assert!(rel < 0.3, "est {est} rel {rel}");
    }

    #[test]
    fn observe_batch_matches_singletons() {
        let keys: Vec<u64> = (0..60_000u64).map(|i| i * i % 14_000).collect();
        let mut one = CountDistinct::new(AmortizedQMax::new(256, 0.5), 7);
        let mut batched = CountDistinct::new(AmortizedQMax::new(256, 0.5), 7);
        let mut n1 = 0usize;
        for &k in &keys {
            n1 += usize::from(one.observe(k));
        }
        let mut n2 = 0usize;
        for span in keys.chunks(997) {
            n2 += batched.observe_batch(span);
        }
        assert_eq!(n1, n2);
        assert_eq!(one.admitted_count(), batched.admitted_count());
        assert_eq!(one.estimate(), batched.estimate());
    }

    #[test]
    fn windowed_observe_batch_matches_singletons() {
        let mut one = CountDistinct::new_windowed(BasicSlackQMax::new(128, 0.5, 5_000, 0.25), 5);
        let mut batched =
            CountDistinct::new_windowed(BasicSlackQMax::new(128, 0.5, 5_000, 0.25), 5);
        let keys: Vec<u64> = (0..30_000u64).collect();
        for &k in &keys {
            one.observe(k);
        }
        for span in keys.chunks(511) {
            batched.observe_batch(span);
        }
        assert_eq!(one.estimate(), batched.estimate());
    }

    #[test]
    fn admitted_set_is_logarithmic() {
        let q = 128;
        let mut cd = CountDistinct::new(AmortizedQMax::new(q, 0.5), 3);
        let d = 500_000u64;
        for i in 0..d {
            cd.observe(i);
        }
        let bound = 4.0 * q as f64 * (d as f64 / q as f64).ln() + 4.0 * q as f64;
        assert!(
            (cd.admitted_count() as f64) < bound,
            "admitted {} exceeds bound {bound}",
            cd.admitted_count()
        );
    }

    #[test]
    fn windowed_estimator_tracks_recent_distinct() {
        // Sliding-window count distinct (the paper's slack-window
        // improvement over Fusy-Giroire): keys cycle so the window
        // holds ~w distinct keys.
        let q = 256;
        let w = 20_000;
        let mut cd = CountDistinct::new_windowed(BasicSlackQMax::new(q, 0.5, w, 0.25), 5);
        for i in 0..197_500u64 {
            cd.observe(i); // all distinct; window sees ~w of them
        }
        // The slack window spans between W(1-tau) and W items; allow the
        // KMV standard error (1/sqrt(q) ~ 6%, take 4 sigma) around that
        // range.
        let est = cd.estimate();
        let lo = (w as f64) * 0.75 * (1.0 - 4.0 / (q as f64).sqrt());
        let hi = (w as f64) * (1.0 + 4.0 / (q as f64).sqrt());
        assert!(
            est >= lo && est <= hi,
            "windowed estimate {est} outside [{lo}, {hi}]"
        );
    }
}
