//! Priority-Based Aggregation (Duffield et al., CIKM 2017).

use qmax_core::{FlowIndex, IndexFamily, KeyIndex, OrderedF64, QMax};
use qmax_traces::hash;
use std::collections::HashMap;

/// A PBA sample entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PbaSample {
    /// The stream key.
    pub key: u64,
    /// The key's aggregate weight at query time.
    pub weight: f64,
    /// The key's current priority `weight / u_key`.
    pub priority: f64,
}

/// Priority-Based Aggregation: weighted sampling where keys repeat and
/// each key should be sampled proportionally to its **total** weight.
///
/// Every arrival `(x, w)` raises the running aggregate `w_x`, and the
/// key's priority becomes `w_x / u_x` (hash-derived `u_x ∈ (0,1)`). The
/// reservoir must therefore support *increasing* a stored key's value.
/// Heaps without sift operations only support that by rebuilding — the
/// `O(q)` behaviour the paper observes for its PBA heap baseline
/// (Figure 8e–f). Appropriate backends here are the duplicate-merging
/// [`qmax_core::DedupQMax`] (ours), and the update-in-place
/// [`qmax_core::IndexedHeapQMax`] / [`qmax_core::KeyedSkipListQMax`]
/// baselines.
///
/// ```
/// use qmax_apps::Pba;
/// use qmax_core::DedupQMax;
/// let mut pba = Pba::new(DedupQMax::new(10, 0.5), 7);
/// for round in 0..100 {
///     for key in 0..50u64 {
///         pba.observe(key, 1.0 + (key % 5 + round % 3) as f64);
///     }
/// }
/// assert!(pba.sample().len() <= 10);
/// ```
#[derive(Debug, Clone)]
pub struct Pba<Q, F: IndexFamily = FlowIndex> {
    reservoir: Q,
    seed: u64,
    /// Running aggregate weight per key still relevant to the sample —
    /// by default a SIMD-probed [`qmax_core::FlowTable`], hit once per
    /// arrival.
    agg: F::Index<u64, f64>,
    /// Purge the aggregate map when it exceeds this many entries.
    purge_at: usize,
}

impl<Q: QMax<u64, OrderedF64>> Pba<Q, FlowIndex> {
    /// Creates a PBA instance over the given reservoir backend.
    pub fn new(reservoir: Q, seed: u64) -> Self {
        Self::new_in(reservoir, seed)
    }
}

impl<Q: QMax<u64, OrderedF64>, F: IndexFamily> Pba<Q, F> {
    /// Like [`Pba::new`], but with an explicit [`IndexFamily`] for the
    /// aggregation map (e.g. [`qmax_core::StdIndex`] for the
    /// HashMap-era baseline).
    pub fn new_in(reservoir: Q, seed: u64) -> Self {
        let purge_at = (reservoir.q() * 8).max(1024);
        Pba {
            reservoir,
            seed,
            agg: F::Index::with_capacity(0),
            purge_at,
        }
    }

    /// Processes one arrival of `key` carrying `weight`.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not positive and finite.
    pub fn observe(&mut self, key: u64, weight: f64) -> bool {
        assert!(
            weight > 0.0 && weight.is_finite(),
            "weights must be positive and finite"
        );
        let u = hash::to_unit_open(key, self.seed);
        let total = match self.agg.get_mut(&key) {
            Some(t) => {
                *t += weight;
                *t
            }
            None => {
                self.agg.insert(key, weight);
                weight
            }
        };
        let priority = total / u;
        let admitted = self.reservoir.insert(key, OrderedF64(priority));
        if self.agg.len() > self.purge_at {
            self.purge();
        }
        admitted
    }

    /// Processes a span of arrivals, returning how many were admitted.
    /// Observationally identical to calling [`Pba::observe`] per
    /// arrival — the aggregate map can be purged *mid-span*, so the
    /// per-arrival sequencing must be preserved exactly — but each
    /// [`qmax_core::PROBE_PIPELINE`]-arrival stage issues the
    /// aggregation-map prefetches up front, overlapping the per-key
    /// probe misses.
    ///
    /// # Panics
    ///
    /// Panics if any weight is not positive and finite.
    pub fn observe_batch(&mut self, arrivals: &[(u64, f64)]) -> usize {
        let mut admitted = 0;
        let mut keys = [0u64; qmax_core::PROBE_PIPELINE];
        for chunk in arrivals.chunks(qmax_core::PROBE_PIPELINE) {
            for (j, &(k, _)) in chunk.iter().enumerate() {
                keys[j] = k;
            }
            self.agg.prefetch_keys(&keys[..chunk.len()]);
            for &(k, w) in chunk {
                admitted += usize::from(self.observe(k, w));
            }
        }
        admitted
    }

    /// Drops aggregates whose priority can no longer reach the
    /// reservoir (their key would be filtered on arrival), bounding the
    /// map to keys that still matter. Keys at or above the admission
    /// threshold are kept — they may still sit in the reservoir.
    fn purge(&mut self) {
        let Some(threshold) = self.reservoir.threshold() else {
            return;
        };
        let seed = self.seed;
        self.agg.retain_with(|&key, &mut total| {
            let u = hash::to_unit_open(key, seed);
            OrderedF64(total / u) >= threshold
        });
    }

    /// The current sample: up to `q` distinct keys with their aggregate
    /// weights, highest priority first.
    pub fn sample(&mut self) -> Vec<PbaSample> {
        let mut best: HashMap<u64, f64> = HashMap::new();
        for (key, p) in self.reservoir.query() {
            let p = p.get();
            let slot = best.entry(key).or_insert(p);
            if *slot < p {
                *slot = p;
            }
        }
        let mut out: Vec<PbaSample> = best
            .into_iter()
            .map(|(key, priority)| {
                let u = hash::to_unit_open(key, self.seed);
                let weight = self.agg.get(&key).copied().unwrap_or(priority * u);
                PbaSample {
                    key,
                    weight,
                    priority,
                }
            })
            .collect();
        out.sort_by(|a, b| b.priority.total_cmp(&a.priority));
        out
    }

    /// Estimates the total weight of the keys selected by `subset`
    /// using the priority-sampling estimator over aggregates: with `τ`
    /// the smallest priority in a full sample, every other sampled key
    /// in the subset contributes `max(weight, τ)`.
    pub fn estimate_subset<P: Fn(u64) -> bool>(&mut self, subset: P) -> f64 {
        let sample = self.sample();
        if sample.len() < self.reservoir.q() {
            return sample
                .iter()
                .filter(|s| subset(s.key))
                .map(|s| s.weight)
                .sum();
        }
        let tau = sample.last().expect("non-empty").priority;
        sample
            .iter()
            .take(sample.len() - 1)
            .filter(|s| subset(s.key))
            .map(|s| s.weight.max(tau))
            .sum()
    }

    /// Number of keys currently tracked in the aggregation map.
    pub fn tracked_keys(&self) -> usize {
        self.agg.len()
    }

    /// Clears all state.
    pub fn reset(&mut self) {
        self.reservoir.reset();
        self.agg.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmax_core::{DedupQMax, IndexedHeapQMax, KeyedSkipListQMax};

    #[test]
    fn aggregates_repeated_keys() {
        let mut pba = Pba::new(IndexedHeapQMax::new(5), 1);
        for _ in 0..10 {
            pba.observe(42, 2.0);
        }
        let s = pba.sample();
        let entry = s.iter().find(|s| s.key == 42).expect("key 42 sampled");
        assert!((entry.weight - 20.0).abs() < 1e-9);
    }

    #[test]
    fn sample_is_deduplicated_and_bounded() {
        let mut pba = Pba::new(DedupQMax::new(8, 0.5), 2);
        for round in 0..200 {
            for key in 0..100u64 {
                pba.observe(key, 1.0 + (round % 4) as f64);
            }
        }
        let s = pba.sample();
        assert!(s.len() <= 8);
        let mut keys: Vec<u64> = s.iter().map(|s| s.key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), s.len(), "duplicate keys in sample");
    }

    #[test]
    fn heaviest_keys_dominate_the_sample() {
        // Keys 0..10 get 10000x the weight of the rest; with a generous
        // reservoir they must all be sampled.
        let mut pba = Pba::new(DedupQMax::new(20, 1.0), 3);
        for _round in 0..50 {
            for key in 0..200u64 {
                let w = if key < 10 { 10_000.0 } else { 1.0 };
                pba.observe(key, w);
            }
        }
        let s = pba.sample();
        let sampled: std::collections::HashSet<u64> = s.iter().map(|s| s.key).collect();
        for key in 0..10u64 {
            assert!(
                sampled.contains(&key),
                "heavy key {key} missing from sample"
            );
        }
    }

    #[test]
    fn backends_agree_on_sampled_keys() {
        let mut a = Pba::new(DedupQMax::new(16, 0.5), 9);
        let mut b = Pba::new(IndexedHeapQMax::new(16), 9);
        let mut c = Pba::new(KeyedSkipListQMax::new(16), 9);
        for round in 0..100u64 {
            for key in 0..300u64 {
                let w = 1.0 + ((key * 7 + round) % 23) as f64;
                a.observe(key, w);
                b.observe(key, w);
                c.observe(key, w);
            }
        }
        let keys = |s: Vec<PbaSample>| {
            let mut v: Vec<u64> = s.into_iter().map(|x| x.key).collect();
            v.sort_unstable();
            v
        };
        let ka = keys(a.sample());
        assert_eq!(ka, keys(b.sample()));
        assert_eq!(ka, keys(c.sample()));
    }

    #[test]
    fn subset_estimate_tracks_truth() {
        let mut pba = Pba::new(DedupQMax::new(1500, 0.5), 13);
        let mut truth = 0.0;
        for round in 0..10u64 {
            for key in 0..10_000u64 {
                let w = 1.0 + ((key ^ round) % 13) as f64;
                if key % 2 == 0 {
                    truth += w;
                }
                pba.observe(key, w);
            }
        }
        let est = pba.estimate_subset(|k| k % 2 == 0);
        let rel = (est - truth).abs() / truth;
        assert!(rel < 0.15, "est {est} truth {truth} rel {rel}");
    }

    #[test]
    fn observe_batch_matches_singletons() {
        // Includes enough distinct keys that purges fire mid-span, the
        // case that forbids reordering arrivals within a batch.
        let mut one = Pba::new(DedupQMax::new(16, 0.5), 4);
        let mut batched = Pba::new(DedupQMax::new(16, 0.5), 4);
        let arrivals: Vec<(u64, f64)> = (0..40_000u64)
            .map(|i| (i * i % 9173, 1.0 + (i % 11) as f64))
            .collect();
        let mut a1 = 0usize;
        for &(k, w) in &arrivals {
            a1 += usize::from(one.observe(k, w));
        }
        let mut a2 = 0usize;
        for span in arrivals.chunks(701) {
            a2 += batched.observe_batch(span);
        }
        assert_eq!(a1, a2);
        assert_eq!(one.tracked_keys(), batched.tracked_keys());
        assert_eq!(one.sample(), batched.sample());
    }

    #[test]
    fn aggregate_map_stays_bounded() {
        let mut pba = Pba::new(DedupQMax::new(16, 0.5), 4);
        for key in 0..500_000u64 {
            pba.observe(key, 1.0);
        }
        assert!(
            pba.tracked_keys() <= 1024 + 1,
            "aggregate map grew to {}",
            pba.tracked_keys()
        );
    }

    #[test]
    fn priorities_only_grow_per_key() {
        let mut pba = Pba::new(IndexedHeapQMax::new(4), 5);
        pba.observe(7, 1.0);
        let p1 = pba.sample().iter().find(|s| s.key == 7).unwrap().priority;
        pba.observe(7, 1.0);
        let p2 = pba.sample().iter().find(|s| s.key == 7).unwrap().priority;
        assert!(p2 > p1);
    }
}
