//! Integration tests for the `trace-tools` binary.

use std::io::Write;
use std::process::{Command, Stdio};

fn trace_tools() -> Command {
    Command::new(env!("CARGO_BIN_EXE_trace-tools"))
}

#[test]
fn gen_then_stats_roundtrip() {
    let gen = trace_tools()
        .args(["gen", "caida16", "2000", "7"])
        .output()
        .expect("run gen");
    assert!(
        gen.status.success(),
        "{}",
        String::from_utf8_lossy(&gen.stderr)
    );
    let csv = gen.stdout;
    assert!(csv.starts_with(b"src_ip,"), "missing header");

    let mut stats = trace_tools()
        .arg("stats")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn stats");
    stats.stdin.as_mut().unwrap().write_all(&csv).unwrap();
    let out = stats.wait_with_output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("packets        : 2000"), "{text}");
    assert!(text.contains("distinct flows"), "{text}");
}

#[test]
fn topflows_lists_requested_count() {
    let gen = trace_tools()
        .args(["gen", "univ1", "3000", "3"])
        .output()
        .unwrap();
    let mut top = trace_tools()
        .args(["topflows", "5"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    top.stdin.as_mut().unwrap().write_all(&gen.stdout).unwrap();
    let out = top.wait_with_output().unwrap();
    assert!(out.status.success());
    let lines: Vec<&str> = std::str::from_utf8(&out.stdout).unwrap().lines().collect();
    assert_eq!(lines.len(), 6, "header + 5 flows, got: {lines:?}");
}

#[test]
fn unknown_profile_fails_cleanly() {
    let out = trace_tools()
        .args(["gen", "nonsense", "10"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown profile"));
}

#[test]
fn missing_subcommand_prints_usage() {
    let out = trace_tools().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}
