//! Command-line trace utilities.
//!
//! ```text
//! trace-tools gen <caida16|caida18|univ1> <packets> [seed] > trace.csv
//! trace-tools stats < trace.csv
//! trace-tools topflows <q> [gamma] < trace.csv
//! ```
//!
//! `gen` writes a synthetic trace in the CSV format of
//! [`qmax_traces::csv`]; `stats` summarises a trace; `topflows` streams
//! it through a q-MAX-style reservoir (a simple size-q sorted fold here,
//! to keep this crate dependency-free) and prints the heaviest flows.

use qmax_traces::csv::{read_packets, write_packets};
use qmax_traces::gen::{caida18_like, caida_like, univ1_like};
use qmax_traces::Packet;
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("stats") => cmd_stats(),
        Some("topflows") => cmd_topflows(&args[1..]),
        _ => {
            eprintln!("usage: trace-tools <gen|stats|topflows> ...");
            eprintln!("  gen <caida16|caida18|univ1> <packets> [seed]  write CSV to stdout");
            eprintln!("  stats                                          summarise CSV from stdin");
            eprintln!("  topflows <q>                                   heaviest flows from stdin");
            exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("trace-tools: {e}");
        exit(1);
    }
}

fn cmd_gen(args: &[String]) -> io::Result<()> {
    let profile = args.first().map(String::as_str).unwrap_or("");
    let packets: usize = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "gen needs a packet count"))?;
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    let trace: Vec<Packet> = match profile {
        "caida16" => caida_like(packets, seed).collect(),
        "caida18" => caida18_like(packets, seed).collect(),
        "univ1" => univ1_like(packets, seed).collect(),
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("unknown profile {other:?} (want caida16|caida18|univ1)"),
            ))
        }
    };
    let stdout = io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    write_packets(&mut out, &trace)?;
    out.flush()
}

fn cmd_stats() -> io::Result<()> {
    let stdin = io::stdin();
    let packets = read_packets(BufReader::new(stdin.lock()))?;
    if packets.is_empty() {
        println!("empty trace");
        return Ok(());
    }
    let mut flows: HashMap<u64, (u64, u64)> = HashMap::new();
    let mut bytes = 0u64;
    for p in &packets {
        let e = flows.entry(p.flow().as_u64()).or_default();
        e.0 += 1;
        e.1 += p.len as u64;
        bytes += p.len as u64;
    }
    let span_ns = packets.last().unwrap().ts_ns - packets.first().unwrap().ts_ns;
    let mut sizes: Vec<u64> = flows.values().map(|&(c, _)| c).collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    let top10: u64 = sizes.iter().take(10).sum();
    println!("packets        : {}", packets.len());
    println!("bytes          : {bytes}");
    println!("distinct flows : {}", flows.len());
    println!("duration       : {:.3} s", span_ns as f64 / 1e9);
    if span_ns > 0 {
        println!(
            "mean rate      : {:.3} Mpps",
            packets.len() as f64 / span_ns as f64 * 1e3
        );
    }
    println!(
        "mean pkt size  : {:.1} B",
        bytes as f64 / packets.len() as f64
    );
    println!(
        "top-10 flows   : {:.1}% of packets",
        top10 as f64 / packets.len() as f64 * 100.0
    );
    Ok(())
}

fn cmd_topflows(args: &[String]) -> io::Result<()> {
    let q: usize = args
        .first()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "topflows needs q"))?;
    let stdin = io::stdin();
    let packets = read_packets(BufReader::new(stdin.lock()))?;
    let mut flows: HashMap<u64, (Packet, u64)> = HashMap::new();
    for p in &packets {
        let e = flows.entry(p.flow().as_u64()).or_insert((*p, 0));
        e.1 += p.len as u64;
    }
    let mut ranked: Vec<(Packet, u64)> = flows.into_values().collect();
    ranked.sort_unstable_by_key(|&(_, bytes)| std::cmp::Reverse(bytes));
    ranked.truncate(q);
    println!(
        "{:<18} {:<18} {:>7} {:>7} {:>5} {:>14}",
        "src", "dst", "sport", "dport", "prot", "bytes"
    );
    for (p, bytes) in ranked {
        println!(
            "{:<18} {:<18} {:>7} {:>7} {:>5} {:>14}",
            fmt_ip(p.src_ip),
            fmt_ip(p.dst_ip),
            p.src_port,
            p.dst_port,
            p.proto,
            bytes
        );
    }
    Ok(())
}

fn fmt_ip(ip: u32) -> String {
    format!(
        "{}.{}.{}.{}",
        ip >> 24,
        (ip >> 16) & 255,
        (ip >> 8) & 255,
        ip & 255
    )
}
