//! A small deterministic RNG for workload generation.
//!
//! Trace generation must be reproducible byte-for-byte across runs and
//! platforms so that every figure regenerates from the same input; this
//! splitmix64 generator is trivially seedable and has no feature-flag or
//! platform dependence. (The `rand` crate is still used where
//! distributions beyond uniform are convenient.)

/// A splitmix64 pseudo-random generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next uniform 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        crate::hash::mix64(self.state)
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // 128-bit multiply trick: unbiased enough for workload synthesis.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / 9007199254740992.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::new(1234);
        let mut b = SplitMix64::new(1234);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(5);
        for _ in 0..10_000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
