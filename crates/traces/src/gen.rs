//! Synthetic trace generators.
//!
//! Each generator documents which real dataset it stands in for and
//! which properties it preserves (see DESIGN.md for the substitution
//! rationale). All generators are deterministic in their seed.

use crate::packet::Packet;
use crate::rng::SplitMix64;
use crate::zipf::ZipfSampler;

/// Parameters of a synthetic packet trace.
#[derive(Debug, Clone)]
pub struct TraceSpec {
    /// Number of packets to generate.
    pub packets: usize,
    /// Number of distinct flows.
    pub flows: usize,
    /// Zipf skew of flow popularity (ISP traces ≈ 1.0–1.2, datacenter
    /// traces are flatter).
    pub alpha: f64,
    /// Packet length profile.
    pub sizes: SizeProfile,
    /// Mean packet inter-arrival time in nanoseconds.
    pub mean_gap_ns: u64,
    /// RNG seed.
    pub seed: u64,
}

/// Packet-length mixes observed in the wild.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeProfile {
    /// ISP-backbone-like bimodal mix: ~40% minimum-size (ACK-heavy),
    /// ~40% MTU-size, the rest spread between.
    Backbone,
    /// Datacenter-like mix: dominated by MTU-size packets with a small
    /// control-packet mode.
    Datacenter,
    /// All packets the same size.
    Fixed(u16),
}

impl SizeProfile {
    fn draw(&self, rng: &mut SplitMix64) -> u16 {
        match *self {
            SizeProfile::Fixed(s) => s,
            SizeProfile::Backbone => {
                let r = rng.next_below(100);
                if r < 40 {
                    40 + rng.next_below(40) as u16
                } else if r < 80 {
                    1400 + rng.next_below(100) as u16
                } else {
                    80 + rng.next_below(1320) as u16
                }
            }
            SizeProfile::Datacenter => {
                let r = rng.next_below(100);
                if r < 15 {
                    64 + rng.next_below(100) as u16
                } else {
                    1450 + rng.next_below(50) as u16
                }
            }
        }
    }
}

/// An iterator producing the packets of a synthetic trace.
#[derive(Debug)]
pub struct TraceIter {
    spec: TraceSpec,
    flows: ZipfSampler,
    rng: SplitMix64,
    /// Pre-mixed flow endpoint table (so flow ranks don't leak into IPs).
    produced: usize,
    ts_ns: u64,
    /// Optional microburst timing model.
    burst: Option<BurstClock>,
}

impl Iterator for TraceIter {
    type Item = Packet;

    fn next(&mut self) -> Option<Packet> {
        if self.produced >= self.spec.packets {
            return None;
        }
        let rank = self.flows.sample() as u64;
        // Derive a stable 5-tuple from the flow rank.
        let fid = crate::hash::hash64(rank, self.spec.seed ^ 0xF10F);
        let src_ip = (fid >> 32) as u32;
        let dst_ip = fid as u32;
        let ports = crate::hash::hash64(rank, self.spec.seed ^ 0x9087);
        let src_port = (ports >> 16) as u16;
        let dst_port = ports as u16;
        let proto = if ports & 0x10000 != 0 { 6 } else { 17 };
        let len = self.spec.sizes.draw(&mut self.rng);
        // Exponential-ish inter-arrival via a geometric approximation.
        let mut gap = if self.spec.mean_gap_ns == 0 {
            0
        } else {
            let u = self.rng.next_f64().max(1e-12);
            (-(u.ln()) * self.spec.mean_gap_ns as f64) as u64
        };
        if let Some(burst) = self.burst {
            gap = burst.scale_gap(self.ts_ns, gap);
        }
        self.ts_ns += gap;
        let seq = self.produced as u64;
        self.produced += 1;
        Some(Packet {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto,
            len,
            ts_ns: self.ts_ns,
            seq,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.spec.packets - self.produced;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for TraceIter {}

/// Generates a trace from an explicit [`TraceSpec`].
pub fn from_spec(spec: TraceSpec) -> TraceIter {
    let flows = ZipfSampler::new(spec.flows.max(1), spec.alpha, spec.seed ^ 0xABCD);
    let rng = SplitMix64::new(spec.seed);
    TraceIter {
        spec,
        flows,
        rng,
        produced: 0,
        ts_ns: 0,
        burst: None,
    }
}

/// A CAIDA-like ISP backbone trace: many flows, Zipf(1.1) popularity,
/// backbone packet-size mix.
///
/// Stands in for the paper's CAIDA'16 (equinix-chicago) trace.
pub fn caida_like(packets: usize, seed: u64) -> TraceIter {
    from_spec(TraceSpec {
        packets,
        flows: (packets / 30).clamp(1, 2_000_000),
        alpha: 1.1,
        sizes: SizeProfile::Backbone,
        mean_gap_ns: 700,
        seed,
    })
}

/// A second ISP profile with slightly different skew and flow count,
/// standing in for the paper's CAIDA'18 (equinix-newyork) trace.
pub fn caida18_like(packets: usize, seed: u64) -> TraceIter {
    from_spec(TraceSpec {
        packets,
        flows: (packets / 20).clamp(1, 3_000_000),
        alpha: 1.0,
        sizes: SizeProfile::Backbone,
        mean_gap_ns: 500,
        seed,
    })
}

/// A UNIV1-like datacenter trace: far fewer, heavier flows with an
/// MTU-dominated size mix.
///
/// Stands in for the paper's UNIV1 dataset (Benson et al., IMC 2010).
pub fn univ1_like(packets: usize, seed: u64) -> TraceIter {
    from_spec(TraceSpec {
        packets,
        flows: (packets / 500).clamp(1, 50_000),
        alpha: 0.8,
        sizes: SizeProfile::Datacenter,
        mean_gap_ns: 1_200,
        seed,
    })
}

/// The paper's "randomly generated stream of numbers": i.i.d. uniform
/// 64-bit values.
pub fn random_u64_stream(n: usize, seed: u64) -> impl Iterator<Item = u64> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(move |_| rng.next_u64())
}

/// A trace with microbursts: steady background traffic punctuated by
/// short, intense bursts from a handful of flows — the workload that
/// motivates query-time-granularity bandwidth monitoring (DBM) and
/// microburst detection.
///
/// `burst_every_ns` controls burst spacing; each burst lasts about 2%
/// of that interval and carries `burst_factor`× the background rate.
pub fn bursty_like(packets: usize, burst_every_ns: u64, burst_factor: u64, seed: u64) -> TraceIter {
    // Reuse the backbone generator but overwrite timing with a bursty
    // clock: the caller gets packets whose inter-arrival gap shrinks by
    // `burst_factor` inside burst windows.
    let spec = TraceSpec {
        packets,
        flows: (packets / 50).clamp(1, 500_000),
        alpha: 1.0,
        sizes: SizeProfile::Backbone,
        mean_gap_ns: 1_000,
        seed,
    };
    let mut it = from_spec(spec);
    it.burst = Some(BurstClock {
        every_ns: burst_every_ns.max(100),
        factor: burst_factor.max(2),
    });
    it
}

/// Burst timing model attached to a [`TraceIter`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct BurstClock {
    pub every_ns: u64,
    pub factor: u64,
}

impl BurstClock {
    /// Scales an inter-arrival gap: inside the burst window (the first
    /// 2% of every period), packets arrive `factor`× faster.
    pub(crate) fn scale_gap(&self, now_ns: u64, gap: u64) -> u64 {
        let phase = now_ns % self.every_ns;
        if phase < self.every_ns / 50 {
            (gap / self.factor).max(1)
        } else {
            gap
        }
    }
}

/// A cache access trace standing in for the ARC "P1.lis" workload:
/// a Zipf-popular working set interleaved with sequential scan loops
/// (the pattern that separates recency-only from frequency-aware
/// policies, which is what LRFU hit-ratio experiments need).
///
/// Returns the sequence of accessed keys.
pub fn arc_like(requests: usize, working_set: usize, seed: u64) -> Vec<u64> {
    let mut out = Vec::with_capacity(requests);
    let mut zipf = ZipfSampler::new(working_set.max(1), 0.9, seed);
    let mut rng = SplitMix64::new(seed ^ 0x5CA7);
    let scan_base = working_set as u64 * 10;
    let mut i = 0usize;
    while out.len() < requests {
        // Alternate phases: ~70% of requests are Zipf references, ~30%
        // sequential scans (scans touch cold keys once, like the
        // file-system reads that dominate P1).
        if i % 10 < 7 {
            for _ in 0..32 {
                if out.len() >= requests {
                    break;
                }
                out.push(zipf.sample() as u64);
            }
        } else {
            let scan_len = (8 + rng.next_below(64)) as usize;
            let start = scan_base + rng.next_below(working_set as u64 * 100);
            for j in 0..scan_len {
                if out.len() >= requests {
                    break;
                }
                out.push(start + j as u64);
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn trace_has_requested_length_and_monotone_time() {
        let trace: Vec<Packet> = caida_like(10_000, 1).collect();
        assert_eq!(trace.len(), 10_000);
        for w in trace.windows(2) {
            assert!(w[0].ts_ns <= w[1].ts_ns);
            assert!(w[0].seq + 1 == w[1].seq);
        }
    }

    #[test]
    fn trace_is_deterministic() {
        let a: Vec<Packet> = caida_like(1000, 7).collect();
        let b: Vec<Packet> = caida_like(1000, 7).collect();
        assert_eq!(a, b);
        let c: Vec<Packet> = caida_like(1000, 8).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn caida_like_is_flow_skewed() {
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for p in caida_like(50_000, 3) {
            *counts.entry(p.flow().as_u64()).or_default() += 1;
        }
        let mut sizes: Vec<u64> = counts.values().copied().collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = sizes.iter().sum();
        let top10: u64 = sizes.iter().take(10).sum();
        assert!(
            top10 as f64 > total as f64 * 0.2,
            "top-10 flows carry only {top10}/{total} packets — not skewed"
        );
    }

    #[test]
    fn univ1_like_has_fewer_flows_than_caida() {
        let caida_flows = caida_like(20_000, 3)
            .map(|p| p.flow())
            .collect::<std::collections::HashSet<_>>()
            .len();
        let univ_flows = univ1_like(20_000, 3)
            .map(|p| p.flow())
            .collect::<std::collections::HashSet<_>>()
            .len();
        assert!(
            univ_flows * 2 < caida_flows,
            "univ={univ_flows} caida={caida_flows}"
        );
    }

    #[test]
    fn backbone_sizes_are_bimodal() {
        let trace: Vec<Packet> = caida_like(20_000, 5).collect();
        let small = trace.iter().filter(|p| p.len < 100).count();
        let big = trace.iter().filter(|p| p.len >= 1400).count();
        assert!(small > trace.len() / 5, "small fraction {small}");
        assert!(big > trace.len() / 5, "big fraction {big}");
    }

    #[test]
    fn random_stream_is_uniformish() {
        let vals: Vec<u64> = random_u64_stream(10_000, 9).collect();
        let above = vals.iter().filter(|&&v| v > u64::MAX / 2).count();
        assert!(
            (above as i64 - 5000).abs() < 300,
            "above-median count {above}"
        );
    }

    #[test]
    fn bursty_trace_has_rate_spikes() {
        let period = 1_000_000u64;
        let trace: Vec<Packet> = bursty_like(100_000, period, 20, 5).collect();
        let horizon = trace.last().unwrap().ts_ns;
        // Slice *finer* than the burst window (period/50) so bursts
        // stand out; the busiest slice must carry far more than the
        // mean slice.
        let width = period / 50;
        let n_slices = (horizon / width + 1) as usize;
        let mut counts = vec![0u64; n_slices];
        for p in &trace {
            counts[(p.ts_ns / width) as usize] += 1;
        }
        let mean = trace.len() as u64 / n_slices as u64;
        let peak = *counts.iter().max().unwrap();
        assert!(
            peak > 5 * mean,
            "no burst visible: peak {peak} vs mean {mean}"
        );
    }

    #[test]
    fn arc_like_mixes_hot_and_cold_keys() {
        let reqs = arc_like(50_000, 1000, 11);
        assert_eq!(reqs.len(), 50_000);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for &k in &reqs {
            *counts.entry(k).or_default() += 1;
        }
        let hot = counts.values().filter(|&&c| c > 50).count();
        let cold = counts.values().filter(|&&c| c == 1).count();
        assert!(hot > 10, "no hot keys ({hot})");
        assert!(cold > 1000, "no scan keys ({cold})");
    }
}
