//! Workload substrate for the q-MAX reproduction.
//!
//! The paper evaluates on CAIDA backbone traces, a university datacenter
//! trace (UNIV1), an ARC cache trace (P1.lis), and uniformly random
//! number streams. Those datasets are not redistributable, so this crate
//! generates *synthetic equivalents* that preserve the properties the
//! evaluated algorithms are sensitive to — the key (flow) popularity
//! distribution, packet-size mix, and arrival order randomness — plus
//! deterministic hashing and RNG utilities shared by the other crates.
//!
//! * [`Packet`] / [`FlowKey`] — the packet model used end-to-end.
//! * [`gen`] — trace generators: [`gen::caida_like`], [`gen::univ1_like`],
//!   [`gen::random_u64_stream`], [`gen::arc_like`].
//! * [`zipf::ZipfSampler`] — `O(1)` Zipf sampling via the alias method.
//! * [`hash`] — 64-bit mixing/hash functions used for sampling decisions.
//! * [`csv`] — minimal CSV import/export so real traces can be plugged
//!   in where available.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod csv;
pub mod gen;
pub mod hash;
mod packet;
pub mod rng;
pub mod zipf;

pub use packet::{FlowKey, Packet};
