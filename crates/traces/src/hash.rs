//! Deterministic 64-bit mixing functions.
//!
//! The sampling-based applications (priority sampling, network-wide
//! heavy hitters, count-distinct, bottom-k) derive per-item randomness
//! by hashing keys; these finalizer-style mixers are fast, well
//! distributed, and identical across observation points — exactly what
//! routing-oblivious measurement requires.

/// The splitmix64 / murmur3-style finalizer: a bijective mix of all 64
/// bits.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58476D1CE4E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Hashes `key` under `seed` (distinct seeds give independent-looking
/// hash functions, used for sketch rows).
#[inline]
pub fn hash64(key: u64, seed: u64) -> u64 {
    mix64(key ^ mix64(seed.wrapping_add(0x9E3779B97F4A7C15)))
}

/// Maps `key` to a uniform float in the open interval `(0, 1)`.
///
/// Never returns exactly 0.0 (so priorities `w / u` stay finite) nor
/// 1.0.
#[inline]
pub fn to_unit_open(key: u64, seed: u64) -> f64 {
    let h = hash64(key, seed);
    // 53 significant bits, then nudge away from zero.
    ((h >> 11) as f64 + 0.5) * (1.0 / 9007199254740992.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_spreads() {
        assert_eq!(mix64(1), mix64(1));
        assert_ne!(mix64(1), mix64(2));
        // Low-entropy inputs should produce different high bits.
        let a = mix64(0) >> 32;
        let b = mix64(1) >> 32;
        let c = mix64(2) >> 32;
        assert!(a != b && b != c && a != c);
    }

    #[test]
    fn hash64_seeds_are_independent() {
        let k = 42u64;
        assert_ne!(hash64(k, 0), hash64(k, 1));
        assert_eq!(hash64(k, 7), hash64(k, 7));
    }

    #[test]
    fn to_unit_open_stays_in_open_interval() {
        for key in 0..10_000u64 {
            let u = to_unit_open(key, 3);
            assert!(u > 0.0 && u < 1.0, "u={u} for key={key}");
        }
    }

    #[test]
    fn to_unit_open_is_roughly_uniform() {
        let n = 100_000u64;
        let mut buckets = [0u32; 10];
        for key in 0..n {
            let u = to_unit_open(key, 11);
            buckets[(u * 10.0) as usize] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            let expect = n as f64 / 10.0;
            assert!(
                (b as f64 - expect).abs() < expect * 0.05,
                "bucket {i} has {b}, expected ~{expect}"
            );
        }
    }
}
