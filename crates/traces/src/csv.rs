//! Minimal CSV packet-trace I/O.
//!
//! Real CAIDA/UNIV1 traces can be exported (with any external tool) to
//! the simple format below and substituted for the synthetic
//! generators:
//!
//! ```text
//! src_ip,dst_ip,src_port,dst_port,proto,len,ts_ns
//! 167772161,3232235777,443,51234,6,1500,123456789
//! ```
//!
//! IPs are decimal `u32` (the paper keys on the decimal representation
//! of the source IP as well).

use crate::packet::Packet;
use std::io::{self, BufRead, Write};

/// Writes `packets` to `w` in the trace CSV format (with header).
pub fn write_packets<W: Write>(w: &mut W, packets: &[Packet]) -> io::Result<()> {
    writeln!(w, "src_ip,dst_ip,src_port,dst_port,proto,len,ts_ns")?;
    for p in packets {
        writeln!(
            w,
            "{},{},{},{},{},{},{}",
            p.src_ip, p.dst_ip, p.src_port, p.dst_port, p.proto, p.len, p.ts_ns
        )?;
    }
    Ok(())
}

/// Reads packets from trace CSV produced by [`write_packets`] (or an
/// external exporter). Sequence numbers are assigned by line order.
///
/// Returns an error describing the line number for any malformed row.
pub fn read_packets<R: BufRead>(r: R) -> io::Result<Vec<Packet>> {
    let mut out = Vec::new();
    let mut seq = 0u64;
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || (lineno == 0 && line.starts_with("src_ip")) {
            continue;
        }
        let mut fields = line.split(',');
        let mut next = |name: &str| -> io::Result<&str> {
            fields.next().ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: missing field {name}", lineno + 1),
                )
            })
        };
        fn parse_field<T: std::str::FromStr>(s: &str, name: &str, lineno: usize) -> io::Result<T> {
            s.parse().map_err(|_| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad {name}", lineno + 1),
                )
            })
        }
        let src_ip = parse_field(next("src_ip")?, "src_ip", lineno)?;
        let dst_ip = parse_field(next("dst_ip")?, "dst_ip", lineno)?;
        let src_port = parse_field(next("src_port")?, "src_port", lineno)?;
        let dst_port = parse_field(next("dst_port")?, "dst_port", lineno)?;
        let proto = parse_field(next("proto")?, "proto", lineno)?;
        let len = parse_field(next("len")?, "len", lineno)?;
        let ts_ns = parse_field(next("ts_ns")?, "ts_ns", lineno)?;
        out.push(Packet {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto,
            len,
            ts_ns,
            seq,
        });
        seq += 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::caida_like;
    use std::io::BufReader;

    #[test]
    fn roundtrip_preserves_packets() {
        let packets: Vec<Packet> = caida_like(500, 2).collect();
        let mut buf = Vec::new();
        write_packets(&mut buf, &packets).unwrap();
        let back = read_packets(BufReader::new(&buf[..])).unwrap();
        assert_eq!(packets, back);
    }

    #[test]
    fn header_and_blank_lines_are_skipped() {
        let data = "src_ip,dst_ip,src_port,dst_port,proto,len,ts_ns\n\n1,2,3,4,6,100,9\n";
        let got = read_packets(BufReader::new(data.as_bytes())).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].src_ip, 1);
        assert_eq!(got[0].seq, 0);
    }

    #[test]
    fn malformed_row_reports_line() {
        let data = "src_ip,dst_ip,src_port,dst_port,proto,len,ts_ns\n1,2,nope,4,6,100,9\n";
        let err = read_packets(BufReader::new(data.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn missing_field_reports_name() {
        let data = "1,2,3\n";
        let err = read_packets(BufReader::new(data.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("dst_port"), "{err}");
    }

    #[test]
    fn out_of_range_field_is_an_error() {
        // Port 70000 overflows u16.
        let data = "1,2,70000,4,6,100,9\n";
        let err = read_packets(BufReader::new(data.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("src_port"), "{err}");
    }

    #[test]
    fn extra_fields_are_ignored() {
        // Trailing extra columns don't break parsing (forward compat).
        let data = "1,2,3,4,6,100,9,extra,stuff\n";
        let got = read_packets(BufReader::new(data.as_bytes())).unwrap();
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn empty_input_gives_empty_trace() {
        let got = read_packets(BufReader::new(&b""[..])).unwrap();
        assert!(got.is_empty());
        // Header-only too.
        let data = "src_ip,dst_ip,src_port,dst_port,proto,len,ts_ns\n";
        let got = read_packets(BufReader::new(data.as_bytes())).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn seq_numbers_are_line_ordered() {
        let data = "1,2,3,4,6,100,9\n5,6,7,8,17,200,10\n";
        let got = read_packets(BufReader::new(data.as_bytes())).unwrap();
        assert_eq!(got[0].seq, 0);
        assert_eq!(got[1].seq, 1);
        assert_ne!(got[0].packet_id(), got[1].packet_id());
    }
}
